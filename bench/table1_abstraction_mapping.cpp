// Table 1: Magma abstractions vs RAN-specific versions — demonstrated live.
//
// The paper's table is an architectural claim: LTE's MME/HSS/PCRF/SGW/PGW,
// 5G's AMF/UDM/SMF/UPF, and WiFi's RADIUS AAA all map onto one generic set
// of Magma services. This bench *executes* the claim: it attaches one UE
// per radio technology through the same AGW and prints, per generic Magma
// service, the per-RAT call counts proving all three dialects drove the
// same code.
#include <cstdio>

#include "bench_util.h"

using namespace magma;

int main() {
  benchutil::banner("Table 1 — one generic core, three radio technologies",
                    "Hasan et al., NSDI'23, Table 1 / §3.1");

  core::Network net(core::NetworkConfig{.seed = 21});
  agw::AccessGateway& agw = net.add_agw(agw::virtual_xeon(4));
  ran::EnodeB& enb = net.add_enodeb(agw);
  ran::Gnb& gnb = net.add_gnb(agw);
  ran::WifiAp& ap = net.add_wifi_ap(agw);
  net.run_for(2 * sim::kSecond);

  const agw::SubscriberData lte_sub = net.provision_subscriber();
  const agw::SubscriberData nr_sub = net.provision_subscriber();
  const agw::SubscriberData wifi_sub =
      net.provision_subscriber("unlimited", "wifi-pass");
  net.sync_all_config();

  int ok = 0;
  ran::UeLte& lte_ue = net.add_ue_lte(lte_sub);
  lte_ue.attach(enb, [&](const ran::AttachOutcome& o) { ok += o.success; });
  ran::UeNr& nr_ue = net.add_ue_nr(nr_sub);
  nr_ue.attach(gnb, [&](const ran::AttachOutcome& o) { ok += o.success; });
  ran::WifiClient& wifi_client = net.add_wifi_client(wifi_sub, "wifi-pass");
  wifi_client.connect(ap, [&](const ran::AttachOutcome& o) { ok += o.success; });
  net.run_for(30 * sim::kSecond);

  // Push a little traffic on each so the shared data plane shows activity.
  for (const auto& ip : {lte_ue.ip(), nr_ue.ip(), wifi_client.ip()}) {
    if (ip.has_value()) net.inject_downlink(agw, *ip, 1400, 20);
  }
  net.run_for(2 * sim::kSecond);
  agw.sessiond().poll_usage();

  std::printf("\nAttached via LTE + 5G + WiFi: %d/3 successes\n\n", ok);
  std::printf("%-28s | %-12s | %-12s | %-16s | live evidence\n",
              "Magma abstraction", "LTE equiv.", "5G equiv.", "WiFi equiv.");
  std::printf("%.120s\n",
              "----------------------------------------------------------------"
              "--------------------------------------------------------");

  const agw::AccessdStats& acc = agw.accessd().stats();
  std::printf("%-28s | %-12s | %-12s | %-16s | attach_completed: LTE=%llu "
              "5G=%llu WiFi=%llu (same Accessd)\n",
              "Access Control/Management", "MME", "AMF", "RADIUS AAA",
              static_cast<unsigned long long>(acc.attach_completed[0]),
              static_cast<unsigned long long>(acc.attach_completed[1]),
              static_cast<unsigned long long>(acc.attach_completed[2]));
  std::printf("%-28s | %-12s | %-12s | %-16s | auth vectors generated: %llu "
              "(one SubscriberDb, union-of-fields rows)\n",
              "Subscriber Management", "HSS", "UDM/AUSF", "RADIUS AAA",
              static_cast<unsigned long long>(
                  agw.subscriberdb().stats().vectors_generated));
  std::printf("%-28s | %-12s | %-12s | %-16s | active sessions: %zu "
              "(one Sessiond)\n",
              "Session/Policy Management", "MME/PCRF", "SMF/PCF",
              "RADIUS AAA", agw.sessiond().active_sessions());
  std::printf("%-28s | %-12s | %-12s | %-16s | sessions programmed: %llu "
              "(one Pipelined)\n",
              "Data Plane Configuration", "SGW/PGW", "SMF", "WiFi data plane",
              static_cast<unsigned long long>(
                  agw.pipelined().stats().sessions_installed));
  std::printf("%-28s | %-12s | %-12s | %-16s | flow entries: %zu, forwarded "
              "pkts: %llu (one Pipeline)\n",
              "Data Plane", "SGW/PGW", "UPF", "WiFi data plane",
              agw.pipelined().pipeline().total_flow_entries(),
              static_cast<unsigned long long>(
                  agw.pipelined().pipeline().stats().forwarded_packets));
  std::printf("%-28s | %-12s | %-12s | %-16s | orchestrator check-ins: %llu\n",
              "Device Management", "per-box cfg", "per-box cfg", "per-box cfg",
              static_cast<unsigned long long>(agw.magmad().stats().checkins_ok));
  std::printf("%-28s | %-12s | %-12s | %-16s | metric reports shipped: %llu "
              "(no 3GPP equivalent)\n",
              "Telemetry and logging", "(none)", "(none)", "(none)",
              static_cast<unsigned long long>(
                  agw.magmad().stats().metric_reports_sent));

  std::printf("\nRAN-specific front-ends (terminated at the edge, Figure 4 "
              "left):\n");
  std::printf("  LTE : S1AP setups=%llu, SMC sent=%llu, attach accepts=%llu\n",
              static_cast<unsigned long long>(agw.lte().stats().s1_setups),
              static_cast<unsigned long long>(agw.lte().stats().smc_sent),
              static_cast<unsigned long long>(agw.lte().stats().attach_accepts));
  std::printf("  5G  : NG setups=%llu, registrations=%llu, PDU sessions=%llu\n",
              static_cast<unsigned long long>(agw.nr().stats().ng_setups),
              static_cast<unsigned long long>(
                  agw.nr().stats().registrations_accepted),
              static_cast<unsigned long long>(
                  agw.nr().stats().pdu_sessions_established));
  std::printf("  WiFi: Access-Requests=%llu, challenges=%llu, accepts=%llu, "
              "acct-starts=%llu\n",
              static_cast<unsigned long long>(
                  agw.wifi().stats().access_requests),
              static_cast<unsigned long long>(
                  agw.wifi().stats().challenges_sent),
              static_cast<unsigned long long>(agw.wifi().stats().accepts),
              static_cast<unsigned long long>(agw.wifi().stats().acct_starts));

  const bool holds = ok == 3 && acc.attach_completed[0] == 1 &&
                     acc.attach_completed[1] == 1 &&
                     acc.attach_completed[2] == 1 &&
                     agw.sessiond().active_sessions() == 3;
  std::printf("\nSHAPE %s: all three RATs completed attach through the same "
              "generic services.\n",
              holds ? "HOLDS" : "DIVERGES");
  return holds ? 0 : 1;
}
