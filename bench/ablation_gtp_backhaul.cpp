// Ablation A2: why Magma terminates GTP at the AGW (§3.1).
//
// Paper: "GTP ... is sensitive to loss and latency to the point that it
// struggles to operate over lower quality or congested backhaul links,
// such as satellite or shared microwave links ... Since Magma terminates
// GTP locally in the AGW without traversing the backhaul link, a UE never
// sees a dropped GTP connection."
//
// Two architectures, same degraded backhaul:
//  (a) traditional: the session-management dialogue is GTP-C across the
//      backhaul to a remote core (T3-RESPONSE/N3 reliability only);
//  (b) Magma: the whole attach terminates at the AGW; the backhaul carries
//      only gRPC-style config sync on a loss-tolerant transport.
#include <cstdio>

#include "bench_util.h"
#include "feg/feg.h"

using namespace magma;

namespace {

// (a) Traditional: GTP-C CreateSession across the backhaul.
struct GtpcOutcome {
  double success_rate;
  double mean_latency_s;
};

GtpcOutcome run_gtpc(const sim::LinkConfig& backhaul, double extra_loss,
                     std::uint64_t seed) {
  sim::Kernel kernel;
  sim::Rng rng(seed);
  sim::LinkConfig config = backhaul;
  config.loss_probability += extra_loss;
  net::DuplexLink link(kernel, rng, config);
  net::ChannelPair channels = net::make_datagram_pair(kernel, link);
  feg::GtpcEndpoint client(kernel, *channels.a);
  feg::GtpcEndpoint server(kernel, *channels.b);
  server.set_request_handler([](const proto::lte::GtpcMessage&) {
    return proto::lte::GtpcMessage{proto::lte::CreateSessionResponse{}};
  });

  const int kAttempts = 60;
  int ok = 0;
  double latency_sum = 0;
  for (int i = 0; i < kAttempts; ++i) {
    kernel.schedule(i * sim::kSecond, [&]() {
      const sim::TimePoint start = kernel.now();
      proto::lte::CreateSessionRequest request;
      request.imsi = common::Imsi::from_digits(1010000000000ULL +
                                               static_cast<std::uint64_t>(i));
      client.send_request(
          proto::lte::GtpcMessage{request},
          [&, start](common::Result<proto::lte::GtpcMessage> result) {
            if (result.ok()) {
              ++ok;
              latency_sum += sim::to_seconds(kernel.now() - start);
            }
          });
    });
  }
  kernel.run();
  return GtpcOutcome{static_cast<double>(ok) / kAttempts,
                     ok > 0 ? latency_sum / ok : 0};
}

// (b) Magma: full attach over the same backhaul quality (which carries only
// the orchestrator sync), radio-side attach local to the AGW.
double run_magma(const sim::LinkConfig& backhaul, double extra_loss,
                 std::uint64_t seed) {
  core::NetworkConfig config;
  config.seed = seed;
  config.backhaul = backhaul;
  config.backhaul.loss_probability += extra_loss;
  core::Network net(config);
  agw::AccessGateway& agw = net.add_agw(agw::virtual_xeon(4));
  ran::EnodebConfig big;
  big.max_active_ues = 200;
  ran::EnodeB& enb = net.add_enodeb(agw, big);
  net.run_for(5 * sim::kSecond);

  std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, 60);
  // Let the config push land over the degraded backhaul (retried by the
  // reliable transport + magmad's periodic sync).
  net.run_for(60 * sim::kSecond);
  core::AttachRamp ramp(net, ues, enb, 2.0);
  net.run_for(sim::from_seconds(60 / 2.0 + 40));
  return ramp.csr();
}

// Transport fidelity: the reliable channel that carries the orchestrator
// sync, measured in isolation over each backhaul. One 512-byte message every
// 250 ms for 5 simulated minutes; adaptive RFC 6298 estimator vs the old
// fixed 200 ms timeout. On satellite the fixed timeout is a third of the
// path RTT, so every in-flight segment re-fires before its ACK can arrive.
void transport_fidelity_row(const char* name, const sim::LinkConfig& backhaul,
                            bool adaptive, std::uint64_t seed) {
  sim::Kernel kernel;
  sim::Rng rng(seed);
  net::DuplexLink link(kernel, rng, backhaul);
  net::ReliableConfig rel;
  if (!adaptive) {
    rel.adaptive_rto = false;
    rel.initial_rto = 200 * sim::kMillisecond;
  }
  net::ReliablePair pair = net::make_reliable_pair(kernel, link, rel);
  pair.b->set_receiver([](common::Bytes) {});

  const common::Bytes payload(512, 0x5A);
  for (int i = 0; i < 1200; ++i) {
    kernel.schedule(i * 250 * sim::kMillisecond,
                    [&pair, payload = payload]() { pair.a->send(payload); });
  }
  kernel.run();

  const net::ReliableStats& tx = pair.a->stats();
  const net::ReliableStats& rx = pair.b->stats();
  std::printf("%-26s %-9s %8.3f %8.3f %10llu %10llu %8llu\n", name,
              adaptive ? "adaptive" : "fixed", sim::to_seconds(tx.srtt),
              sim::to_seconds(tx.rto),
              static_cast<unsigned long long>(tx.retransmissions),
              static_cast<unsigned long long>(rx.spurious_retransmits),
              static_cast<unsigned long long>(tx.resets));
}

// SACK burst recovery: drop a contiguous run of segments mid-window on a
// satellite-RTT path and time the repair. With SACK, the blocks riding the
// dup ACKs expose every hole at once and all repairs leave within one RTT
// of loss detection. The cumulative-ACK baseline (the pre-SACK transport:
// no congestion window either) learns about one hole per cumulative
// advance — the first via fast retransmit, each later one only when its
// predecessor's repair lands, which on a quiet channel means one RTO per
// hole.
void sack_burst_row(bool sack, std::uint64_t seed) {
  sim::Kernel kernel;
  sim::Rng rng(seed);
  sim::LinkConfig link;
  link.bandwidth_bps = 20e6;
  link.latency = 300 * sim::kMillisecond;  // 600 ms RTT
  net::DuplexLink path(kernel, rng, link);
  net::ReliableConfig rel;
  rel.sack = sack;
  rel.congestion_control = sack;  // baseline = the plain cumulative channel
  rel.initial_cwnd = 32;
  net::ReliablePair pair = net::make_reliable_pair(kernel, path, rel);
  pair.b->set_receiver([](common::Bytes) {});

  // Pace one 512 B segment per millisecond; a 4 ms outage swallows a
  // contiguous burst of four.
  kernel.schedule(4500 * sim::kMicrosecond,
                  [&path]() { path.forward.set_up(false); });
  kernel.schedule(8500 * sim::kMicrosecond,
                  [&path]() { path.forward.set_up(true); });
  const common::Bytes payload(512, 0x5A);
  for (int i = 0; i < 32; ++i) {
    kernel.schedule(i * sim::kMillisecond,
                    [&pair, payload = payload]() { pair.a->send(payload); });
  }
  kernel.run();

  const net::ReliableStats& tx = pair.a->stats();
  std::printf("%-22s %10.2f %10llu %10llu %10llu %10llu\n",
              sack ? "SACK + cwnd" : "cumulative ACK",
              sim::to_seconds(kernel.now()),
              static_cast<unsigned long long>(tx.retransmissions),
              static_cast<unsigned long long>(tx.fast_retransmits),
              static_cast<unsigned long long>(tx.sack_retransmits),
              static_cast<unsigned long long>(tx.messages_acked));
}

// Config push over satellite: 200 x 1 KB desired-state messages offered at
// once. With congestion control the flight is cwnd-limited (slow start
// probes the path); without it the whole burst hits the 20 Mbps uplink in
// one shot.
void config_push_row(bool cwnd, std::uint64_t seed) {
  sim::Kernel kernel;
  sim::Rng rng(seed);
  sim::LinkConfig link;
  link.bandwidth_bps = 20e6;
  link.latency = 300 * sim::kMillisecond;
  link.jitter = 20 * sim::kMillisecond;
  link.loss_probability = 0.01;  // acceptance geometry: 600 ms RTT, 1% loss
  net::DuplexLink path(kernel, rng, link);
  net::ReliableConfig rel;
  rel.congestion_control = cwnd;
  net::ReliablePair pair = net::make_reliable_pair(kernel, path, rel);
  pair.b->set_receiver([](common::Bytes) {});

  const common::Bytes payload(1024, 0x42);
  for (int i = 0; i < 200; ++i) pair.a->send(payload);
  kernel.run();

  const net::ReliableStats& tx = pair.a->stats();
  std::printf("%-22s %10.2f %10llu %10llu %10llu %10llu\n",
              cwnd ? "cwnd on" : "cwnd off", sim::to_seconds(kernel.now()),
              static_cast<unsigned long long>(tx.max_flight_size),
              static_cast<unsigned long long>(tx.cwnd),
              static_cast<unsigned long long>(tx.retransmissions),
              static_cast<unsigned long long>(tx.messages_acked));
}

}  // namespace

int main() {
  benchutil::banner(
      "Ablation A2 — GTP across the backhaul vs Magma's local termination",
      "Hasan et al., NSDI'23, §3.1");

  struct Case {
    const char* name;
    sim::LinkConfig config;
  };
  const Case cases[] = {
      {"fiber (5ms, 0%)", sim::fiber_backhaul()},
      {"microwave (15ms, 0.5%)", sim::microwave_backhaul()},
      {"satellite (300ms, 2%)", sim::satellite_backhaul()},
  };

  std::printf("%-26s %10s %14s %14s %16s\n", "backhaul", "+loss%",
              "GTP-C succ%", "GTP-C lat(s)", "Magma attach%");
  double gtpc_sat_lossy = 1.0;
  double magma_sat_lossy = 0.0;
  for (const Case& c : cases) {
    for (const double extra : {0.0, 0.15, 0.35}) {
      const GtpcOutcome gtpc = run_gtpc(c.config, extra, 5);
      const double magma_csr = run_magma(c.config, extra, 5);
      std::printf("%-26s %10.0f %14.1f %14.2f %16.1f\n", c.name, extra * 100,
                  gtpc.success_rate * 100, gtpc.mean_latency_s,
                  magma_csr * 100);
      if (std::string(c.name).starts_with("satellite") && extra == 0.35) {
        gtpc_sat_lossy = gtpc.success_rate;
        magma_sat_lossy = magma_csr;
      }
    }
  }

  std::printf("\nTransport fidelity — orchestrator-sync channel in isolation "
              "(1200 x 512 B over 5 min):\n");
  std::printf("%-26s %-9s %8s %8s %10s %10s %8s\n", "backhaul", "rto", "srtt(s)",
              "rto(s)", "retrans", "spurious", "resets");
  for (const Case& c : {cases[1], cases[2]}) {  // microwave, satellite
    transport_fidelity_row(c.name, c.config, false, 9);
    transport_fidelity_row(c.name, c.config, true, 9);
  }

  std::printf("\nSACK burst recovery — 4 contiguous losses in a 32-segment "
              "window, satellite 600 ms RTT:\n");
  std::printf("%-22s %10s %10s %10s %10s %10s\n", "transport", "done(s)",
              "retrans", "fast_rt", "sack_rt", "acked");
  sack_burst_row(false, 11);
  sack_burst_row(true, 11);

  std::printf("\nSatellite config push — 200 x 1 KB at once, 600 ms RTT, "
              "1%% loss:\n");
  std::printf("%-22s %10s %10s %10s %10s %10s\n", "window", "done(s)",
              "max_flight", "cwnd", "retrans", "acked");
  config_push_row(false, 13);
  config_push_row(true, 13);

  const bool holds = gtpc_sat_lossy < 0.85 && magma_sat_lossy > 0.95;
  std::printf("\nSHAPE %s: on degraded satellite backhaul GTP-C loses "
              "sessions outright (%.0f%% success) while Magma's "
              "locally-terminated attach stays at %.0f%% — the UE \"never "
              "sees a dropped GTP connection\".\n",
              holds ? "HOLDS" : "DIVERGES", gtpc_sat_lossy * 100,
              magma_sat_lossy * 100);
  return holds ? 0 : 1;
}
