// Figure 7: steady-state user-plane throughput vs CPUs allocated to the
// user plane (virtual AGW).
//
// Paper setup (§4.2): the Xeon 6126 virtual AGW with cores statically
// partitioned between user and control plane; offered load capped at
// 2.5 Gbps because "the commercial test equipment we used was unable to
// generate more than 2.5 Gbps aggregate load". Expected shape: throughput
// scales ~linearly with user-plane cores until it hits the generator's
// 2.5 Gbps ceiling ("note our traffic generator was unable to saturate the
// virtual AGW's user plane in the 5 CPU case and above").
#include <cstdio>

#include <map>

#include "bench_util.h"

using namespace magma;

namespace {

constexpr int kTotalVcpus = 8;
constexpr double kGeneratorCapBps = 2.5e9;  // Landslide limit from the paper

// Per-service on-CPU seconds over the measurement window (the continuous
// profiler's attribution), plus the class-level total for the same window.
struct CpuBreakdown {
  std::map<std::string, double> service_busy_s;
  double total_busy_s = 0;
  double window_s = 0;
  int cores = 0;
};

double run_config(int user_cores, bool flexible, double* out_offered,
                  CpuBreakdown* out_breakdown = nullptr) {
  core::Network net(core::NetworkConfig{.seed = 11});
  agw::AccessGateway& agw =
      net.add_agw(agw::virtual_xeon(kTotalVcpus, flexible ? -1 : user_cores));
  // vRAN-style big cell: the radio must not bottleneck this experiment.
  ran::EnodebConfig big;
  big.max_active_ues = 400;
  big.dl_capacity_bps = 10e9;
  ran::EnodeB& enb = net.add_enodeb(agw, big);
  net.run_for(2 * sim::kSecond);

  const int kUes = 25;
  const double per_ue = kGeneratorCapBps / kUes;
  std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, kUes);
  core::AttachRamp ramp(net, ues, enb, 16.0);
  net.run_for(sim::from_seconds(kUes / 16.0 + 20));

  std::vector<std::unique_ptr<core::DownlinkFlow>> flows;
  for (ran::UeLte* ue : ues) {
    if (!ue->ip().has_value()) continue;
    flows.push_back(std::make_unique<core::DownlinkFlow>(
        net, agw, *ue->ip(), per_ue, 50 * sim::kMillisecond));
    flows.back()->start();
  }

  const std::uint64_t fwd_before = agw.user_plane_stats().forwarded_bytes;
  const std::uint64_t off_before = agw.user_plane_stats().offered_bytes;
  const std::map<std::string, double> svc_before =
      agw.cpu().service_busy_seconds();
  const double busy_before =
      sim::to_seconds(agw.cpu().stats().busy_ns[0]) +
      sim::to_seconds(agw.cpu().stats().busy_ns[1]);
  const double kMeasureSeconds = 20;
  net.run_for(sim::from_seconds(kMeasureSeconds));
  if (out_breakdown != nullptr) {
    out_breakdown->window_s = kMeasureSeconds;
    out_breakdown->cores = agw.cpu().config().cores;
    out_breakdown->total_busy_s =
        sim::to_seconds(agw.cpu().stats().busy_ns[0]) +
        sim::to_seconds(agw.cpu().stats().busy_ns[1]) - busy_before;
    for (const auto& [service, seconds] : agw.cpu().service_busy_seconds()) {
      const auto it = svc_before.find(service);
      const double delta =
          seconds - (it == svc_before.end() ? 0.0 : it->second);
      if (delta > 0) out_breakdown->service_busy_s[service] = delta;
    }
  }
  if (out_offered != nullptr) {
    *out_offered =
        static_cast<double>(agw.user_plane_stats().offered_bytes - off_before) *
        8 / kMeasureSeconds;
  }
  return static_cast<double>(agw.user_plane_stats().forwarded_bytes -
                             fwd_before) *
         8 / kMeasureSeconds;
}

}  // namespace

int main() {
  benchutil::banner(
      "Figure 7 — steady-state throughput vs user-plane CPU allocation",
      "Hasan et al., NSDI'23, Figure 7 / §4.2");
  std::printf("Virtual AGW: %d vCPU Xeon profile; offered load capped at "
              "%.1f Gbps (the paper's traffic-generator limit).\n\n",
              kTotalVcpus, kGeneratorCapBps / 1e9);

  std::printf("%16s %16s %14s\n", "user-plane CPUs", "throughput(Gbps)",
              "offered(Gbps)");
  double tput_1 = 0;
  double tput_4 = 0;
  double tput_7 = 0;
  CpuBreakdown saturated;
  for (int k = 1; k <= 7; ++k) {
    double offered = 0;
    const double tput =
        run_config(k, false, &offered, k == 1 ? &saturated : nullptr);
    std::printf("%16d %16.2f %14.2f\n", k, tput / 1e9, offered / 1e9);
    if (k == 1) tput_1 = tput;
    if (k == 4) tput_4 = tput;
    if (k == 7) tput_7 = tput;
  }
  double offered_flex = 0;
  const double tput_flex = run_config(0, true, &offered_flex);
  std::printf("%16s %16.2f %14.2f   (kernel-scheduled, no pinning)\n",
              "flexible", tput_flex / 1e9, offered_flex / 1e9);

  // Continuous profiler: where the CPU time actually went in the saturated
  // single-user-core configuration. Per-service attribution must sum to the
  // measured class-level busy time (both are charged at task start).
  std::printf("\nPer-service on-CPU breakdown at saturation (1 user core, "
              "%.0f s window):\n", saturated.window_s);
  double svc_sum = 0;
  for (const auto& [service, seconds] : saturated.service_busy_s) {
    std::printf("%16s %15.2f s %9.1f%% of busy\n", service.c_str(), seconds,
                saturated.total_busy_s > 0
                    ? 100.0 * seconds / saturated.total_busy_s
                    : 0.0);
    svc_sum += seconds;
  }
  const double util =
      saturated.total_busy_s / (saturated.window_s * saturated.cores);
  std::printf("%16s %15.2f s   (utilization %.1f%% of %d cores)\n", "total",
              saturated.total_busy_s, 100.0 * util, saturated.cores);
  const bool attributed =
      saturated.total_busy_s > 0 &&
      svc_sum > 0.99 * saturated.total_busy_s &&
      svc_sum < 1.01 * saturated.total_busy_s;
  std::printf("profiler attribution %s: per-service sum %.2f s vs measured "
              "%.2f s\n", attributed ? "MATCHES" : "DIVERGES", svc_sum,
              saturated.total_busy_s);

  // Shape checks: ~linear scaling in the unconstrained region; generator
  // cap binds for large allocations; flexible matches the best pinned.
  const bool linear = tput_4 > 3.2 * tput_1 && tput_4 < 4.8 * tput_1;
  const bool capped = tput_7 > 0.9 * kGeneratorCapBps;
  const bool flexible_good = tput_flex > 0.9 * kGeneratorCapBps;
  std::printf("\nSHAPE %s: linear scaling below the cap (1->4 cores: "
              "%.2fx), generator-capped at high allocations, flexible "
              "scheduling reaches the cap too\n",
              (linear && capped && flexible_good) ? "HOLDS" : "DIVERGES",
              tput_4 / tput_1);
  return (linear && capped && flexible_good && attributed) ? 0 : 1;
}
