// Figure 7: steady-state user-plane throughput vs CPUs allocated to the
// user plane (virtual AGW).
//
// Paper setup (§4.2): the Xeon 6126 virtual AGW with cores statically
// partitioned between user and control plane; offered load capped at
// 2.5 Gbps because "the commercial test equipment we used was unable to
// generate more than 2.5 Gbps aggregate load". Expected shape: throughput
// scales ~linearly with user-plane cores until it hits the generator's
// 2.5 Gbps ceiling ("note our traffic generator was unable to saturate the
// virtual AGW's user plane in the 5 CPU case and above").
#include <cstdio>

#include "bench_util.h"

using namespace magma;

namespace {

constexpr int kTotalVcpus = 8;
constexpr double kGeneratorCapBps = 2.5e9;  // Landslide limit from the paper

double run_config(int user_cores, bool flexible, double* out_offered) {
  core::Network net(core::NetworkConfig{.seed = 11});
  agw::AccessGateway& agw =
      net.add_agw(agw::virtual_xeon(kTotalVcpus, flexible ? -1 : user_cores));
  // vRAN-style big cell: the radio must not bottleneck this experiment.
  ran::EnodebConfig big;
  big.max_active_ues = 400;
  big.dl_capacity_bps = 10e9;
  ran::EnodeB& enb = net.add_enodeb(agw, big);
  net.run_for(2 * sim::kSecond);

  const int kUes = 25;
  const double per_ue = kGeneratorCapBps / kUes;
  std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, kUes);
  core::AttachRamp ramp(net, ues, enb, 16.0);
  net.run_for(sim::from_seconds(kUes / 16.0 + 20));

  std::vector<std::unique_ptr<core::DownlinkFlow>> flows;
  for (ran::UeLte* ue : ues) {
    if (!ue->ip().has_value()) continue;
    flows.push_back(std::make_unique<core::DownlinkFlow>(
        net, agw, *ue->ip(), per_ue, 50 * sim::kMillisecond));
    flows.back()->start();
  }

  const std::uint64_t fwd_before = agw.user_plane_stats().forwarded_bytes;
  const std::uint64_t off_before = agw.user_plane_stats().offered_bytes;
  const double kMeasureSeconds = 20;
  net.run_for(sim::from_seconds(kMeasureSeconds));
  if (out_offered != nullptr) {
    *out_offered =
        static_cast<double>(agw.user_plane_stats().offered_bytes - off_before) *
        8 / kMeasureSeconds;
  }
  return static_cast<double>(agw.user_plane_stats().forwarded_bytes -
                             fwd_before) *
         8 / kMeasureSeconds;
}

}  // namespace

int main() {
  benchutil::banner(
      "Figure 7 — steady-state throughput vs user-plane CPU allocation",
      "Hasan et al., NSDI'23, Figure 7 / §4.2");
  std::printf("Virtual AGW: %d vCPU Xeon profile; offered load capped at "
              "%.1f Gbps (the paper's traffic-generator limit).\n\n",
              kTotalVcpus, kGeneratorCapBps / 1e9);

  std::printf("%16s %16s %14s\n", "user-plane CPUs", "throughput(Gbps)",
              "offered(Gbps)");
  double tput_1 = 0;
  double tput_4 = 0;
  double tput_7 = 0;
  for (int k = 1; k <= 7; ++k) {
    double offered = 0;
    const double tput = run_config(k, false, &offered);
    std::printf("%16d %16.2f %14.2f\n", k, tput / 1e9, offered / 1e9);
    if (k == 1) tput_1 = tput;
    if (k == 4) tput_4 = tput;
    if (k == 7) tput_7 = tput;
  }
  double offered_flex = 0;
  const double tput_flex = run_config(0, true, &offered_flex);
  std::printf("%16s %16.2f %14.2f   (kernel-scheduled, no pinning)\n",
              "flexible", tput_flex / 1e9, offered_flex / 1e9);

  // Shape checks: ~linear scaling in the unconstrained region; generator
  // cap binds for large allocations; flexible matches the best pinned.
  const bool linear = tput_4 > 3.2 * tput_1 && tput_4 < 4.8 * tput_1;
  const bool capped = tput_7 > 0.9 * kGeneratorCapBps;
  const bool flexible_good = tput_flex > 0.9 * kGeneratorCapBps;
  std::printf("\nSHAPE %s: linear scaling below the cap (1->4 cores: "
              "%.2fx), generator-capped at high allocations, flexible "
              "scheduling reaches the cap too\n",
              (linear && capped && flexible_good) ? "HOLDS" : "DIVERGES",
              tput_4 / tput_1);
  return (linear && capped && flexible_good) ? 0 : 1;
}
