// Figure 6: connection success rate vs attach rate on the bare-metal AGW.
//
// Paper claim (§4.2): "above 2 UE/s, the bare-metal AGW is unable to
// service all connection attempts, with the connection success rate (CSR)
// falling linearly beyond this point" — the MME component is the
// bottleneck. We sweep the offered attach rate, count first-attempt
// successes (no retries: CSR measures the network, not UE persistence),
// and report CSR per rate plus 5-second bins for one overloaded rate.
#include <algorithm>
#include <cstdio>
#include <utility>

#include "bench_util.h"
#include "obs/critical_path.h"
#include "obs/tail_sampler.h"

using namespace magma;

namespace {

struct RatePoint {
  double rate;
  double csr;
  double mean_latency_s;
};

RatePoint run_rate(double rate) {
  core::Network net(core::NetworkConfig{.seed = 7});
  agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
  ran::EnodebConfig big;
  big.max_active_ues = 500;  // the radio must not be the limiter here
  big.dl_capacity_bps = 800e6;
  ran::EnodeB& enb = net.add_enodeb(agw, big);
  net.run_for(2 * sim::kSecond);

  const int kUes = 300;
  std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, kUes);
  core::AttachRamp ramp(net, ues, enb, rate);

  // "a surge of new UEs attaching then saturating the data plane": attached
  // UEs run downlink traffic while later UEs are still attaching.
  std::vector<std::unique_ptr<core::DownlinkFlow>> flows;
  ran::GaugeSampler flow_starter(
      net.kernel(),
      [&]() {
        while (flows.size() <
               static_cast<std::size_t>(agw.sessiond().active_sessions())) {
          const std::size_t i = flows.size();
          if (i >= ues.size() || !ues[i]->ip().has_value()) break;
          flows.push_back(std::make_unique<core::DownlinkFlow>(
              net, agw, *ues[i]->ip(), 1.5e6, 200 * sim::kMillisecond));
          flows.back()->start();
        }
        return 0.0;
      },
      sim::kSecond);
  flow_starter.start();

  const double ramp_s = kUes / rate;
  net.run_for(sim::from_seconds(ramp_s + 40));

  double latency_sum = 0;
  int latency_n = 0;
  for (const core::AttachRecord& record : ramp.records()) {
    if (record.done && record.outcome.success) {
      latency_sum += sim::to_seconds(record.outcome.latency);
      ++latency_n;
    }
  }
  return RatePoint{rate, ramp.csr(),
                   latency_n > 0 ? latency_sum / latency_n : 0};
}

// --- Control-transport ablation over satellite backhaul ----------------------
//
// The paper's rural deployments run the orchestrator link over satellite
// (§3.1). With a fixed sub-RTT retransmission timeout the reliable control
// transport spends the whole run retransmitting segments that were never
// lost; the adaptive RFC 6298 estimator converges on the path RTT and the
// spurious retransmissions disappear. Attach itself terminates at the AGW,
// so CSR should be indifferent — the win is control-channel efficiency.

struct SatellitePoint {
  double csr;
  double mean_latency_s;
  net::ReliableStats orc8r;  // orchestrator-side endpoint of the control pair
  net::ReliableStats agw;    // AGW-side endpoint
};

SatellitePoint run_satellite(bool adaptive, bool cwnd = true) {
  core::NetworkConfig config;
  config.seed = 11;
  // Acceptance geometry: >= 500 ms RTT at 1% loss.
  config.backhaul = sim::LinkConfig{20e6, 300 * sim::kMillisecond,
                                    20 * sim::kMillisecond, 0.01, "sat-1pct"};
  if (!adaptive) {
    // The pre-estimator transport: 200 ms fixed timeout, a third of the RTT.
    config.transport.adaptive_rto = false;
    config.transport.initial_rto = 200 * sim::kMillisecond;
  }
  if (!cwnd) {
    // Window ablation: every queued config/metrics message bursts onto the
    // 20 Mbps satellite uplink at once instead of probing with slow start.
    config.transport.congestion_control = false;
  }
  core::Network net(config);
  agw::AccessGateway& agw = net.add_agw(agw::virtual_xeon(4));
  ran::EnodebConfig big;
  big.max_active_ues = 200;
  ran::EnodeB& enb = net.add_enodeb(agw, big);
  net.run_for(5 * sim::kSecond);

  const int kUes = 40;
  std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, kUes);
  net.run_for(60 * sim::kSecond);  // config push lands over the backhaul
  core::AttachRamp ramp(net, ues, enb, 2.0);
  net.run_for(sim::from_seconds(kUes / 2.0 + 40));
  net.run_for(2 * sim::kMinute);  // periodic check-in/metrics/sync traffic

  double latency_sum = 0;
  int latency_n = 0;
  for (const core::AttachRecord& record : ramp.records()) {
    if (record.done && record.outcome.success) {
      latency_sum += sim::to_seconds(record.outcome.latency);
      ++latency_n;
    }
  }
  return SatellitePoint{ramp.csr(),
                        latency_n > 0 ? latency_sum / latency_n : 0,
                        net.control_stats_orc8r(agw),
                        net.control_stats_agw(agw)};
}

}  // namespace

int main() {
  benchutil::banner("Figure 6 — connection success rate vs attach rate",
                    "Hasan et al., NSDI'23, Figure 6 / §4.2");
  std::printf("AGW: bare-metal J3160 profile, single MME worker.\n");
  std::printf("Paper: CSR = 100%% up to ~2 UE/s, falling beyond that.\n\n");

  std::printf("%10s %8s %14s\n", "UE/s", "CSR%", "mean_lat(s)");
  const double rates[] = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 8.0};
  double csr_at_2 = 0;
  double csr_at_8 = 0;
  for (const double rate : rates) {
    const RatePoint point = run_rate(rate);
    std::printf("%10.1f %8.1f %14.2f\n", point.rate, point.csr * 100,
                point.mean_latency_s);
    if (rate == 2.0) csr_at_2 = point.csr;
    if (rate == 8.0) csr_at_8 = point.csr;
  }

  // 5-second bins for one overloaded run, mirroring the paper's plot.
  std::printf("\nPer-5s CSR bins at 4 UE/s (queue build-up visible):\n");
  {
    core::Network net(core::NetworkConfig{.seed = 8});
    agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
    ran::EnodebConfig big;
    big.max_active_ues = 400;
    ran::EnodeB& enb = net.add_enodeb(agw, big);
    net.run_for(2 * sim::kSecond);
    std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, 320);
    core::AttachRamp ramp(net, ues, enb, 4.0);
    net.run_for(sim::from_seconds(320 / 4.0 + 40));
    std::printf("%10s %8s\n", "bin(s)", "CSR%");
    for (double t = 0; t < 80; t += 10) {
      std::printf("%6.0f-%-3.0f %8.1f\n", t, t + 10,
                  ramp.csr_in_window(sim::from_seconds(t),
                                     sim::from_seconds(t + 10)) *
                      100);
    }

    // Continuous profiler: what the overloaded AGW's CPU actually did, and
    // how long control work sat in the run queue — the MME bottleneck of
    // this figure, measured rather than inferred.
    std::printf("\nPer-service on-CPU time over the overloaded run:\n");
    for (const auto& [service, seconds] : agw.cpu().service_busy_seconds()) {
      std::printf("%16s %10.2f s\n", service.c_str(), seconds);
    }
    const obs::Histogram& wait =
        agw.cpu().queue_wait(sim::WorkClass::kControl);
    std::printf("control run-queue wait: n=%llu p50=%.3fs p95=%.3fs "
                "p99=%.3fs\n",
                static_cast<unsigned long long>(wait.count()),
                wait.quantile(0.50), wait.quantile(0.95),
                wait.quantile(0.99));
  }

  // Per-stage attach latency: where the time goes inside a healthy AGW.
  // Every attach span the tracer finishes lands in a gateway-side histogram
  // that magmad ships to metricsd on its 15 s tick; the quantiles below are
  // therefore computed exactly the way an operator's dashboard would see
  // them — from the orchestrator, not from simulator internals.
  std::printf("\nPer-stage attach latency at 1 UE/s (from metricsd "
              "histograms, seconds):\n");
  bool attribution_holds = false;
  {
    core::Network net(core::NetworkConfig{.seed = 9});
    agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
    ran::EnodebConfig big;
    big.max_active_ues = 400;
    ran::EnodeB& enb = net.add_enodeb(agw, big);
    net.run_for(2 * sim::kSecond);
    std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, 120);
    core::AttachRamp ramp(net, ues, enb, 1.0);
    net.run_for(sim::from_seconds(120 / 1.0 + 40));

    orc8r::Metricsd& metrics = net.orchestrator().metrics();
    std::printf("%-31s %8s %8s %8s %8s\n", "stage", "count", "p50", "p95",
                "p99");
    for (const char* name :
         {"span_lte_frontend_attach_s", "span_accessd_begin_attach_s",
          "span_accessd_verify_auth_s", "span_accessd_establish_s",
          "span_mobilityd_allocate_ip_s", "span_sessiond_create_session_s",
          "span_pipelined_install_flows_s"}) {
      std::printf("%-31s %8llu %8.3f %8.3f %8.3f\n", name,
                  static_cast<unsigned long long>(metrics.histogram_count(name)),
                  metrics.histogram_quantile(name, 0.50),
                  metrics.histogram_quantile(name, 0.95),
                  metrics.histogram_quantile(name, 0.99));
    }

    // Critical-path decomposition of the median attach. The quantile above
    // comes from a log-bucketed histogram; for the accounting check below we
    // need the exact value, so the p50 is recomputed from the root spans
    // themselves, and the median trace is walked with obs::critical_path.
    // The wait states charged by the instrumented layers — CPU, run-queue,
    // RPC wait, link transit — must explain the measured end-to-end attach
    // latency; anything they fail to claim shows up as timer/other.
    std::vector<std::pair<sim::Duration, std::uint64_t>> roots;
    for (const obs::SpanRecord& span : net.tracer().finished()) {
      if (span.parent_span_id != 0 || span.name != "attach" || span.error) {
        continue;
      }
      roots.emplace_back(span.duration(), span.trace_id);
    }
    std::sort(roots.begin(), roots.end());
    if (roots.empty()) {
      std::printf("\nno attach root spans in the ring — cannot attribute\n");
    } else {
      const auto& [p50, median_trace] = roots[roots.size() / 2];
      const obs::CriticalPathResult cp =
          obs::critical_path(net.tracer(), median_trace);
      std::printf("\nCritical path of the median attach (trace %llu, "
                  "%.3f ms total):\n  %s\n",
                  static_cast<unsigned long long>(median_trace),
                  1e3 * sim::to_seconds(cp.total),
                  obs::describe_breakdown(cp.breakdown).c_str());
      std::printf("  dominant chain:");
      for (const obs::CriticalPathEdge& edge : cp.path) {
        std::printf(" -> %s/%s (%.3fms)", edge.service.c_str(),
                    edge.name.c_str(), 1e3 * sim::to_seconds(edge.duration));
      }
      std::printf("\n");
      const sim::Duration attributed = cp.component(obs::WaitState::kCpu) +
                                       cp.component(obs::WaitState::kRunq) +
                                       cp.component(obs::WaitState::kRpcWait) +
                                       cp.component(obs::WaitState::kLinkTransit);
      const double ratio =
          p50 > 0 ? sim::to_seconds(attributed) / sim::to_seconds(p50) : 0;
      attribution_holds = cp.valid && p50 > 0 && ratio > 0.95 && ratio < 1.05;
      std::printf("  cpu+runq+rpc_wait+link_transit = %.3f ms, measured "
                  "attach p50 = %.3f ms (%.1f%% attributed)\n",
                  1e3 * sim::to_seconds(attributed),
                  1e3 * sim::to_seconds(p50), ratio * 100);
      // Sub-classify the remainder: `other` time on spans whose boundary
      // samples of the kernel event queue were both non-empty was spent
      // behind a backlog of scheduled work, not genuinely untracked.
      const sim::Duration other = cp.component(obs::WaitState::kOther);
      std::printf("  other = %.3f ms (backlogged %.3f ms, untracked %.3f ms; "
                  "max event-queue depth at span boundaries %zu)\n",
                  1e3 * sim::to_seconds(other),
                  1e3 * sim::to_seconds(cp.other_backlogged),
                  1e3 * sim::to_seconds(other - cp.other_backlogged),
                  cp.max_queue_depth);
    }

    // The fleet view of the same question: the gateway's TailSampler kept
    // the slowest attaches per 30 s window, magmad shipped their summaries
    // on the metrics tick, and metricsd aggregated them into this table —
    // the operator's "where does attach latency go" without ever shipping
    // full span trees over the backhaul.
    std::printf("\nFleet latency attribution (tail-sampled traces, via "
                "metricsd):\n%s",
                orc8r::format_latency_attribution(
                    metrics.latency_attribution())
                    .c_str());
    std::printf("  (%llu summaries ingested)\n",
                static_cast<unsigned long long>(
                    metrics.trace_summaries_ingested()));
  }

  // Tail-based sampling keeps the trace an operator actually wants: a slow
  // but *successful* attach survives ring eviction while an equally old fast
  // one ages out. Demonstrated on a deliberately tiny ring.
  std::printf("\nTail sampling under ring pressure (ring=32 spans, K=1):\n");
  bool tail_holds = false;
  {
    sim::Kernel kernel;
    obs::Tracer tracer(kernel);
    tracer.set_retention(32);
    obs::TailSamplerConfig tail_config;
    tail_config.keep_per_op = 1;
    tail_config.window = 60 * sim::kSecond;
    obs::TailSampler sampler(kernel, tracer, tail_config);

    // Two attaches start together at t=0: one finishes in 10 ms, the other
    // (the tail) takes 900 ms.
    const obs::TraceContext fast =
        tracer.begin("attach", "lte_frontend", "agw-demo");
    const obs::TraceContext slow =
        tracer.begin("attach", "lte_frontend", "agw-demo");
    kernel.run_until(10 * sim::kMillisecond);
    tracer.end(fast);
    kernel.run_until(900 * sim::kMillisecond);
    tracer.end(slow);  // displaces the fast keep: K=1, slower wins

    // A flood of fast traces overruns the 32-span ring.
    for (int i = 0; i < 100; ++i) {
      const obs::TraceContext t =
          tracer.begin("attach", "lte_frontend", "agw-demo");
      kernel.run_until(kernel.now() + 10 * sim::kMillisecond);
      tracer.end(t);
    }

    const bool slow_survived = !tracer.trace_spans(slow.trace_id).empty();
    const bool fast_evicted = tracer.trace_spans(fast.trace_id).empty();

    // Past the window, the keep is summarized and ready to ship.
    kernel.run_until(61 * sim::kSecond);
    const std::vector<obs::TraceSummary> shipped = sampler.drain_ready();
    const bool summarized = shipped.size() == 1 &&
                            shipped[0].trace_id == slow.trace_id &&
                            shipped[0].duration == 900 * sim::kMillisecond;
    tail_holds = slow_survived && fast_evicted && summarized;
    std::printf("  slow 900ms trace %s eviction; equally old fast 10ms "
                "trace %s; window shipped %zu summary(ies)\n",
                slow_survived ? "survived" : "LOST to",
                fast_evicted ? "evicted (as expected)" : "UNEXPECTEDLY kept",
                shipped.size());
  }

  // Control-transport ablation: same attach workload, satellite backhaul
  // (600 ms RTT, 1% loss), adaptive RFC 6298 RTO vs the old 200 ms fixed RTO.
  std::printf("\nControl transport over satellite backhaul (600 ms RTT, "
              "1%% loss), 40 UEs @ 2 UE/s:\n");
  std::printf("%-16s %6s %8s %8s %8s %10s %8s %8s %8s %6s %7s\n", "transport",
              "CSR%", "lat(s)", "srtt(s)", "rto(s)", "retrans", "fast_rt",
              "spurious", "resets", "cwnd", "maxflt");
  const SatellitePoint fixed = run_satellite(false);
  const SatellitePoint adaptive = run_satellite(true);
  const SatellitePoint no_cwnd = run_satellite(true, /*cwnd=*/false);
  for (const auto& [name, p] :
       {std::pair<const char*, const SatellitePoint&>{"fixed 200ms", fixed},
        {"adaptive", adaptive},
        {"adaptive nocwnd", no_cwnd}}) {
    // Sender-side counters summed over both directions; spurious
    // retransmissions are what the receivers saw arrive twice. cwnd and
    // max-flight are the orchestrator side (the config-push sender): with
    // congestion control on, the satellite push is cwnd-limited; with it
    // off, the whole desired-state burst hits the uplink at once.
    std::printf(
        "%-16s %6.1f %8.2f %8.3f %8.3f %10llu %8llu %8llu %8llu %6llu %7llu\n",
        name, p.csr * 100, p.mean_latency_s, sim::to_seconds(p.agw.srtt),
        sim::to_seconds(p.agw.rto),
        static_cast<unsigned long long>(p.orc8r.retransmissions +
                                        p.agw.retransmissions),
        static_cast<unsigned long long>(p.orc8r.fast_retransmits +
                                        p.agw.fast_retransmits),
        static_cast<unsigned long long>(p.orc8r.spurious_retransmits +
                                        p.agw.spurious_retransmits),
        static_cast<unsigned long long>(p.orc8r.resets + p.agw.resets),
        static_cast<unsigned long long>(p.orc8r.cwnd),
        static_cast<unsigned long long>(p.orc8r.max_flight_size));
  }
  std::printf("cwnd ablation: with congestion control the orchestrator's "
              "flight never exceeded %llu segments (cwnd-limited, cap %llu); "
              "without it the burst peaked at %llu in flight.\n",
              static_cast<unsigned long long>(adaptive.orc8r.max_flight_size),
              static_cast<unsigned long long>(net::ReliableConfig{}.max_cwnd),
              static_cast<unsigned long long>(no_cwnd.orc8r.max_flight_size));
  const std::uint64_t fixed_spurious =
      fixed.orc8r.spurious_retransmits + fixed.agw.spurious_retransmits;
  const std::uint64_t adaptive_spurious =
      adaptive.orc8r.spurious_retransmits + adaptive.agw.spurious_retransmits;
  const bool transport_holds =
      adaptive_spurious < 10 && fixed_spurious > 10 * adaptive_spurious;

  const bool shape_holds = csr_at_2 > 0.95 && csr_at_8 < 0.6;
  std::printf("\nSHAPE %s: CSR ~100%% at 2 UE/s (%.1f%%), degraded at "
              "8 UE/s (%.1f%%); knee near 2 UE/s as in the paper\n",
              shape_holds ? "HOLDS" : "DIVERGES", csr_at_2 * 100,
              csr_at_8 * 100);
  std::printf("TRANSPORT %s: adaptive RTO cuts spurious retransmissions on "
              "satellite control links to near zero (%llu vs %llu fixed)\n",
              transport_holds ? "HOLDS" : "DIVERGES",
              static_cast<unsigned long long>(adaptive_spurious),
              static_cast<unsigned long long>(fixed_spurious));
  std::printf("ATTRIBUTION %s: cpu + runq + rpc_wait + link_transit explain "
              "the measured attach p50 within 5%%\n",
              attribution_holds ? "HOLDS" : "DIVERGES");
  std::printf("TAIL %s: the slow successful attach survives ring eviction "
              "and ships a window summary; the fast one ages out\n",
              tail_holds ? "HOLDS" : "DIVERGES");
  return (shape_holds && transport_holds && attribution_holds && tail_holds)
             ? 0
             : 1;
}
