// Figure 6: connection success rate vs attach rate on the bare-metal AGW.
//
// Paper claim (§4.2): "above 2 UE/s, the bare-metal AGW is unable to
// service all connection attempts, with the connection success rate (CSR)
// falling linearly beyond this point" — the MME component is the
// bottleneck. We sweep the offered attach rate, count first-attempt
// successes (no retries: CSR measures the network, not UE persistence),
// and report CSR per rate plus 5-second bins for one overloaded rate.
#include <cstdio>

#include "bench_util.h"

using namespace magma;

namespace {

struct RatePoint {
  double rate;
  double csr;
  double mean_latency_s;
};

RatePoint run_rate(double rate) {
  core::Network net(core::NetworkConfig{.seed = 7});
  agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
  ran::EnodebConfig big;
  big.max_active_ues = 500;  // the radio must not be the limiter here
  big.dl_capacity_bps = 800e6;
  ran::EnodeB& enb = net.add_enodeb(agw, big);
  net.run_for(2 * sim::kSecond);

  const int kUes = 300;
  std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, kUes);
  core::AttachRamp ramp(net, ues, enb, rate);

  // "a surge of new UEs attaching then saturating the data plane": attached
  // UEs run downlink traffic while later UEs are still attaching.
  std::vector<std::unique_ptr<core::DownlinkFlow>> flows;
  ran::GaugeSampler flow_starter(
      net.kernel(),
      [&]() {
        while (flows.size() <
               static_cast<std::size_t>(agw.sessiond().active_sessions())) {
          const std::size_t i = flows.size();
          if (i >= ues.size() || !ues[i]->ip().has_value()) break;
          flows.push_back(std::make_unique<core::DownlinkFlow>(
              net, agw, *ues[i]->ip(), 1.5e6, 200 * sim::kMillisecond));
          flows.back()->start();
        }
        return 0.0;
      },
      sim::kSecond);
  flow_starter.start();

  const double ramp_s = kUes / rate;
  net.run_for(sim::from_seconds(ramp_s + 40));

  double latency_sum = 0;
  int latency_n = 0;
  for (const core::AttachRecord& record : ramp.records()) {
    if (record.done && record.outcome.success) {
      latency_sum += sim::to_seconds(record.outcome.latency);
      ++latency_n;
    }
  }
  return RatePoint{rate, ramp.csr(),
                   latency_n > 0 ? latency_sum / latency_n : 0};
}

}  // namespace

int main() {
  benchutil::banner("Figure 6 — connection success rate vs attach rate",
                    "Hasan et al., NSDI'23, Figure 6 / §4.2");
  std::printf("AGW: bare-metal J3160 profile, single MME worker.\n");
  std::printf("Paper: CSR = 100%% up to ~2 UE/s, falling beyond that.\n\n");

  std::printf("%10s %8s %14s\n", "UE/s", "CSR%", "mean_lat(s)");
  const double rates[] = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 8.0};
  double csr_at_2 = 0;
  double csr_at_8 = 0;
  for (const double rate : rates) {
    const RatePoint point = run_rate(rate);
    std::printf("%10.1f %8.1f %14.2f\n", point.rate, point.csr * 100,
                point.mean_latency_s);
    if (rate == 2.0) csr_at_2 = point.csr;
    if (rate == 8.0) csr_at_8 = point.csr;
  }

  // 5-second bins for one overloaded run, mirroring the paper's plot.
  std::printf("\nPer-5s CSR bins at 4 UE/s (queue build-up visible):\n");
  {
    core::Network net(core::NetworkConfig{.seed = 8});
    agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
    ran::EnodebConfig big;
    big.max_active_ues = 400;
    ran::EnodeB& enb = net.add_enodeb(agw, big);
    net.run_for(2 * sim::kSecond);
    std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, 320);
    core::AttachRamp ramp(net, ues, enb, 4.0);
    net.run_for(sim::from_seconds(320 / 4.0 + 40));
    std::printf("%10s %8s\n", "bin(s)", "CSR%");
    for (double t = 0; t < 80; t += 10) {
      std::printf("%6.0f-%-3.0f %8.1f\n", t, t + 10,
                  ramp.csr_in_window(sim::from_seconds(t),
                                     sim::from_seconds(t + 10)) *
                      100);
    }
  }

  const bool shape_holds = csr_at_2 > 0.95 && csr_at_8 < 0.6;
  std::printf("\nSHAPE %s: CSR ~100%% at 2 UE/s (%.1f%%), degraded at "
              "8 UE/s (%.1f%%); knee near 2 UE/s as in the paper\n",
              shape_holds ? "HOLDS" : "DIVERGES", csr_at_2 * 100,
              csr_at_8 * 100);
  return shape_holds ? 0 : 1;
}
