// fleet_slo_availability — the fig.9-style SLO accounting bench.
//
// Runs a small fleet through a week-compressed outage scenario with
// *known* injected downtime — backhaul cuts on two gateways and a wedged
// magmad (service crash) on a third — and checks that the orc8r SLO layer
// reconstructs reality from the signals that already flow:
//
//   1. The statusd availability ledger, with its backdated down edges,
//      lands within 0.1% of the ground-truth injected availability, per
//      gateway AND for the fleet rollup (§5: AccessParks judged the
//      deployment by exactly this number — 99.7% average availability).
//   2. The multi-window burn-rate alert on sli_gateway_up fires while an
//      outage is burning budget and clears after recovery.
//   3. The downtime attribution join labels every injected interval with
//      the right non-unknown cause (backhaul vs service_crash).
//
// Prints the metricsd fleet availability rollup and the SLO report — the
// operator's answer to "what was my fleet's availability and why".
//
// Usage: fleet_slo_availability [--quick]
//   --quick : 24 simulated hours (ctest). Default: 7 simulated days.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "agw/agw.h"
#include "bench_util.h"
#include "core/network.h"
#include "obs/events.h"
#include "obs/slo/availability.h"
#include "orc8r/metricsd.h"
#include "orc8r/orchestrator.h"
#include "sim/time.h"

using namespace magma;

namespace {

constexpr int kFleet = 6;

struct TruthInterval {
  int gw = 0;
  sim::TimePoint start = 0;
  sim::TimePoint end = 0;
  obs::slo::DowntimeCause cause = obs::slo::DowntimeCause::kUnknown;
};

bool check(bool ok, const char* what, int& failures) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++failures;
  return ok;
}

bool burn_alert_firing(const orc8r::Metricsd& metricsd,
                       const std::string& gateway_id) {
  for (const auto& alert : metricsd.active_alerts()) {
    if (alert.rule == "slo_availability_burn" &&
        alert.gateway_id == gateway_id) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  benchutil::banner("fleet_slo_availability — SLO accounting vs ground truth",
                    "§5 'average network availability of 99.7%'");

  // Tight cadences keep the backdated-edge error (≤ one checkin interval
  // per edge) far inside the 0.1% budget even over the quick horizon.
  core::NetworkConfig config;
  config.magmad.checkin_interval = 15 * sim::kSecond;
  config.magmad.metrics_interval = 15 * sim::kSecond;
  core::Network net(config);
  for (int i = 0; i < kFleet; ++i) net.add_agw(agw::bare_metal_j3160());

  const sim::Duration horizon =
      quick ? 24 * sim::kHour : 7 * 24 * sim::kHour;
  std::printf("fleet: %d AGWs, checkin every %.0fs, horizon %s\n\n", kFleet,
              sim::to_seconds(config.magmad.checkin_interval),
              quick ? "24h (--quick)" : "7 days");

  int failures = 0;

  // ---- Injected fault schedule (ground truth) --------------------------
  // All faults land inside the first 20h so --quick exercises every one.
  std::vector<TruthInterval> truth;
  const auto at = [](double hours) {
    return static_cast<sim::TimePoint>(hours * 3600) * sim::kSecond;
  };

  // Settle past first contact so every gateway is observed and healthy.
  net.run_for(5 * sim::kMinute);

  const auto run_until = [&](sim::TimePoint t) {
    if (t > net.kernel().now()) net.run_for(t - net.kernel().now());
  };

  // gw0: backhaul cut 2h–4h.
  run_until(at(2));
  net.set_backhaul_up(net.agw(0), false);
  truth.push_back({0, at(2), at(4), obs::slo::DowntimeCause::kBackhaul});

  // Mid-outage probe: the availability burn alert must be firing for gw0
  // once both the 5-min and 1-h windows have burned past threshold.
  run_until(at(3));
  check(net.orchestrator().statusd().health("gw0") ==
            orc8r::GatewayHealth::kUnreachable,
        "statusd marked gw0 Unreachable mid-outage", failures);
  check(net.orchestrator().statusd().availability().is_down("gw0"),
        "ledger holds an open downtime interval for gw0", failures);
  check(burn_alert_firing(net.orchestrator().metrics(), "gw0"),
        "slo_availability_burn firing for gw0 mid-outage", failures);

  run_until(at(4));
  net.set_backhaul_up(net.agw(0), true);

  // gw1: backhaul cut 6h–6.5h.
  run_until(at(6));
  net.set_backhaul_up(net.agw(1), false);
  truth.push_back({1, at(6), at(6.5), obs::slo::DowntimeCause::kBackhaul});
  run_until(at(6.5));
  net.set_backhaul_up(net.agw(1), true);

  // gw0 recovered >2h ago: both burn windows have drained.
  check(!burn_alert_firing(net.orchestrator().metrics(), "gw0"),
        "slo_availability_burn cleared for gw0 after recovery", failures);

  // gw2: service crash at 9h — sessiond logs an ERROR, then magmad wedges
  // (every periodic loop stops doing work) until 9h45m. The ERROR event
  // ships before the wedge; the counters stay flat, so attribution must
  // pick service_crash over backhaul.
  run_until(at(9));
  net.agw(2).events().push(obs::Event{net.kernel().now(), "gw2",
                                      "service_crash", "sessiond",
                                      "sessiond terminated: assert failure",
                                      obs::EventSeverity::kError});
  net.run_for(10 * sim::kSecond);  // let the event flush ship
  net.agw(2).magmad().simulate_wedge(true);
  truth.push_back(
      {2, net.kernel().now(), at(9.75), obs::slo::DowntimeCause::kServiceCrash});
  run_until(at(9.75));
  net.agw(2).magmad().simulate_wedge(false);

  // gw0 again: backhaul cut 16h–17h (two intervals on one gateway).
  run_until(at(16));
  net.set_backhaul_up(net.agw(0), false);
  truth.push_back({0, at(16), at(17), obs::slo::DowntimeCause::kBackhaul});
  run_until(at(17));
  net.set_backhaul_up(net.agw(0), true);

  // Run out the horizon (covers the attribution settle after the last
  // recovery and drains every burn window).
  run_until(horizon);
  const sim::TimePoint now = net.kernel().now();

  const auto& ledger = net.orchestrator().statusd().availability();

  // ---- 1. Availability vs ground truth ---------------------------------
  std::printf("Availability vs injected ground truth (0.1%% budget):\n");
  double fleet_measured = 0;
  double fleet_truth = 0;
  for (int i = 0; i < kFleet; ++i) {
    const std::string id = "gw" + std::to_string(i);
    const sim::TimePoint seen = ledger.first_seen(id);
    double truth_down_s = 0;
    for (const auto& t : truth) {
      if (t.gw == i) truth_down_s += sim::to_seconds(t.end - t.start);
    }
    const double denom_s = sim::to_seconds(now - seen);
    const double truth_avail = 1.0 - truth_down_s / denom_s;
    const double measured = ledger.uptime_ratio(id, 0, now);
    fleet_measured += measured;
    fleet_truth += truth_avail;
    char what[128];
    std::snprintf(what, sizeof(what),
                  "%s measured %.4f%% vs truth %.4f%% (|err| %.4f%%)",
                  id.c_str(), measured * 100.0, truth_avail * 100.0,
                  std::fabs(measured - truth_avail) * 100.0);
    check(std::fabs(measured - truth_avail) <= 0.001, what, failures);
  }
  fleet_measured /= kFleet;
  fleet_truth /= kFleet;
  {
    char what[128];
    std::snprintf(what, sizeof(what),
                  "FLEET measured %.4f%% vs truth %.4f%% (|err| %.4f%%)",
                  fleet_measured * 100.0, fleet_truth * 100.0,
                  std::fabs(fleet_measured - fleet_truth) * 100.0);
    check(std::fabs(fleet_measured - fleet_truth) <= 0.001, what, failures);
  }

  // ---- 2. Downtime attribution -----------------------------------------
  std::printf("\nDowntime attribution:\n");
  for (int i = 0; i < kFleet; ++i) {
    const std::string id = "gw" + std::to_string(i);
    const auto* ivs = ledger.intervals(id);
    std::size_t expected = 0;
    for (const auto& t : truth) {
      if (t.gw == i) ++expected;
    }
    const std::size_t got = ivs != nullptr ? ivs->size() : 0;
    char what[128];
    std::snprintf(what, sizeof(what), "%s: %zu downtime interval(s), want %zu",
                  id.c_str(), got, expected);
    check(got == expected, what, failures);
  }
  for (const auto& t : truth) {
    const std::string id = "gw" + std::to_string(t.gw);
    const auto* ivs = ledger.intervals(id);
    const obs::slo::DowntimeInterval* match = nullptr;
    if (ivs != nullptr) {
      for (const auto& iv : *ivs) {
        // Backdating bounds the measured edge to within ~2 checkin
        // intervals of the injected cut.
        if (std::llabs(iv.start - t.start) <=
            2 * config.magmad.checkin_interval) {
          match = &iv;
          break;
        }
      }
    }
    char what[160];
    if (match == nullptr) {
      std::snprintf(what, sizeof(what),
                    "%s outage @%.0fh: interval found near injected start",
                    id.c_str(), sim::to_seconds(t.start) / 3600.0);
      check(false, what, failures);
      continue;
    }
    std::snprintf(what, sizeof(what), "%s outage @%.0fh labeled %s (%s)",
                  id.c_str(), sim::to_seconds(t.start) / 3600.0,
                  obs::slo::downtime_cause_name(match->cause),
                  match->detail.c_str());
    check(match->cause == t.cause, what, failures);
  }
  {
    const auto& stats = net.orchestrator().stats();
    char what[128];
    std::snprintf(what, sizeof(what),
                  "attribution join labeled %llu/%zu intervals (unattributed "
                  "%llu)",
                  static_cast<unsigned long long>(
                      stats.downtime_intervals_labeled),
                  truth.size(),
                  static_cast<unsigned long long>(stats.downtime_unattributed));
    check(stats.downtime_intervals_labeled == truth.size() &&
              stats.downtime_unattributed == 0,
          what, failures);
  }

  // ---- 3. Burn alert hygiene at horizon --------------------------------
  std::printf("\nAlert hygiene at horizon:\n");
  bool any_burn = false;
  for (const auto& alert : net.orchestrator().metrics().active_alerts()) {
    if (alert.rule.rfind("slo_", 0) == 0) any_burn = true;
  }
  check(!any_burn, "no slo_* burn alert still firing at horizon", failures);

  // ---- The operator's view ---------------------------------------------
  std::printf("\nFleet availability rollup (metricsd):\n%s",
              orc8r::format_availability(
                  net.orchestrator().availability_rollup(0, now))
                  .c_str());
  std::printf("\nSLO report:\n%s",
              obs::slo::format_slo_report(net.orchestrator().slo_report(0, now))
                  .c_str());

  std::printf("\n%s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}
