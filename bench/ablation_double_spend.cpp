// Ablation A6: quota double-spend across AGWs is bounded by the grant size
// (§3.4).
//
// "While it is possible for a malicious user to double-spend by moving
// between AGWs strategically, the maximum amount of double-spend permitted
// is capped as a business decision by the quota size."
//
// Adversary model: the user attaches at AGW-1, draws a quota grant, uses
// it, and moves to AGW-2 *without a clean detach* (AGW-1 crashes before
// reconciling). We sweep the quota size and measure total delivered bytes
// beyond the account balance.
#include <cstdio>

#include "bench_util.h"

using namespace magma;

namespace {

struct Outcome {
  std::uint64_t balance;
  std::uint64_t delivered;
  std::int64_t overdraft;
};

Outcome run_quota(std::uint64_t quota_bytes, std::uint64_t balance) {
  core::NetworkConfig config;
  config.with_ocs = true;
  config.seed = quota_bytes;
  core::Network net(config);
  agw::AccessGateway& agw1 = net.add_agw(agw::virtual_xeon(4));
  agw::AccessGateway& agw2 = net.add_agw(agw::virtual_xeon(4));
  ran::EnodeB& enb1 = net.add_enodeb(agw1);
  ran::EnodeB& enb2 = net.add_enodeb(agw2);
  net.run_for(2 * sim::kSecond);

  core::Policy policy = core::quota_billed_policy(quota_bytes);
  policy.name = "billed";
  net.add_policy(policy);
  const agw::SubscriberData sub = net.provision_subscriber("billed");
  net.ocs()->create_account(sub.imsi, balance);
  net.sync_all_config();

  auto drain = [&](ran::EnodeB& enb, agw::AccessGateway& agw,
                   ran::UeLte& ue) -> std::uint64_t {
    bool ok = false;
    const std::uint64_t before = ue.traffic().rx_bytes;
    ue.attach(enb, [&](const ran::AttachOutcome& o) { ok = o.success; });
    net.run_for(20 * sim::kSecond);
    if (!ok) return 0;
    core::DownlinkFlow flow(net, agw, *ue.ip(), 8e6);
    flow.start();
    net.run_for(60 * sim::kSecond);  // long enough to exhaust any balance
    flow.stop();
    net.run_for(2 * sim::kSecond);
    return ue.traffic().rx_bytes - before;
  };

  // Leg 1 at AGW-1.
  ran::UeLte& ue1 = net.add_ue_lte(sub);
  const std::uint64_t leg1 = drain(enb1, agw1, ue1);

  // AGW-1 "crashes" before reconciling: wipe its session without the
  // end-session reconcile by severing its OCS/backhaul path first.
  net.set_backhaul_up(agw1, false);

  // Leg 2 at AGW-2 with a fresh UE for the same IMSI.
  ran::UeLte& ue2 = net.add_ue_lte(sub);
  const std::uint64_t leg2 = drain(enb2, agw2, ue2);

  const std::uint64_t delivered = leg1 + leg2;
  return Outcome{balance, delivered,
                 static_cast<std::int64_t>(delivered) -
                     static_cast<std::int64_t>(balance)};
}

}  // namespace

int main() {
  benchutil::banner("Ablation A6 — double-spend bound = quota size",
                    "Hasan et al., NSDI'23, §3.4");
  std::printf("Account balance 4 MB; the user strategically moves from "
              "AGW-1 to AGW-2 mid-session (no reconcile).\n\n");

  std::printf("%14s %14s %14s %20s\n", "quota(KB)", "balance(MB)",
              "delivered(MB)", "overdraft/quota");
  bool holds = true;
  const std::uint64_t balance = 4 << 20;
  for (const std::uint64_t quota_kb : {256u, 512u, 1024u, 2048u}) {
    const std::uint64_t quota = quota_kb << 10;
    const Outcome outcome = run_quota(quota, balance);
    const double ratio =
        static_cast<double>(outcome.overdraft) / static_cast<double>(quota);
    std::printf("%14llu %14.1f %14.2f %20.2f\n",
                static_cast<unsigned long long>(quota_kb),
                outcome.balance / 1048576.0, outcome.delivered / 1048576.0,
                ratio);
    // The paper's bound: overdraft cannot exceed the outstanding grant
    // (plus the enforcement-poll slack of one interval of traffic).
    const std::int64_t slack = static_cast<std::int64_t>(
        8e6 / 8 * sim::to_seconds(agw::Sessiond::kPollInterval) + quota);
    if (outcome.overdraft > slack) holds = false;
  }

  std::printf("\nSHAPE %s: overdraft stays on the order of one quota grant "
              "— \"capped as a business decision by the quota size\". "
              "Smaller grants => tighter bound, more OCS chatter.\n",
              holds ? "HOLDS" : "DIVERGES");
  return holds ? 0 : 1;
}
