// Figure 9: per-hour AccessParks usage (active subscribers and hourly
// volume) over a multi-day window.
//
// The paper's figure shows the production fixed-wireless network's living
// shape: a diurnal swing in active subscribers and hourly GB. We rebuild
// the deployment's architecture (LTE backhaul UEs = fixed wireless modems
// feeding WiFi APs, unlimited policy because "the LTE network simply
// serves as backhaul") across multiple sites and drive it with a synthetic
// diurnal workload; the reported series comes from the orchestrator's
// metrics pipeline, like a real operator dashboard would.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"

using namespace magma;

int main() {
  benchutil::banner("Figure 9 — AccessParks-style per-hour network usage",
                    "Hasan et al., NSDI'23, Figure 9 / §4.3.1");

  core::Network net(core::NetworkConfig{.seed = 99});

  // 5 sites; each an AGW + one high-gain sector serving fixed modems.
  // (The real network: 14 sites, 200+ APs; scaled to keep the bench brisk —
  // the per-hour shape is what the figure demonstrates.)
  const int kSites = 5;
  const int kModemsPerSite = 60;
  struct Site {
    agw::AccessGateway* agw;
    ran::EnodeB* enb;
    std::vector<ran::UeLte*> modems;
    std::vector<common::Ipv4> ips;
  };
  std::vector<Site> sites;
  for (int s = 0; s < kSites; ++s) {
    Site site;
    site.agw = &net.add_agw(agw::bare_metal_j3160());
    ran::EnodebConfig config;
    config.name = "site" + std::to_string(s);
    config.max_active_ues = 96;
    config.dl_capacity_bps = 1e9;  // backhaul links; radio not the story here
    site.enb = &net.add_enodeb(*site.agw, config);
    sites.push_back(site);
  }
  net.run_for(2 * sim::kSecond);

  // Fixed wireless modems attach once and stay attached (they are
  // infrastructure, not phones). "All UEs simply have unrestricted access."
  for (Site& site : sites) {
    site.modems = benchutil::provision_lte_ues(net, kModemsPerSite);
    core::AttachRamp ramp(net, site.modems, *site.enb, 3.0);
    net.run_for(sim::from_seconds(kModemsPerSite / 3.0 + 30));
    for (ran::UeLte* modem : site.modems) {
      if (modem->ip().has_value()) site.ips.push_back(*modem->ip());
    }
    std::printf("  site %zu: %zu/%d modems attached\n", &site - &sites[0],
                site.ips.size(), kModemsPerSite);
  }

  // Diurnal demand behind each site's APs, peaking in the evening.
  std::vector<std::unique_ptr<core::DiurnalWorkload>> workloads;
  core::DiurnalConfig dcfg;
  dcfg.subscribers = kModemsPerSite;
  dcfg.peak_hour = 20.0;
  dcfg.peak_active_fraction = 0.9;
  dcfg.trough_active_fraction = 0.35;
  dcfg.peak_rate_bps = 900e3;
  for (Site& site : sites) {
    workloads.push_back(std::make_unique<core::DiurnalWorkload>(
        net, *site.agw, site.ips, dcfg, net.rng().fork()));
    workloads.back()->start();
  }

  const int kDays = 3;
  const std::uint64_t start_forwarded = [&sites]() {
    std::uint64_t total = 0;
    for (const Site& site : sites) {
      total += site.agw->user_plane_stats().forwarded_bytes;
    }
    return total;
  }();
  (void)start_forwarded;

  // Hourly sampling of delivered volume per site (AGW user plane).
  struct Hourly {
    double hour;
    int active;
    double gbytes;
  };
  std::vector<Hourly> series;
  std::vector<std::uint64_t> last_forwarded(sites.size(), 0);
  for (std::size_t s = 0; s < sites.size(); ++s) {
    last_forwarded[s] = sites[s].agw->user_plane_stats().forwarded_bytes;
  }
  const double t_start_h = net.kernel().now_seconds() / 3600.0;
  for (int hour = 0; hour < 24 * kDays; ++hour) {
    net.run_for(1 * sim::kHour);
    int active = 0;
    for (const auto& workload : workloads) {
      if (!workload->samples().empty()) {
        active += workload->samples().back().active_subscribers;
      }
    }
    double delivered = 0;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      const std::uint64_t now_fwd =
          sites[s].agw->user_plane_stats().forwarded_bytes;
      delivered += static_cast<double>(now_fwd - last_forwarded[s]);
      last_forwarded[s] = now_fwd;
    }
    series.push_back(Hourly{t_start_h + hour, active, delivered / 1e9});
  }

  std::printf("\n%10s %10s %18s %12s\n", "day", "hour", "active_subs",
              "GB/hour");
  double peak_gb = 0;
  double trough_gb = 1e18;
  int peak_active = 0;
  int trough_active = 1 << 30;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const int day = static_cast<int>(i) / 24;
    const int hod = static_cast<int>(i) % 24;
    if (hod % 2 == 0) {  // print every other hour to keep output readable
      std::printf("%10d %10d %18d %12.2f\n", day, hod, series[i].active,
                  series[i].gbytes);
    }
    peak_gb = std::max(peak_gb, series[i].gbytes);
    trough_gb = std::min(trough_gb, series[i].gbytes);
    peak_active = std::max(peak_active, series[i].active);
    trough_active = std::min(trough_active, series[i].active);
  }

  std::printf("\nSummary over %d days, %d sites, %d modems:\n", kDays,
              kSites, kSites * kModemsPerSite);
  std::printf("  active subscribers: %d (trough) .. %d (peak)\n",
              trough_active, peak_active);
  std::printf("  hourly volume: %.2f .. %.2f GB/h (%.1fx diurnal swing)\n",
              trough_gb, peak_gb, peak_gb / std::max(trough_gb, 1e-9));
  const bool holds = peak_active > trough_active * 2 &&
                     peak_gb > trough_gb * 2;
  std::printf("SHAPE %s: clear diurnal cycle in both active subscribers and "
              "volume, as in the production network's Figure 9.\n",
              holds ? "HOLDS" : "DIVERGES");
  return holds ? 0 : 1;
}
