// Table 3: AccessParks per-site installed cost, traditional cellular core
// vs Magma (-43%, driven by operational complexity reduction).
#include <cstdio>

#include "bench_util.h"
#include "cost/cost_model.h"

using namespace magma;

int main() {
  benchutil::banner("Table 3 — AccessParks per-site installed cost",
                    "Hasan et al., NSDI'23, Table 3 / §4.3.1");

  const cost::BillOfMaterials traditional = cost::accessparks_traditional();
  const cost::BillOfMaterials magma_bom = cost::accessparks_magma();

  std::printf("%-12s %13s %10s %16s\n", "Item", "Traditional($)", "Magma($)",
              "Difference");
  for (std::size_t i = 0; i < traditional.items.size(); ++i) {
    const double t = traditional.items[i].total();
    const double m = magma_bom.items[i].total();
    if (t == m) {
      std::printf("%-12s %13.0f %10.0f %16s\n",
                  traditional.items[i].item.c_str(), t, m, "-");
    } else {
      std::printf("%-12s %13.0f %10.0f   -%5.0f (%4.0f%%)\n",
                  traditional.items[i].item.c_str(), t, m, t - m,
                  100 * (t - m) / t);
    }
  }
  const cost::CostComparison cmp = cost::accessparks_comparison();
  std::printf("%-12s %13.0f %10.0f   -%5.0f (%4.0f%%)\n", "Cost/Site",
              cmp.traditional_usd, cmp.magma_usd, cmp.savings_usd(),
              100 * cmp.savings_fraction());

  std::printf("\nPaper: 'Total cost per site decreased by 43%%, driven "
              "primarily by Magma's reduction in operational complexity for "
              "deployment.'\n");
  std::printf("Largest single saving: LTE engineering (planning, core "
              "config): -$4,670 (-93%%).\n");
  const bool holds = cmp.savings_fraction() > 0.42 &&
                     cmp.savings_fraction() < 0.44;
  std::printf("SHAPE %s: reproduced -%.0f%%.\n", holds ? "HOLDS" : "DIVERGES",
              100 * cmp.savings_fraction());
  return holds ? 0 : 1;
}
