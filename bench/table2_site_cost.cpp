// Table 2: cost breakdown of active RAN equipment for a typical Magma
// deployment (3x LTE eNodeB + 1 AGW + accessories).
#include <cstdio>

#include "bench_util.h"
#include "cost/cost_model.h"

using namespace magma;

int main() {
  benchutil::banner("Table 2 — typical site RAN CapEx",
                    "Hasan et al., NSDI'23, Table 2 / §4.1");

  const cost::BillOfMaterials bom = cost::typical_site_capex();
  std::printf("%s\n", bom.to_table().c_str());

  std::printf("Notes\n");
  std::printf("  * The paper prints a 'RAN CapEx (per site)' total of "
              "US$18,760; its own line items sum to US$%.0f. The difference "
              "(US$%.0f) is unitemized in the paper (likely shipping, "
              "spares, or integration); we reproduce the line items.\n",
              bom.total(), 18760 - bom.total());
  std::printf("  * AGW share of active-equipment cost: %.1f%% "
              "(paper: 'less than 3%%').\n",
              100.0 * 450 / bom.total());

  // The scale-down argument behind the table (§2.2).
  std::printf("\nCore cost per site vs deployment size (scale-down, §2.2):\n");
  std::printf("%8s %16s %12s\n", "sites", "traditional($)", "magma($)");
  const cost::CoreCostModel model;
  for (const int sites : {1, 2, 5, 10, 25, 50, 100, 500}) {
    std::printf("%8d %16.0f %12.0f\n", sites,
                cost::traditional_per_site_cost(model, sites),
                cost::magma_per_site_cost(model, sites));
  }
  std::printf("\nSHAPE HOLDS: Magma 'scales down' — per-site core cost at "
              "1 site is %.0fx lower than a traditional core.\n",
              cost::traditional_per_site_cost(model, 1) /
                  cost::magma_per_site_cost(model, 1));
  return 0;
}
