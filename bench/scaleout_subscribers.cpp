// Subscriber-axis scaleout: 1,000,000 subscribers against one orchestrator
// (§4.3.1 — FreedomFi-scale provisioning — and §3.1's operator question
// "why do attaches fail for *these* IMSIs?").
//
// What this measures, and asserts:
//   * Northbound load: a million add_subscriber calls land in the config
//     store; the first gateway sync serializes the full-state blob exactly
//     once and the gateway converges on all 1M entries.
//   * Sketch scale: four gateways feed per-IMSI outcomes into SpaceSaving /
//     HyperLogLog sketches and ship them over the real RPC path (magmad
//     metrics tick → kReportSketches → metricsd). The fleet-merged top-K
//     names the planted worst offenders EXACTLY (keys and order), with
//     sound bounds and exemplar trace ids.
//   * Distinct-active: the fleet HLL estimate lands within 5% of the true
//     distinct-IMSI count.
//   * O(K + 2^p) memory: sketch footprint after 1M distinct keys equals
//     the footprint after 10k — independent of subscriber count — and the
//     wire report stays a few KB however big the gateway.
//
// Emits BENCH_subscribers.json and exits nonzero if any property fails.
// --quick shrinks the subscriber and noise counts for ctest smoke; the
// *_allocs entries are normalized per unit so the regression gate compares
// quick runs against the committed full-run trajectory.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "agw/magmad.h"
#include "bench_util.h"
#include "net/channel.h"
#include "obs/host_profiler.h"
#include "obs/sketch/subscriber_sketches.h"
#include "orc8r/orchestrator.h"

using namespace magma;

namespace {

constexpr int kPlanted = 10;
constexpr int kSketchGateways = 4;

struct Gateway {
  std::unique_ptr<net::DuplexLink> link;
  net::ReliablePair channels;
  std::unique_ptr<rpc::RpcNode> server_node;
  std::unique_ptr<rpc::RpcNode> client_node;
  std::unique_ptr<agw::SubscriberDb> subscribers;
  agw::PolicyDb policies;
  obs::sketch::SubscriberSketches sketches;
  std::unique_ptr<agw::Magmad> magmad;
};

std::unique_ptr<Gateway> make_gateway(sim::Kernel& kernel, sim::Rng& rng,
                                      orc8r::Orchestrator& orc8r,
                                      const std::string& id,
                                      const agw::MagmadConfig& config) {
  auto gw = std::make_unique<Gateway>();
  gw->link =
      std::make_unique<net::DuplexLink>(kernel, rng, sim::fiber_backhaul());
  gw->channels = net::make_reliable_pair(kernel, *gw->link);
  gw->server_node =
      std::make_unique<rpc::RpcNode>(kernel, *gw->channels.a, "orc8r-server");
  gw->client_node =
      std::make_unique<rpc::RpcNode>(kernel, *gw->channels.b, "agw-client");
  gw->subscribers =
      std::make_unique<agw::SubscriberDb>([&rng]() { return rng.next_u64(); });
  gw->magmad = std::make_unique<agw::Magmad>(
      kernel, id, gw->client_node.get(), *gw->subscribers, gw->policies,
      []() { return common::Bytes{}; },
      []() { return std::vector<orc8r::MetricSample>{}; }, config);
  orc8r.bind(*gw->server_node);
  return gw;
}

agw::SubscriberData make_subscriber(std::uint64_t n) {
  agw::SubscriberData sub;
  sub.imsi = common::Imsi::from_digits(1010000000000ULL + n);
  sub.k[0] = static_cast<std::uint8_t>(n);
  sub.policy_name = "unlimited";
  return sub;
}

bool check(bool ok, const char* what, int& failures) {
  std::printf("  %-68s %s\n", what, ok ? "OK" : "FAIL");
  if (!ok) ++failures;
  return ok;
}

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
             .count() /
         1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int kSubscribers = quick ? 20'000 : 1'000'000;
  const int kNoisePerGateway = quick ? 3'000 : 30'000;

  benchutil::banner(
      "Subscriber scaleout — 1M subscribers, O(K) heavy-hitter telemetry",
      "Hasan et al., NSDI'23, §3.1/§4.3.1 (the subscriber axis at scale)");
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Kernel kernel;
  sim::Rng rng(2023);
  orc8r::Orchestrator orc8r(kernel);
  int failures = 0;

  using obs::sketch::SubscriberMetric;

  // ---- Phase 1: sketch fleet — planted offenders through the real RPC ----
  // Four gateways boot against the still-empty store (cheap sync), feed
  // their sketches, and ship them on the metrics tick.
  agw::MagmadConfig sketch_config;
  sketch_config.config_poll_interval = sim::kHour;
  sketch_config.checkin_interval = sim::kHour;
  sketch_config.checkpoint_interval = sim::kHour;
  sketch_config.event_flush_interval = sim::kHour;
  sketch_config.metrics_interval = 15 * sim::kSecond;

  std::vector<std::unique_ptr<Gateway>> fleet;
  for (int g = 0; g < kSketchGateways; ++g) {
    char id[16];
    std::snprintf(id, sizeof(id), "sketch-gw%d", g);
    auto gw = make_gateway(kernel, rng, orc8r, id, sketch_config);
    obs::sketch::SubscriberSketches* sk = &gw->sketches;
    gw->magmad->set_sketch_source([sk, &kernel, id = std::string(id)]() {
      return sk->snapshot(id, kernel.now());
    });
    gw->magmad->start();
    fleet.push_back(std::move(gw));
  }

  // Planted worst offenders: IMSI 999...00i fails attach (kPlanted - i) *
  // 100k times, the failures spread evenly across all four gateways — the
  // fleet-wide count only exists after the merge. Planted first (tables
  // empty), so their counters are exact (error 0).
  std::vector<std::string> planted;
  std::vector<std::uint64_t> planted_total;
  for (int i = 0; i < kPlanted; ++i) {
    const std::string imsi =
        common::Imsi::from_digits(9990000000000ULL + i).value;
    const std::uint64_t total = static_cast<std::uint64_t>(kPlanted - i) *
                                100'000ULL;
    planted.push_back(imsi);
    planted_total.push_back(total);
    for (int g = 0; g < kSketchGateways; ++g) {
      fleet[g]->sketches.record(SubscriberMetric::kAttachFailures, imsi,
                                total / kSketchGateways,
                                0xE000000000000000ULL + i);
      // The same subscribers also dominate bytes — a second axis through
      // the same pipe.
      fleet[g]->sketches.record(SubscriberMetric::kBytes, imsi,
                                total * 1000 / kSketchGateways);
    }
  }

  // Background noise: per gateway, kNoisePerGateway distinct IMSIs with 1-3
  // failures each. Their total weight bounds SpaceSaving's min-counter far
  // below the planted counts, so the planted set survives exactly.
  const std::uint64_t offer_allocs_before =
      obs::HostProfiler::process_alloc_count();
  std::uint64_t noise_offers = 0;
  for (int g = 0; g < kSketchGateways; ++g) {
    for (int j = 0; j < kNoisePerGateway; ++j) {
      const std::string imsi =
          common::Imsi::from_digits(5000000000000ULL +
                                    static_cast<std::uint64_t>(g) * 1000000 +
                                    j)
              .value;
      fleet[g]->sketches.record(SubscriberMetric::kAttachFailures, imsi,
                                1 + rng.next_u64() % 3);
      ++noise_offers;
    }
  }
  const double offer_allocs_per_record =
      static_cast<double>(obs::HostProfiler::process_alloc_count() -
                          offer_allocs_before) /
      static_cast<double>(noise_offers);

  // Distinct-active ground truth: every provisioned subscriber plus the
  // noise and planted IMSIs touches exactly one gateway's HLL.
  for (int n = 0; n < kSubscribers; ++n) {
    fleet[static_cast<std::size_t>(n % kSketchGateways)]->sketches
        .record_active(common::Imsi::from_digits(1010000000000ULL + n).value,
                       kernel.now());
  }
  const double hll_truth =
      static_cast<double>(kSubscribers) +
      static_cast<double>(kSketchGateways) * kNoisePerGateway + kPlanted;
  for (int g = 0; g < kSketchGateways; ++g) {
    for (int j = 0; j < kNoisePerGateway; ++j) {
      fleet[g]->sketches.record_active(
          common::Imsi::from_digits(5000000000000ULL +
                                    static_cast<std::uint64_t>(g) * 1000000 +
                                    j)
              .value,
          kernel.now());
    }
    for (const std::string& imsi : planted) {
      fleet[g]->sketches.record_active(imsi, kernel.now());
    }
  }

  // One metrics tick per gateway plus ingest drain.
  auto phase_start = std::chrono::steady_clock::now();
  kernel.run_until(kernel.now() + 40 * sim::kSecond);
  const double sketch_wall_ms = wall_ms_since(phase_start);

  std::printf("\nPhase 1 — fleet-merged heavy hitters (%d gateways, %d noise "
              "IMSIs each):\n",
              kSketchGateways, kNoisePerGateway);
  std::uint64_t reports_sent = 0;
  for (const auto& gw : fleet) reports_sent += gw->magmad->stats().sketch_reports_sent;
  check(reports_sent >= static_cast<std::uint64_t>(kSketchGateways),
        "every gateway shipped a sketch report on the metrics tick",
        failures);
  check(orc8r.metrics().sketch_gateways() ==
            static_cast<std::size_t>(kSketchGateways),
        "metricsd holds a report from each gateway", failures);

  const obs::sketch::SpaceSaving merged =
      orc8r.metrics().merged_top_subscribers(SubscriberMetric::kAttachFailures);
  const std::vector<obs::sketch::HeavyHitter> top = merged.top(kPlanted);
  bool exact = top.size() == static_cast<std::size_t>(kPlanted);
  bool bounds_sound = exact;
  bool exemplars_present = exact;
  for (std::size_t i = 0; exact && i < top.size(); ++i) {
    if (top[i].key != planted[i]) exact = false;
    if (top[i].count < planted_total[i] ||
        top[i].count - top[i].error > planted_total[i]) {
      bounds_sound = false;
    }
    if (top[i].exemplar_trace_id == 0) exemplars_present = false;
  }
  check(exact, "fleet-merged top-10 names the planted offenders exactly",
        failures);
  check(bounds_sound, "every estimate brackets the true planted count",
        failures);
  check(exemplars_present, "every heavy hitter carries an exemplar trace id",
        failures);

  const obs::sketch::SpaceSaving merged_bytes =
      orc8r.metrics().merged_top_subscribers(SubscriberMetric::kBytes);
  const std::vector<obs::sketch::HeavyHitter> top_bytes = merged_bytes.top(1);
  check(!top_bytes.empty() && top_bytes[0].key == planted[0],
        "bytes axis agrees on the worst offender", failures);

  const double fleet_active = orc8r.metrics().fleet_active_subscribers();
  const double hll_rel_err = std::fabs(fleet_active - hll_truth) / hll_truth;
  char hll_line[96];
  std::snprintf(hll_line, sizeof(hll_line),
                "fleet HLL %.0f vs %.0f true (%.2f%% error, < 5%%)",
                fleet_active, hll_truth, hll_rel_err * 100.0);
  check(hll_rel_err < 0.05, hll_line, failures);

  std::printf("\n%s\n",
              orc8r.metrics()
                  .top_subscribers_report(SubscriberMetric::kAttachFailures, 5)
                  .c_str());

  // ---- Phase 2: northbound load of 1M subscribers ------------------------
  const std::uint64_t load_allocs_before =
      obs::HostProfiler::process_alloc_count();
  phase_start = std::chrono::steady_clock::now();
  for (int n = 0; n < kSubscribers; ++n) {
    orc8r.add_subscriber(make_subscriber(static_cast<std::uint64_t>(n)));
  }
  const double load_wall_ms = wall_ms_since(phase_start);
  const double load_allocs_per_sub =
      static_cast<double>(obs::HostProfiler::process_alloc_count() -
                          load_allocs_before) /
      static_cast<double>(kSubscribers);

  // ---- Phase 3: one gateway completes the full sync ----------------------
  const std::uint64_t serializations_before =
      orc8r.stats().full_serializations;
  agw::MagmadConfig sync_config;
  sync_config.metrics_interval = sim::kHour;
  sync_config.checkin_interval = sim::kHour;
  sync_config.checkpoint_interval = sim::kHour;
  sync_config.event_flush_interval = sim::kHour;
  auto sync_gw = make_gateway(kernel, rng, orc8r, "sync-gw", sync_config);
  const std::uint64_t sync_allocs_before =
      obs::HostProfiler::process_alloc_count();
  phase_start = std::chrono::steady_clock::now();
  sync_gw->magmad->start();
  kernel.run_until(kernel.now() + 40 * sim::kSecond);
  const double sync_wall_ms = wall_ms_since(phase_start);
  const double sync_allocs_per_sub =
      static_cast<double>(obs::HostProfiler::process_alloc_count() -
                          sync_allocs_before) /
      static_cast<double>(kSubscribers);

  std::printf("\nPhase 3 — full sync of %d subscribers to one gateway:\n",
              kSubscribers);
  check(sync_gw->subscribers->size() == static_cast<std::size_t>(kSubscribers),
        "the gateway holds every provisioned subscriber", failures);
  check(sync_gw->magmad->synced_version() == orc8r.config_version(),
        "the gateway converged on the store version", failures);
  check(orc8r.stats().full_serializations - serializations_before == 1,
        "the full-state blob was serialized exactly once", failures);

  // ---- Phase 4: sketch memory is O(K + 2^p), not O(subscribers) ----------
  obs::sketch::SpaceSaving small_load(64);
  for (int n = 0; n < 10'000; ++n) {
    small_load.offer(common::Imsi::from_digits(7000000000000ULL + n).value);
  }
  obs::sketch::SpaceSaving big_load(64);
  for (int n = 0; n < kSubscribers; ++n) {
    big_load.offer(common::Imsi::from_digits(7000000000000ULL + n).value);
  }
  const std::size_t sketch_memory = fleet[0]->sketches.memory_bytes();
  const common::Bytes wire =
      obs::sketch::encode_sketch_report(
          fleet[0]->sketches.snapshot("sketch-gw0", kernel.now()));
  std::printf("\nPhase 4 — memory independence (%d distinct keys offered):\n",
              kSubscribers);
  check(big_load.memory_bytes() == small_load.memory_bytes(),
        "SpaceSaving footprint after 1M keys == footprint after 10k",
        failures);
  check(big_load.size() == 64, "the table still holds exactly K counters",
        failures);
  check(sketch_memory < 64 * 1024,
        "full gateway sketch set stays under 64 KiB", failures);
  check(wire.size() < 32 * 1024, "the wire report stays under 32 KiB",
        failures);

  const double wall_ms = wall_ms_since(wall_start);
  std::printf("\nwall: %.0f ms total (load %.0f ms, sync %.0f ms, sketch "
              "phase %.0f ms)\n",
              wall_ms, load_wall_ms, sync_wall_ms, sketch_wall_ms);
  std::printf("host: %.1f allocs/subscriber load, %.1f allocs/subscriber "
              "sync, %.2f allocs/offer, sketch %zu B, wire %zu B\n",
              load_allocs_per_sub, sync_allocs_per_sub,
              offer_allocs_per_record, sketch_memory, wire.size());

  std::FILE* json = std::fopen("BENCH_subscribers.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"scaleout_subscribers\",\n"
        "  \"subscribers\": %d,\n"
        "  \"quick\": %s,\n"
        "  \"wall_ms\": %.1f,\n"
        "  \"load_wall_ms\": %.1f,\n"
        "  \"sync_wall_ms\": %.1f,\n"
        "  \"sketch_wall_ms\": %.1f,\n"
        "  \"sketch_memory_bytes\": %zu,\n"
        "  \"sketch_wire_bytes\": %zu,\n"
        "  \"fleet_active_estimate\": %.0f,\n"
        "  \"fleet_active_true\": %.0f,\n"
        "  \"host\": {\n"
        "    \"load_per_sub_allocs\": %.2f,\n"
        "    \"sync_per_sub_allocs\": %.2f,\n"
        "    \"sketch_offer_allocs\": %.2f\n"
        "  },\n"
        "  \"pass\": %s\n"
        "}\n",
        kSubscribers, quick ? "true" : "false", wall_ms, load_wall_ms,
        sync_wall_ms, sketch_wall_ms, sketch_memory, wire.size(),
        fleet_active, hll_truth, load_allocs_per_sub, sync_allocs_per_sub,
        offer_allocs_per_record, failures == 0 ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_subscribers.json\n");
  }

  std::printf("\nSHAPE %s: the subscriber axis scales — 1M-entry config "
              "syncs in one blob, per-IMSI telemetry in O(K + 2^p).\n",
              failures == 0 ? "HOLDS" : "DIVERGES");
  return failures == 0 ? 0 : 1;
}
