// Baseline comparison: Magma's edge-terminated core vs a traditional
// centralized core, on identical radio sites and backhaul.
//
// The paper's central architectural argument (§3, §3.1): "Magma terminates
// the radio-specific protocols as early as possible, in access gateways
// connected directly to the radio access network." In a traditional EPC
// the S1 interface crosses the backhaul to a remote MME, so every NAS
// round-trip of the attach dialogue pays the WAN's latency and loss — and
// a backhaul outage kills *session establishment*, not just configuration.
//
// Both deployments below use the same AGW software; the only difference is
// where the S1 interface terminates (site LAN vs across the backhaul),
// which is exactly the paper's architectural delta.
#include <cstdio>

#include "bench_util.h"

using namespace magma;

namespace {

struct Outcome {
  double csr;
  double mean_latency_s;
  double outage_csr;  // attaches attempted during a 60 s backhaul outage
};

Outcome run_deployment(const sim::LinkConfig& backhaul, bool traditional) {
  core::NetworkConfig config;
  config.seed = 33;
  config.backhaul = backhaul;
  core::Network net(config);
  agw::AccessGateway& agw = net.add_agw(agw::virtual_xeon(4));
  ran::EnodebConfig cell;
  cell.max_active_ues = 300;
  // Traditional: the "AGW" plays the remote MME/SGW; S1 crosses the WAN.
  ran::EnodeB& enb = net.add_enodeb(
      agw, cell,
      traditional ? std::optional<sim::LinkConfig>(backhaul) : std::nullopt);
  net.run_for(10 * sim::kSecond);

  // Phase 1: 40 attaches under normal conditions.
  std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, 60);
  net.run_for(20 * sim::kSecond);
  std::vector<ran::UeLte*> phase1(ues.begin(), ues.begin() + 40);
  core::AttachRamp ramp(net, phase1, enb, 2.0);
  net.run_for(sim::from_seconds(40 / 2.0 + 40));

  double latency_sum = 0;
  int ok = 0;
  for (const core::AttachRecord& record : ramp.records()) {
    if (record.done && record.outcome.success) {
      latency_sum += sim::to_seconds(record.outcome.latency);
      ++ok;
    }
  }

  // Phase 2: a 60 s backhaul outage; 20 fresh UEs try to attach during it.
  net.set_backhaul_up(agw, false);
  std::vector<ran::UeLte*> phase2(ues.begin() + 40, ues.end());
  core::AttachRamp outage_ramp(net, phase2, enb, 2.0);
  net.run_for(60 * sim::kSecond);
  net.set_backhaul_up(agw, true);
  net.run_for(30 * sim::kSecond);

  return Outcome{ramp.csr(), ok > 0 ? latency_sum / ok : 0,
                 outage_ramp.csr()};
}

}  // namespace

int main() {
  benchutil::banner(
      "Baseline — traditional centralized core vs Magma's edge termination",
      "Hasan et al., NSDI'23, §3/§3.1 (the architectural thesis)");
  std::printf("Same AGW software, same radios; only the S1 termination "
              "point differs.\nTraditional: S1 crosses the backhaul to a "
              "remote core. Magma: S1 ends at the tower.\n\n");

  struct Case {
    const char* name;
    sim::LinkConfig config;
  };
  const Case cases[] = {
      {"fiber (5ms)", sim::fiber_backhaul()},
      {"microwave (15ms, 0.5%)", sim::microwave_backhaul()},
      {"satellite (300ms, 2%)", sim::satellite_backhaul()},
  };

  std::printf("%-24s %-12s %8s %14s %18s\n", "backhaul", "core", "CSR%",
              "attach_lat(s)", "CSR during outage%");
  double magma_sat_latency = 0;
  double trad_sat_latency = 0;
  double magma_outage = 0;
  double trad_outage = 1;
  for (const Case& c : cases) {
    const Outcome magma = run_deployment(c.config, false);
    const Outcome trad = run_deployment(c.config, true);
    std::printf("%-24s %-12s %8.1f %14.3f %18.1f\n", c.name, "Magma",
                magma.csr * 100, magma.mean_latency_s, magma.outage_csr * 100);
    std::printf("%-24s %-12s %8.1f %14.3f %18.1f\n", "", "traditional",
                trad.csr * 100, trad.mean_latency_s, trad.outage_csr * 100);
    if (std::string(c.name).starts_with("satellite")) {
      magma_sat_latency = magma.mean_latency_s;
      trad_sat_latency = trad.mean_latency_s;
      magma_outage = magma.outage_csr;
      trad_outage = trad.outage_csr;
    }
  }

  const bool holds = trad_sat_latency > 5 * magma_sat_latency &&
                     magma_outage > 0.99 && trad_outage < 0.01;
  std::printf("\nSHAPE %s: on satellite backhaul the traditional core pays "
              "%.1fx the attach latency (%.2fs vs %.2fs) and loses ALL "
              "attaches during a backhaul outage (%.0f%%), while Magma's "
              "edge-terminated attach is unaffected (%.0f%%).\n",
              holds ? "HOLDS" : "DIVERGES",
              magma_sat_latency > 0 ? trad_sat_latency / magma_sat_latency : 0,
              trad_sat_latency, magma_sat_latency, trad_outage * 100,
              magma_outage * 100);
  return holds ? 0 : 1;
}
