// Ablation A5: small fault domains + checkpoint recovery (§3.3).
//
// "Each AGW is thus a fault domain that holds state for a relatively small
// number of UEs ... The failure of a single AGW would impact the set of UEs
// currently served by the attached base stations, but has no impact on the
// rest of the network." And: the checkpointed runtime state brings a backup
// cloud instance into service for the affected UEs.
#include <cstdio>

#include "bench_util.h"

using namespace magma;

int main() {
  benchutil::banner("Ablation A5 — fault domains and checkpoint recovery",
                    "Hasan et al., NSDI'23, §3.3");

  core::Network net(core::NetworkConfig{.seed = 55});
  const int kAgws = 4;
  const int kUesPerAgw = 24;

  struct Domain {
    agw::AccessGateway* agw;
    ran::EnodeB* enb;
    std::vector<ran::UeLte*> ues;
  };
  std::vector<Domain> domains;
  for (int i = 0; i < kAgws; ++i) {
    Domain d;
    d.agw = &net.add_agw(agw::virtual_xeon(4));
    d.enb = &net.add_enodeb(*d.agw);
    domains.push_back(d);
  }
  net.run_for(2 * sim::kSecond);

  int attached = 0;
  for (Domain& d : domains) {
    d.ues = benchutil::provision_lte_ues(net, kUesPerAgw);
    core::AttachRamp ramp(net, d.ues, *d.enb, 8.0);
    net.run_for(sim::from_seconds(kUesPerAgw / 8.0 + 20));
    attached += static_cast<int>(ramp.succeeded());
  }
  std::printf("\n%d UEs attached across %d AGWs (%d per fault domain)\n",
              attached, kAgws, kUesPerAgw);

  // Let magmad ship checkpoints.
  net.run_for(2 * sim::kMinute);

  // Fail AGW 0: backhaul cut + total state wipe (crash).
  net.set_backhaul_up(*domains[0].agw, false);
  for (const ran::UeLte* ue : domains[0].ues) {
    domains[0].agw->sessiond().end_session(ue->usim().imsi()).ok();
  }

  // Who still has service? Probe every UE with downlink.
  auto probe = [&](const Domain& d, agw::AccessGateway& gw) {
    int served = 0;
    for (ran::UeLte* ue : d.ues) {
      if (!ue->ip().has_value()) continue;
      const std::uint64_t before = ue->traffic().rx_bytes;
      net.inject_downlink(gw, *ue->ip(), 1000, 5);
      net.run_for(100 * sim::kMillisecond);
      if (ue->traffic().rx_bytes > before) ++served;
    }
    return served;
  };

  int impacted = kUesPerAgw - probe(domains[0], *domains[0].agw);
  int unaffected = 0;
  for (int i = 1; i < kAgws; ++i) {
    unaffected += probe(domains[static_cast<std::size_t>(i)],
                        *domains[static_cast<std::size_t>(i)].agw);
  }
  std::printf("after AGW-0 failure: %d/%d UEs impacted (%.0f%% of network); "
              "%d/%d UEs on other AGWs unaffected\n",
              impacted, kAgws * kUesPerAgw,
              100.0 * impacted / (kAgws * kUesPerAgw), unaffected,
              (kAgws - 1) * kUesPerAgw);

  // Recovery: backup instance from the shipped checkpoint.
  const auto image = net.orchestrator().stored_checkpoint("gw0");
  if (!image.has_value()) {
    std::printf("no checkpoint shipped — FAIL\n");
    return 1;
  }
  agw::AccessGateway& backup = net.add_agw(agw::virtual_xeon(4));
  // The backup takes over gw0's RAN endpoints (S1 + GTP) and its state.
  net.adopt_ran(backup, *domains[0].agw);
  const common::Status restored = backup.restore(*image);
  std::printf("backup AGW restored from checkpoint (%zu bytes): %s, "
              "%zu sessions recovered\n",
              image->size(), restored.ok() ? "OK" : restored.to_string().c_str(),
              backup.sessiond().active_sessions());

  // Note: user traffic resumes through the backup instance's data plane.
  const int recovered = probe(domains[0], backup);
  std::printf("UEs served by the backup instance: %d/%d\n", recovered,
              kUesPerAgw);

  const bool holds = impacted == kUesPerAgw &&
                     unaffected == (kAgws - 1) * kUesPerAgw &&
                     restored.ok() && recovered == kUesPerAgw;
  std::printf("\nSHAPE %s: blast radius = exactly one fault domain "
              "(1/%d of the network), full recovery from the checkpoint.\n",
              holds ? "HOLDS" : "DIVERGES", kAgws);
  return holds ? 0 : 1;
}
