// Figure 5: AGW CPU utilization under the maximum "typical" cell-site
// workload.
//
// Paper setup (§4.1): a bare-metal Intel J3160 AGW serving a site of three
// eNodeBs; 288 UEs attach at 3 UE/s, then each runs a 1.5 Mbps HTTP
// download for an aggregate offered load of 432 Mbps. Expected shape: an
// attach phase of ~1.5 minutes dominated by control-plane CPU, then a
// steady state where throughput equals the offered (radio-limited) load and
// total CPU sits well below saturation — "Aggregate throughput is limited
// by radio capacity, not the AGW."
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace magma;

int main() {
  benchutil::banner("Figure 5 — AGW CPU and throughput, typical site load",
                    "Hasan et al., NSDI'23, Figure 5 / §4.1");

  core::Network net(core::NetworkConfig{.seed = 42});
  agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());

  // Three-sector site. The paper's aggregate offered load (432 Mbps over
  // three 20 MHz carriers) implies ~144 Mbps/sector sustained; its own
  // 126 Mbps figure is "ideal conditions" for a single stream. Our radio
  // model drops (rather than queues) past the shaper, so we give each
  // sector 5% scheduling headroom over the offered 144 Mbps — a real
  // eNodeB's queue absorbs that variance.
  std::vector<ran::EnodeB*> enbs;
  for (int s = 0; s < 3; ++s) {
    ran::EnodebConfig config;
    config.name = "site-sector-" + std::to_string(s);
    config.dl_capacity_bps = 151e6;
    enbs.push_back(&net.add_enodeb(agw, config));
  }
  net.run_for(2 * sim::kSecond);

  const int kUes = 288;          // 96 active users per sector
  const double kAttachRate = 3;  // UE/s
  const double kPerUeRate = 1.5e6;

  std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, kUes);
  benchutil::RetryingAttachDriver driver(net, agw, enbs, ues, kAttachRate,
                                         kPerUeRate);

  // Instrumentation: CPU utilization per class and delivered UE goodput.
  ran::CpuSampler cpu(net.kernel(), agw.cpu(), 5 * sim::kSecond);
  cpu.start();
  ran::RateSampler goodput(
      net.kernel(),
      [&ues]() {
        std::uint64_t total = 0;
        for (const ran::UeLte* ue : ues) total += ue->traffic().rx_bytes;
        return total;
      },
      5 * sim::kSecond);
  goodput.start();
  ran::GaugeSampler attached(
      net.kernel(),
      [&agw]() { return static_cast<double>(agw.sessiond().active_sessions()); },
      5 * sim::kSecond);
  attached.start();

  const double kRunSeconds = 300;
  net.run_for(sim::from_seconds(kRunSeconds));

  std::printf("\nAGW: %s (%d cores @ %.1f GHz, flexible scheduling)\n",
              agw.profile().name.c_str(), agw.profile().cpu.cores,
              agw.profile().cpu.speed_ghz);
  std::printf("Offered: %d UEs x %.1f Mbps = %.0f Mbps; attach rate %.0f UE/s\n",
              kUes, kPerUeRate / 1e6, kUes * kPerUeRate / 1e6, kAttachRate);

  std::printf("\n%8s %10s %10s %10s %12s %10s\n", "t(s)", "cpu_ctl%",
              "cpu_usr%", "cpu_tot%", "goodput_Mbps", "sessions");
  const auto& ctl = cpu.control_util();
  const auto& usr = cpu.user_util();
  const auto& tput = goodput.series();
  const auto& sess = attached.series();
  for (std::size_t i = 0; i < ctl.size(); ++i) {
    std::printf("%8.0f %10.1f %10.1f %10.1f %12.1f %10.0f\n",
                ctl[i].t_seconds, ctl[i].value * 100, usr[i].value * 100,
                (ctl[i].value + usr[i].value) * 100,
                i < tput.size() ? tput[i].value * 8 / 1e6 : 0.0,
                i < sess.size() ? sess[i].value : 0.0);
  }

  const double attach_done_s = sim::to_seconds(driver.last_attach_time());
  const double steady_tput =
      goodput.average(attach_done_s + 20, kRunSeconds) * 8 / 1e6;
  const double steady_cpu =
      cpu.average_total(attach_done_s + 20, kRunSeconds) * 100;
  const double attach_cpu = cpu.average_total(5, attach_done_s) * 100;
  const double attach_ctl =
      ran::timeline_average(cpu.control_util(), 5, attach_done_s) * 100;

  std::printf("\nSummary\n");
  std::printf("  attach phase: %d/%d UEs attached by t=%.0fs "
              "(paper: ~1.5 minutes at 3 UE/s)\n",
              driver.attached(), kUes, attach_done_s);
  std::printf("  attach-phase CPU: %.1f%% total, of which %.1f%% control "
              "plane (control-dominated)\n",
              attach_cpu, attach_ctl);
  std::printf("  steady-state goodput: %.1f Mbps of %.0f offered "
              "(paper: sustained ~432 Mbps)\n",
              steady_tput, kUes * kPerUeRate / 1e6);
  std::printf("  steady-state CPU: %.1f%% — AGW is NOT the bottleneck; the "
              "radio is\n",
              steady_cpu);
  std::printf("  user-plane drops at AGW (overload): %llu bytes\n",
              static_cast<unsigned long long>(
                  agw.user_plane_stats().dropped_overload_bytes));
  std::printf("  [diag] agw offered=%.1fMB forwarded=%.1fMB no_match=%llu "
              "policy=%llu meter=%llu\n",
              agw.user_plane_stats().offered_bytes / 1e6,
              agw.user_plane_stats().forwarded_bytes / 1e6,
              static_cast<unsigned long long>(
                  agw.pipelined().pipeline().stats().dropped_no_match),
              static_cast<unsigned long long>(
                  agw.pipelined().pipeline().stats().dropped_by_policy),
              static_cast<unsigned long long>(
                  agw.pipelined().pipeline().stats().dropped_by_meter));
  for (const ran::EnodeB* enb : enbs) {
    std::printf("  [diag] enb delivered=%.1fMB radio_drop=%.1fMB "
                "unknown_teid=%llu active=%d\n",
                enb->stats().dl_delivered_bytes / 1e6,
                enb->stats().dl_dropped_radio_bytes / 1e6,
                static_cast<unsigned long long>(
                    enb->stats().unknown_teid_drops),
                enb->active_ues());
  }
  const bool shape_holds = driver.attached() == kUes &&
                           steady_tput > 0.90 * kUes * kPerUeRate / 1e6 &&
                           steady_cpu < 90;
  std::printf("  SHAPE %s: all UEs attach, throughput ~= offered, CPU "
              "headroom remains\n",
              shape_holds ? "HOLDS" : "DIVERGES");
  return shape_holds ? 0 : 1;
}
