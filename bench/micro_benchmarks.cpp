// Microbenchmarks (google-benchmark): per-operation costs of the hot
// primitives — data-plane matching/forwarding, the crypto the attach path
// runs, codecs, stores, and the event kernel. These measure the *host*
// costs of the simulator itself (not modeled AGW CPU), and back the
// efficiency notes in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "agw/pipelined.h"
#include "crypto/aes128.h"
#include "crypto/hmac.h"
#include "crypto/kdf.h"
#include "crypto/milenage.h"
#include "crypto/sha256.h"
#include "proto/lte/nas.h"
#include "proto/lte/s1ap.h"
#include "sim/kernel.h"
#include "store/wal_store.h"

namespace {

using namespace magma;

// --- datapath ---------------------------------------------------------------

agw::SessionFlows make_session(std::uint64_t cookie) {
  agw::SessionFlows f;
  f.cookie = cookie;
  f.ue_ip = common::Ipv4{0xAC100000u + static_cast<std::uint32_t>(cookie)};
  f.agw_teid_ul = common::Teid{static_cast<std::uint32_t>(cookie)};
  f.enb_teid_dl = common::Teid{static_cast<std::uint32_t>(cookie + 65536)};
  f.enb_address = common::Ipv4::from_octets(10, 100, 0, 1);
  f.dl_rate_bps = 10e6;
  f.ul_rate_bps = 5e6;
  return f;
}

void PipelineDownlinkBody(benchmark::State& state, bool cache) {
  const std::uint64_t sessions = static_cast<std::uint64_t>(state.range(0));
  agw::Pipelined pd;
  pd.pipeline().set_flow_cache_enabled(cache);
  for (std::uint64_t c = 1; c <= sessions; ++c) {
    pd.install_session(make_session(c), 0).ok();
  }
  const datapath::Packet pkt = datapath::make_udp(
      common::Ipv4::from_octets(8, 8, 8, 8),
      common::Ipv4{0xAC100000u + static_cast<std::uint32_t>(sessions / 2 + 1)},
      443, 40000, 1400);
  sim::TimePoint now = 0;
  for (auto _ : state) {
    now += sim::kMillisecond;
    auto result = pd.pipeline().process(pkt, datapath::Direction::kDownlink,
                                        now);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(sessions) + " sessions, cache " +
                 (cache ? "ON" : "OFF"));
}

// Ablation: the OVS-style microflow cache makes per-packet cost O(1) in
// the session count; without it, lookup is linear in installed rules.
void BM_PipelineDownlinkCached(benchmark::State& state) {
  PipelineDownlinkBody(state, true);
}
void BM_PipelineDownlinkUncached(benchmark::State& state) {
  PipelineDownlinkBody(state, false);
}
BENCHMARK(BM_PipelineDownlinkCached)->Arg(10)->Arg(100)->Arg(500);
BENCHMARK(BM_PipelineDownlinkUncached)->Arg(10)->Arg(100)->Arg(500);

void BM_PipelineUplinkBatch64(benchmark::State& state) {
  agw::Pipelined pd;
  for (std::uint64_t c = 1; c <= 100; ++c) {
    pd.install_session(make_session(c), 0).ok();
  }
  const agw::SessionFlows f = make_session(50);
  datapath::PacketBatch batch;
  batch.packet = datapath::gtpu_encap(
      datapath::make_udp(f.ue_ip, common::Ipv4::from_octets(8, 8, 8, 8),
                         40000, 443, 1400),
      f.agw_teid_ul, f.enb_address, common::Ipv4{1});
  batch.count = 64;
  sim::TimePoint now = 0;
  for (auto _ : state) {
    now += sim::kMillisecond;
    auto result =
        pd.pipeline().process_batch(batch, datapath::Direction::kUplink, now);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_PipelineUplinkBatch64);

void BM_PacketSerializeParse(benchmark::State& state) {
  const datapath::Packet pkt = datapath::gtpu_encap(
      datapath::make_udp(common::Ipv4{1}, common::Ipv4{2}, 3, 4, 1400),
      common::Teid{5}, common::Ipv4{6}, common::Ipv4{7});
  for (auto _ : state) {
    const common::Bytes wire = pkt.serialize();
    auto parsed = datapath::Packet::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_PacketSerializeParse);

// --- crypto ------------------------------------------------------------------

void BM_Aes128Block(benchmark::State& state) {
  crypto::Key128 key{};
  key[0] = 1;
  crypto::Aes128 aes(key);
  crypto::Block block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128Block);

void BM_MilenageVector(benchmark::State& state) {
  crypto::Key128 k{};
  crypto::Key128 opc{};
  k[0] = 1;
  opc[0] = 2;
  const crypto::Milenage milenage = crypto::Milenage::from_opc(k, opc);
  std::array<std::uint8_t, 16> rand{};
  std::uint64_t counter = 0;
  for (auto _ : state) {
    rand[0] = static_cast<std::uint8_t>(++counter);
    auto out = milenage.compute(rand, {0, 0, 0, 0, 0, 1}, {0x80, 0x00});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MilenageVector);

void BM_Sha256_1KiB(benchmark::State& state) {
  const common::Bytes data(1024, 0xA5);
  for (auto _ : state) {
    auto digest = crypto::sha256(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_NasMac(benchmark::State& state) {
  crypto::Key256 key{};
  key[0] = 9;
  const common::Bytes msg(64, 0x42);
  std::uint32_t count = 0;
  for (auto _ : state) {
    auto mac = crypto::nas_mac(key, ++count, msg);
    benchmark::DoNotOptimize(mac);
  }
}
BENCHMARK(BM_NasMac);

// --- codecs ---------------------------------------------------------------------

void BM_NasAttachAcceptCodec(benchmark::State& state) {
  proto::lte::AttachAccept accept;
  accept.m_tmsi = 42;
  accept.bearer.pdn_address = common::Ipv4::from_octets(172, 16, 0, 5);
  accept.mac = 0x12345678;
  const proto::lte::NasMessage msg{accept};
  for (auto _ : state) {
    auto decoded = proto::lte::decode_nas(proto::lte::encode_nas(msg));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_NasAttachAcceptCodec);

void BM_S1apIcsCodec(benchmark::State& state) {
  proto::lte::InitialContextSetupRequest ics;
  ics.nas_pdu = common::Bytes(80, 0x11);
  const proto::lte::S1apMessage msg{ics};
  for (auto _ : state) {
    auto decoded = proto::lte::decode_s1ap(proto::lte::encode_s1ap(msg));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_S1apIcsCodec);

// --- stores ------------------------------------------------------------------------

void BM_WalStorePut(benchmark::State& state) {
  store::WalStore walstore;
  std::uint64_t i = 0;
  const common::Bytes value(128, 0x5A);
  for (auto _ : state) {
    walstore.put("sub/IMSI" + std::to_string(i++ % 10000), value);
    if (i % 50000 == 0) walstore.checkpoint();
  }
}
BENCHMARK(BM_WalStorePut);

void BM_WalStoreScan1k(benchmark::State& state) {
  store::WalStore walstore;
  for (int i = 0; i < 1000; ++i) {
    walstore.put("sub/" + std::to_string(100000 + i), common::Bytes(64, 1));
  }
  for (auto _ : state) {
    auto rows = walstore.scan("sub/");
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_WalStoreScan1k);

// --- event kernel ---------------------------------------------------------------------

void BM_KernelScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel;
    for (int i = 0; i < 1000; ++i) {
      kernel.schedule(i * sim::kMicrosecond, []() {});
    }
    kernel.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_KernelScheduleRun);

}  // namespace
