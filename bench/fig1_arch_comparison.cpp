// Figure 1: differences between the LTE and 5G architectures — shown as
// the actual control-message ladders our protocol stacks exchange.
//
// The paper uses Figure 1 to motivate its thesis: every cellular
// generation rearranges the same functions behind different interfaces
// (MME vs AMF/SMF split, piggybacked bearers vs separate PDU sessions).
// This bench runs a real LTE attach and a real 5G registration + PDU
// session through the full simulated stack and prints both ladders with
// message counts, making the structural difference concrete.
#include <cstdio>

#include "bench_util.h"

using namespace magma;

int main() {
  benchutil::banner("Figure 1 — LTE vs 5G control architecture, executed",
                    "Hasan et al., NSDI'23, Figure 1 / §2.1");

  core::Network net(core::NetworkConfig{.seed = 31});
  agw::AccessGateway& agw = net.add_agw(agw::virtual_xeon(4));
  ran::EnodeB& enb = net.add_enodeb(agw);
  ran::Gnb& gnb = net.add_gnb(agw);
  net.run_for(2 * sim::kSecond);

  const agw::SubscriberData lte_sub = net.provision_subscriber();
  const agw::SubscriberData nr_sub = net.provision_subscriber();
  net.sync_all_config();

  bool lte_ok = false;
  bool nr_ok = false;
  ran::UeLte& lte_ue = net.add_ue_lte(lte_sub);
  lte_ue.attach(enb, [&](const ran::AttachOutcome& o) { lte_ok = o.success; });
  net.run_for(20 * sim::kSecond);
  ran::UeNr& nr_ue = net.add_ue_nr(nr_sub);
  nr_ue.attach(gnb, [&](const ran::AttachOutcome& o) { nr_ok = o.success; });
  net.run_for(20 * sim::kSecond);

  std::printf("\nLTE (4G): eNodeB -> AGW front-end terminates S1AP; the MME "
              "role handles BOTH mobility and session in one dialogue.\n");
  std::printf("  UE->NW  AttachRequest              (NAS, via S1AP "
              "InitialUeMessage)\n");
  std::printf("  NW->UE  AuthenticationRequest      (EPS-AKA challenge)\n");
  std::printf("  UE->NW  AuthenticationResponse     (RES, verified against "
              "Milenage XRES)\n");
  std::printf("  NW->UE  SecurityModeCommand        (EIA2-style MAC)\n");
  std::printf("  UE->NW  SecurityModeComplete\n");
  std::printf("  NW->eNB InitialContextSetupRequest (GTP TEID + K_eNB + "
              "piggybacked AttachAccept w/ bearer+IP)\n");
  std::printf("  eNB->NW InitialContextSetupResponse(eNB downlink TEID -> "
              "ModifyBearer step)\n");
  std::printf("  UE->NW  AttachComplete             => session live in ONE "
              "procedure\n");

  std::printf("\n5G: gNB -> AGW front-end terminates NGAP; registration "
              "(AMF role) and session (SMF role) are SEPARATE procedures.\n");
  std::printf("  UE->NW  RegistrationRequest        (via NGAP "
              "InitialUeMessage)\n");
  std::printf("  NW->UE  AuthenticationRequest      (5G-AKA, RES*)\n");
  std::printf("  UE->NW  AuthenticationResponse\n");
  std::printf("  NW->UE  SecurityModeCommand\n");
  std::printf("  UE->NW  SecurityModeComplete\n");
  std::printf("  NW->UE  RegistrationAccept         => registered, NO user "
              "plane yet\n");
  std::printf("  UE->NW  RegistrationComplete\n");
  std::printf("  UE->NW  PduSessionEstablishmentRequest   (separate SM leg)\n");
  std::printf("  NW->gNB PduSessionResourceSetupRequest   (TEID + "
              "piggybacked PduSessionEstablishmentAccept w/ IP)\n");
  std::printf("  gNB->NW PduSessionResourceSetupResponse  => session live in "
              "TWO procedures\n");

  std::printf("\nExecuted evidence from this run:\n");
  std::printf("  LTE attach:        %s (attach_accepts=%llu, "
              "attach_completes=%llu)\n",
              lte_ok ? "OK" : "FAILED",
              static_cast<unsigned long long>(agw.lte().stats().attach_accepts),
              static_cast<unsigned long long>(
                  agw.lte().stats().attach_completes));
  std::printf("  5G registration:   %s (registrations=%llu, separate PDU "
              "sessions=%llu)\n",
              nr_ok ? "OK" : "FAILED",
              static_cast<unsigned long long>(
                  agw.nr().stats().registrations_accepted),
              static_cast<unsigned long long>(
                  agw.nr().stats().pdu_sessions_established));
  std::printf("\nMagma's answer to this churn (the paper's thesis): both "
              "ladders terminate in thin front-ends; the generic services "
              "behind them are identical — see table1_abstraction_mapping.\n");

  const bool holds = lte_ok && nr_ok &&
                     agw.nr().stats().registrations_accepted == 1 &&
                     agw.nr().stats().pdu_sessions_established == 1;
  std::printf("SHAPE %s\n", holds ? "HOLDS" : "DIVERGES");
  return holds ? 0 : 1;
}
