// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/network.h"
#include "core/workload.h"
#include "ran/scenario.h"

namespace magma::benchutil {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

// Provision `n` LTE subscribers, sync config, and return UEs.
inline std::vector<ran::UeLte*> provision_lte_ues(core::Network& net, int n,
                                                  const std::string& policy =
                                                      "unlimited") {
  std::vector<agw::SubscriberData> subs;
  subs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    subs.push_back(net.provision_subscriber(policy));
  }
  net.sync_all_config();
  std::vector<ran::UeLte*> ues;
  ues.reserve(subs.size());
  for (const auto& sub : subs) ues.push_back(&net.add_ue_lte(sub));
  return ues;
}

// Attach UEs round-robin across `enbs` at an aggregate `rate_per_second`,
// retrying failed attempts after a backoff (UE T3410 behaviour). Starts
// each UE's downlink flow on success when `dl_rate_bps` > 0.
class RetryingAttachDriver {
 public:
  RetryingAttachDriver(core::Network& net, agw::AccessGateway& agw,
                       std::vector<ran::EnodeB*> enbs,
                       std::vector<ran::UeLte*> ues, double rate_per_second,
                       double flow_dl_rate_bps)
      : net_(net), agw_(agw), enbs_(std::move(enbs)), ues_(std::move(ues)) {
    dl_rate_bps = flow_dl_rate_bps;
    const sim::Duration spacing = sim::from_seconds(1.0 / rate_per_second);
    for (std::size_t i = 0; i < ues_.size(); ++i) {
      net_.kernel().schedule(static_cast<sim::Duration>(i) * spacing,
                             [this, i]() { try_attach(i); });
    }
  }

  int attached() const { return attached_; }
  int first_try_failures() const { return first_try_failures_; }
  sim::TimePoint last_attach_time() const { return last_attach_time_; }
  const std::vector<std::unique_ptr<core::DownlinkFlow>>& flows() const {
    return flows_;
  }

  double dl_rate_bps = 0;

  void set_dl_rate(double bps) { dl_rate_bps = bps; }

 private:
  void try_attach(std::size_t i) {
    ran::EnodeB* enb = enbs_[i % enbs_.size()];
    ues_[i]->attach(*enb, [this, i](const ran::AttachOutcome& outcome) {
      if (outcome.success) {
        ++attached_;
        last_attach_time_ = net_.kernel().now();
        if (dl_rate_bps > 0) {
          const sim::Duration interval = 200 * sim::kMillisecond;
          flows_.push_back(std::make_unique<core::DownlinkFlow>(
              net_, agw_, *ues_[i]->ip(), dl_rate_bps, interval));
          // Spread flow phases across the interval (hash of the index) so
          // the radio scheduler sees smooth arrivals, not one mega-burst.
          flows_.back()->start(
              static_cast<sim::Duration>((i * 7919) % 200) *
              sim::kMillisecond);
        }
        return;
      }
      ++first_try_failures_;
      // UE behaviour on T3410 expiry: back off briefly and retry.
      net_.kernel().schedule(2 * sim::kSecond,
                             [this, i]() { try_attach(i); });
    });
  }

  core::Network& net_;
  agw::AccessGateway& agw_;
  std::vector<ran::EnodeB*> enbs_;
  std::vector<ran::UeLte*> ues_;
  int attached_ = 0;
  int first_try_failures_ = 0;
  sim::TimePoint last_attach_time_ = 0;
  std::vector<std::unique_ptr<core::DownlinkFlow>> flows_;
};

}  // namespace magma::benchutil
