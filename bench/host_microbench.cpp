// Host-cost microbench: price the simulator's core primitives in *wall*
// nanoseconds and allocations per operation, and emit BENCH_host.json — the
// release-over-release artifact `bench/bench_compare` diffs to catch host
// performance regressions (ROADMAP: "raw simulator speed").
//
// Six primitives, spanning every layer the HostProfiler instruments:
//   1. event_schedule_dispatch — sim::Kernel schedule + heap pop + callback
//   2. packet_route            — cached datapath walk (OVS-style microflow)
//   3. reliable_roundtrip      — one message each way over net::ReliablePair
//   4. lte_attach              — full attach through core::Network
//   5. streamer_delta_apply    — magmad applying a config delta (priced from
//                                the HostProfiler's (magmad, apply_delta)
//                                label — the tentpole instrument in action)
//   6. checkin_drain           — a 1000-gateway checkin wave through the
//                                sharded ingest
//
// `--quick` shrinks iteration counts for the ctest smoke target; the JSON
// schema (key set) is identical in both modes, and the binary re-parses its
// own output through obs::flatten_json_numbers before reporting success.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agw/magmad.h"
#include "agw/pipelined.h"
#include "bench_util.h"
#include "net/channel.h"
#include "obs/bench_json.h"
#include "obs/host_profiler.h"
#include "orc8r/orchestrator.h"

using namespace magma;

namespace {

struct Metric {
  std::string key;
  double value;
};

std::vector<Metric> g_metrics;

void emit(const std::string& key, double value) {
  g_metrics.push_back(Metric{key, value});
  std::printf("  %-34s %14.1f\n", key.c_str(), value);
}

// Allocation + wall-clock window around one primitive's loop.
struct Window {
  std::uint64_t t0 = obs::HostProfiler::now_ns();
  std::uint64_t a0 = obs::HostProfiler::process_alloc_count();
  std::uint64_t b0 = obs::HostProfiler::process_alloc_bytes();

  void price(const char* name, std::uint64_t ops) const {
    const double n = ops > 0 ? static_cast<double>(ops) : 1.0;
    emit(std::string(name) + "_ns",
         static_cast<double>(obs::HostProfiler::now_ns() - t0) / n);
    emit(std::string(name) + "_allocs",
         static_cast<double>(obs::HostProfiler::process_alloc_count() - a0) /
             n);
    emit(std::string(name) + "_alloc_bytes",
         static_cast<double>(obs::HostProfiler::process_alloc_bytes() - b0) /
             n);
  }
};

// --- 1: kernel event schedule + dispatch ------------------------------------

void bench_event_schedule_dispatch(bool quick) {
  const int n = quick ? 20000 : 200000;
  sim::Kernel kernel;
  std::uint64_t sink = 0;
  const Window w;
  for (int i = 0; i < n; ++i) {
    kernel.schedule(static_cast<sim::Duration>(i % 1000) * sim::kMicrosecond,
                    [&sink]() { ++sink; });
  }
  kernel.run_until(2 * sim::kSecond);
  w.price("event_schedule_dispatch", static_cast<std::uint64_t>(n));
  if (sink != static_cast<std::uint64_t>(n)) {
    std::printf("  WARNING: only %llu/%d events dispatched\n",
                static_cast<unsigned long long>(sink), n);
  }
}

// --- 2: cached datapath packet route ----------------------------------------

agw::SessionFlows make_session(std::uint64_t cookie) {
  agw::SessionFlows f;
  f.cookie = cookie;
  f.ue_ip = common::Ipv4{0xAC100000u + static_cast<std::uint32_t>(cookie)};
  f.agw_teid_ul = common::Teid{static_cast<std::uint32_t>(cookie)};
  f.enb_teid_dl = common::Teid{static_cast<std::uint32_t>(cookie + 65536)};
  f.enb_address = common::Ipv4::from_octets(10, 100, 0, 1);
  // Generous meters: this primitive prices the cached table walk, not the
  // rate limiter (micro_benchmarks has the meter ablations).
  f.dl_rate_bps = 1e12;
  f.ul_rate_bps = 1e12;
  return f;
}

void bench_packet_route(bool quick) {
  const int n = quick ? 20000 : 200000;
  agw::Pipelined pd;
  for (std::uint64_t c = 1; c <= 100; ++c) {
    pd.install_session(make_session(c), 0).ok();
  }
  const datapath::Packet pkt = datapath::make_udp(
      common::Ipv4::from_octets(8, 8, 8, 8), common::Ipv4{0xAC100000u + 51},
      443, 40000, 1400);
  sim::TimePoint now = 0;
  std::uint64_t forwarded = 0;
  const Window w;
  for (int i = 0; i < n; ++i) {
    now += sim::kMicrosecond;
    const datapath::PipelineResult r =
        pd.pipeline().process(pkt, datapath::Direction::kDownlink, now);
    forwarded += r.verdict == datapath::Verdict::kForwarded ? 1 : 0;
  }
  w.price("packet_route", static_cast<std::uint64_t>(n));
  if (forwarded != static_cast<std::uint64_t>(n)) {
    std::printf("  WARNING: %llu/%d packets forwarded\n",
                static_cast<unsigned long long>(forwarded), n);
  }
}

// --- 3: reliable-channel round trip -----------------------------------------

void bench_reliable_roundtrip(bool quick) {
  const int rounds = quick ? 200 : 2000;
  sim::Kernel kernel;
  sim::Rng rng(7);
  net::DuplexLink link(kernel, rng, sim::fiber_backhaul());
  net::ReliablePair pair = net::make_reliable_pair(kernel, link);
  int completed = 0;
  pair.b->set_receiver(
      [&pair](common::Bytes msg) { pair.b->send(std::move(msg)); });
  pair.a->set_receiver([&pair, &completed, rounds](common::Bytes msg) {
    if (++completed < rounds) pair.a->send(std::move(msg));
  });
  const Window w;
  pair.a->send(common::Bytes(64, 0x5a));
  kernel.run_until(static_cast<sim::Duration>(rounds) * sim::kSecond);
  w.price("reliable_roundtrip", static_cast<std::uint64_t>(completed));
  if (completed != rounds) {
    std::printf("  WARNING: %d/%d round trips completed\n", completed, rounds);
  }
}

// --- 4: full LTE attach -------------------------------------------------------

void bench_lte_attach(bool quick) {
  const int n = quick ? 10 : 100;
  core::Network net;
  agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
  ran::EnodeB& enb = net.add_enodeb(agw);
  (void)agw;
  std::vector<ran::UeLte*> ues = benchutil::provision_lte_ues(net, n);
  int attached = 0;
  const Window w;
  for (int i = 0; i < n; ++i) {
    net.kernel().schedule(
        static_cast<sim::Duration>(i) * 50 * sim::kMillisecond,
        [&ues, &enb, &attached, i]() {
          ues[static_cast<std::size_t>(i)]->attach(
              enb, [&attached](const ran::AttachOutcome& outcome) {
                if (outcome.success) ++attached;
              });
        });
  }
  net.run_for(static_cast<sim::Duration>(n) * 50 * sim::kMillisecond +
              5 * sim::kSecond);
  w.price("lte_attach", static_cast<std::uint64_t>(attached));
  if (attached < n) {
    std::printf("  WARNING: %d/%d UEs attached\n", attached, n);
  }
}

// --- 5 + 6: streamer delta apply, fleet checkin drain -----------------------
// One orchestrator + magmad fleet serves both primitives: the boot wave
// prices the checkin drain, then config mutations price the delta apply via
// the HostProfiler's (magmad, apply_delta) label.

struct FleetGateway {
  std::unique_ptr<net::DuplexLink> link;
  net::ReliablePair channels;
  std::unique_ptr<rpc::RpcNode> server_node;
  std::unique_ptr<rpc::RpcNode> client_node;
  std::unique_ptr<agw::SubscriberDb> subscribers;
  agw::PolicyDb policies;
  std::unique_ptr<agw::Magmad> magmad;
};

agw::SubscriberData make_fleet_subscriber(std::uint64_t n) {
  agw::SubscriberData sub;
  sub.imsi = common::Imsi::from_digits(1010000000000ULL + n);
  sub.k[0] = static_cast<std::uint8_t>(n);
  sub.policy_name = "unlimited";
  return sub;
}

void bench_fleet(bool quick) {
  const int kFleet = quick ? 100 : 1000;
  const int kMutations = quick ? 2 : 3;
  sim::Kernel kernel;
  sim::Rng rng(2023);
  orc8r::Orchestrator orc8r(kernel);
  for (int i = 0; i < 50; ++i) {
    orc8r.add_subscriber(make_fleet_subscriber(static_cast<std::uint64_t>(i)));
  }
  agw::MagmadConfig config;
  config.metrics_interval = sim::kHour;
  config.checkpoint_interval = sim::kHour;
  config.event_flush_interval = sim::kHour;

  std::vector<std::unique_ptr<FleetGateway>> fleet;
  fleet.reserve(static_cast<std::size_t>(kFleet));
  for (int i = 0; i < kFleet; ++i) {
    auto gw = std::make_unique<FleetGateway>();
    gw->link = std::make_unique<net::DuplexLink>(kernel, rng,
                                                 sim::fiber_backhaul());
    gw->channels = net::make_reliable_pair(kernel, *gw->link);
    gw->server_node = std::make_unique<rpc::RpcNode>(kernel, *gw->channels.a,
                                                     "orc8r-server");
    gw->client_node = std::make_unique<rpc::RpcNode>(kernel, *gw->channels.b,
                                                     "agw-client");
    gw->subscribers = std::make_unique<agw::SubscriberDb>(
        [&rng]() { return rng.next_u64(); });
    char id[16];
    std::snprintf(id, sizeof(id), "gw%04d", i);
    gw->magmad = std::make_unique<agw::Magmad>(
        kernel, id, gw->client_node.get(), *gw->subscribers, gw->policies,
        []() { return common::Bytes{}; },
        []() { return std::vector<orc8r::MetricSample>{}; }, config);
    orc8r.bind(*gw->server_node);
    const sim::Duration offset =
        static_cast<sim::Duration>(i) * (30 * sim::kSecond) / kFleet;
    agw::Magmad* m = gw->magmad.get();
    kernel.schedule(offset, [m]() { m->start(); });
    fleet.push_back(std::move(gw));
  }

  // Primitive 6: the boot wave — every gateway checks in and takes its
  // first full sync; price the whole drain per checkin served.
  {
    const Window w;
    kernel.run_until(35 * sim::kSecond);
    w.price("checkin_drain", orc8r.stats().checkins);
  }
  if (orc8r.stats().checkins < static_cast<std::uint64_t>(kFleet)) {
    std::printf("  WARNING: %llu/%d checkins served\n",
                static_cast<unsigned long long>(orc8r.stats().checkins),
                kFleet);
  }

  // Primitive 5: config mutations fan out as deltas; the profiler's
  // (magmad, apply_delta) label prices the apply itself — wall time and
  // allocations per call, exclusive of transport and polling machinery.
  obs::HostProfiler profiler;
  profiler.install();
  for (int k = 0; k < kMutations; ++k) {
    orc8r.add_subscriber(make_fleet_subscriber(9000u + static_cast<std::uint64_t>(k)));
    kernel.run_until((35 + 30 * (k + 1)) * sim::kSecond);
  }
  const obs::HostLabelStats applies = profiler.stats_for("magmad",
                                                         "apply_delta");
  obs::HostProfiler::uninstall();
  const double calls =
      applies.calls > 0 ? static_cast<double>(applies.calls) : 1.0;
  emit("streamer_delta_apply_ns",
       static_cast<double>(applies.total_ns) / calls);
  emit("streamer_delta_apply_allocs",
       static_cast<double>(applies.alloc_count) / calls);
  emit("streamer_delta_apply_alloc_bytes",
       static_cast<double>(applies.alloc_bytes) / calls);
  if (applies.calls < static_cast<std::uint64_t>(kFleet) * kMutations) {
    std::printf("  WARNING: %llu/%d delta applies observed\n",
                static_cast<unsigned long long>(applies.calls),
                kFleet * kMutations);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  benchutil::banner(
      "Host microbench — pricing the simulator's core primitives",
      "ROADMAP: raw simulator speed (BENCH_host.json trajectory)");
  std::printf("mode: %s\n\n", quick ? "quick (ctest smoke)" : "full");

  bench_event_schedule_dispatch(quick);
  bench_packet_route(quick);
  bench_reliable_roundtrip(quick);
  bench_lte_attach(quick);
  bench_fleet(quick);

  // Assemble the JSON, validate it through the same parser bench_compare
  // uses (schema self-check), then write BENCH_host.json.
  std::string json = "{\n  \"bench\": \"host_microbench\",\n";
  json += quick ? "  \"quick\": 1,\n" : "  \"quick\": 0,\n";
  json += "  \"metrics\": {\n";
  for (std::size_t i = 0; i < g_metrics.size(); ++i) {
    char line[160];
    std::snprintf(line, sizeof(line), "    \"%s\": %.1f%s\n",
                  g_metrics[i].key.c_str(), g_metrics[i].value,
                  i + 1 < g_metrics.size() ? "," : "");
    json += line;
  }
  json += "  }\n}\n";

  int failures = 0;
  const auto flat = obs::flatten_json_numbers(json);
  if (!flat.ok()) {
    std::printf("\nFAIL: emitted JSON does not parse: %s\n",
                flat.error().message.c_str());
    ++failures;
  } else {
    static const char* kRequired[] = {
        "event_schedule_dispatch_ns", "packet_route_ns",
        "reliable_roundtrip_ns",      "lte_attach_ns",
        "streamer_delta_apply_ns",    "checkin_drain_ns"};
    for (const char* key : kRequired) {
      const std::string path = std::string("metrics.") + key;
      auto it = flat.value().find(path);
      if (it == flat.value().end() || !(it->second > 0)) {
        std::printf("\nFAIL: %s missing or non-positive\n", path.c_str());
        ++failures;
      }
    }
  }

  std::FILE* out = std::fopen("BENCH_host.json", "w");
  if (out == nullptr) {
    std::printf("\nFAIL: cannot write BENCH_host.json\n");
    ++failures;
  } else {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("\nwrote BENCH_host.json (%zu metrics, schema %s)\n",
                g_metrics.size(), failures == 0 ? "valid" : "INVALID");
  }
  return failures == 0 ? 0 : 1;
}
