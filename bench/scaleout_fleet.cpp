// Fleet-scale control plane: 1000 AGWs against one orchestrator (§3.4 at
// deployment size — FreedomFi/AccessParks are fleets of gateways behind a
// single orc8r).
//
// What this measures, and asserts:
//   * The version-cached full-state blob: the initial 1000-gateway sync
//     wave costs ONE serialization of the desired state, not 1000.
//   * Delta fan-out: a single config change reaches every gateway as a
//     one-entry delta — zero additional full-state serializations.
//   * Coalescing: a churn burst of 20 mutations on 5 keys ships 5 entries
//     per gateway, not 20.
//   * The fleet-wide tail-sampling budget: every checkin hands the gateway
//     its keep-per-op K = budget / fleet.
//   * Sharded ingest: 1000 gateways' checkins drain through the per-gateway
//     bounded queues without shedding.
//
// Emits BENCH_fleet.json (the first file of the bench-trajectory series)
// and exits nonzero if any property fails.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "agw/magmad.h"
#include "bench_util.h"
#include "net/channel.h"
#include "obs/host_profiler.h"
#include "orc8r/orchestrator.h"

using namespace magma;

namespace {

constexpr int kFleet = 1000;
constexpr int kSubscribers = 200;

struct Gateway {
  std::unique_ptr<net::DuplexLink> link;
  net::ReliablePair channels;
  std::unique_ptr<rpc::RpcNode> server_node;
  std::unique_ptr<rpc::RpcNode> client_node;
  std::unique_ptr<agw::SubscriberDb> subscribers;
  agw::PolicyDb policies;
  std::unique_ptr<agw::Magmad> magmad;
};

agw::SubscriberData make_subscriber(std::uint64_t n, const std::string& pol) {
  agw::SubscriberData sub;
  sub.imsi = common::Imsi::from_digits(1010000000000ULL + n);
  sub.k[0] = static_cast<std::uint8_t>(n);
  sub.policy_name = pol;
  return sub;
}

bool check(bool ok, const char* what, int& failures) {
  std::printf("  %-68s %s\n", what, ok ? "OK" : "FAIL");
  if (!ok) ++failures;
  return ok;
}

}  // namespace

int main() {
  benchutil::banner(
      "Fleet scaleout — 1000 AGWs, one orchestrator",
      "Hasan et al., NSDI'23, §3.4 (config sync at deployment scale)");
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Kernel kernel;
  sim::Rng rng(2023);
  orc8r::Orchestrator orc8r(kernel);

  // Manage the fleet's trace ingest: 4 keeps per op per gateway.
  orc8r.set_fleet_trace_budget(4ull * kFleet);

  for (int i = 0; i < kSubscribers; ++i) {
    orc8r.add_subscriber(make_subscriber(i, "unlimited"));
  }

  // Control-plane-focused cadences: config sync and checkin at their
  // defaults, everything best-effort slowed to once.
  agw::MagmadConfig config;
  config.metrics_interval = sim::kHour;
  config.checkpoint_interval = sim::kHour;
  config.event_flush_interval = sim::kHour;

  // Host cost of booting the fleet: the global operator-new hook counts
  // every allocation the 1000-gateway construction loop makes, so the
  // per-AGW memory bill is a first-class bench metric.
  const std::uint64_t boot_allocs_before =
      obs::HostProfiler::process_alloc_count();
  const std::uint64_t boot_bytes_before =
      obs::HostProfiler::process_alloc_bytes();
  std::vector<std::unique_ptr<Gateway>> fleet;
  fleet.reserve(kFleet);
  for (int i = 0; i < kFleet; ++i) {
    auto gw = std::make_unique<Gateway>();
    gw->link = std::make_unique<net::DuplexLink>(kernel, rng,
                                                 sim::fiber_backhaul());
    gw->channels = net::make_reliable_pair(kernel, *gw->link);
    gw->server_node = std::make_unique<rpc::RpcNode>(
        kernel, *gw->channels.a, "orc8r-server");
    gw->client_node = std::make_unique<rpc::RpcNode>(
        kernel, *gw->channels.b, "agw-client");
    gw->subscribers = std::make_unique<agw::SubscriberDb>(
        [&rng]() { return rng.next_u64(); });
    char id[16];
    std::snprintf(id, sizeof(id), "gw%04d", i);
    gw->magmad = std::make_unique<agw::Magmad>(
        kernel, id, gw->client_node.get(), *gw->subscribers, gw->policies,
        []() { return common::Bytes{}; },
        []() { return std::vector<orc8r::MetricSample>{}; }, config);
    orc8r.bind(*gw->server_node);
    // Stagger boots across one poll interval so the orchestrator sees a
    // steady poll stream, not 1000 simultaneous RPCs.
    const sim::Duration offset =
        static_cast<sim::Duration>(i) * (30 * sim::kSecond) / kFleet;
    agw::Magmad* m = gw->magmad.get();
    kernel.schedule(offset, [m]() { m->start(); });
    fleet.push_back(std::move(gw));
  }
  const std::uint64_t boot_allocs_per_agw =
      (obs::HostProfiler::process_alloc_count() - boot_allocs_before) / kFleet;
  const std::uint64_t boot_bytes_per_agw =
      (obs::HostProfiler::process_alloc_bytes() - boot_bytes_before) / kFleet;

  // Per-phase host wall clock: each phase's run_until is timed so the JSON
  // records where the host second goes at fleet scale.
  auto phase_start = std::chrono::steady_clock::now();
  auto phase_wall_ms = [&phase_start]() {
    const auto now = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration_cast<std::chrono::microseconds>(
                          now - phase_start)
                          .count() /
                      1000.0;
    phase_start = now;
    return ms;
  };

  int failures = 0;

  // ---- Phase 1: initial sync wave --------------------------------------
  kernel.run_until(35 * sim::kSecond);
  const double phase1_wall_ms = phase_wall_ms();
  int synced = 0;
  for (const auto& gw : fleet) {
    if (gw->magmad->synced_version() == orc8r.config_version()) ++synced;
  }
  const std::uint64_t serializations_initial =
      orc8r.stats().full_serializations;
  std::printf("\nPhase 1 — first contact (%d gateways, %d subscribers):\n",
              kFleet, kSubscribers);
  check(synced == kFleet, "every gateway converged on the full state",
        failures);
  check(serializations_initial == 1,
        "1000 full syncs cost exactly ONE serialization", failures);
  check(orc8r.stats().full_cache_hits >= kFleet - 1,
        "remaining pushes served from the version cache", failures);

  // ---- Phase 2: one config change fans out as deltas -------------------
  const std::uint64_t deltas_before = orc8r.stats().delta_pushes;
  orc8r.add_subscriber(make_subscriber(9000, "unlimited"));
  phase_start = std::chrono::steady_clock::now();
  kernel.run_until(75 * sim::kSecond);
  const double phase2_wall_ms = phase_wall_ms();
  synced = 0;
  int applied_delta = 0;
  for (const auto& gw : fleet) {
    if (gw->magmad->synced_version() == orc8r.config_version()) ++synced;
    if (gw->magmad->stats().config_delta_syncs >= 1) ++applied_delta;
  }
  std::printf("\nPhase 2 — single config change:\n");
  check(synced == kFleet, "every gateway holds the new version", failures);
  check(applied_delta == kFleet, "every gateway applied it as a delta",
        failures);
  check(orc8r.stats().delta_pushes - deltas_before ==
            static_cast<std::uint64_t>(kFleet),
        "exactly one delta push per gateway", failures);
  check(orc8r.stats().full_serializations == serializations_initial,
        "zero additional full-state serializations", failures);

  // ---- Phase 3: churn burst is coalesced -------------------------------
  const std::uint64_t coalesced_before = orc8r.stats().deltas_coalesced;
  const std::uint64_t entries_before = orc8r.stats().delta_entries_sent;
  // 20 mutations, 5 surviving keys: 4 rewrites of each of 5 subscribers.
  for (int round = 0; round < 4; ++round) {
    for (int s = 0; s < 5; ++s) {
      orc8r.add_subscriber(make_subscriber(9100 + s, round % 2 == 0
                                                         ? "unlimited"
                                                         : "throttled"));
    }
  }
  phase_start = std::chrono::steady_clock::now();
  kernel.run_until(115 * sim::kSecond);
  const double phase3_wall_ms = phase_wall_ms();
  const std::uint64_t entries_sent =
      orc8r.stats().delta_entries_sent - entries_before;
  const std::uint64_t coalesced =
      orc8r.stats().deltas_coalesced - coalesced_before;
  std::printf("\nPhase 3 — churn burst (20 mutations on 5 keys):\n");
  check(entries_sent <= 5ull * kFleet,
        "each gateway received at most 5 coalesced entries", failures);
  check(coalesced >= static_cast<std::uint64_t>(kFleet),
        "repeated writes folded away before the wire", failures);
  check(orc8r.stats().full_serializations == serializations_initial,
        "churn still served without full-state serializations", failures);

  // ---- Phase 4: fleet tail budget + ingest health ----------------------
  int budgeted = 0;
  for (const auto& gw : fleet) {
    if (gw->magmad->assigned_tail_keep() == 4) ++budgeted;
  }
  std::printf("\nPhase 4 — checkin plane:\n");
  check(budgeted == kFleet, "every gateway was assigned keep-per-op K=4",
        failures);
  check(orc8r.stats().checkins >= static_cast<std::uint64_t>(kFleet),
        "every gateway checked in at least once", failures);
  check(orc8r.ingest().stats().processed >=
            static_cast<std::uint64_t>(kFleet),
        "checkin applies drained through the ingest shards", failures);
  check(orc8r.ingest().stats().shed == 0, "no ingest sheds at this scale",
        failures);
  check(orc8r.ingest().pending() == 0, "ingest backlog fully drained",
        failures);

  const double wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count() /
      1000.0;
  const orc8r::OrchestratorStats& s = orc8r.stats();
  const orc8r::IngestStats& ing = orc8r.ingest().stats();

  std::printf("\nstreamer: full=%llu (serialized %llu, cached %llu)  "
              "delta=%llu (entries %llu, coalesced %llu)  noop=%llu\n",
              static_cast<unsigned long long>(s.full_pushes),
              static_cast<unsigned long long>(s.full_serializations),
              static_cast<unsigned long long>(s.full_cache_hits),
              static_cast<unsigned long long>(s.delta_pushes),
              static_cast<unsigned long long>(s.delta_entries_sent),
              static_cast<unsigned long long>(s.deltas_coalesced),
              static_cast<unsigned long long>(s.noop_polls));
  std::printf("ingest: submitted=%llu processed=%llu shed=%llu "
              "max_queue=%llu max_pending=%llu\n",
              static_cast<unsigned long long>(ing.submitted),
              static_cast<unsigned long long>(ing.processed),
              static_cast<unsigned long long>(ing.shed),
              static_cast<unsigned long long>(ing.max_gateway_queue),
              static_cast<unsigned long long>(ing.max_pending));
  std::printf("wall: %.0f ms for %d AGWs over %.0f simulated seconds\n",
              wall_ms, kFleet, sim::to_seconds(kernel.now()));
  std::printf("host: sync %.0f ms, delta %.0f ms, churn %.0f ms; boot cost "
              "%llu allocs / %llu bytes per AGW\n",
              phase1_wall_ms, phase2_wall_ms, phase3_wall_ms,
              static_cast<unsigned long long>(boot_allocs_per_agw),
              static_cast<unsigned long long>(boot_bytes_per_agw));

  std::FILE* json = std::fopen("BENCH_fleet.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"scaleout_fleet\",\n"
        "  \"agws\": %d,\n"
        "  \"subscribers\": %d,\n"
        "  \"sim_seconds\": %.0f,\n"
        "  \"wall_ms\": %.1f,\n"
        "  \"full_pushes\": %llu,\n"
        "  \"full_serializations\": %llu,\n"
        "  \"full_cache_hits\": %llu,\n"
        "  \"delta_pushes\": %llu,\n"
        "  \"delta_entries_sent\": %llu,\n"
        "  \"deltas_coalesced\": %llu,\n"
        "  \"noop_polls\": %llu,\n"
        "  \"checkins\": %llu,\n"
        "  \"ingest_processed\": %llu,\n"
        "  \"ingest_shed\": %llu,\n"
        "  \"ingest_max_gateway_queue\": %llu,\n"
        "  \"assigned_tail_keep\": %llu,\n"
        "  \"host\": {\n"
        "    \"phase1_sync_wall_ms\": %.1f,\n"
        "    \"phase2_delta_wall_ms\": %.1f,\n"
        "    \"phase3_churn_wall_ms\": %.1f,\n"
        "    \"boot_per_agw_allocs\": %llu,\n"
        "    \"boot_per_agw_alloc_bytes\": %llu\n"
        "  },\n"
        "  \"pass\": %s\n"
        "}\n",
        kFleet, kSubscribers, sim::to_seconds(kernel.now()), wall_ms,
        static_cast<unsigned long long>(s.full_pushes),
        static_cast<unsigned long long>(s.full_serializations),
        static_cast<unsigned long long>(s.full_cache_hits),
        static_cast<unsigned long long>(s.delta_pushes),
        static_cast<unsigned long long>(s.delta_entries_sent),
        static_cast<unsigned long long>(s.deltas_coalesced),
        static_cast<unsigned long long>(s.noop_polls),
        static_cast<unsigned long long>(s.checkins),
        static_cast<unsigned long long>(ing.processed),
        static_cast<unsigned long long>(ing.shed),
        static_cast<unsigned long long>(ing.max_gateway_queue),
        static_cast<unsigned long long>(orc8r.assigned_keep_per_op()),
        phase1_wall_ms, phase2_wall_ms, phase3_wall_ms,
        static_cast<unsigned long long>(boot_allocs_per_agw),
        static_cast<unsigned long long>(boot_bytes_per_agw),
        failures == 0 ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_fleet.json\n");
  }

  std::printf("\nSHAPE %s: one orchestrator drives a %d-gateway fleet with "
              "O(1) serializations per config version and delta fan-out.\n",
              failures == 0 ? "HOLDS" : "DIVERGES", kFleet);
  return failures == 0 ? 0 : 1;
}
