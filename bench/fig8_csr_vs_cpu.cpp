// Figure 8: median connection success rate vs CPUs allocated to the user
// plane (virtual AGW), under concurrent attach + saturating traffic load.
//
// Paper claim (§4.2): "increasing the cores available to the user plane
// improves steady-state throughput at the cost of decreased connection
// success rate ... but allowing the kernel scheduler to allocate resources
// flexibly between user plane and control plane tasks provides both high
// throughput and good connection success rates."
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace magma;

namespace {

constexpr int kTotalVcpus = 8;

struct Point {
  double median_csr;
  double throughput_gbps;
};

Point run_config(int user_cores, bool flexible) {
  core::Network net(core::NetworkConfig{.seed = 13});
  agw::AccessGateway& agw =
      net.add_agw(agw::virtual_xeon(kTotalVcpus, flexible ? -1 : user_cores));
  ran::EnodebConfig big;
  big.max_active_ues = 2000;
  big.dl_capacity_bps = 10e9;
  ran::EnodeB& enb = net.add_enodeb(agw, big);
  net.run_for(2 * sim::kSecond);

  // Background user-plane load: 20 UEs pulling 100 Mbps each (2 Gbps).
  std::vector<ran::UeLte*> background = benchutil::provision_lte_ues(net, 20);
  core::AttachRamp bg_ramp(net, background, enb, 16.0);
  net.run_for(sim::from_seconds(20 / 16.0 + 20));
  std::vector<std::unique_ptr<core::DownlinkFlow>> flows;
  for (ran::UeLte* ue : background) {
    if (!ue->ip().has_value()) continue;
    flows.push_back(std::make_unique<core::DownlinkFlow>(
        net, agw, *ue->ip(), 100e6, 50 * sim::kMillisecond));
    flows.back()->start();
  }

  // Foreground control-plane load: a sustained 24 UE/s attach stream.
  const int kAttachers = 1800;
  std::vector<ran::UeLte*> attachers =
      benchutil::provision_lte_ues(net, kAttachers);
  const sim::TimePoint t0 = net.kernel().now();
  core::AttachRamp ramp(net, attachers, enb, 24.0);

  const std::uint64_t fwd_before = agw.user_plane_stats().forwarded_bytes;
  const double kRunSeconds = kAttachers / 24.0 + 25;
  net.run_for(sim::from_seconds(kRunSeconds));
  const double tput =
      static_cast<double>(agw.user_plane_stats().forwarded_bytes - fwd_before) *
      8 / kRunSeconds;

  // Median CSR over 5-second bins (the paper reports median CSR).
  std::vector<double> bins;
  for (double t = 0; t < kAttachers / 24.0; t += 5) {
    bins.push_back(ramp.csr_in_window(t0 + sim::from_seconds(t),
                                      t0 + sim::from_seconds(t + 5)));
  }
  std::sort(bins.begin(), bins.end());
  const double median = bins.empty() ? 1.0 : bins[bins.size() / 2];
  return Point{median, tput / 1e9};
}

}  // namespace

int main() {
  benchutil::banner(
      "Figure 8 — median CSR vs user-plane CPU allocation",
      "Hasan et al., NSDI'23, Figure 8 / §4.2");
  std::printf("24 UE/s attach stream + 2 Gbps background traffic on the "
              "%d-vCPU virtual AGW.\n\n",
              kTotalVcpus);

  std::printf("%16s %12s %18s\n", "user-plane CPUs", "median CSR%",
              "throughput(Gbps)");
  double csr_low = 0;
  double csr_high = 0;
  for (int k = 2; k <= 7; ++k) {
    const Point point = run_config(k, false);
    std::printf("%16d %12.1f %18.2f\n", k, point.median_csr * 100,
                point.throughput_gbps);
    if (k == 2) csr_low = point.median_csr;
    if (k == 7) csr_high = point.median_csr;
  }
  const Point flex = run_config(0, true);
  std::printf("%16s %12.1f %18.2f   (kernel-scheduled, no pinning)\n",
              "flexible", flex.median_csr * 100, flex.throughput_gbps);

  const bool tradeoff = csr_high < csr_low;
  const bool flexible_good = flex.median_csr > 0.9 && flex.throughput_gbps > 1.5;
  std::printf("\nSHAPE %s: more user-plane cores -> lower CSR "
              "(%.0f%% @2 cores vs %.0f%% @7), while flexible scheduling "
              "gives both high CSR (%.0f%%) and high throughput "
              "(%.2f Gbps)\n",
              (tradeoff && flexible_good) ? "HOLDS" : "DIVERGES",
              csr_low * 100, csr_high * 100, flex.median_csr * 100,
              flex.throughput_gbps);
  return (tradeoff && flexible_good) ? 0 : 1;
}
