// bench_compare — diff two bench JSON artifacts (BENCH_host.json,
// BENCH_fleet.json, ...) and exit nonzero when any priced cost metric
// (*_ns, *_ms, *_allocs, *_alloc_bytes, *_bytes_per_op) regressed by more
// than the threshold (default 15%). The release gate in EXPERIMENTS.md's
// "where does the host second go" recipe.
//
//   bench_compare BEFORE.json AFTER.json [--threshold 0.15]
//                 [--suffix _allocs] [--slack N] [--strict-from-zero]
//
// --suffix gates only cost keys with that ending; --slack adds an absolute
// allowance (after > before*(1+threshold)+slack fails); --strict-from-zero
// makes a metric growing from 0 past the slack a failure instead of a note
// — together they form the allocation-regression wall ctest runs
// (BenchAllocRegressionGate).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_json.h"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* before_path = nullptr;
  const char* after_path = nullptr;
  magma::obs::BenchCompareOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      options.threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--slack") == 0 && i + 1 < argc) {
      options.slack = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--suffix") == 0 && i + 1 < argc) {
      options.suffix = argv[++i];
    } else if (std::strcmp(argv[i], "--strict-from-zero") == 0) {
      options.strict_from_zero = true;
    } else if (before_path == nullptr) {
      before_path = argv[i];
    } else if (after_path == nullptr) {
      after_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (before_path == nullptr || after_path == nullptr ||
      options.threshold <= 0 || options.slack < 0) {
    std::fprintf(stderr,
                 "usage: bench_compare BEFORE.json AFTER.json "
                 "[--threshold 0.15] [--suffix _allocs] [--slack N] "
                 "[--strict-from-zero]\n");
    return 2;
  }

  std::string before_text;
  std::string after_text;
  if (!read_file(before_path, before_text)) {
    std::fprintf(stderr, "cannot read %s\n", before_path);
    return 2;
  }
  if (!read_file(after_path, after_text)) {
    std::fprintf(stderr, "cannot read %s\n", after_path);
    return 2;
  }

  const auto before = magma::obs::flatten_json_numbers(before_text);
  if (!before.ok()) {
    std::fprintf(stderr, "%s: %s\n", before_path,
                 before.error().message.c_str());
    return 2;
  }
  const auto after = magma::obs::flatten_json_numbers(after_text);
  if (!after.ok()) {
    std::fprintf(stderr, "%s: %s\n", after_path,
                 after.error().message.c_str());
    return 2;
  }

  const magma::obs::BenchCompareResult result =
      magma::obs::bench_compare(before.value(), after.value(), options);
  std::printf("%s", magma::obs::format_bench_compare(result, options.threshold)
                        .c_str());
  return result.ok ? 0 : 1;
}
