// bench_compare — diff two bench JSON artifacts (BENCH_host.json,
// BENCH_fleet.json, ...) and exit nonzero when any priced cost metric
// (*_ns, *_ms, *_allocs, *_alloc_bytes, *_bytes_per_op) regressed by more
// than the threshold (default 15%). The release gate in EXPERIMENTS.md's
// "where does the host second go" recipe.
//
//   bench_compare BEFORE.json AFTER.json [--threshold 0.15]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_json.h"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* before_path = nullptr;
  const char* after_path = nullptr;
  double threshold = 0.15;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (before_path == nullptr) {
      before_path = argv[i];
    } else if (after_path == nullptr) {
      after_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (before_path == nullptr || after_path == nullptr || threshold <= 0) {
    std::fprintf(stderr,
                 "usage: bench_compare BEFORE.json AFTER.json "
                 "[--threshold 0.15]\n");
    return 2;
  }

  std::string before_text;
  std::string after_text;
  if (!read_file(before_path, before_text)) {
    std::fprintf(stderr, "cannot read %s\n", before_path);
    return 2;
  }
  if (!read_file(after_path, after_text)) {
    std::fprintf(stderr, "cannot read %s\n", after_path);
    return 2;
  }

  const auto before = magma::obs::flatten_json_numbers(before_text);
  if (!before.ok()) {
    std::fprintf(stderr, "%s: %s\n", before_path,
                 before.error().message.c_str());
    return 2;
  }
  const auto after = magma::obs::flatten_json_numbers(after_text);
  if (!after.ok()) {
    std::fprintf(stderr, "%s: %s\n", after_path,
                 after.error().message.c_str());
    return 2;
  }

  const magma::obs::BenchCompareResult result =
      magma::obs::bench_compare(before.value(), after.value(), threshold);
  std::printf("%s",
              magma::obs::format_bench_compare(result, threshold).c_str());
  return result.ok ? 0 : 1;
}
