// Ablation A1: desired-state synchronization vs CRUD deltas (§3.4).
//
// The paper's example: the control plane wants the data plane to hold
// session set {X, Y, Z}. A CRUD protocol sends "add Z"; if that message is
// lost, "the receiver falls out of sync with the sender" — permanently,
// because nothing ever repairs it. The desired-state model resends the
// whole set, so one successful delivery resynchronizes everything.
//
// We run both protocols over the same lossy backhaul while the desired
// session set churns, then measure divergence (symmetric difference between
// the sender's intended set and the receiver's installed set).
#include <cstdio>
#include <set>

#include "agw/pipelined.h"
#include "bench_util.h"
#include "net/channel.h"
#include "rpc/wire.h"

using namespace magma;

namespace {

agw::SessionFlows make_session(std::uint64_t cookie) {
  agw::SessionFlows f;
  f.cookie = cookie;
  f.ue_ip = common::Ipv4{0xAC100000u + static_cast<std::uint32_t>(cookie)};
  f.agw_teid_ul = common::Teid{static_cast<std::uint32_t>(cookie)};
  f.enb_teid_dl = common::Teid{static_cast<std::uint32_t>(cookie + 4096)};
  f.enb_address = common::Ipv4::from_octets(10, 100, 0, 1);
  return f;
}

struct Outcome {
  std::size_t divergence;      // |intended Δ installed| at the end
  std::size_t messages_sent;
  std::size_t bytes_sent;
};

// Both senders drive the same randomized churn of a target session set.
template <typename SendChange, typename SendFull>
Outcome run_churn(sim::Kernel& kernel, sim::Rng& rng, SendChange send_change,
                  SendFull send_full, sim::Duration full_interval,
                  std::set<std::uint64_t>& intended) {
  // 120 s of churn: one add/remove per second.
  for (int t = 0; t < 120; ++t) {
    kernel.schedule(t * sim::kSecond, [&intended, &rng, send_change]() {
      const std::uint64_t cookie = 1 + rng.uniform_int(30);
      if (intended.contains(cookie)) {
        intended.erase(cookie);
        send_change(cookie, false);
      } else {
        intended.insert(cookie);
        send_change(cookie, true);
      }
    });
  }
  if (full_interval > 0) {
    for (sim::Duration t = full_interval; t <= 140 * sim::kSecond;
         t += full_interval) {
      kernel.schedule(t, [send_full]() { send_full(); });
    }
  }
  kernel.run_until(kernel.now() + 150 * sim::kSecond);
  return Outcome{};
}

std::size_t divergence(const std::set<std::uint64_t>& intended,
                       const agw::Pipelined& pd) {
  std::set<std::uint64_t> installed;
  for (std::uint64_t c : pd.installed_cookies()) installed.insert(c);
  std::size_t diff = 0;
  for (std::uint64_t c : intended) diff += installed.contains(c) ? 0 : 1;
  for (std::uint64_t c : installed) diff += intended.contains(c) ? 0 : 1;
  return diff;
}

struct RunResult {
  std::size_t crud_divergence;
  std::size_t desired_divergence;
};

RunResult run_loss(double loss, std::uint64_t seed) {
  sim::Kernel kernel;
  sim::Rng rng(seed);
  sim::LinkConfig config = sim::microwave_backhaul();
  config.loss_probability = loss;

  // --- CRUD receiver ------------------------------------------------------
  net::DuplexLink crud_link(kernel, rng, config);
  net::ChannelPair crud = net::make_datagram_pair(kernel, crud_link);
  agw::Pipelined crud_pd;
  crud.b->set_receiver([&kernel, &crud_pd](common::Bytes msg) {
    rpc::Reader r(msg);
    const bool install = r.boolean();
    auto flows = agw::SessionFlows::deserialize(r.bytes());
    if (!flows.ok()) return;
    if (install) {
      crud_pd.install_session(flows.value(), kernel.now()).ok();
    } else {
      crud_pd.remove_session(flows.value().cookie).ok();
    }
  });

  // --- desired-state receiver ----------------------------------------------
  net::DuplexLink ds_link(kernel, rng, config);
  net::ChannelPair ds = net::make_datagram_pair(kernel, ds_link);
  agw::Pipelined ds_pd;
  ds.b->set_receiver([&kernel, &ds_pd](common::Bytes msg) {
    rpc::Reader r(msg);
    const std::uint64_t count = r.u64();
    std::vector<agw::SessionFlows> sessions;
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      auto flows = agw::SessionFlows::deserialize(r.bytes());
      if (flows.ok()) sessions.push_back(std::move(flows).take());
    }
    ds_pd.set_desired_sessions(sessions, kernel.now());
  });

  std::set<std::uint64_t> intended;
  sim::Rng churn_rng(seed + 1);

  auto send_change = [&](std::uint64_t cookie, bool install) {
    rpc::Writer w;
    w.boolean(install);
    w.bytes(make_session(cookie).serialize());
    crud.a->send(std::move(w).take());
  };
  auto send_full = [&]() {
    rpc::Writer w;
    w.u64(intended.size());
    for (std::uint64_t cookie : intended) {
      w.bytes(make_session(cookie).serialize());
    }
    ds.a->send(std::move(w).take());
  };

  run_churn(kernel, churn_rng, send_change, send_full, 5 * sim::kSecond,
            intended);
  return RunResult{divergence(intended, crud_pd), divergence(intended, ds_pd)};
}

}  // namespace

int main() {
  benchutil::banner(
      "Ablation A1 — desired-state sync vs CRUD deltas under loss",
      "Hasan et al., NSDI'23, §3.4 (the X/Y/Z example)");
  std::printf("120 s of session churn (1 change/s, ~15 live sessions) over a "
              "lossy backhaul;\nCRUD sends one unacked delta per change, "
              "desired-state resends the full set every 5 s.\n\n");

  std::printf("%8s %22s %26s\n", "loss%", "CRUD divergence(sessions)",
              "desired-state divergence");
  bool crud_diverges_somewhere = false;
  bool desired_always_converges = true;
  for (const double loss : {0.0, 0.01, 0.05, 0.10, 0.20, 0.40}) {
    std::size_t crud_total = 0;
    std::size_t ds_total = 0;
    const int kTrials = 5;
    for (int trial = 0; trial < kTrials; ++trial) {
      const RunResult result =
          run_loss(loss, 100 + static_cast<std::uint64_t>(trial));
      crud_total += result.crud_divergence;
      ds_total += result.desired_divergence;
    }
    std::printf("%8.0f %22.1f %26.1f\n", loss * 100,
                static_cast<double>(crud_total) / kTrials,
                static_cast<double>(ds_total) / kTrials);
    if (loss >= 0.05 && crud_total > 0) crud_diverges_somewhere = true;
    if (ds_total != 0) desired_always_converges = false;
  }

  const bool holds = crud_diverges_somewhere && desired_always_converges;
  std::printf("\nSHAPE %s: CRUD permanently diverges once messages drop; "
              "desired-state reconverges to zero divergence at every loss "
              "rate (\"the receiver comes back into sync with the sender "
              "once it is able to receive messages again\").\n",
              holds ? "HOLDS" : "DIVERGES");
  return holds ? 0 : 1;
}
