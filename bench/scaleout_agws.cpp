// Ablation A4: network capacity scales linearly with AGWs (§4.2).
//
// "These results provide an upper-bound on the performance of a *single*
// Magma AGW; the *network* capacity of a Magma network scales linearly
// with AGWs." Also §3.2: "Scaling up is essentially a matter of adding more
// AGWs ... without much increase in the load on the orchestrator."
#include <cstdio>

#include "bench_util.h"

using namespace magma;

namespace {

struct ScalePoint {
  int agws;
  double throughput_gbps;
  double attach_per_s;
  std::uint64_t orc8r_rpcs;
};

ScalePoint run_scale(int n_agws) {
  core::Network net(core::NetworkConfig{.seed = 77});
  struct Domain {
    agw::AccessGateway* agw;
    ran::EnodeB* enb;
    std::vector<ran::UeLte*> ues;
  };
  std::vector<Domain> domains;
  for (int i = 0; i < n_agws; ++i) {
    Domain d;
    d.agw = &net.add_agw(agw::virtual_xeon(4));
    ran::EnodebConfig big;
    big.max_active_ues = 200;
    big.dl_capacity_bps = 10e9;
    d.enb = &net.add_enodeb(*d.agw, big);
    domains.push_back(d);
  }
  net.run_for(2 * sim::kSecond);

  // Attach capacity: offer a synchronized surge to every AGW at once and
  // measure aggregate completed attaches per second.
  const int kUesPerAgw = 40;
  std::vector<std::unique_ptr<core::AttachRamp>> ramps;
  for (Domain& d : domains) {
    d.ues = benchutil::provision_lte_ues(net, kUesPerAgw);
  }
  const sim::TimePoint attach_start = net.kernel().now();
  for (Domain& d : domains) {
    ramps.push_back(
        std::make_unique<core::AttachRamp>(net, d.ues, *d.enb, 100.0));
  }
  // Run until every ramp completes.
  sim::TimePoint last_done = attach_start;
  net.run_for(60 * sim::kSecond);
  std::size_t total_ok = 0;
  for (const auto& ramp : ramps) {
    total_ok += ramp->succeeded();
    for (const core::AttachRecord& record : ramp->records()) {
      if (record.done && record.outcome.success) {
        last_done = std::max(last_done,
                             record.requested + record.outcome.latency);
      }
    }
  }
  const double attach_rate =
      static_cast<double>(total_ok) /
      sim::to_seconds(std::max<sim::Duration>(last_done - attach_start, 1));

  // Throughput: saturate every AGW's user plane.
  std::vector<std::unique_ptr<core::DownlinkFlow>> flows;
  for (Domain& d : domains) {
    for (ran::UeLte* ue : d.ues) {
      if (!ue->ip().has_value()) continue;
      flows.push_back(std::make_unique<core::DownlinkFlow>(
          net, *d.agw, *ue->ip(), 120e6, 50 * sim::kMillisecond));
      flows.back()->start();
    }
  }
  std::uint64_t fwd_before = 0;
  for (const Domain& d : domains) {
    fwd_before += d.agw->user_plane_stats().forwarded_bytes;
  }
  const std::uint64_t rpc_before = net.orchestrator().stats().config_pushes +
                                   net.orchestrator().stats().noop_polls +
                                   net.orchestrator().stats().checkins;
  const double kMeasure = 15;
  net.run_for(sim::from_seconds(kMeasure));
  std::uint64_t fwd_after = 0;
  for (const Domain& d : domains) {
    fwd_after += d.agw->user_plane_stats().forwarded_bytes;
  }
  const std::uint64_t rpc_after = net.orchestrator().stats().config_pushes +
                                  net.orchestrator().stats().noop_polls +
                                  net.orchestrator().stats().checkins;

  return ScalePoint{
      n_agws,
      static_cast<double>(fwd_after - fwd_before) * 8 / kMeasure / 1e9,
      attach_rate, rpc_after - rpc_before};
}

}  // namespace

int main() {
  benchutil::banner("Ablation A4 — capacity scales linearly with AGWs",
                    "Hasan et al., NSDI'23, §4.2 / §3.2");

  std::printf("%8s %18s %16s %22s\n", "AGWs", "throughput(Gbps)",
              "attaches/s", "orc8r RPCs (15s window)");
  double tput_1 = 0;
  double tput_8 = 0;
  double attach_1 = 0;
  double attach_8 = 0;
  for (const int n : {1, 2, 4, 8}) {
    const ScalePoint point = run_scale(n);
    std::printf("%8d %18.2f %16.1f %22llu\n", point.agws,
                point.throughput_gbps, point.attach_per_s,
                static_cast<unsigned long long>(point.orc8r_rpcs));
    if (n == 1) {
      tput_1 = point.throughput_gbps;
      attach_1 = point.attach_per_s;
    }
    if (n == 8) {
      tput_8 = point.throughput_gbps;
      attach_8 = point.attach_per_s;
    }
  }

  const double tput_scaling = tput_8 / tput_1;
  const double attach_scaling = attach_8 / attach_1;
  const bool holds = tput_scaling > 6.5 && attach_scaling > 6.0;
  std::printf("\nSHAPE %s: 8 AGWs deliver %.1fx the throughput and %.1fx "
              "the attach capacity of 1 AGW (ideal: 8x); orchestrator load "
              "grows only with the device-management heartbeat, not with "
              "user traffic.\n",
              holds ? "HOLDS" : "DIVERGES", tput_scaling, attach_scaling);
  return holds ? 0 : 1;
}
