// Ablation A3: headless operation timeline (§3.2).
//
// "An AGW can still establish a session for a UE that attaches to a base
// station, because the local control plane has enough information (e.g.,
// cached subscriber profiles) ... Conversely, network-wide actions like the
// addition of users ... must wait until the central control plane becomes
// available again."
//
// Timeline: connected phase -> orchestrator outage -> recovery. In each
// phase we attach UEs whose subscribers were provisioned either before the
// outage (cached at the AGW) or during it (not yet pushed), and track the
// AGW's synced config version against the orchestrator's.
#include <cstdio>

#include "bench_util.h"

using namespace magma;

namespace {

double attach_batch(core::Network& net, ran::EnodeB& enb,
                    const std::vector<agw::SubscriberData>& subs) {
  int ok = 0;
  int done = 0;
  std::vector<ran::UeLte*> ues;
  for (const auto& sub : subs) ues.push_back(&net.add_ue_lte(sub));
  for (ran::UeLte* ue : ues) {
    ue->attach(enb, [&](const ran::AttachOutcome& outcome) {
      ++done;
      ok += outcome.success ? 1 : 0;
    });
  }
  net.run_for(25 * sim::kSecond);
  return done > 0 ? static_cast<double>(ok) / done : 0;
}

std::vector<agw::SubscriberData> provision(core::Network& net, int n) {
  std::vector<agw::SubscriberData> subs;
  for (int i = 0; i < n; ++i) subs.push_back(net.provision_subscriber());
  return subs;
}

}  // namespace

int main() {
  benchutil::banner("Ablation A3 — headless operation timeline",
                    "Hasan et al., NSDI'23, §3.2");

  core::NetworkConfig config;
  config.backhaul = sim::satellite_backhaul();
  core::Network net(config);
  agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
  ran::EnodebConfig big;
  big.max_active_ues = 300;
  ran::EnodeB& enb = net.add_enodeb(agw, big);
  net.run_for(5 * sim::kSecond);

  std::printf("\n%-46s %10s %10s %10s\n", "phase", "attach%", "agw_ver",
              "orc8r_ver");
  auto row = [&](const char* phase, double csr) {
    std::printf("%-46s %10.0f %10llu %10llu\n", phase, csr * 100,
                static_cast<unsigned long long>(agw.magmad().synced_version()),
                static_cast<unsigned long long>(
                    net.orchestrator().config_version()));
  };

  // Phase 1: connected. Provision, sync, attach.
  auto cohort_connected = provision(net, 20);
  auto cohort_cached = provision(net, 20);  // synced now, attached later
  net.sync_all_config();
  net.run_for(10 * sim::kSecond);
  const double phase1 = attach_batch(net, enb, cohort_connected);
  row("1 connected: provision+sync+attach", phase1);

  // Outage begins.
  net.set_backhaul_up(agw, false);
  net.run_for(60 * sim::kSecond);

  // Phase 2: headless, but these subscribers are in the AGW cache.
  const double phase2 = attach_batch(net, enb, cohort_cached);
  row("2 HEADLESS: pre-synced subscribers attach", phase2);

  // Phase 3: subscribers added during the outage cannot be served yet.
  auto cohort_during_outage = provision(net, 20);
  net.sync_all_config();  // the sync RPCs all die on the dead link
  const double phase3 = attach_batch(net, enb, cohort_during_outage);
  row("3 HEADLESS: subscribers added during outage", phase3);

  // Phase 4: backhaul restored; magmad's periodic sync converges; the same
  // subscribers now attach fine.
  net.set_backhaul_up(agw, true);
  net.run_for(2 * sim::kMinute);
  const double phase4 = attach_batch(net, enb, cohort_during_outage);
  row("4 reconnected: same subscribers retry", phase4);

  const bool holds = phase1 > 0.99 && phase2 > 0.99 && phase3 < 0.01 &&
                     phase4 > 0.99;
  std::printf("\nSHAPE %s: sessions keep establishing while headless "
              "(cached state); config-dependent actions stall during the "
              "outage and converge after reconnection.\n",
              holds ? "HOLDS" : "DIVERGES");
  return holds ? 0 : 1;
}
