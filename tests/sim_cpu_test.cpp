// CPU model: work conservation, partitioning, serialization, overload.
#include <gtest/gtest.h>

#include "sim/cpu.h"

namespace magma::sim {
namespace {

TEST(CpuModel, SingleCoreSerializesWork) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 1;
  config.speed_ghz = 1.0;
  CpuModel cpu(kernel, config);

  std::vector<TimePoint> completions;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cpu.submit(WorkClass::kControl, 1.0,
                           [&]() { completions.push_back(kernel.now()); }));
  }
  kernel.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 1 * kSecond);
  EXPECT_EQ(completions[1], 2 * kSecond);
  EXPECT_EQ(completions[2], 3 * kSecond);
}

TEST(CpuModel, SpeedScalesCost) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 1;
  config.speed_ghz = 2.0;  // 1 reference-second takes 0.5 s
  CpuModel cpu(kernel, config);
  TimePoint done = 0;
  cpu.submit(WorkClass::kUser, 1.0, [&]() { done = kernel.now(); });
  kernel.run();
  EXPECT_EQ(done, kSecond / 2);
}

TEST(CpuModel, MultiCoreRunsInParallel) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 4;
  config.speed_ghz = 1.0;
  CpuModel cpu(kernel, config);
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    cpu.submit(WorkClass::kUser, 1.0, [&]() { ++completed; });
  }
  kernel.run_until(1 * kSecond);
  EXPECT_EQ(completed, 4);
}

TEST(CpuModel, PartitionSeparatesClasses) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 4;
  config.speed_ghz = 1.0;
  config.user_plane_cores = 3;  // 3 user, 1 control
  CpuModel cpu(kernel, config);
  EXPECT_EQ(cpu.cores_for(WorkClass::kUser), 3);
  EXPECT_EQ(cpu.cores_for(WorkClass::kControl), 1);

  // Two control jobs must serialize on the single control core even while
  // the user cores are idle.
  std::vector<TimePoint> control_done;
  cpu.submit(WorkClass::kControl, 1.0,
             [&]() { control_done.push_back(kernel.now()); });
  cpu.submit(WorkClass::kControl, 1.0,
             [&]() { control_done.push_back(kernel.now()); });
  // Three user jobs run fully parallel.
  int user_done_at_1s = 0;
  for (int i = 0; i < 3; ++i) {
    cpu.submit(WorkClass::kUser, 1.0, [&]() { ++user_done_at_1s; });
  }
  kernel.run();
  ASSERT_EQ(control_done.size(), 2u);
  EXPECT_EQ(control_done[0], 1 * kSecond);
  EXPECT_EQ(control_done[1], 2 * kSecond);
  EXPECT_EQ(user_done_at_1s, 3);
}

TEST(CpuModel, ZeroCoresForClassRejects) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 2;
  config.user_plane_cores = 2;  // no control cores at all
  CpuModel cpu(kernel, config);
  EXPECT_FALSE(cpu.submit(WorkClass::kControl, 1.0, []() {}));
  EXPECT_EQ(cpu.stats().rejected[0], 1u);
  EXPECT_TRUE(cpu.submit(WorkClass::kUser, 1.0, []() {}));
}

TEST(CpuModel, QueueBoundRejectsOverload) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 1;
  config.max_queue_depth = 2;
  CpuModel cpu(kernel, config);
  int completed = 0;
  // 1 running + 2 queued accepted; 4th rejected.
  EXPECT_TRUE(cpu.submit(WorkClass::kUser, 1.0, [&]() { ++completed; }));
  EXPECT_TRUE(cpu.submit(WorkClass::kUser, 1.0, [&]() { ++completed; }));
  EXPECT_TRUE(cpu.submit(WorkClass::kUser, 1.0, [&]() { ++completed; }));
  EXPECT_FALSE(cpu.submit(WorkClass::kUser, 1.0, [&]() { ++completed; }));
  kernel.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(cpu.stats().rejected[1], 1u);
}

TEST(CpuModel, BusyAccountingPerClass) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 2;
  config.speed_ghz = 1.0;
  CpuModel cpu(kernel, config);
  cpu.submit(WorkClass::kControl, 2.0, []() {});
  cpu.submit(WorkClass::kUser, 3.0, []() {});
  kernel.run();
  EXPECT_EQ(cpu.stats().busy_ns[0], 2 * kSecond);
  EXPECT_EQ(cpu.stats().busy_ns[1], 3 * kSecond);
  EXPECT_EQ(cpu.stats().completed[0], 1u);
  EXPECT_EQ(cpu.stats().completed[1], 1u);
}

TEST(CpuModel, WorkConservingSharedMode) {
  // In flexible mode, 4 cores complete 8 one-second jobs in exactly 2 s.
  Kernel kernel;
  CpuConfig config;
  config.cores = 4;
  config.speed_ghz = 1.0;
  CpuModel cpu(kernel, config);
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    cpu.submit(i % 2 == 0 ? WorkClass::kControl : WorkClass::kUser, 1.0,
               [&]() { ++completed; });
  }
  kernel.run();
  EXPECT_EQ(completed, 8);
  EXPECT_EQ(kernel.now(), 2 * kSecond);
}

}  // namespace
}  // namespace magma::sim
