// Host profiler: wall-clock scoped timers, allocation attribution, kernel
// event accounting, determinism (profiler on vs off), the <2% disabled
// overhead bound, and the queue-depth sub-classification of critical-path
// `other` time.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/channel.h"
#include "obs/critical_path.h"
#include "obs/host_profiler.h"
#include "obs/trace.h"
#include "sim/kernel.h"
#include "sim/link.h"
#include "sim/random.h"

namespace magma::obs {
namespace {

// Burn wall time without allocating, so scope totals are strictly positive
// even on a coarse clock.
void spin_ns(std::uint64_t ns) {
  const std::uint64_t until = HostProfiler::now_ns() + ns;
  volatile std::uint64_t sink = 0;
  while (HostProfiler::now_ns() < until) sink = sink + 1;
}

// ---------------------------------------------------------------------------
// Labels and scopes
// ---------------------------------------------------------------------------

TEST(HostProfiler, LabelInterningIsIdempotent) {
  const HostLabelId a = host_label("test.intern", "op_a");
  const HostLabelId b = host_label("test.intern", "op_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, host_label("test.intern", "op_a"));
  EXPECT_NE(a, kHostUnlabeled);
  EXPECT_GT(host_label_count(), static_cast<std::size_t>(a));
}

TEST(HostProfiler, ScopeAttributesSelfAndChildTime) {
  HostProfiler prof;
  prof.install();
  {
    MAGMA_HOST_SCOPE("test.attr", "outer");
    spin_ns(200000);
    {
      MAGMA_HOST_SCOPE("test.attr", "inner");
      spin_ns(200000);
    }
    spin_ns(100000);
  }
  HostProfiler::uninstall();

  const HostLabelStats outer = prof.stats_for("test.attr", "outer");
  const HostLabelStats inner = prof.stats_for("test.attr", "inner");
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_EQ(inner.calls, 1u);
  // The inner scope's full duration is the outer scope's child time.
  EXPECT_EQ(outer.child_ns(), inner.total_ns);
  EXPECT_GT(outer.self_ns, 0u);
  EXPECT_GT(inner.self_ns, 0u);
  EXPECT_EQ(inner.self_ns, inner.total_ns);  // no grandchildren
  EXPECT_GE(outer.max_ns, outer.total_ns);   // single call: max == total
}

TEST(HostProfiler, SelfTimeSumsToTotalOfOutermostScopes) {
  HostProfiler prof;
  prof.install();
  {
    MAGMA_HOST_SCOPE("test.sum", "root");
    spin_ns(50000);
    {
      MAGMA_HOST_SCOPE("test.sum", "mid");
      spin_ns(50000);
      {
        MAGMA_HOST_SCOPE("test.sum", "leaf");
        spin_ns(50000);
      }
    }
  }
  HostProfiler::uninstall();

  // Self/child separation is exact by construction: the sum of self_ns over
  // every label equals the wall time inside outermost scopes.
  const HostLabelStats root = prof.stats_for("test.sum", "root");
  EXPECT_EQ(prof.total_self_ns(), root.total_ns);
}

TEST(HostProfiler, AllocationsAttributedToInnermostScope) {
  HostProfiler prof;
  prof.install();
  {
    MAGMA_HOST_SCOPE("test.alloc", "holder");
    auto block = std::make_unique<char[]>(4096);
    block[0] = 1;
  }
  HostProfiler::uninstall();

  const HostLabelStats holder = prof.stats_for("test.alloc", "holder");
  EXPECT_GE(holder.alloc_count, 1u);
  EXPECT_GE(holder.alloc_bytes, 4096u);
  EXPECT_GE(holder.free_count, 1u);
}

TEST(HostProfiler, ProcessTotalsAdvanceEvenWhenDisabled) {
  ASSERT_FALSE(HostProfiler::enabled());
  const std::uint64_t allocs_before = HostProfiler::process_alloc_count();
  const std::uint64_t bytes_before = HostProfiler::process_alloc_bytes();
  const std::uint64_t frees_before = HostProfiler::process_free_count();
  {
    auto block = std::make_unique<char[]>(8192);
    block[0] = 1;
  }
  EXPECT_GT(HostProfiler::process_alloc_count(), allocs_before);
  EXPECT_GE(HostProfiler::process_alloc_bytes(), bytes_before + 8192);
  EXPECT_GT(HostProfiler::process_free_count(), frees_before);
}

TEST(HostProfiler, DisabledScopesAreNoOps) {
  ASSERT_FALSE(HostProfiler::enabled());
  EXPECT_EQ(HostProfiler::current_label(), kHostUnlabeled);
  {
    MAGMA_HOST_SCOPE("test.disabled", "noop");
    EXPECT_EQ(HostProfiler::current_label(), kHostUnlabeled);
  }
  // A later profiler sees zero counts for the label.
  HostProfiler prof;
  EXPECT_EQ(prof.stats_for("test.disabled", "noop").calls, 0u);
}

TEST(HostProfiler, ResetZeroesStatsButKeepsLabels) {
  HostProfiler prof;
  prof.install();
  {
    MAGMA_HOST_SCOPE("test.reset", "op");
    spin_ns(1000);
  }
  HostProfiler::uninstall();
  ASSERT_EQ(prof.stats_for("test.reset", "op").calls, 1u);
  prof.reset();
  EXPECT_EQ(prof.stats_for("test.reset", "op").calls, 0u);
  EXPECT_EQ(prof.total_self_ns(), 0u);
  EXPECT_EQ(host_label("test.reset", "op"),
            host_label("test.reset", "op"));  // still interned
}

// ---------------------------------------------------------------------------
// Kernel event accounting
// ---------------------------------------------------------------------------

TEST(HostProfilerKernel, CountsScheduledAndDispatchedPerLabel) {
  sim::Kernel kernel;
  HostProfiler prof;
  prof.install();
  int fired = 0;
  {
    MAGMA_HOST_SCOPE("test.kernel", "producer");
    for (int i = 0; i < 5; ++i) {
      kernel.schedule(static_cast<sim::Duration>(i) * sim::kMillisecond,
                      [&fired]() { ++fired; });
    }
  }
  kernel.run_until(sim::kSecond);
  HostProfiler::uninstall();

  EXPECT_EQ(fired, 5);
  const HostLabelStats producer = prof.stats_for("test.kernel", "producer");
  EXPECT_EQ(producer.events_scheduled, 5u);
  // The kernel re-enters the scheduling label around each dispatch, so the
  // dispatches count there and their wall cost lands in its calls/total.
  EXPECT_EQ(producer.events_dispatched, 5u);
  EXPECT_EQ(producer.calls, 1u + 5u);
  EXPECT_EQ(kernel.stats().scheduled, 5u);
  EXPECT_GE(kernel.stats().queue_hwm, 5u);
}

TEST(HostProfilerKernel, UnlabeledSchedulesFallBackToDispatchLabel) {
  sim::Kernel kernel;
  HostProfiler prof;
  prof.install();
  kernel.schedule(sim::kMillisecond, []() {});
  kernel.run_until(sim::kSecond);
  HostProfiler::uninstall();

  // Scheduled outside any scope: attributed to the kernel's own label.
  const HostLabelStats fallback = prof.stats_for("kernel", "dispatch");
  EXPECT_EQ(fallback.events_dispatched, 1u);
}

// ---------------------------------------------------------------------------
// Determinism: host profiling must never feed back into sim behavior
// ---------------------------------------------------------------------------

struct EchoRunResult {
  int completed = 0;
  std::uint64_t executed_events = 0;
  sim::TimePoint final_now = 0;
  std::uint64_t retransmissions = 0;
};

EchoRunResult run_echo_scenario(bool profiled) {
  HostProfiler prof;
  if (profiled) prof.install();
  EchoRunResult result;
  {
    sim::Kernel kernel;
    sim::Rng rng(7);
    net::DuplexLink link(kernel, rng, sim::microwave_backhaul());
    net::ReliablePair pair = net::make_reliable_pair(kernel, link);
    pair.b->set_receiver(
        [&pair](common::Bytes msg) { pair.b->send(std::move(msg)); });
    pair.a->set_receiver([&pair, &result](common::Bytes msg) {
      if (++result.completed < 40) pair.a->send(std::move(msg));
    });
    pair.a->send(common::Bytes(256, 0x42));
    kernel.run_until(120 * sim::kSecond);
    result.executed_events = kernel.executed_events();
    result.final_now = kernel.now();
    result.retransmissions = pair.a->stats().retransmissions;
  }
  if (profiled) HostProfiler::uninstall();
  return result;
}

TEST(HostProfilerDeterminism, SimResultsIdenticalProfilerOnVsOff) {
  const EchoRunResult off = run_echo_scenario(false);
  const EchoRunResult on = run_echo_scenario(true);
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.executed_events, on.executed_events);
  EXPECT_EQ(off.final_now, on.final_now);
  EXPECT_EQ(off.retransmissions, on.retransmissions);
  EXPECT_EQ(off.completed, 40);
}

// ---------------------------------------------------------------------------
// Disabled overhead bound
// ---------------------------------------------------------------------------

// The hot-path work unit: enough arithmetic that the loop is not pure scope
// overhead, little enough that a real regression in the disabled branch
// would show.
std::uint64_t work_unit(std::uint64_t x) {
  for (int i = 0; i < 64; ++i) x = x * 6364136223846793005ull + 1442695040888963407ull;
  return x;
}

std::uint64_t timed_loop(bool scoped, int iters, std::uint64_t& sink) {
  const std::uint64_t t0 = HostProfiler::now_ns();
  if (scoped) {
    for (int i = 0; i < iters; ++i) {
      MAGMA_HOST_SCOPE("test.overhead", "hot");
      sink = work_unit(sink);
    }
  } else {
    for (int i = 0; i < iters; ++i) sink = work_unit(sink);
  }
  return HostProfiler::now_ns() - t0;
}

TEST(HostProfilerOverhead, DisabledUnder2Percent) {
  ASSERT_FALSE(HostProfiler::enabled());
  constexpr int kIters = 200000;
  std::uint64_t sink = 1;
  // Warm up both paths, then take the min of several repetitions per side —
  // the min filters scheduler noise; a retry loop absorbs the rest.
  timed_loop(false, kIters, sink);
  timed_loop(true, kIters, sink);
  double best_ratio = 1e9;
  for (int attempt = 0; attempt < 6 && best_ratio >= 1.02; ++attempt) {
    std::uint64_t plain = ~0ull;
    std::uint64_t scoped = ~0ull;
    for (int rep = 0; rep < 5; ++rep) {
      plain = std::min(plain, timed_loop(false, kIters, sink));
      scoped = std::min(scoped, timed_loop(true, kIters, sink));
    }
    best_ratio = std::min(best_ratio, static_cast<double>(scoped) /
                                          static_cast<double>(plain));
  }
  EXPECT_LT(best_ratio, 1.02) << "disabled-scope overhead above 2%";
  EXPECT_NE(sink, 0u);
}

// ---------------------------------------------------------------------------
// Queue-depth sampling and the backlogged sub-classification
// ---------------------------------------------------------------------------

TEST(QueueDepthSampling, SpanBoundariesStampKernelQueueDepth) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  // Three future events: any span opened now sees a backlog of 3.
  for (int i = 1; i <= 3; ++i) {
    kernel.schedule(static_cast<sim::Duration>(i) * sim::kSecond, []() {});
  }
  const TraceContext span = tracer.begin("busy", "svc", "node");
  tracer.end(span);
  ASSERT_EQ(tracer.finished().size(), 1u);
  EXPECT_EQ(tracer.finished().back().queue_depth_open, 3u);
  EXPECT_EQ(tracer.finished().back().queue_depth_close, 3u);

  kernel.run_until(10 * sim::kSecond);
  const TraceContext idle = tracer.begin("idle", "svc", "node");
  tracer.end(idle);
  EXPECT_EQ(tracer.finished().back().queue_depth_open, 0u);
  EXPECT_EQ(tracer.finished().back().queue_depth_close, 0u);
}

SpanRecord make_span(std::uint64_t span_id, std::uint64_t parent,
                     sim::TimePoint start, sim::TimePoint end,
                     std::size_t depth_open, std::size_t depth_close) {
  SpanRecord s;
  s.trace_id = 1;
  s.span_id = span_id;
  s.parent_span_id = parent;
  s.name = "span" + std::to_string(span_id);
  s.service = "svc";
  s.node = "node";
  s.start = start;
  s.end = end;
  s.queue_depth_open = depth_open;
  s.queue_depth_close = depth_close;
  return s;
}

TEST(QueueDepthSampling, CriticalPathSubClassifiesBackloggedOther) {
  // Root 0..100ms, no wait charges: all `other`. One child 0..40ms that was
  // backlogged at both boundaries; the root itself opened on an empty queue.
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(1, 0, 0, 100 * sim::kMillisecond, 0, 2));
  spans.push_back(make_span(2, 1, 0, 40 * sim::kMillisecond, 5, 3));
  const CriticalPathResult cp = critical_path(spans);
  ASSERT_TRUE(cp.valid);
  // Everything is `other` (no charges anywhere)...
  EXPECT_EQ(cp.component(WaitState::kOther), cp.total);
  // ...but only the child's 40 ms is sub-classified as backlogged: the root
  // opened on an empty queue (min(0, 2) == 0).
  EXPECT_EQ(cp.other_backlogged, 40 * sim::kMillisecond);
  EXPECT_EQ(cp.max_queue_depth, 5u);
}

TEST(QueueDepthSampling, BackloggedNeverExceedsOther) {
  // A backlogged span whose self-time is fully claimed by a CPU charge:
  // nothing lands in `other`, so nothing may land in `other_backlogged`.
  std::vector<SpanRecord> spans;
  SpanRecord root = make_span(1, 0, 0, 10 * sim::kMillisecond, 4, 4);
  root.wait_ns[static_cast<std::size_t>(WaitState::kCpu)] =
      10 * sim::kMillisecond;
  spans.push_back(root);
  const CriticalPathResult cp = critical_path(spans);
  ASSERT_TRUE(cp.valid);
  EXPECT_EQ(cp.component(WaitState::kOther), 0);
  EXPECT_EQ(cp.other_backlogged, 0);
  EXPECT_EQ(cp.max_queue_depth, 4u);
}

}  // namespace
}  // namespace magma::obs
