// Histogram merge edge cases: mismatched bucket layouts, counter
// saturation near uint64 max, merge-with-empty — plus the per-bucket
// exemplar contract (displacement, merge fill, quantile pivot) the
// metrics→trace pivot rides on.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "obs/histogram.h"

namespace magma::obs {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

Histogram small_hist() { return Histogram({1.0, 10.0, 100.0}); }

TEST(HistogramMerge, MismatchedLayoutIsRejectedUntouched) {
  Histogram a({1.0, 10.0, 100.0});
  Histogram b({1.0, 10.0});  // fewer buckets
  a.observe(5.0);
  b.observe(5.0);
  ASSERT_FALSE(a.merge(b));
  // The refusing side is left exactly as it was.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.counts()[1], 1u);

  Histogram c({1.0, 20.0, 100.0});  // same size, different bound
  c.observe(5.0);
  ASSERT_FALSE(a.merge(c));
  EXPECT_EQ(a.count(), 1u);
}

TEST(HistogramMerge, EmptyIntoPopulatedAndBack) {
  Histogram a = small_hist();
  Histogram empty = small_hist();
  a.observe(0.5);
  a.observe(50.0);

  // Populated += empty: no change.
  ASSERT_TRUE(a.merge(empty));
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.sum(), 50.5);

  // Empty += populated: becomes an exact copy.
  ASSERT_TRUE(empty.merge(a));
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.sum(), 50.5);
  EXPECT_EQ(empty.counts(), a.counts());

  // Empty += empty stays empty (and quantile stays well-defined).
  Histogram e1 = small_hist();
  Histogram e2 = small_hist();
  ASSERT_TRUE(e1.merge(e2));
  EXPECT_EQ(e1.count(), 0u);
  EXPECT_DOUBLE_EQ(e1.quantile(0.99), 0.0);
}

TEST(HistogramMerge, CountsSaturateInsteadOfWrapping) {
  Histogram a = small_hist();
  Histogram b = small_hist();
  // Force both sides' first bucket near the ceiling via assign (the decode
  // path a hostile or long-lived peer would arrive through).
  ASSERT_TRUE(a.assign({1.0, 10.0, 100.0}, {kMax - 1, 0, 0, 0}, 1.0));
  ASSERT_TRUE(b.assign({1.0, 10.0, 100.0}, {5, 0, 0, 0}, 1.0));
  ASSERT_TRUE(a.merge(b));
  // A wrapped counter would report a near-empty bucket; saturation pins it
  // at the ceiling instead.
  EXPECT_EQ(a.counts()[0], kMax);
  EXPECT_EQ(a.count(), kMax);

  // Saturated + more stays saturated.
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.counts()[0], kMax);
}

TEST(HistogramObserve, TotalCountSaturates) {
  Histogram a = small_hist();
  ASSERT_TRUE(a.assign({1.0, 10.0, 100.0}, {kMax, 0, 0, 0}, 0.0));
  a.observe(0.5);
  EXPECT_EQ(a.counts()[0], kMax);
  EXPECT_EQ(a.count(), kMax);
}

TEST(HistogramExemplar, ObserveDisplacesAndReturnsPrevious) {
  Histogram h = small_hist();
  EXPECT_EQ(h.observe(0.5, 0xA), 0u);  // bucket had no exemplar
  EXPECT_EQ(h.observe(0.5, 0xB), 0xAu);  // displaced A
  // Same trace observed again: returned as displaced too (refcounted pins
  // make pin(new) + unpin(displaced) net to zero).
  EXPECT_EQ(h.observe(0.5, 0xB), 0xBu);
  // Exemplar-less observation keeps the current exemplar.
  EXPECT_EQ(h.observe(0.5), 0u);
  EXPECT_EQ(h.exemplars()[0], 0xBu);
}

TEST(HistogramExemplar, MergeFillsOnlyEmptyBuckets) {
  Histogram a = small_hist();
  Histogram b = small_hist();
  a.observe(0.5, 0xA);   // bucket 0: A
  b.observe(0.5, 0xB);   // bucket 0: B (must not overwrite A)
  b.observe(50.0, 0xC);  // bucket 2: only b has one
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.exemplars()[0], 0xAu);
  EXPECT_EQ(a.exemplars()[2], 0xCu);
}

TEST(HistogramExemplar, NearQuantileWalksDownToTaggedBucket) {
  Histogram h = small_hist();
  for (int i = 0; i < 198; ++i) h.observe(0.5);  // no exemplar
  h.observe(0.5, 0xA);
  h.observe(500.0);  // overflow bucket, no exemplar
  // p99 lands in the overflow bucket which carries none — the pivot walks
  // down to the nearest tagged bucket below.
  EXPECT_EQ(h.exemplar_near_quantile(0.999), 0xAu);
  EXPECT_EQ(h.exemplar_near_quantile(0.5), 0xAu);

  Histogram empty = small_hist();
  EXPECT_EQ(empty.exemplar_near_quantile(0.99), 0u);
}

TEST(HistogramAssign, ResetsExemplarsAndRejectsBadLayout) {
  Histogram h = small_hist();
  h.observe(0.5, 0xA);
  ASSERT_TRUE(h.assign({1.0, 10.0, 100.0}, {3, 0, 0, 0}, 1.5));
  EXPECT_EQ(h.exemplars()[0], 0u);  // snapshot codec re-applies exemplars
  // counts must be bounds.size() + 1.
  EXPECT_FALSE(h.assign({1.0, 10.0}, {1, 2}, 0.0));
  // The failed assign leaves the previous contents in place.
  EXPECT_EQ(h.counts()[0], 3u);
}

}  // namespace
}  // namespace magma::obs
