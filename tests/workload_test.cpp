// Workload generators and measurement samplers (the Landslide role).
#include <gtest/gtest.h>

#include "core/network.h"
#include "core/workload.h"
#include "ran/scenario.h"

namespace magma {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<core::Network>();
    agw_ = &net_->add_agw(agw::virtual_xeon(4));
    ran::EnodebConfig big;
    big.max_active_ues = 200;
    big.dl_capacity_bps = 1e9;
    enb_ = &net_->add_enodeb(*agw_, big);
    net_->run_for(2 * sim::kSecond);
  }

  ran::UeLte& attach_one() {
    const agw::SubscriberData sub = net_->provision_subscriber();
    net_->sync_all_config();
    ran::UeLte& ue = net_->add_ue_lte(sub);
    bool ok = false;
    ue.attach(*enb_, [&](const ran::AttachOutcome& o) { ok = o.success; });
    net_->run_for(20 * sim::kSecond);
    EXPECT_TRUE(ok);
    return ue;
  }

  std::unique_ptr<core::Network> net_;
  agw::AccessGateway* agw_ = nullptr;
  ran::EnodeB* enb_ = nullptr;
};

TEST_F(WorkloadTest, DownlinkFlowDeliversConfiguredRate) {
  ran::UeLte& ue = attach_one();
  core::DownlinkFlow flow(*net_, *agw_, *ue.ip(), 4e6);  // 4 Mbps
  flow.start();
  net_->run_for(20 * sim::kSecond);
  flow.stop();
  const double achieved = ue.traffic().rx_bytes * 8.0 / 20.0;
  EXPECT_NEAR(achieved, 4e6, 0.4e6);
}

TEST_F(WorkloadTest, DownlinkFlowCarriesFractionalPackets) {
  // A rate whose per-tick byte count is below one packet must still
  // deliver the right long-run average via the carry accumulator.
  ran::UeLte& ue = attach_one();
  core::DownlinkFlow flow(*net_, *agw_, *ue.ip(), 64e3);  // 64 kbps
  flow.start();
  net_->run_for(60 * sim::kSecond);
  flow.stop();
  const double achieved = ue.traffic().rx_bytes * 8.0 / 60.0;
  EXPECT_NEAR(achieved, 64e3, 10e3);
}

TEST_F(WorkloadTest, DownlinkFlowRateChangeTakesEffect) {
  ran::UeLte& ue = attach_one();
  core::DownlinkFlow flow(*net_, *agw_, *ue.ip(), 2e6);
  flow.start();
  net_->run_for(10 * sim::kSecond);
  const std::uint64_t at_low = ue.traffic().rx_bytes;
  flow.set_rate(8e6);
  net_->run_for(10 * sim::kSecond);
  const std::uint64_t delta_high = ue.traffic().rx_bytes - at_low;
  EXPECT_GT(delta_high, 3 * at_low);
}

TEST_F(WorkloadTest, AttachRampSpacingAndCsr) {
  std::vector<agw::SubscriberData> subs;
  for (int i = 0; i < 12; ++i) subs.push_back(net_->provision_subscriber());
  net_->sync_all_config();
  std::vector<ran::UeLte*> ues;
  for (const auto& sub : subs) ues.push_back(&net_->add_ue_lte(sub));

  const sim::TimePoint t0 = net_->kernel().now();
  core::AttachRamp ramp(*net_, ues, *enb_, 2.0);  // one every 500 ms
  net_->run_for(30 * sim::kSecond);

  EXPECT_EQ(ramp.completed(), 12u);
  EXPECT_EQ(ramp.succeeded(), 12u);
  EXPECT_DOUBLE_EQ(ramp.csr(), 1.0);
  // Request times follow the configured spacing.
  const auto& records = ramp.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].requested - t0,
              static_cast<sim::TimePoint>(i) * sim::kSecond / 2);
  }
  // Windowed CSR: the first 3 seconds contain requests 0..5.
  EXPECT_DOUBLE_EQ(ramp.csr_in_window(t0, t0 + 3 * sim::kSecond), 1.0);
}

TEST_F(WorkloadTest, DiurnalWorkloadHasDayNightCycle) {
  // Attach a small fleet, then run a simulated day.
  std::vector<agw::SubscriberData> subs;
  for (int i = 0; i < 20; ++i) subs.push_back(net_->provision_subscriber());
  net_->sync_all_config();
  std::vector<ran::UeLte*> ues;
  for (const auto& sub : subs) ues.push_back(&net_->add_ue_lte(sub));
  core::AttachRamp ramp(*net_, ues, *enb_, 4.0);
  net_->run_for(sim::from_seconds(20 / 4.0 + 20));
  ASSERT_EQ(ramp.succeeded(), 20u);

  std::vector<common::Ipv4> ips;
  for (ran::UeLte* ue : ues) ips.push_back(*ue->ip());

  core::DiurnalConfig config;
  config.peak_hour = 20.0;
  config.peak_active_fraction = 0.9;
  config.trough_active_fraction = 0.2;
  core::DiurnalWorkload workload(*net_, *agw_, ips, config,
                                 net_->rng().fork());
  workload.start();
  net_->run_for(24 * sim::kHour);

  const auto& samples = workload.samples();
  ASSERT_GE(samples.size(), 24u);
  int peak = 0;
  int trough = 1 << 30;
  for (const auto& sample : samples) {
    peak = std::max(peak, sample.active_subscribers);
    trough = std::min(trough, sample.active_subscribers);
  }
  EXPECT_GT(peak, 2 * std::max(trough, 1));
  EXPECT_LE(peak, 20);
}

// --- samplers ------------------------------------------------------------------

TEST(Samplers, RateSamplerComputesPerIntervalRates) {
  sim::Kernel kernel;
  std::uint64_t counter = 0;
  ran::RateSampler sampler(kernel, [&]() { return counter; }, sim::kSecond);
  sampler.start();
  // 1000 units/s for 5 s, then idle for 5 s.
  for (int t = 0; t < 5; ++t) {
    kernel.schedule(t * sim::kSecond + sim::kMillisecond,
                    [&]() { counter += 1000; });
  }
  kernel.run_until(10 * sim::kSecond);
  const auto& series = sampler.series();
  ASSERT_GE(series.size(), 9u);
  EXPECT_NEAR(series[1].value, 1000.0, 1.0);
  EXPECT_NEAR(series.back().value, 0.0, 1.0);
  EXPECT_NEAR(sampler.average(0, 5), 1000.0, 1.0);
  EXPECT_NEAR(sampler.peak(), 1000.0, 1.0);
}

TEST(Samplers, CpuSamplerTracksUtilizationWindows) {
  sim::Kernel kernel;
  sim::CpuModel cpu(kernel, sim::CpuConfig{2, 1.0, -1, 0});
  ran::CpuSampler sampler(kernel, cpu, sim::kSecond);
  sampler.start();
  // One core busy with control work for the first second only.
  cpu.submit(sim::WorkClass::kControl, 1.0, []() {});
  kernel.run_until(3 * sim::kSecond);
  const auto& control = sampler.control_util();
  ASSERT_GE(control.size(), 3u);
  EXPECT_NEAR(control[0].value, 0.5, 1e-9);  // 1 of 2 cores busy
  EXPECT_NEAR(control[1].value, 0.0, 1e-9);
  // The first sample is stamped at t=1.0 s; include it in the window.
  EXPECT_NEAR(sampler.average_total(0, 1.5), 0.5, 1e-9);
}

TEST(Samplers, GaugeSamplerRecordsValues) {
  sim::Kernel kernel;
  double value = 1.0;
  ran::GaugeSampler sampler(kernel, [&]() { return value; },
                            sim::kSecond);
  sampler.start();
  kernel.schedule(1500 * sim::kMillisecond, [&]() { value = 7.0; });
  kernel.run_until(3 * sim::kSecond);
  const auto& series = sampler.series();
  ASSERT_GE(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].value, 1.0);
  EXPECT_DOUBLE_EQ(series[2].value, 7.0);
}

TEST(Samplers, TimelineHelpers) {
  std::vector<ran::TimelinePoint> series = {
      {0, 10}, {1, 20}, {2, 30}, {3, 40}};
  EXPECT_DOUBLE_EQ(ran::timeline_average(series, 0, 2), 15.0);
  EXPECT_DOUBLE_EQ(ran::timeline_average(series, 5, 9), 0.0);
  const std::string table = ran::format_timeline("t", "v", series, 2.0);
  EXPECT_NE(table.find("20.00"), std::string::npos);  // 10 * 2
}

}  // namespace
}  // namespace magma
