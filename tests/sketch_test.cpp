// Per-subscriber sketch layer: SpaceSaving exactness and error bounds,
// HyperLogLog accuracy and lossless merge, the wire codec's rejection
// surface, metricsd's fleet merge, per-kind drop accounting with its
// default alert, and the gateway-to-orchestrator pivot from a heavy-hitter
// entry to a pinned exemplar trace.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "agw/accessd.h"
#include "obs/sketch/subscriber_sketches.h"
#include "orc8r/metricsd.h"

namespace magma {
namespace {

using obs::sketch::HeavyHitter;
using obs::sketch::HyperLogLog;
using obs::sketch::SketchReport;
using obs::sketch::SpaceSaving;
using obs::sketch::SubscriberMetric;
using obs::sketch::SubscriberSketches;

std::string key(int n) { return common::Imsi::from_digits(
    1010000000000ULL + static_cast<std::uint64_t>(n)).value; }

// ---------------------------------------------------------------------------
// SpaceSaving
// ---------------------------------------------------------------------------

TEST(SpaceSaving, ExactUnderCapacity) {
  SpaceSaving sketch(8);
  sketch.offer(key(1), 5);
  sketch.offer(key(2), 3);
  sketch.offer(key(1), 2);
  const auto top = sketch.top();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, key(1));
  EXPECT_EQ(top[0].count, 7u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, key(2));
  EXPECT_EQ(top[1].count, 3u);
  EXPECT_EQ(sketch.min_count(), 0u);  // under capacity: nothing evicted
  EXPECT_EQ(sketch.total_weight(), 10u);
}

TEST(SpaceSaving, EvictionInheritsMinAsError) {
  SpaceSaving sketch(2);
  sketch.offer(key(1), 10);
  sketch.offer(key(2), 4);
  sketch.offer(key(3), 1);  // evicts key(2) (count 4), inherits it
  ASSERT_EQ(sketch.size(), 2u);
  EXPECT_FALSE(sketch.contains(key(2)));
  const auto top = sketch.top();
  EXPECT_EQ(top[0].key, key(1));
  EXPECT_EQ(top[1].key, key(3));
  EXPECT_EQ(top[1].count, 5u);  // inherited 4 + weight 1: upper bound
  EXPECT_EQ(top[1].error, 4u);  // explicit overestimate
  // The invariants that make the report honest: count is an upper bound,
  // count - error a guaranteed lower bound (true count was 1).
  EXPECT_GE(top[1].count, 1u);
  EXPECT_LE(top[1].count - top[1].error, 1u);
  // Total weight is never lost, only re-attributed.
  EXPECT_EQ(sketch.total_weight(), 15u);
}

TEST(SpaceSaving, HeavyHittersSurviveNoiseFlood) {
  SpaceSaving sketch(16);
  // Two planted heavy keys, then a flood of 10k singletons.
  sketch.offer("heavy-a", 5000);
  sketch.offer("heavy-b", 3000);
  for (int i = 0; i < 10000; ++i) sketch.offer(key(i));
  const auto top = sketch.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "heavy-a");
  EXPECT_EQ(top[1].key, "heavy-b");
  EXPECT_EQ(top[0].count, 5000u);
  EXPECT_EQ(top[0].error, 0u);
  // The noise floor is bounded by total/capacity.
  EXPECT_LE(sketch.min_count(), sketch.total_weight() / 16);
}

TEST(SpaceSaving, TopIsDeterministicOnTies) {
  SpaceSaving sketch(8);
  sketch.offer("b", 2);
  sketch.offer("a", 2);
  sketch.offer("c", 2);
  const auto top = sketch.top();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "a");  // ties break by key ascending
  EXPECT_EQ(top[1].key, "b");
  EXPECT_EQ(top[2].key, "c");
}

TEST(SpaceSaving, MergeAddsCommonKeysExactly) {
  SpaceSaving a(8);
  SpaceSaving b(8);
  a.offer(key(1), 100);
  a.offer(key(2), 50);
  b.offer(key(1), 30);
  b.offer(key(3), 10);
  a.merge(b);
  const auto top = a.top();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, key(1));
  EXPECT_EQ(top[0].count, 130u);
  EXPECT_EQ(top[0].error, 0u);  // both sides under capacity: exact
  // One-sided keys: both sketches were under capacity (min 0), so no
  // padding — counts stay exact.
  EXPECT_EQ(top[1].count, 50u);
  EXPECT_EQ(top[2].count, 10u);
  EXPECT_EQ(a.total_weight(), 190u);
}

TEST(SpaceSaving, MergePadsOneSidedKeysWithMinCount) {
  // Fill b to capacity so its min-count is nonzero: a key absent from b
  // could still have been seen up to min_count(b) times there.
  SpaceSaving a(2);
  SpaceSaving b(2);
  a.offer("only-a", 100);
  b.offer("x", 7);
  b.offer("y", 5);
  ASSERT_EQ(b.min_count(), 5u);
  a.merge(b);
  const auto top = a.top();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, "only-a");
  EXPECT_EQ(top[0].count, 105u);  // padded by b's min
  EXPECT_EQ(top[0].error, 5u);    // and the padding is declared as error
  // Bound soundness: true count 100 sits inside [count - error, count].
  EXPECT_GE(top[0].count, 100u);
  EXPECT_LE(top[0].count - top[0].error, 100u);
}

TEST(SpaceSaving, MergeKeepsTopCapacity) {
  SpaceSaving a(4);
  SpaceSaving b(4);
  for (int i = 0; i < 4; ++i) a.offer(key(i), 100 + i);
  for (int i = 4; i < 8; ++i) b.offer(key(i), 1000 * (i - 3));
  a.merge(b);
  EXPECT_EQ(a.size(), 4u);  // union of 8 truncated to capacity
  const auto top = a.top();
  // b's heavy keys dominate even after one-sided padding (every a key gets
  // +min_count(b) = 1000, still far below b's top).
  EXPECT_EQ(top[0].key, key(7));
  EXPECT_EQ(top[0].count, 4000u + 100u);  // padded by a's min
  // Total weight of the union is preserved even though entries were cut.
  EXPECT_EQ(a.total_weight(),
            100u + 101 + 102 + 103 + 1000 + 2000 + 3000 + 4000);
}

TEST(SpaceSaving, ExemplarFollowsLatestContribution) {
  SpaceSaving sketch(4);
  sketch.offer(key(1), 1, 0xAAA);
  EXPECT_EQ(sketch.top()[0].exemplar_trace_id, 0xAAAu);
  sketch.offer(key(1), 1, 0xBBB);
  EXPECT_EQ(sketch.top()[0].exemplar_trace_id, 0xBBBu);
  sketch.offer(key(1), 1, 0);  // no exemplar: keeps the last one
  EXPECT_EQ(sketch.top()[0].exemplar_trace_id, 0xBBBu);
}

TEST(SpaceSaving, MemoryIndependentOfKeyCount) {
  SpaceSaving small(32);
  SpaceSaving big(32);
  for (int i = 0; i < 100; ++i) small.offer(key(i));
  for (int i = 0; i < 100000; ++i) big.offer(key(i));
  EXPECT_EQ(small.memory_bytes(), big.memory_bytes());
  EXPECT_EQ(big.size(), 32u);
}

// ---------------------------------------------------------------------------
// HyperLogLog
// ---------------------------------------------------------------------------

TEST(HyperLogLog, SmallRangeIsNearExact) {
  HyperLogLog hll(12);
  for (int i = 0; i < 100; ++i) hll.add(key(i));
  EXPECT_NEAR(hll.estimate(), 100.0, 2.0);
}

TEST(HyperLogLog, LargeRangeWithinErrorBound) {
  HyperLogLog hll(12);  // ~1.6% standard error
  for (int i = 0; i < 200000; ++i) hll.add(key(i));
  EXPECT_NEAR(hll.estimate(), 200000.0, 200000.0 * 0.05);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 1000; ++i) hll.add(key(i));
  }
  EXPECT_NEAR(hll.estimate(), 1000.0, 1000.0 * 0.05);
}

TEST(HyperLogLog, MergeCoversUnionLosslessly) {
  HyperLogLog a(12);
  HyperLogLog b(12);
  HyperLogLog reference(12);
  for (int i = 0; i < 5000; ++i) {
    a.add(key(i));
    reference.add(key(i));
  }
  for (int i = 2500; i < 7500; ++i) {  // overlapping halves
    b.add(key(i));
    reference.add(key(i));
  }
  a.merge(b);
  // Register-wise max merge is exactly the sketch of the union stream.
  EXPECT_DOUBLE_EQ(a.estimate(), reference.estimate());
}

TEST(HyperLogLog, MemoryIsRegistersOnly) {
  HyperLogLog hll(12);
  EXPECT_EQ(hll.memory_bytes(), 4096u);
  for (int i = 0; i < 100000; ++i) hll.add(key(i));
  EXPECT_EQ(hll.memory_bytes(), 4096u);
}

// ---------------------------------------------------------------------------
// SubscriberSketches + wire codec
// ---------------------------------------------------------------------------

TEST(SubscriberSketches, ActiveWindowAnswersOverClosedWindow) {
  SubscriberSketches sketches;
  // First window: 10 IMSIs active.
  for (int i = 0; i < 10; ++i) sketches.record_active(key(i), sim::kMinute);
  EXPECT_EQ(sketches.distinct_active_window(), 0.0);  // none closed yet
  // Next window: 3 IMSIs. The first window closes.
  for (int i = 0; i < 3; ++i) {
    sketches.record_active(key(i), 6 * sim::kMinute);
  }
  EXPECT_NEAR(sketches.distinct_active_window(), 10.0, 1.0);
  EXPECT_NEAR(sketches.distinct_active_total(), 10.0, 1.0);
}

TEST(SubscriberSketches, WindowGapYieldsEmptyClosedWindow) {
  SubscriberSketches sketches;
  for (int i = 0; i < 10; ++i) sketches.record_active(key(i), sim::kMinute);
  // Activity resumes three windows later: the last *closed* window (the
  // gap) was empty.
  sketches.record_active(key(0), 20 * sim::kMinute);
  EXPECT_EQ(sketches.distinct_active_window(), 0.0);
}

TEST(SketchCodec, RoundTripPreservesEverything) {
  SubscriberSketches sketches;
  sketches.record(SubscriberMetric::kAttachFailures, key(1), 42, 0xDEAD);
  sketches.record(SubscriberMetric::kBytes, key(2), 1 << 20);
  sketches.record_active(key(1), sim::kMinute);
  sketches.record_active(key(3), 6 * sim::kMinute);

  const SketchReport report = sketches.snapshot("gw0", 7 * sim::kMinute);
  const common::Bytes wire = obs::sketch::encode_sketch_report(report);
  auto decoded = obs::sketch::decode_sketch_report(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();

  const SketchReport& got = decoded.value();
  EXPECT_EQ(got.gateway_id, "gw0");
  EXPECT_EQ(got.time, 7 * sim::kMinute);
  const auto failures = got.topk[0].top();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].key, key(1));
  EXPECT_EQ(failures[0].count, 42u);
  EXPECT_EQ(failures[0].exemplar_trace_id, 0xDEADu);
  const auto bytes = got.topk[3].top();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0].count, static_cast<std::uint64_t>(1 << 20));
  EXPECT_DOUBLE_EQ(got.active_total.estimate(),
                   report.active_total.estimate());
  EXPECT_DOUBLE_EQ(got.active_window.estimate(),
                   report.active_window.estimate());
}

TEST(SketchCodec, RejectsTruncationAndGarbage) {
  SubscriberSketches sketches;
  sketches.record(SubscriberMetric::kAttachFailures, key(1), 3, 0x1);
  sketches.record_active(key(1), sim::kMinute);
  const common::Bytes wire =
      obs::sketch::encode_sketch_report(sketches.snapshot("gw0", sim::kMinute));

  // Every proper prefix must be rejected, never crash.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    auto r = obs::sketch::decode_sketch_report(
        common::BytesView(wire.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " decoded";
  }
  // Trailing garbage is rejected too (at_end is part of the contract).
  common::Bytes padded = wire;
  padded.push_back(0xFF);
  EXPECT_FALSE(obs::sketch::decode_sketch_report(padded).ok());
}

TEST(FormatTopSubscribers, SkipsNoiseAndRendersBounds) {
  std::vector<HeavyHitter> entries;
  entries.push_back({key(1), 500, 12, 0xABCD});
  entries.push_back({key(2), 7, 7, 0});  // lower bound 0: noise, skipped
  const std::string report = obs::sketch::format_top_subscribers(
      SubscriberMetric::kAttachFailures, entries, 10, 3);
  EXPECT_NE(report.find("attach_failures"), std::string::npos);
  EXPECT_NE(report.find("3 gateways"), std::string::npos);
  EXPECT_NE(report.find(key(1)), std::string::npos);
  EXPECT_NE(report.find(">= 488"), std::string::npos);  // count - error
  EXPECT_NE(report.find("+-12"), std::string::npos);
  EXPECT_EQ(report.find(key(2)), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metricsd: fleet merge, staleness, drop accounting, default alert
// ---------------------------------------------------------------------------

SketchReport gateway_report(const std::string& gw, sim::TimePoint t,
                            const std::string& imsi, std::uint64_t failures,
                            std::uint64_t exemplar = 0) {
  SubscriberSketches sketches;
  sketches.record(SubscriberMetric::kAttachFailures, imsi, failures,
                  exemplar);
  sketches.record_active(imsi, t);
  return sketches.snapshot(gw, t);
}

TEST(MetricsdSketch, FleetMergeSumsAcrossGateways) {
  orc8r::Metricsd m;
  m.ingest_sketch_report(gateway_report("gw0", 10, key(1), 300, 0xE1));
  m.ingest_sketch_report(gateway_report("gw1", 10, key(1), 200));
  m.ingest_sketch_report(gateway_report("gw2", 10, key(2), 50));
  EXPECT_EQ(m.sketch_reports_ingested(), 3u);
  EXPECT_EQ(m.sketch_gateways(), 3u);

  const SpaceSaving merged =
      m.merged_top_subscribers(SubscriberMetric::kAttachFailures);
  const auto top = merged.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, key(1));
  EXPECT_EQ(top[0].count, 500u);
  EXPECT_EQ(top[0].exemplar_trace_id, 0xE1u);
  EXPECT_EQ(top[1].key, key(2));
  EXPECT_EQ(top[1].count, 50u);

  EXPECT_NEAR(m.fleet_active_subscribers(), 2.0, 0.5);
  const std::string report =
      m.top_subscribers_report(SubscriberMetric::kAttachFailures, 5);
  EXPECT_NE(report.find(key(1)), std::string::npos);
}

TEST(MetricsdSketch, CumulativeReportReplacesAndStaleIsDropped) {
  orc8r::Metricsd m;
  m.ingest_sketch_report(gateway_report("gw0", 10, key(1), 100));
  m.ingest_sketch_report(gateway_report("gw0", 20, key(1), 150));
  // Replays older than the stored report must not regress the count.
  m.ingest_sketch_report(gateway_report("gw0", 5, key(1), 100));
  const auto top =
      m.merged_top_subscribers(SubscriberMetric::kAttachFailures).top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].count, 150u);  // cumulative, latest wins
  EXPECT_EQ(m.samples_dropped(orc8r::Metricsd::DropKind::kSketch), 1u);
}

TEST(MetricsdDrops, PerKindAccountingFeedsTheGauge) {
  orc8r::Metricsd m;
  m.note_drop(orc8r::Metricsd::DropKind::kHistogram, 2);
  m.note_drop(orc8r::Metricsd::DropKind::kSketch);
  EXPECT_EQ(m.samples_dropped(orc8r::Metricsd::DropKind::kHistogram), 2u);
  EXPECT_EQ(m.samples_dropped(orc8r::Metricsd::DropKind::kSketch), 1u);
  EXPECT_EQ(m.samples_dropped(), 3u);  // sum over kinds

  m.self_observe(100);
  // One gauge sample per kind, keyed by kind name.
  EXPECT_EQ(m.latest("histogram", "metricsd_samples_dropped"), 2.0);
  EXPECT_EQ(m.latest("sketch", "metricsd_samples_dropped"), 1.0);
  EXPECT_EQ(m.latest("metric", "metricsd_samples_dropped"), 0.0);
}

TEST(MetricsdDrops, DefaultRulePagesOnDropGrowth) {
  orc8r::Metricsd m;
  orc8r::install_default_metricsd_rules(m);
  // Idempotent by rule name.
  orc8r::install_default_metricsd_rules(m);
  std::size_t drop_rules = 0;
  for (const auto& rule : m.alert_rules()) {
    if (rule.metric == "metricsd_samples_dropped") ++drop_rules;
  }
  EXPECT_EQ(drop_rules, 1u);

  m.self_observe(100);  // baseline: zero drops
  EXPECT_TRUE(m.active_alerts().empty());
  m.note_drop(orc8r::Metricsd::DropKind::kSketch, 5);
  m.self_observe(200);  // growth: pages
  const auto alerts = m.active_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].gateway_id, "sketch");
  m.self_observe(300);  // no further growth: clears
  EXPECT_TRUE(m.active_alerts().empty());
}

// ---------------------------------------------------------------------------
// Gateway instrumentation: accessd feeds the sketches with exemplars
// ---------------------------------------------------------------------------

TEST(AccessdSketch, AttachRejectionRecordsImsiWithExemplar) {
  sim::Kernel kernel;
  sim::Rng rng(1);
  agw::SubscriberDb subscribers([&rng]() { return rng.next_u64(); });
  agw::PolicyDb policies;
  agw::Mobilityd mobilityd{agw::IpBlock{}};
  agw::Pipelined pipelined;
  agw::Sessiond sessiond(kernel, pipelined, nullptr);
  agw::Accessd accessd(kernel, nullptr, subscribers, policies, mobilityd,
                       sessiond);
  obs::Tracer tracer(kernel);
  accessd.set_observability(&tracer, "gw0");
  SubscriberSketches sketches;
  accessd.set_subscriber_sketches(&sketches);

  const common::Imsi unknown = common::Imsi::from_digits(4040000000000ULL);
  bool rejected = false;
  accessd.begin_attach(unknown, agw::RanType::kLte,
                       [&](common::Result<agw::AuthChallenge> r) {
                         rejected = !r.ok();
                       });
  kernel.run();
  ASSERT_TRUE(rejected);

  // The attempt marked the IMSI active; the rejection landed in the
  // attach-failure sketch with the failing stage span as exemplar.
  EXPECT_NEAR(sketches.distinct_active_total(), 1.0, 0.1);
  const auto top = sketches.topk(SubscriberMetric::kAttachFailures).top();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, unknown.value);
  EXPECT_EQ(top[0].count, 1u);
  EXPECT_NE(top[0].exemplar_trace_id, 0u);
}

TEST(AccessdSketch, GuardTimerDropFeedsBearerDrops) {
  sim::Kernel kernel;
  sim::Rng rng(1);
  agw::SubscriberDb subscribers([&rng]() { return rng.next_u64(); });
  agw::PolicyDb policies;
  agw::Mobilityd mobilityd{agw::IpBlock{}};
  agw::Pipelined pipelined;
  agw::Sessiond sessiond(kernel, pipelined, nullptr);
  agw::Accessd accessd(kernel, nullptr, subscribers, policies, mobilityd,
                       sessiond);
  SubscriberSketches sketches;
  accessd.set_subscriber_sketches(&sketches);

  agw::SubscriberData sub;
  sub.imsi = common::Imsi::from_digits(4040000000001ULL);
  subscribers.upsert(sub);
  accessd.begin_attach(sub.imsi, agw::RanType::kLte,
                       [](common::Result<agw::AuthChallenge>) {});
  // Never answer the challenge: draining the kernel runs the context guard
  // timer, the half-open attach is dropped, and the subscriber shows up
  // under bearer drops.
  kernel.run();
  EXPECT_EQ(accessd.pending_contexts(), 0u);
  const auto top = sketches.topk(SubscriberMetric::kBearerDrops).top();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, sub.imsi.value);
}

}  // namespace
}  // namespace magma
