// Robustness fuzzing: every decoder must survive arbitrary bytes — a
// malformed or malicious PDU from the RAN side must never crash a gateway
// (fail-soft is a stated property of the wire layer; this enforces it for
// all codecs and store images).
#include <gtest/gtest.h>

#include "agw/lte_frontend.h"
#include "agw/pipelined.h"
#include "agw/subscriberdb.h"
#include "core/policy.h"
#include "datapath/packet.h"
#include "net/channel.h"
#include "obs/events.h"
#include "obs/sketch/subscriber_sketches.h"
#include "obs/status.h"
#include "obs/tail_sampler.h"
#include "orc8r/metricsd.h"
#include "orc8r/streamer.h"
#include "proto/lte/gtpc.h"
#include "proto/lte/nas.h"
#include "proto/lte/s1ap.h"
#include "proto/nr5g/nas5g.h"
#include "proto/nr5g/ngap.h"
#include "proto/wifi/radius.h"
#include "rpc/wire.h"
#include "sim/random.h"
#include "store/state_store.h"
#include "store/wal_store.h"

namespace magma {
namespace {

common::Bytes random_bytes(sim::Rng& rng, std::size_t max_len) {
  common::Bytes out(rng.uniform_int(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

// Decoders under test, applied to the same inputs.
void decode_everything(common::BytesView data) {
  (void)proto::lte::decode_nas(data);
  (void)proto::lte::decode_s1ap(data);
  (void)proto::lte::decode_gtpc(data);
  (void)proto::nr5g::decode_nas5g(data);
  (void)proto::nr5g::decode_ngap(data);
  (void)proto::wifi::decode_radius(data);
  (void)datapath::Packet::parse(data);
  (void)store::WalStore::deserialize(data);
  (void)store::StateStore::restore(data);
  (void)agw::SessionFlows::deserialize(data);
  (void)agw::SubscriberData::deserialize(data);
  (void)core::Policy::deserialize(data);
  (void)orc8r::DesiredState::deserialize(data);
  (void)orc8r::DesiredUpdate::deserialize(data);
  (void)orc8r::GetUpdatesRequest::deserialize(data);
  (void)orc8r::decode_metric_report(data);
  (void)orc8r::decode_histogram_report(data);
  (void)obs::decode_event_report(data);
  (void)obs::decode_gateway_status(data);
  (void)obs::decode_trace_summaries(data);
  (void)obs::sketch::decode_sketch_report(data);
  (void)net::decode_segment_header(data);
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, RandomBytesNeverCrashAnyDecoder) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    decode_everything(random_bytes(rng, 256));
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 6));

// Structured mutation: take valid encodings and flip bytes / truncate.
// Decoders must reject or produce *some* valid object — never crash — and
// an unmodified prefix-truncation must never round-trip as valid-and-equal.
TEST(FuzzMutation, BitFlipsOnValidMessages) {
  sim::Rng rng(99);

  proto::lte::AttachAccept accept;
  accept.m_tmsi = 7;
  accept.bearer.pdn_address = common::Ipv4::from_octets(172, 16, 0, 3);
  const common::Bytes nas =
      proto::lte::encode_nas(proto::lte::NasMessage{accept});

  proto::lte::InitialContextSetupRequest ics;
  ics.nas_pdu = nas;
  const common::Bytes s1ap =
      proto::lte::encode_s1ap(proto::lte::S1apMessage{ics});

  for (const common::Bytes& base : {nas, s1ap}) {
    for (int round = 0; round < 500; ++round) {
      common::Bytes mutated = base;
      const int flips = 1 + static_cast<int>(rng.uniform_int(4));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.uniform_int(mutated.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_int(8));
      }
      decode_everything(mutated);
    }
    for (std::size_t keep = 0; keep < base.size(); ++keep) {
      decode_everything(common::BytesView(base.data(), keep));
    }
  }
  SUCCEED();
}

// Segment headers carry the SACK-block and timestamp options across the
// simulated wire. Round trip: every structurally valid header re-decodes
// byte-identically. Garbage: random and mutated bytes must decode to an
// error or a *valid* header (ascending disjoint SACK blocks) — never crash
// and never yield a header the receiver would misinterpret.
TEST(FuzzSegmentHeader, RoundTripAndGarbageSafety) {
  sim::Rng rng(17);
  for (int round = 0; round < 2000; ++round) {
    net::SegmentHeader h;
    h.epoch = rng.next_u64() >> (rng.uniform_int(64));
    h.seq = rng.next_u64() >> (rng.uniform_int(64));
    h.ack = rng.next_u64() >> (rng.uniform_int(64));
    h.ack_epoch = rng.next_u64() >> (rng.uniform_int(64));
    h.is_ack = rng.bernoulli(0.5);
    h.is_rst = rng.bernoulli(0.1);
    if (rng.bernoulli(0.7)) {
      h.has_ts = true;
      h.tsval = static_cast<sim::TimePoint>(rng.uniform_int(1u << 30));
      h.tsecr = static_cast<sim::TimePoint>(rng.uniform_int(1u << 30));
    }
    // Ascending, disjoint, non-empty blocks as the encoder contract asks.
    std::uint64_t cursor = rng.uniform_int(1000);
    const int blocks = static_cast<int>(rng.uniform_int(5));
    for (int b = 0; b < blocks; ++b) {
      net::SackBlock block;
      block.start = cursor + rng.uniform_int(50);
      block.end = block.start + 1 + rng.uniform_int(20);
      cursor = block.end + rng.uniform_int(10);
      h.sack.push_back(block);
    }

    const common::Bytes wire = net::encode_segment_header(h);
    auto decoded = net::decode_segment_header(wire);
    ASSERT_TRUE(decoded.ok());
    const net::SegmentHeader& d = decoded.value();
    EXPECT_EQ(d.epoch, h.epoch);
    EXPECT_EQ(d.seq, h.seq);
    EXPECT_EQ(d.ack, h.ack);
    EXPECT_EQ(d.ack_epoch, h.ack_epoch);
    EXPECT_EQ(d.is_ack, h.is_ack);
    EXPECT_EQ(d.is_rst, h.is_rst);
    EXPECT_EQ(d.has_ts, h.has_ts);
    if (h.has_ts) {
      EXPECT_EQ(d.tsval, h.tsval);
      EXPECT_EQ(d.tsecr, h.tsecr);
    }
    EXPECT_EQ(d.sack, h.sack);
    // Option billing matches the TCP option sizes the comment promises.
    EXPECT_EQ(net::segment_option_bytes(h),
              (h.has_ts ? 10u : 0u) +
                  (h.sack.empty() ? 0u : 2u + 8u * h.sack.size()));

    // Mutations of the valid encoding: reject or produce a valid header.
    common::Bytes mutated = wire;
    const int flips = 1 + static_cast<int>(rng.uniform_int(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.uniform_int(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    }
    auto survived = net::decode_segment_header(mutated);
    if (survived.ok()) {
      std::uint64_t prev_end = 0;
      for (const net::SackBlock& block : survived.value().sack) {
        EXPECT_LT(block.start, block.end);
        EXPECT_GE(block.start, prev_end);
        prev_end = block.end;
      }
    }
    // Truncations of a valid encoding never parse (every prefix is short).
    for (std::size_t keep = 0; keep < wire.size(); ++keep) {
      EXPECT_FALSE(
          net::decode_segment_header(common::BytesView(wire.data(), keep))
              .ok())
          << "prefix " << keep << " parsed as valid";
    }
  }
}

// The checkin payload (gateway Service303 snapshot) crosses the same trust
// boundary as every other wire codec: round-trip structured inputs, then
// mutate and truncate them.
TEST(FuzzGatewayStatus, RoundTripMutationAndTruncation) {
  sim::Rng rng(31);
  for (int round = 0; round < 500; ++round) {
    std::vector<obs::ServiceStatus> services(rng.uniform_int(4));
    for (obs::ServiceStatus& s : services) {
      s.service = std::string(rng.uniform_int(12), 's');
      s.phase = std::string(rng.uniform_int(8), 'p');
      s.uptime = static_cast<sim::Duration>(rng.next_u64() >> 1);
      s.requests = rng.next_u64();
      s.errors = rng.next_u64();
      s.deadlines = rng.next_u64();
      s.last_error = std::string(rng.uniform_int(40), 'e');
      s.last_error_time = static_cast<sim::TimePoint>(rng.next_u64() >> 1);
    }
    const common::Bytes wire = obs::encode_gateway_status(services);
    auto decoded = obs::decode_gateway_status(wire);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().size(), services.size());
    for (std::size_t i = 0; i < services.size(); ++i) {
      EXPECT_EQ(decoded.value()[i].service, services[i].service);
      EXPECT_EQ(decoded.value()[i].requests, services[i].requests);
      EXPECT_EQ(decoded.value()[i].last_error, services[i].last_error);
    }

    if (!wire.empty()) {
      common::Bytes mutated = wire;
      const int flips = 1 + static_cast<int>(rng.uniform_int(4));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.uniform_int(mutated.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_int(8));
      }
      (void)obs::decode_gateway_status(mutated);  // must never crash
      for (std::size_t keep = 0; keep < wire.size(); ++keep) {
        (void)obs::decode_gateway_status(common::BytesView(wire.data(), keep));
      }
    }
  }
  SUCCEED();
}

// Trace summaries ride the same best-effort magmad→metricsd path as metric
// reports; the decoder must reject truncation and trailing garbage, and a
// hostile per-summary state count must never drive an allocation or a read
// past the buffer.
TEST(FuzzTraceSummary, RoundTripMutationAndTruncation) {
  sim::Rng rng(43);
  for (int round = 0; round < 500; ++round) {
    std::vector<obs::TraceSummary> summaries(rng.uniform_int(4));
    for (obs::TraceSummary& s : summaries) {
      s.root_op = std::string(rng.uniform_int(16), 'o');
      s.root_service = std::string(rng.uniform_int(12), 's');
      s.gateway_id = std::string(rng.uniform_int(10), 'g');
      s.trace_id = rng.next_u64();
      s.start = static_cast<sim::TimePoint>(rng.next_u64() >> 1);
      s.duration = static_cast<sim::Duration>(rng.next_u64() >> 1);
      for (auto& d : s.breakdown) {
        d = static_cast<sim::Duration>(rng.next_u64() >> 1);
      }
    }
    const common::Bytes wire = obs::encode_trace_summaries(summaries);
    auto decoded = obs::decode_trace_summaries(wire);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().size(), summaries.size());
    for (std::size_t i = 0; i < summaries.size(); ++i) {
      EXPECT_EQ(decoded.value()[i].root_op, summaries[i].root_op);
      EXPECT_EQ(decoded.value()[i].trace_id, summaries[i].trace_id);
      EXPECT_EQ(decoded.value()[i].duration, summaries[i].duration);
      EXPECT_EQ(decoded.value()[i].breakdown, summaries[i].breakdown);
    }

    // Truncations are short by construction — every prefix must be rejected.
    for (std::size_t keep = 0; keep < wire.size(); ++keep) {
      EXPECT_FALSE(
          obs::decode_trace_summaries(common::BytesView(wire.data(), keep))
              .ok())
          << "prefix " << keep << " parsed as valid";
    }
    // Trailing garbage after a valid report: at_end() must catch it.
    common::Bytes padded = wire;
    padded.push_back(0x5a);
    EXPECT_FALSE(obs::decode_trace_summaries(padded).ok());
    // Bit flips: reject or decode, never crash.
    if (!wire.empty()) {
      common::Bytes mutated = wire;
      const int flips = 1 + static_cast<int>(rng.uniform_int(4));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.uniform_int(mutated.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_int(8));
      }
      (void)obs::decode_trace_summaries(mutated);
    }
  }
  SUCCEED();
}

TEST(FuzzTraceSummary, HostileLengthsRejectedWithoutAllocating) {
  // A count field claiming 2^61 summaries in a 16-byte buffer: the capped
  // reserve must not trust it, and the decode must fail cleanly.
  {
    common::Bytes hostile(16, 0xff);
    EXPECT_FALSE(obs::decode_trace_summaries(hostile).ok());
  }
  // A valid single summary whose wait-state count claims more i64s than the
  // buffer holds: the oversized-summary guard must reject it.
  {
    obs::TraceSummary s;
    s.root_op = "attach";
    common::Bytes wire = obs::encode_trace_summaries({s});
    // The state-count byte precedes the 6 × 8 breakdown bytes at the tail.
    wire[wire.size() - 1 - 8 * obs::kWaitStateCount] = 0xff;
    EXPECT_FALSE(obs::decode_trace_summaries(wire).ok());
  }
  // Huge string length prefix inside an otherwise plausible report.
  {
    obs::TraceSummary s;
    s.root_op = "attach";
    s.root_service = "lte_frontend";
    common::Bytes wire = obs::encode_trace_summaries({s});
    // The first string length lives right after the 8-byte count.
    for (std::size_t i = 8; i < 16 && i < wire.size(); ++i) wire[i] = 0xff;
    EXPECT_FALSE(obs::decode_trace_summaries(wire).ok());
  }
}

// The sketch report is the newest magmad→metricsd payload; a hostile or
// corrupted report must never crash metricsd, never drive an unbounded
// allocation, and never decode into a sketch violating its own invariants
// (error bound exceeding the count estimate, out-of-range capacity).
TEST(FuzzSketchReport, RoundTripMutationAndTruncation) {
  sim::Rng rng(71);
  for (int round = 0; round < 200; ++round) {
    obs::sketch::SketchConfig config;
    config.topk_capacity = 4 + rng.uniform_int(12);
    obs::sketch::SubscriberSketches sketches(config);
    const std::uint64_t keys = rng.uniform_int(40);
    for (std::uint64_t i = 0; i < keys; ++i) {
      const common::Imsi imsi =
          common::Imsi::from_digits(1010000000000ULL + rng.uniform_int(25));
      const auto metric = static_cast<obs::sketch::SubscriberMetric>(
          rng.uniform_int(obs::sketch::kSubscriberMetricCount));
      sketches.record(metric, imsi.value, 1 + rng.uniform_int(9),
                      rng.next_u64());
      sketches.record_active(imsi.value, static_cast<sim::TimePoint>(i));
    }

    const obs::sketch::SketchReport report =
        sketches.snapshot("gw-fuzz", 1000);
    const common::Bytes wire = obs::sketch::encode_sketch_report(report);
    auto decoded = obs::sketch::decode_sketch_report(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().gateway_id, report.gateway_id);
    EXPECT_EQ(decoded.value().time, report.time);
    EXPECT_EQ(decoded.value().topk_capacity, report.topk_capacity);
    for (std::size_t m = 0; m < obs::sketch::kSubscriberMetricCount; ++m) {
      const auto want = report.topk[m].top();
      const auto got = decoded.value().topk[m].top();
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].key, want[i].key);
        EXPECT_EQ(got[i].count, want[i].count);
        EXPECT_EQ(got[i].error, want[i].error);
        EXPECT_EQ(got[i].exemplar_trace_id, want[i].exemplar_trace_id);
      }
      EXPECT_EQ(decoded.value().topk[m].total_weight(),
                report.topk[m].total_weight());
    }
    EXPECT_EQ(decoded.value().active_total.registers(),
              report.active_total.registers());
    EXPECT_EQ(decoded.value().active_window.registers(),
              report.active_window.registers());

    // Every strict prefix cuts a read short somewhere — all must fail.
    // The sweep is quadratic in the ~11 KB wire (the HLL registers), so
    // run it on a handful of differently-shaped reports, not all 200.
    if (round < 3) {
      for (std::size_t keep = 0; keep < wire.size(); ++keep) {
        EXPECT_FALSE(obs::sketch::decode_sketch_report(
                         common::BytesView(wire.data(), keep))
                         .ok())
            << "prefix " << keep << " parsed as valid";
      }
    }
    // Trailing garbage after a valid report: at_end() must catch it.
    common::Bytes padded = wire;
    padded.push_back(0xc3);
    EXPECT_FALSE(obs::sketch::decode_sketch_report(padded).ok());
    // Bit flips: reject, or decode into a report that still holds the
    // sketch invariants — never crash, never yield error > count.
    common::Bytes mutated = wire;
    const int flips = 1 + static_cast<int>(rng.uniform_int(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.uniform_int(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    }
    auto survived = obs::sketch::decode_sketch_report(mutated);
    if (survived.ok()) {
      EXPECT_GE(survived.value().topk_capacity, 1u);
      EXPECT_LE(survived.value().topk_capacity, 4096u);
      for (const obs::sketch::SpaceSaving& s : survived.value().topk) {
        for (const obs::sketch::HeavyHitter& h : s.top()) {
          EXPECT_LE(h.error, h.count);
        }
      }
    }
  }
}

TEST(FuzzSketchReport, HostileFieldsRejectedWithoutAllocating) {
  // Hostile K: capacity 0 (a divide-by-nothing sketch) and capacity 2^32-1
  // (a reserve bomb) must both be rejected at the header.
  for (const std::uint32_t capacity : {0u, 0xffffffffu, 4097u}) {
    rpc::Writer w;
    w.str("gw0");
    w.i64(0);
    w.u32(capacity);
    w.u8(0);
    EXPECT_FALSE(
        obs::sketch::decode_sketch_report(std::move(w).take()).ok());
  }
  // A metric-set width claiming 255 sketches.
  {
    rpc::Writer w;
    w.str("gw0");
    w.i64(0);
    w.u32(8);
    w.u8(0xff);
    EXPECT_FALSE(
        obs::sketch::decode_sketch_report(std::move(w).take()).ok());
  }
  // An entry count claiming 2^32-1 heavy hitters in an empty buffer: the
  // bounded reserve must not trust it.
  {
    rpc::Writer w;
    w.str("gw0");
    w.i64(0);
    w.u32(8);
    w.u8(1);
    w.u64(0);           // total weight
    w.u32(0xffffffff);  // hostile entry count, no entry bytes follow
    EXPECT_FALSE(
        obs::sketch::decode_sketch_report(std::move(w).take()).ok());
  }
  // An entry whose error bound exceeds its count estimate: accepting it
  // would let one gateway poison the fleet-wide lower bounds.
  {
    rpc::Writer w;
    w.str("gw0");
    w.i64(0);
    w.u32(8);
    w.u8(1);
    w.u64(10);  // total weight
    w.u32(1);
    w.str("IMSI001010000000001");
    w.u64(3);   // count...
    w.u64(7);   // ...below the claimed error
    w.u64(0);
    EXPECT_FALSE(
        obs::sketch::decode_sketch_report(std::move(w).take()).ok());
  }
  // An HLL claiming precision 40 (a 2^40-register reserve bomb), and one
  // whose register payload disagrees with its declared precision.
  {
    rpc::Writer w;
    w.str("gw0");
    w.i64(0);
    w.u32(8);
    w.u8(0);
    w.u8(40);  // hostile precision
    w.bytes(common::BytesView{});
    EXPECT_FALSE(
        obs::sketch::decode_sketch_report(std::move(w).take()).ok());
  }
  {
    rpc::Writer w;
    w.str("gw0");
    w.i64(0);
    w.u32(8);
    w.u8(0);
    w.u8(12);  // claims 4096 registers...
    const common::Bytes regs(16, 0);  // ...ships 16
    w.bytes(common::BytesView(regs.data(), regs.size()));
    EXPECT_FALSE(
        obs::sketch::decode_sketch_report(std::move(w).take()).ok());
  }
}

// The delta-stream envelope is what every GetUpdates poll decodes on the
// gateway side; it crosses the same trust boundary as the full-state codec.
TEST(FuzzDeltaStream, UpdateRoundTripMutationAndTruncation) {
  sim::Rng rng(57);
  for (int round = 0; round < 500; ++round) {
    orc8r::DesiredUpdate u;
    u.version = rng.next_u64() >> 1;
    u.epoch = rng.next_u64() >> 1;
    const std::uint64_t pick = rng.uniform_int(3);
    u.mode = static_cast<orc8r::SyncMode>(pick);
    if (u.mode == orc8r::SyncMode::kDelta) {
      const std::uint64_t entries = rng.uniform_int(4);
      for (std::uint64_t i = 0; i < entries; ++i) {
        orc8r::DeltaEntry e;
        e.kind = rng.bernoulli(0.5) ? orc8r::DeltaEntry::Kind::kSubscriber
                                    : orc8r::DeltaEntry::Kind::kPolicy;
        e.remove = rng.bernoulli(0.3);
        e.key = std::string(rng.uniform_int(16), 'k');
        if (!e.remove) e.blob = random_bytes(rng, 32);
        u.entries.push_back(std::move(e));
      }
    } else if (u.mode == orc8r::SyncMode::kFull) {
      u.full = random_bytes(rng, 64);
    }

    const common::Bytes wire = u.serialize();
    auto decoded = orc8r::DesiredUpdate::deserialize(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().version, u.version);
    EXPECT_EQ(decoded.value().epoch, u.epoch);
    EXPECT_EQ(decoded.value().mode, u.mode);
    EXPECT_EQ(decoded.value().full, u.full);
    ASSERT_EQ(decoded.value().entries.size(), u.entries.size());
    for (std::size_t i = 0; i < u.entries.size(); ++i) {
      EXPECT_EQ(decoded.value().entries[i].kind, u.entries[i].kind);
      EXPECT_EQ(decoded.value().entries[i].remove, u.entries[i].remove);
      EXPECT_EQ(decoded.value().entries[i].key, u.entries[i].key);
      EXPECT_EQ(decoded.value().entries[i].blob, u.entries[i].blob);
    }

    // Every strict prefix is short somewhere — all must be rejected.
    for (std::size_t keep = 0; keep < wire.size(); ++keep) {
      EXPECT_FALSE(orc8r::DesiredUpdate::deserialize(
                       common::BytesView(wire.data(), keep))
                       .ok())
          << "prefix " << keep << " parsed as valid";
    }
    // Trailing garbage after a valid envelope: at_end() must catch it.
    common::Bytes padded = wire;
    padded.push_back(0xa5);
    EXPECT_FALSE(orc8r::DesiredUpdate::deserialize(padded).ok());
    // Bit flips: reject or decode to *some* in-range envelope, never crash.
    common::Bytes mutated = wire;
    const int flips = 1 + static_cast<int>(rng.uniform_int(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.uniform_int(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    }
    auto survived = orc8r::DesiredUpdate::deserialize(mutated);
    if (survived.ok()) {
      EXPECT_LE(static_cast<std::uint8_t>(survived.value().mode), 2);
      for (const orc8r::DeltaEntry& e : survived.value().entries) {
        EXPECT_LE(static_cast<std::uint8_t>(e.kind), 1);
        if (e.remove) {
          EXPECT_TRUE(e.blob.empty());
        }
      }
    }
  }
  SUCCEED();
}

TEST(FuzzDeltaStream, HostileLengthsRejectedWithoutAllocating) {
  // A kDelta header whose entry count claims 2^64-1 entries in an empty
  // payload: the capped reserve must not trust it, and the loop must stop
  // at the first failed read.
  {
    rpc::Writer w;
    w.u64(1);                   // version
    w.u64(1);                   // epoch
    w.u8(2);                    // kDelta
    common::Bytes wire = std::move(w).take();
    for (int i = 0; i < 8; ++i) wire.push_back(0xff);  // count = 2^64-1
    EXPECT_FALSE(orc8r::DesiredUpdate::deserialize(wire).ok());
  }
  // An out-of-range mode byte.
  {
    rpc::Writer w;
    w.u64(1);
    w.u64(1);
    w.u8(3);
    EXPECT_FALSE(
        orc8r::DesiredUpdate::deserialize(std::move(w).take()).ok());
  }
  // A remove entry smuggling a blob (an encoder never emits this; a decoder
  // accepting it would let one wire bit resurrect a deleted subscriber).
  {
    rpc::Writer w;
    w.u64(1);
    w.u64(1);
    w.u8(2);            // kDelta
    w.u64(1);           // one entry
    w.u8(0);            // kSubscriber
    w.boolean(true);    // remove...
    w.str("001010000000001");
    w.bytes(common::to_bytes("zombie"));  // ...with a payload
    EXPECT_FALSE(
        orc8r::DesiredUpdate::deserialize(std::move(w).take()).ok());
  }
  // Truncated GetUpdatesRequest prefixes never parse.
  {
    orc8r::GetUpdatesRequest req;
    req.gateway_id = "gw0";
    req.have_version = 12;
    req.have_epoch = 2;
    const common::Bytes wire = req.serialize();
    for (std::size_t keep = 0; keep < wire.size(); ++keep) {
      EXPECT_FALSE(orc8r::GetUpdatesRequest::deserialize(
                       common::BytesView(wire.data(), keep))
                       .ok());
    }
  }
}

TEST(FuzzMutation, TruncatedDesiredStateAlwaysRejected) {
  orc8r::DesiredState state;
  state.version = 3;
  state.changed = true;
  agw::SubscriberData sub;
  sub.imsi = common::Imsi::from_digits(1010000000001ULL);
  state.subscribers.push_back(sub);
  state.policies.push_back(core::unlimited_policy());
  const common::Bytes wire = state.serialize();
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    EXPECT_FALSE(orc8r::DesiredState::deserialize(
                     common::BytesView(wire.data(), keep))
                     .ok())
        << "prefix " << keep << " parsed as valid";
  }
}

// A hostile RAN peer sprays garbage at a live front-end; the AGW must keep
// serving (the §3.1 "terminate protocols at the edge" boundary is also a
// robustness boundary).
TEST(FuzzFrontend, GarbageOnS1DoesNotKillTheAgw) {
  sim::Kernel kernel;
  sim::Rng rng(7);
  net::DuplexLink link(kernel, rng, sim::lan_link());
  net::ReliablePair channels = net::make_reliable_pair(kernel, link);

  sim::Rng db_rng(8);
  agw::SubscriberDb subscribers([&db_rng]() { return db_rng.next_u64(); });
  agw::PolicyDb policies;
  agw::Mobilityd mobilityd{agw::IpBlock{}};
  agw::Pipelined pipelined;
  agw::Sessiond sessiond(kernel, pipelined, nullptr);
  agw::Accessd accessd(kernel, nullptr, subscribers, policies, mobilityd,
                       sessiond);
  agw::LteFrontend frontend(kernel, accessd, sessiond,
                            common::Ipv4::from_octets(10, 1, 0, 1));
  frontend.add_enb_channel(*channels.b);

  sim::Rng fuzz(123);
  for (int i = 0; i < 1000; ++i) {
    channels.a->send(random_bytes(fuzz, 128));
  }
  kernel.run();
  EXPECT_GE(frontend.stats().decode_errors, 0u);  // alive to report stats
  EXPECT_EQ(sessiond.active_sessions(), 0u);      // and nothing leaked in
}

}  // namespace
}  // namespace magma
