// End-to-end LTE integration: UE ↔ eNodeB ↔ AGW ↔ orchestrator.
//
// Exercises the full §3.1 attach example: S1 setup, NAS attach with real
// EPS-AKA mutual authentication, security mode, bearer establishment, data
// plane programming, user traffic both directions, and detach.
#include <gtest/gtest.h>

#include "core/network.h"
#include "core/workload.h"

namespace magma {
namespace {

class LteAttachTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<core::Network>();
    agw_ = &net_->add_agw(agw::bare_metal_j3160());
    enb_ = &net_->add_enodeb(*agw_);
    net_->run_for(2 * sim::kSecond);  // S1 setup, first config sync
    ASSERT_TRUE(enb_->s1_ready());
  }

  ran::AttachOutcome attach(ran::UeLte& ue) {
    ran::AttachOutcome result;
    bool done = false;
    ue.attach(*enb_, [&](const ran::AttachOutcome& outcome) {
      result = outcome;
      done = true;
    });
    net_->run_for(20 * sim::kSecond);
    EXPECT_TRUE(done);
    return result;
  }

  std::unique_ptr<core::Network> net_;
  agw::AccessGateway* agw_ = nullptr;
  ran::EnodeB* enb_ = nullptr;
};

TEST_F(LteAttachTest, SuccessfulAttachEstablishesSession) {
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();

  ran::UeLte& ue = net_->add_ue_lte(sub);
  const ran::AttachOutcome outcome = attach(ue);
  ASSERT_TRUE(outcome.success) << outcome.failure_reason;
  EXPECT_TRUE(ue.registered());
  ASSERT_TRUE(ue.ip().has_value());

  // Runtime state landed in the right places.
  EXPECT_EQ(agw_->sessiond().active_sessions(), 1u);
  const agw::SessionRecord* session = agw_->sessiond().find(sub.imsi);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->flows.ue_ip, *ue.ip());
  EXPECT_TRUE(agw_->pipelined().has_session(session->id.value));
  EXPECT_EQ(agw_->accessd().stats().attach_completed[0], 1u);

  // Attach latency is sane (well under the guard timer).
  EXPECT_GT(outcome.latency, 0);
  EXPECT_LT(outcome.latency, 10 * sim::kSecond);
}

TEST_F(LteAttachTest, UnknownSubscriberIsRejected) {
  // Provisioned at the orchestrator? No — never provisioned at all.
  agw::SubscriberData ghost;
  ghost.imsi = common::Imsi::from_digits(1010009999999ULL);
  ran::UeLte& ue = net_->add_ue_lte(ghost);
  const ran::AttachOutcome outcome = attach(ue);
  EXPECT_FALSE(outcome.success);
  EXPECT_FALSE(ue.registered());
  EXPECT_EQ(agw_->sessiond().active_sessions(), 0u);
  EXPECT_EQ(agw_->accessd().stats().attach_rejected[0], 1u);
}

TEST_F(LteAttachTest, WrongKeyFailsAuthentication) {
  agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  // The UE's USIM holds a different key than the network provisioned.
  sub.k[0] ^= 0xFF;
  ran::UeLte& ue = net_->add_ue_lte(sub);
  const ran::AttachOutcome outcome = attach(ue);
  EXPECT_FALSE(outcome.success);
  // The UE detects the mismatch first: AUTN's MAC-A fails under its key.
  EXPECT_EQ(outcome.failure_reason, "autn-mac-failure");
  EXPECT_EQ(agw_->sessiond().active_sessions(), 0u);
}

TEST_F(LteAttachTest, SqnResyncViaAuts) {
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();

  ran::UeLte& ue = net_->add_ue_lte(sub);
  // USIM believes it has seen SQN up to 50; the network starts at 0, so the
  // first challenge is stale and triggers AUTS resynchronisation.
  ue.usim().force_sqn(50);
  const ran::AttachOutcome outcome = attach(ue);
  ASSERT_TRUE(outcome.success) << outcome.failure_reason;
  EXPECT_GE(agw_->subscriberdb().stats().resyncs, 1u);
  // After resync the network SQN jumped past the USIM's.
  EXPECT_GT(agw_->subscriberdb().get(sub.imsi)->sqn, 50u);
}

TEST_F(LteAttachTest, TrafficFlowsBothDirections) {
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  ran::UeLte& ue = net_->add_ue_lte(sub);
  ASSERT_TRUE(attach(ue).success);

  // Downlink: Internet -> AGW -> (GTP) -> eNodeB -> UE.
  net_->inject_downlink(*agw_, *ue.ip(), 1400, 100);
  net_->run_for(1 * sim::kSecond);
  EXPECT_GT(ue.traffic().rx_bytes, 0u);
  EXPECT_EQ(ue.traffic().rx_packets, 100u);

  // Uplink: UE -> eNodeB -> (GTP) -> AGW -> Internet.
  const std::uint64_t internet_before = net_->internet_rx_bytes();
  ue.send_uplink(common::Ipv4::from_octets(8, 8, 8, 8), 443, 1000, 50);
  net_->run_for(1 * sim::kSecond);
  EXPECT_GT(net_->internet_rx_bytes(), internet_before);

  // Usage accounting saw the traffic.
  agw_->sessiond().poll_usage();
  const agw::SessionRecord* session = agw_->sessiond().find(sub.imsi);
  ASSERT_NE(session, nullptr);
  EXPECT_GT(session->used_bytes, 0u);
}

TEST_F(LteAttachTest, TrafficForUnknownUeIsDropped) {
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  ran::UeLte& ue = net_->add_ue_lte(sub);
  ASSERT_TRUE(attach(ue).success);

  const auto before = agw_->pipelined().pipeline().stats().dropped_no_match;
  // Downlink for an address with no session: table miss, dropped.
  net_->inject_downlink(*agw_, common::Ipv4::from_octets(172, 16, 0, 200),
                        1400, 10);
  net_->run_for(1 * sim::kSecond);
  EXPECT_GT(agw_->pipelined().pipeline().stats().dropped_no_match, before);
}

TEST_F(LteAttachTest, DetachTearsDownSession) {
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  ran::UeLte& ue = net_->add_ue_lte(sub);
  ASSERT_TRUE(attach(ue).success);
  ASSERT_EQ(agw_->sessiond().active_sessions(), 1u);

  ue.detach(false);
  net_->run_for(5 * sim::kSecond);
  EXPECT_EQ(agw_->sessiond().active_sessions(), 0u);
  EXPECT_EQ(agw_->pipelined().session_count(), 0u);
  EXPECT_EQ(agw_->accessd().stats().detaches, 1u);
  // Address returned to the pool (after quarantine it can be reused).
  EXPECT_EQ(agw_->mobilityd().allocated(), 0u);
}

TEST_F(LteAttachTest, ReattachAfterDetachWorks) {
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  ran::UeLte& ue = net_->add_ue_lte(sub);
  ASSERT_TRUE(attach(ue).success);
  ue.detach(false);
  net_->run_for(5 * sim::kSecond);

  const ran::AttachOutcome second = attach(ue);
  EXPECT_TRUE(second.success) << second.failure_reason;
  EXPECT_EQ(agw_->sessiond().active_sessions(), 1u);
}

TEST_F(LteAttachTest, EnodebCapacityLimitsActiveUes) {
  // A tiny cell: 3 active UEs max.
  ran::EnodebConfig small;
  small.max_active_ues = 3;
  ran::EnodeB& cell = net_->add_enodeb(*agw_, small);
  net_->run_for(1 * sim::kSecond);

  std::vector<agw::SubscriberData> subs;
  for (int i = 0; i < 4; ++i) subs.push_back(net_->provision_subscriber());
  net_->sync_all_config();

  int successes = 0;
  int capacity_rejects = 0;
  for (int i = 0; i < 4; ++i) {
    ran::UeLte& ue = net_->add_ue_lte(subs[static_cast<std::size_t>(i)]);
    bool done = false;
    ran::AttachOutcome outcome;
    ue.attach(cell, [&](const ran::AttachOutcome& o) {
      outcome = o;
      done = true;
    });
    net_->run_for(20 * sim::kSecond);
    ASSERT_TRUE(done);
    if (outcome.success) {
      ++successes;
    } else if (outcome.failure_reason == "rrc-capacity") {
      ++capacity_rejects;
    }
  }
  EXPECT_EQ(successes, 3);
  EXPECT_EQ(capacity_rejects, 1);
}

TEST_F(LteAttachTest, MultipleUesConcurrently) {
  std::vector<agw::SubscriberData> subs;
  for (int i = 0; i < 10; ++i) subs.push_back(net_->provision_subscriber());
  net_->sync_all_config();

  std::vector<ran::UeLte*> ues;
  for (const auto& sub : subs) ues.push_back(&net_->add_ue_lte(sub));

  core::AttachRamp ramp(*net_, ues, *enb_, 2.0);
  net_->run_for(60 * sim::kSecond);
  EXPECT_EQ(ramp.completed(), 10u);
  EXPECT_EQ(ramp.succeeded(), 10u);
  EXPECT_EQ(agw_->sessiond().active_sessions(), 10u);

  // Every UE got a distinct address.
  std::set<std::uint32_t> addrs;
  for (ran::UeLte* ue : ues) {
    ASSERT_TRUE(ue->ip().has_value());
    addrs.insert(ue->ip()->addr);
  }
  EXPECT_EQ(addrs.size(), 10u);
}

}  // namespace
}  // namespace magma
