// Fleet-scale control plane: the delta-capable streamer (version-cached
// full blobs, coalesced version-ranged deltas, epoch/regression fallback),
// the orchestrator's sharded southbound ingest, and the fleet-wide
// tail-sampling budget assigned on checkin.
#include <gtest/gtest.h>

#include <algorithm>

#include "agw/magmad.h"
#include "net/channel.h"
#include "obs/tail_sampler.h"
#include "orc8r/ingest.h"
#include "orc8r/orchestrator.h"

namespace magma {
namespace {

using agw::SubscriberData;

common::Imsi imsi(std::uint64_t n) {
  return common::Imsi::from_digits(1010000000000ULL + n);
}

SubscriberData subscriber(std::uint64_t n, const std::string& policy) {
  SubscriberData sub;
  sub.imsi = imsi(n);
  sub.k[0] = static_cast<std::uint8_t>(n);
  sub.policy_name = policy;
  return sub;
}

orc8r::GetUpdatesRequest poll(std::uint64_t have_version,
                              std::uint64_t have_epoch) {
  orc8r::GetUpdatesRequest req;
  req.gateway_id = "gw0";
  req.have_version = have_version;
  req.have_epoch = have_epoch;
  return req;
}

// ---------------------------------------------------------------------------
// IngestShards
// ---------------------------------------------------------------------------

TEST(FleetIngest, ShardAssignmentIsStableAndInRange) {
  for (std::size_t shards : {1u, 4u, 7u}) {
    for (int g = 0; g < 50; ++g) {
      const std::string id = "gw" + std::to_string(g);
      const std::size_t s = orc8r::IngestShards::shard_of(id, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, orc8r::IngestShards::shard_of(id, shards));
    }
  }
  // FNV-1a, not std::hash: the assignment is a fixed function of the bytes.
  EXPECT_EQ(orc8r::IngestShards::shard_of("gw0", 4),
            orc8r::IngestShards::shard_of("gw0", 4));
}

TEST(FleetIngest, AppliesInFifoOrderPerGateway) {
  sim::Kernel kernel;
  orc8r::IngestShards ingest(kernel);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ingest.submit("gw0", orc8r::IngestKind::kMetrics,
                              [&order, i]() { order.push_back(i); }));
  }
  EXPECT_EQ(ingest.pending(), 10u);
  kernel.run_until(sim::kSecond);
  EXPECT_EQ(ingest.pending(), 0u);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(ingest.stats().processed, 10u);
  EXPECT_EQ(ingest.stats().shed, 0u);
}

TEST(FleetIngest, FullGatewayQueueShedsWithKindBreakdown) {
  sim::Kernel kernel;
  orc8r::IngestConfig config;
  config.gateway_queue_max = 4;
  orc8r::IngestShards ingest(kernel, config);
  int applied = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ingest.submit("gw0", orc8r::IngestKind::kCheckin,
                              [&applied]() { ++applied; }));
  }
  // Queue full: everything further sheds, by kind, without queueing.
  EXPECT_FALSE(ingest.submit("gw0", orc8r::IngestKind::kMetrics,
                             [&applied]() { ++applied; }));
  EXPECT_FALSE(ingest.submit("gw0", orc8r::IngestKind::kMetrics,
                             [&applied]() { ++applied; }));
  EXPECT_FALSE(ingest.submit("gw0", orc8r::IngestKind::kTraceSummaries,
                             [&applied]() { ++applied; }));
  EXPECT_EQ(ingest.stats().shed, 3u);
  EXPECT_EQ(ingest.stats().shed_by_kind[static_cast<std::size_t>(
                orc8r::IngestKind::kMetrics)],
            2u);
  EXPECT_EQ(ingest.stats().shed_by_kind[static_cast<std::size_t>(
                orc8r::IngestKind::kTraceSummaries)],
            1u);
  // A different gateway still gets through.
  EXPECT_TRUE(ingest.submit("gw1", orc8r::IngestKind::kMetrics,
                            [&applied]() { ++applied; }));
  kernel.run_until(sim::kSecond);
  EXPECT_EQ(applied, 5);
  EXPECT_EQ(ingest.stats().max_gateway_queue, 4u);
}

TEST(FleetIngest, RoundRobinKeepsBackloggedGatewayFromStarvingOthers) {
  sim::Kernel kernel;
  orc8r::IngestConfig config;
  config.shards = 1;  // force both gateways onto the same shard
  config.batch_per_pump = 2;
  orc8r::IngestShards ingest(kernel, config);
  std::vector<std::string> order;
  for (int i = 0; i < 8; ++i) {
    ingest.submit("gw-noisy", orc8r::IngestKind::kMetrics,
                  [&order]() { order.push_back("noisy"); });
  }
  ingest.submit("gw-quiet", orc8r::IngestKind::kCheckin,
                [&order]() { order.push_back("quiet"); });
  kernel.run_until(sim::kSecond);
  ASSERT_EQ(order.size(), 9u);
  // The quiet gateway's single item lands in the first batch (one item per
  // gateway per round-robin pass), not behind the noisy backlog.
  const auto quiet_at =
      std::find(order.begin(), order.end(), "quiet") - order.begin();
  EXPECT_LT(quiet_at, 2);
  EXPECT_GE(ingest.stats().batches, 4u);
}

// ---------------------------------------------------------------------------
// Delta streamer (orchestrator-level)
// ---------------------------------------------------------------------------

TEST(DeltaStream, FirstContactFullThenNoopThenDelta) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  orc8r.add_subscriber(subscriber(1, "gold"));

  // First contact (epoch 0): full sync.
  const orc8r::DesiredUpdate first = orc8r.desired_update(poll(0, 0));
  EXPECT_EQ(first.mode, orc8r::SyncMode::kFull);
  EXPECT_EQ(first.epoch, orc8r.epoch());
  auto full = orc8r::DesiredState::deserialize(first.full);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().subscribers.size(), 1u);

  // Current: noop, nothing but the header.
  const orc8r::DesiredUpdate noop =
      orc8r.desired_update(poll(first.version, first.epoch));
  EXPECT_EQ(noop.mode, orc8r::SyncMode::kNoop);
  EXPECT_TRUE(noop.entries.empty());
  EXPECT_TRUE(noop.full.empty());

  // One change behind: a single-entry delta, not a full transfer.
  orc8r.add_subscriber(subscriber(2, "silver"));
  const orc8r::DesiredUpdate delta =
      orc8r.desired_update(poll(first.version, first.epoch));
  EXPECT_EQ(delta.mode, orc8r::SyncMode::kDelta);
  ASSERT_EQ(delta.entries.size(), 1u);
  EXPECT_EQ(delta.entries[0].kind, orc8r::DeltaEntry::Kind::kSubscriber);
  EXPECT_FALSE(delta.entries[0].remove);
  EXPECT_EQ(delta.entries[0].key, imsi(2).value);
  EXPECT_EQ(orc8r.stats().delta_pushes, 1u);
  EXPECT_EQ(orc8r.stats().full_pushes, 1u);
}

TEST(DeltaStream, CoalescesRepeatedWritesAndEmitsRemovals) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  const orc8r::DesiredUpdate base = orc8r.desired_update(poll(0, 0));

  // Five mutations, two surviving keys: sub 1 rewritten twice (last wins),
  // sub 2 added then removed (the remove must still be emitted — the
  // gateway may hold the add), one policy.
  orc8r.add_subscriber(subscriber(1, "gold"));
  orc8r.add_subscriber(subscriber(2, "gold"));
  orc8r.add_subscriber(subscriber(1, "silver"));
  orc8r.remove_subscriber(imsi(2));
  orc8r.add_policy(core::rate_limited_policy(1e6, 1e6));

  const orc8r::DesiredUpdate delta =
      orc8r.desired_update(poll(base.version, base.epoch));
  ASSERT_EQ(delta.mode, orc8r::SyncMode::kDelta);
  ASSERT_EQ(delta.entries.size(), 3u);
  // Deterministic (kind, key) order: subscribers before policies.
  EXPECT_EQ(delta.entries[0].key, imsi(1).value);
  EXPECT_FALSE(delta.entries[0].remove);
  auto sub = SubscriberData::deserialize(delta.entries[0].blob);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub.value().policy_name, "silver");  // last write won
  EXPECT_EQ(delta.entries[1].key, imsi(2).value);
  EXPECT_TRUE(delta.entries[1].remove);
  EXPECT_TRUE(delta.entries[1].blob.empty());
  EXPECT_EQ(delta.entries[2].kind, orc8r::DeltaEntry::Kind::kPolicy);
  EXPECT_EQ(delta.entries[2].key, "rate_limited");
  EXPECT_EQ(orc8r.stats().deltas_coalesced, 2u);
  EXPECT_EQ(orc8r.stats().delta_entries_sent, 3u);
}

TEST(DeltaStream, HaveVersionEqualsCurrentServesNoop) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  orc8r.add_subscriber(subscriber(1, "gold"));

  // A caught-up gateway is a noop regardless of delta-log state — even a
  // log trimmed to nothing must not push it onto the full path.
  orc8r.set_delta_log_cap(0);
  const orc8r::DesiredUpdate noop =
      orc8r.desired_update(poll(orc8r.config_version(), orc8r.epoch()));
  EXPECT_EQ(noop.mode, orc8r::SyncMode::kNoop);
  EXPECT_TRUE(noop.entries.empty());
  EXPECT_TRUE(noop.full.empty());
  EXPECT_EQ(orc8r.stats().full_pushes, 0u);
  EXPECT_EQ(orc8r.stats().delta_log_misses, 0u);
}

TEST(DeltaStream, DeltaLogTrimmedToExactRangeStillServesDelta) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  const orc8r::DesiredUpdate base = orc8r.desired_update(poll(0, 0));

  // Three mutations behind, and the log holds *exactly* those three
  // records — the coverage check is an off-by-one trap: == must serve a
  // delta, only < falls back to full.
  orc8r.add_subscriber(subscriber(1, "p"));
  orc8r.add_subscriber(subscriber(2, "p"));
  orc8r.add_subscriber(subscriber(3, "p"));
  const std::uint64_t need = orc8r.config_version() - base.version;
  orc8r.set_delta_log_cap(static_cast<std::size_t>(need));

  // The base poll itself may have been served as a full push; gate on
  // growth from here, not absolute counts.
  const std::uint64_t fulls_before = orc8r.stats().full_pushes;
  const orc8r::DesiredUpdate exact =
      orc8r.desired_update(poll(base.version, base.epoch));
  EXPECT_EQ(exact.mode, orc8r::SyncMode::kDelta);
  EXPECT_EQ(exact.entries.size(), 3u);
  EXPECT_EQ(orc8r.stats().delta_log_misses, 0u);
  EXPECT_EQ(orc8r.stats().full_pushes, fulls_before);

  // One record fewer and the same poll must fall back to full.
  orc8r.set_delta_log_cap(static_cast<std::size_t>(need) - 1);
  const orc8r::DesiredUpdate short_log =
      orc8r.desired_update(poll(base.version, base.epoch));
  EXPECT_EQ(short_log.mode, orc8r::SyncMode::kFull);
  EXPECT_EQ(orc8r.stats().full_pushes, fulls_before + 1);
  EXPECT_EQ(orc8r.stats().delta_log_misses, 1u);
}

TEST(DeltaStream, LogOverflowAndDirectStoreWritesFallBackToFull) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  orc8r.set_delta_log_cap(2);
  const orc8r::DesiredUpdate base = orc8r.desired_update(poll(0, 0));

  // Three mutations against a 2-entry log: the range is no longer covered.
  orc8r.add_subscriber(subscriber(1, "p"));
  orc8r.add_subscriber(subscriber(2, "p"));
  orc8r.add_subscriber(subscriber(3, "p"));
  const orc8r::DesiredUpdate over =
      orc8r.desired_update(poll(base.version, base.epoch));
  EXPECT_EQ(over.mode, orc8r::SyncMode::kFull);
  EXPECT_EQ(orc8r.stats().delta_log_misses, 1u);

  // A direct store write bypasses the delta log; the coverage check must
  // catch the gap and serve full rather than a wrong delta.
  const orc8r::DesiredUpdate synced =
      orc8r.desired_update(poll(orc8r.config_version(), orc8r.epoch()));
  ASSERT_EQ(synced.mode, orc8r::SyncMode::kNoop);
  orc8r.store().put("sub/raw", subscriber(9, "q").serialize());
  orc8r.add_subscriber(subscriber(4, "p"));
  const orc8r::DesiredUpdate after =
      orc8r.desired_update(poll(synced.version, synced.epoch));
  EXPECT_EQ(after.mode, orc8r::SyncMode::kFull);
  EXPECT_EQ(orc8r.stats().delta_log_misses, 2u);
}

TEST(DeltaStream, FullBlobSerializedOncePerVersionAcrossTheFleet) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  for (int i = 0; i < 20; ++i) orc8r.add_subscriber(subscriber(i, "p"));

  // 100 gateways all first-contact at the same version: one serialization,
  // 99 cache hits.
  for (int g = 0; g < 100; ++g) {
    const orc8r::DesiredUpdate u = orc8r.desired_update(poll(0, 0));
    ASSERT_EQ(u.mode, orc8r::SyncMode::kFull);
  }
  EXPECT_EQ(orc8r.stats().full_pushes, 100u);
  EXPECT_EQ(orc8r.stats().full_serializations, 1u);
  EXPECT_EQ(orc8r.stats().full_cache_hits, 99u);

  // A change invalidates once; the next wave costs exactly one more.
  orc8r.add_subscriber(subscriber(99, "p"));
  for (int g = 0; g < 50; ++g) {
    (void)orc8r.desired_update(poll(0, 0));
  }
  EXPECT_EQ(orc8r.stats().full_serializations, 2u);
}

TEST(DeltaStream, RegressionAndForeignEpochServeFull) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  orc8r.add_subscriber(subscriber(1, "p"));

  // A gateway ahead of the store (restored/rebuilt store) gets walked back
  // with an explicit full sync, counted as a regression.
  const orc8r::DesiredUpdate back = orc8r.desired_update(
      poll(orc8r.config_version() + 50, orc8r.epoch()));
  EXPECT_EQ(back.mode, orc8r::SyncMode::kFull);
  EXPECT_EQ(orc8r.stats().version_regressions, 1u);

  // A gateway carrying another incarnation's epoch can never take deltas.
  const orc8r::DesiredUpdate foreign = orc8r.desired_update(
      poll(orc8r.config_version(), orc8r.epoch() + 1));
  EXPECT_EQ(foreign.mode, orc8r::SyncMode::kFull);
  EXPECT_EQ(orc8r.stats().epoch_resyncs, 1u);
}

TEST(DeltaStream, UpdateCodecRoundTrips) {
  orc8r::DesiredUpdate u;
  u.version = 7;
  u.epoch = 3;
  u.mode = orc8r::SyncMode::kDelta;
  orc8r::DeltaEntry add;
  add.kind = orc8r::DeltaEntry::Kind::kSubscriber;
  add.key = imsi(1).value;
  add.blob = subscriber(1, "gold").serialize();
  orc8r::DeltaEntry rm;
  rm.kind = orc8r::DeltaEntry::Kind::kPolicy;
  rm.remove = true;
  rm.key = "rate_limited";
  u.entries = {add, rm};

  auto round = orc8r::DesiredUpdate::deserialize(u.serialize());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().version, 7u);
  EXPECT_EQ(round.value().epoch, 3u);
  EXPECT_EQ(round.value().mode, orc8r::SyncMode::kDelta);
  ASSERT_EQ(round.value().entries.size(), 2u);
  EXPECT_EQ(round.value().entries[0].key, add.key);
  EXPECT_EQ(round.value().entries[0].blob, add.blob);
  EXPECT_TRUE(round.value().entries[1].remove);

  orc8r::DesiredUpdate noop;
  noop.version = 1;
  noop.epoch = 1;
  auto noop_round = orc8r::DesiredUpdate::deserialize(noop.serialize());
  ASSERT_TRUE(noop_round.ok());
  EXPECT_EQ(noop_round.value().mode, orc8r::SyncMode::kNoop);
}

// ---------------------------------------------------------------------------
// End to end over a link: delta fan-out + tail budget
// ---------------------------------------------------------------------------

class FleetScaleRpcTest : public ::testing::Test {
 protected:
  FleetScaleRpcTest()
      : rng_(5),
        orc8r_(kernel_),
        link_(kernel_, rng_, sim::fiber_backhaul()),
        channels_(net::make_reliable_pair(kernel_, link_)),
        server_node_(kernel_, *channels_.a, "orc8r-server"),
        client_node_(kernel_, *channels_.b, "agw-client"),
        subscribers_([this]() { return rng_.next_u64(); }),
        magmad_(kernel_, "gw0", &client_node_, subscribers_, policies_,
                []() { return common::Bytes{}; },
                []() { return std::vector<orc8r::MetricSample>{}; }) {
    orc8r_.bind(server_node_);
  }

  sim::Kernel kernel_;
  sim::Rng rng_;
  orc8r::Orchestrator orc8r_;
  net::DuplexLink link_;
  net::ReliablePair channels_;
  rpc::RpcNode server_node_;
  rpc::RpcNode client_node_;
  agw::SubscriberDb subscribers_;
  agw::PolicyDb policies_;
  agw::Magmad magmad_;
};

TEST_F(FleetScaleRpcTest, SteadyStateSyncsRideDeltasNotFullTransfers) {
  for (int i = 0; i < 10; ++i) orc8r_.add_subscriber(subscriber(i, "p"));
  magmad_.sync_config_now();
  kernel_.run_until(5 * sim::kSecond);
  ASSERT_EQ(subscribers_.size(), 10u);
  ASSERT_EQ(magmad_.stats().config_full_syncs, 1u);
  EXPECT_EQ(magmad_.synced_epoch(), orc8r_.epoch());

  // One change: the next poll applies a one-entry delta.
  orc8r_.add_subscriber(subscriber(42, "gold"));
  magmad_.sync_config_now();
  kernel_.run_until(10 * sim::kSecond);
  EXPECT_EQ(subscribers_.size(), 11u);
  EXPECT_TRUE(subscribers_.get(imsi(42)).has_value());
  EXPECT_EQ(magmad_.stats().config_delta_syncs, 1u);
  EXPECT_EQ(magmad_.stats().delta_entries_applied, 1u);
  EXPECT_EQ(magmad_.stats().config_full_syncs, 1u);  // still just the one
  EXPECT_EQ(orc8r_.stats().delta_pushes, 1u);

  // Removal propagates as a delta too.
  orc8r_.remove_subscriber(imsi(42));
  magmad_.sync_config_now();
  kernel_.run_until(15 * sim::kSecond);
  EXPECT_FALSE(subscribers_.get(imsi(42)).has_value());
  EXPECT_EQ(magmad_.stats().config_delta_syncs, 2u);
  EXPECT_EQ(magmad_.synced_version(), orc8r_.config_version());
}

TEST_F(FleetScaleRpcTest, CheckinAssignsFleetTailBudget) {
  orc8r_.set_fleet_trace_budget(40);
  std::vector<std::size_t> assigned;
  magmad_.set_tail_budget_sink(
      [&assigned](std::size_t k) { assigned.push_back(k); });

  magmad_.start();
  kernel_.run_until(3 * sim::kSecond);
  // Sole gateway: the whole budget.
  ASSERT_EQ(assigned.size(), 1u);
  EXPECT_EQ(assigned[0], 40u);
  EXPECT_EQ(magmad_.assigned_tail_keep(), 40u);

  // The fleet grows to 8: the next checkin reassigns K = 40 / 8.
  for (int g = 1; g < 8; ++g) {
    orc8r_.register_gateway("gw" + std::to_string(g), "agw");
  }
  kernel_.run_until(80 * sim::kSecond);  // next checkin at t=60s
  ASSERT_EQ(assigned.size(), 2u);
  EXPECT_EQ(assigned[1], 5u);
  EXPECT_EQ(magmad_.stats().tail_budget_updates, 2u);
}

TEST_F(FleetScaleRpcTest, SouthboundReportsFlowThroughIngestShards) {
  orc8r_.add_subscriber(subscriber(1, "p"));
  agw::MagmadConfig config;
  config.metrics_interval = 5 * sim::kSecond;
  agw::Magmad magmad(
      kernel_, "gw0", &client_node_, subscribers_, policies_,
      []() { return common::Bytes{}; },
      [this]() {
        return std::vector<orc8r::MetricSample>{
            orc8r::MetricSample{"gw0", "active_sessions", 1.0,
                                kernel_.now()}};
      },
      config);
  magmad.start();
  kernel_.run_until(sim::kMinute);
  // Reports landed and were applied via the shards, nothing shed.
  EXPECT_GE(orc8r_.stats().metric_reports, 2u);
  EXPECT_GE(orc8r_.ingest().stats().processed, 2u);
  EXPECT_EQ(orc8r_.ingest().stats().shed, 0u);
  EXPECT_EQ(orc8r_.ingest().pending(), 0u);
  EXPECT_GT(orc8r_.metrics().total_samples(), 0u);
  ASSERT_GE(orc8r_.statusd().stats().checkins, 1u);
}

// ---------------------------------------------------------------------------
// TailSampler budget application
// ---------------------------------------------------------------------------

obs::TraceContext finish_root(sim::Kernel& kernel, obs::Tracer& tracer,
                              sim::Duration duration) {
  const obs::TraceContext root = tracer.begin("attach", "lte_frontend", "gw0");
  kernel.run_until(kernel.now() + duration);
  tracer.end(root);
  return root;
}

TEST(FleetScaleTailBudget, ShrinkingKeepTrimsFastestAndUnpins) {
  sim::Kernel kernel;
  obs::Tracer tracer(kernel);
  obs::TailSamplerConfig config;
  config.keep_per_op = 4;
  config.window = sim::kMinute;
  obs::TailSampler sampler(kernel, tracer, config);

  const obs::TraceContext t10 =
      finish_root(kernel, tracer, 10 * sim::kMillisecond);
  const obs::TraceContext t20 =
      finish_root(kernel, tracer, 20 * sim::kMillisecond);
  const obs::TraceContext t30 =
      finish_root(kernel, tracer, 30 * sim::kMillisecond);
  const obs::TraceContext t40 =
      finish_root(kernel, tracer, 40 * sim::kMillisecond);
  ASSERT_EQ(sampler.held(), 4u);

  // Budget cut to 2: the two fastest keeps are trimmed and unpinned.
  sampler.set_keep_per_op(2);
  EXPECT_EQ(sampler.held(), 2u);
  EXPECT_TRUE(tracer.trace_pinned(t40.trace_id));
  EXPECT_TRUE(tracer.trace_pinned(t30.trace_id));
  EXPECT_FALSE(tracer.trace_pinned(t20.trace_id));
  EXPECT_FALSE(tracer.trace_pinned(t10.trace_id));
  EXPECT_EQ(sampler.stats().budget_trims, 2u);

  // New roots obey the smaller K.
  finish_root(kernel, tracer, 50 * sim::kMillisecond);
  EXPECT_EQ(sampler.held(), 2u);

  // 0 clamps to 1 — a managed gateway always keeps its slowest trace.
  sampler.set_keep_per_op(0);
  EXPECT_EQ(sampler.keep_per_op(), 1u);
  EXPECT_EQ(sampler.held(), 1u);
}

}  // namespace
}  // namespace magma
