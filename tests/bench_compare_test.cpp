// Bench JSON flattening and the regression gate behind bench/bench_compare.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "obs/bench_json.h"

namespace magma::obs {
namespace {

using Flat = std::map<std::string, double>;

// ---------------------------------------------------------------------------
// flatten_json_numbers
// ---------------------------------------------------------------------------

TEST(BenchCompare, FlattensNestedNumericFields) {
  const auto flat = flatten_json_numbers(R"({
    "bench": "host_microbench",
    "pass": true,
    "nothing": null,
    "wall_ms": 12.5,
    "metrics": { "lte_attach_ns": 86000, "nested": { "deep_allocs": 3 } }
  })");
  ASSERT_TRUE(flat.ok());
  const Flat& m = flat.value();
  EXPECT_EQ(m.size(), 3u);  // strings/bools/null skipped
  EXPECT_DOUBLE_EQ(m.at("wall_ms"), 12.5);
  EXPECT_DOUBLE_EQ(m.at("metrics.lte_attach_ns"), 86000.0);
  EXPECT_DOUBLE_EQ(m.at("metrics.nested.deep_allocs"), 3.0);
}

TEST(BenchCompare, RejectsMalformedDocuments) {
  EXPECT_FALSE(flatten_json_numbers("").ok());
  EXPECT_FALSE(flatten_json_numbers("{\"a\": 1").ok());       // truncated
  EXPECT_FALSE(flatten_json_numbers("{\"a\": [1, 2]}").ok()); // arrays
  EXPECT_FALSE(flatten_json_numbers("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(flatten_json_numbers("not json at all").ok());
}

TEST(BenchCompare, CostMetricKeySuffixes) {
  EXPECT_TRUE(is_cost_metric_key("metrics.lte_attach_ns"));
  EXPECT_TRUE(is_cost_metric_key("wall_ms"));
  EXPECT_TRUE(is_cost_metric_key("boot_per_agw_allocs"));
  EXPECT_TRUE(is_cost_metric_key("host.boot_per_agw_alloc_bytes"));
  EXPECT_TRUE(is_cost_metric_key("streamer_bytes_per_op"));
  // Workload counters are not priced: growth there is not regression.
  EXPECT_FALSE(is_cost_metric_key("delta_pushes"));
  EXPECT_FALSE(is_cost_metric_key("agws"));
  EXPECT_FALSE(is_cost_metric_key("checkins"));
}

// ---------------------------------------------------------------------------
// bench_compare
// ---------------------------------------------------------------------------

Flat baseline() {
  return Flat{{"metrics.lte_attach_ns", 100000.0},
              {"metrics.packet_route_ns", 80.0},
              {"metrics.lte_attach_allocs", 500.0},
              {"delta_pushes", 2000.0},
              {"agws", 1000.0}};
}

TEST(BenchCompare, SelfDiffPasses) {
  const Flat base = baseline();
  const BenchCompareResult r = bench_compare(base, base, 0.15);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.regressions.empty());
  EXPECT_TRUE(r.improvements.empty());
  EXPECT_EQ(r.compared, 3u);  // only the cost metrics are priced
}

TEST(BenchCompare, TwentyPercentRegressionFails) {
  const Flat base = baseline();
  Flat after = base;
  after["metrics.lte_attach_ns"] = 120000.0;  // +20% > 15% threshold
  const BenchCompareResult r = bench_compare(base, after, 0.15);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].key, "metrics.lte_attach_ns");
  EXPECT_NEAR(r.regressions[0].change, 0.20, 1e-9);
  // The format ends with the FAIL marker bench_compare prints before exit 1.
  EXPECT_NE(format_bench_compare(r, 0.15).find("FAIL"), std::string::npos);
}

TEST(BenchCompare, RegressionWithinThresholdPasses) {
  const Flat base = baseline();
  Flat after = base;
  after["metrics.lte_attach_ns"] = 110000.0;  // +10% < 15%
  const BenchCompareResult r = bench_compare(base, after, 0.15);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.regressions.empty());
}

TEST(BenchCompare, WorkloadCounterGrowthIsNotRegression) {
  const Flat base = baseline();
  Flat after = base;
  after["delta_pushes"] = 10000.0;  // 5x, but not a cost metric
  const BenchCompareResult r = bench_compare(base, after, 0.15);
  EXPECT_TRUE(r.ok);
}

TEST(BenchCompare, ImprovementsAreReportedNotFailed) {
  const Flat base = baseline();
  Flat after = base;
  after["metrics.packet_route_ns"] = 40.0;  // -50%
  const BenchCompareResult r = bench_compare(base, after, 0.15);
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.improvements.size(), 1u);
  EXPECT_EQ(r.improvements[0].key, "metrics.packet_route_ns");
}

TEST(BenchCompare, OneSidedKeysAreNotesNotFailures) {
  Flat base = baseline();
  Flat after = baseline();
  base["metrics.dropped_metric_ns"] = 5.0;
  after["metrics.brand_new_ns"] = 7.0;
  const BenchCompareResult r = bench_compare(base, after, 0.15);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.notes.size(), 2u);  // one dropped, one new
}

TEST(BenchCompare, AppearingFromZeroIsNoteNotFailure) {
  Flat base = baseline();
  Flat after = baseline();
  base["metrics.cold_ns"] = 0.0;
  after["metrics.cold_ns"] = 50.0;
  const BenchCompareResult r = bench_compare(base, after, 0.15);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.notes.empty());
}

// ---------------------------------------------------------------------------
// bench_compare with options (the allocation-regression wall)
// ---------------------------------------------------------------------------

TEST(BenchCompare, SuffixFilterGatesOnlyMatchingCostKeys) {
  const Flat base = baseline();
  Flat after = base;
  after["metrics.lte_attach_ns"] = 500000.0;  // 5x, but not an _allocs key
  BenchCompareOptions opts;
  opts.suffix = "_allocs";
  const BenchCompareResult r = bench_compare(base, after, opts);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.compared, 1u);  // only lte_attach_allocs was priced
  // The same diff without the filter fails on the _ns blowup.
  EXPECT_FALSE(bench_compare(base, after, opts.threshold).ok);
}

TEST(BenchCompare, StrictFromZeroFailsOnZeroToOne) {
  Flat base = baseline();
  Flat after = baseline();
  base["metrics.packet_route_allocs"] = 0.0;
  after["metrics.packet_route_allocs"] = 1.0;
  // Default semantics: a note, not a failure.
  EXPECT_TRUE(bench_compare(base, after, 0.15).ok);
  // Wall semantics: 1.0 > slack 0.5 from a zero baseline fails.
  BenchCompareOptions opts;
  opts.suffix = "_allocs";
  opts.slack = 0.5;
  opts.strict_from_zero = true;
  const BenchCompareResult r = bench_compare(base, after, opts);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].key, "metrics.packet_route_allocs");
  // Measurement jitter below the slack stays a note.
  after["metrics.packet_route_allocs"] = 0.3;
  EXPECT_TRUE(bench_compare(base, after, opts).ok);
}

TEST(BenchCompare, SlackIsAbsoluteAllowanceOnTopOfThreshold) {
  Flat base = baseline();
  Flat after = baseline();
  base["metrics.reliable_allocs"] = 2.0;
  after["metrics.reliable_allocs"] = 3.0;  // +50%, but only +1 absolute
  BenchCompareOptions opts;
  opts.threshold = 0.15;
  opts.slack = 1.0;  // bound: 2*1.15 + 1 = 3.3
  EXPECT_TRUE(bench_compare(base, after, opts).ok);
  after["metrics.reliable_allocs"] = 3.5;  // past the bound
  EXPECT_FALSE(bench_compare(base, after, opts).ok);
}

}  // namespace
}  // namespace magma::obs
