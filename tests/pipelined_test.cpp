// Data-plane configuration: session rule programming, desired-state
// reconciliation (the §3.4 X/Y/Z example), usage counters, WiFi vs LTE
// session shapes, home routing.
#include <gtest/gtest.h>

#include "agw/pipelined.h"

namespace magma::agw {
namespace {

namespace dp = magma::datapath;

const common::Ipv4 kUe = common::Ipv4::from_octets(172, 16, 0, 2);
const common::Ipv4 kServer = common::Ipv4::from_octets(8, 8, 8, 8);
const common::Ipv4 kEnb = common::Ipv4::from_octets(10, 100, 0, 1);

SessionFlows lte_session(std::uint64_t cookie, common::Ipv4 ue) {
  SessionFlows f;
  f.cookie = cookie;
  f.ue_ip = ue;
  f.agw_teid_ul = common::Teid{static_cast<std::uint32_t>(cookie + 0x100)};
  f.enb_teid_dl = common::Teid{static_cast<std::uint32_t>(cookie + 0x200)};
  f.enb_address = kEnb;
  return f;
}

dp::Packet uplink_packet(const SessionFlows& f) {
  return dp::gtpu_encap(dp::make_udp(f.ue_ip, kServer, 1000, 443, 500),
                        f.agw_teid_ul, kEnb, common::Ipv4{1});
}

TEST(Pipelined, InstallsAndForwardsBothDirections) {
  Pipelined pd;
  const SessionFlows f = lte_session(1, kUe);
  ASSERT_TRUE(pd.install_session(f, 0).ok());
  EXPECT_TRUE(pd.has_session(1));

  auto ul = pd.pipeline().process(uplink_packet(f), dp::Direction::kUplink, 0);
  EXPECT_EQ(ul.verdict, dp::Verdict::kForwarded);
  EXPECT_EQ(ul.out_port, dp::kPortSgi);
  EXPECT_FALSE(ul.packet.gtpu.has_value());

  auto dl = pd.pipeline().process(dp::make_udp(kServer, kUe, 443, 1000, 500),
                                  dp::Direction::kDownlink, 0);
  EXPECT_EQ(dl.verdict, dp::Verdict::kForwarded);
  EXPECT_EQ(dl.out_port, dp::kPortRan);
  ASSERT_TRUE(dl.packet.gtpu.has_value());
  EXPECT_EQ(dl.packet.gtpu->teid, f.enb_teid_dl);
}

TEST(Pipelined, InstallIsIdempotent) {
  Pipelined pd;
  const SessionFlows f = lte_session(1, kUe);
  ASSERT_TRUE(pd.install_session(f, 0).ok());
  const std::size_t entries = pd.pipeline().total_flow_entries();
  ASSERT_TRUE(pd.install_session(f, 0).ok());
  EXPECT_EQ(pd.pipeline().total_flow_entries(), entries);
  EXPECT_EQ(pd.stats().sessions_installed, 1u);
}

TEST(Pipelined, RemoveSessionStopsTraffic) {
  Pipelined pd;
  const SessionFlows f = lte_session(1, kUe);
  ASSERT_TRUE(pd.install_session(f, 0).ok());
  ASSERT_TRUE(pd.remove_session(1).ok());
  EXPECT_FALSE(pd.has_session(1));
  EXPECT_EQ(pd.pipeline().total_flow_entries(), 0u);
  auto result =
      pd.pipeline().process(uplink_packet(f), dp::Direction::kUplink, 0);
  EXPECT_EQ(result.verdict, dp::Verdict::kDroppedNoMatch);
  EXPECT_EQ(pd.remove_session(1).code(), common::ErrorCode::kNotFound);
}

TEST(Pipelined, RateLimitEnforcedPerDirection) {
  Pipelined pd;
  SessionFlows f = lte_session(1, kUe);
  f.dl_rate_bps = 8000;  // 1000 B/s downlink
  ASSERT_TRUE(pd.install_session(f, 0).ok());

  // Offer far more than the rate for 10 seconds of virtual time.
  std::uint64_t forwarded_bytes = 0;
  for (int t = 0; t < 10; ++t) {
    for (int i = 0; i < 100; ++i) {
      auto r = pd.pipeline().process(
          dp::make_udp(kServer, kUe, 443, 1000, 972),
          dp::Direction::kDownlink, t * sim::kSecond);
      if (r.verdict == dp::Verdict::kForwarded) {
        forwarded_bytes += r.packet.wire_size();
      }
    }
  }
  // ~10 KB allowed (+burst); definitely far below the 1 MB offered.
  EXPECT_LT(forwarded_bytes, 100'000u);
  EXPECT_GT(forwarded_bytes, 5'000u);
  // Uplink is unmetered in this session.
  auto ul = pd.pipeline().process(uplink_packet(f), dp::Direction::kUplink,
                                  10 * sim::kSecond);
  EXPECT_EQ(ul.verdict, dp::Verdict::kForwarded);
}

TEST(Pipelined, BlockedSessionDropsTrafficWithoutCountingUsage) {
  Pipelined pd;
  SessionFlows f = lte_session(1, kUe);
  f.blocked = true;
  ASSERT_TRUE(pd.install_session(f, 0).ok());

  auto dl = pd.pipeline().process(dp::make_udp(kServer, kUe, 443, 1000, 500),
                                  dp::Direction::kDownlink, 0);
  EXPECT_EQ(dl.verdict, dp::Verdict::kDroppedByPolicy);
  auto ul = pd.pipeline().process(uplink_packet(f), dp::Direction::kUplink, 0);
  EXPECT_EQ(ul.verdict, dp::Verdict::kDroppedByPolicy);
  // Blocked traffic is not usage.
  EXPECT_EQ(pd.session_usage(1).bytes, 0u);
}

TEST(Pipelined, WifiSessionIsUntunneled) {
  Pipelined pd;
  SessionFlows f;
  f.cookie = 3;
  f.ue_ip = kUe;
  f.tunneled = false;
  ASSERT_TRUE(pd.install_session(f, 0).ok());

  // Uplink arrives as plain IP from the AP.
  auto ul = pd.pipeline().process(dp::make_udp(kUe, kServer, 1, 2, 100),
                                  dp::Direction::kUplink, 0);
  EXPECT_EQ(ul.verdict, dp::Verdict::kForwarded);
  EXPECT_EQ(ul.out_port, dp::kPortSgi);

  // Downlink leaves as plain IP toward the AP.
  auto dl = pd.pipeline().process(dp::make_udp(kServer, kUe, 1, 2, 100),
                                  dp::Direction::kDownlink, 0);
  EXPECT_EQ(dl.verdict, dp::Verdict::kForwarded);
  EXPECT_EQ(dl.out_port, dp::kPortRan);
  EXPECT_FALSE(dl.packet.gtpu.has_value());
}

TEST(Pipelined, HomeRoutedSessionTunnelsBothWays) {
  Pipelined pd;
  SessionFlows f = lte_session(4, kUe);
  f.home_routed = true;
  f.home_teid_remote = common::Teid{0x4001};
  f.home_agg_address = common::Ipv4::from_octets(10, 200, 0, 1);
  f.home_teid_local = common::Teid{0x4002};
  ASSERT_TRUE(pd.install_session(f, 0).ok());

  // Uplink: decap from RAN, re-encap toward the GTP-A out of SGi.
  auto ul = pd.pipeline().process(uplink_packet(f), dp::Direction::kUplink, 0);
  EXPECT_EQ(ul.verdict, dp::Verdict::kForwarded);
  EXPECT_EQ(ul.out_port, dp::kPortSgi);
  ASSERT_TRUE(ul.packet.gtpu.has_value());
  EXPECT_EQ(ul.packet.gtpu->teid, f.home_teid_remote);

  // Downlink: arrives GTP-encapsulated from the GTP-A, leaves toward RAN.
  dp::Packet from_home = dp::gtpu_encap(
      dp::make_udp(kServer, kUe, 443, 1000, 100), f.home_teid_local,
      f.home_agg_address, common::Ipv4{2});
  auto dl = pd.pipeline().process(from_home, dp::Direction::kDownlink, 0);
  EXPECT_EQ(dl.verdict, dp::Verdict::kForwarded);
  EXPECT_EQ(dl.out_port, dp::kPortRan);
  ASSERT_TRUE(dl.packet.gtpu.has_value());
  EXPECT_EQ(dl.packet.gtpu->teid, f.enb_teid_dl);
}

TEST(Pipelined, UsageCountsInnerBytesOncePerPacket) {
  Pipelined pd;
  const SessionFlows f = lte_session(1, kUe);
  ASSERT_TRUE(pd.install_session(f, 0).ok());
  pd.pipeline().process(uplink_packet(f), dp::Direction::kUplink, 0);
  const dp::FlowCounters usage = pd.session_usage(1);
  EXPECT_EQ(usage.packets, 1u);
  // Counted at the enforcement table: after decap, so inner wire size.
  EXPECT_EQ(usage.bytes, dp::make_udp(kUe, kServer, 1000, 443, 500).wire_size());
}

// --- Desired-state reconciliation (§3.4's X, Y, Z example) -------------------

TEST(Pipelined, DesiredStateConvergesFromAnyStart) {
  Pipelined pd;
  const SessionFlows x = lte_session(1, common::Ipv4::from_octets(172, 16, 0, 1));
  const SessionFlows y = lte_session(2, common::Ipv4::from_octets(172, 16, 0, 2));
  const SessionFlows z = lte_session(3, common::Ipv4::from_octets(172, 16, 0, 3));

  // Data plane believes {X, Y}; control plane's desired set is {X, Y, Z}.
  pd.install_session(x, 0).ok();
  pd.install_session(y, 0).ok();
  pd.set_desired_sessions({x, y, z}, 0);
  EXPECT_EQ(pd.installed_cookies(), (std::vector<std::uint64_t>{1, 2, 3}));

  // Shrink to {Z} — X and Y vanish.
  pd.set_desired_sessions({z}, 0);
  EXPECT_EQ(pd.installed_cookies(), (std::vector<std::uint64_t>{3}));

  // Empty set clears everything.
  pd.set_desired_sessions({}, 0);
  EXPECT_EQ(pd.session_count(), 0u);
  EXPECT_EQ(pd.pipeline().total_flow_entries(), 0u);
}

TEST(Pipelined, DesiredStateIsIdempotent) {
  Pipelined pd;
  const SessionFlows x = lte_session(1, kUe);
  pd.set_desired_sessions({x}, 0);
  // Pass traffic to accumulate counters.
  pd.pipeline().process(uplink_packet(x), dp::Direction::kUplink, 0);
  const std::uint64_t usage = pd.session_usage(1).bytes;
  ASSERT_GT(usage, 0u);

  // Reapplying the same desired state must not reset counters.
  pd.set_desired_sessions({x}, 0);
  EXPECT_EQ(pd.session_usage(1).bytes, usage);
}

TEST(Pipelined, DesiredStateReplacesChangedSpec) {
  Pipelined pd;
  SessionFlows x = lte_session(1, kUe);
  pd.set_desired_sessions({x}, 0);
  x.dl_rate_bps = 1'000'000;  // spec changed
  pd.set_desired_sessions({x}, 0);
  EXPECT_EQ(pd.session_count(), 1u);
  // The meter now exists.
  EXPECT_NE(pd.pipeline().meters().find(
                static_cast<std::uint32_t>(1 * 2)),
            nullptr);
}

TEST(SessionFlows, SerializeRoundTrip) {
  SessionFlows f = lte_session(9, kUe);
  f.dl_rate_bps = 123;
  f.ul_rate_bps = 456;
  f.blocked = true;
  f.home_routed = true;
  f.home_teid_remote = common::Teid{0xAAA};
  f.home_agg_address = common::Ipv4::from_octets(1, 2, 3, 4);
  f.home_teid_local = common::Teid{0xBBB};
  f.tunneled = false;
  auto round = SessionFlows::deserialize(f.serialize());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), f);
}

}  // namespace
}  // namespace magma::agw
