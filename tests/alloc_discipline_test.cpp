// The allocation-discipline regression wall (DESIGN.md §9), test side.
//
// Two properties guard the pooled hot paths:
//  * Determinism: pooling (inline event closures, freelist pools) must be
//    behavior-invisible. The full LTE attach + traffic scenario, run twice
//    with the same seed — once pooled, once with everything forced to the
//    heap via set_memory_pooling_enabled(false) — must produce identical
//    final metrics and event counts. Any divergence means pool state leaked
//    into simulation behavior.
//  * Allocation-freedom: the steady-state paths the BENCH_host.json wall
//    prices (event schedule→dispatch, interned-label lookup) allocate
//    nothing, proven with the host profiler's allocation accounting rather
//    than inferred from timing.
#include <gtest/gtest.h>

#include <string>

#include "common/pool.h"
#include "core/network.h"
#include "obs/host_profiler.h"
#include "sim/cpu.h"
#include "sim/kernel.h"

namespace magma {
namespace {

class PoolingGuard {
 public:
  PoolingGuard() : was_(common::memory_pooling_enabled()) {}
  ~PoolingGuard() { common::set_memory_pooling_enabled(was_); }

 private:
  bool was_;
};

// Everything observable a scenario run produces: simulated outcomes, traffic
// counters, and the kernel's own event accounting. Note what is absent:
// KernelStats::closure_heap_fallbacks and pool hit/fallback counters are
// *supposed* to differ between pooling modes — they describe host memory
// traffic, not simulation behavior.
struct Snapshot {
  bool attach_success = false;
  sim::Duration attach_latency = 0;
  std::uint32_t ue_addr = 0;
  std::size_t active_sessions = 0;
  std::uint64_t attach_completed = 0;
  std::uint64_t ue_rx_bytes = 0;
  std::uint64_t ue_rx_packets = 0;
  std::uint64_t internet_rx_bytes = 0;
  std::uint64_t session_used_bytes = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t skimmed = 0;
  std::size_t queue_hwm = 0;
  sim::TimePoint end_time = 0;
};

// The integration_attach_test scenario, condensed: S1 setup, provision +
// sync, NAS attach with EPS-AKA, downlink and uplink traffic, usage poll.
Snapshot run_scenario() {
  core::Network net;  // NetworkConfig default: seed 42
  agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
  ran::EnodeB& enb = net.add_enodeb(agw);
  net.run_for(2 * sim::kSecond);

  const agw::SubscriberData sub = net.provision_subscriber();
  net.sync_all_config();
  ran::UeLte& ue = net.add_ue_lte(sub);

  Snapshot snap;
  ue.attach(enb, [&snap](const ran::AttachOutcome& outcome) {
    snap.attach_success = outcome.success;
    snap.attach_latency = outcome.latency;
  });
  net.run_for(20 * sim::kSecond);

  if (ue.ip().has_value()) {
    snap.ue_addr = ue.ip()->addr;
    net.inject_downlink(agw, *ue.ip(), 1400, 100);
    net.run_for(1 * sim::kSecond);
    ue.send_uplink(common::Ipv4::from_octets(8, 8, 8, 8), 443, 1000, 50);
    net.run_for(1 * sim::kSecond);
  }

  agw.sessiond().poll_usage();
  if (const agw::SessionRecord* session = agw.sessiond().find(sub.imsi)) {
    snap.session_used_bytes = session->used_bytes;
  }
  snap.active_sessions = agw.sessiond().active_sessions();
  snap.attach_completed = agw.accessd().stats().attach_completed[0];
  snap.ue_rx_bytes = ue.traffic().rx_bytes;
  snap.ue_rx_packets = ue.traffic().rx_packets;
  snap.internet_rx_bytes = net.internet_rx_bytes();

  const sim::Kernel& k = net.kernel();
  snap.executed_events = k.executed_events();
  snap.scheduled = k.stats().scheduled;
  snap.cancelled = k.stats().cancelled;
  snap.skimmed = k.stats().skimmed;
  snap.queue_hwm = k.stats().queue_hwm;
  snap.end_time = k.now();
  return snap;
}

TEST(AllocDiscipline, SameSeedIdenticalWithPoolingOnAndOff) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(true);
  const Snapshot pooled = run_scenario();
  common::set_memory_pooling_enabled(false);
  const Snapshot heap = run_scenario();

  // The scenario itself worked (a vacuous diff of two failed runs would
  // prove nothing).
  ASSERT_TRUE(pooled.attach_success);
  ASSERT_EQ(pooled.active_sessions, 1u);
  ASSERT_GT(pooled.ue_rx_bytes, 0u);
  ASSERT_GT(pooled.internet_rx_bytes, 0u);

  EXPECT_EQ(pooled.attach_success, heap.attach_success);
  EXPECT_EQ(pooled.attach_latency, heap.attach_latency);
  EXPECT_EQ(pooled.ue_addr, heap.ue_addr);
  EXPECT_EQ(pooled.active_sessions, heap.active_sessions);
  EXPECT_EQ(pooled.attach_completed, heap.attach_completed);
  EXPECT_EQ(pooled.ue_rx_bytes, heap.ue_rx_bytes);
  EXPECT_EQ(pooled.ue_rx_packets, heap.ue_rx_packets);
  EXPECT_EQ(pooled.internet_rx_bytes, heap.internet_rx_bytes);
  EXPECT_EQ(pooled.session_used_bytes, heap.session_used_bytes);
  EXPECT_EQ(pooled.executed_events, heap.executed_events);
  EXPECT_EQ(pooled.scheduled, heap.scheduled);
  EXPECT_EQ(pooled.cancelled, heap.cancelled);
  EXPECT_EQ(pooled.skimmed, heap.skimmed);
  EXPECT_EQ(pooled.queue_hwm, heap.queue_hwm);
  EXPECT_EQ(pooled.end_time, heap.end_time);
}

// The schedule→dispatch cycle in steady state (after the event heap and the
// slot table reach their high-water marks) must not touch the heap at all:
// EventFn stores the closure inline, the slot freelist recycles, the binary
// heap reuses its vector. This is the test-wall twin of
// event_schedule_dispatch_allocs == 0 in BENCH_host.json.
TEST(AllocDiscipline, SteadyStateScheduleDispatchIsAllocationFree) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(true);
  sim::Kernel k;
  std::uint64_t fired = 0;
  // Warmup: grow heap_/slots_ capacity past anything the loop needs.
  for (int i = 0; i < 64; ++i) k.schedule(i, [&fired]() { ++fired; });
  k.run();

  const std::uint64_t before = obs::HostProfiler::process_alloc_count();
  for (int i = 0; i < 1000; ++i) {
    k.schedule(1, [&fired]() { ++fired; });
    k.step();
  }
  const std::uint64_t delta =
      obs::HostProfiler::process_alloc_count() - before;
  EXPECT_EQ(delta, 0u);
  EXPECT_EQ(fired, 1064u);
  EXPECT_EQ(k.stats().closure_heap_fallbacks, 0u);
}

// Hot-path label lookup: once a (service, op) label is interned, re-interning
// it must not allocate — the transparent comparator compares through
// string_views instead of materializing a pair<string,string> key. Proven
// via the host profiler's per-label alloc attribution.
TEST(AllocDiscipline, InternedLabelLookupIsAllocationFree) {
  sim::Kernel k;
  sim::CpuModel cpu(k, sim::CpuConfig{});
  const std::string service = "pipelined";
  const std::string op = "forward_ul";
  const sim::LabelId id = cpu.intern_label(service, op);

  obs::HostProfiler prof;
  prof.install();
  std::uint64_t acc = 0;
  {
    MAGMA_HOST_SCOPE("test", "intern_hot");
    for (int i = 0; i < 1000; ++i) acc += cpu.intern_label(service, op);
  }
  obs::HostProfiler::uninstall();
  EXPECT_EQ(acc, 1000u * id);
  EXPECT_EQ(prof.stats_for("test", "intern_hot").alloc_count, 0u);
  EXPECT_EQ(prof.stats_for("test", "intern_hot").calls, 1u);
}

}  // namespace
}  // namespace magma
