// Durable store semantics: WAL replay, checkpointing, crash recovery,
// serialization, file persistence; state-store snapshot/restore.
#include <gtest/gtest.h>

#include <cstdio>

#include "store/state_store.h"
#include "store/wal_store.h"

namespace magma::store {
namespace {

using common::to_bytes;

TEST(WalStore, PutGetErase) {
  WalStore store;
  store.put("a", to_bytes("1"));
  store.put("b", to_bytes("2"));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get("a").value(), to_bytes("1"));
  EXPECT_FALSE(store.get("missing").has_value());
  store.erase("a");
  EXPECT_FALSE(store.contains("a"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(WalStore, OverwriteKeepsLatest) {
  WalStore store;
  store.put("k", to_bytes("v1"));
  store.put("k", to_bytes("v2"));
  EXPECT_EQ(store.get("k").value(), to_bytes("v2"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(WalStore, EraseMissingIsNoop) {
  WalStore store;
  const std::uint64_t v = store.version();
  store.erase("ghost");
  EXPECT_EQ(store.version(), v);
  EXPECT_EQ(store.wal_records(), 0u);
}

TEST(WalStore, ScanPrefixOrdered) {
  WalStore store;
  store.put("sub/003", to_bytes("c"));
  store.put("sub/001", to_bytes("a"));
  store.put("policy/x", to_bytes("p"));
  store.put("sub/002", to_bytes("b"));
  const auto subs = store.scan("sub/");
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0].first, "sub/001");
  EXPECT_EQ(subs[1].first, "sub/002");
  EXPECT_EQ(subs[2].first, "sub/003");
  EXPECT_EQ(store.scan("nothing/").size(), 0u);
}

TEST(WalStore, CrashRecoveryPreservesState) {
  WalStore store;
  store.put("a", to_bytes("1"));
  store.checkpoint();
  store.put("b", to_bytes("2"));
  store.erase("a");
  store.put("c", to_bytes("3"));

  store.simulate_crash_and_recover();
  EXPECT_FALSE(store.contains("a"));
  EXPECT_EQ(store.get("b").value(), to_bytes("2"));
  EXPECT_EQ(store.get("c").value(), to_bytes("3"));
}

TEST(WalStore, CheckpointCompactsLog) {
  WalStore store;
  for (int i = 0; i < 100; ++i) {
    store.put("k" + std::to_string(i), to_bytes("v"));
  }
  EXPECT_EQ(store.wal_records(), 100u);
  store.checkpoint();
  EXPECT_EQ(store.wal_records(), 0u);
  store.simulate_crash_and_recover();
  EXPECT_EQ(store.size(), 100u);
}

TEST(WalStore, VersionMonotone) {
  WalStore store;
  const std::uint64_t v0 = store.version();
  store.put("a", to_bytes("1"));
  const std::uint64_t v1 = store.version();
  store.erase("a");
  const std::uint64_t v2 = store.version();
  EXPECT_LT(v0, v1);
  EXPECT_LT(v1, v2);
}

TEST(WalStore, SerializeDeserializeRoundTrip) {
  WalStore store;
  store.put("x", to_bytes("1"));
  store.checkpoint();
  store.put("y", to_bytes("2"));

  auto restored = WalStore::deserialize(store.serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().get("x").value(), to_bytes("1"));
  EXPECT_EQ(restored.value().get("y").value(), to_bytes("2"));
  EXPECT_EQ(restored.value().version(), store.version());
}

TEST(WalStore, DeserializeRejectsGarbage) {
  const auto garbage = to_bytes("not a store image");
  EXPECT_FALSE(WalStore::deserialize(garbage).ok());
}

TEST(WalStore, FileRoundTrip) {
  const std::string path = "/tmp/magma_walstore_test.bin";
  WalStore store;
  store.put("persisted", to_bytes("yes"));
  ASSERT_TRUE(store.save_to_file(path).ok());

  auto loaded = WalStore::load_from_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().get("persisted").value(), to_bytes("yes"));
  std::remove(path.c_str());
}

TEST(WalStore, LoadMissingFileFails) {
  EXPECT_EQ(WalStore::load_from_file("/tmp/definitely_missing_49x").code(),
            common::ErrorCode::kNotFound);
}

TEST(StateStore, SnapshotRestoreEquivalence) {
  StateStore store;
  store.put("session/IMSI1", to_bytes("state1"));
  store.put("session/IMSI2", to_bytes("state2"));
  store.put("other", to_bytes("x"));

  auto restored = StateStore::restore(store.snapshot());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored.value() == store);
}

TEST(StateStore, ErasePrefix) {
  StateStore store;
  store.put("s/1", to_bytes("a"));
  store.put("s/2", to_bytes("b"));
  store.put("t/1", to_bytes("c"));
  EXPECT_EQ(store.erase_prefix("s/"), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.contains("t/1"));
}

TEST(StateStore, RestoreRejectsCorruptImage) {
  StateStore store;
  store.put("k", to_bytes("v"));
  common::Bytes image = store.snapshot();
  image.resize(image.size() - 3);  // truncate
  EXPECT_FALSE(StateStore::restore(image).ok());
}

TEST(StateStore, EmptySnapshotRoundTrip) {
  StateStore store;
  auto restored = StateStore::restore(store.snapshot());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().size(), 0u);
}

}  // namespace
}  // namespace magma::store
