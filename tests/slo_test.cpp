// Fleet SLO layer: availability ledger interval accounting, SRE-style
// multi-window burn-rate alerting, downtime-cause attribution, the SLO
// report math, and the end-to-end join over a real backhaul outage.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/network.h"
#include "obs/slo/attribution.h"
#include "obs/slo/availability.h"
#include "obs/slo/slo.h"
#include "orc8r/metricsd.h"
#include "sim/time.h"

namespace magma {
namespace {

using obs::slo::AvailabilityLedger;
using obs::slo::DowntimeCause;
using obs::slo::DowntimeSignals;

// --- AvailabilityLedger ------------------------------------------------------

TEST(AvailabilityLedger, IntervalAccountingAndUptimeRatio) {
  AvailabilityLedger ledger;
  ledger.observe("gw0", 0);
  ledger.record_down("gw0", 100 * sim::kSecond);
  ledger.record_up("gw0", 200 * sim::kSecond);

  ASSERT_NE(ledger.intervals("gw0"), nullptr);
  ASSERT_EQ(ledger.intervals("gw0")->size(), 1u);
  EXPECT_EQ(ledger.intervals("gw0")->front().start, 100 * sim::kSecond);
  EXPECT_EQ(ledger.intervals("gw0")->front().end, 200 * sim::kSecond);
  EXPECT_FALSE(ledger.is_down("gw0"));

  // 100 s down over a 1000 s window = 90% availability.
  EXPECT_DOUBLE_EQ(ledger.downtime_seconds("gw0", 0, 1000 * sim::kSecond),
                   100.0);
  EXPECT_DOUBLE_EQ(ledger.uptime_ratio("gw0", 0, 1000 * sim::kSecond), 0.9);
  // Window clipped to half of the outage sees half the downtime.
  EXPECT_DOUBLE_EQ(
      ledger.downtime_seconds("gw0", 0, 150 * sim::kSecond), 50.0);
}

TEST(AvailabilityLedger, OpenIntervalChargedToWindowEnd) {
  AvailabilityLedger ledger;
  ledger.observe("gw0", 0);
  ledger.record_down("gw0", 600 * sim::kSecond);
  EXPECT_TRUE(ledger.is_down("gw0"));
  EXPECT_DOUBLE_EQ(ledger.downtime_seconds("gw0", 0, 1000 * sim::kSecond),
                   400.0);
  EXPECT_DOUBLE_EQ(ledger.uptime_ratio("gw0", 0, 1000 * sim::kSecond), 0.6);
}

TEST(AvailabilityLedger, BackdatedDownClampsToFirstSeenAndPriorInterval) {
  AvailabilityLedger ledger;
  ledger.observe("gw0", 50 * sim::kSecond);
  // Backdated before first contact: clamped to first_seen.
  ledger.record_down("gw0", 10 * sim::kSecond);
  ledger.record_up("gw0", 100 * sim::kSecond);
  EXPECT_EQ(ledger.intervals("gw0")->front().start, 50 * sim::kSecond);
  // Backdated into the previous interval: clamped to its end.
  ledger.record_down("gw0", 90 * sim::kSecond);
  EXPECT_EQ(ledger.intervals("gw0")->back().start, 100 * sim::kSecond);
  // Double-down is a no-op.
  ledger.record_down("gw0", 300 * sim::kSecond);
  EXPECT_EQ(ledger.intervals("gw0")->size(), 2u);
  EXPECT_EQ(ledger.stats().downs, 2u);
}

TEST(AvailabilityLedger, UptimeRatioClampsWindowToFirstSeen) {
  AvailabilityLedger ledger;
  // Joined the fleet at t=500 s, down 100..200 of usable span 500..1000.
  ledger.observe("gw0", 500 * sim::kSecond);
  ledger.record_down("gw0", 600 * sim::kSecond);
  ledger.record_up("gw0", 700 * sim::kSecond);
  EXPECT_DOUBLE_EQ(ledger.uptime_ratio("gw0", 0, 1000 * sim::kSecond), 0.8);
  // Never-seen gateways read fully available.
  EXPECT_DOUBLE_EQ(ledger.uptime_ratio("nope", 0, 1000 * sim::kSecond), 1.0);
}

TEST(AvailabilityLedger, LabelFindsIntervalByStartTime) {
  AvailabilityLedger ledger;
  ledger.observe("gw0", 0);
  ledger.record_down("gw0", 100 * sim::kSecond);
  ledger.record_up("gw0", 200 * sim::kSecond);
  EXPECT_TRUE(ledger.label("gw0", 100 * sim::kSecond,
                           DowntimeCause::kBackhaul, "transport_resets +3"));
  EXPECT_FALSE(ledger.label("gw0", 999 * sim::kSecond,
                            DowntimeCause::kOverload, ""));
  EXPECT_EQ(ledger.intervals("gw0")->front().cause, DowntimeCause::kBackhaul);
  EXPECT_EQ(ledger.intervals("gw0")->front().detail, "transport_resets +3");
  EXPECT_EQ(ledger.stats().labels, 1u);
}

// --- Burn-rate math and the kBurnRate alert kind -----------------------------

TEST(BurnRate, MathMatchesSreDefinition) {
  // All good: no burn. All bad at a 99.9% objective: burn 1000.
  EXPECT_DOUBLE_EQ(obs::slo::burn_rate(1.0, 0.999), 0.0);
  EXPECT_NEAR(obs::slo::burn_rate(0.0, 0.999), 1000.0, 1e-9);
  // Half bad at 50% objective: burn 1 — budget spent exactly on schedule.
  EXPECT_DOUBLE_EQ(obs::slo::burn_rate(0.5, 0.5), 1.0);
  // Degenerate objective (no budget) never divides by zero.
  EXPECT_DOUBLE_EQ(obs::slo::burn_rate(0.5, 1.0), 0.0);
  // Burn 1 sustained for the whole window consumes the whole budget.
  EXPECT_DOUBLE_EQ(
      obs::slo::budget_consumed(0.5, 0.5, sim::kHour, sim::kHour), 1.0);
  EXPECT_DOUBLE_EQ(
      obs::slo::budget_consumed(0.5, 0.5, sim::kHour, 4 * sim::kHour), 0.25);
}

// Drive a kBurnRate rule with a hand-built SLI series: the slow window must
// gate the fast one (no page on a blip), both-burning fires, and the fast
// window recovering clears.
TEST(BurnRate, MultiWindowFiresAndClears) {
  orc8r::Metricsd metricsd;
  orc8r::AlertRule rule;
  rule.name = "slo_test_burn";
  rule.metric = "sli_up";
  rule.threshold = 14.4;
  rule.kind = orc8r::AlertKind::kBurnRate;
  rule.objective = 0.999;
  metricsd.add_alert_rule(rule);

  const sim::Duration step = 15 * sim::kSecond;
  sim::TimePoint t = 0;
  auto push = [&](double value) {
    metricsd.ingest(orc8r::MetricSample{"gw0", "sli_up", value, t});
    t += step;
  };
  auto firing = [&]() {
    const auto alerts = metricsd.active_alerts();
    return std::any_of(alerts.begin(), alerts.end(),
                       [](const orc8r::ActiveAlert& a) {
                         return a.rule == "slo_test_burn";
                       });
  };

  // An hour of health establishes the slow window.
  for (int i = 0; i < 240; ++i) push(1.0);
  EXPECT_FALSE(firing());

  // One bad sample: fast burn is huge but the slow window barely moved —
  // no page (this is the whole point of the second window).
  push(0.0);
  EXPECT_FALSE(firing());
  for (int i = 0; i < 4; ++i) push(1.0);
  EXPECT_FALSE(firing());

  // A sustained outage: the slow mean crosses once enough zeros accumulate
  // (objective 0.999 → slow burn > 14.4 at ~4 zeros in the hour window),
  // and the fast window is instantly saturated.
  int samples_until_fire = 0;
  for (int i = 0; i < 40 && !firing(); ++i) {
    push(0.0);
    ++samples_until_fire;
  }
  EXPECT_TRUE(firing());
  EXPECT_LE(samples_until_fire, 8);  // pages within ~2 minutes of sim time

  // Recovery: the fast window drains its zeros within fast_window (5 min =
  // 20 samples), clearing the page long before the hour window forgets.
  int samples_until_clear = 0;
  for (int i = 0; i < 40 && firing(); ++i) {
    push(1.0);
    ++samples_until_clear;
  }
  EXPECT_FALSE(firing());
  EXPECT_LE(samples_until_clear, 21);
  EXPECT_GE(metricsd.alerts_fired(), 1u);
}

TEST(BurnRate, RemoveRuleDropsBurnState) {
  orc8r::Metricsd metricsd;
  orc8r::AlertRule rule;
  rule.name = "slo_test_burn";
  rule.metric = "sli_up";
  rule.threshold = 1.0;
  rule.kind = orc8r::AlertKind::kBurnRate;
  rule.objective = 0.9;
  metricsd.add_alert_rule(rule);
  for (int i = 0; i < 10; ++i) {
    metricsd.ingest(
        orc8r::MetricSample{"gw0", "sli_up", 0.0, i * sim::kMinute});
  }
  EXPECT_FALSE(metricsd.active_alerts().empty());
  metricsd.remove_alert_rule("slo_test_burn");
  EXPECT_TRUE(metricsd.active_alerts().empty());
  // Re-adding starts from a clean window: one good sample must not page.
  metricsd.add_alert_rule(rule);
  metricsd.ingest(
      orc8r::MetricSample{"gw0", "sli_up", 1.0, 20 * sim::kMinute});
  EXPECT_TRUE(metricsd.active_alerts().empty());
}

// --- Attribution precedence --------------------------------------------------

TEST(Attribution, BackhaulOutranksErrorEvents) {
  // A backhaul outage ships buffered ERROR events after recovery — the
  // transport evidence must win anyway.
  DowntimeSignals signals;
  signals.transport_resets_growth = 2;
  signals.error_event = true;
  signals.error_source = "sessiond";
  std::string detail;
  EXPECT_EQ(obs::slo::attribute_downtime(signals, &detail),
            DowntimeCause::kBackhaul);
  EXPECT_NE(detail.find("transport_resets +2"), std::string::npos);
}

TEST(Attribution, ServiceCrashFromEventOrCounterGrowth) {
  DowntimeSignals signals;
  signals.error_event = true;
  signals.error_source = "sessiond";
  std::string detail;
  EXPECT_EQ(obs::slo::attribute_downtime(signals, &detail),
            DowntimeCause::kServiceCrash);
  EXPECT_NE(detail.find("sessiond"), std::string::npos);

  DowntimeSignals counters;
  counters.max_service_error_growth = 7;
  counters.error_service = "accessd";
  EXPECT_EQ(obs::slo::attribute_downtime(counters, &detail),
            DowntimeCause::kServiceCrash);
  EXPECT_NE(detail.find("service_errors_accessd +7"), std::string::npos);
}

TEST(Attribution, OverloadFromRejectionsOrRunqShare) {
  DowntimeSignals rejections;
  rejections.overload_rejections_growth = 120;
  std::string detail;
  EXPECT_EQ(obs::slo::attribute_downtime(rejections, &detail),
            DowntimeCause::kOverload);

  DowntimeSignals runq;
  runq.runq_wait_fraction = 0.8;
  EXPECT_EQ(obs::slo::attribute_downtime(runq, &detail),
            DowntimeCause::kOverload);
  // At the threshold exactly: not conclusive.
  runq.runq_wait_fraction = obs::slo::kRunqOverloadFraction;
  EXPECT_EQ(obs::slo::attribute_downtime(runq, &detail),
            DowntimeCause::kUnknown);
  EXPECT_TRUE(detail.empty());
}

// --- Rollup + report formatting ----------------------------------------------

TEST(SloReport, AvailabilityRollupAggregatesFleetRow) {
  AvailabilityLedger ledger;
  ledger.observe("gw0", 0);
  ledger.observe("gw1", 0);
  ledger.record_down("gw0", 100 * sim::kSecond);
  ledger.record_up("gw0", 200 * sim::kSecond);
  ledger.label("gw0", 100 * sim::kSecond, DowntimeCause::kBackhaul, "x");

  const auto rows =
      orc8r::availability_rollup(ledger, 0, 1000 * sim::kSecond);
  ASSERT_EQ(rows.size(), 3u);  // gw0, gw1, FLEET
  EXPECT_EQ(rows[0].gateway_id, "gw0");
  EXPECT_DOUBLE_EQ(rows[0].availability, 0.9);
  EXPECT_EQ(rows[0].intervals, 1u);
  EXPECT_DOUBLE_EQ(
      rows[0].cause_s[static_cast<std::size_t>(DowntimeCause::kBackhaul)],
      100.0);
  EXPECT_EQ(rows[1].gateway_id, "gw1");
  EXPECT_DOUBLE_EQ(rows[1].availability, 1.0);
  EXPECT_EQ(rows[2].gateway_id, "FLEET");
  EXPECT_DOUBLE_EQ(rows[2].availability, 0.95);
  EXPECT_DOUBLE_EQ(rows[2].downtime_s, 100.0);

  const std::string table = orc8r::format_availability(rows);
  EXPECT_NE(table.find("gw0"), std::string::npos);
  EXPECT_NE(table.find("FLEET"), std::string::npos);
  EXPECT_NE(table.find("backhaul 100.0%"), std::string::npos);
}

TEST(SloReport, FormatMarksAlertingRows) {
  std::vector<obs::slo::SloStatus> rows(2);
  rows[0].name = "availability";
  rows[0].objective = 0.999;
  rows[0].sli = 0.9987;
  rows[0].alerting = true;
  rows[1].name = "attach_success";
  rows[1].objective = 0.99;
  const std::string report = obs::slo::format_slo_report(rows);
  EXPECT_NE(report.find("availability"), std::string::npos);
  EXPECT_NE(report.find("[ALERTING]"), std::string::npos);
  // Only the first row alerts.
  EXPECT_EQ(report.find("[ALERTING]"), report.rfind("[ALERTING]"));
}

// --- End-to-end: statusd FSM → ledger → burn alert → attribution join --------

TEST(SloIntegration, BackhaulOutageIsAccountedAlertedAndAttributed) {
  core::NetworkConfig config;
  config.magmad.checkin_interval = 15 * sim::kSecond;
  config.magmad.metrics_interval = 15 * sim::kSecond;
  core::Network net(config);
  agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
  orc8r::Orchestrator& orc8r = net.orchestrator();

  // Default burn-rate rules are installed by the orchestrator itself.
  const auto& rules = orc8r.metrics().alert_rules();
  EXPECT_TRUE(std::any_of(rules.begin(), rules.end(),
                          [](const orc8r::AlertRule& r) {
                            return r.name == "slo_availability_burn" &&
                                   r.kind == orc8r::AlertKind::kBurnRate;
                          }));

  // A healthy half hour, then a 10-minute backhaul cut.
  net.run_for(30 * sim::kMinute);
  const sim::TimePoint cut_at = net.kernel().now();
  net.set_backhaul_up(agw, false);
  net.run_for(10 * sim::kMinute);

  // Mid-outage: statusd marked it unreachable, the ledger holds an open
  // interval, and the availability burn alert is paging.
  EXPECT_EQ(orc8r.statusd().health("gw0"),
            orc8r::GatewayHealth::kUnreachable);
  EXPECT_TRUE(orc8r.statusd().availability().is_down("gw0"));
  {
    const auto alerts = orc8r.metrics().active_alerts();
    EXPECT_TRUE(std::any_of(alerts.begin(), alerts.end(),
                            [](const orc8r::ActiveAlert& a) {
                              return a.rule == "slo_availability_burn" &&
                                     a.gateway_id == "gw0";
                            }));
  }

  // Recovery: the interval closes, the attribution join (after its settle
  // delay) labels it backhaul from the transport counters, and the page
  // clears once the fast window drains.
  net.set_backhaul_up(agw, true);
  net.run_for(12 * sim::kMinute);

  const auto* intervals = orc8r.statusd().availability().intervals("gw0");
  ASSERT_NE(intervals, nullptr);
  ASSERT_EQ(intervals->size(), 1u);
  const obs::slo::DowntimeInterval& interval = intervals->front();
  EXPECT_GE(interval.end, interval.start);
  // The backdated down edge lands within one checkin interval of the cut.
  EXPECT_LE(std::abs(interval.start - cut_at),
            2 * config.magmad.checkin_interval);
  EXPECT_EQ(interval.cause, DowntimeCause::kBackhaul);
  EXPECT_EQ(orc8r.stats().downtime_intervals_labeled, 1u);
  EXPECT_EQ(orc8r.stats().downtime_unattributed, 0u);
  {
    const auto alerts = orc8r.metrics().active_alerts();
    EXPECT_FALSE(std::any_of(alerts.begin(), alerts.end(),
                             [](const orc8r::ActiveAlert& a) {
                               return a.rule == "slo_availability_burn";
                             }));
  }
  // The verdict is also an operator-visible event.
  EXPECT_EQ(orc8r.events_of_type("downtime_attributed").size(), 1u);

  // And the rollup charges roughly the injected 10 minutes to backhaul.
  const auto rows = orc8r.availability_rollup(0, net.kernel().now());
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows.front().gateway_id, "gw0");
  EXPECT_NEAR(rows.front().downtime_s, 600.0, 60.0);
  const double backhaul_s = rows.front().cause_s[static_cast<std::size_t>(
      DowntimeCause::kBackhaul)];
  EXPECT_DOUBLE_EQ(backhaul_s, rows.front().downtime_s);

  // The SLO report reflects the spent budget.
  const auto report = orc8r.slo_report(0, net.kernel().now());
  const auto availability_row =
      std::find_if(report.begin(), report.end(),
                   [](const obs::slo::SloStatus& s) {
                     return s.name == "availability";
                   });
  ASSERT_NE(availability_row, report.end());
  EXPECT_LT(availability_row->sli, 1.0);
  EXPECT_GT(availability_row->burn, 0.0);
}

}  // namespace
}  // namespace magma
