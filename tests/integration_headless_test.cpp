// Headless operation (§3.2): local control keeps working while the
// orchestrator is unreachable; config changes stall until reconnection;
// lossy backhaul degrades nothing that matters locally.
#include <gtest/gtest.h>

#include "core/network.h"

namespace magma {
namespace {

class HeadlessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::NetworkConfig config;
    config.backhaul = sim::satellite_backhaul();  // the hard case
    net_ = std::make_unique<core::Network>(config);
    agw_ = &net_->add_agw(agw::bare_metal_j3160());
    enb_ = &net_->add_enodeb(*agw_);
    net_->run_for(5 * sim::kSecond);
  }

  ran::AttachOutcome attach(ran::UeLte& ue) {
    ran::AttachOutcome outcome;
    bool done = false;
    ue.attach(*enb_, [&](const ran::AttachOutcome& o) {
      outcome = o;
      done = true;
    });
    net_->run_for(20 * sim::kSecond);
    EXPECT_TRUE(done);
    return outcome;
  }

  std::unique_ptr<core::Network> net_;
  agw::AccessGateway* agw_ = nullptr;
  ran::EnodeB* enb_ = nullptr;
};

TEST_F(HeadlessTest, ConfigSyncWorksOverSatelliteBackhaul) {
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  net_->run_for(10 * sim::kSecond);  // satellite RTTs are long
  EXPECT_TRUE(agw_->subscriberdb().get(sub.imsi).has_value());
}

TEST_F(HeadlessTest, AttachSucceedsWhileOrchestratorUnreachable) {
  // Provision and sync while connected.
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  net_->run_for(10 * sim::kSecond);
  ASSERT_TRUE(agw_->subscriberdb().get(sub.imsi).has_value());

  // Cut the backhaul entirely. The cached subscriber profile lets the AGW
  // run the whole attach locally.
  net_->set_backhaul_up(*agw_, false);
  net_->run_for(120 * sim::kSecond);

  ran::UeLte& ue = net_->add_ue_lte(sub);
  const ran::AttachOutcome outcome = attach(ue);
  ASSERT_TRUE(outcome.success) << outcome.failure_reason;

  // Traffic flows; nothing on the user path touches the orchestrator.
  net_->inject_downlink(*agw_, *ue.ip(), 1400, 40);
  net_->run_for(2 * sim::kSecond);
  EXPECT_EQ(ue.traffic().rx_packets, 40u);
}

TEST_F(HeadlessTest, NewSubscribersWaitForReconnection) {
  net_->set_backhaul_up(*agw_, false);
  // Operator adds a subscriber while the AGW is headless.
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  net_->run_for(60 * sim::kSecond);
  // The AGW cannot know about it yet...
  EXPECT_FALSE(agw_->subscriberdb().get(sub.imsi).has_value());
  ran::UeLte& early = net_->add_ue_lte(sub);
  EXPECT_FALSE(attach(early).success);

  // ...but converges after the backhaul returns (periodic magmad sync).
  net_->set_backhaul_up(*agw_, true);
  net_->run_for(2 * sim::kMinute);
  EXPECT_TRUE(agw_->subscriberdb().get(sub.imsi).has_value());
  ran::UeLte& late = net_->add_ue_lte(sub);
  EXPECT_TRUE(attach(late).success);
}

TEST_F(HeadlessTest, MetricsAreBestEffortUnderLoss) {
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  net_->run_for(10 * sim::kSecond);

  // Very lossy (but up) backhaul: some metric reports die, magmad soldiers
  // on, and no control function is harmed.
  net_->set_backhaul_loss(*agw_, 0.30);
  ran::UeLte& ue = net_->add_ue_lte(sub);
  ASSERT_TRUE(attach(ue).success);
  net_->run_for(5 * sim::kMinute);

  const agw::MagmadStats& stats = agw_->magmad().stats();
  EXPECT_GT(stats.metric_reports_sent + stats.metric_reports_lost, 0u);
  // The reliable-channel-backed config/checkin path still works overall.
  EXPECT_GT(stats.checkins_ok, 0u);
}

TEST_F(HeadlessTest, StaleStateTradeoffIsBounded) {
  // §3.2: "state stored in an AGW [may] be stale during times of
  // disconnection, which might allow a UE to temporarily consume resources
  // beyond its quota" — deactivating a subscriber doesn't bite until the
  // next successful sync.
  agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  net_->run_for(10 * sim::kSecond);

  net_->set_backhaul_up(*agw_, false);
  sub.active = false;
  net_->orchestrator().add_subscriber(sub);  // deactivate centrally

  // Headless AGW still serves the (now centrally-deactivated) subscriber.
  ran::UeLte& ue = net_->add_ue_lte(sub);
  ASSERT_TRUE(attach(ue).success);

  // After reconnection and sync, fresh attaches are refused.
  net_->set_backhaul_up(*agw_, true);
  net_->run_for(2 * sim::kMinute);
  ue.detach(false);
  net_->run_for(10 * sim::kSecond);
  ran::UeLte& again = net_->add_ue_lte(sub);
  EXPECT_FALSE(attach(again).success);
}

}  // namespace
}  // namespace magma
