// IP address management: uniqueness, recycling, quarantine, adoption.
#include <gtest/gtest.h>

#include <set>

#include "agw/mobilityd.h"

namespace magma::agw {
namespace {

common::Imsi imsi(std::uint64_t n) {
  return common::Imsi::from_digits(1010000000000ULL + n);
}

TEST(Mobilityd, AllocatesDistinctAddressesFromBlock) {
  Mobilityd mob(IpBlock{common::Ipv4::from_octets(192, 168, 0, 0), 24});
  std::set<std::uint32_t> seen;
  for (std::uint64_t i = 0; i < 50; ++i) {
    auto ip = mob.allocate(imsi(i), 0);
    ASSERT_TRUE(ip.ok());
    EXPECT_TRUE(seen.insert(ip.value().addr).second);
    // Inside the block, not network/broadcast.
    EXPECT_EQ(ip.value().addr >> 8, common::Ipv4::from_octets(192, 168, 0, 0).addr >> 8);
    EXPECT_NE(ip.value().addr & 0xFF, 0u);
  }
  EXPECT_EQ(mob.allocated(), 50u);
}

TEST(Mobilityd, ReallocateSameImsiKeepsAddress) {
  Mobilityd mob(IpBlock{});
  const auto first = mob.allocate(imsi(1), 0).value();
  const auto second = mob.allocate(imsi(1), 0).value();
  EXPECT_EQ(first, second);
  EXPECT_EQ(mob.allocated(), 1u);
}

TEST(Mobilityd, ExhaustionReturnsResourceExhausted) {
  Mobilityd mob(IpBlock{common::Ipv4::from_octets(10, 0, 0, 0), 30});  // 2 hosts
  ASSERT_TRUE(mob.allocate(imsi(1), 0).ok());
  ASSERT_TRUE(mob.allocate(imsi(2), 0).ok());
  EXPECT_EQ(mob.allocate(imsi(3), 0).code(),
            common::ErrorCode::kResourceExhausted);
}

TEST(Mobilityd, QuarantineDelaysReuse) {
  Mobilityd mob(IpBlock{common::Ipv4::from_octets(10, 0, 0, 0), 30},
                30 * sim::kSecond);
  const auto a = mob.allocate(imsi(1), 0).value();
  mob.allocate(imsi(2), 0).value();
  ASSERT_TRUE(mob.release(imsi(1), 0).ok());

  // Immediately after release, the freed address is quarantined.
  EXPECT_FALSE(mob.allocate(imsi(3), 1 * sim::kSecond).ok());
  // After the quarantine it is recycled.
  const auto reused = mob.allocate(imsi(3), 31 * sim::kSecond);
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(reused.value(), a);
}

TEST(Mobilityd, ReleaseUnknownFails) {
  Mobilityd mob(IpBlock{});
  EXPECT_EQ(mob.release(imsi(9), 0).code(), common::ErrorCode::kNotFound);
}

TEST(Mobilityd, LookupAndReverseLookup) {
  Mobilityd mob(IpBlock{});
  const auto ip = mob.allocate(imsi(5), 0).value();
  EXPECT_EQ(mob.lookup(imsi(5)).value(), ip);
  EXPECT_EQ(mob.reverse_lookup(ip).value(), imsi(5));
  EXPECT_FALSE(mob.lookup(imsi(6)).has_value());
  EXPECT_FALSE(mob.reverse_lookup(common::Ipv4{1}).has_value());
}

TEST(Mobilityd, AdoptRestoresBindingAndBlocksFreshReuse) {
  Mobilityd mob(IpBlock{common::Ipv4::from_octets(10, 0, 0, 0), 24});
  const common::Ipv4 taken = common::Ipv4::from_octets(10, 0, 0, 5);
  ASSERT_TRUE(mob.adopt(imsi(1), taken).ok());
  EXPECT_EQ(mob.lookup(imsi(1)).value(), taken);
  // Fresh allocations skip past the adopted host part.
  for (int i = 0; i < 10; ++i) {
    const auto ip = mob.allocate(imsi(static_cast<std::uint64_t>(i + 10)), 0);
    ASSERT_TRUE(ip.ok());
    EXPECT_NE(ip.value(), taken);
  }
}

TEST(Mobilityd, AdoptRejectsOutOfBlockAndConflicts) {
  Mobilityd mob(IpBlock{common::Ipv4::from_octets(10, 0, 0, 0), 24});
  EXPECT_EQ(mob.adopt(imsi(1), common::Ipv4::from_octets(10, 0, 1, 5)).code(),
            common::ErrorCode::kInvalidArgument);
  ASSERT_TRUE(mob.adopt(imsi(1), common::Ipv4::from_octets(10, 0, 0, 5)).ok());
  EXPECT_EQ(mob.adopt(imsi(2), common::Ipv4::from_octets(10, 0, 0, 5)).code(),
            common::ErrorCode::kAlreadyExists);
  // Re-adopting the same binding is idempotent.
  EXPECT_TRUE(mob.adopt(imsi(1), common::Ipv4::from_octets(10, 0, 0, 5)).ok());
}

// Property sweep: allocate/release cycles never hand out a duplicate among
// live allocations, across several block sizes.
class MobilitydChurn : public ::testing::TestWithParam<int> {};

TEST_P(MobilitydChurn, NoLiveDuplicates) {
  const int prefix = GetParam();
  Mobilityd mob(IpBlock{common::Ipv4::from_octets(10, 9, 0, 0),
                        static_cast<std::uint8_t>(prefix)},
                0 /* no quarantine */);
  std::map<std::uint64_t, common::Ipv4> live;
  sim::TimePoint now = 0;
  for (std::uint64_t round = 0; round < 300; ++round) {
    now += sim::kSecond;
    const std::uint64_t id = round % 37;
    if (live.contains(id)) {
      ASSERT_TRUE(mob.release(imsi(id), now).ok());
      live.erase(id);
    } else {
      auto ip = mob.allocate(imsi(id), now);
      if (!ip.ok()) continue;  // small blocks may exhaust transiently
      for (const auto& [other, addr] : live) {
        EXPECT_NE(addr, ip.value()) << "duplicate with " << other;
      }
      live[id] = ip.value();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, MobilitydChurn,
                         ::testing::Values(26, 25, 24));

}  // namespace
}  // namespace magma::agw
