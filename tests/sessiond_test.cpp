// Session & policy management: lifecycle, tier transitions, caps, OCS
// quota, checkpoints.
#include <gtest/gtest.h>

#include "agw/sessiond.h"
#include "net/channel.h"
#include "ocs/ocs.h"

namespace magma::agw {
namespace {

namespace dp = magma::datapath;

const common::Ipv4 kUe = common::Ipv4::from_octets(172, 16, 0, 7);
const common::Ipv4 kServer = common::Ipv4::from_octets(8, 8, 8, 8);

common::Imsi imsi(std::uint64_t n) {
  return common::Imsi::from_digits(1010000000000ULL + n);
}

class SessiondTest : public ::testing::Test {
 protected:
  Sessiond::CreateRequest request(std::uint64_t n, core::Policy policy) {
    Sessiond::CreateRequest req;
    req.imsi = imsi(n);
    req.ue_ip = common::Ipv4{kUe.addr + static_cast<std::uint32_t>(n)};
    req.agw_teid_ul = common::Teid{static_cast<std::uint32_t>(0x100 + n)};
    req.enb_teid_dl = common::Teid{static_cast<std::uint32_t>(0x200 + n)};
    req.enb_address = common::Ipv4::from_octets(10, 100, 0, 1);
    req.policy = std::move(policy);
    return req;
  }

  // Pass `bytes` of downlink through the data plane for session n.
  std::uint64_t offer_downlink(std::uint64_t n, std::uint64_t bytes) {
    const common::Ipv4 ue{kUe.addr + static_cast<std::uint32_t>(n)};
    std::uint64_t forwarded = 0;
    const std::uint32_t payload = 1400;
    const dp::Packet proto = dp::make_udp(kServer, ue, 443, 1000, payload);
    std::uint64_t remaining = bytes;
    while (remaining > 0) {
      dp::PacketBatch batch;
      batch.packet = proto;
      batch.count = std::max<std::uint64_t>(
          1, std::min<std::uint64_t>(remaining / proto.wire_size(), 64));
      auto r = pipelined_.pipeline().process_batch(
          batch, dp::Direction::kDownlink, kernel_.now());
      if (r.verdict == dp::Verdict::kForwarded) forwarded += batch.bytes();
      if (batch.bytes() >= remaining) break;
      remaining -= batch.bytes();
    }
    return forwarded;
  }

  sim::Kernel kernel_;
  Pipelined pipelined_;
  Sessiond sessiond_{kernel_, pipelined_, nullptr};
};

TEST_F(SessiondTest, CreateFindEnd) {
  auto id = sessiond_.create_session(request(1, core::unlimited_policy()));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(sessiond_.active_sessions(), 1u);
  ASSERT_NE(sessiond_.find(imsi(1)), nullptr);
  EXPECT_TRUE(pipelined_.has_session(id.value().value));

  ASSERT_TRUE(sessiond_.end_session(imsi(1)).ok());
  EXPECT_EQ(sessiond_.active_sessions(), 0u);
  EXPECT_FALSE(pipelined_.has_session(id.value().value));
  EXPECT_EQ(sessiond_.end_session(imsi(1)).code(),
            common::ErrorCode::kNotFound);
}

TEST_F(SessiondTest, RecreateReplacesExistingSession) {
  auto first = sessiond_.create_session(request(1, core::unlimited_policy()));
  auto second = sessiond_.create_session(request(1, core::unlimited_policy()));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(sessiond_.active_sessions(), 1u);
  EXPECT_FALSE(pipelined_.has_session(first.value().value));
  EXPECT_TRUE(pipelined_.has_session(second.value().value));
}

TEST_F(SessiondTest, UsagePollingAccumulates) {
  ASSERT_TRUE(sessiond_.create_session(request(1, core::unlimited_policy())).ok());
  offer_downlink(1, 100'000);
  sessiond_.poll_usage();
  const std::uint64_t used1 = sessiond_.find(imsi(1))->used_bytes;
  EXPECT_GT(used1, 50'000u);
  offer_downlink(1, 100'000);
  sessiond_.poll_usage();
  EXPECT_GT(sessiond_.find(imsi(1))->used_bytes, used1);
}

TEST_F(SessiondTest, TierTransitionThrottles) {
  // 10 Mbps until 50 KB, then 1 Mbps (the §2.1 example policy).
  core::Policy policy = core::tiered_policy(10'000'000, 50'000, 1'000'000);
  ASSERT_TRUE(sessiond_.create_session(request(1, policy)).ok());
  const SessionRecord* session = sessiond_.find(imsi(1));
  EXPECT_EQ(session->flows.dl_rate_bps, 10'000'000u);

  offer_downlink(1, 80'000);  // exceed the first tier
  sessiond_.poll_usage();
  session = sessiond_.find(imsi(1));
  EXPECT_EQ(session->flows.dl_rate_bps, 1'000'000u);
  EXPECT_EQ(sessiond_.stats().tier_transitions, 1u);
  // Usage survived the rule reinstall.
  EXPECT_GE(session->used_bytes, 50'000u);
}

TEST_F(SessiondTest, HardCapBlocksSession) {
  core::Policy policy;
  policy.name = "capped";
  policy.charging = core::ChargingMode::kCapped;
  policy.tiers = {core::PolicyTier{0, 0, 60'000}};
  ASSERT_TRUE(sessiond_.create_session(request(1, policy)).ok());

  offer_downlink(1, 100'000);
  sessiond_.poll_usage();
  EXPECT_TRUE(sessiond_.find(imsi(1))->flows.blocked);
  EXPECT_EQ(sessiond_.stats().caps_enforced, 1u);

  // Further traffic is dropped by policy.
  const auto before = pipelined_.pipeline().stats().dropped_by_policy;
  offer_downlink(1, 10'000);
  EXPECT_GT(pipelined_.pipeline().stats().dropped_by_policy, before);
}

TEST_F(SessiondTest, IntervalResetUnblocks) {
  core::Policy policy;
  policy.name = "capped-daily";
  policy.charging = core::ChargingMode::kCapped;
  policy.tiers = {core::PolicyTier{0, 0, 60'000}};
  policy.interval_ns = 10 * sim::kSecond;  // short interval for the test
  ASSERT_TRUE(sessiond_.create_session(request(1, policy)).ok());

  offer_downlink(1, 100'000);
  sessiond_.poll_usage();
  ASSERT_TRUE(sessiond_.find(imsi(1))->flows.blocked);

  kernel_.run_until(11 * sim::kSecond);
  sessiond_.poll_usage();
  EXPECT_FALSE(sessiond_.find(imsi(1))->flows.blocked);
}

TEST_F(SessiondTest, CheckpointRestoreRebuildsDataPlane) {
  ASSERT_TRUE(sessiond_.create_session(request(1, core::unlimited_policy())).ok());
  ASSERT_TRUE(sessiond_.create_session(request(2, core::unlimited_policy())).ok());
  offer_downlink(1, 50'000);
  sessiond_.poll_usage();
  const std::uint64_t used = sessiond_.find(imsi(1))->used_bytes;
  const common::Bytes image = sessiond_.checkpoint();

  // A fresh instance (backup AGW) restores from the image.
  Pipelined pipelined2;
  Sessiond restored(kernel_, pipelined2, nullptr);
  ASSERT_TRUE(restored.restore(image).ok());
  EXPECT_EQ(restored.active_sessions(), 2u);
  EXPECT_EQ(restored.find(imsi(1))->used_bytes, used);
  EXPECT_EQ(pipelined2.session_count(), 2u);

  // Traffic keeps flowing on the restored instance, and usage continues
  // from the checkpointed value, not from zero.
  const common::Ipv4 ue{kUe.addr + 1};
  auto r = pipelined2.pipeline().process(
      dp::make_udp(kServer, ue, 443, 1000, 100), dp::Direction::kDownlink,
      kernel_.now());
  EXPECT_EQ(r.verdict, dp::Verdict::kForwarded);
  restored.poll_usage();
  EXPECT_GT(restored.find(imsi(1))->used_bytes, used);
}

TEST_F(SessiondTest, RestoreRejectsCorruptImage) {
  Pipelined pipelined2;
  Sessiond restored(kernel_, pipelined2, nullptr);
  EXPECT_FALSE(restored.restore(common::to_bytes("garbage")).ok());
}

TEST_F(SessiondTest, UpdateBearerRetargetsDownlink) {
  ASSERT_TRUE(sessiond_.create_session(request(1, core::unlimited_policy())).ok());
  const common::Teid new_teid{0x999};
  const common::Ipv4 new_enb = common::Ipv4::from_octets(10, 100, 0, 2);
  ASSERT_TRUE(sessiond_.update_bearer(imsi(1), new_teid, new_enb).ok());

  auto r = pipelined_.pipeline().process(
      dp::make_udp(kServer, common::Ipv4{kUe.addr + 1}, 443, 1000, 100),
      dp::Direction::kDownlink, 0);
  ASSERT_EQ(r.verdict, dp::Verdict::kForwarded);
  ASSERT_TRUE(r.packet.gtpu.has_value());
  EXPECT_EQ(r.packet.gtpu->teid, new_teid);
  EXPECT_EQ(r.packet.outer_ip->dst, new_enb);
}

// --- OCS quota ------------------------------------------------------------------

class SessiondOcsTest : public ::testing::Test {
 protected:
  SessiondOcsTest() {
    ocs_.bind(*server_node_);
    sessiond_.set_ocs(client_node_.get());
  }

  Sessiond::CreateRequest request(std::uint64_t n, std::uint64_t quota) {
    Sessiond::CreateRequest req;
    req.imsi = imsi(n);
    req.ue_ip = common::Ipv4{kUe.addr + static_cast<std::uint32_t>(n)};
    req.agw_teid_ul = common::Teid{static_cast<std::uint32_t>(0x100 + n)};
    req.enb_teid_dl = common::Teid{static_cast<std::uint32_t>(0x200 + n)};
    req.enb_address = common::Ipv4::from_octets(10, 100, 0, 1);
    req.policy = core::quota_billed_policy(quota);
    return req;
  }

  std::uint64_t offer_downlink(std::uint64_t n, std::uint64_t bytes) {
    const common::Ipv4 ue{kUe.addr + static_cast<std::uint32_t>(n)};
    dp::PacketBatch batch;
    batch.packet = dp::make_udp(kServer, ue, 443, 1000, 1400);
    batch.count = bytes / batch.packet.wire_size();
    auto r = pipelined_.pipeline().process_batch(
        batch, dp::Direction::kDownlink, kernel_.now());
    return r.verdict == dp::Verdict::kForwarded ? batch.bytes() : 0;
  }

  sim::Kernel kernel_;
  sim::Rng rng_{17};
  net::DuplexLink link_{kernel_, rng_, sim::lan_link()};
  net::ReliablePair channels_ = net::make_reliable_pair(kernel_, link_);
  std::unique_ptr<rpc::RpcNode> server_node_ =
      std::make_unique<rpc::RpcNode>(kernel_, *channels_.a, "ocs-server");
  std::unique_ptr<rpc::RpcNode> client_node_ =
      std::make_unique<rpc::RpcNode>(kernel_, *channels_.b, "ocs-client");
  ocs::Ocs ocs_;
  Pipelined pipelined_;
  Sessiond sessiond_{kernel_, pipelined_, nullptr};
};

TEST_F(SessiondOcsTest, QuotaGrantedAtSessionStart) {
  ocs_.create_account(imsi(1), 10 << 20);
  ASSERT_TRUE(sessiond_.create_session(request(1, 1 << 20)).ok());
  kernel_.run_until(kernel_.now() + sim::kSecond);
  EXPECT_EQ(sessiond_.find(imsi(1))->quota_granted, 1u << 20);
  EXPECT_EQ(ocs_.account(imsi(1))->outstanding_bytes, 1u << 20);
}

TEST_F(SessiondOcsTest, QuotaToppedUpBeforeExhaustion) {
  ocs_.create_account(imsi(1), 10 << 20);
  ASSERT_TRUE(sessiond_.create_session(request(1, 1 << 20)).ok());
  kernel_.run_until(kernel_.now() + sim::kSecond);

  // Consume ~90% of the first grant; the poll should request a top-up.
  offer_downlink(1, (1 << 20) * 9 / 10);
  sessiond_.poll_usage();
  kernel_.run_until(kernel_.now() + sim::kSecond);
  EXPECT_GE(sessiond_.find(imsi(1))->quota_granted, 2u << 20);
}

TEST_F(SessiondOcsTest, EmptyBalanceBlocksSession) {
  ocs_.create_account(imsi(1), 1 << 20);  // exactly one grant
  ASSERT_TRUE(sessiond_.create_session(request(1, 1 << 20)).ok());
  kernel_.run_until(kernel_.now() + sim::kSecond);

  // Burn through the entire grant, then some.
  offer_downlink(1, 1 << 20);
  offer_downlink(1, 1 << 20);
  sessiond_.poll_usage();
  kernel_.run_until(kernel_.now() + sim::kSecond);
  sessiond_.poll_usage();
  kernel_.run_until(kernel_.now() + sim::kSecond);

  EXPECT_TRUE(sessiond_.find(imsi(1))->quota_denied);
  EXPECT_TRUE(sessiond_.find(imsi(1))->flows.blocked);
  EXPECT_GE(sessiond_.stats().quota_denials, 1u);
}

TEST_F(SessiondOcsTest, UnusedQuotaReturnedAtSessionEnd) {
  ocs_.create_account(imsi(1), 10 << 20);
  ASSERT_TRUE(sessiond_.create_session(request(1, 1 << 20)).ok());
  kernel_.run_until(kernel_.now() + sim::kSecond);

  const std::uint64_t used = offer_downlink(1, 200'000);
  ASSERT_GT(used, 0u);
  sessiond_.poll_usage();
  ASSERT_TRUE(sessiond_.end_session(imsi(1)).ok());
  kernel_.run_until(kernel_.now() + sim::kSecond);

  const ocs::OcsAccount* account = ocs_.account(imsi(1));
  ASSERT_NE(account, nullptr);
  EXPECT_EQ(account->outstanding_bytes, 0u);
  // Balance = initial − actual usage.
  EXPECT_NEAR(static_cast<double>(account->balance_bytes),
              static_cast<double>((10 << 20) - used), 2000.0);
  EXPECT_EQ(account->consumed_bytes, used);
}

}  // namespace
}  // namespace magma::agw
