// AccessGateway assembly: profiles, user-plane CPU accounting and overload,
// telemetry snapshots, checkpoint format.
#include <gtest/gtest.h>

#include "agw/agw.h"

namespace magma::agw {
namespace {

namespace dp = magma::datapath;

TEST(AgwProfile, PaperHardwareProfiles) {
  const AgwProfile bare = bare_metal_j3160();
  EXPECT_EQ(bare.cpu.cores, 4);
  EXPECT_DOUBLE_EQ(bare.cpu.speed_ghz, 1.6);
  EXPECT_EQ(bare.accessd.workers, 1);  // the Figure-6 MME bottleneck

  const AgwProfile vm = virtual_xeon(4);
  EXPECT_EQ(vm.cpu.cores, 4);
  EXPECT_DOUBLE_EQ(vm.cpu.speed_ghz, 2.6);
  EXPECT_EQ(vm.accessd.workers, 3);  // ~16 attaches/s (§4.2)

  const AgwProfile pinned = virtual_xeon(8, 6);
  EXPECT_EQ(pinned.cpu.user_plane_cores, 6);
  EXPECT_EQ(pinned.accessd.workers, 2);
}

class AgwTest : public ::testing::Test {
 protected:
  AgwTest()
      : agw_(kernel_, common::GatewayId{"gw-test"}, virtual_xeon(2),
             sim::Rng(9)) {}

  // Install a session directly at the data plane so user-plane entry
  // points have something to match.
  void install_session(common::Ipv4 ue) {
    SessionFlows f;
    f.cookie = 1;
    f.ue_ip = ue;
    f.agw_teid_ul = common::Teid{0x10};
    f.enb_teid_dl = common::Teid{0x20};
    f.enb_address = common::Ipv4::from_octets(10, 100, 0, 1);
    ASSERT_TRUE(agw_.pipelined().install_session(f, kernel_.now()).ok());
  }

  sim::Kernel kernel_;
  AccessGateway agw_;
};

TEST_F(AgwTest, IngressChargesUserPlaneCpuAndForwards) {
  const common::Ipv4 ue = common::Ipv4::from_octets(172, 16, 0, 9);
  install_session(ue);

  std::vector<std::pair<std::uint32_t, std::uint64_t>> egressed;
  agw_.set_egress([&](std::uint32_t port, dp::PacketBatch batch) {
    egressed.emplace_back(port, batch.count);
  });

  dp::PacketBatch batch;
  batch.packet = dp::make_udp(common::Ipv4::from_octets(8, 8, 8, 8), ue, 443,
                              40000, 1000);
  batch.count = 32;
  agw_.ingress_from_internet(batch);
  // The AGW's periodic service loops reschedule forever; bound the run.
  kernel_.run_until(kernel_.now() + 10 * sim::kSecond);

  ASSERT_EQ(egressed.size(), 1u);
  EXPECT_EQ(egressed[0].first, dp::kPortRan);
  EXPECT_EQ(egressed[0].second, 32u);
  EXPECT_EQ(agw_.user_plane_stats().forwarded_packets, 32u);
  // CPU time was charged to the user class: 32 * 4.85e-5 ref-s.
  EXPECT_GT(agw_.cpu().stats().busy_ns[1], 0);
  EXPECT_EQ(agw_.cpu().stats().busy_ns[0], 0);
}

TEST_F(AgwTest, OverloadDropsBeyondQueueBound) {
  const common::Ipv4 ue = common::Ipv4::from_octets(172, 16, 0, 9);
  install_session(ue);
  // Flood far beyond what the CPU can drain plus the queue bound.
  const std::size_t queue_max = agw_.profile().user_queue_max;
  for (std::size_t i = 0; i < queue_max + 500; ++i) {
    dp::PacketBatch batch;
    batch.packet = dp::make_udp(common::Ipv4::from_octets(8, 8, 8, 8), ue,
                                443, 40000, 1000);
    batch.count = 1;
    agw_.ingress_from_internet(batch);
  }
  EXPECT_GT(agw_.user_plane_stats().dropped_overload_bytes, 0u);
  kernel_.run_until(kernel_.now() + 60 * sim::kSecond);
  // Conservation in packets (byte counters differ across the tunnel push):
  // every offered packet was either forwarded or dropped at the queue.
  const std::uint64_t per_batch_bytes =
      dp::make_udp(common::Ipv4::from_octets(8, 8, 8, 8), ue, 443, 40000,
                   1000)
          .wire_size();
  const std::uint64_t dropped_packets =
      agw_.user_plane_stats().dropped_overload_bytes / per_batch_bytes;
  EXPECT_EQ(agw_.user_plane_stats().forwarded_packets + dropped_packets,
            queue_max + 500);
}

TEST_F(AgwTest, TelemetrySnapshotShape) {
  const auto samples = agw_.telemetry_snapshot();
  ASSERT_GE(samples.size(), 5u);
  bool saw_sessions = false;
  for (const auto& sample : samples) {
    EXPECT_EQ(sample.gateway_id, "gw-test");
    if (sample.name == "active_sessions") saw_sessions = true;
  }
  EXPECT_TRUE(saw_sessions);
}

TEST_F(AgwTest, ForwardedBytesDeltaResetsBetweenSnapshots) {
  const common::Ipv4 ue = common::Ipv4::from_octets(172, 16, 0, 9);
  install_session(ue);
  agw_.set_egress([](std::uint32_t, dp::PacketBatch) {});

  dp::PacketBatch batch;
  batch.packet = dp::make_udp(common::Ipv4::from_octets(8, 8, 8, 8), ue, 443,
                              40000, 1000);
  batch.count = 10;
  agw_.ingress_from_internet(batch);
  kernel_.run_until(kernel_.now() + 10 * sim::kSecond);

  auto find_delta = [](const std::vector<orc8r::MetricSample>& samples) {
    for (const auto& s : samples) {
      if (s.name == "forwarded_bytes_delta") return s.value;
    }
    return -1.0;
  };
  const double first = find_delta(agw_.telemetry_snapshot());
  EXPECT_GT(first, 0);
  // No traffic since: the delta goes back to zero (it is a delta, not a
  // cumulative counter).
  EXPECT_DOUBLE_EQ(find_delta(agw_.telemetry_snapshot()), 0);
}

TEST_F(AgwTest, CheckpointRoundTripsThroughFreshInstance) {
  // Populate some cached config + a session.
  SubscriberData sub;
  sub.imsi = common::Imsi::from_digits(1010000000042ULL);
  agw_.subscriberdb().upsert(sub);
  install_session(common::Ipv4{agw_.profile().ip_block.base.addr + 5});

  Sessiond::CreateRequest req;
  req.imsi = sub.imsi;
  req.ue_ip = common::Ipv4{agw_.profile().ip_block.base.addr + 7};
  req.agw_teid_ul = common::Teid{0x99};
  req.enb_teid_dl = common::Teid{0x98};
  req.enb_address = common::Ipv4::from_octets(10, 100, 0, 1);
  req.policy = core::unlimited_policy();
  ASSERT_TRUE(agw_.sessiond().create_session(req).ok());

  const common::Bytes image = agw_.checkpoint();
  AccessGateway backup(kernel_, common::GatewayId{"gw-backup"},
                       virtual_xeon(2), sim::Rng(10));
  ASSERT_TRUE(backup.restore(image).ok());
  EXPECT_TRUE(backup.subscriberdb().get(sub.imsi).has_value());
  EXPECT_EQ(backup.sessiond().active_sessions(), 1u);
  EXPECT_EQ(backup.mobilityd().lookup(sub.imsi).value(), req.ue_ip);
  // The backup adopted the failed instance's address block wholesale.
  EXPECT_EQ(backup.profile().ip_block.base, agw_.profile().ip_block.base);
}

TEST_F(AgwTest, RestoreGarbageFailsCleanly) {
  EXPECT_FALSE(agw_.restore(common::to_bytes("nonsense")).ok());
  EXPECT_FALSE(agw_.restore({}).ok());
}

}  // namespace
}  // namespace magma::agw
