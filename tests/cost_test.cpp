// Cost model: the paper's Table 2/3 arithmetic and the scale-down claim.
#include <gtest/gtest.h>

#include "cost/cost_model.h"

namespace magma::cost {
namespace {

TEST(CostModel, Table2LineItems) {
  const BillOfMaterials bom = typical_site_capex();
  // 3 eNodeBs at $4000, 1 AGW at $450, 3 accessory kits at $450.
  EXPECT_DOUBLE_EQ(bom.total(), 12000 + 450 + 1350);
  // AGW is under 3% of the active-equipment cost (§4.1).
  EXPECT_LT(450.0 / bom.total(), 0.035);
}

TEST(CostModel, Table3ComparisonMatchesPaper) {
  const CostComparison cmp = accessparks_comparison();
  EXPECT_DOUBLE_EQ(cmp.traditional_usd, 16350);
  EXPECT_DOUBLE_EQ(cmp.magma_usd, 9380);
  EXPECT_DOUBLE_EQ(cmp.savings_usd(), 6970);
  // "-43%" — the paper rounds 42.6%.
  EXPECT_NEAR(cmp.savings_fraction(), 0.43, 0.01);
}

TEST(CostModel, Table3LargestSavingIsEngineering) {
  // §4.3.1: the reduction is "largely driven by a reduction in support
  // costs and engineering time".
  const auto traditional = accessparks_traditional();
  const auto magma = accessparks_magma();
  double best_saving = 0;
  std::string best_item;
  for (std::size_t i = 0; i < traditional.items.size(); ++i) {
    const double saving =
        traditional.items[i].total() - magma.items[i].total();
    if (saving > best_saving) {
      best_saving = saving;
      best_item = traditional.items[i].item;
    }
  }
  EXPECT_EQ(best_item, "LTE Eng.");
  EXPECT_DOUBLE_EQ(best_saving, 4670);
}

TEST(CostModel, ScaleDownCrossover) {
  // Magma should be dramatically cheaper per site at small scale (§2.2:
  // traditional cores "do not scale down") and remain competitive at large
  // scale.
  const CoreCostModel model;
  EXPECT_GT(traditional_per_site_cost(model, 1),
            10 * magma_per_site_cost(model, 1) / 3);
  EXPECT_GT(traditional_per_site_cost(model, 5),
            magma_per_site_cost(model, 5));
  // Per-site cost decreases monotonically with scale for both.
  for (int sites : {1, 2, 5, 10, 50, 100}) {
    EXPECT_GE(traditional_per_site_cost(model, sites),
              traditional_per_site_cost(model, sites * 2));
    EXPECT_GE(magma_per_site_cost(model, sites),
              magma_per_site_cost(model, sites * 2));
  }
}

TEST(CostModel, TableFormatting) {
  const std::string table = typical_site_capex().to_table();
  EXPECT_NE(table.find("LTE eNodeB"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  EXPECT_NE(table.find("13800"), std::string::npos);
}

TEST(CostModel, ZeroSitesIsSafe) {
  const CoreCostModel model;
  EXPECT_DOUBLE_EQ(traditional_per_site_cost(model, 0), 0);
  EXPECT_DOUBLE_EQ(magma_per_site_cost(model, 0), 0);
}

}  // namespace
}  // namespace magma::cost
