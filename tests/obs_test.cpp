// Observability primitives: tracer spans/propagation, latency histograms,
// structured events, and the Chrome trace_event exporter.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/events.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "sim/kernel.h"

namespace magma::obs {
namespace {

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, RootSpanStartsFreshTrace) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const TraceContext a = tracer.begin("a", "svc", "node");
  const TraceContext b = tracer.begin("b", "svc", "node");
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a.trace_id, b.trace_id);  // no current context: distinct traces
  tracer.end(a);
  tracer.end(b);
  EXPECT_EQ(tracer.finished().size(), 2u);
}

TEST(Tracer, ScopeMakesImplicitParent) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const TraceContext root = tracer.begin("root", "svc", "node");
  {
    const Tracer::Scope scope(&tracer, root);
    EXPECT_EQ(tracer.current().span_id, root.span_id);
    const TraceContext child = tracer.begin("child", "svc", "node");
    EXPECT_EQ(child.trace_id, root.trace_id);
    tracer.end(child);
  }
  EXPECT_FALSE(tracer.current().valid());
  tracer.end(root);

  const auto spans = tracer.trace_spans(root.trace_id);
  ASSERT_EQ(spans.size(), 2u);
  // Start-ordered: root first, child parented on it.
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[1].parent_span_id, root.span_id);
}

TEST(Tracer, ExplicitParentCrossesScopes) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const TraceContext root = tracer.begin("root", "svc", "a");
  const TraceContext remote = tracer.begin("remote", "svc", "b",
                                           SpanKind::kServer, root);
  EXPECT_EQ(remote.trace_id, root.trace_id);
  tracer.end(remote);
  tracer.end(root);
  EXPECT_EQ(tracer.trace_spans(root.trace_id).size(), 2u);
}

TEST(Tracer, SpanTimesComeFromKernel) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  TraceContext span{};
  kernel.schedule(10 * sim::kMillisecond,
                  [&]() { span = tracer.begin("op", "svc", "node"); });
  kernel.schedule(25 * sim::kMillisecond, [&]() { tracer.end(span); });
  kernel.run_until(sim::kSecond);
  ASSERT_EQ(tracer.finished().size(), 1u);
  const SpanRecord& rec = tracer.finished().front();
  EXPECT_EQ(rec.start, 10 * sim::kMillisecond);
  EXPECT_EQ(rec.duration(), 15 * sim::kMillisecond);
}

TEST(Tracer, TagsAttachOnlyToOpenSpans) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const TraceContext span = tracer.begin("op", "svc", "node");
  tracer.tag(span, "k", "v");
  tracer.end(span);
  tracer.tag(span, "late", "ignored");
  tracer.end(span);  // double-end: no-op
  ASSERT_EQ(tracer.finished().size(), 1u);
  const SpanRecord& rec = tracer.finished().front();
  ASSERT_EQ(rec.tags.size(), 1u);
  EXPECT_EQ(rec.tags[0].first, "k");
}

TEST(Tracer, FinishHooksSeeEverySpanAndRetentionDropsOldest) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  tracer.set_retention(2);
  int hook_calls = 0;
  const std::uint64_t id =
      tracer.add_finish_hook([&](const SpanRecord&) { ++hook_calls; });
  for (int i = 0; i < 5; ++i) {
    tracer.end(tracer.begin("op" + std::to_string(i), "svc", "node"));
  }
  EXPECT_EQ(hook_calls, 5);
  EXPECT_EQ(tracer.finished().size(), 2u);  // ring keeps the newest two
  EXPECT_EQ(tracer.finished().back().name, "op4");
  EXPECT_EQ(tracer.spans_dropped(), 3u);
  tracer.remove_finish_hook(id);
  tracer.end(tracer.begin("after", "svc", "node"));
  EXPECT_EQ(hook_calls, 5);
}

TEST(Tracer, NullSafeHelpers) {
  const TraceContext ctx = begin_span(nullptr, "op", "svc", "node");
  EXPECT_FALSE(ctx.valid());
  end_span(nullptr, ctx);                    // must not crash
  tag_span(nullptr, ctx, "k", "v");          // must not crash
  EXPECT_FALSE(current_context(nullptr).valid());
  const Tracer::Scope scope(nullptr, ctx);   // must not crash
}

TEST(Tracer, SpanLinksRecordCausallyRelatedTraces) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  // Three independent traces (batched events); one shipping span links them.
  const TraceContext e0 = tracer.begin("attach", "accessd", "gw0");
  const TraceContext e1 = tracer.begin("detach", "accessd", "gw0");
  tracer.end(e0);
  tracer.end(e1);

  const TraceContext ship = tracer.begin("ship_events", "magmad", "gw0");
  tracer.link(ship, e0);
  tracer.link(ship, e1);
  tracer.link(ship, TraceContext{});   // invalid target: no-op
  tracer.link(TraceContext{}, e0);     // invalid span: no-op
  link_span(nullptr, ship, e0);        // null-safe helper
  tracer.end(ship);
  tracer.link(ship, e0);  // closed span: no-op

  const auto spans = tracer.trace_spans(ship.trace_id);
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].links.size(), 2u);
  EXPECT_EQ(spans[0].links[0].trace_id, e0.trace_id);
  EXPECT_EQ(spans[0].links[0].span_id, e0.span_id);
  EXPECT_EQ(spans[0].links[1].trace_id, e1.trace_id);
}

TEST(Tracer, ErrorTagPinsTraceAgainstEviction) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  tracer.set_retention(3);

  const TraceContext failed = tracer.begin("attach", "accessd", "gw0");
  tracer.tag(failed, "error", "auth rejected");
  tracer.end(failed);
  EXPECT_TRUE(tracer.trace_pinned(failed.trace_id));

  // A flood of healthy spans evicts around the pinned failure trace.
  for (int i = 0; i < 10; ++i) {
    tracer.end(tracer.begin("ok" + std::to_string(i), "svc", "gw0"));
  }
  EXPECT_EQ(tracer.finished().size(), 3u);
  ASSERT_EQ(tracer.trace_spans(failed.trace_id).size(), 1u);
  EXPECT_TRUE(tracer.trace_spans(failed.trace_id)[0].error);
  EXPECT_EQ(tracer.finished().back().name, "ok9");
}

TEST(Tracer, PinCapReleasesOldestPinFirst) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  tracer.set_max_pinned_traces(2);
  TraceContext first{};
  for (int i = 0; i < 3; ++i) {
    const TraceContext span = tracer.begin("op", "svc", "gw0");
    if (i == 0) first = span;
    tracer.tag(span, "error", "boom");
    tracer.end(span);
  }
  EXPECT_EQ(tracer.pinned_traces(), 2u);
  EXPECT_FALSE(tracer.trace_pinned(first.trace_id));
}

TEST(Tracer, AddWaitAccumulatesOnOpenSpansOnly) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const TraceContext span = tracer.begin("op", "svc", "gw0");
  tracer.add_wait(span, WaitState::kCpu, 10);
  tracer.add_wait(span, WaitState::kCpu, 5);
  tracer.add_wait(span, WaitState::kRunq, -3);  // non-positive: no-op
  tracer.add_wait(TraceContext{}, WaitState::kCpu, 5);  // invalid: no-op
  tracer.end(span);
  tracer.add_wait(span, WaitState::kTimer, 7);  // closed: no-op
  add_span_wait(nullptr, span, WaitState::kCpu, 5);  // null-safe helper

  ASSERT_EQ(tracer.finished().size(), 1u);
  const SpanRecord& rec = tracer.finished()[0];
  EXPECT_EQ(rec.wait(WaitState::kCpu), 15);
  EXPECT_EQ(rec.wait(WaitState::kRunq), 0);
  EXPECT_EQ(rec.wait(WaitState::kTimer), 0);
}

TEST(Tracer, SamplerPinsAreSeparateFromErrorPins) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const TraceContext span = tracer.begin("op", "svc", "gw0");
  tracer.tag(span, "error", "boom");
  tracer.end(span);
  ASSERT_TRUE(tracer.error_pinned(span.trace_id));

  // A sampler pin on the same trace: releasing it leaves the error pin.
  tracer.pin(span.trace_id);
  EXPECT_EQ(tracer.tail_pinned_traces(), 1u);
  tracer.unpin(span.trace_id);
  EXPECT_EQ(tracer.tail_pinned_traces(), 0u);
  EXPECT_TRUE(tracer.error_pinned(span.trace_id));
  EXPECT_TRUE(tracer.trace_pinned(span.trace_id));

  // A pure sampler pin protects against eviction without an error anywhere.
  tracer.set_retention(2);
  const TraceContext kept = tracer.begin("kept", "svc", "gw0");
  tracer.end(kept);
  tracer.pin(kept.trace_id);
  EXPECT_FALSE(tracer.error_pinned(kept.trace_id));
  for (int i = 0; i < 6; ++i) {
    tracer.end(tracer.begin("flood", "svc", "gw0"));
  }
  EXPECT_FALSE(tracer.trace_spans(kept.trace_id).empty());
  tracer.pin(0);  // invalid trace id: no-op
  EXPECT_EQ(tracer.tail_pinned_traces(), 1u);
}

TEST(Tracer, RetentionBoundWinsWhenEverythingIsPinned) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  tracer.set_retention(2);
  for (int i = 0; i < 5; ++i) {
    const TraceContext span = tracer.begin("op" + std::to_string(i),
                                           "svc", "gw0");
    tracer.tag(span, "error", "boom");
    tracer.end(span);
  }
  // All finished spans belong to pinned traces; the ring bound still holds.
  EXPECT_EQ(tracer.finished().size(), 2u);
  EXPECT_EQ(tracer.finished().back().name, "op4");
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, CountSumMean) {
  Histogram h;
  h.observe(0.010);
  h.observe(0.020);
  h.observe(0.030);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.060);
  EXPECT_DOUBLE_EQ(h.mean(), 0.020);
}

TEST(Histogram, QuantileBracketsObservations) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.observe(0.010);  // all in one bucket
  const double p50 = h.quantile(0.5);
  // Geometric interpolation inside the bucket: the answer stays within the
  // bucket that holds 10 ms (log-spaced, 5/decade ⇒ ≤ 59% width).
  EXPECT_GT(p50, 0.006);
  EXPECT_LT(p50, 0.016);
}

TEST(Histogram, QuantileOrdersMixedObservations) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(0.001);
  for (int i = 0; i < 10; ++i) h.observe(1.0);
  EXPECT_LT(h.quantile(0.5), 0.01);
  EXPECT_GT(h.quantile(0.99), 0.5);
  EXPECT_DOUBLE_EQ(Histogram().quantile(0.5), 0.0);  // empty
}

TEST(Histogram, MergeRequiresMatchingLayout) {
  Histogram a;
  Histogram b;
  a.observe(0.1);
  b.observe(0.2);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 2u);
  Histogram other(Histogram::log_bounds(1e-3, 10.0, 3));
  EXPECT_FALSE(a.merge(other));
  EXPECT_EQ(a.count(), 2u);  // untouched on mismatch
}

TEST(Histogram, AssignValidatesLayout) {
  Histogram h;
  EXPECT_TRUE(h.assign({1.0, 2.0}, {1, 2, 3}, 6.0));
  EXPECT_EQ(h.count(), 6u);
  EXPECT_FALSE(h.assign({1.0, 2.0}, {1, 2}, 0.0));      // counts too short
  EXPECT_FALSE(h.assign({2.0, 1.0}, {1, 2, 3}, 0.0));   // unsorted bounds
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

TEST(EventBuffer, DropsOldestOnOverflow) {
  EventBuffer buffer(2);
  for (int i = 0; i < 4; ++i) {
    Event e;
    e.type = "e" + std::to_string(i);
    buffer.push(std::move(e));
  }
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.pushed(), 4u);
  EXPECT_EQ(buffer.dropped(), 2u);
  const auto taken = buffer.take(10);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].type, "e2");  // oldest two were dropped
  EXPECT_EQ(taken[1].type, "e3");
  EXPECT_TRUE(buffer.empty());
}

TEST(EventBuffer, TakeRespectsMaxCount) {
  EventBuffer buffer(10);
  for (int i = 0; i < 5; ++i) buffer.push(Event{});
  EXPECT_EQ(buffer.take(3).size(), 3u);
  EXPECT_EQ(buffer.size(), 2u);
}

TEST(EventReport, CodecRoundTrip) {
  std::vector<Event> events(2);
  events[0].time = 123 * sim::kMillisecond;
  events[0].gateway_id = "gw0";
  events[0].type = "attach_success";
  events[0].source = "lte_frontend";
  events[0].message = "IMSI001010000000001";
  events[0].severity = EventSeverity::kInfo;
  events[0].trace = TraceContext{77, 78};
  events[1].severity = EventSeverity::kError;

  auto decoded = decode_event_report(encode_event_report(events));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 2u);
  EXPECT_EQ(decoded.value()[0].time, 123 * sim::kMillisecond);
  EXPECT_EQ(decoded.value()[0].type, "attach_success");
  EXPECT_EQ(decoded.value()[0].trace.trace_id, 77u);
  EXPECT_EQ(decoded.value()[0].trace.span_id, 78u);
  EXPECT_EQ(decoded.value()[1].severity, EventSeverity::kError);
}

TEST(EventReport, CodecRejectsGarbage) {
  EXPECT_FALSE(decode_event_report(common::to_bytes("nope")).ok());
}

// ---------------------------------------------------------------------------
// Chrome trace export — validated with a real (minimal) JSON parser.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* s) {
    const std::size_t n = std::string(s).size();
    if (text_.compare(pos_, n, s) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      std::string s;
      if (!string(s)) return false;
      out.v = s;
      return true;
    }
    if (literal("true")) { out.v = true; return true; }
    if (literal("false")) { out.v = false; return true; }
    if (literal("null")) { out.v = nullptr; return true; }
    return number(out);
  }
  bool string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 >= text_.size()) return false;
            out += '?';  // escaped control char: content irrelevant here
            pos_ += 4;
            break;
          default: out += text_[pos_];
        }
      } else {
        out += text_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.v = std::stod(text_.substr(start, pos_ - start));
    return true;
  }
  bool array(JsonValue& out) {
    ++pos_;  // '['
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out.v = arr;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(element)) return false;
      arr->push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; break; }
      return false;
    }
    out.v = arr;
    return true;
  }
  bool object(JsonValue& out) {
    ++pos_;  // '{'
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out.v = obj;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue val;
      if (!value(val)) return false;
      (*obj)[key] = std::move(val);  // duplicate keys: last one wins
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; break; }
      return false;
    }
    out.v = obj;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(ChromeTrace, ExportRoundTripsThroughJsonParser) {
  sim::Kernel kernel;
  Tracer tracer(kernel);

  TraceContext root{}, child{};
  kernel.schedule(sim::kMillisecond, [&]() {
    root = tracer.begin("attach", "lte_frontend", "gw0");
    tracer.tag(root, "imsi", "IMSI\"quoted\"");  // exercise escaping
    const Tracer::Scope scope(&tracer, root);
    child = tracer.begin("begin_attach", "accessd", "gw0");
  });
  kernel.schedule(3 * sim::kMillisecond, [&]() { tracer.end(child); });
  kernel.schedule(9 * sim::kMillisecond, [&]() { tracer.end(root); });
  kernel.run_until(sim::kSecond);

  const std::string json = export_chrome_trace(tracer);
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc)) << json;
  ASSERT_TRUE(doc.is_object());
  const JsonObject& top = doc.object();
  EXPECT_EQ(top.at("displayTimeUnit").str(), "ms");

  const JsonArray& events = top.at("traceEvents").array();
  int metadata = 0;
  int complete = 0;
  for (const JsonValue& event : events) {
    const JsonObject& e = event.object();
    const std::string& ph = e.at("ph").str();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_GT(e.at("pid").number(), 0);
    EXPECT_GT(e.at("tid").number(), 0);
    EXPECT_GE(e.at("dur").number(), 0);
    const JsonObject& args = e.at("args").object();
    EXPECT_EQ(args.at("trace_id").number(), static_cast<double>(root.trace_id));
    if (e.at("name").str() == "attach") {
      EXPECT_EQ(args.at("imsi").str(), "IMSI\"quoted\"");
      EXPECT_DOUBLE_EQ(e.at("ts").number(), 1000.0);   // 1 ms in µs
      EXPECT_DOUBLE_EQ(e.at("dur").number(), 8000.0);  // 8 ms
    } else {
      EXPECT_EQ(args.at("parent_span_id").number(),
                static_cast<double>(root.span_id));
    }
  }
  EXPECT_EQ(metadata, 3);  // 1 process + 2 threads
  EXPECT_EQ(complete, 2);
}

TEST(ChromeTrace, FilterByTraceId) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const TraceContext a = tracer.begin("a", "svc", "node");
  tracer.end(a);
  const TraceContext b = tracer.begin("b", "svc", "node");
  tracer.end(b);

  const std::string json = export_chrome_trace(tracer, b.trace_id);
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc));
  int complete = 0;
  for (const JsonValue& event : doc.object().at("traceEvents").array()) {
    if (event.object().at("ph").str() == "X") {
      ++complete;
      EXPECT_EQ(event.object().at("name").str(), "b");
    }
  }
  EXPECT_EQ(complete, 1);
}

TEST(ChromeTrace, ExportsWaitStateArgsElidingZeroes) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const TraceContext span = tracer.begin("op", "svc", "gw0");
  tracer.add_wait(span, WaitState::kLinkTransit, 2 * sim::kMillisecond);
  tracer.end(span);
  const std::string json = export_chrome_trace(tracer);
  EXPECT_NE(json.find("\"wait_link_transit_ms\":2.000000"), std::string::npos);
  EXPECT_EQ(json.find("wait_cpu_ms"), std::string::npos);
}

TEST(ChromeTrace, ExportsLinksAndErrorMarkers) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  const TraceContext batched = tracer.begin("attach", "accessd", "gw0");
  tracer.end(batched);
  const TraceContext ship = tracer.begin("ship_events", "magmad", "gw0");
  tracer.link(ship, batched);
  tracer.tag(ship, "error", "report lost");
  tracer.end(ship);

  const std::string json = export_chrome_trace(tracer, ship.trace_id);
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc)) << json;
  int complete = 0;
  for (const JsonValue& event : doc.object().at("traceEvents").array()) {
    const JsonObject& e = event.object();
    if (e.at("ph").str() != "X") continue;
    ++complete;
    const JsonObject& args = e.at("args").object();
    ASSERT_EQ(args.count("error"), 1u);
    EXPECT_EQ(args.at("links").str(),
              std::to_string(batched.trace_id) + ":" +
                  std::to_string(batched.span_id));
  }
  EXPECT_EQ(complete, 1);
  // The machine-readable error marker rides next to the error tag.
  EXPECT_NE(json.find("\"error\":true"), std::string::npos);
}

}  // namespace
}  // namespace magma::obs
