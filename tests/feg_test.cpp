// Federation: GTP-C endpoint reliability, MNO core stub, FeG session
// creation, GTP-A user-plane plumbing (§3.6).
#include <gtest/gtest.h>

#include "feg/feg.h"
#include "feg/gtp_aggregator.h"
#include "net/channel.h"

namespace magma::feg {
namespace {

namespace lte = magma::proto::lte;
namespace dp = magma::datapath;

common::Imsi imsi(std::uint64_t n) {
  return common::Imsi::from_digits(1010000000000ULL + n);
}

class GtpcTest : public ::testing::Test {
 protected:
  GtpcTest()
      : rng_(3),
        link_(kernel_, rng_, sim::lan_link()),
        channels_(net::make_datagram_pair(kernel_, link_)),
        client_(kernel_, *channels_.a),
        server_(kernel_, *channels_.b) {}

  sim::Kernel kernel_;
  sim::Rng rng_;
  net::DuplexLink link_;
  net::ChannelPair channels_;
  GtpcEndpoint client_;
  GtpcEndpoint server_;
};

TEST_F(GtpcTest, RequestResponseOnCleanLink) {
  server_.set_request_handler([](const lte::GtpcMessage& request) {
    EXPECT_TRUE(std::holds_alternative<lte::CreateSessionRequest>(request));
    lte::CreateSessionResponse response;
    response.pdn_address = common::Ipv4::from_octets(100, 64, 0, 1);
    return lte::GtpcMessage{response};
  });

  bool got = false;
  lte::CreateSessionRequest request;
  request.imsi = imsi(1);
  client_.send_request(lte::GtpcMessage{request},
                       [&](common::Result<lte::GtpcMessage> result) {
                         ASSERT_TRUE(result.ok());
                         got = std::holds_alternative<lte::CreateSessionResponse>(
                             result.value());
                       });
  kernel_.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(client_.stats().retransmissions, 0u);
}

TEST_F(GtpcTest, RetransmitsThroughModerateLoss) {
  link_.forward.set_loss_probability(0.4);
  link_.reverse.set_loss_probability(0.4);
  server_.set_request_handler([](const lte::GtpcMessage&) {
    return lte::GtpcMessage{lte::DeleteSessionResponse{}};
  });
  int ok = 0;
  int failed = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    client_.send_request(
        lte::GtpcMessage{lte::DeleteSessionRequest{common::Teid{i}, 0}},
        [&](common::Result<lte::GtpcMessage> result) {
          result.ok() ? ++ok : ++failed;
        });
  }
  kernel_.run();
  EXPECT_EQ(ok + failed, 20);
  // At 40% loss, (1-p_fail_both_ways) per try ~0.36; N3=3 tries → some
  // succeed, and the endpoint definitely retransmits.
  EXPECT_GT(ok, 5);
  EXPECT_GT(client_.stats().retransmissions, 0u);
}

TEST_F(GtpcTest, GivesUpAfterN3OnDeadLink) {
  link_.forward.set_up(false);
  bool failed = false;
  client_.send_request(
      lte::GtpcMessage{lte::DeleteSessionRequest{common::Teid{1}, 0}},
      [&](common::Result<lte::GtpcMessage> result) {
        failed = result.code() == common::ErrorCode::kUnavailable;
      });
  kernel_.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(client_.stats().failures, 1u);
  // Gave up after exactly N3 transmissions (1 initial + 2 retries).
  EXPECT_EQ(client_.stats().retransmissions,
            static_cast<std::uint64_t>(lte::GtpcTimers::kN3Requests - 1));
}

// --- Full federation path --------------------------------------------------

class FederationTest : public ::testing::Test {
 protected:
  FederationTest()
      : rng_(4),
        mno_(kernel_, common::Ipv4::from_octets(10, 250, 0, 1)),
        gtpa_(common::Ipv4::from_octets(10, 200, 0, 1)),
        feg_link_(kernel_, rng_, sim::fiber_backhaul()),
        feg_channels_(net::make_datagram_pair(kernel_, feg_link_)),
        feg_(kernel_, mno_, gtpa_, *feg_channels_.a) {
    mno_.serve_gtpc(*feg_channels_.b);
    // GTP-A <-> P-GW user plane is direct in this unit test.
    gtpa_.set_pgw_sink([this](dp::PacketBatch batch) {
      mno_.ingress_from_gtpa(std::move(batch));
    });
    mno_.set_gtpa_sink([this](dp::PacketBatch batch) {
      gtpa_.ingress_from_pgw(std::move(batch));
    });
  }

  sim::Kernel kernel_;
  sim::Rng rng_;
  MnoCore mno_;
  GtpAggregator gtpa_;
  net::DuplexLink feg_link_;
  net::ChannelPair feg_channels_;
  FederationGateway feg_;
};

TEST_F(FederationTest, CreateSessionAllocatesMnoAddress) {
  std::vector<dp::PacketBatch> to_agw;
  common::Result<agw::Accessd::FederatedSession> session(
      common::Error{common::ErrorCode::kUnknown, "pending"});
  feg_.create_session(
      imsi(1), common::Teid{0x500},
      [&](dp::PacketBatch batch) { to_agw.push_back(std::move(batch)); },
      [&](common::Result<agw::Accessd::FederatedSession> result) {
        session = std::move(result);
      });
  kernel_.run();
  ASSERT_TRUE(session.ok()) << session.error().to_string();
  // MNO allocates from its own 100.64/10 pool.
  EXPECT_EQ(session.value().ue_ip.addr >> 24, 100u);
  EXPECT_EQ(session.value().home_agg_address, gtpa_.address());
  EXPECT_EQ(mno_.session_count(), 1u);
  EXPECT_EQ(feg_.stats().sessions_created, 1u);

  // Uplink: AGW → GTP-A → P-GW.
  dp::PacketBatch ul;
  ul.packet = dp::gtpu_encap(
      dp::make_udp(session.value().ue_ip,
                   common::Ipv4::from_octets(8, 8, 8, 8), 1, 2, 100),
      session.value().home_teid_remote, common::Ipv4{1}, gtpa_.address());
  ul.count = 10;
  gtpa_.ingress_from_agw(std::move(ul));
  EXPECT_GT(gtpa_.stats().ul_bytes, 0u);
  EXPECT_GT(mno_.session_by_ip(session.value().ue_ip)->ul_bytes, 0u);

  // Downlink: "Internet" at the MNO → P-GW → GTP-A → AGW sink.
  ASSERT_TRUE(mno_.inject_downlink(session.value().ue_ip, 500, 5));
  ASSERT_EQ(to_agw.size(), 1u);
  ASSERT_TRUE(to_agw[0].packet.gtpu.has_value());
  EXPECT_EQ(to_agw[0].packet.gtpu->teid.value, 0x500u);
  EXPECT_GT(gtpa_.stats().dl_bytes, 0u);
}

TEST_F(FederationTest, DuplicateCreateSessionIsIdempotentAtPgw) {
  common::Ipv4 first_ip{};
  for (int round = 0; round < 2; ++round) {
    bool done = false;
    feg_.create_session(
        imsi(1), common::Teid{0x600}, [](dp::PacketBatch) {},
        [&](common::Result<agw::Accessd::FederatedSession> result) {
          ASSERT_TRUE(result.ok());
          if (first_ip.addr == 0) {
            first_ip = result.value().ue_ip;
          } else {
            EXPECT_EQ(result.value().ue_ip, first_ip);
          }
          done = true;
        });
    kernel_.run();
    ASSERT_TRUE(done);
  }
  EXPECT_EQ(mno_.session_count(), 1u);
}

TEST_F(FederationTest, SessionFailureWhenMnoUnreachable) {
  feg_link_.forward.set_up(false);
  bool failed = false;
  feg_.create_session(
      imsi(2), common::Teid{0x700}, [](dp::PacketBatch) {},
      [&](common::Result<agw::Accessd::FederatedSession> result) {
        failed = !result.ok();
      });
  kernel_.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(feg_.stats().session_failures, 1u);
}

TEST_F(FederationTest, UnknownTeidTrafficDropped) {
  dp::PacketBatch stray;
  stray.packet = dp::gtpu_encap(
      dp::make_udp(common::Ipv4{1}, common::Ipv4{2}, 1, 2, 10),
      common::Teid{0xDEAD}, common::Ipv4{3}, gtpa_.address());
  gtpa_.ingress_from_agw(std::move(stray));
  EXPECT_EQ(gtpa_.stats().unknown_teid_drops, 1u);
}

TEST_F(FederationTest, FetchSubscribersServesMnoHss) {
  agw::SubscriberData roamer;
  roamer.imsi = imsi(77);
  roamer.policy_name = "mno-gold";
  mno_.hss().upsert(roamer);

  net::DuplexLink rpc_link(kernel_, rng_, sim::fiber_backhaul());
  net::ReliablePair rpc_channels = net::make_reliable_pair(kernel_, rpc_link);
  rpc::RpcNode server(kernel_, *rpc_channels.a, "feg-server");
  rpc::RpcNode client(kernel_, *rpc_channels.b, "agw-client");
  feg_.bind(server);

  agw::SubscriberDb local([]() { return 0ULL; });
  bool synced = false;
  client.call(FederationGateway::kService,
              FederationGateway::kFetchSubscribers, {}, 5 * sim::kSecond,
              [&](rpc::Result<rpc::Bytes> result) {
                ASSERT_TRUE(result.ok());
                ASSERT_TRUE(local.restore(result.value()).ok());
                synced = true;
              });
  kernel_.run();
  EXPECT_TRUE(synced);
  ASSERT_TRUE(local.get(imsi(77)).has_value());
  EXPECT_EQ(local.get(imsi(77))->policy_name, "mno-gold");
}

}  // namespace
}  // namespace magma::feg
