// Orchestrator + magmad: northbound API, desired-state config sync over
// realistic backhaul, check-in, checkpoint shipping, durability.
#include <gtest/gtest.h>

#include "agw/magmad.h"
#include "core/network.h"
#include "net/channel.h"
#include "orc8r/orchestrator.h"

namespace magma {
namespace {

using agw::SubscriberData;

common::Imsi imsi(std::uint64_t n) {
  return common::Imsi::from_digits(1010000000000ULL + n);
}

SubscriberData subscriber(std::uint64_t n, const std::string& policy) {
  SubscriberData sub;
  sub.imsi = imsi(n);
  sub.k[0] = static_cast<std::uint8_t>(n);
  sub.policy_name = policy;
  return sub;
}

TEST(Orchestrator, NorthboundSubscriberCrud) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  orc8r.add_subscriber(subscriber(1, "gold"));
  orc8r.add_subscriber(subscriber(2, "silver"));
  EXPECT_EQ(orc8r.subscriber_count(), 2u);
  EXPECT_EQ(orc8r.get_subscriber(imsi(1))->policy_name, "gold");
  orc8r.remove_subscriber(imsi(1));
  EXPECT_EQ(orc8r.subscriber_count(), 1u);
  EXPECT_FALSE(orc8r.get_subscriber(imsi(1)).has_value());
}

TEST(Orchestrator, PolicyCrudAndVersionBump) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  const std::uint64_t v0 = orc8r.config_version();
  orc8r.add_policy(core::rate_limited_policy(1e6, 1e6));
  EXPECT_GT(orc8r.config_version(), v0);
  EXPECT_TRUE(orc8r.get_policy("rate_limited").has_value());
  orc8r.remove_policy("rate_limited");
  EXPECT_FALSE(orc8r.get_policy("rate_limited").has_value());
}

TEST(Orchestrator, DesiredStateVersioned) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  orc8r.add_subscriber(subscriber(1, "p"));
  const orc8r::DesiredState fresh = orc8r.desired_state(0);
  EXPECT_TRUE(fresh.changed);
  EXPECT_EQ(fresh.subscribers.size(), 1u);

  // A caller that already has the current version gets a cheap no-op.
  const orc8r::DesiredState current = orc8r.desired_state(fresh.version);
  EXPECT_FALSE(current.changed);
  EXPECT_TRUE(current.subscribers.empty());
}

TEST(Orchestrator, ConfigSurvivesCrash) {
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  orc8r.add_subscriber(subscriber(1, "p"));
  orc8r.store().checkpoint();
  orc8r.add_subscriber(subscriber(2, "q"));
  orc8r.store().simulate_crash_and_recover();
  EXPECT_EQ(orc8r.subscriber_count(), 2u);
}

TEST(Orchestrator, CorruptStoreBlobIsCountedWarnedAndAlerted) {
  // Regression: a store blob that fails to deserialize used to be silently
  // dropped from the desired state — every gateway would converge on a
  // config missing that subscriber, with nothing anywhere saying so.
  sim::Kernel kernel;
  orc8r::Orchestrator orc8r(kernel);
  orc8r.add_subscriber(subscriber(1, "p"));
  orc8r.store().put("sub/corrupt", common::to_bytes("garbage"));

  const orc8r::DesiredState state = orc8r.desired_state(0);
  // The good subscriber survives; the corrupt one is counted, not silent.
  EXPECT_EQ(state.subscribers.size(), 1u);
  EXPECT_EQ(orc8r.stats().store_decode_errors, 1u);
  EXPECT_EQ(
      orc8r.metrics().latest("orc8r", "orchestrator_store_decode_errors"),
      1.0);
  const auto events = orc8r.events_of_type("store_decode_error");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].severity, obs::EventSeverity::kWarn);
  EXPECT_NE(events[0].message.find("sub/corrupt"), std::string::npos);

  // The default growth alert fires once the gauge rises past its baseline
  // (the corrupt blob is recounted on the next full-state rebuild).
  orc8r.add_subscriber(subscriber(2, "p"));
  (void)orc8r.desired_state(0);
  EXPECT_EQ(orc8r.stats().store_decode_errors, 2u);
  bool firing = false;
  for (const orc8r::ActiveAlert& a : orc8r.metrics().active_alerts()) {
    if (a.rule == "orchestrator_store_decode_errors_growth") firing = true;
  }
  EXPECT_TRUE(firing);
}

TEST(DesiredState, SerializeRoundTrip) {
  orc8r::DesiredState state;
  state.version = 42;
  state.changed = true;
  state.subscribers.push_back(subscriber(1, "gold"));
  state.policies.push_back(core::tiered_policy(1e7, 1 << 30, 1e6));
  auto round = orc8r::DesiredState::deserialize(state.serialize());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().version, 42u);
  EXPECT_EQ(round.value().subscribers, state.subscribers);
  EXPECT_EQ(round.value().policies, state.policies);
}

// --- Magmad over a link -------------------------------------------------------

class MagmadTest : public ::testing::Test {
 protected:
  MagmadTest()
      : rng_(5),
        orc8r_(kernel_),
        link_(kernel_, rng_, sim::fiber_backhaul()),
        channels_(net::make_reliable_pair(kernel_, link_)),
        server_node_(kernel_, *channels_.a, "orc8r-server"),
        client_node_(kernel_, *channels_.b, "agw-client"),
        subscribers_([this]() { return rng_.next_u64(); }),
        magmad_(kernel_, "gw0", &client_node_, subscribers_, policies_,
                [this]() { return checkpoint_payload_; },
                [this]() { return metrics_payload_; }) {
    orc8r_.bind(server_node_);
  }

  sim::Kernel kernel_;
  sim::Rng rng_;
  orc8r::Orchestrator orc8r_;
  net::DuplexLink link_;
  net::ReliablePair channels_;
  rpc::RpcNode server_node_;
  rpc::RpcNode client_node_;
  agw::SubscriberDb subscribers_;
  agw::PolicyDb policies_;
  common::Bytes checkpoint_payload_ = common::to_bytes("ckpt");
  std::vector<orc8r::MetricSample> metrics_payload_;
  agw::Magmad magmad_;
};

TEST_F(MagmadTest, ConfigSyncAppliesSubscribersAndPolicies) {
  orc8r_.add_subscriber(subscriber(1, "gold"));
  orc8r_.add_policy(core::rate_limited_policy(2e6, 1e6));

  bool applied = false;
  magmad_.sync_config_now([&](bool a) { applied = a; });
  kernel_.run_until(5 * sim::kSecond);
  EXPECT_TRUE(applied);
  EXPECT_TRUE(subscribers_.get(imsi(1)).has_value());
  EXPECT_TRUE(policies_.get("rate_limited").has_value());
  EXPECT_EQ(magmad_.synced_version(), orc8r_.config_version());

  // Second sync with no changes is a no-op.
  bool applied_again = true;
  magmad_.sync_config_now([&](bool a) { applied_again = a; });
  kernel_.run_until(10 * sim::kSecond);
  EXPECT_FALSE(applied_again);
  EXPECT_EQ(magmad_.stats().config_polls_noop, 1u);
}

TEST_F(MagmadTest, ConfigRemovalPropagates) {
  orc8r_.add_subscriber(subscriber(1, "p"));
  orc8r_.add_subscriber(subscriber(2, "p"));
  magmad_.sync_config_now();
  kernel_.run_until(5 * sim::kSecond);
  ASSERT_EQ(subscribers_.size(), 2u);

  orc8r_.remove_subscriber(imsi(1));
  magmad_.sync_config_now();
  kernel_.run_until(10 * sim::kSecond);
  EXPECT_EQ(subscribers_.size(), 1u);
  EXPECT_FALSE(subscribers_.get(imsi(1)).has_value());
}

TEST_F(MagmadTest, ConvergesAfterOrchestratorRestartWithOlderStore) {
  // Regression: an orchestrator replaced by an instance with a fresh store
  // answers polls with a *lower* version. A gateway comparing versions
  // numerically wedges forever ("I have 12, you offer 3"); the epoch makes
  // the restart explicit and the gateway must take the full sync — the
  // orchestrator is the source of truth (§3.4).
  for (int i = 1; i <= 8; ++i) orc8r_.add_subscriber(subscriber(i, "old"));
  magmad_.sync_config_now();
  kernel_.run_until(5 * sim::kSecond);
  ASSERT_EQ(subscribers_.size(), 8u);
  const std::uint64_t old_version = magmad_.synced_version();
  const std::uint64_t old_epoch = magmad_.synced_epoch();
  ASSERT_GT(old_version, 1u);

  // Replace the orchestrator: fresh store, one subscriber, lower version.
  orc8r::Orchestrator replacement(kernel_);
  replacement.add_subscriber(subscriber(100, "new"));
  ASSERT_LT(replacement.config_version(), old_version);
  ASSERT_NE(replacement.epoch(), old_epoch);
  replacement.bind(server_node_);  // re-registration replaces the handlers

  bool applied = false;
  magmad_.sync_config_now([&](bool a) { applied = a; });
  kernel_.run_until(10 * sim::kSecond);
  EXPECT_TRUE(applied);
  // Converged backwards onto the replacement's (smaller) desired state.
  EXPECT_EQ(subscribers_.size(), 1u);
  EXPECT_TRUE(subscribers_.get(imsi(100)).has_value());
  EXPECT_FALSE(subscribers_.get(imsi(1)).has_value());
  EXPECT_EQ(magmad_.synced_version(), replacement.config_version());
  EXPECT_EQ(magmad_.synced_epoch(), replacement.epoch());
  EXPECT_EQ(magmad_.stats().epoch_resyncs, 1u);

  // And stays converged: the next poll is a cheap noop, not a sync loop.
  magmad_.sync_config_now();
  kernel_.run_until(15 * sim::kSecond);
  EXPECT_GE(magmad_.stats().config_polls_noop, 1u);
}

TEST_F(MagmadTest, SyncFailsGracefullyWhenDisconnected) {
  link_.forward.set_up(false);
  link_.reverse.set_up(false);
  bool applied = true;
  magmad_.sync_config_now([&](bool a) { applied = a; });
  kernel_.run_until(30 * sim::kSecond);
  EXPECT_FALSE(applied);
  EXPECT_GE(magmad_.stats().sync_failures, 1u);
  EXPECT_FALSE(magmad_.orchestrator_reachable());
}

TEST_F(MagmadTest, PeriodicLoopsShipEverything) {
  orc8r_.add_subscriber(subscriber(1, "p"));
  metrics_payload_ = {
      orc8r::MetricSample{"gw0", "active_sessions", 3.0, kernel_.now()}};
  magmad_.start();
  kernel_.run_until(3 * sim::kMinute);

  EXPECT_GE(magmad_.stats().config_syncs_applied, 1u);
  EXPECT_GE(magmad_.stats().checkins_ok, 2u);
  EXPECT_GE(magmad_.stats().metric_reports_sent, 2u);
  EXPECT_GE(magmad_.stats().checkpoints_shipped, 2u);

  // Orchestrator side saw all of it.
  EXPECT_GE(orc8r_.stats().checkins, 2u);
  ASSERT_TRUE(orc8r_.gateway("gw0").has_value());
  EXPECT_GT(orc8r_.gateway("gw0")->checkin_count, 0u);
  EXPECT_EQ(orc8r_.stored_checkpoint("gw0").value(),
            common::to_bytes("ckpt"));
  EXPECT_GT(orc8r_.metrics().total_samples(), 0u);
}

// --- Health plane + histogram delta shipping ---------------------------------

// A magmad wired with explicit status/histogram sources over a clean link,
// with fast cadences and everything unrelated slowed way down.
class MagmadShippingTest : public ::testing::Test {
 protected:
  static agw::MagmadConfig fast_metrics() {
    agw::MagmadConfig config;
    config.config_poll_interval = sim::kHour;
    config.checkin_interval = 5 * sim::kSecond;
    config.metrics_interval = 5 * sim::kSecond;
    config.checkpoint_interval = sim::kHour;
    config.telemetry_backpressure = 1000;  // never shed in this test
    return config;
  }

  MagmadShippingTest()
      : rng_(5),
        orc8r_(kernel_),
        link_(kernel_, rng_, sim::fiber_backhaul()),
        channels_(net::make_reliable_pair(kernel_, link_)),
        server_node_(kernel_, *channels_.a, "orc8r-server"),
        client_node_(kernel_, *channels_.b, "agw-client"),
        subscribers_([this]() { return rng_.next_u64(); }),
        registry_(kernel_),
        magmad_(kernel_, "gw0", &client_node_, subscribers_, policies_,
                []() { return common::Bytes{}; },
                []() { return std::vector<orc8r::MetricSample>{}; },
                fast_metrics(), nullptr,
                [this]() {
                  orc8r::HistogramSnapshot snap;
                  snap.gateway_id = "gw0";
                  snap.name = "attach_s";
                  snap.bounds = hist_.bounds();
                  snap.counts = hist_.counts();
                  snap.sum = hist_.sum();
                  snap.time = kernel_.now();
                  return std::vector<orc8r::HistogramSnapshot>{
                      std::move(snap)};
                },
                [this]() { return registry_.snapshot(); }) {
    orc8r_.bind(server_node_);
  }

  sim::Kernel kernel_;
  sim::Rng rng_;
  orc8r::Orchestrator orc8r_;
  net::DuplexLink link_;
  net::ReliablePair channels_;
  rpc::RpcNode server_node_;
  rpc::RpcNode client_node_;
  agw::SubscriberDb subscribers_;
  agw::PolicyDb policies_;
  obs::StatusRegistry registry_;
  obs::Histogram hist_;
  agw::Magmad magmad_;
};

TEST_F(MagmadShippingTest, CheckinCarriesService303SnapshotIntoStatusd) {
  obs::Service303& sessiond = registry_.register_service("sessiond");
  sessiond.count_request(4);
  sessiond.count_error("create_session: no bearer");
  registry_.register_service("mobilityd").set_phase("serving");

  magmad_.start();
  kernel_.run_until(3 * sim::kSecond);

  ASSERT_GE(orc8r_.statusd().stats().checkins, 1u);
  const orc8r::GatewayStatus* gw = orc8r_.statusd().gateway("gw0");
  ASSERT_NE(gw, nullptr);
  EXPECT_EQ(gw->health, orc8r::GatewayHealth::kHealthy);
  ASSERT_EQ(gw->services.size(), 2u);
  EXPECT_EQ(gw->services[0].service, "mobilityd");
  EXPECT_EQ(gw->services[0].phase, "serving");
  EXPECT_EQ(gw->services[1].service, "sessiond");
  EXPECT_EQ(gw->services[1].requests, 4u);
  EXPECT_EQ(gw->services[1].last_error, "create_session: no bearer");
}

TEST_F(MagmadShippingTest, HistogramsShipFullThenDeltaThenSkip) {
  hist_.observe(0.1);
  magmad_.start();  // first metrics tick fires immediately
  kernel_.run_until(3 * sim::kSecond);

  // First report: full snapshot, every bucket on the wire.
  EXPECT_EQ(magmad_.stats().histogram_full_snapshots, 1u);
  EXPECT_EQ(magmad_.stats().histogram_buckets_shipped, hist_.counts().size());
  EXPECT_EQ(orc8r_.metrics().histogram_count("attach_s"), 1u);

  // Two observations in one bucket: the next tick ships a 1-bucket delta.
  hist_.observe(0.1);
  hist_.observe(0.1);
  kernel_.run_until(8 * sim::kSecond);
  EXPECT_EQ(magmad_.stats().histogram_delta_snapshots, 1u);
  EXPECT_EQ(magmad_.stats().histogram_buckets_shipped,
            hist_.counts().size() + 1);
  EXPECT_EQ(orc8r_.metrics().histogram_count("attach_s"), 3u);
  EXPECT_EQ(orc8r_.metrics().histogram_delta_orphans(), 0u);

  // Nothing new: the tick ships nothing at all.
  kernel_.run_until(13 * sim::kSecond);
  EXPECT_GE(magmad_.stats().histogram_unchanged_skips, 1u);
  EXPECT_EQ(magmad_.stats().histogram_buckets_shipped,
            hist_.counts().size() + 1);
  EXPECT_EQ(orc8r_.metrics().histogram_count("attach_s"), 3u);
}

TEST_F(MagmadShippingTest, LostReportForcesFullReship) {
  hist_.observe(0.1);
  magmad_.start();
  kernel_.run_until(3 * sim::kSecond);
  ASSERT_EQ(magmad_.stats().histogram_full_snapshots, 1u);

  // Partition the backhaul across the next tick: the delta report dies on
  // its deadline, so magmad must assume metricsd missed it.
  link_.forward.set_up(false);
  link_.reverse.set_up(false);
  hist_.observe(2.0);
  kernel_.run_until(31 * sim::kSecond);
  ASSERT_GE(magmad_.stats().histogram_reports_lost, 1u);

  link_.forward.set_up(true);
  link_.reverse.set_up(true);
  hist_.observe(2.0);
  kernel_.run_until(60 * sim::kSecond);
  // Recovery re-shipped a full snapshot (cumulative, so the orchestrator
  // converges on the gateway's true counts despite the lost deltas).
  EXPECT_GE(magmad_.stats().histogram_full_snapshots, 2u);
  EXPECT_EQ(orc8r_.metrics().histogram_count("attach_s"), hist_.count());
  EXPECT_EQ(orc8r_.metrics().merged_histogram("attach_s").counts(),
            hist_.counts());
}

TEST_F(MagmadShippingTest, BucketsShippedGaugeTracksStats) {
  // The AGW-level gauge is exercised end to end in agw_test/integration, but
  // the stat it mirrors must move exactly with the wire traffic.
  hist_.observe(0.1);
  magmad_.start();
  kernel_.run_until(3 * sim::kSecond);
  const std::uint64_t after_full = magmad_.stats().histogram_buckets_shipped;
  EXPECT_EQ(after_full, hist_.counts().size());

  hist_.observe(0.1);
  kernel_.run_until(8 * sim::kSecond);
  EXPECT_EQ(magmad_.stats().histogram_buckets_shipped, after_full + 1);
}

// --- Transport telemetry end to end ------------------------------------------

TEST(TransportTelemetry, ControlChannelStatsReachMetricsd) {
  // The AGW's control-channel transport health (SRTT, RTO, retransmission
  // counters) must flow through magmad's periodic metrics report into the
  // orchestrator's metricsd, per gateway.
  core::NetworkConfig config;
  config.backhaul = sim::satellite_backhaul();
  core::Network net(config);
  net.add_agw(agw::virtual_xeon(2));
  net.run_for(2 * sim::kMinute);

  const orc8r::Metricsd& metrics = net.orchestrator().metrics();
  const auto srtt = metrics.latest("gw0", "transport_srtt_s");
  const auto rto = metrics.latest("gw0", "transport_rto_s");
  ASSERT_TRUE(srtt.has_value());
  ASSERT_TRUE(rto.has_value());
  // The estimator converged on the satellite RTT (~0.64 s) and the RTO sits
  // above it — no spurious-retransmission storm on this incarnation.
  EXPECT_GT(*srtt, 0.5);
  EXPECT_LT(*srtt, 1.0);
  EXPECT_GE(*rto, *srtt);
  ASSERT_TRUE(metrics.latest("gw0", "transport_retransmissions").has_value());
  ASSERT_TRUE(
      metrics.latest("gw0", "transport_spurious_retransmits").has_value());
  ASSERT_TRUE(metrics.latest("gw0", "transport_send_failures").has_value());
  // Congestion-control and SACK gauges flow too: the window is live (>= 1
  // segment, bounded by the configured cap) and the flight never exceeds
  // it; the reorder backlog gauge exists even when it reads zero.
  const auto cwnd = metrics.latest("gw0", "transport_cwnd");
  const auto flight = metrics.latest("gw0", "transport_flight_size");
  ASSERT_TRUE(cwnd.has_value());
  ASSERT_TRUE(flight.has_value());
  EXPECT_GE(*cwnd, 1.0);
  EXPECT_LE(*flight, *cwnd);
  ASSERT_TRUE(metrics.latest("gw0", "transport_ssthresh").has_value());
  ASSERT_TRUE(metrics.latest("gw0", "transport_sack_retransmits").has_value());
  ASSERT_TRUE(metrics.latest("gw0", "transport_rto_at_cap").has_value());
  ASSERT_TRUE(metrics.latest("gw0", "transport_reorder_backlog").has_value());
  ASSERT_TRUE(metrics.latest("gw0", "transport_send_backlog").has_value());
  ASSERT_TRUE(metrics.latest("gw0", "magmad_telemetry_sheds").has_value());
}

TEST_F(MagmadTest, BackpressureShedsTelemetryButNeverTheSync) {
  // Force the shed path: with the threshold at zero every best-effort tick
  // sees the channel as "already backlogged" and skips shipping. The config
  // sync is exempt — it is the one RPC that must land — so the gateway
  // still learns its subscribers while metrics and checkpoints yield.
  agw::MagmadConfig config;
  config.telemetry_backpressure = 0;
  agw::Magmad magmad(kernel_, "gw0", &client_node_, subscribers_, policies_,
                     [this]() { return checkpoint_payload_; },
                     [this]() { return metrics_payload_; }, config);
  orc8r_.add_subscriber(subscriber(1, "p"));
  metrics_payload_ = {
      orc8r::MetricSample{"gw0", "active_sessions", 1.0, kernel_.now()}};
  magmad.start();
  kernel_.run_until(3 * sim::kMinute);

  EXPECT_GE(magmad.stats().config_syncs_applied, 1u);
  EXPECT_TRUE(subscribers_.get(imsi(1)).has_value());
  EXPECT_GT(magmad.stats().telemetry_sheds, 0u);
  EXPECT_EQ(magmad.stats().metric_reports_sent, 0u);
  EXPECT_EQ(magmad.stats().checkpoints_shipped, 0u);
}

}  // namespace
}  // namespace magma
