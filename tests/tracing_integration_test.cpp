// End-to-end observability: one LTE attach must produce a single connected
// span tree crossing the AGW and the orchestrator, per-stage latency must
// land in metricsd histograms, and attach/log events must reach eventd —
// including the loss-tolerant behaviour under a backhaul outage.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/log.h"
#include "core/network.h"
#include "obs/chrome_trace.h"

namespace magma {
namespace {

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<core::Network>();
    agw_ = &net_->add_agw(agw::bare_metal_j3160());
    enb_ = &net_->add_enodeb(*agw_);
    net_->run_for(2 * sim::kSecond);
    ASSERT_TRUE(enb_->s1_ready());
  }

  ran::AttachOutcome attach_one() {
    const agw::SubscriberData sub = net_->provision_subscriber();
    net_->sync_all_config();
    ran::UeLte& ue = net_->add_ue_lte(sub);
    ran::AttachOutcome result;
    bool done = false;
    ue.attach(*enb_, [&](const ran::AttachOutcome& outcome) {
      result = outcome;
      done = true;
    });
    net_->run_for(20 * sim::kSecond);
    EXPECT_TRUE(done);
    return result;
  }

  // The trace id of the (single) attach root span.
  std::uint64_t attach_trace_id() {
    for (const obs::SpanRecord& span : net_->tracer().finished()) {
      if (span.name == "attach") return span.trace_id;
    }
    return 0;
  }

  std::unique_ptr<core::Network> net_;
  agw::AccessGateway* agw_ = nullptr;
  ran::EnodeB* enb_ = nullptr;
};

TEST_F(TracingTest, AttachYieldsConnectedSpanTreeAcrossNodes) {
  ASSERT_TRUE(attach_one().success);
  // Let magmad flush events so the orc8r leg joins the tree.
  net_->run_for(10 * sim::kSecond);

  const std::uint64_t trace_id = attach_trace_id();
  ASSERT_NE(trace_id, 0u);
  const std::vector<obs::SpanRecord> spans =
      net_->tracer().trace_spans(trace_id);
  ASSERT_GE(spans.size(), 8u);

  // Connected: every non-root span's parent is in the same trace.
  std::set<std::uint64_t> ids;
  for (const obs::SpanRecord& span : spans) ids.insert(span.span_id);
  int roots = 0;
  for (const obs::SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, trace_id);
    if (span.parent_span_id == 0) {
      ++roots;
    } else {
      EXPECT_TRUE(ids.contains(span.parent_span_id))
          << span.name << " has unknown parent";
    }
  }
  EXPECT_EQ(roots, 1);

  // Breadth: at least five services across both nodes.
  std::set<std::string> services;
  std::set<std::string> nodes;
  for (const obs::SpanRecord& span : spans) {
    services.insert(span.service);
    nodes.insert(span.node);
  }
  for (const char* svc : {"lte_frontend", "accessd", "mobilityd", "sessiond",
                          "pipelined", "rpc", "eventd"}) {
    EXPECT_TRUE(services.contains(svc)) << "missing service " << svc;
  }
  EXPECT_GE(services.size(), 5u);
  EXPECT_TRUE(nodes.contains("gw0"));
  EXPECT_TRUE(nodes.contains("orc8r"));

  // Stage nesting: the accessd stages are children of the attach root, and
  // allocate_ip/create_session sit under establish.
  std::map<std::string, const obs::SpanRecord*> by_name;
  for (const obs::SpanRecord& span : spans) by_name[span.name] = &span;
  const obs::SpanRecord* root = by_name.at("attach");
  EXPECT_EQ(by_name.at("begin_attach")->parent_span_id, root->span_id);
  EXPECT_EQ(by_name.at("verify_auth")->parent_span_id, root->span_id);
  EXPECT_EQ(by_name.at("establish")->parent_span_id, root->span_id);
  const obs::SpanRecord* establish = by_name.at("establish");
  EXPECT_EQ(by_name.at("allocate_ip")->parent_span_id, establish->span_id);
  EXPECT_EQ(by_name.at("create_session")->parent_span_id, establish->span_id);
  EXPECT_EQ(by_name.at("install_flows")->parent_span_id,
            by_name.at("create_session")->span_id);

  // Outcome tag on the root.
  const auto& tags = root->tags;
  EXPECT_TRUE(std::any_of(tags.begin(), tags.end(), [](const auto& kv) {
    return kv.first == "outcome" && kv.second == "success";
  }));
}

TEST_F(TracingTest, RpcClientServerSpansShowNetworkGap) {
  ASSERT_TRUE(attach_one().success);
  net_->run_for(10 * sim::kSecond);

  const std::vector<obs::SpanRecord> spans =
      net_->tracer().trace_spans(attach_trace_id());
  const obs::SpanRecord* client = nullptr;
  const obs::SpanRecord* server = nullptr;
  for (const obs::SpanRecord& span : spans) {
    if (span.name != "eventd/LogEvents") continue;
    if (span.kind == obs::SpanKind::kClient) client = &span;
    if (span.kind == obs::SpanKind::kServer) server = &span;
  }
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(client->node, "gw0");
  EXPECT_EQ(server->node, "orc8r");
  EXPECT_EQ(server->parent_span_id, client->span_id);
  // The server starts after the client by at least the one-way propagation
  // delay, and finishes before the client hears back.
  EXPECT_GT(server->start, client->start);
  EXPECT_GT(client->end, server->end);
}

TEST_F(TracingTest, ChromeExportOfLiveAttachParses) {
  ASSERT_TRUE(attach_one().success);
  net_->run_for(10 * sim::kSecond);
  const std::string json =
      obs::export_chrome_trace(net_->tracer(), attach_trace_id());
  // Structure is exercised in obs_test with a real parser; here just assert
  // the live tree made it in with both processes.
  EXPECT_NE(json.find("\"attach\""), std::string::npos);
  EXPECT_NE(json.find("\"gw0\""), std::string::npos);
  EXPECT_NE(json.find("\"orc8r\""), std::string::npos);
}

TEST_F(TracingTest, StageLatencyHistogramsReachMetricsd) {
  ASSERT_TRUE(attach_one().success);
  // Past the next metrics tick (15 s interval).
  net_->run_for(20 * sim::kSecond);

  orc8r::Metricsd& metrics = net_->orchestrator().metrics();
  for (const char* name :
       {"span_lte_frontend_attach_s", "span_accessd_begin_attach_s",
        "span_accessd_verify_auth_s", "span_accessd_establish_s",
        "span_mobilityd_allocate_ip_s", "span_sessiond_create_session_s",
        "span_pipelined_install_flows_s"}) {
    EXPECT_GE(metrics.histogram_count(name), 1u) << name;
    EXPECT_GT(metrics.histogram_quantile(name, 0.5), 0.0) << name;
  }
  // The attach took at least the accessd CPU cost (0.5 s on this profile)
  // and the stage quantiles must sit below the whole-attach quantile.
  const double attach_p50 =
      metrics.histogram_quantile("span_lte_frontend_attach_s", 0.5);
  EXPECT_GT(attach_p50, 0.1);
  EXPECT_LT(metrics.histogram_quantile("span_mobilityd_allocate_ip_s", 0.5),
            attach_p50);
  EXPECT_GT(agw_->magmad().stats().histogram_reports_sent, 0u);
}

TEST_F(TracingTest, AttachAndWarnEventsReachOrchestrator) {
  ASSERT_TRUE(attach_one().success);
  MLOG_WARN("test_component") << "something odd happened";
  net_->run_for(10 * sim::kSecond);

  orc8r::Orchestrator& orc8r = net_->orchestrator();
  const auto successes = orc8r.events_of_type("attach_success");
  ASSERT_EQ(successes.size(), 1u);
  EXPECT_EQ(successes[0].gateway_id, "gw0");
  EXPECT_EQ(successes[0].source, "lte_frontend");
  EXPECT_EQ(successes[0].trace.trace_id, attach_trace_id());

  const auto logs = orc8r.events_of_type("log");
  ASSERT_GE(logs.size(), 1u);
  EXPECT_TRUE(std::any_of(logs.begin(), logs.end(), [](const obs::Event& e) {
    return e.source == "test_component" &&
           e.message == "something odd happened" &&
           e.severity == obs::EventSeverity::kWarn;
  }));
  EXPECT_GT(agw_->magmad().stats().events_shipped, 0u);
}

TEST_F(TracingTest, BackhaulOutageDropsEventsWithoutBlocking) {
  ASSERT_TRUE(attach_one().success);
  net_->run_for(10 * sim::kSecond);
  const std::uint64_t shipped_before = agw_->magmad().stats().events_shipped;

  net_->set_backhaul_up(*agw_, false);
  // Generate far more events than the buffer holds while disconnected.
  const std::size_t capacity = agw_->events().capacity();
  for (std::size_t i = 0; i < capacity + 500; ++i) {
    MLOG_WARN("outage") << "warn " << i;
  }
  net_->run_for(60 * sim::kSecond);

  // Bounded and loss-tolerant: the buffer never exceeded its capacity, the
  // overflow was counted, batches in flight were counted lost, and the
  // gateway kept running (the kernel kept advancing — we got here).
  EXPECT_LE(agw_->events().size(), capacity);
  EXPECT_GT(agw_->events().dropped(), 0u);
  EXPECT_GT(agw_->magmad().stats().events_lost, 0u);
  EXPECT_EQ(agw_->magmad().stats().events_shipped, shipped_before);

  // Service restored: shipping resumes.
  net_->set_backhaul_up(*agw_, true);
  MLOG_WARN("recovery") << "back online";
  net_->run_for(30 * sim::kSecond);
  EXPECT_GT(agw_->magmad().stats().events_shipped, shipped_before);
  const auto logs = net_->orchestrator().events_of_type("log");
  EXPECT_TRUE(std::any_of(logs.begin(), logs.end(), [](const obs::Event& e) {
    return e.source == "recovery";
  }));
}

TEST_F(TracingTest, RejectedAttachTracedWithRejectOutcome) {
  agw::SubscriberData ghost;
  ghost.imsi = common::Imsi::from_digits(1010009999999ULL);
  ran::UeLte& ue = net_->add_ue_lte(ghost);
  bool done = false;
  ue.attach(*enb_, [&](const ran::AttachOutcome&) { done = true; });
  net_->run_for(20 * sim::kSecond);
  ASSERT_TRUE(done);

  const std::uint64_t trace_id = attach_trace_id();
  ASSERT_NE(trace_id, 0u);
  const std::vector<obs::SpanRecord> spans =
      net_->tracer().trace_spans(trace_id);
  const auto root = std::find_if(
      spans.begin(), spans.end(),
      [](const obs::SpanRecord& s) { return s.name == "attach"; });
  ASSERT_NE(root, spans.end());
  EXPECT_TRUE(std::any_of(
      root->tags.begin(), root->tags.end(), [](const auto& kv) {
        return kv.first == "outcome" && kv.second == "reject";
      }));

  net_->run_for(10 * sim::kSecond);
  EXPECT_EQ(net_->orchestrator().events_of_type("attach_reject").size(), 1u);
}

}  // namespace
}  // namespace magma
