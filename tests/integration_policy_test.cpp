// Policy enforcement end-to-end: rate limits, tiers, caps, and OCS quota
// billing over the network (§2.1's example policy, §3.4's billing story).
#include <gtest/gtest.h>

#include "core/network.h"
#include "core/workload.h"

namespace magma {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::NetworkConfig config;
    config.with_ocs = true;
    net_ = std::make_unique<core::Network>(config);
    agw_ = &net_->add_agw(agw::virtual_xeon(4));
    // Plenty of radio so the policy, not the radio, is the limiter.
    ran::EnodebConfig big;
    big.dl_capacity_bps = 500e6;
    enb_ = &net_->add_enodeb(*agw_, big);
    net_->run_for(2 * sim::kSecond);
  }

  ran::UeLte& attach_with_policy(const core::Policy& policy,
                                 std::uint64_t ocs_balance = 0) {
    net_->add_policy(policy);
    const agw::SubscriberData sub = net_->provision_subscriber(policy.name);
    if (ocs_balance > 0) net_->ocs()->create_account(sub.imsi, ocs_balance);
    net_->sync_all_config();
    ran::UeLte& ue = net_->add_ue_lte(sub);
    bool ok = false;
    ue.attach(*enb_, [&](const ran::AttachOutcome& o) { ok = o.success; });
    net_->run_for(20 * sim::kSecond);
    EXPECT_TRUE(ok);
    return ue;
  }

  // Offer `rate_bps` downlink for `seconds`; returns UE goodput in bps.
  double offer_and_measure(ran::UeLte& ue, double rate_bps, double seconds) {
    const std::uint64_t rx_before = ue.traffic().rx_bytes;
    core::DownlinkFlow flow(*net_, *agw_, *ue.ip(), rate_bps);
    flow.start();
    net_->run_for(sim::from_seconds(seconds));
    flow.stop();
    net_->run_for(1 * sim::kSecond);
    return static_cast<double>(ue.traffic().rx_bytes - rx_before) * 8.0 /
           seconds;
  }

  std::unique_ptr<core::Network> net_;
  agw::AccessGateway* agw_ = nullptr;
  ran::EnodeB* enb_ = nullptr;
};

TEST_F(PolicyTest, RateLimitEnforced) {
  core::Policy policy = core::rate_limited_policy(2'000'000, 1'000'000);
  policy.name = "limited-2m";
  ran::UeLte& ue = attach_with_policy(policy);

  // Offer 10 Mbps against a 2 Mbps policy.
  const double goodput = offer_and_measure(ue, 10e6, 30);
  EXPECT_LT(goodput, 2.6e6);  // limit + burst slack
  EXPECT_GT(goodput, 1.4e6);  // but the limit itself is achievable
}

TEST_F(PolicyTest, UnlimitedPolicyPassesOfferedLoad) {
  ran::UeLte& ue = attach_with_policy(core::unlimited_policy());
  const double goodput = offer_and_measure(ue, 10e6, 10);
  EXPECT_GT(goodput, 9e6);
}

TEST_F(PolicyTest, TieredPolicyThrottlesAfterThreshold) {
  // 8 Mbps until 5 MB, then 1 Mbps — the §2.1 example.
  core::Policy policy = core::tiered_policy(8'000'000, 5'000'000, 1'000'000);
  policy.name = "tiered";
  ran::UeLte& ue = attach_with_policy(policy);

  // Phase 1: under the threshold the fast tier applies.
  const double early = offer_and_measure(ue, 10e6, 4);
  EXPECT_GT(early, 5e6);

  // Burn past the 5 MB threshold, then measure again.
  offer_and_measure(ue, 10e6, 10);
  net_->run_for(5 * sim::kSecond);  // let sessiond poll and retier
  const double late = offer_and_measure(ue, 10e6, 20);
  EXPECT_LT(late, 1.6e6);
  EXPECT_GE(agw_->sessiond().stats().tier_transitions, 1u);
}

TEST_F(PolicyTest, HardCapCutsOffService) {
  core::Policy policy;
  policy.name = "capped-3mb";
  policy.charging = core::ChargingMode::kCapped;
  policy.tiers = {core::PolicyTier{0, 0, 3'000'000}};
  ran::UeLte& ue = attach_with_policy(policy);

  offer_and_measure(ue, 10e6, 10);  // blow through the 3 MB cap
  net_->run_for(5 * sim::kSecond);
  const double after_cap = offer_and_measure(ue, 10e6, 10);
  EXPECT_LT(after_cap, 0.2e6);  // essentially nothing gets through
  EXPECT_GE(agw_->sessiond().stats().caps_enforced, 1u);
}

TEST_F(PolicyTest, QuotaBillingDrainsOcsBalance) {
  core::Policy policy = core::quota_billed_policy(1 << 20);  // 1 MB grants
  policy.name = "billed";
  ran::UeLte& ue = attach_with_policy(policy, 5 << 20);  // 5 MB balance

  // Use ~3 MB: several grant cycles.
  offer_and_measure(ue, 4e6, 6);
  net_->run_for(10 * sim::kSecond);
  const agw::SessionRecord* session =
      agw_->sessiond().find(ue.usim().imsi());
  ASSERT_NE(session, nullptr);
  EXPECT_GE(session->quota_granted, 2u << 20);
  EXPECT_GE(agw_->sessiond().stats().quota_requests, 2u);
  const ocs::OcsAccount* account = net_->ocs()->account(ue.usim().imsi());
  ASSERT_NE(account, nullptr);
  EXPECT_LT(account->balance_bytes, 5u << 20);
}

TEST_F(PolicyTest, QuotaExhaustionBlocksUntilDenied) {
  core::Policy policy = core::quota_billed_policy(1 << 20);
  policy.name = "small-balance";
  ran::UeLte& ue = attach_with_policy(policy, 2 << 20);  // 2 MB total

  // Try to move 20 MB; only ~2 MB can ever be authorized.
  offer_and_measure(ue, 8e6, 20);
  net_->run_for(20 * sim::kSecond);

  const agw::SessionRecord* session =
      agw_->sessiond().find(ue.usim().imsi());
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(session->quota_denied);
  EXPECT_TRUE(session->flows.blocked);
  // Delivered volume is bounded by the balance plus poll-interval slack
  // (the availability-over-consistency window of §3.4).
  EXPECT_LT(ue.traffic().rx_bytes, (2u << 20) + 3'000'000u);
  EXPECT_GE(agw_->sessiond().stats().quota_denials, 1u);
}

TEST_F(PolicyTest, PolicyChangeAtOrchestratorPropagates) {
  core::Policy policy = core::rate_limited_policy(8'000'000, 8'000'000);
  policy.name = "adjustable";
  ran::UeLte& ue = attach_with_policy(policy);
  const double before = offer_and_measure(ue, 10e6, 10);
  EXPECT_GT(before, 5e6);

  // Operator tightens the policy to 1 Mbps at the orchestrator. Existing
  // session behaviour: after config sync + re-attach the new policy binds.
  core::Policy tightened = core::rate_limited_policy(1'000'000, 1'000'000);
  tightened.name = "adjustable";
  net_->add_policy(tightened);
  net_->sync_all_config();
  ue.detach(false);
  net_->run_for(5 * sim::kSecond);
  bool ok = false;
  ue.attach(*enb_, [&](const ran::AttachOutcome& o) { ok = o.success; });
  net_->run_for(20 * sim::kSecond);
  ASSERT_TRUE(ok);

  const double after = offer_and_measure(ue, 10e6, 20);
  EXPECT_LT(after, 1.6e6);
}

}  // namespace
}  // namespace magma
