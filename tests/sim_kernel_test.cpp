// Event-kernel semantics: ordering, cancellation, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.h"
#include "sim/random.h"

namespace magma::sim {
namespace {

TEST(Kernel, ExecutesInTimeOrder) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule(3 * kSecond, [&]() { order.push_back(3); });
  kernel.schedule(1 * kSecond, [&]() { order.push_back(1); });
  kernel.schedule(2 * kSecond, [&]() { order.push_back(2); });
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.now(), 3 * kSecond);
}

TEST(Kernel, FifoAmongSameTimeEvents) {
  Kernel kernel;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    kernel.schedule(kSecond, [&order, i]() { order.push_back(i); });
  }
  kernel.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Kernel, NestedSchedulingAdvancesTime) {
  Kernel kernel;
  TimePoint inner_time = -1;
  kernel.schedule(kSecond, [&]() {
    kernel.schedule(kSecond, [&]() { inner_time = kernel.now(); });
  });
  kernel.run();
  EXPECT_EQ(inner_time, 2 * kSecond);
}

TEST(Kernel, ZeroAndNegativeDelaysClampToNow) {
  Kernel kernel;
  bool ran = false;
  kernel.schedule(5 * kSecond, [&]() {
    kernel.schedule(-100, [&]() {
      ran = true;
      EXPECT_EQ(kernel.now(), 5 * kSecond);
    });
  });
  kernel.run();
  EXPECT_TRUE(ran);
}

TEST(Kernel, CancelPreventsExecution) {
  Kernel kernel;
  bool ran = false;
  const EventId id = kernel.schedule(kSecond, [&]() { ran = true; });
  EXPECT_TRUE(kernel.cancel(id));
  kernel.run();
  EXPECT_FALSE(ran);
}

TEST(Kernel, CancelTwiceReturnsFalse) {
  Kernel kernel;
  const EventId id = kernel.schedule(kSecond, []() {});
  EXPECT_TRUE(kernel.cancel(id));
  EXPECT_FALSE(kernel.cancel(id));
}

TEST(Kernel, CancelAfterExecutionReturnsFalse) {
  Kernel kernel;
  const EventId id = kernel.schedule(kSecond, []() {});
  kernel.run();
  EXPECT_FALSE(kernel.cancel(id));
}

TEST(Kernel, RunUntilLeavesLaterEventsQueued) {
  Kernel kernel;
  int ran = 0;
  kernel.schedule(1 * kSecond, [&]() { ++ran; });
  kernel.schedule(10 * kSecond, [&]() { ++ran; });
  kernel.run_until(5 * kSecond);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(kernel.now(), 5 * kSecond);
  EXPECT_EQ(kernel.pending_events(), 1u);
  kernel.run();
  EXPECT_EQ(ran, 2);
}

TEST(Kernel, RunUntilAdvancesClockOnEmptyQueue) {
  Kernel kernel;
  kernel.run_until(7 * kSecond);
  EXPECT_EQ(kernel.now(), 7 * kSecond);
}

TEST(Kernel, PendingEventsCountsCancellations) {
  Kernel kernel;
  const EventId a = kernel.schedule(kSecond, []() {});
  kernel.schedule(2 * kSecond, []() {});
  EXPECT_EQ(kernel.pending_events(), 2u);
  kernel.cancel(a);
  EXPECT_EQ(kernel.pending_events(), 1u);
}

TEST(Rng, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIndependence) {
  Rng a(1);
  Rng fork = a.fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u64() != fork.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntUnbiasedish) {
  Rng rng(11);
  int counts[10] = {0};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 3000, 300);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 2.0, 0.1);
}

TEST(Time, TransmissionTime) {
  // 1250 bytes at 10 Mbps = 1 ms.
  EXPECT_EQ(transmission_time(1250, 10e6), 1 * kMillisecond);
  EXPECT_EQ(transmission_time(1250, 0), 0);
}

}  // namespace
}  // namespace magma::sim
