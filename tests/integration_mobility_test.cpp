// Intra-AGW mobility (§3.2: "Magma supports mobility across radios served
// by a common AGW") and ECM-IDLE with paging / service request.
#include <gtest/gtest.h>

#include "core/network.h"

namespace magma {
namespace {

class MobilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<core::Network>();
    agw_ = &net_->add_agw(agw::virtual_xeon(4));
    enb_a_ = &net_->add_enodeb(*agw_);
    enb_b_ = &net_->add_enodeb(*agw_);
    net_->run_for(2 * sim::kSecond);
  }

  ran::UeLte& attach_ue() {
    const agw::SubscriberData sub = net_->provision_subscriber();
    net_->sync_all_config();
    ran::UeLte& ue = net_->add_ue_lte(sub);
    bool ok = false;
    ue.attach(*enb_a_, [&](const ran::AttachOutcome& o) { ok = o.success; });
    net_->run_for(20 * sim::kSecond);
    EXPECT_TRUE(ok);
    return ue;
  }

  std::uint64_t probe_downlink(ran::UeLte& ue, std::uint64_t packets = 10) {
    const std::uint64_t before = ue.traffic().rx_packets;
    net_->inject_downlink(*agw_, *ue.ip(), 1000, packets);
    net_->run_for(500 * sim::kMillisecond);
    return ue.traffic().rx_packets - before;
  }

  std::unique_ptr<core::Network> net_;
  agw::AccessGateway* agw_ = nullptr;
  ran::EnodeB* enb_a_ = nullptr;
  ran::EnodeB* enb_b_ = nullptr;
};

// --- handover ---------------------------------------------------------------

TEST_F(MobilityTest, HandoverKeepsSessionAndTraffic) {
  ran::UeLte& ue = attach_ue();
  const common::Ipv4 ip_before = *ue.ip();
  ASSERT_EQ(probe_downlink(ue), 10u);
  agw_->sessiond().poll_usage();
  const std::uint64_t usage_before =
      agw_->sessiond().find(ue.usim().imsi())->used_bytes;

  ASSERT_TRUE(ue.handover_to(*enb_b_));
  net_->run_for(2 * sim::kSecond);

  // Same session, same IP; traffic flows via the new cell.
  EXPECT_EQ(agw_->sessiond().active_sessions(), 1u);
  EXPECT_EQ(*ue.ip(), ip_before);
  EXPECT_EQ(probe_downlink(ue), 10u);
  EXPECT_EQ(enb_a_->active_ues(), 0);
  EXPECT_EQ(enb_b_->active_ues(), 1);
  EXPECT_EQ(enb_b_->stats().handovers_in, 1u);
  EXPECT_EQ(enb_a_->stats().handovers_out, 1u);
  EXPECT_EQ(agw_->lte().stats().path_switches, 1u);

  // Usage accounting continued across the handover.
  agw_->sessiond().poll_usage();
  EXPECT_GT(agw_->sessiond().find(ue.usim().imsi())->used_bytes,
            usage_before);

  // Uplink works from the new cell too.
  const std::uint64_t internet_before = net_->internet_rx_bytes();
  ue.send_uplink(common::Ipv4::from_octets(8, 8, 8, 8), 443, 500, 5);
  net_->run_for(1 * sim::kSecond);
  EXPECT_GT(net_->internet_rx_bytes(), internet_before);
}

TEST_F(MobilityTest, HandoverToFullCellFailsGracefully) {
  ran::EnodebConfig tiny;
  tiny.max_active_ues = 0;
  ran::EnodeB& full = net_->add_enodeb(*agw_, tiny);
  net_->run_for(1 * sim::kSecond);

  ran::UeLte& ue = attach_ue();
  EXPECT_FALSE(ue.handover_to(full));
  net_->run_for(1 * sim::kSecond);
  // Still served by the source cell; traffic unaffected.
  EXPECT_EQ(enb_a_->active_ues(), 1);
  EXPECT_EQ(probe_downlink(ue), 10u);
  EXPECT_EQ(agw_->lte().stats().path_switches, 0u);
}

TEST_F(MobilityTest, PingPongHandovers) {
  ran::UeLte& ue = attach_ue();
  for (int i = 0; i < 6; ++i) {
    ran::EnodeB& target = (i % 2 == 0) ? *enb_b_ : *enb_a_;
    ASSERT_TRUE(ue.handover_to(target)) << "handover " << i;
    net_->run_for(1 * sim::kSecond);
    ASSERT_EQ(probe_downlink(ue), 10u) << "handover " << i;
  }
  EXPECT_EQ(agw_->sessiond().active_sessions(), 1u);
  EXPECT_EQ(agw_->lte().stats().path_switches, 6u);
}

// --- idle / paging ------------------------------------------------------------

TEST_F(MobilityTest, IdleKeepsSessionButStopsRadio) {
  ran::UeLte& ue = attach_ue();
  ue.enter_idle();
  net_->run_for(2 * sim::kSecond);

  EXPECT_TRUE(ue.idle());
  EXPECT_TRUE(ue.registered());          // EMM-REGISTERED survives
  EXPECT_TRUE(ue.ip().has_value());      // address retained
  EXPECT_EQ(agw_->sessiond().active_sessions(), 1u);  // session survives
  EXPECT_TRUE(agw_->sessiond().find(ue.usim().imsi())->flows.idle);
  EXPECT_EQ(enb_a_->active_ues(), 0);    // radio context gone
  EXPECT_EQ(agw_->lte().stats().idle_transitions, 1u);
}

TEST_F(MobilityTest, DownlinkPagesIdleUeAndResumes) {
  ran::UeLte& ue = attach_ue();
  ue.enter_idle();
  net_->run_for(2 * sim::kSecond);
  ASSERT_TRUE(ue.idle());

  // Downlink arrives for the idle UE: the AGW pages, the UE answers with a
  // ServiceRequest, the bearer is rebuilt, and traffic flows again.
  net_->inject_downlink(*agw_, *ue.ip(), 1000, 5);
  net_->run_for(5 * sim::kSecond);

  EXPECT_GE(ue.pages_received(), 1u);
  EXPECT_FALSE(ue.idle());
  EXPECT_GE(agw_->lte().stats().pages_sent, 1u);
  EXPECT_EQ(agw_->lte().stats().service_requests, 1u);
  EXPECT_EQ(agw_->lte().stats().service_accepts, 1u);
  EXPECT_FALSE(agw_->sessiond().find(ue.usim().imsi())->flows.idle);
  EXPECT_EQ(enb_a_->active_ues(), 1);

  // The paging-trigger packets themselves were not delivered (no buffering)
  // but fresh downlink now reaches the UE.
  EXPECT_EQ(probe_downlink(ue), 10u);
}

TEST_F(MobilityTest, ExplicitServiceRequestResumes) {
  ran::UeLte& ue = attach_ue();
  ue.enter_idle();
  net_->run_for(2 * sim::kSecond);
  ASSERT_TRUE(ue.idle());

  ue.service_request();  // UE-originated wake-up (it has uplink to send)
  net_->run_for(2 * sim::kSecond);
  EXPECT_FALSE(ue.idle());
  const std::uint64_t internet_before = net_->internet_rx_bytes();
  ue.send_uplink(common::Ipv4::from_octets(8, 8, 8, 8), 443, 500, 5);
  net_->run_for(1 * sim::kSecond);
  EXPECT_GT(net_->internet_rx_bytes(), internet_before);
}

TEST_F(MobilityTest, IdleUsageNotCountedAndUplinkDropped) {
  ran::UeLte& ue = attach_ue();
  ASSERT_EQ(probe_downlink(ue), 10u);
  agw_->sessiond().poll_usage();
  const std::uint64_t usage_active =
      agw_->sessiond().find(ue.usim().imsi())->used_bytes;

  ue.enter_idle();
  net_->run_for(2 * sim::kSecond);

  // Stale uplink with the old tunnel id must not pass (no radio context).
  const auto drops_before =
      agw_->pipelined().pipeline().stats().dropped_no_match;
  datapath::PacketBatch stale;
  stale.packet = datapath::gtpu_encap(
      datapath::make_udp(*ue.ip(), common::Ipv4::from_octets(8, 8, 8, 8),
                         40000, 443, 100),
      agw_->sessiond().find(ue.usim().imsi())->flows.agw_teid_ul,
      enb_a_->config().address, common::Ipv4{1});
  agw_->ingress_from_ran(std::move(stale));
  net_->run_for(1 * sim::kSecond);
  EXPECT_GT(agw_->pipelined().pipeline().stats().dropped_no_match,
            drops_before);

  // Paging-trigger downlink is not billed as usage. (Disable paging
  // resume by detaching the camped UE object from the loop: just verify
  // the counter directly after one trigger burst.)
  agw_->sessiond().poll_usage();
  EXPECT_EQ(agw_->sessiond().find(ue.usim().imsi())->used_bytes,
            usage_active);
}

TEST_F(MobilityTest, ForgedServiceRequestRejected) {
  ran::UeLte& ue = attach_ue();
  ue.enter_idle();
  net_->run_for(2 * sim::kSecond);

  // An attacker replays a ServiceRequest with a bogus MAC via the eNodeB.
  // (Craft it radio-side: connect a raw context and send the NAS.)
  const std::uint64_t bad_mac_before = agw_->lte().stats().bad_mac;
  class Dummy : public ran::LteUeLink {
   public:
    void on_downlink_nas(common::Bytes) override {}
    void on_downlink_data(const datapath::PacketBatch&) override {}
    void on_rrc_release() override {}
  } dummy;
  const std::uint32_t id = enb_a_->rrc_connect(&dummy);
  ASSERT_NE(id, 0u);
  proto::lte::ServiceRequest forged;
  forged.m_tmsi = 0x1000;  // first assigned TMSI
  forged.mac = 0xDEADBEEF;
  enb_a_->send_initial_nas(
      id, proto::lte::encode_nas(proto::lte::NasMessage{forged}));
  net_->run_for(2 * sim::kSecond);

  EXPECT_GT(agw_->lte().stats().bad_mac, bad_mac_before);
  EXPECT_EQ(agw_->lte().stats().service_accepts, 0u);
  // The genuine UE's context is untouched: it can still resume.
  ue.service_request();
  net_->run_for(2 * sim::kSecond);
  EXPECT_FALSE(ue.idle());
}

TEST_F(MobilityTest, IdleSurvivesManyCycles) {
  ran::UeLte& ue = attach_ue();
  for (int cycle = 0; cycle < 5; ++cycle) {
    ue.enter_idle();
    net_->run_for(2 * sim::kSecond);
    ASSERT_TRUE(ue.idle()) << "cycle " << cycle;
    net_->inject_downlink(*agw_, *ue.ip(), 500, 2);  // page it back
    net_->run_for(5 * sim::kSecond);
    ASSERT_FALSE(ue.idle()) << "cycle " << cycle;
    ASSERT_EQ(probe_downlink(ue), 10u) << "cycle " << cycle;
  }
  EXPECT_EQ(agw_->sessiond().active_sessions(), 1u);
}

}  // namespace
}  // namespace magma
