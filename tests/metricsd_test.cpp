// Telemetry collection: ingestion, ordering, aggregate queries, codec.
#include <gtest/gtest.h>

#include "orc8r/metricsd.h"

namespace magma::orc8r {
namespace {

MetricSample sample(const std::string& gw, const std::string& name,
                    double value, sim::TimePoint t) {
  return MetricSample{gw, name, value, t};
}

TEST(Metricsd, SeriesAccumulatesInTimeOrder) {
  Metricsd m;
  m.ingest(sample("gw0", "sessions", 1, 10));
  m.ingest(sample("gw0", "sessions", 2, 30));
  m.ingest(sample("gw0", "sessions", 3, 20));  // out of order
  const auto series = m.series("sessions");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].time, 10);
  EXPECT_EQ(series[1].time, 20);
  EXPECT_EQ(series[2].time, 30);
}

TEST(Metricsd, SumLatestAcrossGateways) {
  Metricsd m;
  m.ingest(sample("gw0", "sessions", 5, 10));
  m.ingest(sample("gw1", "sessions", 7, 10));
  m.ingest(sample("gw0", "sessions", 6, 20));  // gw0 updated
  EXPECT_DOUBLE_EQ(m.sum_latest("sessions"), 13.0);
  EXPECT_DOUBLE_EQ(m.sum_latest("missing"), 0.0);
}

TEST(Metricsd, LatestPerGateway) {
  Metricsd m;
  m.ingest(sample("gw0", "cpu", 0.5, 10));
  m.ingest(sample("gw0", "cpu", 0.9, 20));
  EXPECT_DOUBLE_EQ(m.latest("gw0", "cpu").value(), 0.9);
  EXPECT_FALSE(m.latest("gw1", "cpu").has_value());
  EXPECT_FALSE(m.latest("gw0", "nope").has_value());
}

TEST(Metricsd, SumInWindow) {
  Metricsd m;
  for (int h = 0; h < 10; ++h) {
    m.ingest(sample("gw0", "bytes", 100, h * sim::kHour));
  }
  EXPECT_DOUBLE_EQ(m.sum_in_window("bytes", 0, 5 * sim::kHour), 500.0);
  EXPECT_DOUBLE_EQ(m.sum_in_window("bytes", 5 * sim::kHour, 10 * sim::kHour),
                   500.0);
  EXPECT_DOUBLE_EQ(m.sum_in_window("bytes", 20 * sim::kHour, 30 * sim::kHour),
                   0.0);
}

TEST(Metricsd, MetricNames) {
  Metricsd m;
  m.ingest(sample("gw0", "a", 1, 0));
  m.ingest(sample("gw0", "b", 1, 0));
  const auto names = m.metric_names();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST(MetricsdAlerts, FireAndRecoverPerGateway) {
  Metricsd m;
  m.add_alert_rule(AlertRule{"cpu-high", "cpu_total", 0.9, true});

  m.ingest(sample("gw0", "cpu_total", 0.5, 10));
  EXPECT_TRUE(m.active_alerts().empty());

  m.ingest(sample("gw0", "cpu_total", 0.95, 20));
  m.ingest(sample("gw1", "cpu_total", 0.97, 20));
  ASSERT_EQ(m.active_alerts().size(), 2u);
  EXPECT_EQ(m.alerts_fired(), 2u);

  // gw0 recovers; gw1 keeps firing with a refreshed value.
  m.ingest(sample("gw0", "cpu_total", 0.4, 30));
  m.ingest(sample("gw1", "cpu_total", 0.99, 30));
  const auto alerts = m.active_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].gateway_id, "gw1");
  EXPECT_DOUBLE_EQ(alerts[0].value, 0.99);
  EXPECT_EQ(m.alerts_fired(), 2u);  // refresh is not a new firing
}

TEST(MetricsdAlerts, FireBelowThreshold) {
  Metricsd m;
  m.add_alert_rule(AlertRule{"gw-offline", "checkin_ok", 0.5, false});
  m.ingest(sample("gw0", "checkin_ok", 1.0, 10));
  EXPECT_TRUE(m.active_alerts().empty());
  m.ingest(sample("gw0", "checkin_ok", 0.0, 20));
  EXPECT_EQ(m.active_alerts().size(), 1u);
}

TEST(MetricsdAlerts, RemoveRuleClearsFiring) {
  Metricsd m;
  m.add_alert_rule(AlertRule{"r", "x", 1.0, true});
  m.ingest(sample("gw0", "x", 5.0, 10));
  ASSERT_EQ(m.active_alerts().size(), 1u);
  m.remove_alert_rule("r");
  EXPECT_TRUE(m.active_alerts().empty());
  // Samples after removal do not fire.
  m.ingest(sample("gw0", "x", 9.0, 20));
  EXPECT_TRUE(m.active_alerts().empty());
}

TEST(MetricsdAlerts, ReAddReplacesRule) {
  Metricsd m;
  m.add_alert_rule(AlertRule{"r", "x", 10.0, true});
  m.ingest(sample("gw0", "x", 5.0, 10));
  EXPECT_TRUE(m.active_alerts().empty());
  m.add_alert_rule(AlertRule{"r", "x", 1.0, true});  // tightened
  m.ingest(sample("gw0", "x", 5.0, 20));
  EXPECT_EQ(m.active_alerts().size(), 1u);
}

TEST(MetricReport, CodecRoundTrip) {
  std::vector<MetricSample> samples = {
      sample("gw0", "sessions", 42.5, 123456789),
      sample("gw1", "cpu_user", 0.33, 987654321),
  };
  auto decoded = decode_metric_report(encode_metric_report(samples));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 2u);
  EXPECT_EQ(decoded.value()[0].gateway_id, "gw0");
  EXPECT_EQ(decoded.value()[0].name, "sessions");
  EXPECT_DOUBLE_EQ(decoded.value()[0].value, 42.5);
  EXPECT_EQ(decoded.value()[1].time, 987654321);
}

TEST(MetricReport, CodecRejectsGarbage) {
  EXPECT_FALSE(decode_metric_report(common::to_bytes("zz")).ok());
}

}  // namespace
}  // namespace magma::orc8r
