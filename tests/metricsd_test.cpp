// Telemetry collection: ingestion, ordering, aggregate queries, codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "orc8r/metricsd.h"
#include "rpc/wire.h"

namespace magma::orc8r {
namespace {

MetricSample sample(const std::string& gw, const std::string& name,
                    double value, sim::TimePoint t) {
  return MetricSample{gw, name, value, t};
}

HistogramSnapshot full_snapshot(const std::string& gw, const std::string& name,
                                const obs::Histogram& h,
                                sim::TimePoint t = 0) {
  HistogramSnapshot s;
  s.gateway_id = gw;
  s.name = name;
  s.bounds = h.bounds();
  s.counts = h.counts();
  s.sum = h.sum();
  s.time = t;
  return s;
}

TEST(Metricsd, SeriesAccumulatesInTimeOrder) {
  Metricsd m;
  m.ingest(sample("gw0", "sessions", 1, 10));
  m.ingest(sample("gw0", "sessions", 2, 30));
  m.ingest(sample("gw0", "sessions", 3, 20));  // out of order
  const auto series = m.series("sessions");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].time, 10);
  EXPECT_EQ(series[1].time, 20);
  EXPECT_EQ(series[2].time, 30);
}

TEST(Metricsd, SumLatestAcrossGateways) {
  Metricsd m;
  m.ingest(sample("gw0", "sessions", 5, 10));
  m.ingest(sample("gw1", "sessions", 7, 10));
  m.ingest(sample("gw0", "sessions", 6, 20));  // gw0 updated
  EXPECT_DOUBLE_EQ(m.sum_latest("sessions"), 13.0);
  EXPECT_DOUBLE_EQ(m.sum_latest("missing"), 0.0);
}

TEST(Metricsd, LatestPerGateway) {
  Metricsd m;
  m.ingest(sample("gw0", "cpu", 0.5, 10));
  m.ingest(sample("gw0", "cpu", 0.9, 20));
  EXPECT_DOUBLE_EQ(m.latest("gw0", "cpu").value(), 0.9);
  EXPECT_FALSE(m.latest("gw1", "cpu").has_value());
  EXPECT_FALSE(m.latest("gw0", "nope").has_value());
}

TEST(Metricsd, SumInWindow) {
  Metricsd m;
  for (int h = 0; h < 10; ++h) {
    m.ingest(sample("gw0", "bytes", 100, h * sim::kHour));
  }
  EXPECT_DOUBLE_EQ(m.sum_in_window("bytes", 0, 5 * sim::kHour), 500.0);
  EXPECT_DOUBLE_EQ(m.sum_in_window("bytes", 5 * sim::kHour, 10 * sim::kHour),
                   500.0);
  EXPECT_DOUBLE_EQ(m.sum_in_window("bytes", 20 * sim::kHour, 30 * sim::kHour),
                   0.0);
}

TEST(Metricsd, MetricNames) {
  Metricsd m;
  m.ingest(sample("gw0", "a", 1, 0));
  m.ingest(sample("gw0", "b", 1, 0));
  const auto names = m.metric_names();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST(MetricsdAlerts, FireAndRecoverPerGateway) {
  Metricsd m;
  m.add_alert_rule(AlertRule{"cpu-high", "cpu_total", 0.9, true});

  m.ingest(sample("gw0", "cpu_total", 0.5, 10));
  EXPECT_TRUE(m.active_alerts().empty());

  m.ingest(sample("gw0", "cpu_total", 0.95, 20));
  m.ingest(sample("gw1", "cpu_total", 0.97, 20));
  ASSERT_EQ(m.active_alerts().size(), 2u);
  EXPECT_EQ(m.alerts_fired(), 2u);

  // gw0 recovers; gw1 keeps firing with a refreshed value.
  m.ingest(sample("gw0", "cpu_total", 0.4, 30));
  m.ingest(sample("gw1", "cpu_total", 0.99, 30));
  const auto alerts = m.active_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].gateway_id, "gw1");
  EXPECT_DOUBLE_EQ(alerts[0].value, 0.99);
  EXPECT_EQ(m.alerts_fired(), 2u);  // refresh is not a new firing
}

TEST(MetricsdAlerts, FireBelowThreshold) {
  Metricsd m;
  m.add_alert_rule(AlertRule{"gw-offline", "checkin_ok", 0.5, false});
  m.ingest(sample("gw0", "checkin_ok", 1.0, 10));
  EXPECT_TRUE(m.active_alerts().empty());
  m.ingest(sample("gw0", "checkin_ok", 0.0, 20));
  EXPECT_EQ(m.active_alerts().size(), 1u);
}

TEST(MetricsdAlerts, RemoveRuleClearsFiring) {
  Metricsd m;
  m.add_alert_rule(AlertRule{"r", "x", 1.0, true});
  m.ingest(sample("gw0", "x", 5.0, 10));
  ASSERT_EQ(m.active_alerts().size(), 1u);
  m.remove_alert_rule("r");
  EXPECT_TRUE(m.active_alerts().empty());
  // Samples after removal do not fire.
  m.ingest(sample("gw0", "x", 9.0, 20));
  EXPECT_TRUE(m.active_alerts().empty());
}

TEST(MetricsdAlerts, ReAddReplacesRule) {
  Metricsd m;
  m.add_alert_rule(AlertRule{"r", "x", 10.0, true});
  m.ingest(sample("gw0", "x", 5.0, 10));
  EXPECT_TRUE(m.active_alerts().empty());
  m.add_alert_rule(AlertRule{"r", "x", 1.0, true});  // tightened
  m.ingest(sample("gw0", "x", 5.0, 20));
  EXPECT_EQ(m.active_alerts().size(), 1u);
}

TEST(MetricsdAlerts, RefiresAfterRecovery) {
  Metricsd m;
  m.add_alert_rule(AlertRule{"cpu-high", "cpu_total", 0.9, true});
  m.ingest(sample("gw0", "cpu_total", 0.95, 10));
  EXPECT_EQ(m.alerts_fired(), 1u);
  // Back in bounds: clears.
  m.ingest(sample("gw0", "cpu_total", 0.5, 20));
  EXPECT_TRUE(m.active_alerts().empty());
  // Crosses again: a *new* firing, not a refresh.
  m.ingest(sample("gw0", "cpu_total", 0.93, 30));
  ASSERT_EQ(m.active_alerts().size(), 1u);
  EXPECT_EQ(m.alerts_fired(), 2u);
  EXPECT_EQ(m.active_alerts()[0].since, 30);
}

TEST(MetricsdAlerts, GatewaysFireAndClearIndependently) {
  Metricsd m;
  m.add_alert_rule(AlertRule{"cpu-high", "cpu_total", 0.9, true});
  m.ingest(sample("gw0", "cpu_total", 0.95, 10));
  m.ingest(sample("gw1", "cpu_total", 0.2, 10));
  auto alerts = m.active_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].gateway_id, "gw0");
  // gw1 crossing does not disturb gw0's firing record.
  m.ingest(sample("gw1", "cpu_total", 0.99, 20));
  alerts = m.active_alerts();
  ASSERT_EQ(alerts.size(), 2u);
  // gw0 clearing leaves gw1 firing.
  m.ingest(sample("gw0", "cpu_total", 0.1, 30));
  alerts = m.active_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].gateway_id, "gw1");
}

TEST(MetricsdAlerts, DeltaRuleFiresOnGrowthOnly) {
  Metricsd m;
  m.add_alert_rule(
      AlertRule{"resets", "transport_resets", 0.0, true, AlertKind::kDelta});
  // First sample: no previous value, never fires (a freshly-registered
  // gateway reporting a nonzero counter is not an incident).
  m.ingest(sample("gw0", "transport_resets", 3, 10));
  EXPECT_TRUE(m.active_alerts().empty());
  // Flat: no growth, no alert.
  m.ingest(sample("gw0", "transport_resets", 3, 20));
  EXPECT_TRUE(m.active_alerts().empty());
  // Growth: fires.
  m.ingest(sample("gw0", "transport_resets", 4, 30));
  ASSERT_EQ(m.active_alerts().size(), 1u);
  EXPECT_EQ(m.alerts_fired(), 1u);
  // Flat again: clears.
  m.ingest(sample("gw0", "transport_resets", 4, 40));
  EXPECT_TRUE(m.active_alerts().empty());
}

TEST(MetricsdAlerts, DefaultTransportRules) {
  Metricsd m;
  install_default_transport_rules(m, 0.25);
  // SRTT below 2x baseline: quiet. Above: pages.
  m.ingest(sample("gw0", "transport_srtt_s", 0.3, 10));
  EXPECT_TRUE(m.active_alerts().empty());
  m.ingest(sample("gw0", "transport_srtt_s", 0.6, 20));
  ASSERT_EQ(m.active_alerts().size(), 1u);
  EXPECT_EQ(m.active_alerts()[0].rule, "transport_srtt_high");
  // Reset growth pages too.
  m.ingest(sample("gw0", "transport_resets", 0, 10));
  m.ingest(sample("gw0", "transport_resets", 1, 20));
  EXPECT_EQ(m.active_alerts().size(), 2u);
  // Re-install with a satellite-class baseline: idempotent by name, and the
  // firing SRTT alert clears under the relaxed threshold.
  install_default_transport_rules(m, 0.6);
  m.ingest(sample("gw0", "transport_srtt_s", 0.6, 30));
  const auto alerts = m.active_alerts();
  EXPECT_TRUE(std::none_of(alerts.begin(), alerts.end(), [](const auto& a) {
    return a.rule == "transport_srtt_high";
  }));
}

TEST(MetricsdAlerts, RtoAtCapGrowthPages) {
  // A control channel whose retransmission timer keeps hitting max_rto is
  // backed off as far as it can go: the default rules page on any growth of
  // the transport_rto_at_cap counter, and quiesce when it stops moving.
  Metricsd m;
  install_default_transport_rules(m, 0.25);
  m.ingest(sample("gw0", "transport_rto_at_cap", 0, 10));
  EXPECT_TRUE(m.active_alerts().empty());
  m.ingest(sample("gw0", "transport_rto_at_cap", 3, 20));
  ASSERT_EQ(m.active_alerts().size(), 1u);
  EXPECT_EQ(m.active_alerts()[0].rule, "transport_rto_at_cap_growth");
  EXPECT_EQ(m.active_alerts()[0].gateway_id, "gw0");
  m.ingest(sample("gw0", "transport_rto_at_cap", 3, 30));
  EXPECT_TRUE(m.active_alerts().empty());
}

TEST(MetricsdRetention, PerSeriesCapDropsOldest) {
  Metricsd m;
  m.set_retention(3);
  for (int i = 0; i < 10; ++i) {
    m.ingest(sample("gw0", "cpu", i, i * 10));
  }
  const auto series = m.series("cpu");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].value, 7.0);  // oldest trimmed first
  EXPECT_DOUBLE_EQ(series[2].value, 9.0);
  EXPECT_EQ(m.samples_dropped(), 7u);
  // Tightening the cap trims existing series immediately.
  m.set_retention(1);
  EXPECT_EQ(m.series("cpu").size(), 1u);
  EXPECT_EQ(m.samples_dropped(), 9u);
}

TEST(MetricsdHistograms, IngestMergeAndQuantiles) {
  Metricsd m;
  obs::Histogram gw0;
  obs::Histogram gw1;
  for (int i = 0; i < 50; ++i) gw0.observe(0.01);
  for (int i = 0; i < 50; ++i) gw1.observe(1.0);

  auto snapshot = [](const std::string& gw, const obs::Histogram& h) {
    return full_snapshot(gw, "attach_s", h);
  };
  m.ingest_histogram(snapshot("gw0", gw0));
  m.ingest_histogram(snapshot("gw1", gw1));

  EXPECT_EQ(m.histogram_count("attach_s"), 100u);
  EXPECT_EQ(m.histogram_names(), std::vector<std::string>{"attach_s"});
  // Merged across gateways: the median splits the two populations.
  EXPECT_LT(m.histogram_quantile("attach_s", 0.25), 0.1);
  EXPECT_GT(m.histogram_quantile("attach_s", 0.75), 0.3);
  EXPECT_EQ(m.histogram_count("missing"), 0u);
  EXPECT_DOUBLE_EQ(m.histogram_quantile("missing", 0.5), 0.0);

  // Cumulative snapshots replace, never double-count.
  for (int i = 0; i < 25; ++i) gw0.observe(0.01);
  m.ingest_histogram(snapshot("gw0", gw0));
  EXPECT_EQ(m.histogram_count("attach_s"), 125u);
}

TEST(MetricsdHistograms, MalformedSnapshotIgnored) {
  Metricsd m;
  HistogramSnapshot bad;
  bad.gateway_id = "gw0";
  bad.name = "x";
  bad.bounds = {1.0, 2.0};
  bad.counts = {1, 2};  // must be bounds+1
  m.ingest_histogram(bad);
  EXPECT_EQ(m.histogram_count("x"), 0u);
}

TEST(MetricsdHistograms, DeltaOverlaysStoredBase) {
  Metricsd m;
  obs::Histogram h;
  for (int i = 0; i < 10; ++i) h.observe(0.01);
  m.ingest_histogram(full_snapshot("gw0", "attach_s", h));
  ASSERT_EQ(m.histogram_count("attach_s"), 10u);

  // Ship only the changed buckets, as new *cumulative* values.
  const std::vector<std::uint64_t> before = h.counts();
  for (int i = 0; i < 5; ++i) h.observe(0.01);
  h.observe(3.0);
  HistogramSnapshot delta;
  delta.gateway_id = "gw0";
  delta.name = "attach_s";
  delta.delta = true;
  delta.sum = h.sum();
  const std::vector<std::uint64_t> after = h.counts();
  for (std::size_t i = 0; i < after.size(); ++i) {
    if (after[i] != before[i]) {
      delta.changed.emplace_back(static_cast<std::uint32_t>(i), after[i]);
    }
  }
  ASSERT_EQ(delta.changed.size(), 2u);
  m.ingest_histogram(delta);
  EXPECT_EQ(m.histogram_count("attach_s"), 16u);
  EXPECT_EQ(m.merged_histogram("attach_s").counts(), after);
  EXPECT_DOUBLE_EQ(m.merged_histogram("attach_s").sum(), h.sum());
  EXPECT_EQ(m.histogram_delta_orphans(), 0u);
}

TEST(MetricsdHistograms, DeltaWithoutBaseIsAnOrphan) {
  Metricsd m;
  HistogramSnapshot delta;
  delta.gateway_id = "gw0";
  delta.name = "never_seen";
  delta.delta = true;
  delta.changed = {{0, 4}};
  m.ingest_histogram(delta);
  EXPECT_EQ(m.histogram_delta_orphans(), 1u);
  EXPECT_EQ(m.histogram_count("never_seen"), 0u);
}

TEST(MetricsdHistograms, DeltaWithOutOfRangeBucketIsAnOrphan) {
  Metricsd m;
  obs::Histogram h;
  h.observe(0.5);
  m.ingest_histogram(full_snapshot("gw0", "attach_s", h));

  HistogramSnapshot delta;
  delta.gateway_id = "gw0";
  delta.name = "attach_s";
  delta.delta = true;
  delta.changed = {{static_cast<std::uint32_t>(h.counts().size()), 9}};
  m.ingest_histogram(delta);
  EXPECT_EQ(m.histogram_delta_orphans(), 1u);
  // The stored base is untouched.
  EXPECT_EQ(m.histogram_count("attach_s"), 1u);
}

TEST(HistogramReport, DeltaCodecRoundTrip) {
  HistogramSnapshot delta;
  delta.gateway_id = "gw0";
  delta.name = "attach_s";
  delta.delta = true;
  delta.changed = {{3, 17}, {12, 4}};
  delta.sum = 2.5;
  delta.time = 9 * sim::kSecond;
  obs::Histogram h;
  h.observe(1.0);
  const HistogramSnapshot full = full_snapshot("gw1", "detach_s", h);

  auto decoded = decode_histogram_report(encode_histogram_report({delta, full}));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 2u);
  EXPECT_TRUE(decoded.value()[0].delta);
  EXPECT_EQ(decoded.value()[0].changed, delta.changed);
  EXPECT_TRUE(decoded.value()[0].bounds.empty());
  EXPECT_DOUBLE_EQ(decoded.value()[0].sum, 2.5);
  EXPECT_EQ(decoded.value()[0].time, 9 * sim::kSecond);
  EXPECT_FALSE(decoded.value()[1].delta);
  EXPECT_EQ(decoded.value()[1].counts, h.counts());
}

TEST(HistogramReport, CodecRejectsUnknownKindAndOversizedDelta) {
  // kind byte beyond the known 0/1 must be rejected, not skipped.
  {
    rpc::Writer w;
    w.u64(1);
    w.str("gw0");
    w.str("h");
    w.u8(7);  // unknown kind
    EXPECT_FALSE(decode_histogram_report(std::move(w).take()).ok());
  }
  // A delta whose entry count exceeds what the payload can hold is rejected
  // before any allocation.
  {
    rpc::Writer w;
    w.u64(1);
    w.str("gw0");
    w.str("h");
    w.u8(1);
    w.u32(0xFFFFFFFF);  // claims 4B entries with no bytes behind them
    EXPECT_FALSE(decode_histogram_report(std::move(w).take()).ok());
  }
}

TEST(HistogramReport, CodecRoundTrip) {
  obs::Histogram h;
  h.observe(0.05);
  h.observe(2.5);
  std::vector<HistogramSnapshot> snapshots = {
      full_snapshot("gw0", "span_accessd_establish_s", h, 42 * sim::kSecond),
  };
  auto decoded = decode_histogram_report(encode_histogram_report(snapshots));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 1u);
  EXPECT_EQ(decoded.value()[0].gateway_id, "gw0");
  EXPECT_EQ(decoded.value()[0].name, "span_accessd_establish_s");
  EXPECT_EQ(decoded.value()[0].bounds, h.bounds());
  EXPECT_EQ(decoded.value()[0].counts, h.counts());
  EXPECT_DOUBLE_EQ(decoded.value()[0].sum, h.sum());
  EXPECT_EQ(decoded.value()[0].time, 42 * sim::kSecond);
}

TEST(HistogramReport, CodecRejectsGarbage) {
  EXPECT_FALSE(decode_histogram_report(common::to_bytes("bogus")).ok());
}

TEST(MetricReport, CodecRoundTrip) {
  std::vector<MetricSample> samples = {
      sample("gw0", "sessions", 42.5, 123456789),
      sample("gw1", "cpu_user", 0.33, 987654321),
  };
  auto decoded = decode_metric_report(encode_metric_report(samples));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 2u);
  EXPECT_EQ(decoded.value()[0].gateway_id, "gw0");
  EXPECT_EQ(decoded.value()[0].name, "sessions");
  EXPECT_DOUBLE_EQ(decoded.value()[0].value, 42.5);
  EXPECT_EQ(decoded.value()[1].time, 987654321);
}

TEST(MetricReport, CodecRejectsGarbage) {
  EXPECT_FALSE(decode_metric_report(common::to_bytes("zz")).ok());
}

}  // namespace
}  // namespace magma::orc8r
