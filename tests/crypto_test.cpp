// Known-answer and property tests for the crypto substrate.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/aes128.h"
#include "crypto/hmac.h"
#include "crypto/kdf.h"
#include "crypto/milenage.h"
#include "crypto/sha256.h"
#include "proto/lte/nas.h"

namespace magma {
namespace {

using common::from_hex;
using common::to_hex;

template <std::size_t N>
std::array<std::uint8_t, N> arr(const std::string& hex) {
  const common::Bytes bytes = from_hex(hex);
  EXPECT_EQ(bytes.size(), N) << hex;
  std::array<std::uint8_t, N> out{};
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return out;
}

// --- AES-128 (FIPS-197 Appendix C.1) ---------------------------------------

TEST(Aes128, Fips197KnownAnswer) {
  const crypto::Key128 key = arr<16>("000102030405060708090a0b0c0d0e0f");
  const crypto::Block pt = arr<16>("00112233445566778899aabbccddeeff");
  crypto::Aes128 aes(key);
  const crypto::Block ct = aes.encrypt(pt);
  EXPECT_EQ(to_hex(common::BytesView(ct.data(), ct.size())),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Sp800_38aVector) {
  // NIST SP 800-38A ECB-AES128 block #1.
  const crypto::Key128 key = arr<16>("2b7e151628aed2a6abf7158809cf4f3c");
  const crypto::Block pt = arr<16>("6bc1bee22e409f96e93d7e117393172a");
  crypto::Aes128 aes(key);
  const crypto::Block ct = aes.encrypt(pt);
  EXPECT_EQ(to_hex(common::BytesView(ct.data(), ct.size())),
            "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, DifferentKeysDifferentCiphertext) {
  const crypto::Block pt = arr<16>("00000000000000000000000000000000");
  crypto::Aes128 a(arr<16>("00000000000000000000000000000001"));
  crypto::Aes128 b(arr<16>("00000000000000000000000000000002"));
  EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

// --- SHA-256 (FIPS 180-4 examples) ------------------------------------------

TEST(Sha256, EmptyString) {
  const auto d = crypto::sha256({});
  EXPECT_EQ(to_hex(common::BytesView(d.data(), d.size())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  const auto data = common::to_bytes("abc");
  const auto d = crypto::sha256(data);
  EXPECT_EQ(to_hex(common::BytesView(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const auto data = common::to_bytes(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  const auto d = crypto::sha256(data);
  EXPECT_EQ(to_hex(common::BytesView(d.data(), d.size())),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  crypto::Sha256 h;
  const common::Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finish();
  EXPECT_EQ(to_hex(common::BytesView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  common::Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(i));
  for (std::size_t split = 0; split <= data.size(); split += 37) {
    crypto::Sha256 h;
    h.update(common::BytesView(data.data(), split));
    h.update(common::BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), crypto::sha256(data)) << "split=" << split;
  }
}

// --- HMAC-SHA256 (RFC 4231) --------------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  const common::Bytes key(20, 0x0b);
  const auto d = crypto::hmac_sha256(key, common::to_bytes("Hi There"));
  EXPECT_EQ(to_hex(common::BytesView(d.data(), d.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto d = crypto::hmac_sha256(
      common::to_bytes("Jefe"),
      common::to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(common::BytesView(d.data(), d.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const common::Bytes key(131, 0xaa);
  const auto d = crypto::hmac_sha256(
      key, common::to_bytes("Test Using Larger Than Block-Size Key - Hash "
                            "Key First"));
  EXPECT_EQ(to_hex(common::BytesView(d.data(), d.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- Milenage (TS 35.207 Test Set 1) ------------------------------------------

struct MilenageVector {
  const char* k;
  const char* rand;
  const char* sqn;
  const char* amf;
  const char* op;
  const char* opc;
  const char* f1;   // MAC-A
  const char* f1s;  // MAC-S
  const char* f2;   // RES
  const char* f3;   // CK
  const char* f4;   // IK
  const char* f5;   // AK
  const char* f5s;  // AK*
};

// Test Set 1 from 3GPP TS 35.207 §4.3 (the canonical conformance vector).
const MilenageVector kVectors[] = {
    {"465b5ce8b199b49faa5f0a2ee238a6bc", "23553cbe9637a89d218ae64dae47bf35",
     "ff9bb4d0b607", "b9b9", "cdc202d5123e20f62b6d676ac72cb318",
     "cd63cb71954a9f4e48a5994e37a02baf", "4a9ffac354dfafb3", "01cfaf9ec4e871e9",
     "a54211d5e3ba50bf", "b40ba9a3c58b2a05bbf0d987b21bf8cb",
     "f769bcd751044604127672711c6d3441", "aa689c648370", "451e8beca43b"},
};

TEST(Milenage, OpcDerivation) {
  for (const auto& v : kVectors) {
    crypto::Milenage milenage(arr<16>(v.k), arr<16>(v.op));
    EXPECT_EQ(to_hex(common::BytesView(milenage.opc().data(), 16)), v.opc);
  }
}

TEST(Milenage, ConformanceVectors) {
  for (const auto& v : kVectors) {
    const crypto::Milenage milenage =
        crypto::Milenage::from_opc(arr<16>(v.k), arr<16>(v.opc));
    const crypto::MilenageOutput out =
        milenage.compute(arr<16>(v.rand), arr<6>(v.sqn), arr<2>(v.amf));
    EXPECT_EQ(to_hex(common::BytesView(out.mac_a.data(), 8)), v.f1);
    EXPECT_EQ(to_hex(common::BytesView(out.mac_s.data(), 8)), v.f1s);
    EXPECT_EQ(to_hex(common::BytesView(out.res.data(), 8)), v.f2);
    EXPECT_EQ(to_hex(common::BytesView(out.ck.data(), 16)), v.f3);
    EXPECT_EQ(to_hex(common::BytesView(out.ik.data(), 16)), v.f4);
    EXPECT_EQ(to_hex(common::BytesView(out.ak.data(), 6)), v.f5);
    EXPECT_EQ(to_hex(common::BytesView(out.ak_s.data(), 6)), v.f5s);
  }
}

TEST(Milenage, OutputsDependOnEveryInput) {
  const crypto::Key128 k = arr<16>("465b5ce8b199b49faa5f0a2ee238a6bc");
  const crypto::Key128 opc = arr<16>("cd63cb71954a9f4e48a5994e37a02baf");
  const auto rand = arr<16>("23553cbe9637a89d218ae64dae47bf35");
  const auto sqn = arr<6>("ff9bb4d0b607");
  const std::array<std::uint8_t, 2> amf = {0xb9, 0xb9};

  const crypto::Milenage base = crypto::Milenage::from_opc(k, opc);
  const auto ref = base.compute(rand, sqn, amf);

  // Flip one bit of each input; every core output must change.
  crypto::Key128 k2 = k;
  k2[3] ^= 0x01;
  EXPECT_NE(crypto::Milenage::from_opc(k2, opc).compute(rand, sqn, amf).res,
            ref.res);
  auto rand2 = rand;
  rand2[15] ^= 0x80;
  EXPECT_NE(base.compute(rand2, sqn, amf).res, ref.res);
  auto sqn2 = sqn;
  sqn2[5] ^= 0x01;
  EXPECT_NE(base.compute(rand, sqn2, amf).mac_a, ref.mac_a);
  // SQN does not feed f2/f5 (they depend on RAND/keys only).
  EXPECT_EQ(base.compute(rand, sqn2, amf).res, ref.res);
}

// --- KDF hierarchy -------------------------------------------------------------

TEST(Kdf, KasmeDeterministicAndKeyDependent) {
  const auto ck = arr<16>("b40ba9a3c58b2a05bbf0d987b21bf8cb");
  const auto ik = arr<16>("f769bcd751044604127672711c6d3441");
  const auto sqn_ak = arr<6>("55f328b43577");
  crypto::ServingNetwork sn;
  const auto kasme1 = crypto::derive_kasme(ck, ik, sn, sqn_ak);
  const auto kasme2 = crypto::derive_kasme(ck, ik, sn, sqn_ak);
  EXPECT_EQ(kasme1, kasme2);

  crypto::ServingNetwork other;
  other.plmn = "00102";
  EXPECT_NE(kasme1, crypto::derive_kasme(ck, ik, other, sqn_ak));
}

TEST(Kdf, DistinctSubKeys) {
  crypto::Key256 kasme{};
  kasme[0] = 1;
  const auto enc = crypto::derive_k_nas_enc(kasme, crypto::NasAlgorithm::kEea2);
  const auto integrity =
      crypto::derive_k_nas_int(kasme, crypto::NasAlgorithm::kEia2);
  const auto kenb = crypto::derive_k_enb(kasme, 0);
  EXPECT_NE(enc, integrity);
  EXPECT_NE(enc, kenb);
  EXPECT_NE(integrity, kenb);
}

TEST(Kdf, NasMacDependsOnCountAndMessage) {
  crypto::Key256 key{};
  key[5] = 7;
  const auto msg = common::to_bytes("attach-accept");
  const std::uint32_t mac0 = crypto::nas_mac(key, 0, msg);
  EXPECT_EQ(mac0, crypto::nas_mac(key, 0, msg));
  EXPECT_NE(mac0, crypto::nas_mac(key, 1, msg));
  EXPECT_NE(mac0, crypto::nas_mac(key, 0, common::to_bytes("attach-reject")));
}

TEST(NasCipher, RoundTripAllLengths) {
  crypto::Key256 key{};
  key[0] = 0x42;
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 32u, 100u, 1000u}) {
    common::Bytes plain(len);
    for (std::size_t i = 0; i < len; ++i) {
      plain[i] = static_cast<std::uint8_t>(i * 7);
    }
    const common::Bytes cipher = crypto::nas_cipher(key, 5, true, plain);
    EXPECT_EQ(cipher.size(), len);
    if (len > 4) {
      EXPECT_NE(cipher, plain);
    }
    EXPECT_EQ(crypto::nas_cipher(key, 5, true, cipher), plain);
  }
}

TEST(NasCipher, KeystreamDependsOnCountDirectionKey) {
  crypto::Key256 k1{};
  k1[0] = 1;
  crypto::Key256 k2{};
  k2[0] = 2;
  const common::Bytes plain(32, 0x00);  // ciphertext == keystream
  const auto base = crypto::nas_cipher(k1, 0, true, plain);
  EXPECT_NE(crypto::nas_cipher(k1, 1, true, plain), base);   // count
  EXPECT_NE(crypto::nas_cipher(k1, 0, false, plain), base);  // direction
  EXPECT_NE(crypto::nas_cipher(k2, 0, true, plain), base);   // key
  EXPECT_EQ(crypto::nas_cipher(k1, 0, true, plain), base);   // deterministic
}

TEST(NasCipher, CipheredNasPduIsOpaqueWithoutKey) {
  // An on-path observer of a ciphered AttachAccept cannot decode it (and
  // with high probability cannot even parse it).
  crypto::Key256 key{};
  key[3] = 9;
  proto::lte::AttachAccept accept;
  accept.m_tmsi = 77;
  accept.bearer.pdn_address = common::Ipv4::from_octets(172, 16, 0, 9);
  const common::Bytes plain =
      proto::lte::encode_nas(proto::lte::NasMessage{accept});
  const common::Bytes cipher = crypto::nas_cipher(key, 0, true, plain);
  auto sniffed = proto::lte::decode_nas(cipher);
  if (sniffed.ok()) {
    // If it happens to parse, it must not be the original message.
    EXPECT_NE(sniffed.value(), proto::lte::NasMessage{accept});
  }
  // The legitimate receiver recovers it exactly.
  auto decoded =
      proto::lte::decode_nas(crypto::nas_cipher(key, 0, true, cipher));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), proto::lte::NasMessage{accept});
}

TEST(ConstantTimeEqual, Behaviour) {
  const auto a = common::to_bytes("same");
  const auto b = common::to_bytes("same");
  const auto c = common::to_bytes("diff");
  const auto d = common::to_bytes("longer");
  EXPECT_TRUE(common::constant_time_equal(a, b));
  EXPECT_FALSE(common::constant_time_equal(a, c));
  EXPECT_FALSE(common::constant_time_equal(a, d));
}

}  // namespace
}  // namespace magma
