// Data plane: packet codec, flow matching, meters, pipeline walks.
#include <gtest/gtest.h>

#include "datapath/flow_table.h"
#include "datapath/gtpu.h"
#include "datapath/meter.h"
#include "datapath/packet.h"
#include "datapath/pipeline.h"
#include "sim/random.h"

namespace magma::datapath {
namespace {

const common::Ipv4 kUe = common::Ipv4::from_octets(172, 16, 0, 5);
const common::Ipv4 kServer = common::Ipv4::from_octets(8, 8, 8, 8);
const common::Ipv4 kEnb = common::Ipv4::from_octets(10, 100, 0, 1);
const common::Ipv4 kAgw = common::Ipv4::from_octets(10, 1, 0, 1);

// --- Packet codec --------------------------------------------------------------

TEST(Packet, PlainSerializeParseRoundTrip) {
  Packet pkt = make_udp(kUe, kServer, 40000, 443, 987);
  pkt.ip.dscp = 12;
  const common::Bytes wire = pkt.serialize();
  EXPECT_EQ(wire.size(), pkt.wire_size());
  auto parsed = Packet::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), pkt);
}

TEST(Packet, GtpuSerializeParseRoundTrip) {
  Packet inner = make_tcp(kServer, kUe, 443, 40000, 1400);
  Packet pkt = gtpu_encap(inner, common::Teid{0x1234}, kAgw, kEnb);
  const common::Bytes wire = pkt.serialize();
  auto parsed = Packet::parse(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.value().gtpu.has_value());
  EXPECT_EQ(parsed.value().gtpu->teid.value, 0x1234u);
  EXPECT_EQ(parsed.value().ip.src, kServer);
  EXPECT_EQ(parsed.value().payload_bytes, 1400u);
  EXPECT_EQ(parsed.value(), pkt);
}

TEST(Packet, WireSizeIncludesTunnelOverhead) {
  Packet plain = make_udp(kUe, kServer, 1, 2, 100);
  Packet tunneled = gtpu_encap(plain, common::Teid{1}, kAgw, kEnb);
  EXPECT_EQ(tunneled.wire_size() - plain.wire_size(),
            Ipv4Header::kSize + L4Header::kSize + GtpuHeader::kSize);
}

TEST(Packet, ParseRejectsGarbage) {
  EXPECT_FALSE(Packet::parse(common::to_bytes("garbage")).ok());
  EXPECT_FALSE(Packet::parse({}).ok());
}

TEST(Packet, ParseRejectsTruncated) {
  const common::Bytes wire = make_udp(kUe, kServer, 1, 2, 100).serialize();
  for (std::size_t keep : {5u, 19u, 25u}) {
    EXPECT_FALSE(
        Packet::parse(common::BytesView(wire.data(), keep)).ok())
        << keep;
  }
}

TEST(Packet, DecapRestoresInner) {
  Packet inner = make_udp(kUe, kServer, 7, 8, 55);
  Packet round = gtpu_decap(gtpu_encap(inner, common::Teid{9}, kAgw, kEnb));
  EXPECT_EQ(round, inner);
}

// --- IpPrefix / FlowMatch ---------------------------------------------------------

TEST(IpPrefix, PrefixMatching) {
  IpPrefix block{common::Ipv4::from_octets(172, 16, 0, 0), 24};
  EXPECT_TRUE(block.matches(common::Ipv4::from_octets(172, 16, 0, 200)));
  EXPECT_FALSE(block.matches(common::Ipv4::from_octets(172, 16, 1, 1)));
  IpPrefix host{kUe, 32};
  EXPECT_TRUE(host.matches(kUe));
  EXPECT_FALSE(host.matches(common::Ipv4{kUe.addr + 1}));
  IpPrefix any{common::Ipv4{0}, 0};
  EXPECT_TRUE(any.matches(kServer));
}

TEST(FlowMatch, WildcardsMatchEverything) {
  FlowMatch match;  // all fields absent
  EXPECT_TRUE(match.matches(make_udp(kUe, kServer, 1, 2, 3),
                            Direction::kUplink));
  EXPECT_TRUE(match.matches(make_tcp(kServer, kUe, 1, 2, 3),
                            Direction::kDownlink));
}

TEST(FlowMatch, EachFieldFilters) {
  Packet pkt = make_udp(kUe, kServer, 1000, 443, 10);

  FlowMatch dir;
  dir.direction = Direction::kUplink;
  EXPECT_TRUE(dir.matches(pkt, Direction::kUplink));
  EXPECT_FALSE(dir.matches(pkt, Direction::kDownlink));

  FlowMatch proto;
  proto.ip_proto = IpProto::kTcp;
  EXPECT_FALSE(proto.matches(pkt, Direction::kUplink));

  FlowMatch port;
  port.l4_dst = 443;
  EXPECT_TRUE(port.matches(pkt, Direction::kUplink));
  port.l4_dst = 80;
  EXPECT_FALSE(port.matches(pkt, Direction::kUplink));

  FlowMatch tunnel;
  tunnel.tunnel_id = common::Teid{5};
  EXPECT_FALSE(tunnel.matches(pkt, Direction::kUplink));  // not encapsulated
  Packet enc = gtpu_encap(pkt, common::Teid{5}, kAgw, kEnb);
  EXPECT_TRUE(tunnel.matches(enc, Direction::kUplink));
}

// --- FlowTable ----------------------------------------------------------------------

TEST(FlowTable, PriorityOrder) {
  FlowTable table;
  FlowEntry low;
  low.priority = 1;
  low.cookie = 1;
  low.actions = {Action::output(1)};
  FlowEntry high;
  high.priority = 10;
  high.cookie = 2;
  high.actions = {Action::output(2)};
  table.add(low);
  table.add(high);

  FlowEntry* hit = table.lookup(make_udp(kUe, kServer, 1, 2, 3),
                                Direction::kUplink);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, 2u);
}

TEST(FlowTable, FirstAddedWinsOnTie) {
  FlowTable table;
  FlowEntry a;
  a.priority = 5;
  a.cookie = 1;
  FlowEntry b;
  b.priority = 5;
  b.cookie = 2;
  table.add(a);
  table.add(b);
  EXPECT_EQ(table.lookup(make_udp(kUe, kServer, 1, 2, 3),
                         Direction::kUplink)->cookie,
            1u);
}

TEST(FlowTable, RemoveByCookie) {
  FlowTable table;
  for (int i = 0; i < 5; ++i) {
    FlowEntry e;
    e.cookie = static_cast<std::uint64_t>(i % 2);
    table.add(e);
  }
  EXPECT_EQ(table.remove_by_cookie(0), 3u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.remove_by_cookie(0), 0u);
}

// --- TokenBucket --------------------------------------------------------------------

TEST(TokenBucket, EnforcesRateOverTime) {
  sim::TimePoint now = 0;
  TokenBucket bucket(MeterConfig{8000.0, 1000}, now);  // 1000 B/s, 1000 B burst
  // Burst drains immediately.
  EXPECT_TRUE(bucket.allow(1000, now));
  EXPECT_FALSE(bucket.allow(1, now));
  // After one second, 1000 bytes of tokens are back.
  now += sim::kSecond;
  EXPECT_TRUE(bucket.allow(1000, now));
  EXPECT_FALSE(bucket.allow(1000, now));
}

TEST(TokenBucket, BurstCapped) {
  TokenBucket bucket(MeterConfig{8000.0, 500}, 0);
  // Long idle must not accumulate beyond the burst.
  EXPECT_FALSE(bucket.allow(501, 100 * sim::kSecond));
  EXPECT_TRUE(bucket.allow(500, 100 * sim::kSecond));
}

TEST(TokenBucket, UnlimitedWhenRateZero) {
  TokenBucket bucket(MeterConfig{0, 1}, 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.allow(1 << 20, 0));
}

TEST(TokenBucket, LongRunRateAccuracy) {
  TokenBucket bucket(MeterConfig{1e6, 12500}, 0);  // 1 Mbps
  std::uint64_t passed = 0;
  sim::TimePoint now = 0;
  for (int i = 0; i < 10000; ++i) {
    now += sim::kMillisecond;
    if (bucket.allow(1250, now)) passed += 1250;  // offering 10 Mbps
  }
  // 10 s at 1 Mbps = 1.25 MB (+ burst).
  EXPECT_NEAR(static_cast<double>(passed), 1.25e6, 0.05e6);
}

// --- Pipeline -------------------------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  void install_session(std::uint64_t cookie, common::Ipv4 ue,
                       common::Teid ul_teid, std::uint32_t meter = 0) {
    // Minimal 3-table session like pipelined installs.
    FlowEntry classify_ul;
    classify_ul.priority = 10;
    classify_ul.cookie = cookie;
    classify_ul.match.direction = Direction::kUplink;
    classify_ul.match.tunnel_id = ul_teid;
    classify_ul.actions = {Action::pop_gtpu(),
                           Action::goto_table(kTableEnforce)};
    pipeline.table(kTableClassify).add(classify_ul);

    FlowEntry classify_dl;
    classify_dl.priority = 10;
    classify_dl.cookie = cookie;
    classify_dl.match.direction = Direction::kDownlink;
    classify_dl.match.ip_dst = IpPrefix{ue, 32};
    classify_dl.actions = {Action::goto_table(kTableEnforce)};
    pipeline.table(kTableClassify).add(classify_dl);

    FlowEntry enforce;
    enforce.priority = 10;
    enforce.cookie = cookie;
    if (meter != 0) enforce.actions.push_back(Action::set_meter(meter));
    enforce.actions.push_back(Action::goto_table(kTableEgress));
    pipeline.table(kTableEnforce).add(enforce);

    FlowEntry egress_ul;
    egress_ul.priority = 10;
    egress_ul.cookie = cookie;
    egress_ul.match.direction = Direction::kUplink;
    egress_ul.actions = {Action::output(kPortSgi)};
    pipeline.table(kTableEgress).add(egress_ul);

    FlowEntry egress_dl;
    egress_dl.priority = 10;
    egress_dl.cookie = cookie;
    egress_dl.match.direction = Direction::kDownlink;
    egress_dl.actions = {Action::push_gtpu(common::Teid{0x99}, kEnb),
                         Action::output(kPortRan)};
    pipeline.table(kTableEgress).add(egress_dl);
  }

  Pipeline pipeline;
};

TEST_F(PipelineTest, UplinkDecapsAndForwards) {
  install_session(1, kUe, common::Teid{0x10});
  Packet pkt = gtpu_encap(make_udp(kUe, kServer, 1, 2, 100),
                          common::Teid{0x10}, kEnb, kAgw);
  const PipelineResult result =
      pipeline.process(pkt, Direction::kUplink, 0);
  EXPECT_EQ(result.verdict, Verdict::kForwarded);
  EXPECT_EQ(result.out_port, kPortSgi);
  EXPECT_FALSE(result.packet.gtpu.has_value());
}

TEST_F(PipelineTest, DownlinkEncapsTowardRan) {
  install_session(1, kUe, common::Teid{0x10});
  const PipelineResult result = pipeline.process(
      make_udp(kServer, kUe, 443, 40000, 100), Direction::kDownlink, 0);
  EXPECT_EQ(result.verdict, Verdict::kForwarded);
  EXPECT_EQ(result.out_port, kPortRan);
  ASSERT_TRUE(result.packet.gtpu.has_value());
  EXPECT_EQ(result.packet.gtpu->teid.value, 0x99u);
  EXPECT_EQ(result.packet.outer_ip->dst, kEnb);
}

TEST_F(PipelineTest, TableMissDrops) {
  install_session(1, kUe, common::Teid{0x10});
  const PipelineResult result = pipeline.process(
      make_udp(kServer, common::Ipv4::from_octets(172, 16, 0, 99), 1, 2, 10),
      Direction::kDownlink, 0);
  EXPECT_EQ(result.verdict, Verdict::kDroppedNoMatch);
  EXPECT_EQ(pipeline.stats().dropped_no_match, 1u);
}

TEST_F(PipelineTest, MeterDropsExcess) {
  pipeline.meters().install(7, MeterConfig{8000.0, 1000}, 0);
  install_session(1, kUe, common::Teid{0x10}, 7);
  // First ~1000 bytes conform; the rest exceed the bucket.
  int forwarded = 0;
  int dropped = 0;
  for (int i = 0; i < 10; ++i) {
    const PipelineResult r = pipeline.process(
        make_udp(kServer, kUe, 1, 2, 172), Direction::kDownlink, 0);
    if (r.verdict == Verdict::kForwarded) ++forwarded;
    if (r.verdict == Verdict::kDroppedByMeter) ++dropped;
  }
  EXPECT_GT(forwarded, 0);
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(forwarded + dropped, 10);
}

TEST_F(PipelineTest, BatchChargesCountersOnce) {
  install_session(1, kUe, common::Teid{0x10});
  PacketBatch batch;
  batch.packet = make_udp(kServer, kUe, 1, 2, 1000);
  batch.count = 64;
  const PipelineResult result =
      pipeline.process_batch(batch, Direction::kDownlink, 0);
  EXPECT_EQ(result.verdict, Verdict::kForwarded);
  EXPECT_EQ(pipeline.stats().forwarded_packets, 64u);
  const FlowCounters counters =
      pipeline.table(kTableEnforce).counters_for_cookie(1);
  EXPECT_EQ(counters.packets, 64u);
  EXPECT_EQ(counters.bytes, 64u * batch.packet.wire_size());
}

TEST_F(PipelineTest, RemoveSessionRulesClearsAllTables) {
  install_session(1, kUe, common::Teid{0x10});
  EXPECT_EQ(pipeline.total_flow_entries(), 5u);
  EXPECT_EQ(pipeline.remove_session_rules(1), 5u);
  EXPECT_EQ(pipeline.total_flow_entries(), 0u);
}

TEST_F(PipelineTest, DropActionIsExplicit) {
  FlowEntry blocker;
  blocker.priority = 100;
  blocker.cookie = 9;
  blocker.actions = {Action::drop()};
  pipeline.table(kTableClassify).add(blocker);
  const PipelineResult result = pipeline.process(
      make_udp(kUe, kServer, 1, 2, 3), Direction::kUplink, 0);
  EXPECT_EQ(result.verdict, Verdict::kDroppedByPolicy);
}

TEST_F(PipelineTest, DscpRewrite) {
  FlowEntry mark;
  mark.priority = 10;
  mark.actions = {Action::set_dscp(46), Action::output(kPortSgi)};
  pipeline.table(kTableClassify).add(mark);
  const PipelineResult result = pipeline.process(
      make_udp(kUe, kServer, 1, 2, 3), Direction::kUplink, 0);
  EXPECT_EQ(result.packet.ip.dscp, 46);
}

// --- Microflow cache -----------------------------------------------------------

TEST_F(PipelineTest, CacheHitsOnRepeatedFlow) {
  install_session(1, kUe, common::Teid{0x10});
  const Packet pkt = make_udp(kServer, kUe, 443, 40000, 100);
  for (int i = 0; i < 10; ++i) {
    pipeline.process(pkt, Direction::kDownlink, 0);
  }
  EXPECT_EQ(pipeline.stats().cache_misses, 1u);
  EXPECT_EQ(pipeline.stats().cache_hits, 9u);
  // Counters identical to ten slow-path walks.
  EXPECT_EQ(pipeline.table(kTableEnforce).counters_for_cookie(1).packets,
            10u);
}

TEST_F(PipelineTest, CacheInvalidatedByRuleChange) {
  install_session(1, kUe, common::Teid{0x10});
  const Packet pkt = make_udp(kServer, kUe, 443, 40000, 100);
  EXPECT_EQ(pipeline.process(pkt, Direction::kDownlink, 0).verdict,
            Verdict::kForwarded);
  // Remove the session: the cached path must not survive.
  pipeline.remove_session_rules(1);
  EXPECT_EQ(pipeline.process(pkt, Direction::kDownlink, 0).verdict,
            Verdict::kDroppedNoMatch);
  // Reinstall: forwarding resumes (fresh fill).
  install_session(1, kUe, common::Teid{0x10});
  EXPECT_EQ(pipeline.process(pkt, Direction::kDownlink, 0).verdict,
            Verdict::kForwarded);
}

TEST_F(PipelineTest, CacheNegativeEntriesInvalidateToo) {
  const Packet pkt = make_udp(kServer, kUe, 443, 40000, 100);
  // Miss on an empty pipeline gets cached as no-match...
  EXPECT_EQ(pipeline.process(pkt, Direction::kDownlink, 0).verdict,
            Verdict::kDroppedNoMatch);
  EXPECT_EQ(pipeline.process(pkt, Direction::kDownlink, 0).verdict,
            Verdict::kDroppedNoMatch);
  // ...until a session is installed.
  install_session(1, kUe, common::Teid{0x10});
  EXPECT_EQ(pipeline.process(pkt, Direction::kDownlink, 0).verdict,
            Verdict::kForwarded);
}

TEST_F(PipelineTest, MeterExhaustionNotFrozenByCache) {
  pipeline.meters().install(7, MeterConfig{8000.0, 400}, 0);
  install_session(1, kUe, common::Teid{0x10}, 7);
  const Packet pkt = make_udp(kServer, kUe, 443, 40000, 172);  // 200B wire
  sim::TimePoint now = 0;
  // Drain the bucket (2 packets), then see drops.
  EXPECT_EQ(pipeline.process(pkt, Direction::kDownlink, now).verdict,
            Verdict::kForwarded);
  EXPECT_EQ(pipeline.process(pkt, Direction::kDownlink, now).verdict,
            Verdict::kForwarded);
  EXPECT_EQ(pipeline.process(pkt, Direction::kDownlink, now).verdict,
            Verdict::kDroppedByMeter);
  // After refill, the flow forwards again (a meter-drop was not cached as
  // the flow's permanent fate).
  now += 10 * sim::kSecond;
  EXPECT_EQ(pipeline.process(pkt, Direction::kDownlink, now).verdict,
            Verdict::kForwarded);
}

// Equivalence sweep: identical traffic through cache-on and cache-off
// pipelines must produce identical verdicts, stats, and usage counters.
class CacheEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheEquivalence, CacheIsBehaviorallyTransparent) {
  sim::Rng rng(GetParam());
  Pipeline cached;
  Pipeline uncached;
  uncached.set_flow_cache_enabled(false);

  auto install = [](Pipeline& p, std::uint64_t cookie, common::Ipv4 ue,
                    std::uint32_t meter_rate) {
    if (meter_rate > 0) {
      p.meters().install(static_cast<std::uint32_t>(cookie),
                         MeterConfig{static_cast<double>(meter_rate), 5000},
                         0);
    }
    FlowEntry dl;
    dl.priority = 10;
    dl.cookie = cookie;
    dl.match.direction = Direction::kDownlink;
    dl.match.ip_dst = IpPrefix{ue, 32};
    if (meter_rate > 0) {
      dl.actions.push_back(
          Action::set_meter(static_cast<std::uint32_t>(cookie)));
    }
    dl.actions.push_back(Action::push_gtpu(common::Teid{9}, kEnb));
    dl.actions.push_back(Action::output(kPortRan));
    p.table(kTableClassify).add(dl);
  };

  for (std::uint64_t c = 1; c <= 8; ++c) {
    const common::Ipv4 ue{kUe.addr + static_cast<std::uint32_t>(c)};
    const std::uint32_t rate = c % 2 == 0 ? 80000u : 0u;
    install(cached, c, ue, rate);
    install(uncached, c, ue, rate);
  }

  sim::TimePoint now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += static_cast<sim::Duration>(rng.uniform_int(5 * sim::kMillisecond));
    const common::Ipv4 dst{kUe.addr +
                           static_cast<std::uint32_t>(rng.uniform_int(10))};
    PacketBatch batch;
    batch.packet = make_udp(kServer, dst, 443, 40000,
                            100 + static_cast<std::uint32_t>(
                                      rng.uniform_int(1300)));
    batch.count = 1 + rng.uniform_int(16);
    const PipelineResult a =
        cached.process_batch(batch, Direction::kDownlink, now);
    const PipelineResult b =
        uncached.process_batch(batch, Direction::kDownlink, now);
    ASSERT_EQ(a.verdict, b.verdict) << "iteration " << i;
    ASSERT_EQ(a.out_count, b.out_count) << "iteration " << i;
    ASSERT_EQ(a.out_port, b.out_port) << "iteration " << i;
    ASSERT_EQ(a.packet, b.packet) << "iteration " << i;
  }
  EXPECT_EQ(cached.stats().forwarded_packets,
            uncached.stats().forwarded_packets);
  EXPECT_EQ(cached.stats().forwarded_bytes, uncached.stats().forwarded_bytes);
  EXPECT_EQ(cached.stats().dropped_by_meter,
            uncached.stats().dropped_by_meter);
  EXPECT_EQ(cached.stats().dropped_no_match,
            uncached.stats().dropped_no_match);
  for (std::uint64_t c = 1; c <= 8; ++c) {
    EXPECT_EQ(cached.table(kTableClassify).counters_for_cookie(c).bytes,
              uncached.table(kTableClassify).counters_for_cookie(c).bytes);
  }
  EXPECT_GT(cached.stats().cache_hits, 1000u);
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_F(PipelineTest, GotoMustIncreaseTableId) {
  // An entry in table 1 pointing back to table 0 must not loop: the
  // backward goto is ignored and the entry (having no terminal action)
  // drops the packet.
  FlowEntry fwd;
  fwd.priority = 10;
  fwd.actions = {Action::goto_table(kTableEnforce)};
  pipeline.table(kTableClassify).add(fwd);
  FlowEntry back;
  back.priority = 10;
  back.actions = {Action::goto_table(kTableClassify)};
  pipeline.table(kTableEnforce).add(back);
  const PipelineResult result = pipeline.process(
      make_udp(kUe, kServer, 1, 2, 3), Direction::kUplink, 0);
  EXPECT_EQ(result.verdict, Verdict::kDroppedByPolicy);
}

}  // namespace
}  // namespace magma::datapath
