// The service health plane: Service303 status registry, the gateway-status
// checkin codec, and orc8r statusd's missed-checkin state machine with its
// default alert rules.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/status.h"
#include "orc8r/metricsd.h"
#include "orc8r/statusd.h"
#include "sim/kernel.h"
#include "sim/time.h"

namespace magma {
namespace {

// --- Service303 registry -----------------------------------------------------

TEST(Service303, RegisterIsIdempotentAndCountersAccumulate) {
  sim::Kernel kernel;
  obs::StatusRegistry registry(kernel);
  obs::Service303& svc = registry.register_service("sessiond");
  EXPECT_EQ(&svc, &registry.register_service("sessiond"));
  EXPECT_EQ(registry.size(), 1u);

  svc.count_request(3);
  svc.count_deadline();
  kernel.run_until(2 * sim::kSecond);
  svc.count_error("create_session: no bearer");
  svc.set_phase("draining");

  const obs::ServiceStatus& s = svc.status();
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.deadlines, 1u);
  EXPECT_EQ(s.last_error, "create_session: no bearer");
  EXPECT_EQ(s.last_error_time, 2 * sim::kSecond);
  EXPECT_EQ(s.phase, "draining");
  EXPECT_EQ(registry.find("sessiond"), &svc);
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(Service303, NullSafeHelpersAreNoOps) {
  obs::svc_phase(nullptr, "x");
  obs::svc_request(nullptr);
  obs::svc_error(nullptr, "x");
  obs::svc_deadline(nullptr);
}

TEST(Service303, SnapshotIsNameOrderedWithUptime) {
  sim::Kernel kernel;
  obs::StatusRegistry registry(kernel);
  registry.register_service("mobilityd");
  kernel.run_until(5 * sim::kSecond);
  registry.register_service("accessd");
  kernel.run_until(8 * sim::kSecond);

  const std::vector<obs::ServiceStatus> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].service, "accessd");
  EXPECT_EQ(snap[1].service, "mobilityd");
  EXPECT_EQ(snap[0].uptime, 3 * sim::kSecond);
  EXPECT_EQ(snap[1].uptime, 8 * sim::kSecond);
}

// --- checkin codec -----------------------------------------------------------

TEST(GatewayStatusCodec, RoundTrip) {
  std::vector<obs::ServiceStatus> in(2);
  in[0].service = "accessd";
  in[0].phase = "attaching";
  in[0].uptime = 90 * sim::kSecond;
  in[0].requests = 12;
  in[0].errors = 2;
  in[0].deadlines = 1;
  in[0].last_error = "control plane overloaded";
  in[0].last_error_time = 42 * sim::kSecond;
  in[1].service = "sessiond";

  const common::Bytes wire = obs::encode_gateway_status(in);
  auto out = obs::decode_gateway_status(wire);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 2u);
  EXPECT_EQ(out.value()[0].service, "accessd");
  EXPECT_EQ(out.value()[0].phase, "attaching");
  EXPECT_EQ(out.value()[0].uptime, 90 * sim::kSecond);
  EXPECT_EQ(out.value()[0].requests, 12u);
  EXPECT_EQ(out.value()[0].errors, 2u);
  EXPECT_EQ(out.value()[0].deadlines, 1u);
  EXPECT_EQ(out.value()[0].last_error, "control plane overloaded");
  EXPECT_EQ(out.value()[0].last_error_time, 42 * sim::kSecond);
  EXPECT_EQ(out.value()[1].service, "sessiond");
  EXPECT_EQ(out.value()[1].last_error_time, -1);
}

TEST(GatewayStatusCodec, EmptySnapshotRoundTrips) {
  const common::Bytes wire = obs::encode_gateway_status({});
  auto out = obs::decode_gateway_status(wire);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(GatewayStatusCodec, RejectsCorruptInput) {
  std::vector<obs::ServiceStatus> in(1);
  in[0].service = "magmad";
  common::Bytes wire = obs::encode_gateway_status(in);

  // Truncation at every prefix must fail-soft, never crash.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    auto out = obs::decode_gateway_status(
        common::BytesView(wire.data(), len));
    EXPECT_FALSE(out.ok()) << "truncated to " << len;
  }
  // Trailing garbage is rejected too (at_end check).
  wire.push_back(0xAB);
  EXPECT_FALSE(obs::decode_gateway_status(wire).ok());
}

// --- statusd health machine --------------------------------------------------

orc8r::StatusdConfig fast_statusd() {
  orc8r::StatusdConfig config;
  config.checkin_interval = 10 * sim::kSecond;
  config.sweep_interval = 5 * sim::kSecond;
  config.degraded_after_missed = 2;
  config.unreachable_after_missed = 5;
  return config;
}

TEST(Statusd, HealthDegradesThenGoesUnreachableOnMissedCheckins) {
  sim::Kernel kernel;
  orc8r::Statusd statusd(kernel, nullptr, fast_statusd());

  statusd.record_checkin("gw0", {});
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kHealthy);
  EXPECT_EQ(statusd.missed_checkins("gw0"), 0u);

  // One missed interval: still healthy.
  kernel.run_until(15 * sim::kSecond);
  statusd.sweep_now();
  EXPECT_EQ(statusd.missed_checkins("gw0"), 1u);
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kHealthy);

  // Two missed: degraded.
  kernel.run_until(25 * sim::kSecond);
  statusd.sweep_now();
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kDegraded);

  // Four missed: still only degraded.
  kernel.run_until(45 * sim::kSecond);
  statusd.sweep_now();
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kDegraded);

  // Five missed: unreachable.
  kernel.run_until(55 * sim::kSecond);
  statusd.sweep_now();
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kUnreachable);

  EXPECT_EQ(statusd.stats().to_degraded, 1u);
  EXPECT_EQ(statusd.stats().to_unreachable, 1u);
  EXPECT_EQ(statusd.stats().recoveries, 0u);
}

TEST(Statusd, CheckinRecoversImmediatelyAndStoresServices) {
  sim::Kernel kernel;
  orc8r::Statusd statusd(kernel, nullptr, fast_statusd());

  statusd.record_checkin("gw0", {});
  kernel.run_until(60 * sim::kSecond);
  statusd.sweep_now();
  ASSERT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kUnreachable);

  // Recovery happens inside record_checkin — no sweep needed.
  std::vector<obs::ServiceStatus> services(1);
  services[0].service = "sessiond";
  services[0].requests = 7;
  statusd.record_checkin("gw0", services);
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kHealthy);
  EXPECT_EQ(statusd.missed_checkins("gw0"), 0u);
  EXPECT_EQ(statusd.stats().recoveries, 1u);

  const orc8r::GatewayStatus* gw = statusd.gateway("gw0");
  ASSERT_NE(gw, nullptr);
  EXPECT_EQ(gw->checkins, 2u);
  ASSERT_EQ(gw->services.size(), 1u);
  EXPECT_EQ(gw->services[0].service, "sessiond");
  EXPECT_EQ(gw->services[0].requests, 7u);
}

TEST(Statusd, UnknownGatewayReadsHealthy) {
  sim::Kernel kernel;
  orc8r::Statusd statusd(kernel, nullptr);
  EXPECT_EQ(statusd.health("never-seen"), orc8r::GatewayHealth::kHealthy);
  EXPECT_EQ(statusd.missed_checkins("never-seen"), 0u);
  EXPECT_EQ(statusd.gateway("never-seen"), nullptr);
  EXPECT_TRUE(statusd.tracked_gateways().empty());
}

TEST(Statusd, StartRunsThePeriodicSweep) {
  sim::Kernel kernel;
  orc8r::Statusd statusd(kernel, nullptr, fast_statusd());
  EXPECT_FALSE(statusd.started());
  statusd.start();
  statusd.start();  // idempotent
  EXPECT_TRUE(statusd.started());

  statusd.record_checkin("gw0", {});
  kernel.run_until(61 * sim::kSecond);
  // 5 s cadence over 61 s: twelve sweeps, and the gateway went unreachable
  // without anyone calling sweep_now().
  EXPECT_GE(statusd.stats().sweeps, 12u);
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kUnreachable);
}

TEST(Statusd, GaugesAndDefaultAlertLifecycle) {
  sim::Kernel kernel;
  orc8r::Metricsd metricsd;
  orc8r::install_default_health_rules(metricsd);
  orc8r::install_default_health_rules(metricsd);  // idempotent
  orc8r::Statusd statusd(kernel, &metricsd, fast_statusd());

  statusd.record_checkin("gw0", {});
  statusd.record_checkin("gw1", {});
  ASSERT_TRUE(metricsd.latest("gw0", "gateway_health").has_value());
  EXPECT_EQ(*metricsd.latest("gw0", "gateway_health"), 0.0);
  EXPECT_TRUE(metricsd.active_alerts().empty());

  // gw1 keeps checking in; gw0 goes silent and pages.
  kernel.run_until(55 * sim::kSecond);
  statusd.record_checkin("gw1", {});
  statusd.sweep_now();
  EXPECT_EQ(*metricsd.latest("gw0", "gateway_health"), 2.0);
  EXPECT_EQ(*metricsd.latest("gw0", "gateway_missed_checkins"), 5.0);
  EXPECT_EQ(*metricsd.latest("gw1", "gateway_health"), 0.0);

  const std::vector<orc8r::ActiveAlert> alerts = metricsd.active_alerts();
  const auto firing = [&alerts](const std::string& rule,
                                const std::string& gw) {
    return std::any_of(alerts.begin(), alerts.end(),
                       [&](const orc8r::ActiveAlert& a) {
                         return a.rule == rule && a.gateway_id == gw;
                       });
  };
  EXPECT_TRUE(firing("gateway_degraded", "gw0"));
  EXPECT_TRUE(firing("gateway_unreachable", "gw0"));
  EXPECT_FALSE(firing("gateway_degraded", "gw1"));
  EXPECT_FALSE(firing("gateway_unreachable", "gw1"));

  // Recovery clears both alerts on the very next sample.
  statusd.record_checkin("gw0", {});
  EXPECT_EQ(*metricsd.latest("gw0", "gateway_health"), 0.0);
  EXPECT_TRUE(metricsd.active_alerts().empty());
}

TEST(Statusd, PerServiceErrorGrowthAlertsWhileGatewayStaysHealthy) {
  sim::Kernel kernel;
  orc8r::Metricsd metricsd;
  orc8r::Statusd statusd(kernel, &metricsd, fast_statusd());

  obs::ServiceStatus mme;
  mme.service = "mme";
  mme.errors = 0;
  statusd.record_checkin("gw0", {mme});
  EXPECT_EQ(statusd.stats().service_rules_installed, 1u);
  ASSERT_TRUE(metricsd.latest("gw0", "service_errors_mme").has_value());
  EXPECT_TRUE(metricsd.active_alerts().empty());  // first sample baselines

  // The error counter grows between two healthy checkins: the kDelta rule
  // fires even though the gateway-level FSM never leaves Healthy — this is
  // exactly the failure the missed-checkin machine cannot see.
  mme.errors = 4;
  statusd.record_checkin("gw0", {mme});
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kHealthy);
  const std::vector<orc8r::ActiveAlert> alerts = metricsd.active_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "service_errors_growth_mme");
  EXPECT_EQ(alerts[0].gateway_id, "gw0");

  // Growth stops: the next flat sample clears the alert.
  statusd.record_checkin("gw0", {mme});
  EXPECT_TRUE(metricsd.active_alerts().empty());

  // One rule per distinct service name across the whole fleet.
  statusd.record_checkin("gw1", {mme});
  EXPECT_EQ(statusd.stats().service_rules_installed, 1u);

  // An unhealthy gateway's checkins do not push service gauges — a frozen
  // counter during an outage must not fire a stale delta; growth surfaces
  // once, on the first healthy checkin after recovery.
  kernel.run_until(55 * sim::kSecond);
  statusd.sweep_now();
  ASSERT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kUnreachable);
  const double frozen = *metricsd.latest("gw0", "service_errors_mme");
  // record_checkin recovers the gateway first, so this checkin pushes again.
  mme.errors = 9;
  statusd.record_checkin("gw0", {mme});
  EXPECT_EQ(*metricsd.latest("gw0", "service_errors_mme"), 9.0);
  EXPECT_NE(frozen, 9.0);
}

}  // namespace
}  // namespace magma
