// Link model: serialization delay, FIFO, loss, outage.
#include <gtest/gtest.h>

#include "sim/link.h"

namespace magma::sim {
namespace {

TEST(Link, SerializationPlusPropagation) {
  Kernel kernel;
  LinkConfig config;
  config.bandwidth_bps = 10e6;
  config.latency = 5 * kMillisecond;
  Link link(kernel, Rng(1), config);

  TimePoint arrival = -1;
  link.transmit(1250, [&]() { arrival = kernel.now(); });  // 1 ms ser.
  kernel.run();
  EXPECT_EQ(arrival, 6 * kMillisecond);
}

TEST(Link, FifoQueueing) {
  Kernel kernel;
  LinkConfig config;
  config.bandwidth_bps = 10e6;
  config.latency = 0;
  Link link(kernel, Rng(1), config);

  std::vector<TimePoint> arrivals;
  for (int i = 0; i < 3; ++i) {
    link.transmit(1250, [&]() { arrivals.push_back(kernel.now()); });
  }
  kernel.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 1 * kMillisecond);
  EXPECT_EQ(arrivals[1], 2 * kMillisecond);
  EXPECT_EQ(arrivals[2], 3 * kMillisecond);
}

TEST(Link, LossRateApproximatelyRespected) {
  Kernel kernel;
  LinkConfig config;
  config.bandwidth_bps = 1e12;
  config.latency = 0;
  config.loss_probability = 0.2;
  Link link(kernel, Rng(99), config);

  int delivered = 0;
  int dropped = 0;
  for (int i = 0; i < 10000; ++i) {
    link.transmit(100, [&]() { ++delivered; }, [&]() { ++dropped; });
  }
  kernel.run();
  EXPECT_EQ(delivered + dropped, 10000);
  EXPECT_NEAR(dropped, 2000, 200);
  EXPECT_EQ(link.stats().packets_dropped, static_cast<std::uint64_t>(dropped));
}

TEST(Link, DownLinkDropsEverything) {
  Kernel kernel;
  Link link(kernel, Rng(1), lan_link());
  link.set_up(false);
  int delivered = 0;
  int dropped = 0;
  for (int i = 0; i < 10; ++i) {
    link.transmit(100, [&]() { ++delivered; }, [&]() { ++dropped; });
  }
  kernel.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dropped, 10);

  link.set_up(true);
  link.transmit(100, [&]() { ++delivered; });
  kernel.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Link, JitterBoundsArrival) {
  Kernel kernel;
  LinkConfig config;
  config.bandwidth_bps = 1e12;
  config.latency = 10 * kMillisecond;
  config.jitter = 5 * kMillisecond;
  Link link(kernel, Rng(5), config);

  std::vector<TimePoint> arrivals;
  // One packet at a time to avoid queueing effects.
  for (int i = 0; i < 100; ++i) {
    Kernel k2;
    Link l2(k2, Rng(static_cast<std::uint64_t>(i)), config);
    TimePoint t = 0;
    l2.transmit(100, [&]() { t = k2.now(); });
    k2.run();
    arrivals.push_back(t);
  }
  for (TimePoint t : arrivals) {
    EXPECT_GE(t, 10 * kMillisecond);
    EXPECT_LT(t, 15 * kMillisecond + kMicrosecond);
  }
}

TEST(Link, Profiles) {
  EXPECT_GT(satellite_backhaul().latency, microwave_backhaul().latency);
  EXPECT_GT(satellite_backhaul().loss_probability,
            fiber_backhaul().loss_probability);
  EXPECT_GT(fiber_backhaul().bandwidth_bps,
            satellite_backhaul().bandwidth_bps);
}

}  // namespace
}  // namespace magma::sim
