// Fault tolerance (§3.3): small fault domains, checkpoint/restore onto a
// backup AGW, crash-recovery invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/network.h"

namespace magma {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<core::Network>();
    agw0_ = &net_->add_agw(agw::bare_metal_j3160());
    agw1_ = &net_->add_agw(agw::bare_metal_j3160());
    enb0_ = &net_->add_enodeb(*agw0_);
    enb1_ = &net_->add_enodeb(*agw1_);
    net_->run_for(2 * sim::kSecond);
  }

  ran::UeLte& attach_ue(ran::EnodeB& enb) {
    const agw::SubscriberData sub = net_->provision_subscriber();
    net_->sync_all_config();
    ran::UeLte& ue = net_->add_ue_lte(sub);
    bool ok = false;
    ue.attach(enb, [&](const ran::AttachOutcome& o) { ok = o.success; });
    net_->run_for(20 * sim::kSecond);
    EXPECT_TRUE(ok);
    return ue;
  }

  std::unique_ptr<core::Network> net_;
  agw::AccessGateway* agw0_ = nullptr;
  agw::AccessGateway* agw1_ = nullptr;
  ran::EnodeB* enb0_ = nullptr;
  ran::EnodeB* enb1_ = nullptr;
};

// §3.3: "The failure of a single AGW would impact the set of UEs currently
// served by the attached base stations, but has no impact on the rest of
// the network."
TEST_F(FaultTest, AgwFailureIsContainedToItsFaultDomain) {
  ran::UeLte& ue0 = attach_ue(*enb0_);
  ran::UeLte& ue1 = attach_ue(*enb1_);

  // "Fail" agw0's backhaul AND stop serving: simulate by cutting its
  // backhaul and clearing its data plane (a crash wipes the process).
  net_->set_backhaul_up(*agw0_, false);
  agw0_->sessiond().end_session(ue0.usim().imsi()).ok();

  // UE1 on agw1 is completely unaffected.
  net_->inject_downlink(*agw1_, *ue1.ip(), 1400, 100);
  net_->run_for(2 * sim::kSecond);
  EXPECT_EQ(ue1.traffic().rx_packets, 100u);

  // And new attaches on agw1 still work (orchestrator reachable there).
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  ran::UeLte& ue2 = net_->add_ue_lte(sub);
  bool ok = false;
  ue2.attach(*enb1_, [&](const ran::AttachOutcome& o) { ok = o.success; });
  net_->run_for(20 * sim::kSecond);
  EXPECT_TRUE(ok);
}

// §3.3: checkpointed runtime state brings a backup instance into service.
TEST_F(FaultTest, BackupAgwResumesFromShippedCheckpoint) {
  ran::UeLte& ue = attach_ue(*enb0_);
  net_->inject_downlink(*agw0_, *ue.ip(), 1400, 50);
  net_->run_for(3 * sim::kSecond);
  agw0_->sessiond().poll_usage();
  const std::uint64_t used =
      agw0_->sessiond().find(ue.usim().imsi())->used_bytes;
  ASSERT_GT(used, 0u);

  // Wait for magmad to ship a checkpoint to the orchestrator.
  net_->run_for(2 * sim::kMinute);
  const auto image = net_->orchestrator().stored_checkpoint("gw0");
  ASSERT_TRUE(image.has_value());

  // Bring up a brand-new AGW from the image (the "backup cloud instance").
  agw::AccessGateway& backup = net_->add_agw(agw::virtual_xeon(4));
  ASSERT_TRUE(backup.restore(*image).ok());

  // The session exists on the backup with its usage intact, the subscriber
  // cache is warm, and the data plane forwards for the UE immediately.
  const agw::SessionRecord* session =
      backup.sessiond().find(ue.usim().imsi());
  ASSERT_NE(session, nullptr);
  EXPECT_GE(session->used_bytes, used);
  EXPECT_TRUE(backup.subscriberdb().get(ue.usim().imsi()).has_value());
  EXPECT_EQ(backup.mobilityd().lookup(ue.usim().imsi()).value(), *ue.ip());

  datapath::PacketBatch batch;
  batch.packet = datapath::make_udp(common::Ipv4::from_octets(8, 8, 8, 8),
                                    *ue.ip(), 443, 40000, 1000);
  batch.count = 10;
  const auto result = backup.pipelined().pipeline().process_batch(
      batch, datapath::Direction::kDownlink, net_->kernel().now());
  EXPECT_EQ(result.verdict, datapath::Verdict::kForwarded);
}

TEST_F(FaultTest, RestoredStateIsByteIdenticalOnRecheckpoint) {
  attach_ue(*enb0_);
  attach_ue(*enb0_);
  agw0_->sessiond().poll_usage();
  const common::Bytes image = agw0_->checkpoint();

  agw::AccessGateway& backup = net_->add_agw(agw::virtual_xeon(2));
  ASSERT_TRUE(backup.restore(image).ok());
  // Checkpoint of the restored instance equals the original image
  // (checkpointing is a pure function of the state it captures).
  EXPECT_EQ(backup.checkpoint(), image);
}

TEST_F(FaultTest, RestoreRejectsCorruptImage) {
  agw::AccessGateway& backup = net_->add_agw(agw::virtual_xeon(2));
  EXPECT_FALSE(backup.restore(common::to_bytes("not a checkpoint")).ok());
  common::Bytes truncated = agw0_->checkpoint();
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(backup.restore(truncated).ok());
}

// A UE whose AGW lost state simply re-attaches (§3.4: "most runtime state
// is both ephemeral and recoverable in the event of failure").
TEST_F(FaultTest, UeRecoversByReattaching) {
  ran::UeLte& ue = attach_ue(*enb0_);
  // Simulate total AGW state loss (crash without checkpoint restore):
  agw0_->sessiond().end_session(ue.usim().imsi()).ok();
  ASSERT_EQ(agw0_->sessiond().active_sessions(), 0u);

  // Downlink now drops (no session)...
  const auto before = agw0_->pipelined().pipeline().stats().dropped_no_match;
  net_->inject_downlink(*agw0_, *ue.ip(), 1400, 10);
  net_->run_for(1 * sim::kSecond);
  EXPECT_GT(agw0_->pipelined().pipeline().stats().dropped_no_match, before);

  // ...until the UE re-attaches.
  bool ok = false;
  ue.attach(*enb0_, [&](const ran::AttachOutcome& o) { ok = o.success; });
  net_->run_for(20 * sim::kSecond);
  ASSERT_TRUE(ok);
  net_->inject_downlink(*agw0_, *ue.ip(), 1400, 10);
  net_->run_for(1 * sim::kSecond);
  EXPECT_GT(ue.traffic().rx_packets, 0u);
}

// §3.2 device management: the orchestrator must notice a partitioned gateway
// within a bounded number of missed checkins, page on it, and clear cleanly
// once the gateway checks in again — all from the statusd gauges alone.
TEST(CheckinStaleness, AlertLifecycleOnPartitionAndRecovery) {
  core::NetworkConfig config;
  config.magmad.checkin_interval = 5 * sim::kSecond;
  config.statusd.sweep_interval = 2 * sim::kSecond;
  config.statusd.degraded_after_missed = 2;
  config.statusd.unreachable_after_missed = 5;
  core::Network net(config);
  agw::AccessGateway& agw0 = net.add_agw(agw::bare_metal_j3160());
  net.add_agw(agw::bare_metal_j3160());
  net.run_for(12 * sim::kSecond);

  const orc8r::Statusd& statusd = net.orchestrator().statusd();
  ASSERT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kHealthy);
  ASSERT_EQ(statusd.health("gw1"), orc8r::GatewayHealth::kHealthy);
  // The heartbeat carries the gateway's Service303 snapshot.
  const orc8r::GatewayStatus* gw0 = statusd.gateway("gw0");
  ASSERT_NE(gw0, nullptr);
  EXPECT_FALSE(gw0->services.empty());

  const auto firing = [&net](const std::string& rule, const std::string& gw) {
    const auto alerts = net.orchestrator().metrics().active_alerts();
    return std::any_of(alerts.begin(), alerts.end(),
                       [&](const orc8r::ActiveAlert& a) {
                         return a.rule == rule && a.gateway_id == gw;
                       });
  };
  EXPECT_FALSE(firing("gateway_degraded", "gw0"));

  // Partition gw0's backhaul. Detection bound: unreachable_after_missed ×
  // checkin_interval + sweep_interval past the last successful checkin.
  net.set_backhaul_up(agw0, false);
  net.run_for(14 * sim::kSecond);  // ~3 intervals missed
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kDegraded);
  EXPECT_TRUE(firing("gateway_degraded", "gw0"));
  EXPECT_FALSE(firing("gateway_unreachable", "gw0"));

  net.run_for(16 * sim::kSecond);  // past the unreachable bound
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kUnreachable);
  EXPECT_GE(statusd.missed_checkins("gw0"), 5u);
  EXPECT_TRUE(firing("gateway_unreachable", "gw0"));
  // The healthy gateway never pages.
  EXPECT_EQ(statusd.health("gw1"), orc8r::GatewayHealth::kHealthy);
  EXPECT_FALSE(firing("gateway_degraded", "gw1"));

  // Heal the partition: the next successful checkin recovers immediately and
  // the same gauges clear both alerts.
  net.set_backhaul_up(agw0, true);
  net.run_for(15 * sim::kSecond);
  EXPECT_EQ(statusd.health("gw0"), orc8r::GatewayHealth::kHealthy);
  EXPECT_GE(statusd.stats().recoveries, 1u);
  EXPECT_GE(statusd.stats().to_degraded, 1u);
  EXPECT_GE(statusd.stats().to_unreachable, 1u);
  EXPECT_FALSE(firing("gateway_degraded", "gw0"));
  EXPECT_FALSE(firing("gateway_unreachable", "gw0"));
  EXPECT_EQ(statusd.health("gw1"), orc8r::GatewayHealth::kHealthy);
}

}  // namespace
}  // namespace magma
