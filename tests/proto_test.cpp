// Protocol codecs (NAS, S1AP, NGAP, 5G NAS, RADIUS, GTP-C) and the EMM FSM.
#include <gtest/gtest.h>

#include "proto/lte/emm_fsm.h"
#include "proto/lte/gtpc.h"
#include "proto/lte/nas.h"
#include "proto/lte/s1ap.h"
#include "proto/nr5g/nas5g.h"
#include "proto/nr5g/ngap.h"
#include "proto/wifi/radius.h"

namespace magma::proto {
namespace {

// --- LTE NAS --------------------------------------------------------------

TEST(NasCodec, AllMessagesRoundTrip) {
  lte::AttachRequest attach;
  attach.imsi = common::Imsi::from_digits(1010000000001ULL);

  lte::AuthenticationRequest auth;
  auth.rand.fill(0xAA);
  auth.autn.fill(0xBB);

  lte::AuthenticationResponse auth_resp;
  auth_resp.res.fill(0xCC);

  lte::AuthenticationFailure auth_fail;
  auth_fail.auts.fill(0xDD);

  lte::SecurityModeCommand smc;
  smc.mac = 0x12345678;

  lte::AttachAccept accept;
  accept.m_tmsi = 42;
  accept.bearer.pdn_address = common::Ipv4::from_octets(172, 16, 0, 9);
  accept.bearer.ambr_dl_bps = 5'000'000;
  accept.mac = 7;

  const std::vector<lte::NasMessage> messages = {
      attach,
      auth,
      auth_resp,
      auth_fail,
      smc,
      lte::SecurityModeComplete{99},
      accept,
      lte::AttachComplete{3},
      lte::AttachReject{lte::EmmCause::kCongestion},
      lte::DetachRequest{true},
      lte::DetachAccept{},
      lte::ServiceRequest{42, 8},
      lte::ServiceReject{lte::EmmCause::kIllegalUe},
  };
  for (const auto& msg : messages) {
    auto decoded = lte::decode_nas(lte::encode_nas(msg));
    ASSERT_TRUE(decoded.ok()) << lte::nas_message_name(msg);
    EXPECT_EQ(decoded.value(), msg) << lte::nas_message_name(msg);
  }
}

TEST(NasCodec, RejectsEmptyAndGarbage) {
  EXPECT_FALSE(lte::decode_nas({}).ok());
  EXPECT_FALSE(lte::decode_nas(common::to_bytes("\xFFgarbage")).ok());
}

TEST(NasCodec, RejectsInvalidImsi) {
  lte::AttachRequest attach;
  attach.imsi.value = "NOT_AN_IMSI";
  EXPECT_FALSE(lte::decode_nas(lte::encode_nas(lte::NasMessage{attach})).ok());
}

TEST(NasCodec, RejectsTruncated) {
  lte::AuthenticationRequest auth;
  auth.rand.fill(1);
  const common::Bytes wire = lte::encode_nas(lte::NasMessage{auth});
  for (std::size_t keep = 1; keep < wire.size(); keep += 7) {
    EXPECT_FALSE(
        lte::decode_nas(common::BytesView(wire.data(), keep)).ok());
  }
}

// --- S1AP ------------------------------------------------------------------

TEST(S1apCodec, AllMessagesRoundTrip) {
  lte::InitialContextSetupRequest ics;
  ics.enb_ue_s1ap_id = 1;
  ics.mme_ue_s1ap_id = 2;
  ics.agw_teid_ul = common::Teid{0x777};
  ics.agw_address = common::Ipv4::from_octets(10, 1, 0, 1);
  ics.kenb.fill(0x5A);
  ics.nas_pdu = common::to_bytes("piggyback");

  const std::vector<lte::S1apMessage> messages = {
      lte::S1SetupRequest{common::RanNodeId{7}, "enb7", "00101", 3},
      lte::S1SetupResponse{"mme", 255},
      lte::S1SetupFailure{"overload"},
      lte::InitialUeMessage{10, 3, common::to_bytes("nas")},
      lte::UplinkNasTransport{10, 20, common::to_bytes("ul")},
      lte::DownlinkNasTransport{10, 20, common::to_bytes("dl")},
      ics,
      lte::InitialContextSetupResponse{10, 20, common::Teid{0x888},
                                       common::Ipv4::from_octets(10, 100, 0, 1)},
      lte::InitialContextSetupFailure{10, 20, "no-resources"},
      lte::UeContextReleaseCommand{10, 20, "detach"},
      lte::UeContextReleaseComplete{10, 20},
  };
  for (const auto& msg : messages) {
    auto decoded = lte::decode_s1ap(lte::encode_s1ap(msg));
    ASSERT_TRUE(decoded.ok()) << lte::s1ap_message_name(msg);
    EXPECT_EQ(decoded.value(), msg) << lte::s1ap_message_name(msg);
  }
}

// --- 5G -----------------------------------------------------------------------

TEST(Nas5gCodec, AllMessagesRoundTrip) {
  nr5g::RegistrationRequest reg;
  reg.supi = common::Imsi::from_digits(1010000000002ULL);

  nr5g::PduSessionEstablishmentAccept accept;
  accept.ue_address = common::Ipv4::from_octets(172, 16, 1, 10);
  accept.ambr_dl_bps = 10'000'000;

  nr5g::AuthenticationRequest5g auth;
  auth.rand.fill(0x11);
  auth.autn.fill(0x22);

  nr5g::AuthenticationResponse5g auth_resp;
  auth_resp.res_star.fill(0x33);

  const std::vector<nr5g::Nas5gMessage> messages = {
      reg,
      auth,
      auth_resp,
      nr5g::SecurityModeCommand5g{2, 2, 77},
      nr5g::SecurityModeComplete5g{88},
      nr5g::RegistrationAccept{0x5001, 5},
      nr5g::RegistrationComplete{6},
      nr5g::RegistrationReject{nr5g::FgmmCause::kCongestion},
      nr5g::PduSessionEstablishmentRequest{1, "internet"},
      accept,
      nr5g::PduSessionEstablishmentReject{1, nr5g::FgmmCause::kNetworkFailure},
      nr5g::DeregistrationRequest5g{false},
      nr5g::DeregistrationAccept5g{},
  };
  for (const auto& msg : messages) {
    auto decoded = nr5g::decode_nas5g(nr5g::encode_nas5g(msg));
    ASSERT_TRUE(decoded.ok()) << nr5g::nas5g_message_name(msg);
    EXPECT_EQ(decoded.value(), msg) << nr5g::nas5g_message_name(msg);
  }
}

TEST(NgapCodec, AllMessagesRoundTrip) {
  nr5g::PduSessionResourceSetupRequest setup;
  setup.ran_ue_ngap_id = 4;
  setup.amf_ue_ngap_id = 5;
  setup.agw_teid_ul = common::Teid{0xABC};
  setup.agw_address = common::Ipv4::from_octets(10, 2, 0, 1);
  setup.nas_pdu = common::to_bytes("accept");

  const std::vector<nr5g::NgapMessage> messages = {
      nr5g::NgSetupRequest{common::RanNodeId{9}, "gnb9", "00101"},
      nr5g::NgSetupResponse{"amf"},
      nr5g::InitialUeMessage5g{4, common::to_bytes("reg")},
      nr5g::UplinkNasTransport5g{4, 5, common::to_bytes("ul")},
      nr5g::DownlinkNasTransport5g{4, 5, common::to_bytes("dl")},
      setup,
      nr5g::PduSessionResourceSetupResponse{4, 5, 1, common::Teid{0xDEF},
                                            common::Ipv4::from_octets(10, 101, 0, 1)},
      nr5g::UeContextReleaseCommand5g{4, 5, "dereg"},
      nr5g::UeContextReleaseComplete5g{4, 5},
  };
  for (const auto& msg : messages) {
    auto decoded = nr5g::decode_ngap(nr5g::encode_ngap(msg));
    ASSERT_TRUE(decoded.ok()) << nr5g::ngap_message_name(msg);
    EXPECT_EQ(decoded.value(), msg) << nr5g::ngap_message_name(msg);
  }
}

// --- RADIUS -----------------------------------------------------------------------

TEST(RadiusCodec, FullAttributeRoundTrip) {
  wifi::RadiusPacket pkt;
  pkt.code = wifi::RadiusCode::kAccountingRequest;
  pkt.identifier = 77;
  pkt.attributes.user_name = "IMSI001010000000001";
  pkt.attributes.chap_password = common::from_hex("0011223344556677");
  pkt.attributes.framed_ip = common::Ipv4::from_octets(172, 16, 0, 50);
  pkt.attributes.calling_station_id = "02:aa:bb:cc:dd:ee";
  pkt.attributes.acct_status = wifi::AcctStatus::kInterimUpdate;
  pkt.attributes.acct_input_octets = 123456;
  pkt.attributes.acct_output_octets = 654321;
  pkt.attributes.acct_session_id = "ap1/sess42";
  pkt.attributes.chap_challenge = common::from_hex("ffee");

  auto decoded = wifi::decode_radius(wifi::encode_radius(pkt));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), pkt);
}

TEST(RadiusCodec, MinimalPacketRoundTrip) {
  wifi::RadiusPacket pkt;
  pkt.code = wifi::RadiusCode::kAccessReject;
  pkt.identifier = 1;
  auto decoded = wifi::decode_radius(wifi::encode_radius(pkt));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), pkt);
}

TEST(RadiusCodec, RejectsBadLength) {
  wifi::RadiusPacket pkt;
  pkt.attributes.user_name = "user";
  common::Bytes wire = wifi::encode_radius(pkt);
  wire[3] = static_cast<std::uint8_t>(wire[3] + 1);  // wrong total length
  EXPECT_FALSE(wifi::decode_radius(wire).ok());
  EXPECT_FALSE(wifi::decode_radius(common::to_bytes("xy")).ok());
}

TEST(RadiusCodec, SkipsUnknownAttributes) {
  wifi::RadiusPacket pkt;
  pkt.attributes.user_name = "user";
  common::Bytes wire = wifi::encode_radius(pkt);
  // Append an unknown attribute (type 200, len 4, two value bytes) and fix
  // the length field.
  wire.push_back(200);
  wire.push_back(4);
  wire.push_back(0xDE);
  wire.push_back(0xAD);
  wire[2] = static_cast<std::uint8_t>(wire.size() >> 8);
  wire[3] = static_cast<std::uint8_t>(wire.size());
  auto decoded = wifi::decode_radius(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().attributes.user_name, "user");
}

// --- GTP-C -------------------------------------------------------------------------

TEST(GtpcCodec, AllMessagesRoundTrip) {
  lte::CreateSessionRequest create;
  create.imsi = common::Imsi::from_digits(1010000000003ULL);
  create.sender_teid_c = common::Teid{0x42};
  create.sender_address = common::Ipv4::from_octets(10, 200, 0, 1);
  create.sequence = 9;

  lte::CreateSessionResponse response;
  response.pgw_teid_u = common::Teid{0x43};
  response.pdn_address = common::Ipv4::from_octets(100, 64, 0, 1);
  response.sequence = 9;

  const std::vector<lte::GtpcMessage> messages = {
      create,
      response,
      lte::ModifyBearerRequest{common::Teid{1}, common::Teid{2},
                               common::Ipv4::from_octets(10, 100, 0, 1), 10},
      lte::ModifyBearerResponse{16, 10},
      lte::DeleteSessionRequest{common::Teid{1}, 11},
      lte::DeleteSessionResponse{16, 11},
  };
  for (const auto& msg : messages) {
    auto decoded = lte::decode_gtpc(lte::encode_gtpc(msg));
    ASSERT_TRUE(decoded.ok()) << lte::gtpc_message_name(msg);
    EXPECT_EQ(decoded.value(), msg) << lte::gtpc_message_name(msg);
    EXPECT_EQ(lte::gtpc_sequence(decoded.value()), lte::gtpc_sequence(msg));
  }
}

// --- EMM FSM ----------------------------------------------------------------------

TEST(EmmFsm, HappyPathAttach) {
  lte::EmmFsm fsm;
  EXPECT_EQ(fsm.state(), lte::EmmState::kDeregistered);
  EXPECT_TRUE(fsm.handle(lte::EmmEvent::kAttachRequested));
  EXPECT_TRUE(fsm.handle(lte::EmmEvent::kAuthSucceeded));
  EXPECT_TRUE(fsm.handle(lte::EmmEvent::kSecurityEstablished));
  EXPECT_TRUE(fsm.handle(lte::EmmEvent::kContextEstablished));
  EXPECT_EQ(fsm.state(), lte::EmmState::kRegistered);
  EXPECT_TRUE(fsm.handle(lte::EmmEvent::kDetachRequested));
  EXPECT_TRUE(fsm.handle(lte::EmmEvent::kDetachComplete));
  EXPECT_EQ(fsm.state(), lte::EmmState::kDeregistered);
  EXPECT_EQ(fsm.invalid_transitions(), 0u);
}

TEST(EmmFsm, InvalidTransitionsRejectedAndCounted) {
  lte::EmmFsm fsm;
  EXPECT_FALSE(fsm.handle(lte::EmmEvent::kAuthSucceeded));
  EXPECT_FALSE(fsm.handle(lte::EmmEvent::kContextEstablished));
  EXPECT_EQ(fsm.state(), lte::EmmState::kDeregistered);
  EXPECT_EQ(fsm.invalid_transitions(), 2u);
}

TEST(EmmFsm, ImplicitDetachFromAnyState) {
  for (lte::EmmState from :
       {lte::EmmState::kDeregistered, lte::EmmState::kAuthPending,
        lte::EmmState::kSecurityPending, lte::EmmState::kContextPending,
        lte::EmmState::kRegistered, lte::EmmState::kDeregisterPending}) {
    lte::EmmState to;
    EXPECT_TRUE(lte::EmmFsm::valid(from, lte::EmmEvent::kImplicitDetach, &to));
    EXPECT_EQ(to, lte::EmmState::kDeregistered);
  }
}

// Exhaustive transition-table sweep: every (state, event) pair either moves
// to the documented target or is rejected; no pair misbehaves.
class EmmFsmSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EmmFsmSweep, TotalAndClosed) {
  const auto from = static_cast<lte::EmmState>(std::get<0>(GetParam()));
  const auto event = static_cast<lte::EmmEvent>(std::get<1>(GetParam()));
  lte::EmmState to = from;
  const bool valid = lte::EmmFsm::valid(from, event, &to);
  if (valid) {
    // Target must be one of the six defined states.
    EXPECT_LE(static_cast<int>(to), 5);
  } else {
    EXPECT_EQ(to, from);  // untouched on rejection
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, EmmFsmSweep,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 10)));

}  // namespace
}  // namespace magma::proto
