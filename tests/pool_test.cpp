// Property/stress suite for the common::Pool freelist pools (DESIGN.md §9).
//
// The pools sit under the hottest paths in the simulator — event closures,
// reliable-channel map nodes, microflow-cache nodes — so their invariants
// are load-bearing: a freelist that hands out a live block corrupts
// unrelated state in ways no higher-level test localizes. This suite pins
// the contract directly: acquire never returns a live object, released
// memory is poisoned and corruption of it is detected, exhaustion and the
// global toggle degrade to counted heap fallbacks, and 100k randomly
// interleaved acquire/release ops keep every stat consistent. Runs under
// the ASan preset (tests/run_sanitized.sh), where parked blocks are
// additionally unaddressable.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/pool.h"
#include "datapath/packet.h"

namespace magma::common {
namespace {

// Every test must leave the process-global toggle as it found it: the rest
// of the binary's tests assume pooling is on.
class PoolingGuard {
 public:
  PoolingGuard() : was_(memory_pooling_enabled()) {}
  ~PoolingGuard() { set_memory_pooling_enabled(was_); }

 private:
  bool was_;
};

struct Payload {
  std::uint64_t tag = 0;
  std::uint64_t body[6] = {};
};

TEST(BlockPool, RecyclesBlocksThroughFreelist) {
  PoolingGuard guard;
  set_memory_pooling_enabled(true);
  BlockPool pool(sizeof(Payload));
  void* a = pool.allocate(sizeof(Payload));
  ASSERT_NE(a, nullptr);
  pool.deallocate(a);
  void* b = pool.allocate(sizeof(Payload));
  // LIFO freelist: the most recently released block comes back first.
  EXPECT_EQ(a, b);
  pool.deallocate(b);
  EXPECT_EQ(pool.stats().acquired, 2u);
  EXPECT_EQ(pool.stats().released, 2u);
  EXPECT_EQ(pool.stats().pool_hits, 2u);
  EXPECT_EQ(pool.stats().heap_fallbacks, 0u);
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(BlockPool, AcquireNeverReturnsLiveBlock) {
  PoolingGuard guard;
  set_memory_pooling_enabled(true);
  BlockPool pool(sizeof(Payload));
  std::unordered_set<void*> live;
  std::mt19937_64 rng(0x9E3779B97F4A7C15ull);
  std::vector<void*> order;
  for (int op = 0; op < 20000; ++op) {
    const bool acquire = order.empty() || (rng() % 100) < 55;
    if (acquire) {
      void* p = pool.allocate(sizeof(Payload));
      // The core property: a block handed out twice without an intervening
      // release would appear in `live` already.
      ASSERT_TRUE(live.insert(p).second) << "pool returned a live block";
      order.push_back(p);
    } else {
      const std::size_t idx = rng() % order.size();
      void* p = order[idx];
      order[idx] = order.back();
      order.pop_back();
      live.erase(p);
      pool.deallocate(p);
    }
  }
  for (void* p : order) pool.deallocate(p);
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().poison_violations, 0u);
}

TEST(BlockPool, PoisonedReleaseCorruptionIsDetected) {
  PoolingGuard guard;
  set_memory_pooling_enabled(true);
  BlockPool pool(sizeof(Payload));
  void* p = pool.allocate(sizeof(Payload));
  std::memset(p, 0xAB, sizeof(Payload));  // dirty it like real use would
  pool.deallocate(p);
  EXPECT_EQ(pool.stats().poison_violations, 0u);
  // Simulate a use-after-release write through the test hook (a direct
  // write here would — correctly — trip ASan instead of the pattern check).
  ASSERT_TRUE(pool.corrupt_newest_free_for_test());
  (void)pool.allocate(sizeof(Payload));
  EXPECT_EQ(pool.stats().poison_violations, 1u);
}

TEST(BlockPool, ExhaustionFallsBackToHeapCounted) {
  PoolingGuard guard;
  set_memory_pooling_enabled(true);
  BlockPool pool(sizeof(Payload), /*max_blocks=*/4);
  std::vector<void*> blocks;
  for (int i = 0; i < 7; ++i) blocks.push_back(pool.allocate(sizeof(Payload)));
  EXPECT_EQ(pool.stats().capacity, 4u);
  EXPECT_EQ(pool.stats().heap_fallbacks, 3u);
  EXPECT_EQ(pool.stats().pool_hits, 4u);
  // Every block releases correctly regardless of origin (header tag).
  for (void* p : blocks) pool.deallocate(p);
  EXPECT_EQ(pool.stats().live, 0u);
  // With the freelist refilled, the next acquires are pool hits again.
  void* again = pool.allocate(sizeof(Payload));
  EXPECT_EQ(pool.stats().heap_fallbacks, 3u);
  pool.deallocate(again);
}

TEST(BlockPool, SizeMismatchGoesToHeap) {
  PoolingGuard guard;
  set_memory_pooling_enabled(true);
  BlockPool pool;  // lazy-bound
  void* a = pool.allocate(64);  // binds block size to 64
  EXPECT_EQ(pool.block_size(), 64u);
  void* b = pool.allocate(128);  // mismatch → heap, counted
  EXPECT_EQ(pool.stats().heap_fallbacks, 1u);
  pool.deallocate(a);
  pool.deallocate(b);
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(BlockPool, DisabledToggleRoutesEverythingToHeap) {
  PoolingGuard guard;
  set_memory_pooling_enabled(false);
  BlockPool pool(sizeof(Payload));
  void* p = pool.allocate(sizeof(Payload));
  EXPECT_EQ(pool.stats().heap_fallbacks, 1u);
  EXPECT_EQ(pool.stats().pool_hits, 0u);
  // Re-enabling mid-lifetime must not confuse release: the header routes
  // the heap block back to operator delete.
  set_memory_pooling_enabled(true);
  pool.deallocate(p);
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().free_blocks, 0u);
}

TEST(TypedPool, ConstructsAndDestroysObjects) {
  PoolingGuard guard;
  set_memory_pooling_enabled(true);
  static int live_payloads = 0;
  struct Tracked {
    explicit Tracked(int v) : value(v) { ++live_payloads; }
    ~Tracked() { --live_payloads; }
    int value;
  };
  Pool<Tracked> pool;
  Tracked* a = pool.acquire(7);
  EXPECT_EQ(a->value, 7);
  EXPECT_EQ(live_payloads, 1);
  pool.release(a);
  EXPECT_EQ(live_payloads, 0);
  // Reuses the same block for the next object.
  Tracked* b = pool.acquire(9);
  EXPECT_EQ(static_cast<void*>(b), static_cast<void*>(a));
  pool.release(b);
}

// The ISSUE names datapath::Packet as a pooled type: the per-packet descriptor
// cycles through a typed pool without heap traffic after warmup.
TEST(TypedPool, PacketDescriptorsCycleAllocationFree) {
  PoolingGuard guard;
  set_memory_pooling_enabled(true);
  Pool<datapath::Packet> pool;
  // Warm the pool (first acquire carves a chunk).
  datapath::Packet* warm = pool.acquire();
  pool.release(warm);
  const std::uint64_t hits_before = pool.stats().pool_hits;
  for (int i = 0; i < 1000; ++i) {
    datapath::Packet* pkt = pool.acquire();
    pkt->ip.ttl = 64;
    pool.release(pkt);
  }
  EXPECT_EQ(pool.stats().pool_hits - hits_before, 1000u);
  EXPECT_EQ(pool.stats().heap_fallbacks, 0u);
  EXPECT_EQ(pool.stats().capacity, pool.stats().free_blocks);
}

TEST(PoolAllocator, MapNodesComeFromThePool) {
  PoolingGuard guard;
  set_memory_pooling_enabled(true);
  using Alloc = PoolAllocator<std::pair<const std::uint64_t, Payload>>;
  Alloc alloc;
  std::map<std::uint64_t, Payload, std::less<std::uint64_t>, Alloc> m(alloc);
  for (std::uint64_t i = 0; i < 64; ++i) m[i] = Payload{i, {}};
  const std::size_t capacity_after_fill = alloc.pool()->stats().capacity;
  EXPECT_GE(capacity_after_fill, 64u);
  // Steady-state churn: erase + insert cycles must not grow the pool.
  for (std::uint64_t round = 0; round < 100; ++round) {
    m.erase(m.begin());
    m[1000 + round] = Payload{round, {}};
  }
  EXPECT_EQ(alloc.pool()->stats().capacity, capacity_after_fill);
  EXPECT_EQ(alloc.pool()->stats().heap_fallbacks, 0u);
  m.clear();
  EXPECT_EQ(alloc.pool()->stats().live, 0u);
}

TEST(PoolAllocator, StressInterleavedRandomOps100k) {
  PoolingGuard guard;
  set_memory_pooling_enabled(true);
  // Mixed direct-pool and container traffic under one seeded RNG, 100k ops
  // total, with full live-set tracking. Runs under ASan in
  // tests/run_sanitized.sh, where the poison marks parked blocks
  // unaddressable as well.
  std::mt19937_64 rng(20260808ull);
  BlockPool raw(sizeof(Payload));
  std::vector<void*> raw_live;
  std::set<void*> raw_seen_live;
  using Alloc = PoolAllocator<std::pair<const std::uint64_t, Payload>>;
  Alloc alloc;
  std::map<std::uint64_t, Payload, std::less<std::uint64_t>, Alloc> m(alloc);
  std::uint64_t next_key = 0;

  for (int op = 0; op < 100000; ++op) {
    switch (rng() % 4) {
      case 0: {  // raw acquire
        void* p = raw.allocate(sizeof(Payload));
        ASSERT_TRUE(raw_seen_live.insert(p).second);
        std::memset(p, 0x5A, sizeof(Payload));
        raw_live.push_back(p);
        break;
      }
      case 1: {  // raw release
        if (raw_live.empty()) break;
        const std::size_t idx = rng() % raw_live.size();
        void* p = raw_live[idx];
        raw_live[idx] = raw_live.back();
        raw_live.pop_back();
        raw_seen_live.erase(p);
        raw.deallocate(p);
        break;
      }
      case 2:  // map insert
        m[next_key++] = Payload{next_key, {}};
        break;
      default:  // map erase (random existing key)
        if (m.empty()) break;
        auto it = m.lower_bound(rng() % next_key);
        if (it == m.end()) it = m.begin();
        m.erase(it);
        break;
    }
  }
  const PoolStats& rs = raw.stats();
  EXPECT_EQ(rs.poison_violations, 0u);
  EXPECT_EQ(rs.live, raw_live.size());
  EXPECT_EQ(rs.acquired, rs.released + rs.live);
  for (void* p : raw_live) raw.deallocate(p);
  EXPECT_EQ(raw.stats().live, 0u);
  const std::size_t map_live = m.size();
  EXPECT_EQ(alloc.pool()->stats().live, map_live);
  m.clear();
  EXPECT_EQ(alloc.pool()->stats().live, 0u);
  EXPECT_EQ(alloc.pool()->stats().poison_violations, 0u);
}

TEST(PoolAllocator, RebindSharesOnePool) {
  PoolingGuard guard;
  set_memory_pooling_enabled(true);
  PoolAllocator<int> a;
  PoolAllocator<long> b(a);  // rebind-style copy
  EXPECT_TRUE(a == PoolAllocator<int>(b));
  EXPECT_EQ(a.pool().get(), b.pool().get());
}

}  // namespace
}  // namespace magma::common
