// Continuous CPU profiler: (service, operation) attribution labels, per-core
// and per-class accounting consistency, run-queue wait histograms, windowed
// utilization, and the optional per-task trace export.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/cpu.h"

namespace magma::sim {
namespace {

TEST(CpuProfile, InternLabelIsIdempotent) {
  Kernel kernel;
  CpuModel cpu(kernel, CpuConfig{});
  const LabelId a = cpu.intern_label("accessd", "establish");
  const LabelId b = cpu.intern_label("pipelined", "forward_ul");
  EXPECT_NE(a, b);
  EXPECT_NE(a, kUnattributed);
  EXPECT_EQ(cpu.intern_label("accessd", "establish"), a);
  ASSERT_EQ(cpu.labels().size(), 3u);  // + the pre-interned catch-all
  EXPECT_EQ(cpu.labels()[a].service, "accessd");
  EXPECT_EQ(cpu.labels()[a].op, "establish");
  EXPECT_EQ(cpu.labels()[kUnattributed].service, "unattributed");
}

TEST(CpuProfile, AttributesBusyTimeAndCompletionsPerLabel) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 1;
  config.speed_ghz = 1.0;
  CpuModel cpu(kernel, config);
  const LabelId establish = cpu.intern_label("accessd", "establish");
  const LabelId forward = cpu.intern_label("pipelined", "forward_ul");

  cpu.submit(WorkClass::kControl, establish, 2.0, []() {});
  cpu.submit(WorkClass::kControl, establish, 1.0, []() {});
  cpu.submit(WorkClass::kUser, forward, 0.5, []() {});
  cpu.submit(WorkClass::kUser, 0.25, []() {});  // label-less overload
  kernel.run();

  EXPECT_EQ(cpu.labels()[establish].busy_ns, 3 * kSecond);
  EXPECT_EQ(cpu.labels()[establish].completed, 2u);
  EXPECT_EQ(cpu.labels()[forward].busy_ns, kSecond / 2);
  EXPECT_EQ(cpu.labels()[kUnattributed].busy_ns, kSecond / 4);

  const std::map<std::string, double> by_service = cpu.service_busy_seconds();
  EXPECT_DOUBLE_EQ(by_service.at("accessd"), 3.0);
  EXPECT_DOUBLE_EQ(by_service.at("pipelined"), 0.5);
  EXPECT_DOUBLE_EQ(by_service.at("unattributed"), 0.25);
}

TEST(CpuProfile, LabelCoreAndClassTotalsAgree) {
  // The fig7 invariant: busy time is charged at task start for all three
  // counters, so per-label, per-core, and per-class sums are identical.
  Kernel kernel;
  CpuConfig config;
  config.cores = 2;
  config.speed_ghz = 1.3;
  config.user_plane_cores = 1;
  CpuModel cpu(kernel, config);
  const LabelId a = cpu.intern_label("accessd", "begin");
  const LabelId b = cpu.intern_label("pipelined", "forward_dl");
  for (int i = 0; i < 7; ++i) {
    cpu.submit(WorkClass::kControl, a, 0.37, []() {});
    cpu.submit(WorkClass::kUser, b, 0.91, []() {});
  }
  kernel.run();

  Duration label_sum = 0;
  for (const TaskLabelStats& l : cpu.labels()) label_sum += l.busy_ns;
  Duration core_sum = 0;
  for (Duration busy : cpu.core_busy_ns()) core_sum += busy;
  const Duration class_sum = cpu.stats().busy_ns[0] + cpu.stats().busy_ns[1];
  EXPECT_EQ(label_sum, class_sum);
  EXPECT_EQ(core_sum, class_sum);
  EXPECT_GT(class_sum, 0);
}

TEST(CpuProfile, QueueWaitLandsInTheClassHistogram) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 1;
  config.speed_ghz = 1.0;
  CpuModel cpu(kernel, config);
  const LabelId l = cpu.intern_label("accessd", "verify");
  // Three 1 s tasks on one core: waits of 0, 1 and 2 s.
  for (int i = 0; i < 3; ++i) cpu.submit(WorkClass::kControl, l, 1.0, []() {});
  kernel.run();

  const obs::Histogram& wait = cpu.queue_wait(WorkClass::kControl);
  EXPECT_EQ(wait.count(), 3u);
  EXPECT_DOUBLE_EQ(wait.sum(), 3.0);
  EXPECT_EQ(cpu.queue_wait(WorkClass::kUser).count(), 0u);
  EXPECT_EQ(cpu.labels()[l].queue_wait_ns, 3 * kSecond);
}

TEST(CpuProfile, UtilizationWindowMeasuresDeltas) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 2;
  config.speed_ghz = 1.0;
  CpuModel cpu(kernel, config);

  CpuModel::UtilizationWindow window;
  // First call stamps the window and reads zeros.
  std::vector<double> util = cpu.utilization_window(window);
  ASSERT_EQ(util.size(), 2u);
  EXPECT_DOUBLE_EQ(util[0], 0.0);
  EXPECT_DOUBLE_EQ(util[1], 0.0);

  // One core busy 4 s out of a 10 s window.
  cpu.submit(WorkClass::kUser, 4.0, []() {});
  kernel.run_until(10 * kSecond);
  util = cpu.utilization_window(window);
  ASSERT_EQ(util.size(), 2u);
  EXPECT_NEAR(util[0] + util[1], 0.4, 1e-9);

  // Next window starts fresh.
  kernel.run_until(20 * kSecond);
  util = cpu.utilization_window(window);
  EXPECT_DOUBLE_EQ(util[0] + util[1], 0.0);
}

TEST(CpuProfile, TracerEmitsPerTaskSpans) {
  Kernel kernel;
  obs::Tracer tracer(kernel);
  CpuConfig config;
  config.cores = 1;
  config.speed_ghz = 1.0;
  CpuModel cpu(kernel, config);
  cpu.set_tracer(&tracer, "agw0");
  const LabelId l = cpu.intern_label("accessd", "establish");

  cpu.submit(WorkClass::kControl, l, 0.5, []() {});
  cpu.submit(WorkClass::kControl, 0.5, []() {});
  kernel.run();

  ASSERT_EQ(tracer.finished().size(), 2u);
  const obs::SpanRecord& labeled = tracer.finished()[0];
  EXPECT_EQ(labeled.name, "accessd/establish");
  EXPECT_EQ(labeled.node, "agw0");
  EXPECT_EQ(labeled.service, "cpu0");
  EXPECT_EQ(labeled.end - labeled.start, kSecond / 2);
  EXPECT_EQ(tracer.finished()[1].name, "unattributed/");
}

TEST(CpuProfile, ChargeWaitFeedsWallTimeDecomposition) {
  Kernel kernel;
  CpuConfig config;
  config.cores = 1;
  config.speed_ghz = 1.0;
  CpuModel cpu(kernel, config);
  const LabelId l = cpu.intern_label("accessd", "establish");
  cpu.submit(WorkClass::kControl, l, 2.0, []() {});
  cpu.submit(WorkClass::kControl, l, 1.0, []() {});  // sits 2 s runnable
  kernel.run();

  // Off-CPU charges reported by other layers land in their own buckets.
  cpu.charge_wait(l, obs::WaitState::kRpcWait, 3 * kSecond);
  cpu.charge_wait(l, obs::WaitState::kTimer, kSecond);
  cpu.charge_wait(l, obs::WaitState::kCpu, kSecond);       // not an off-CPU state
  cpu.charge_wait(l, obs::WaitState::kRpcWait, -5);        // non-positive
  cpu.charge_wait(static_cast<LabelId>(9999),
                  obs::WaitState::kRpcWait, kSecond);      // unknown label

  const TaskLabelStats& ls = cpu.labels()[l];
  EXPECT_EQ(ls.busy_ns, 3 * kSecond);
  EXPECT_EQ(ls.queue_wait_ns, 2 * kSecond);
  EXPECT_EQ(ls.rpc_wait_ns, 3 * kSecond);
  EXPECT_EQ(ls.timer_wait_ns, kSecond);
  // The profiler's contract: wall time is the sum of the on- and off-CPU
  // buckets, so per-label breakdowns tile with no residue.
  EXPECT_EQ(ls.wall_ns(),
            ls.busy_ns + ls.queue_wait_ns + ls.rpc_wait_ns + ls.timer_wait_ns);
  EXPECT_EQ(ls.wall_ns(), 9 * kSecond);
}

TEST(CpuProfile, WaitTracerChargesRunqAndCpuOntoTheSubmittingSpan) {
  Kernel kernel;
  obs::Tracer tracer(kernel);
  CpuConfig config;
  config.cores = 1;
  config.speed_ghz = 1.0;
  CpuModel cpu(kernel, config);
  cpu.set_wait_tracer(&tracer);  // always-on charging, no per-task spans
  const LabelId l = cpu.intern_label("accessd", "establish");

  const obs::TraceContext span = tracer.begin("attach", "lte_frontend", "gw0");
  {
    obs::Tracer::Scope scope(&tracer, span);
    cpu.submit(WorkClass::kControl, l, 1.0, []() {});
    cpu.submit(WorkClass::kControl, l, 0.5, []() {});  // 1 s runnable first
  }
  kernel.run();
  tracer.end(span);

  // Without set_tracer there are no cpu0 task spans — only the root.
  ASSERT_EQ(tracer.finished().size(), 1u);
  const obs::SpanRecord& rec = tracer.finished()[0];
  EXPECT_EQ(rec.wait(obs::WaitState::kCpu), kSecond + kSecond / 2);
  EXPECT_EQ(rec.wait(obs::WaitState::kRunq), kSecond);
}

}  // namespace
}  // namespace magma::sim
