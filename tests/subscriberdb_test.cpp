// Subscriber management: auth vectors, SQN handling, resync, desired-state
// replacement, snapshots — including the USIM↔network symmetry property.
#include <gtest/gtest.h>

#include <cstring>

#include "agw/subscriberdb.h"
#include "ran/ue.h"
#include "sim/random.h"

namespace magma::agw {
namespace {

SubscriberData make_subscriber(std::uint64_t n, sim::Rng& rng) {
  SubscriberData sub;
  sub.imsi = common::Imsi::from_digits(1010000000000ULL + n);
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    std::memcpy(sub.k.data() + i * 8, &a, 8);
    std::memcpy(sub.opc.data() + i * 8, &b, 8);
  }
  return sub;
}

class SubscriberDbTest : public ::testing::Test {
 protected:
  SubscriberDbTest() : rng_(1), db_([this]() { return rng_.next_u64(); }) {}
  sim::Rng rng_;
  SubscriberDb db_;
};

TEST_F(SubscriberDbTest, CrudAndLookupStats) {
  sim::Rng source(2);
  SubscriberData sub = make_subscriber(1, source);
  db_.upsert(sub);
  EXPECT_EQ(db_.size(), 1u);
  EXPECT_TRUE(db_.get(sub.imsi).has_value());
  EXPECT_FALSE(db_.get(common::Imsi::from_digits(999)).has_value());
  EXPECT_EQ(db_.stats().lookups, 2u);
  EXPECT_EQ(db_.stats().misses, 1u);
  db_.remove(sub.imsi);
  EXPECT_EQ(db_.size(), 0u);
}

TEST_F(SubscriberDbTest, VectorGenerationAdvancesSqn) {
  sim::Rng source(2);
  SubscriberData sub = make_subscriber(1, source);
  db_.upsert(sub);
  ASSERT_TRUE(db_.generate_auth_vector(sub.imsi).ok());
  ASSERT_TRUE(db_.generate_auth_vector(sub.imsi).ok());
  EXPECT_EQ(db_.get(sub.imsi)->sqn, 2u);
  EXPECT_EQ(db_.stats().vectors_generated, 2u);
}

TEST_F(SubscriberDbTest, VectorsDifferEachTime) {
  sim::Rng source(2);
  SubscriberData sub = make_subscriber(1, source);
  db_.upsert(sub);
  const AuthVector v1 = db_.generate_auth_vector(sub.imsi).value();
  const AuthVector v2 = db_.generate_auth_vector(sub.imsi).value();
  EXPECT_NE(v1.rand, v2.rand);
  EXPECT_NE(v1.xres, v2.xres);
  EXPECT_NE(v1.kasme, v2.kasme);
}

TEST_F(SubscriberDbTest, DeactivatedSubscriberRefused) {
  sim::Rng source(2);
  SubscriberData sub = make_subscriber(1, source);
  sub.active = false;
  db_.upsert(sub);
  EXPECT_EQ(db_.generate_auth_vector(sub.imsi).code(),
            common::ErrorCode::kPermissionDenied);
}

TEST_F(SubscriberDbTest, UnknownSubscriberNotFound) {
  EXPECT_EQ(db_.generate_auth_vector(common::Imsi::from_digits(7)).code(),
            common::ErrorCode::kNotFound);
}

// The central property: a USIM with the same credentials accepts the
// network's vector and computes the same RES and KASME.
TEST_F(SubscriberDbTest, UsimNetworkSymmetry) {
  sim::Rng source(3);
  SubscriberData sub = make_subscriber(1, source);
  db_.upsert(sub);
  ran::Usim usim(sub.imsi, sub.k, sub.opc);

  for (int round = 0; round < 5; ++round) {
    const AuthVector vector = db_.generate_auth_vector(sub.imsi).value();
    const ran::UsimOutcome outcome = usim.authenticate(vector.rand, vector.autn);
    const auto* success = std::get_if<ran::UsimAuthSuccess>(&outcome);
    ASSERT_NE(success, nullptr) << "round " << round;
    EXPECT_TRUE(common::constant_time_equal(
        common::BytesView(success->res.data(), 8),
        common::BytesView(vector.xres.data(), 8)));
    EXPECT_EQ(success->kasme, vector.kasme);
  }
}

TEST_F(SubscriberDbTest, UsimRejectsWrongKeyVector) {
  sim::Rng source(3);
  SubscriberData sub = make_subscriber(1, source);
  db_.upsert(sub);
  crypto::Key128 wrong_k = sub.k;
  wrong_k[0] ^= 1;
  ran::Usim usim(sub.imsi, wrong_k, sub.opc);
  const AuthVector vector = db_.generate_auth_vector(sub.imsi).value();
  const ran::UsimOutcome outcome = usim.authenticate(vector.rand, vector.autn);
  EXPECT_NE(std::get_if<ran::UsimMacFailure>(&outcome), nullptr);
}

TEST_F(SubscriberDbTest, UsimDetectsStaleSqnAndResyncRecovers) {
  sim::Rng source(3);
  SubscriberData sub = make_subscriber(1, source);
  db_.upsert(sub);
  ran::Usim usim(sub.imsi, sub.k, sub.opc);
  usim.force_sqn(100);  // UE is far ahead of the network

  const AuthVector stale = db_.generate_auth_vector(sub.imsi).value();
  const ran::UsimOutcome outcome = usim.authenticate(stale.rand, stale.autn);
  const auto* resync = std::get_if<ran::UsimSyncFailure>(&outcome);
  ASSERT_NE(resync, nullptr);

  ASSERT_TRUE(db_.resync(sub.imsi, resync->auts, stale.rand).ok());
  EXPECT_GT(db_.get(sub.imsi)->sqn, 100u);
  EXPECT_EQ(db_.stats().resyncs, 1u);

  // The next vector is fresh and accepted.
  const AuthVector fresh = db_.generate_auth_vector(sub.imsi).value();
  const ran::UsimOutcome second = usim.authenticate(fresh.rand, fresh.autn);
  EXPECT_NE(std::get_if<ran::UsimAuthSuccess>(&second), nullptr);
}

TEST_F(SubscriberDbTest, ResyncRejectsForgedAuts) {
  sim::Rng source(3);
  SubscriberData sub = make_subscriber(1, source);
  db_.upsert(sub);
  const AuthVector vector = db_.generate_auth_vector(sub.imsi).value();
  std::array<std::uint8_t, 14> forged{};
  forged.fill(0x42);
  EXPECT_EQ(db_.resync(sub.imsi, forged, vector.rand).code(),
            common::ErrorCode::kUnauthenticated);
}

TEST_F(SubscriberDbTest, ReplaceAllPreservesSqn) {
  sim::Rng source(4);
  SubscriberData a = make_subscriber(1, source);
  SubscriberData b = make_subscriber(2, source);
  db_.upsert(a);
  db_.upsert(b);
  db_.generate_auth_vector(a.imsi).value();
  db_.generate_auth_vector(a.imsi).value();

  // Config push: a (still present, SQN must survive), c (new); b removed.
  SubscriberData c = make_subscriber(3, source);
  db_.replace_all({a, c});
  EXPECT_EQ(db_.size(), 2u);
  EXPECT_FALSE(db_.get(b.imsi).has_value());
  EXPECT_EQ(db_.get(a.imsi)->sqn, 2u);  // not rewound by the push
  EXPECT_TRUE(db_.get(c.imsi).has_value());
}

TEST_F(SubscriberDbTest, SnapshotRestoreRoundTrip) {
  sim::Rng source(5);
  for (std::uint64_t i = 0; i < 10; ++i) db_.upsert(make_subscriber(i, source));
  const common::Bytes image = db_.snapshot();

  sim::Rng rng2(9);
  SubscriberDb other([&rng2]() { return rng2.next_u64(); });
  ASSERT_TRUE(other.restore(image).ok());
  EXPECT_EQ(other.size(), 10u);
  EXPECT_EQ(other.snapshot(), image);  // canonical ordering => identical
}

TEST(SubscriberData, SerializeDeserializeRoundTrip) {
  sim::Rng rng(6);
  SubscriberData sub = make_subscriber(42, rng);
  sub.policy_name = "gold";
  sub.wifi_password = "hunter2";
  sub.sqn = 77;
  sub.active = false;
  auto round = SubscriberData::deserialize(sub.serialize());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), sub);
}

TEST(SubscriberData, DeserializeRejectsCorrupt) {
  EXPECT_FALSE(SubscriberData::deserialize(common::to_bytes("junk")).ok());
}

TEST(Imsi, Validation) {
  EXPECT_TRUE(common::Imsi::from_digits(1010000000001ULL).valid());
  EXPECT_FALSE(common::Imsi{"123456"}.valid());
  EXPECT_FALSE(common::Imsi{"IMSIabc"}.valid());
  EXPECT_FALSE(common::Imsi{""}.valid());
}

TEST(SqnBytes, RoundTrip) {
  for (std::uint64_t sqn : {0ULL, 1ULL, 255ULL, 0xFFFFFFFFFFFFULL}) {
    EXPECT_EQ(sqn_from_bytes(sqn_to_bytes(sqn)), sqn);
  }
}

}  // namespace
}  // namespace magma::agw
