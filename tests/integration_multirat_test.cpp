// Multi-RAT integration: 5G and WiFi UEs through the same AGW, plus the
// Table-1 claim — one set of generic services serves all three RATs.
#include <gtest/gtest.h>

#include "core/network.h"

namespace magma {
namespace {

class MultiRatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<core::Network>();
    agw_ = &net_->add_agw(agw::virtual_xeon(4));
    enb_ = &net_->add_enodeb(*agw_);
    gnb_ = &net_->add_gnb(*agw_);
    ap_ = &net_->add_wifi_ap(*agw_);
    net_->run_for(2 * sim::kSecond);
  }

  std::unique_ptr<core::Network> net_;
  agw::AccessGateway* agw_ = nullptr;
  ran::EnodeB* enb_ = nullptr;
  ran::Gnb* gnb_ = nullptr;
  ran::WifiAp* ap_ = nullptr;
};

TEST_F(MultiRatTest, FiveGRegistrationAndPduSession) {
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  ran::UeNr& ue = net_->add_ue_nr(sub);

  ran::AttachOutcome outcome;
  bool done = false;
  ue.attach(*gnb_, [&](const ran::AttachOutcome& o) {
    outcome = o;
    done = true;
  });
  net_->run_for(20 * sim::kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.success) << outcome.failure_reason;
  EXPECT_TRUE(ue.registered());
  EXPECT_TRUE(ue.session_up());

  // 5G separates the legs: registration accepted AND a PDU session.
  EXPECT_EQ(agw_->nr().stats().registrations_accepted, 1u);
  EXPECT_EQ(agw_->nr().stats().pdu_sessions_established, 1u);
  EXPECT_EQ(agw_->sessiond().active_sessions(), 1u);

  // Traffic flows.
  net_->inject_downlink(*agw_, *ue.ip(), 1400, 50);
  net_->run_for(1 * sim::kSecond);
  EXPECT_EQ(ue.traffic().rx_packets, 50u);
  ue.send_uplink(common::Ipv4::from_octets(8, 8, 8, 8), 443, 1000, 20);
  net_->run_for(1 * sim::kSecond);
  EXPECT_GT(net_->internet_rx_bytes(), 0u);
}

TEST_F(MultiRatTest, FiveGDeregistration) {
  const agw::SubscriberData sub = net_->provision_subscriber();
  net_->sync_all_config();
  ran::UeNr& ue = net_->add_ue_nr(sub);
  bool done = false;
  ue.attach(*gnb_, [&](const ran::AttachOutcome& o) { done = o.success; });
  net_->run_for(20 * sim::kSecond);
  ASSERT_TRUE(done);

  ue.detach(false);
  net_->run_for(5 * sim::kSecond);
  EXPECT_EQ(agw_->sessiond().active_sessions(), 0u);
  EXPECT_EQ(agw_->nr().stats().deregistrations, 1u);
}

TEST_F(MultiRatTest, WifiChapAssociation) {
  const agw::SubscriberData sub =
      net_->provision_subscriber("unlimited", "secret123");
  net_->sync_all_config();
  ran::WifiClient& client = net_->add_wifi_client(sub, "secret123");

  ran::AttachOutcome outcome;
  bool done = false;
  client.connect(*ap_, [&](const ran::AttachOutcome& o) {
    outcome = o;
    done = true;
  });
  net_->run_for(10 * sim::kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.success) << outcome.failure_reason;
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(ap_->stats().associations, 1u);
  EXPECT_EQ(agw_->wifi().stats().accepts, 1u);
  EXPECT_GE(agw_->wifi().stats().acct_starts, 1u);

  // WiFi traffic (untunneled) flows through the same datapath.
  net_->inject_downlink(*agw_, *client.ip(), 1400, 30);
  net_->run_for(1 * sim::kSecond);
  EXPECT_EQ(client.traffic().rx_packets, 30u);
  client.send_uplink(common::Ipv4::from_octets(8, 8, 8, 8), 80, 900, 10);
  net_->run_for(1 * sim::kSecond);
  EXPECT_GT(net_->internet_rx_bytes(), 0u);
}

TEST_F(MultiRatTest, WifiWrongPasswordRejected) {
  const agw::SubscriberData sub =
      net_->provision_subscriber("unlimited", "rightpw");
  net_->sync_all_config();
  ran::WifiClient& client = net_->add_wifi_client(sub, "wrongpw");
  ran::AttachOutcome outcome;
  bool done = false;
  client.connect(*ap_, [&](const ran::AttachOutcome& o) {
    outcome = o;
    done = true;
  });
  net_->run_for(10 * sim::kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(agw_->wifi().stats().rejects, 1u);
}

TEST_F(MultiRatTest, WifiDisconnectEndsSession) {
  const agw::SubscriberData sub =
      net_->provision_subscriber("unlimited", "pw");
  net_->sync_all_config();
  ran::WifiClient& client = net_->add_wifi_client(sub, "pw");
  bool done = false;
  client.connect(*ap_, [&](const ran::AttachOutcome& o) { done = o.success; });
  net_->run_for(10 * sim::kSecond);
  ASSERT_TRUE(done);
  ASSERT_EQ(agw_->sessiond().active_sessions(), 1u);

  client.disconnect();
  net_->run_for(5 * sim::kSecond);
  EXPECT_EQ(agw_->sessiond().active_sessions(), 0u);
  EXPECT_GE(agw_->wifi().stats().acct_stops, 1u);
}

// The Table-1 claim, measured: one UE per RAT, all three driving the SAME
// generic services.
TEST_F(MultiRatTest, AllThreeRatsShareGenericServices) {
  const agw::SubscriberData lte_sub = net_->provision_subscriber();
  const agw::SubscriberData nr_sub = net_->provision_subscriber();
  const agw::SubscriberData wifi_sub =
      net_->provision_subscriber("unlimited", "pw");
  net_->sync_all_config();

  int successes = 0;
  ran::UeLte& lte_ue = net_->add_ue_lte(lte_sub);
  lte_ue.attach(*enb_, [&](const ran::AttachOutcome& o) {
    successes += o.success ? 1 : 0;
  });
  ran::UeNr& nr_ue = net_->add_ue_nr(nr_sub);
  nr_ue.attach(*gnb_, [&](const ran::AttachOutcome& o) {
    successes += o.success ? 1 : 0;
  });
  ran::WifiClient& wifi_client = net_->add_wifi_client(wifi_sub, "pw");
  wifi_client.connect(*ap_, [&](const ran::AttachOutcome& o) {
    successes += o.success ? 1 : 0;
  });
  net_->run_for(30 * sim::kSecond);

  EXPECT_EQ(successes, 3);
  const agw::AccessdStats& stats = agw_->accessd().stats();
  EXPECT_EQ(stats.attach_completed[0], 1u);  // LTE
  EXPECT_EQ(stats.attach_completed[1], 1u);  // 5G
  EXPECT_EQ(stats.attach_completed[2], 1u);  // WiFi
  // One shared sessiond, one shared mobilityd pool, one subscriberdb.
  EXPECT_EQ(agw_->sessiond().active_sessions(), 3u);
  EXPECT_EQ(agw_->mobilityd().allocated(), 3u);
  // All three authenticated through the same subscriber database.
  EXPECT_GE(agw_->subscriberdb().stats().vectors_generated, 3u);
}

TEST_F(MultiRatTest, SameSubscriberMovesBetweenRats) {
  // §2.2: one subscriber record serves any access type. The same IMSI
  // attaches via LTE, detaches, then connects via WiFi.
  const agw::SubscriberData sub =
      net_->provision_subscriber("unlimited", "pw");
  net_->sync_all_config();

  ran::UeLte& lte_ue = net_->add_ue_lte(sub);
  bool lte_ok = false;
  lte_ue.attach(*enb_, [&](const ran::AttachOutcome& o) { lte_ok = o.success; });
  net_->run_for(20 * sim::kSecond);
  ASSERT_TRUE(lte_ok);
  lte_ue.detach(false);
  net_->run_for(5 * sim::kSecond);

  ran::WifiClient& wifi_client = net_->add_wifi_client(sub, "pw");
  bool wifi_ok = false;
  wifi_client.connect(
      *ap_, [&](const ran::AttachOutcome& o) { wifi_ok = o.success; });
  net_->run_for(10 * sim::kSecond);
  EXPECT_TRUE(wifi_ok);
  EXPECT_EQ(agw_->sessiond().active_sessions(), 1u);
}

}  // namespace
}  // namespace magma
