// Tail-based trace sampling and the critical-path walk it feeds: slowest-K
// retention under ring pressure, error-pin interaction, window rollover,
// zero-duration roots, and the exact-sum decomposition invariant.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/tail_sampler.h"
#include "obs/trace.h"
#include "sim/kernel.h"
#include "sim/time.h"

namespace magma::obs {
namespace {

// Run a root span of `duration` to completion, starting now.
TraceContext finish_root(sim::Kernel& kernel, Tracer& tracer,
                         sim::Duration duration,
                         const std::string& op = "attach",
                         const std::string& node = "gw0",
                         bool error = false) {
  const TraceContext root = tracer.begin(op, "lte_frontend", node);
  if (error) tracer.tag(root, "error", "boom");
  kernel.run_until(kernel.now() + duration);
  tracer.end(root);
  return root;
}

// ---------------------------------------------------------------------------
// TailSampler
// ---------------------------------------------------------------------------

TEST(TailSampler, KeepsSlowestKPerOpAndDisplacesFaster) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  TailSamplerConfig config;
  config.keep_per_op = 2;
  config.window = sim::kMinute;
  TailSampler sampler(kernel, tracer, config);

  const TraceContext t10 = finish_root(kernel, tracer, 10 * sim::kMillisecond);
  const TraceContext t80 = finish_root(kernel, tracer, 80 * sim::kMillisecond);
  const TraceContext t30 = finish_root(kernel, tracer, 30 * sim::kMillisecond);
  const TraceContext t50 = finish_root(kernel, tracer, 50 * sim::kMillisecond);
  const TraceContext t20 = finish_root(kernel, tracer, 20 * sim::kMillisecond);

  // 10 and 80 fill K; 30 displaces 10; 50 displaces 30; 20 bounces.
  EXPECT_EQ(sampler.held(), 2u);
  EXPECT_TRUE(tracer.trace_pinned(t80.trace_id));
  EXPECT_TRUE(tracer.trace_pinned(t50.trace_id));
  EXPECT_FALSE(tracer.trace_pinned(t10.trace_id));
  EXPECT_FALSE(tracer.trace_pinned(t30.trace_id));
  EXPECT_FALSE(tracer.trace_pinned(t20.trace_id));
  EXPECT_EQ(sampler.stats().roots_seen, 5u);
  EXPECT_EQ(sampler.stats().kept, 4u);
  EXPECT_EQ(sampler.stats().displaced, 2u);
}

TEST(TailSampler, SlowTraceSurvivesRingPressureFastOneDoesNot) {
  // The acceptance scenario: a slow-but-successful trace outlives a flood
  // of fast traces in a tiny ring; an equally old fast trace ages out.
  sim::Kernel kernel;
  Tracer tracer(kernel);
  tracer.set_retention(8);
  TailSamplerConfig config;
  config.keep_per_op = 1;
  config.window = sim::kMinute;
  TailSampler sampler(kernel, tracer, config);

  const TraceContext fast = tracer.begin("attach", "lte_frontend", "gw0");
  const TraceContext slow = tracer.begin("attach", "lte_frontend", "gw0");
  kernel.run_until(10 * sim::kMillisecond);
  tracer.end(fast);
  kernel.run_until(900 * sim::kMillisecond);
  tracer.end(slow);

  for (int i = 0; i < 50; ++i) {
    finish_root(kernel, tracer, 10 * sim::kMillisecond);
  }

  EXPECT_FALSE(tracer.trace_spans(slow.trace_id).empty());
  EXPECT_TRUE(tracer.trace_spans(fast.trace_id).empty());
  EXPECT_EQ(tracer.finished().size(), 8u);
}

TEST(TailSampler, ErrorPinnedTracesNeverCountAgainstK) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  TailSamplerConfig config;
  config.keep_per_op = 1;
  config.window = sim::kMinute;
  TailSampler sampler(kernel, tracer, config);

  // The errored trace is the slowest by far — but it is already retained by
  // the error pin; the single tail slot must go to the slow *success*.
  const TraceContext failed = finish_root(kernel, tracer, 2 * sim::kSecond,
                                          "attach", "gw0", /*error=*/true);
  const TraceContext slow_ok =
      finish_root(kernel, tracer, 500 * sim::kMillisecond);
  const TraceContext fast_ok =
      finish_root(kernel, tracer, 100 * sim::kMillisecond);

  EXPECT_EQ(sampler.stats().skipped_error_pinned, 1u);
  EXPECT_EQ(sampler.held(), 1u);
  EXPECT_TRUE(tracer.error_pinned(failed.trace_id));
  EXPECT_TRUE(tracer.trace_pinned(slow_ok.trace_id));
  EXPECT_FALSE(tracer.trace_pinned(fast_ok.trace_id));

  // The window summary covers the success, not the errored trace.
  kernel.run_until(2 * sim::kMinute);
  const std::vector<TraceSummary> shipped = sampler.drain_ready();
  ASSERT_EQ(shipped.size(), 1u);
  EXPECT_EQ(shipped[0].trace_id, slow_ok.trace_id);
  // Shipping released the tail pin; the error pin is untouched.
  EXPECT_FALSE(tracer.trace_pinned(slow_ok.trace_id));
  EXPECT_TRUE(tracer.error_pinned(failed.trace_id));
}

TEST(TailSampler, WindowRolloverShipsAndUnpinsTheClosedWindow) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  TailSamplerConfig config;
  config.keep_per_op = 4;
  config.window = sim::kSecond;
  TailSampler sampler(kernel, tracer, config);

  const TraceContext w0 =
      finish_root(kernel, tracer, 100 * sim::kMillisecond);  // ends t=0.1
  EXPECT_EQ(sampler.held(), 1u);
  EXPECT_EQ(sampler.ready(), 0u);

  kernel.run_until(1200 * sim::kMillisecond);
  const TraceContext w1 =
      finish_root(kernel, tracer, 100 * sim::kMillisecond);  // ends t=1.3

  // The second root rolled the window: the first keep was summarized and
  // its pin released; the new keep holds the current window.
  EXPECT_EQ(sampler.stats().windows_closed, 1u);
  EXPECT_EQ(sampler.ready(), 1u);
  EXPECT_EQ(sampler.held(), 1u);
  EXPECT_FALSE(tracer.trace_pinned(w0.trace_id));
  EXPECT_TRUE(tracer.trace_pinned(w1.trace_id));

  // Drain mid-window returns only the closed window's summary.
  std::vector<TraceSummary> shipped = sampler.drain_ready();
  ASSERT_EQ(shipped.size(), 1u);
  EXPECT_EQ(shipped[0].trace_id, w0.trace_id);
  EXPECT_EQ(shipped[0].root_op, "attach");
  EXPECT_EQ(shipped[0].gateway_id, "gw0");
  EXPECT_EQ(shipped[0].duration, 100 * sim::kMillisecond);
  // No instrumented layer charged this root, so the whole decomposition is
  // unattributed self-time — and it still sums to the duration.
  EXPECT_EQ(shipped[0].breakdown[static_cast<std::size_t>(WaitState::kOther)],
            shipped[0].duration);

  // An idle gateway still ships: once the current window's time has fully
  // passed, drain closes it without waiting for a newer root.
  kernel.run_until(3 * sim::kSecond);
  shipped = sampler.drain_ready();
  ASSERT_EQ(shipped.size(), 1u);
  EXPECT_EQ(shipped[0].trace_id, w1.trace_id);
  EXPECT_EQ(sampler.stats().windows_closed, 2u);
  EXPECT_EQ(sampler.held(), 0u);
}

TEST(TailSampler, ZeroDurationRootsAreKeptWithoutDividingByZero) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  TailSamplerConfig config;
  config.keep_per_op = 2;
  config.window = sim::kSecond;
  TailSampler sampler(kernel, tracer, config);

  // Three instantaneous roots: the first two fill K, the third is not
  // strictly slower than the fastest keep and bounces.
  for (int i = 0; i < 3; ++i) {
    tracer.end(tracer.begin("noop", "svc", "gw0"));
  }
  EXPECT_EQ(sampler.held(), 2u);
  EXPECT_EQ(sampler.stats().kept, 2u);
  EXPECT_EQ(sampler.stats().displaced, 0u);

  kernel.run_until(2 * sim::kSecond);
  const std::vector<TraceSummary> shipped = sampler.drain_ready();
  ASSERT_EQ(shipped.size(), 2u);
  for (const TraceSummary& s : shipped) {
    EXPECT_EQ(s.duration, 0);
    for (const sim::Duration d : s.breakdown) EXPECT_EQ(d, 0);
  }
}

TEST(TailSampler, ReadyCapDropsOldestSummaries) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  TailSamplerConfig config;
  config.keep_per_op = 1;
  config.window = sim::kSecond;
  config.max_ready = 1;
  TailSampler sampler(kernel, tracer, config);

  const TraceContext first =
      finish_root(kernel, tracer, 10 * sim::kMillisecond);
  kernel.run_until(1100 * sim::kMillisecond);
  const TraceContext second =
      finish_root(kernel, tracer, 10 * sim::kMillisecond);
  kernel.run_until(2200 * sim::kMillisecond);
  const TraceContext third =
      finish_root(kernel, tracer, 10 * sim::kMillisecond);
  (void)first;
  (void)third;

  // Two windows closed against a one-slot ready queue: the oldest summary
  // was dropped and counted.
  EXPECT_EQ(sampler.stats().windows_closed, 2u);
  EXPECT_EQ(sampler.stats().ready_dropped, 1u);
  const std::vector<TraceSummary> shipped = sampler.drain_ready();
  ASSERT_EQ(shipped.size(), 1u);
  EXPECT_EQ(shipped[0].trace_id, second.trace_id);
}

TEST(TailSampler, NodeFilterSamplesOnlyOwnRoots) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  TailSampler sampler(kernel, tracer, {});
  sampler.set_node_filter("gw0");

  finish_root(kernel, tracer, 10 * sim::kMillisecond, "attach", "gw1");
  EXPECT_EQ(sampler.stats().roots_seen, 0u);
  EXPECT_EQ(sampler.held(), 0u);

  finish_root(kernel, tracer, 10 * sim::kMillisecond, "attach", "gw0");
  EXPECT_EQ(sampler.stats().roots_seen, 1u);
  EXPECT_EQ(sampler.held(), 1u);
}

TEST(TailSampler, DestructorReleasesItsPins) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  TraceContext kept{};
  {
    TailSampler sampler(kernel, tracer, {});
    kept = finish_root(kernel, tracer, 10 * sim::kMillisecond);
    EXPECT_TRUE(tracer.trace_pinned(kept.trace_id));
  }
  EXPECT_FALSE(tracer.trace_pinned(kept.trace_id));
  EXPECT_EQ(tracer.tail_pinned_traces(), 0u);
}

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

TEST(CriticalPath, BreakdownSumsToRootAndClassifiesSelfTime) {
  sim::Kernel kernel;
  Tracer tracer(kernel);

  const TraceContext root = tracer.begin("attach", "lte_frontend", "gw0");
  kernel.run_until(100 * sim::kMillisecond);
  const TraceContext child =
      tracer.begin("begin_attach", "accessd", "gw0", SpanKind::kInternal, root);
  kernel.run_until(500 * sim::kMillisecond);
  tracer.add_wait(child, WaitState::kCpu, 300 * sim::kMillisecond);
  tracer.add_wait(child, WaitState::kRunq, 100 * sim::kMillisecond);
  tracer.end(child);
  kernel.run_until(sim::kSecond);
  tracer.end(root);

  const CriticalPathResult cp = critical_path(tracer, root.trace_id);
  ASSERT_TRUE(cp.valid);
  EXPECT_EQ(cp.root_name, "attach");
  EXPECT_EQ(cp.total, sim::kSecond);
  EXPECT_EQ(cp.component(WaitState::kCpu), 300 * sim::kMillisecond);
  EXPECT_EQ(cp.component(WaitState::kRunq), 100 * sim::kMillisecond);
  // The root's uncovered, uncharged 600 ms stays unattributed.
  EXPECT_EQ(cp.component(WaitState::kOther), 600 * sim::kMillisecond);
  sim::Duration sum = 0;
  for (const sim::Duration d : cp.breakdown) sum += d;
  EXPECT_EQ(sum, cp.total);

  ASSERT_EQ(cp.path.size(), 2u);
  EXPECT_EQ(cp.path[0].name, "attach");
  EXPECT_EQ(cp.path[1].name, "begin_attach");
  EXPECT_EQ(cp.path[1].duration, 400 * sim::kMillisecond);
}

TEST(CriticalPath, ClientGapAroundServerChildIsLinkTransit) {
  sim::Kernel kernel;
  Tracer tracer(kernel);

  const TraceContext root = tracer.begin("attach", "lte_frontend", "gw0");
  kernel.run_until(100 * sim::kMillisecond);
  const TraceContext client =
      tracer.begin("rpc/Call", "rpc", "gw0", SpanKind::kClient, root);
  kernel.run_until(200 * sim::kMillisecond);
  const TraceContext server =
      tracer.begin("rpc/Call", "svc", "orc8r", SpanKind::kServer, client);
  kernel.run_until(600 * sim::kMillisecond);
  tracer.add_wait(server, WaitState::kCpu, 400 * sim::kMillisecond);
  tracer.end(server);
  kernel.run_until(700 * sim::kMillisecond);
  tracer.end(client);
  kernel.run_until(sim::kSecond);
  tracer.end(root);

  const CriticalPathResult cp = critical_path(tracer, root.trace_id);
  ASSERT_TRUE(cp.valid);
  // Server child explains 400 ms of CPU; the 200 ms the client spent around
  // it is the two one-way wire latencies.
  EXPECT_EQ(cp.component(WaitState::kCpu), 400 * sim::kMillisecond);
  EXPECT_EQ(cp.component(WaitState::kLinkTransit), 200 * sim::kMillisecond);
  EXPECT_EQ(cp.component(WaitState::kOther), 400 * sim::kMillisecond);
  EXPECT_EQ(cp.component(WaitState::kRpcWait), 0);
}

TEST(CriticalPath, ClientWithoutServerChildIsRpcWait) {
  sim::Kernel kernel;
  Tracer tracer(kernel);

  const TraceContext root = tracer.begin("attach", "lte_frontend", "gw0");
  const TraceContext client =
      tracer.begin("rpc/Call", "rpc", "gw0", SpanKind::kClient, root);
  kernel.run_until(300 * sim::kMillisecond);
  tracer.end(client);  // timed out: no server span ever appeared
  kernel.run_until(sim::kSecond);
  tracer.end(root);

  const CriticalPathResult cp = critical_path(tracer, root.trace_id);
  ASSERT_TRUE(cp.valid);
  EXPECT_EQ(cp.component(WaitState::kRpcWait), 300 * sim::kMillisecond);
  EXPECT_EQ(cp.component(WaitState::kLinkTransit), 0);
}

TEST(CriticalPath, OverlappingSiblingsDoNotDoubleCount) {
  sim::Kernel kernel;
  Tracer tracer(kernel);

  const TraceContext root = tracer.begin("attach", "lte_frontend", "gw0");
  kernel.run_until(100 * sim::kMillisecond);
  const TraceContext a =
      tracer.begin("a", "svc", "gw0", SpanKind::kInternal, root);
  kernel.run_until(300 * sim::kMillisecond);
  const TraceContext b =
      tracer.begin("b", "svc", "gw0", SpanKind::kInternal, root);
  kernel.run_until(500 * sim::kMillisecond);
  tracer.add_wait(a, WaitState::kCpu, 400 * sim::kMillisecond);
  tracer.end(a);
  kernel.run_until(700 * sim::kMillisecond);
  tracer.add_wait(b, WaitState::kCpu, 400 * sim::kMillisecond);
  tracer.end(b);
  kernel.run_until(sim::kSecond);
  tracer.end(root);

  const CriticalPathResult cp = critical_path(tracer, root.trace_id);
  ASSERT_TRUE(cp.valid);
  // a covers [0.1,0.5]; b overlaps it on [0.3,0.7] and only its clipped
  // [0.5,0.7] tail counts, scaled — union coverage is 600 ms, not 800.
  EXPECT_EQ(cp.component(WaitState::kCpu), 600 * sim::kMillisecond);
  EXPECT_EQ(cp.component(WaitState::kOther), 400 * sim::kMillisecond);
  sim::Duration sum = 0;
  for (const sim::Duration d : cp.breakdown) sum += d;
  EXPECT_EQ(sum, cp.total);
}

TEST(CriticalPath, EvictedRootFallsBackToEarliestOrphan) {
  // Hand-built records: the root span is gone (ring eviction), two of its
  // children survive. The earliest orphan stands in as the root and absorbs
  // the other's non-overlapping coverage.
  SpanRecord a;
  a.trace_id = 7;
  a.span_id = 2;
  a.parent_span_id = 1;  // evicted
  a.name = "first";
  a.start = 0;
  a.end = 400;
  a.wait_ns[static_cast<std::size_t>(WaitState::kCpu)] = 400;
  SpanRecord b;
  b.trace_id = 7;
  b.span_id = 3;
  b.parent_span_id = 1;  // evicted
  b.name = "second";
  b.start = 100;
  b.end = 300;

  const CriticalPathResult cp = critical_path({a, b});
  ASSERT_TRUE(cp.valid);
  EXPECT_EQ(cp.root_name, "first");
  EXPECT_EQ(cp.total, 400);
  sim::Duration sum = 0;
  for (const sim::Duration d : cp.breakdown) sum += d;
  EXPECT_EQ(sum, cp.total);
}

TEST(CriticalPath, EmptyAndUnknownTracesAreInvalid) {
  sim::Kernel kernel;
  Tracer tracer(kernel);
  EXPECT_FALSE(critical_path(tracer, 12345).valid);
  EXPECT_FALSE(critical_path(std::vector<SpanRecord>{}).valid);
  EXPECT_EQ(describe_breakdown(WaitVector{}), "(empty)");
}

}  // namespace
}  // namespace magma::obs
