// Generic access management: the three-stage attach flow, FSM guards,
// worker serialization and overload, per-RAT accounting.
#include <gtest/gtest.h>

#include "agw/accessd.h"
#include "crypto/hmac.h"
#include "ran/ue.h"

namespace magma::agw {
namespace {

common::Imsi imsi(std::uint64_t n) {
  return common::Imsi::from_digits(1010000000000ULL + n);
}

class AccessdTest : public ::testing::Test {
 protected:
  AccessdTest()
      : rng_(1),
        subscribers_([this]() { return rng_.next_u64(); }),
        mobilityd_(IpBlock{}),
        sessiond_(kernel_, pipelined_, nullptr),
        accessd_(kernel_, nullptr, subscribers_, policies_, mobilityd_,
                 sessiond_) {}

  SubscriberData provision(std::uint64_t n) {
    SubscriberData sub;
    sub.imsi = imsi(n);
    for (int i = 0; i < 16; ++i) {
      sub.k[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n + i);
      sub.opc[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n * 3 + i);
    }
    sub.wifi_password = "pw" + std::to_string(n);
    subscribers_.upsert(sub);
    return sub;
  }

  // Run the full generic flow for one subscriber; returns the SessionInfo.
  common::Result<SessionInfo> full_attach(const SubscriberData& sub,
                                          RanType rat) {
    common::Result<SessionInfo> session_result(
        common::Error{common::ErrorCode::kUnknown, "not finished"});
    accessd_.begin_attach(sub.imsi, rat, [&](common::Result<AuthChallenge> ch) {
      ASSERT_TRUE(ch.ok()) << ch.error().to_string();
      common::Bytes response;
      if (rat == RanType::kWifi) {
        const auto digest = crypto::hmac_sha256(
            common::to_bytes(sub.wifi_password),
            common::BytesView(ch.value().rand.data(), 16));
        response.assign(digest.begin(), digest.begin() + 8);
      } else {
        ran::Usim usim(sub.imsi, sub.k, sub.opc);
        const auto outcome =
            usim.authenticate(ch.value().rand, ch.value().autn);
        const auto* ok = std::get_if<ran::UsimAuthSuccess>(&outcome);
        ASSERT_NE(ok, nullptr);
        response.assign(ok->res.begin(), ok->res.end());
      }
      accessd_.verify_auth(sub.imsi, response,
                           [&](common::Result<SecurityKeys> keys) {
                             ASSERT_TRUE(keys.ok());
                             Accessd::EstablishRequest req;
                             req.imsi = sub.imsi;
                             accessd_.establish(
                                 req, [&](common::Result<SessionInfo> info) {
                                   session_result = std::move(info);
                                 });
                           });
    });
    kernel_.run();
    return session_result;
  }

  sim::Kernel kernel_;
  sim::Rng rng_;
  SubscriberDb subscribers_;
  PolicyDb policies_;
  Mobilityd mobilityd_;
  Pipelined pipelined_;
  Sessiond sessiond_;
  Accessd accessd_;
};

TEST_F(AccessdTest, FullFlowPerRat) {
  int n = 1;
  for (RanType rat : {RanType::kLte, RanType::kNr5g, RanType::kWifi}) {
    const SubscriberData sub = provision(static_cast<std::uint64_t>(n++));
    auto info = full_attach(sub, rat);
    ASSERT_TRUE(info.ok()) << ran_type_name(rat) << ": "
                           << info.error().to_string();
    EXPECT_EQ(accessd_.ue_state(sub.imsi),
              proto::lte::EmmState::kRegistered);
    EXPECT_EQ(accessd_.stats().attach_completed[static_cast<int>(rat)], 1u);
    // WiFi sessions are untunneled; cellular ones are tunneled.
    const SessionRecord* session = sessiond_.find(sub.imsi);
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session->flows.tunneled, rat != RanType::kWifi);
  }
  EXPECT_EQ(sessiond_.active_sessions(), 3u);
}

TEST_F(AccessdTest, WrongResponseRejected) {
  const SubscriberData sub = provision(1);
  bool rejected = false;
  accessd_.begin_attach(sub.imsi, RanType::kLte,
                        [&](common::Result<AuthChallenge> ch) {
                          ASSERT_TRUE(ch.ok());
                          common::Bytes bogus(8, 0x00);
                          accessd_.verify_auth(
                              sub.imsi, bogus,
                              [&](common::Result<SecurityKeys> keys) {
                                rejected = !keys.ok() &&
                                           keys.code() ==
                                               common::ErrorCode::kUnauthenticated;
                              });
                        });
  kernel_.run();
  EXPECT_TRUE(rejected);
  EXPECT_EQ(accessd_.stats().auth_failures, 1u);
  EXPECT_FALSE(accessd_.ue_state(sub.imsi).has_value());  // context dropped
}

TEST_F(AccessdTest, StageOrderEnforced) {
  const SubscriberData sub = provision(1);
  // verify_auth before begin_attach.
  bool precondition_failed = false;
  accessd_.verify_auth(sub.imsi, common::Bytes(8, 1),
                       [&](common::Result<SecurityKeys> keys) {
                         precondition_failed =
                             keys.code() ==
                             common::ErrorCode::kFailedPrecondition;
                       });
  kernel_.run();
  EXPECT_TRUE(precondition_failed);

  // establish before security.
  bool establish_failed = false;
  accessd_.begin_attach(sub.imsi, RanType::kLte,
                        [&](common::Result<AuthChallenge>) {});
  Accessd::EstablishRequest req;
  req.imsi = sub.imsi;
  accessd_.establish(req, [&](common::Result<SessionInfo> info) {
    establish_failed =
        info.code() == common::ErrorCode::kFailedPrecondition;
  });
  kernel_.run();
  EXPECT_TRUE(establish_failed);
}

TEST_F(AccessdTest, GuardTimerDropsHalfOpenContext) {
  const SubscriberData sub = provision(1);
  accessd_.begin_attach(sub.imsi, RanType::kLte,
                        [](common::Result<AuthChallenge>) {});
  kernel_.run_until(sim::kSecond);
  EXPECT_EQ(accessd_.pending_contexts(), 1u);
  // Never answer: the guard expires and the context is reaped.
  kernel_.run_until(60 * sim::kSecond);
  EXPECT_EQ(accessd_.pending_contexts(), 0u);
}

TEST_F(AccessdTest, DetachReleasesEverything) {
  const SubscriberData sub = provision(1);
  ASSERT_TRUE(full_attach(sub, RanType::kLte).ok());
  ASSERT_EQ(mobilityd_.allocated(), 1u);

  bool detached = false;
  accessd_.detach(sub.imsi,
                  [&](common::Status status) { detached = status.ok(); });
  kernel_.run();
  EXPECT_TRUE(detached);
  EXPECT_EQ(sessiond_.active_sessions(), 0u);
  EXPECT_EQ(mobilityd_.allocated(), 0u);
  EXPECT_FALSE(accessd_.ue_state(sub.imsi).has_value());
}

TEST_F(AccessdTest, ReattachWhileRegisteredReplacesSession) {
  const SubscriberData sub = provision(1);
  ASSERT_TRUE(full_attach(sub, RanType::kLte).ok());
  const common::SessionId first = sessiond_.find(sub.imsi)->id;
  // UE reboots and attaches again without detaching.
  ASSERT_TRUE(full_attach(sub, RanType::kLte).ok());
  EXPECT_EQ(sessiond_.active_sessions(), 1u);
  EXPECT_NE(sessiond_.find(sub.imsi)->id, first);
}

class AccessdCpuTest : public ::testing::Test {
 protected:
  AccessdCpuTest()
      : rng_(1),
        cpu_(kernel_, sim::CpuConfig{4, 1.6, -1, 0}),
        subscribers_([this]() { return rng_.next_u64(); }),
        mobilityd_(IpBlock{}),
        sessiond_(kernel_, pipelined_, nullptr) {}

  sim::Kernel kernel_;
  sim::Rng rng_;
  sim::CpuModel cpu_;
  SubscriberDb subscribers_;
  PolicyDb policies_;
  Mobilityd mobilityd_;
  Pipelined pipelined_;
  Sessiond sessiond_;
};

TEST_F(AccessdCpuTest, SingleWorkerSerializesAttachProcessing) {
  AccessdConfig config;
  config.workers = 1;
  Accessd accessd(kernel_, &cpu_, subscribers_, policies_, mobilityd_,
                  sessiond_, config);
  SubscriberData sub1, sub2;
  sub1.imsi = imsi(1);
  sub2.imsi = imsi(2);
  subscribers_.upsert(sub1);
  subscribers_.upsert(sub2);

  std::vector<sim::TimePoint> completions;
  for (const auto& sub : {sub1, sub2}) {
    accessd.begin_attach(sub.imsi, RanType::kLte,
                         [&](common::Result<AuthChallenge>) {
                           completions.push_back(kernel_.now());
                         });
  }
  kernel_.run_until(10 * sim::kSecond);
  ASSERT_EQ(completions.size(), 2u);
  // cost_begin_attach = 0.20 ref-s at 1.6 GHz = 125 ms per attach,
  // strictly serialized.
  EXPECT_NEAR(sim::to_seconds(completions[0]), 0.125, 1e-6);
  EXPECT_NEAR(sim::to_seconds(completions[1]), 0.250, 1e-6);
}

TEST_F(AccessdCpuTest, FourWorkersParallelizeOnFourCores) {
  AccessdConfig config;
  config.workers = 4;
  Accessd accessd(kernel_, &cpu_, subscribers_, policies_, mobilityd_,
                  sessiond_, config);
  for (std::uint64_t i = 0; i < 4; ++i) {
    SubscriberData sub;
    sub.imsi = imsi(i);
    subscribers_.upsert(sub);
  }
  std::vector<sim::TimePoint> completions;
  for (std::uint64_t i = 0; i < 4; ++i) {
    accessd.begin_attach(imsi(i), RanType::kLte,
                         [&](common::Result<AuthChallenge>) {
                           completions.push_back(kernel_.now());
                         });
  }
  kernel_.run_until(10 * sim::kSecond);
  ASSERT_EQ(completions.size(), 4u);
  for (const sim::TimePoint t : completions) {
    EXPECT_NEAR(sim::to_seconds(t), 0.125, 1e-6);  // all in parallel
  }
}

TEST_F(AccessdCpuTest, OverloadShedsBeyondQueueBound) {
  AccessdConfig config;
  config.workers = 1;
  config.max_queue = 5;
  Accessd accessd(kernel_, &cpu_, subscribers_, policies_, mobilityd_,
                  sessiond_, config);
  int rejected = 0;
  int answered = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    SubscriberData sub;
    sub.imsi = imsi(i);
    subscribers_.upsert(sub);
    accessd.begin_attach(
        imsi(i), RanType::kLte, [&](common::Result<AuthChallenge> ch) {
          if (!ch.ok() &&
              ch.code() == common::ErrorCode::kResourceExhausted) {
            ++rejected;
          } else {
            ++answered;
          }
        });
  }
  kernel_.run_until(60 * sim::kSecond);
  EXPECT_GT(rejected, 0);
  EXPECT_GT(answered, 0);
  EXPECT_EQ(rejected + answered, 20);
  EXPECT_EQ(accessd.stats().overload_rejections,
            static_cast<std::uint64_t>(rejected));
}

}  // namespace
}  // namespace magma::agw
