// Deterministic chaos sweep for the congestion-control + SACK machinery:
// a {RTT} x {loss} grid checks that selective acknowledgment never hurts
// goodput, that adaptive RTO + cwnd never degenerate into a
// spurious-retransmit storm, and that TSopt timestamps reconverge the RTT
// estimator within a bounded number of samples after an outage. These are
// the transport properties §3.1 leans on when it claims control traffic can
// ride TCP over AccessParks-grade backhaul.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/bytes.h"
#include "net/channel.h"

namespace magma::net {
namespace {

using common::Bytes;
using common::to_bytes;

struct RunResult {
  std::uint64_t delivered = 0;
  std::uint64_t sent = 0;
  std::uint64_t spurious = 0;
  std::uint64_t window_violations = 0;
  std::uint64_t min_cwnd = 0;
};

// Drive `messages` through a fresh channel pair over a link with the given
// one-way latency and loss, for a fixed simulated deadline. The flow is
// window-limited (everything is enqueued up front), so goodput measures how
// fast loss recovery reopens the window — exactly where SACK should win.
RunResult run_flow(sim::Duration one_way, double loss, bool sack,
                   std::uint64_t seed, int messages,
                   sim::Duration deadline) {
  sim::Kernel kernel;
  sim::Rng rng(seed);
  sim::LinkConfig link;
  link.bandwidth_bps = 50e6;
  link.latency = one_way;
  link.jitter = 0;  // deterministic grid: loss is the only chaos source
  link.loss_probability = loss;
  DuplexLink path(kernel, rng, link);

  ReliableConfig config;
  config.sack = sack;
  config.max_retries = 30;  // the grid measures goodput, not give-up
  ReliablePair pair = make_reliable_pair(kernel, path, config);
  pair.b->set_receiver([](Bytes) {});

  for (int i = 0; i < messages; ++i) {
    pair.a->send(to_bytes(std::string(200, 'x')));
  }
  kernel.run_until(deadline);

  RunResult r;
  r.delivered = pair.b->stats().messages_delivered;
  r.sent = pair.a->stats().messages_sent;
  r.spurious = pair.b->stats().spurious_retransmits;
  r.window_violations = pair.a->stats().window_violations;
  r.min_cwnd = pair.a->stats().min_cwnd;
  return r;
}

class CongestionGrid
    : public ::testing::TestWithParam<std::tuple<sim::Duration, double>> {};

TEST_P(CongestionGrid, SackNeverHurtsGoodputAndNoStorms) {
  const sim::Duration one_way = std::get<0>(GetParam()) / 2;
  const double loss = std::get<1>(GetParam());
  // Deadline scaled to the RTT so every point is still mid-flow (window
  // limited) rather than finished: ~80 RTTs moves a few hundred segments
  // through slow start + recovery episodes at every loss rate.
  const sim::Duration deadline = 80 * 2 * one_way + 2 * sim::kSecond;
  const int kMessages = 600;

  std::uint64_t with_sack = 0;
  std::uint64_t without_sack = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const RunResult on = run_flow(one_way, loss, true, seed, kMessages,
                                  deadline);
    const RunResult off = run_flow(one_way, loss, false, seed, kMessages,
                                   deadline);
    with_sack += on.delivered;
    without_sack += off.delivered;
    for (const RunResult& r : {on, off}) {
      EXPECT_GT(r.delivered, 0u);
      // Invariants hold at every grid point.
      EXPECT_EQ(r.window_violations, 0u);
      EXPECT_GE(r.min_cwnd, 1u);
      // No spurious-retransmit storm: duplicates at the receiver stay a
      // small fraction of the messages offered (adaptive RTO + feedback
      // retransmission keep the timer honest).
      EXPECT_LT(r.spurious * 10, r.sent + 10);
    }
  }
  // Selective acknowledgment must never lose to cumulative-only ACKs:
  // identical seeds, identical link draws per transmission sequence.
  EXPECT_GE(with_sack, without_sack)
      << "SACK regressed goodput at one_way=" << one_way
      << "ns loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(
    RttLossGrid, CongestionGrid,
    ::testing::Combine(::testing::Values(10 * sim::kMillisecond,
                                         100 * sim::kMillisecond,
                                         600 * sim::kMillisecond),
                       ::testing::Values(0.0, 0.01, 0.05)),
    [](const auto& info) {
      const auto rtt_ms = std::get<0>(info.param) / sim::kMillisecond;
      const auto loss_pct =
          static_cast<int>(std::get<1>(info.param) * 100 + 0.5);
      return "Rtt" + std::to_string(rtt_ms) + "msLoss" +
             std::to_string(loss_pct) + "pct";
    });

TEST(CongestionRecovery, TimestampsConvergeSrttWithinBoundedSamples) {
  // An outage leaves the estimator where it was; once the link returns,
  // TSopt must reconverge SRTT to the true RTT within a handful of samples
  // because retransmitted segments sample too (Karn's rule relaxed).
  sim::Kernel kernel;
  sim::Rng rng(7);
  sim::LinkConfig link = sim::lan_link();
  DuplexLink path(kernel, rng, link);
  ReliableConfig config;
  config.max_retries = 30;
  ReliablePair pair = make_reliable_pair(kernel, path, config);
  pair.b->set_receiver([](Bytes) {});

  for (int i = 0; i < 20; ++i) {
    kernel.schedule(i * 10 * sim::kMillisecond,
                    [&pair]() { pair.a->send(to_bytes("warm")); });
  }
  kernel.run();
  ASSERT_LT(pair.a->stats().srtt, 2 * sim::kMillisecond);

  // 10 s outage with traffic queued behind it: RTO backs off repeatedly.
  path.forward.set_up(false);
  for (int i = 0; i < 5; ++i) pair.a->send(to_bytes("outage"));
  kernel.run_until(kernel.now() + 10 * sim::kSecond);
  path.forward.set_up(true);

  const std::uint64_t samples_at_recovery = pair.a->stats().rtt_samples;
  kernel.run();  // drain the queued messages
  const net::ReliableStats& s = pair.a->stats();
  // Convergence bound: the drain itself brings the estimator home — no
  // more than a dozen samples after the link returns, SRTT reads the LAN
  // RTT again (without timestamps it would coast on the stale value until
  // fresh unretransmitted traffic appeared).
  EXPECT_GT(s.rtt_samples, samples_at_recovery);
  EXPECT_LE(s.rtt_samples - samples_at_recovery, 12u);
  EXPECT_LT(s.srtt, 2 * sim::kMillisecond);
  EXPECT_EQ(s.failures, 0u);
}

TEST(CongestionWindow, SlowStartThenAdditiveIncrease) {
  // On a clean link the window doubles per RTT until ssthresh, then grows
  // by one segment per window: classic NewReno shape, visible in stats.
  sim::Kernel kernel;
  sim::Rng rng(1);
  DuplexLink path(kernel, rng, sim::lan_link());
  ReliableConfig config;
  config.initial_cwnd = 2;
  config.initial_ssthresh = 8;
  config.max_cwnd = 32;
  ReliablePair pair = make_reliable_pair(kernel, path, config);
  pair.b->set_receiver([](Bytes) {});

  for (int i = 0; i < 200; ++i) pair.a->send(to_bytes("m"));
  kernel.run();
  const net::ReliableStats& s = pair.a->stats();
  EXPECT_EQ(s.messages_acked, 200u);
  // Grew past ssthresh (congestion avoidance engaged) without ever
  // exceeding the cap, and the clean link triggered no loss response.
  EXPECT_GT(s.cwnd, 8u);
  EXPECT_LE(s.cwnd, 32u);
  EXPECT_EQ(s.retransmissions, 0u);
  EXPECT_EQ(s.window_violations, 0u);
  EXPECT_EQ(s.min_cwnd, 2u);
  // Flight was genuinely window-limited at some point (the burst of 200
  // could not leave in one RTT).
  EXPECT_LE(s.max_flight_size, 32u);
}

TEST(CongestionWindow, TimeoutCollapsesWindowToOneSegment) {
  // A full RTO (no ACK feedback at all) is a loss event: cwnd drops to 1
  // and ssthresh remembers half the flight, per RFC 5681 §3.1.
  sim::Kernel kernel;
  sim::Rng rng(1);
  DuplexLink path(kernel, rng, sim::lan_link());
  ReliableConfig config;
  config.initial_cwnd = 16;
  config.max_retries = 30;
  ReliablePair pair = make_reliable_pair(kernel, path, config);
  pair.b->set_receiver([](Bytes) {});

  // Fill the window, then cut the link so every timer expires.
  for (int i = 0; i < 16; ++i) pair.a->send(to_bytes("m"));
  kernel.run_until(kernel.now() + 10 * sim::kMillisecond);
  path.forward.set_up(false);
  for (int i = 0; i < 8; ++i) pair.a->send(to_bytes("late"));
  kernel.run_until(kernel.now() + 3 * sim::kSecond);
  EXPECT_EQ(pair.a->stats().cwnd, 1u);
  EXPECT_GE(pair.a->stats().min_cwnd, 1u);

  path.forward.set_up(true);
  kernel.run();
  // Recovery completes: everything delivered, window regrew off the floor.
  EXPECT_EQ(pair.a->stats().messages_acked, 24u);
  EXPECT_GT(pair.a->stats().cwnd, 1u);
}

TEST(CongestionSack, BurstLossRepairsWithoutCumulativeProgress) {
  // Drop a contiguous burst mid-window; SACK blocks above the holes must
  // trigger retransmission of every hole without waiting for cumulative
  // ACK progress (sack_retransmits > 0), and the flow completes without a
  // single RTO expiry on a long-RTT path where RTOs are ruinous.
  sim::Kernel kernel;
  sim::Rng rng(1);
  sim::LinkConfig link;
  link.bandwidth_bps = 50e6;
  link.latency = 300 * sim::kMillisecond;
  DuplexLink path(kernel, rng, link);
  ReliableConfig config;
  config.initial_cwnd = 32;
  config.initial_rto = 10 * sim::kSecond;  // an RTO rescue would be visible
  ReliablePair pair = make_reliable_pair(kernel, path, config);
  pair.b->set_receiver([](Bytes) {});

  // Pace one segment per millisecond and cut the link under the middle of
  // the burst (the link decides loss at transmit time): segments 5..8 are
  // swallowed, everything around them flies.
  kernel.schedule(4500 * sim::kMicrosecond,
                  [&path]() { path.forward.set_up(false); });
  kernel.schedule(8500 * sim::kMicrosecond,
                  [&path]() { path.forward.set_up(true); });
  for (int i = 0; i < 32; ++i) {
    kernel.schedule(i * sim::kMillisecond, [&pair]() {
      pair.a->send(to_bytes(std::string(200, 'x')));
    });
  }
  kernel.run();

  const net::ReliableStats& s = pair.a->stats();
  EXPECT_EQ(s.messages_acked, 32u);
  EXPECT_GT(s.sack_retransmits, 0u);
  // Every lost segment was repaired by SACK feedback, not the timer: with
  // a 10 s initial RTO, any timer rescue would blow the runtime way past
  // the handful of RTTs this assertion implies.
  EXPECT_EQ(s.retransmissions, s.sack_retransmits + s.fast_retransmits);
  EXPECT_LT(kernel.now(), 5 * sim::kSecond);
}

}  // namespace
}  // namespace magma::net
