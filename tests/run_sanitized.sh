#!/usr/bin/env bash
# Build and run the transport-facing test suites under ASan+UBSan.
#
# The reliable transport keeps segments (and their retransmission timers)
# in flight across the event loop; this is where lifetime bugs live. A
# plain build can pass tests while reading freed endpoints — run this
# before touching src/net or src/rpc.
#
# The observability suites ride along: tracer spans are ended from async
# continuations that can outlive the component that began them, and the
# tail sampler pins/unpins ring entries from a finish hook — the same
# class of lifetime bug. The host profiler suite matters doubly here: it
# exercises the global operator new/delete hooks under ASan's allocator
# interposition, catching any mismatch in the override set.
#
# Usage: tests/run_sanitized.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

SUITES=(
  net_channel_test net_congestion_test fuzz_codec_test property_test
  rpc_test magmad_orc8r_test fleet_scale_test obs_test tail_sampler_test
  tracing_integration_test statusd_test slo_test cpu_profile_test
  host_profiler_test bench_compare_test sketch_test histogram_test
  pool_test inplace_function_test alloc_discipline_test
)

# Bench binaries backing the ctest smoke targets (HostMicrobenchSmoke,
# BenchCompareSelfDiff, FleetSloAvailabilityQuick) — running the microbench
# under ASan exercises the operator new/delete overrides against the
# sanitizer's interposition, and the availability bench drives statusd's
# downtime hooks and the attribution join (closures scheduled from RPC
# continuations — exactly the lifetime shape sanitizers exist for). If the
# availability bench binary ever falls out of the build, the loop below
# fails loudly rather than letting the SLO layer go unexercised. The
# subscriber bench joins them: SpaceSaving merge moves HeavyHitter strings
# between gateway-owned and metricsd-owned sketches — an aliasing bug there
# is exactly an ASan find.
BENCHES=(host_microbench bench_compare fleet_slo_availability
         scaleout_subscribers)

cmake --preset asan
cmake --build --preset asan -j "$(nproc)" --target "${SUITES[@]}" "${BENCHES[@]}"

# A suite that silently fell out of the build (renamed, dropped from
# tests/CMakeLists.txt) must fail here, not pass vacuously via an empty
# ctest match.
for suite in "${SUITES[@]}"; do
  if [[ ! -x "build-asan/tests/${suite}" ]]; then
    echo "FATAL: suite binary missing: build-asan/tests/${suite}" >&2
    exit 1
  fi
done
for b in "${BENCHES[@]}"; do
  if [[ ! -x "build-asan/bench/${b}" ]]; then
    echo "FATAL: bench binary missing: build-asan/bench/${b}" >&2
    exit 1
  fi
done

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir build-asan --output-on-failure \
  -R 'Channel|Reliable|Datagram|Congestion|Fuzz|Rpc|Wire|Magmad|Orchestrator|DesiredState|TransportTelemetry|Tracer|Histogram|EventBuffer|EventReport|ChromeTrace|Tracing|Statusd|Service303|GatewayStatus|CpuProfile|TailSampler|CriticalPath|FleetIngest|DeltaStream|FleetScale|HostProfiler|BenchCompare|QueueDepth|BlockPool|TypedPool|PoolAllocator|InplaceFunction|KernelClosure|AllocDiscipline|AvailabilityLedger|BurnRate|Attribution|SloReport|SloIntegration|FleetSloAvailability|SpaceSaving|HyperLogLog|SubscriberSketches|SketchCodec|FormatTopSubscribers|MetricsdSketch|MetricsdDrops|AccessdSketch|SubscriberBench' \
  "$@"
echo "sanitized transport suite: OK"
