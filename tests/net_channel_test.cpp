// Transport semantics: datagram loss-through vs reliable in-order delivery
// under loss — the TCP/gRPC-vs-GTP distinction of §3.1.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "net/channel.h"

namespace magma::net {
namespace {

using common::Bytes;
using common::to_bytes;
using common::to_string;

struct Harness {
  sim::Kernel kernel;
  sim::Rng rng{42};
};

TEST(DatagramChannel, DeliversBothDirections) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ChannelPair pair = make_datagram_pair(h.kernel, path);

  std::vector<std::string> at_b, at_a;
  pair.b->set_receiver([&](Bytes m) { at_b.push_back(to_string(m)); });
  pair.a->set_receiver([&](Bytes m) { at_a.push_back(to_string(m)); });

  pair.a->send(to_bytes("hello"));
  pair.b->send(to_bytes("world"));
  h.kernel.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0], "hello");
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0], "world");
}

TEST(DatagramChannel, LosesOnLossyLink) {
  Harness h;
  sim::LinkConfig lossy = sim::lan_link();
  lossy.loss_probability = 0.5;
  DuplexLink path(h.kernel, h.rng, lossy);
  ChannelPair pair = make_datagram_pair(h.kernel, path);

  int received = 0;
  pair.b->set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 1000; ++i) pair.a->send(to_bytes("x"));
  h.kernel.run();
  EXPECT_GT(received, 300);
  EXPECT_LT(received, 700);
}

TEST(ReliableChannel, InOrderDeliveryOnCleanLink) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliablePair pair = make_reliable_pair(h.kernel, path);

  std::vector<std::string> received;
  pair.b->set_receiver([&](Bytes m) { received.push_back(to_string(m)); });
  for (int i = 0; i < 50; ++i) {
    pair.a->send(to_bytes("msg" + std::to_string(i)));
  }
  h.kernel.run();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], "msg" + std::to_string(i));
  }
  EXPECT_EQ(pair.a->stats().retransmissions, 0u);
}

TEST(ReliableChannel, SurvivesHeavyLossInOrder) {
  Harness h;
  sim::LinkConfig lossy = sim::lan_link();
  lossy.loss_probability = 0.3;
  DuplexLink path(h.kernel, h.rng, lossy);
  ReliablePair pair = make_reliable_pair(h.kernel, path);

  std::vector<std::string> received;
  pair.b->set_receiver([&](Bytes m) { received.push_back(to_string(m)); });
  const int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    pair.a->send(to_bytes("m" + std::to_string(i)));
  }
  h.kernel.run();
  ASSERT_EQ(received.size(), static_cast<size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], "m" + std::to_string(i));
  }
  EXPECT_GT(pair.a->stats().retransmissions, 0u);
  EXPECT_EQ(pair.a->stats().failures, 0u);
}

TEST(ReliableChannel, SurvivesSatelliteBackhaul) {
  // The §3.1 scenario: control traffic over satellite (300 ms, 2% loss).
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::satellite_backhaul());
  ReliablePair pair = make_reliable_pair(h.kernel, path);

  int received = 0;
  pair.b->set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 100; ++i) pair.a->send(to_bytes("config-update"));
  h.kernel.run();
  EXPECT_EQ(received, 100);
}

TEST(ReliableChannel, GivesUpAfterMaxRetriesOnDeadLink) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  path.forward.set_up(false);  // one-way outage: data never arrives
  ReliableConfig config;
  config.max_retries = 3;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);

  int received = 0;
  pair.b->set_receiver([&](Bytes) { ++received; });
  pair.a->send(to_bytes("doomed"));
  h.kernel.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(pair.a->stats().failures, 1u);
  EXPECT_EQ(pair.a->stats().retransmissions, 3u);
}

TEST(ReliableChannel, ResetAfterGiveUpDoesNotWedgeDelivery) {
  // Regression: abandoning a message after max_retries must not leave a
  // permanent sequence gap. The connection resets (new epoch) and traffic
  // sent after the outage flows again.
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliableConfig config;
  config.max_retries = 3;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);

  std::vector<std::string> received;
  pair.b->set_receiver([&](Bytes m) { received.push_back(to_string(m)); });

  // Long outage: these messages are abandoned (connection reset).
  path.forward.set_up(false);
  for (int i = 0; i < 5; ++i) pair.a->send(to_bytes("lost" + std::to_string(i)));
  h.kernel.run_until(h.kernel.now() + 30 * sim::kSecond);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(pair.a->stats().failures, 5u);

  // Link returns; fresh messages must be delivered despite the gap.
  path.forward.set_up(true);
  for (int i = 0; i < 3; ++i) pair.a->send(to_bytes("post" + std::to_string(i)));
  h.kernel.run();
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0], "post0");
  EXPECT_EQ(received[2], "post2");
}

TEST(ReliableChannel, AdaptiveRtoEliminatesSpuriousRetransmitsOnSatellite) {
  // The §3.1 satellite scenario with the acceptance-criteria link: ≥500 ms
  // RTT, 1% loss. A fixed 200 ms RTO fires before the first ACK can possibly
  // arrive, so nearly every segment retransmits spuriously; the RFC 6298
  // estimator converges on the real RTT and stops the storm.
  auto run = [](bool adaptive) {
    Harness h;
    sim::LinkConfig sat = sim::satellite_backhaul();
    sat.loss_probability = 0.01;
    DuplexLink path(h.kernel, h.rng, sat);
    ReliableConfig config;
    config.adaptive_rto = adaptive;
    // The fixed baseline is the old transport: 200 ms RTO, pure backoff.
    if (!adaptive) config.initial_rto = 200 * sim::kMillisecond;
    ReliablePair pair = make_reliable_pair(h.kernel, path, config);

    int received = 0;
    pair.b->set_receiver([&](Bytes) { ++received; });
    for (int i = 0; i < 200; ++i) {
      h.kernel.schedule(i * 100 * sim::kMillisecond,
                        [&pair]() { pair.a->send(to_bytes("ctrl")); });
    }
    h.kernel.run();
    EXPECT_EQ(received, 200);
    // Spurious retransmissions are observed at the receiving endpoint.
    return std::pair<ReliableStats, ReliableStats>{pair.a->stats(),
                                                   pair.b->stats()};
  };

  const auto [fixed_a, fixed_b] = run(false);
  const auto [adaptive_a, adaptive_b] = run(true);

  // Fixed 200 ms RTO vs ~640 ms RTT: a storm of useless retransmissions.
  EXPECT_GT(fixed_b.spurious_retransmits, 100u);
  // Adaptive: only genuinely lost segments (~1%) retransmit. "Near zero."
  EXPECT_LT(adaptive_b.spurious_retransmits, 10u);
  EXPECT_LT(adaptive_a.retransmissions, fixed_a.retransmissions / 5);

  // The estimator converged on the real RTT: 600 ms propagation + jitter +
  // serialization.
  EXPECT_GT(adaptive_a.srtt, 550 * sim::kMillisecond);
  EXPECT_LT(adaptive_a.srtt, 800 * sim::kMillisecond);
  EXPECT_GE(adaptive_a.rto, adaptive_a.srtt);
}

TEST(ReliableChannel, KarnsRuleKeepsEstimatorCleanAcrossOutage) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliableConfig config;
  config.max_retries = 20;
  // Classic Karn mode: without timestamps, retransmitted segments are
  // ambiguous and must never feed the estimator.
  config.timestamps = false;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);
  pair.b->set_receiver([](Bytes) {});

  // Let the estimator converge on the LAN RTT (~0.4 ms).
  for (int i = 0; i < 20; ++i) {
    h.kernel.schedule(i * 10 * sim::kMillisecond,
                      [&pair]() { pair.a->send(to_bytes("warm")); });
  }
  h.kernel.run();
  const std::uint64_t samples_before = pair.a->stats().rtt_samples;
  ASSERT_GT(samples_before, 0u);
  EXPECT_LT(pair.a->stats().srtt, 2 * sim::kMillisecond);

  // A 3-second outage: the message retransmits repeatedly, and its eventual
  // ACK covers a multi-second span. Karn's rule must discard that sample.
  path.forward.set_up(false);
  pair.a->send(to_bytes("outage"));
  h.kernel.run_until(h.kernel.now() + 3 * sim::kSecond);
  path.forward.set_up(true);
  h.kernel.run();
  EXPECT_GT(pair.a->stats().retransmissions, 0u);
  EXPECT_EQ(pair.a->stats().rtt_samples, samples_before);
  EXPECT_LT(pair.a->stats().srtt, 2 * sim::kMillisecond);

  // Fresh unretransmitted traffic samples again.
  pair.a->send(to_bytes("fresh"));
  h.kernel.run();
  EXPECT_EQ(pair.a->stats().rtt_samples, samples_before + 1);
}

TEST(ReliableChannel, TimestampsSampleRetransmittedSegments) {
  // TSopt relaxes Karn's rule: the echoed tsval disambiguates which
  // transmission an ACK answers, so even a retransmitted segment yields a
  // clean RTT sample — and the estimator keeps moving through loss.
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliableConfig config;
  config.max_retries = 20;
  config.timestamps = true;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);
  pair.b->set_receiver([](Bytes) {});

  for (int i = 0; i < 20; ++i) {
    h.kernel.schedule(i * 10 * sim::kMillisecond,
                      [&pair]() { pair.a->send(to_bytes("warm")); });
  }
  h.kernel.run();
  const std::uint64_t samples_before = pair.a->stats().rtt_samples;
  ASSERT_GT(samples_before, 0u);
  EXPECT_LT(pair.a->stats().srtt, 2 * sim::kMillisecond);

  // Same outage shape as the Karn test above — but with timestamps, the
  // post-outage delivery of the retransmitted segment DOES sample, and the
  // sample reflects the final (fast) round trip, not the outage span.
  path.forward.set_up(false);
  pair.a->send(to_bytes("outage"));
  h.kernel.run_until(h.kernel.now() + 3 * sim::kSecond);
  path.forward.set_up(true);
  h.kernel.run();
  EXPECT_GT(pair.a->stats().retransmissions, 0u);
  EXPECT_GT(pair.a->stats().rtt_samples, samples_before);
  EXPECT_LT(pair.a->stats().srtt, 2 * sim::kMillisecond);
}

TEST(ReliableChannel, FastRetransmitOnThreeDupAcks) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliableConfig config;
  config.initial_rto = 10 * sim::kSecond;  // the RTO must not be the rescuer
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);

  std::vector<std::string> received;
  pair.b->set_receiver([&](Bytes m) { received.push_back(to_string(m)); });

  // Lose exactly the first segment, deliver the next three: the receiver
  // dup-acks seq 0 three times, triggering one immediate retransmission.
  path.forward.set_up(false);
  pair.a->send(to_bytes("m0"));
  path.forward.set_up(true);
  for (int i = 1; i <= 3; ++i) {
    pair.a->send(to_bytes("m" + std::to_string(i)));
  }
  h.kernel.run();

  ASSERT_EQ(received.size(), 4u);
  EXPECT_EQ(received[0], "m0");
  EXPECT_EQ(received[3], "m3");
  EXPECT_EQ(pair.a->stats().fast_retransmits, 1u);
  EXPECT_EQ(pair.a->stats().retransmissions, 1u);
  // Recovery happened in a few link RTTs, far below the 10 s RTO.
  EXPECT_LT(h.kernel.now(), sim::kSecond);
}

TEST(ReliableChannel, SendBacklogTracksUnackedMessages) {
  // send_backlog() is the backpressure signal callers above the transport
  // (magmad's best-effort telemetry) consult: everything sent but not yet
  // cumulatively acked, whether in flight or queued behind the window.
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliableConfig config;
  config.max_retries = 50;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);
  pair.b->set_receiver([](Bytes) {});

  EXPECT_EQ(pair.a->send_backlog(), 0u);
  path.forward.set_up(false);
  for (int i = 0; i < 3; ++i) pair.a->send(to_bytes("m"));
  EXPECT_EQ(pair.a->send_backlog(), 3u);
  h.kernel.run_until(sim::kSecond);
  EXPECT_EQ(pair.a->send_backlog(), 3u);  // outage: nothing acked

  path.forward.set_up(true);
  h.kernel.run();
  EXPECT_EQ(pair.a->send_backlog(), 0u);  // drained once acks flow
}

TEST(ReliableChannel, PiggybackedAckBreaksAckLossWedge) {
  // Asymmetric loss: a's DATA crosses fine, but every pure ACK b sends back
  // dies on the reverse link. Without piggybacking, a's segment sits on RTO
  // backoff even though it was delivered long ago. With it, b's own reverse
  // DATA at t=1s carries the cumulative ack and unwedges a before the 5 s
  // RTO ever fires — proving the piggyback path is the only rescuer here.
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliableConfig config;
  config.adaptive_rto = false;
  config.initial_rto = 5 * sim::kSecond;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);

  std::vector<std::string> at_b, at_a;
  pair.b->set_receiver([&](Bytes m) { at_b.push_back(to_string(m)); });
  pair.a->set_receiver([&](Bytes m) { at_a.push_back(to_string(m)); });

  path.reverse.set_up(false);  // b's pure ACK is lost
  pair.a->send(to_bytes("request"));
  h.kernel.run_until(sim::kSecond);
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(pair.a->stats().messages_acked, 0u);

  path.reverse.set_up(true);
  pair.b->send(to_bytes("response"));  // DATA carrying ack=1 piggybacked
  h.kernel.run();

  EXPECT_EQ(pair.a->stats().messages_acked, 1u);
  EXPECT_EQ(pair.a->stats().retransmissions, 0u);  // RTO never needed
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0], "response");
  EXPECT_LT(h.kernel.now(), 2 * sim::kSecond);  // far below the 5 s RTO
}

TEST(ReliableChannel, SendFailureHandlerReceivesEveryAbandonedMessage) {
  // Regression for the silent-drop bug: messages outstanding at reset time
  // (including ones sent an instant before, never retransmitted once) must
  // reach the failure callback, not vanish with a counter bump.
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  path.forward.set_up(false);
  ReliableConfig config;
  config.initial_rto = 100 * sim::kMillisecond;
  config.max_retries = 3;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);

  std::vector<std::string> failed;
  pair.a->set_send_failure_handler(
      [&](Bytes m) { failed.push_back(to_string(m)); });
  int received = 0;
  pair.b->set_receiver([&](Bytes) { ++received; });

  // "first" resets at 1500 ms (100+200+400+800 of backoff); "last-moment"
  // goes out at 1400 ms, an instant before, with zero retransmissions of
  // its own — the old code silently dropped exactly this message.
  pair.a->send(to_bytes("first"));
  h.kernel.schedule(1400 * sim::kMillisecond,
                    [&pair]() { pair.a->send(to_bytes("last-moment")); });
  h.kernel.run();

  EXPECT_EQ(received, 0);
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_EQ(failed[0], "first");
  EXPECT_EQ(failed[1], "last-moment");
  const ReliableStats& s = pair.a->stats();
  EXPECT_EQ(s.failures, 2u);
  EXPECT_EQ(s.resets, 1u);
  EXPECT_EQ(s.messages_sent, s.messages_acked + s.failures);
}

TEST(ReliableChannel, ResetClearsStaleReorderBufferAtPeer) {
  // seq 0 is lost and never recovers (reset); seq 1 arrived and sits in the
  // peer's reorder buffer. The RST must purge it — it may neither linger
  // forever nor be delivered once post-reset traffic flows.
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliableConfig config;
  config.max_retries = 0;  // first timeout resets, with the link back up
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);

  std::vector<std::string> received;
  pair.b->set_receiver([&](Bytes m) { received.push_back(to_string(m)); });
  std::vector<std::string> failed;
  pair.a->set_send_failure_handler(
      [&](Bytes m) { failed.push_back(to_string(m)); });

  path.forward.set_up(false);
  pair.a->send(to_bytes("head-lost"));  // seq 0: dropped
  path.forward.set_up(true);
  pair.a->send(to_bytes("buffered"));   // seq 1: arrives, waits for seq 0
  h.kernel.run_until(h.kernel.now() + 100 * sim::kMillisecond);
  EXPECT_EQ(pair.b->reorder_backlog(), 1u);

  // seq 0's timer fires at 1 s → reset; the RST crosses the (healthy) link
  // and purges the dead epoch's buffered payload at the peer.
  h.kernel.run_until(h.kernel.now() + 2 * sim::kSecond);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(pair.a->stats().resets, 1u);
  ASSERT_EQ(failed.size(), 2u);  // both epoch-0 messages failed
  EXPECT_EQ(pair.b->reorder_backlog(), 0u);

  // Fresh traffic flows on the new epoch; "buffered" must never surface.
  pair.a->send(to_bytes("post-reset"));
  h.kernel.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "post-reset");
}

TEST(ReliableChannel, DestroyWithSegmentsInFlightIsSafe) {
  // Regression for the use-after-free hazard: segments (and ACKs) already
  // in the kernel's event queue when an endpoint dies must drop harmlessly.
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::satellite_backhaul());
  {
    ReliablePair pair = make_reliable_pair(h.kernel, path);
    pair.b->set_receiver([](Bytes) {});
    for (int i = 0; i < 20; ++i) pair.a->send(to_bytes("in-flight"));
    // 300 ms one-way: everything is still on the wire when the pair dies.
    h.kernel.run_until(50 * sim::kMillisecond);
    EXPECT_GT(h.kernel.pending_events(), 0u);
  }
  h.kernel.run();  // deliveries and retransmission timers must not explode

  // Asymmetric destruction: the receiver dies first, the sender keeps
  // retransmitting into the void for a while, then dies with timers armed.
  {
    ReliablePair pair = make_reliable_pair(h.kernel, path);
    for (int i = 0; i < 5; ++i) pair.a->send(to_bytes("x"));
    h.kernel.run_until(h.kernel.now() + 50 * sim::kMillisecond);
    pair.b.reset();
    h.kernel.run_until(h.kernel.now() + 2 * sim::kSecond);
    pair.a.reset();
  }
  h.kernel.run();
}

TEST(DatagramChannel, DestroyWithPacketsInFlightIsSafe) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::satellite_backhaul());
  {
    ChannelPair pair = make_datagram_pair(h.kernel, path);
    pair.b->set_receiver([](Bytes) {});
    for (int i = 0; i < 20; ++i) pair.a->send(to_bytes("in-flight"));
    EXPECT_GT(h.kernel.pending_events(), 0u);
  }
  h.kernel.run();
}

TEST(ReliableChannel, RecoversAfterOutage) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliableConfig config;
  config.max_retries = 20;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);

  std::vector<std::string> received;
  pair.b->set_receiver([&](Bytes m) { received.push_back(to_string(m)); });

  path.forward.set_up(false);
  pair.a->send(to_bytes("queued-during-outage"));
  h.kernel.run_until(2 * sim::kSecond);
  EXPECT_TRUE(received.empty());

  path.forward.set_up(true);
  h.kernel.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "queued-during-outage");
}

}  // namespace
}  // namespace magma::net
