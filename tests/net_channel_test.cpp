// Transport semantics: datagram loss-through vs reliable in-order delivery
// under loss — the TCP/gRPC-vs-GTP distinction of §3.1.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "net/channel.h"

namespace magma::net {
namespace {

using common::Bytes;
using common::to_bytes;
using common::to_string;

struct Harness {
  sim::Kernel kernel;
  sim::Rng rng{42};
};

TEST(DatagramChannel, DeliversBothDirections) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ChannelPair pair = make_datagram_pair(h.kernel, path);

  std::vector<std::string> at_b, at_a;
  pair.b->set_receiver([&](Bytes m) { at_b.push_back(to_string(m)); });
  pair.a->set_receiver([&](Bytes m) { at_a.push_back(to_string(m)); });

  pair.a->send(to_bytes("hello"));
  pair.b->send(to_bytes("world"));
  h.kernel.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0], "hello");
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0], "world");
}

TEST(DatagramChannel, LosesOnLossyLink) {
  Harness h;
  sim::LinkConfig lossy = sim::lan_link();
  lossy.loss_probability = 0.5;
  DuplexLink path(h.kernel, h.rng, lossy);
  ChannelPair pair = make_datagram_pair(h.kernel, path);

  int received = 0;
  pair.b->set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 1000; ++i) pair.a->send(to_bytes("x"));
  h.kernel.run();
  EXPECT_GT(received, 300);
  EXPECT_LT(received, 700);
}

TEST(ReliableChannel, InOrderDeliveryOnCleanLink) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliablePair pair = make_reliable_pair(h.kernel, path);

  std::vector<std::string> received;
  pair.b->set_receiver([&](Bytes m) { received.push_back(to_string(m)); });
  for (int i = 0; i < 50; ++i) {
    pair.a->send(to_bytes("msg" + std::to_string(i)));
  }
  h.kernel.run();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], "msg" + std::to_string(i));
  }
  EXPECT_EQ(pair.a->stats().retransmissions, 0u);
}

TEST(ReliableChannel, SurvivesHeavyLossInOrder) {
  Harness h;
  sim::LinkConfig lossy = sim::lan_link();
  lossy.loss_probability = 0.3;
  DuplexLink path(h.kernel, h.rng, lossy);
  ReliablePair pair = make_reliable_pair(h.kernel, path);

  std::vector<std::string> received;
  pair.b->set_receiver([&](Bytes m) { received.push_back(to_string(m)); });
  const int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    pair.a->send(to_bytes("m" + std::to_string(i)));
  }
  h.kernel.run();
  ASSERT_EQ(received.size(), static_cast<size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], "m" + std::to_string(i));
  }
  EXPECT_GT(pair.a->stats().retransmissions, 0u);
  EXPECT_EQ(pair.a->stats().failures, 0u);
}

TEST(ReliableChannel, SurvivesSatelliteBackhaul) {
  // The §3.1 scenario: control traffic over satellite (300 ms, 2% loss).
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::satellite_backhaul());
  ReliablePair pair = make_reliable_pair(h.kernel, path);

  int received = 0;
  pair.b->set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 100; ++i) pair.a->send(to_bytes("config-update"));
  h.kernel.run();
  EXPECT_EQ(received, 100);
}

TEST(ReliableChannel, GivesUpAfterMaxRetriesOnDeadLink) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  path.forward.set_up(false);  // one-way outage: data never arrives
  ReliableConfig config;
  config.max_retries = 3;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);

  int received = 0;
  pair.b->set_receiver([&](Bytes) { ++received; });
  pair.a->send(to_bytes("doomed"));
  h.kernel.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(pair.a->stats().failures, 1u);
  EXPECT_EQ(pair.a->stats().retransmissions, 3u);
}

TEST(ReliableChannel, ResetAfterGiveUpDoesNotWedgeDelivery) {
  // Regression: abandoning a message after max_retries must not leave a
  // permanent sequence gap. The connection resets (new epoch) and traffic
  // sent after the outage flows again.
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliableConfig config;
  config.max_retries = 3;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);

  std::vector<std::string> received;
  pair.b->set_receiver([&](Bytes m) { received.push_back(to_string(m)); });

  // Long outage: these messages are abandoned (connection reset).
  path.forward.set_up(false);
  for (int i = 0; i < 5; ++i) pair.a->send(to_bytes("lost" + std::to_string(i)));
  h.kernel.run_until(h.kernel.now() + 30 * sim::kSecond);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(pair.a->stats().failures, 5u);

  // Link returns; fresh messages must be delivered despite the gap.
  path.forward.set_up(true);
  for (int i = 0; i < 3; ++i) pair.a->send(to_bytes("post" + std::to_string(i)));
  h.kernel.run();
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0], "post0");
  EXPECT_EQ(received[2], "post2");
}

TEST(ReliableChannel, RecoversAfterOutage) {
  Harness h;
  DuplexLink path(h.kernel, h.rng, sim::lan_link());
  ReliableConfig config;
  config.max_retries = 20;
  ReliablePair pair = make_reliable_pair(h.kernel, path, config);

  std::vector<std::string> received;
  pair.b->set_receiver([&](Bytes m) { received.push_back(to_string(m)); });

  path.forward.set_up(false);
  pair.a->send(to_bytes("queued-during-outage"));
  h.kernel.run_until(2 * sim::kSecond);
  EXPECT_TRUE(received.empty());

  path.forward.set_up(true);
  h.kernel.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "queued-during-outage");
}

}  // namespace
}  // namespace magma::net
