// Boundary and lifecycle coverage for common::InplaceFunction and its use
// as sim::EventFn: exact-fit captures stay inline, one-byte-over captures
// take the (counted) heap fallback, move-only captures work, events can
// reschedule themselves while firing, and heap-fallback events cancel
// cleanly. Runs under the ASan preset via tests/run_sanitized.sh.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>

#include "common/inplace_function.h"
#include "obs/host_profiler.h"
#include "sim/kernel.h"

namespace magma {
namespace {

class PoolingGuard {
 public:
  PoolingGuard() : was_(common::memory_pooling_enabled()) {}
  ~PoolingGuard() { common::set_memory_pooling_enabled(was_); }

 private:
  bool was_;
};

using Fn = common::InplaceFunction<int(), sim::kEventInlineBytes>;

template <std::size_t N>
struct Blob {
  char data[N];
};

TEST(InplaceFunction, ExactlyFittingCaptureStaysInline) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(true);
  Blob<sim::kEventInlineBytes> blob{};
  blob.data[0] = 42;
  auto lam = [blob]() { return static_cast<int>(blob.data[0]); };
  static_assert(sizeof(lam) == sim::kEventInlineBytes);
  Fn fn(std::move(lam));
  EXPECT_FALSE(fn.on_heap());
  EXPECT_EQ(fn(), 42);
}

TEST(InplaceFunction, OneByteOverCaptureFallsBackToHeap) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(true);
  Blob<sim::kEventInlineBytes + 1> blob{};
  blob.data[sim::kEventInlineBytes] = 7;
  auto lam = [blob]() {
    return static_cast<int>(blob.data[sim::kEventInlineBytes]);
  };
  static_assert(sizeof(lam) == sim::kEventInlineBytes + 1);
  Fn fn(std::move(lam));
  EXPECT_TRUE(fn.on_heap());
  EXPECT_EQ(fn(), 7);  // behavior identical either way
}

TEST(InplaceFunction, InlineConstructionAllocatesNothing) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(true);
  Blob<64> blob{};
  blob.data[1] = 9;
  const std::uint64_t before = obs::HostProfiler::process_alloc_count();
  {
    Fn fn([blob]() { return static_cast<int>(blob.data[1]); });
    Fn moved(std::move(fn));
    (void)moved();
  }
  const std::uint64_t delta =
      obs::HostProfiler::process_alloc_count() - before;
  EXPECT_EQ(delta, 0u);
}

TEST(InplaceFunction, MoveOnlyCaptureInvokesAndReleases) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(true);
  auto owned = std::make_unique<int>(31);
  common::InplaceFunction<int(), 64> fn(
      [owned = std::move(owned)]() { return *owned; });
  EXPECT_FALSE(fn.on_heap());
  // Move the wrapper itself: the unique_ptr relocates with it.
  common::InplaceFunction<int(), 64> moved(std::move(fn));
  EXPECT_EQ(moved(), 31);
}

TEST(InplaceFunction, DisabledPoolingForcesHeapEvenWhenSmall) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(false);
  Fn fn([]() { return 3; });
  EXPECT_TRUE(fn.on_heap());
  EXPECT_EQ(fn(), 3);
  // Re-enabling after construction must not confuse destruction: the Ops
  // vtable chosen at construction owns the lifetime.
  common::set_memory_pooling_enabled(true);
}

TEST(KernelClosure, HeapFallbackCounterTracksOversizedCaptures) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(true);
  sim::Kernel k;
  int fired = 0;
  Blob<sim::kEventInlineBytes + 8> big{};
  k.schedule(1, [&fired]() { ++fired; });  // small: inline
  EXPECT_EQ(k.stats().closure_heap_fallbacks, 0u);
  k.schedule(2, [&fired, big]() { ++fired; (void)big; });  // oversized
  EXPECT_EQ(k.stats().closure_heap_fallbacks, 1u);
  k.run();
  EXPECT_EQ(fired, 2);
}

// An event that schedules its successor while its own closure is executing:
// the heap entry holding the firing closure was already popped, so the
// push_heap triggered from inside the closure must not invalidate it.
struct Ticker {
  sim::Kernel* k;
  int* fires;
  int remaining;
  void operator()() {
    ++*fires;
    if (remaining > 0) k->schedule(10, Ticker{k, fires, remaining - 1});
  }
};

TEST(KernelClosure, SelfRescheduleFromInsideFiringEvent) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(true);
  sim::Kernel k;
  int fires = 0;
  k.schedule(0, Ticker{&k, &fires, 4});
  k.run();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(k.now(), 40);
  EXPECT_EQ(k.stats().closure_heap_fallbacks, 0u);
}

TEST(KernelClosure, CancelledHeapFallbackEventNeverRunsAndFrees) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(true);
  sim::Kernel k;
  int fired = 0;
  Blob<sim::kEventInlineBytes + 32> big{};
  const sim::EventId id = k.schedule(5, [&fired, big]() { ++fired; (void)big; });
  EXPECT_EQ(k.stats().closure_heap_fallbacks, 1u);
  EXPECT_TRUE(k.cancel(id));
  EXPECT_FALSE(k.cancel(id));  // second cancel is a no-op
  k.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(k.stats().cancelled, 1u);
  // ASan's leak check (run_sanitized.sh) verifies the heap closure was
  // freed when the cancelled entry was skimmed off the heap.
}

TEST(KernelClosure, StaleIdAfterDispatchDoesNotCancelReusedSlot) {
  PoolingGuard guard;
  common::set_memory_pooling_enabled(true);
  sim::Kernel k;
  int first = 0, second = 0;
  const sim::EventId id = k.schedule(1, [&first]() { ++first; });
  k.step();  // dispatches the first event; its slot is retired
  // The next schedule reuses the slot with a bumped generation; the stale id
  // must not cancel it.
  k.schedule(1, [&second]() { ++second; });
  EXPECT_FALSE(k.cancel(id));
  k.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace magma
