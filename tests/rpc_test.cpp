// RPC layer: wire format round-trips, call semantics, deadlines, retries.
#include <gtest/gtest.h>

#include "net/channel.h"
#include "rpc/rpc.h"
#include "rpc/wire.h"

namespace magma::rpc {
namespace {

// --- Wire format -------------------------------------------------------------

TEST(Wire, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.str("magma");
  w.bytes(common::from_hex("00ff10"));

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "magma");
  EXPECT_EQ(r.bytes(), common::from_hex("00ff10"));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, TruncatedReadLatchesError) {
  Writer w;
  w.u32(7);
  Reader r(w.data());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // past the end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // stays failed
}

TEST(Wire, OversizedLengthPrefixFails) {
  Writer w;
  w.u32(1000000);  // claims a 1 MB string that is not there
  Reader r(w.data());
  EXPECT_TRUE(r.str().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Wire, EmptyStringAndBytes) {
  Writer w;
  w.str("");
  w.bytes({});
  Reader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.ok());
}

// --- RpcNode -----------------------------------------------------------------

struct RpcHarness {
  sim::Kernel kernel;
  sim::Rng rng{7};
  net::DuplexLink path{kernel, rng, sim::lan_link()};
  net::ReliablePair channels = net::make_reliable_pair(kernel, path);
  RpcNode server{kernel, *channels.a, "server"};
  RpcNode client{kernel, *channels.b, "client"};
};

TEST(RpcNode, UnaryCallRoundTrip) {
  RpcHarness h;
  h.server.register_method("echo", "Echo",
                           [](const Bytes& request, Respond respond) {
                             respond(request);
                           });
  std::string reply;
  h.client.call("echo", "Echo", common::to_bytes("ping"), sim::kSecond,
                [&](Result<Bytes> result) {
                  ASSERT_TRUE(result.ok());
                  reply = common::to_string(result.value());
                });
  h.kernel.run();
  EXPECT_EQ(reply, "ping");
  EXPECT_EQ(h.client.stats().calls_ok, 1u);
  EXPECT_EQ(h.server.stats().calls_served, 1u);
}

TEST(RpcNode, UnknownMethodReturnsNotFound) {
  RpcHarness h;
  ErrorCode code = ErrorCode::kOk;
  h.client.call("nope", "Nothing", {}, sim::kSecond,
                [&](Result<Bytes> result) { code = result.code(); });
  h.kernel.run();
  EXPECT_EQ(code, ErrorCode::kNotFound);
}

TEST(RpcNode, HandlerErrorPropagates) {
  RpcHarness h;
  h.server.register_method("svc", "Fail",
                           [](const Bytes&, Respond respond) {
                             respond(Error{ErrorCode::kPermissionDenied,
                                           "not allowed"});
                           });
  Error received;
  h.client.call("svc", "Fail", {}, sim::kSecond, [&](Result<Bytes> result) {
    ASSERT_FALSE(result.ok());
    received = result.error();
  });
  h.kernel.run();
  EXPECT_EQ(received.code, ErrorCode::kPermissionDenied);
  EXPECT_EQ(received.message, "not allowed");
}

TEST(RpcNode, DeadlineExceededOnSilentServer) {
  RpcHarness h;
  h.server.register_method("svc", "Never",
                           [](const Bytes&, Respond) { /* no respond */ });
  ErrorCode code = ErrorCode::kOk;
  h.client.call("svc", "Never", {}, 2 * sim::kSecond,
                [&](Result<Bytes> result) { code = result.code(); });
  h.kernel.run();
  EXPECT_EQ(code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(h.client.stats().calls_timed_out, 1u);
}

TEST(RpcNode, DelayedResponseWithinDeadline) {
  RpcHarness h;
  h.server.register_method(
      "svc", "Slow", [&h](const Bytes&, Respond respond) {
        h.kernel.schedule(500 * sim::kMillisecond,
                          [respond]() { respond(Bytes{}); });
      });
  bool ok = false;
  h.client.call("svc", "Slow", {}, 2 * sim::kSecond,
                [&](Result<Bytes> result) { ok = result.ok(); });
  h.kernel.run();
  EXPECT_TRUE(ok);
}

TEST(RpcNode, SymmetricCalls) {
  RpcHarness h;
  h.server.register_method("a", "M", [](const Bytes&, Respond respond) {
    respond(common::to_bytes("from-server"));
  });
  h.client.register_method("b", "M", [](const Bytes&, Respond respond) {
    respond(common::to_bytes("from-client"));
  });
  std::string r1, r2;
  h.client.call("a", "M", {}, sim::kSecond, [&](Result<Bytes> result) {
    r1 = common::to_string(result.value());
  });
  h.server.call("b", "M", {}, sim::kSecond, [&](Result<Bytes> result) {
    r2 = common::to_string(result.value());
  });
  h.kernel.run();
  EXPECT_EQ(r1, "from-server");
  EXPECT_EQ(r2, "from-client");
}

TEST(RpcNode, ManyConcurrentCallsMatchById) {
  RpcHarness h;
  h.server.register_method("svc", "Echo",
                           [](const Bytes& request, Respond respond) {
                             respond(request);
                           });
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    h.client.call("svc", "Echo", common::to_bytes(std::to_string(i)),
                  sim::kSecond, [&correct, i](Result<Bytes> result) {
                    if (result.ok() &&
                        common::to_string(result.value()) ==
                            std::to_string(i)) {
                      ++correct;
                    }
                  });
  }
  h.kernel.run();
  EXPECT_EQ(correct, 100);
}

TEST(RpcNode, RetriesSurviveTransientOutage) {
  RpcHarness h;
  h.server.register_method("svc", "Get", [](const Bytes&, Respond respond) {
    respond(common::to_bytes("data"));
  });
  // Take the link down; bring it back after 5 s.
  h.path.forward.set_up(false);
  h.path.reverse.set_up(false);
  h.kernel.schedule(5 * sim::kSecond, [&h]() {
    h.path.forward.set_up(true);
    h.path.reverse.set_up(true);
  });

  bool ok = false;
  h.client.call_with_retries("svc", "Get", {}, 2 * sim::kSecond, 5,
                             sim::kSecond, [&](Result<Bytes> result) {
                               ok = result.ok();
                             });
  h.kernel.run();
  EXPECT_TRUE(ok);
}

TEST(RpcNode, TransportResetFailsCallsFastNotAtDeadline) {
  // A connection reset must surface as UNAVAILABLE the moment the transport
  // gives up — not as DEADLINE_EXCEEDED a minute later. The old transport
  // silently dropped the frame and left the call waiting out its deadline.
  sim::Kernel kernel;
  sim::Rng rng{7};
  net::DuplexLink path{kernel, rng, sim::lan_link()};
  net::ReliableConfig rel;
  rel.max_retries = 2;  // transport resets after 1+2+4 s of backoff
  net::ReliablePair channels = net::make_reliable_pair(kernel, path, rel);
  RpcNode server{kernel, *channels.a, "server"};
  RpcNode client{kernel, *channels.b, "client"};
  path.reverse.set_up(false);  // client→server direction is dead

  ErrorCode code = ErrorCode::kOk;
  sim::TimePoint failed_at = 0;
  client.call("svc", "Get", {}, 60 * sim::kSecond, [&](Result<Bytes> result) {
    code = result.code();
    failed_at = kernel.now();
  });
  kernel.run();

  EXPECT_EQ(code, ErrorCode::kUnavailable);
  EXPECT_LT(failed_at, 10 * sim::kSecond);  // ~7 s, far below the deadline
  EXPECT_EQ(client.stats().calls_send_failed, 1u);
  EXPECT_EQ(client.stats().calls_timed_out, 0u);
}

TEST(RpcNode, RetriesExhaustOnPermanentOutage) {
  RpcHarness h;
  h.path.forward.set_up(false);
  ErrorCode code = ErrorCode::kOk;
  h.client.call_with_retries("svc", "Get", {}, sim::kSecond, 3,
                             100 * sim::kMillisecond,
                             [&](Result<Bytes> result) {
                               code = result.code();
                             });
  h.kernel.run();
  EXPECT_EQ(code, ErrorCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace magma::rpc
