// Parameterized property sweeps across module boundaries:
//  * reliable transport delivers everything in order for any loss < 1
//  * desired-state reconciliation converges from any interleaving
//  * token buckets never exceed rate×time + burst for any pattern
//  * attach determinism: same seed ⇒ same outcome trace
//  * conservation: offered = forwarded + dropped everywhere in the AGW path
#include <gtest/gtest.h>

#include "agw/pipelined.h"
#include "core/network.h"
#include "core/workload.h"
#include "net/channel.h"

namespace magma {
namespace {

// --- Reliable transport under parameterized loss -----------------------------

class ReliableLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReliableLossSweep, AllMessagesInOrder) {
  const double loss = GetParam();
  sim::Kernel kernel;
  sim::Rng rng(static_cast<std::uint64_t>(loss * 1000) + 1);
  sim::LinkConfig config = sim::lan_link();
  config.loss_probability = loss;
  net::DuplexLink path(kernel, rng, config);
  net::ReliableConfig rel;
  rel.max_retries = 40;
  net::ReliablePair pair = net::make_reliable_pair(kernel, path, rel);

  std::vector<int> received;
  pair.b->set_receiver([&](common::Bytes m) {
    received.push_back(std::stoi(common::to_string(m)));
  });
  const int kMessages = 100;
  for (int i = 0; i < kMessages; ++i) {
    pair.a->send(common::to_bytes(std::to_string(i)));
  }
  kernel.run();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, ReliableLossSweep,
                         ::testing::Values(0.0, 0.05, 0.15, 0.3, 0.5));

// --- Transport conformance under randomized loss / reorder / reset ------------
//
// Chaos harness for the reliable endpoint: random i.i.d. loss, enough jitter
// to reorder segments on the wire, random outage windows long enough to
// force connection resets, and randomized send times. Invariants, per the
// channel.h contract:
//  * delivery is exactly-once and in sent order (an ordered subsequence of
//    what was sent — resets may punch holes, never reorder or duplicate);
//  * every sent message is accounted for: messages_sent == messages_acked +
//    failures at the sender, and each message is either delivered or handed
//    to the failure callback (delivered ∧ failed is possible only when the
//    ACK was lost across a reset);
//  * everything acked was delivered.

class ReliableChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReliableChaosSweep, ExactlyOnceInOrderAndFullyAccounted) {
  sim::Rng rng(GetParam());
  sim::Kernel kernel;
  sim::LinkConfig chaos = sim::lan_link();
  chaos.loss_probability = 0.05 + 0.3 * rng.uniform();
  chaos.latency = 2 * sim::kMillisecond;
  chaos.jitter = 5 * sim::kMillisecond;  // enough to reorder the wire
  sim::Rng link_rng = rng.fork();
  net::DuplexLink path(kernel, link_rng, chaos);

  net::ReliableConfig rel;
  rel.max_retries = static_cast<int>(2 + rng.uniform_int(4));
  // Congestion control + SACK + timestamps stay on (the defaults) so the
  // sweep exercises the full NewReno/SACK machinery; randomize the initial
  // window so slow start begins from different points.
  rel.initial_cwnd = 1 + rng.uniform_int(8);
  net::ReliablePair pair = net::make_reliable_pair(kernel, path, rel);

  std::vector<int> delivered;
  pair.b->set_receiver([&](common::Bytes m) {
    delivered.push_back(std::stoi(common::to_string(m)));
  });
  std::vector<int> failed;
  pair.a->set_send_failure_handler([&](common::Bytes m) {
    failed.push_back(std::stoi(common::to_string(m)));
  });

  // Random outage windows (forward direction, where the data flows).
  sim::TimePoint t = 0;
  for (int i = 0; i < 6; ++i) {
    t += static_cast<sim::Duration>(rng.uniform_int(4 * sim::kSecond));
    const sim::TimePoint down = t;
    t += static_cast<sim::Duration>(rng.uniform_int(8 * sim::kSecond));
    const sim::TimePoint up = t;
    kernel.schedule_at(down, [&path]() { path.forward.set_up(false); });
    kernel.schedule_at(up, [&path]() { path.forward.set_up(true); });
  }

  const int kMessages = 250;
  sim::TimePoint send_at = 0;
  for (int i = 0; i < kMessages; ++i) {
    send_at +=
        static_cast<sim::Duration>(rng.uniform_int(150 * sim::kMillisecond));
    kernel.schedule_at(send_at, [&pair, i]() {
      pair.a->send(common::to_bytes(std::to_string(i)));
    });
  }
  kernel.run();  // quiescence: nothing outstanding, no timers pending

  const net::ReliableStats& tx = pair.a->stats();
  const net::ReliableStats& rx = pair.b->stats();
  ASSERT_EQ(tx.messages_sent, static_cast<std::uint64_t>(kMessages));

  // Full accounting at the sender.
  EXPECT_EQ(tx.messages_sent, tx.messages_acked + tx.failures);
  EXPECT_EQ(failed.size(), static_cast<std::size_t>(tx.failures));
  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(rx.messages_delivered));
  EXPECT_GE(rx.messages_delivered, tx.messages_acked);

  // Exactly-once, in-order: strictly increasing message ids.
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    ASSERT_LT(delivered[i - 1], delivered[i]) << "at position " << i;
  }
  // Every message reached the application or the failure callback.
  std::vector<bool> seen(kMessages, false);
  for (int id : delivered) seen[static_cast<std::size_t>(id)] = true;
  for (int id : failed) seen[static_cast<std::size_t>(id)] = true;
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(i)]) << "message " << i
        << " vanished without delivery or failure";
  }

  // Congestion invariants: every send decision respected flight <= cwnd
  // (the channel counts violations so the check covers every decision, not
  // just the final state), and the window never collapsed below 1 MSS.
  EXPECT_EQ(tx.window_violations, 0u);
  EXPECT_GE(tx.min_cwnd, 1u);
  EXPECT_GE(tx.cwnd, 1u);
  EXPECT_LE(tx.cwnd, rel.max_cwnd);
  // Quiescent: nothing in flight once the kernel drained.
  EXPECT_EQ(tx.flight_size, 0u);
  EXPECT_EQ(rx.window_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliableChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Desired-state convergence from arbitrary interleavings --------------------

class DesiredStateSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesiredStateSweep, ConvergesFromRandomizedHistory) {
  sim::Rng rng(GetParam());
  agw::Pipelined pd;

  auto session = [](std::uint64_t cookie) {
    agw::SessionFlows f;
    f.cookie = cookie;
    f.ue_ip = common::Ipv4{0xAC100000u + static_cast<std::uint32_t>(cookie)};
    f.agw_teid_ul = common::Teid{static_cast<std::uint32_t>(cookie)};
    f.enb_teid_dl = common::Teid{static_cast<std::uint32_t>(cookie + 1000)};
    f.enb_address = common::Ipv4::from_octets(10, 100, 0, 1);
    return f;
  };

  // Random CRUD history to produce an arbitrary starting state.
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t cookie = 1 + rng.uniform_int(12);
    if (rng.bernoulli(0.5)) {
      pd.install_session(session(cookie), 0).ok();
    } else if (pd.has_session(cookie)) {
      pd.remove_session(cookie).ok();
    }
  }

  // One desired-state push must land exactly on the target set.
  std::vector<agw::SessionFlows> desired;
  std::vector<std::uint64_t> expected;
  for (std::uint64_t cookie = 1; cookie <= 12; ++cookie) {
    if (rng.bernoulli(0.6)) {
      desired.push_back(session(cookie));
      expected.push_back(cookie);
    }
  }
  pd.set_desired_sessions(desired, 0);
  EXPECT_EQ(pd.installed_cookies(), expected);
  // 6 flow entries per session (2 classify, 2 enforce, 2 egress), nothing
  // leaked.
  EXPECT_EQ(pd.pipeline().total_flow_entries(), expected.size() * 6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesiredStateSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- Token bucket conservation ---------------------------------------------------

class MeterSweep : public ::testing::TestWithParam<double> {};

TEST_P(MeterSweep, NeverExceedsRateTimesTimePlusBurst) {
  const double rate_bps = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(rate_bps));
  datapath::TokenBucket bucket(
      datapath::MeterConfig{rate_bps, 20000}, 0);

  std::uint64_t passed = 0;
  sim::TimePoint now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += static_cast<sim::Duration>(rng.uniform_int(4 * sim::kMillisecond));
    const std::uint64_t size = 64 + rng.uniform_int(1400);
    if (bucket.allow(size, now)) passed += size;
    // Invariant at every step, not just the end.
    const double bound =
        rate_bps / 8.0 * sim::to_seconds(now) + 20000 + 1500;
    ASSERT_LE(static_cast<double>(passed), bound) << "at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, MeterSweep,
                         ::testing::Values(64e3, 1e6, 10e6, 100e6));

// --- Determinism ------------------------------------------------------------------

std::vector<std::uint64_t> run_deterministic_scenario(std::uint64_t seed) {
  core::NetworkConfig config;
  config.seed = seed;
  core::Network net(config);
  agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
  ran::EnodeB& enb = net.add_enodeb(agw);
  net.run_for(2 * sim::kSecond);

  std::vector<ran::UeLte*> ues;
  std::vector<agw::SubscriberData> subs;
  for (int i = 0; i < 8; ++i) subs.push_back(net.provision_subscriber());
  net.sync_all_config();
  for (const auto& sub : subs) ues.push_back(&net.add_ue_lte(sub));
  core::AttachRamp ramp(net, ues, enb, 3.0);
  net.run_for(60 * sim::kSecond);

  std::vector<std::uint64_t> trace;
  trace.push_back(ramp.succeeded());
  trace.push_back(net.kernel().executed_events());
  trace.push_back(agw.accessd().stats().attach_completed[0]);
  for (ran::UeLte* ue : ues) {
    trace.push_back(ue->ip().has_value() ? ue->ip()->addr : 0);
  }
  return trace;
}

TEST(Determinism, SameSeedSameTrace) {
  EXPECT_EQ(run_deterministic_scenario(7), run_deterministic_scenario(7));
}

TEST(Determinism, DifferentSeedsDifferentKeyMaterial) {
  // The macro trace (attach counts, address order) can legitimately
  // coincide across seeds on loss-free links; the cryptographic material
  // must not.
  core::Network a(core::NetworkConfig{.seed = 7});
  core::Network b(core::NetworkConfig{.seed = 8});
  EXPECT_NE(a.provision_subscriber().k, b.provision_subscriber().k);
}

// --- Conservation through the AGW user plane ---------------------------------------

class ConservationSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConservationSweep, OfferedEqualsForwardedPlusDropped) {
  core::NetworkConfig config;
  config.seed = static_cast<std::uint64_t>(GetParam());
  core::Network net(config);
  agw::AccessGateway& agw = net.add_agw(agw::virtual_xeon(2));
  ran::EnodeB& enb = net.add_enodeb(agw);
  net.run_for(2 * sim::kSecond);

  const agw::SubscriberData sub = net.provision_subscriber();
  net.sync_all_config();
  ran::UeLte& ue = net.add_ue_lte(sub);
  bool ok = false;
  ue.attach(enb, [&](const ran::AttachOutcome& o) { ok = o.success; });
  net.run_for(20 * sim::kSecond);
  ASSERT_TRUE(ok);

  // Mixed valid/invalid downlink.
  for (int i = 0; i < 50; ++i) {
    net.inject_downlink(agw, *ue.ip(), 1000, 10);
    net.inject_downlink(agw, common::Ipv4::from_octets(172, 16, 0, 250),
                        1000, 10);
  }
  net.run_for(30 * sim::kSecond);

  const datapath::PipelineStats& stats = agw.pipelined().pipeline().stats();
  const std::uint64_t accounted =
      stats.forwarded_packets + stats.dropped_no_match +
      stats.dropped_by_policy + stats.dropped_by_meter;
  // Attach-era signalling doesn't ride the user plane; everything injected
  // plus uplink batches must be fully accounted.
  EXPECT_EQ(accounted, 50u * 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace magma
