// Enterprise private 5G: the deployment class the paper's conclusion says
// Magma fits next ("We believe that Magma is a good fit for other
// deployment scenarios, including enterprise 5G networks") and §2.1's
// observation that enterprises deploy private cellular for "industrial
// automation, medical applications" needing "better radio efficiency,
// authentication, and performance than WiFi".
//
// A factory network: two gNBs on one AGW, machine-vision cameras uploading
// continuously under a guaranteed-rate policy, AGVs (automated guided
// vehicles) on a low-volume policy, and the operator story — a lost/stolen
// device is deactivated at the orchestrator and refused on its next
// registration.
#include <cstdio>

#include "core/network.h"

using namespace magma;

int main() {
  std::printf("=== Enterprise private 5G (factory) ===\n\n");

  core::Network net;
  agw::AccessGateway& agw = net.add_agw(agw::virtual_xeon(8));
  ran::GnbConfig cell;
  cell.dl_capacity_bps = 400e6;
  cell.ul_capacity_bps = 400e6;  // UL-heavy industrial traffic
  ran::Gnb& gnb_a = net.add_gnb(agw, cell);
  ran::Gnb& gnb_b = net.add_gnb(agw, cell);
  net.run_for(2 * sim::kSecond);

  // Policies: cameras get 20 Mbps uplink; AGVs get 2 Mbps with a 100 MB
  // monthly cap (telemetry only — a chatty AGV is a misbehaving AGV).
  core::Policy camera = core::rate_limited_policy(5e6, 20e6);
  camera.name = "camera-uplink";
  net.add_policy(camera);
  core::Policy agv;
  agv.name = "agv-telemetry";
  agv.charging = core::ChargingMode::kCapped;
  agv.tiers = {core::PolicyTier{2'000'000, 2'000'000, 100ull << 20}};
  agv.interval_ns = 30 * 24 * sim::kHour;
  net.add_policy(agv);

  std::vector<agw::SubscriberData> cameras;
  for (int i = 0; i < 8; ++i) {
    cameras.push_back(net.provision_subscriber("camera-uplink"));
  }
  std::vector<agw::SubscriberData> agvs;
  for (int i = 0; i < 4; ++i) {
    agvs.push_back(net.provision_subscriber("agv-telemetry"));
  }
  net.sync_all_config();

  // Bring the fleet up: 5G registration + PDU session per device.
  int up = 0;
  std::vector<ran::UeNr*> devices;
  for (std::size_t i = 0; i < cameras.size(); ++i) {
    devices.push_back(&net.add_ue_nr(cameras[i]));
    devices.back()->attach(i % 2 == 0 ? gnb_a : gnb_b,
                           [&](const ran::AttachOutcome& o) { up += o.success; });
  }
  for (std::size_t i = 0; i < agvs.size(); ++i) {
    devices.push_back(&net.add_ue_nr(agvs[i]));
    devices.back()->attach(i % 2 == 0 ? gnb_a : gnb_b,
                           [&](const ran::AttachOutcome& o) { up += o.success; });
  }
  net.run_for(30 * sim::kSecond);
  std::printf("fleet up: %d/12 devices registered with PDU sessions "
              "(5G two-step bring-up)\n",
              up);
  std::printf("AMF-side: registrations=%llu, PDU sessions=%llu across 2 "
              "gNBs, one generic core\n",
              static_cast<unsigned long long>(
                  agw.nr().stats().registrations_accepted),
              static_cast<unsigned long long>(
                  agw.nr().stats().pdu_sessions_established));

  // One production minute: cameras stream uplink, AGVs trickle telemetry.
  const common::Ipv4 vision_server = common::Ipv4::from_octets(10, 50, 0, 10);
  // 100 ms ticks so the stream is smooth against the policy's token
  // bucket (a real camera paces its packets; one mega-burst per second
  // would be clipped to the bucket depth).
  for (int tick = 0; tick < 600; ++tick) {
    net.kernel().schedule(tick * 100 * sim::kMillisecond, [&]() {
      for (std::size_t i = 0; i < 8; ++i) {
        // ~17 Mbps per camera: 150 x 1400 B per 100 ms.
        devices[i]->send_uplink(vision_server, 5000, 1400, 150);
      }
      for (std::size_t i = 8; i < 12; ++i) {
        devices[i]->send_uplink(vision_server, 5001, 400, 1);
      }
    });
  }
  const std::uint64_t internet_before = net.internet_rx_bytes();
  net.run_for(65 * sim::kSecond);
  const double delivered_mbps =
      static_cast<double>(net.internet_rx_bytes() - internet_before) * 8 /
      60 / 1e6;
  std::printf("production minute: %.0f Mbps aggregate uplink delivered "
              "(8 cameras ~17 Mbps under a 20 Mbps UL policy + AGVs)\n",
              delivered_mbps);

  agw.sessiond().poll_usage();
  const agw::SessionRecord* cam = agw.sessiond().find(cameras[0].imsi);
  std::printf("camera[0] metered usage: %.1f MB, ul policy %llu bps\n",
              cam->used_bytes / 1e6,
              static_cast<unsigned long long>(cam->flows.ul_rate_bps));

  // Security incident: AGV #0 goes missing. The operator deactivates it at
  // the orchestrator; after the next config sync its credentials are dead.
  std::printf("\n-- AGV reported missing: deactivating at orchestrator --\n");
  agw::SubscriberData stolen = agvs[0];
  stolen.active = false;
  net.orchestrator().add_subscriber(stolen);
  net.sync_all_config();
  net.run_for(5 * sim::kSecond);

  ran::UeNr& thief = net.add_ue_nr(agvs[0]);  // correct keys, stolen device
  bool thief_in = true;
  thief.attach(gnb_a, [&](const ran::AttachOutcome& o) { thief_in = o.success; });
  net.run_for(20 * sim::kSecond);
  std::printf("stolen AGV re-registration: %s\n",
              thief_in ? "ACCEPTED (bad!)" : "refused (deactivated centrally)");

  const bool ok = up == 12 && delivered_mbps > 100 && !thief_in;
  std::printf("\nenterprise 5G example: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
