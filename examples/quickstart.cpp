// Quickstart: the minimal Magma deployment — one orchestrator, one AGW,
// one eNodeB, two subscribers (§3.2: "A minimal Magma deployment would be
// a single AGW and an orchestrator").
//
// Walks through the whole lifecycle: provision at the orchestrator, config
// sync to the AGW, LTE attach with real mutual authentication, user
// traffic through the programmable data plane, usage accounting, and
// detach.
#include <cstdio>

#include "core/network.h"

using namespace magma;

int main() {
  std::printf("=== Magma quickstart ===\n\n");

  // 1. Build the deployment: orchestrator (in the "cloud") + one AGW behind
  //    a fiber backhaul + one eNodeB at the site.
  core::Network net;
  agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
  ran::EnodeB& enb = net.add_enodeb(agw);
  net.run_for(2 * sim::kSecond);
  std::printf("deployment up: AGW '%s' + eNodeB '%s' (S1 %s)\n",
              agw.profile().name.c_str(), enb.config().name.c_str(),
              enb.s1_ready() ? "ready" : "down");

  // 2. Operator actions at the orchestrator: a rate-limit policy and two
  //    subscribers referencing it.
  core::Policy bronze = core::rate_limited_policy(5e6, 2e6);
  bronze.name = "bronze-5mbps";
  net.add_policy(bronze);
  const agw::SubscriberData alice = net.provision_subscriber("bronze-5mbps");
  const agw::SubscriberData bob = net.provision_subscriber("bronze-5mbps");
  net.sync_all_config();
  std::printf("provisioned %s and %s with policy '%s'; AGW config version "
              "%llu\n",
              alice.imsi.value.c_str(), bob.imsi.value.c_str(),
              bronze.name.c_str(),
              static_cast<unsigned long long>(agw.magmad().synced_version()));

  // 3. UEs attach: EPS-AKA mutual auth, NAS security, bearer setup, data
  //    plane programming — all local to the AGW.
  ran::UeLte& ue_alice = net.add_ue_lte(alice);
  ran::UeLte& ue_bob = net.add_ue_lte(bob);
  for (ran::UeLte* ue : {&ue_alice, &ue_bob}) {
    ue->attach(enb, [ue](const ran::AttachOutcome& outcome) {
      std::printf("  %s attach: %s (%.0f ms)\n", ue->usim().imsi().value.c_str(),
                  outcome.success ? "OK" : outcome.failure_reason.c_str(),
                  sim::to_seconds(outcome.latency) * 1000);
    });
  }
  net.run_for(20 * sim::kSecond);
  std::printf("active sessions on AGW: %zu; alice IP %s, bob IP %s\n",
              agw.sessiond().active_sessions(),
              ue_alice.ip()->to_string().c_str(),
              ue_bob.ip()->to_string().c_str());

  // 4. Traffic: downlink from the Internet, uplink from the UE, policed by
  //    the bronze policy's meters in the AGW datapath.
  net.inject_downlink(agw, *ue_alice.ip(), 1400, 200);
  ue_alice.send_uplink(common::Ipv4::from_octets(8, 8, 8, 8), 443, 1000, 50);
  net.run_for(5 * sim::kSecond);
  agw.sessiond().poll_usage();
  const agw::SessionRecord* session = agw.sessiond().find(alice.imsi);
  std::printf("alice: rx %llu bytes, tx %llu bytes; metered usage %llu "
              "bytes; dl limit %llu bps\n",
              static_cast<unsigned long long>(ue_alice.traffic().rx_bytes),
              static_cast<unsigned long long>(ue_alice.traffic().tx_bytes),
              static_cast<unsigned long long>(session->used_bytes),
              static_cast<unsigned long long>(session->flows.dl_rate_bps));

  // 5. Telemetry made it to the orchestrator (device management, §3.1).
  net.run_for(30 * sim::kSecond);
  std::printf("orchestrator sees %zu gateways, %.0f active sessions, %zu "
              "metric samples\n",
              net.orchestrator().gateways().size(),
              net.orchestrator().metrics().sum_latest("active_sessions"),
              net.orchestrator().metrics().total_samples());

  // 6. Detach tears everything down.
  ue_alice.detach(false);
  ue_bob.detach(false);
  net.run_for(5 * sim::kSecond);
  std::printf("after detach: %zu sessions, %zu flow entries\n",
              agw.sessiond().active_sessions(),
              agw.pipelined().pipeline().total_flow_entries());

  std::printf("\nquickstart done.\n");
  return agw.sessiond().active_sessions() == 0 ? 0 : 1;
}
