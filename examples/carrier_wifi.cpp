// Carrier WiFi + LTE on one core: the AccessParks architecture (Figure 10)
// plus the paper's "single carrier [using] multiple radio technologies ...
// on a single core" claim (§2.2).
//
// Topology: one AGW serves (a) an LTE sector whose UEs are fixed-wireless
// backhaul modems for outdoor WiFi hotspots, and (b) carrier WiFi APs
// whose clients authenticate against the same subscriber database via
// RADIUS/CHAP. One subscriber even roams from WiFi onto LTE.
#include <cstdio>

#include "core/network.h"

using namespace magma;

int main() {
  std::printf("=== Carrier WiFi + LTE backhaul on a single Magma core ===\n\n");

  core::Network net;
  agw::AccessGateway& agw = net.add_agw(agw::virtual_xeon(4));
  ran::EnodeB& enb = net.add_enodeb(agw);
  ran::WifiApConfig ap_config;
  ap_config.name = "boardwalk-ap";
  ran::WifiAp& ap = net.add_wifi_ap(agw, ap_config);
  net.run_for(2 * sim::kSecond);

  // Backhaul modems get unrestricted access ("because the LTE network
  // simply serves as backhaul, all UEs simply have unrestricted access" —
  // §4.3.1); WiFi guests get a modest rate cap.
  core::Policy guest = core::rate_limited_policy(20e6, 5e6);
  guest.name = "wifi-guest";
  net.add_policy(guest);

  std::vector<agw::SubscriberData> modems;
  for (int i = 0; i < 4; ++i) {
    modems.push_back(net.provision_subscriber("unlimited"));
  }
  std::vector<agw::SubscriberData> guests;
  for (int i = 0; i < 6; ++i) {
    guests.push_back(
        net.provision_subscriber("wifi-guest", "guestpass" + std::to_string(i)));
  }
  net.sync_all_config();

  // LTE leg: backhaul modems attach.
  int modems_up = 0;
  std::vector<ran::UeLte*> modem_ues;
  for (const auto& modem : modems) {
    modem_ues.push_back(&net.add_ue_lte(modem));
    modem_ues.back()->attach(
        enb, [&](const ran::AttachOutcome& o) { modems_up += o.success; });
  }
  net.run_for(20 * sim::kSecond);
  std::printf("LTE backhaul: %d/%zu fixed-wireless modems attached "
              "(unlimited policy)\n",
              modems_up, modems.size());

  // WiFi leg: guests associate via CHAP against the same subscriberdb.
  int guests_up = 0;
  std::vector<ran::WifiClient*> clients;
  for (std::size_t i = 0; i < guests.size(); ++i) {
    clients.push_back(
        &net.add_wifi_client(guests[i], "guestpass" + std::to_string(i)));
    clients.back()->connect(
        ap, [&](const ran::AttachOutcome& o) { guests_up += o.success; });
  }
  net.run_for(10 * sim::kSecond);
  std::printf("carrier WiFi: %d/%zu guests associated via RADIUS/CHAP\n",
              guests_up, guests.size());

  // Traffic on both access types through the one datapath.
  for (ran::UeLte* modem : modem_ues) {
    if (modem->ip()) net.inject_downlink(agw, *modem->ip(), 1400, 300);
  }
  for (ran::WifiClient* client : clients) {
    if (client->ip()) net.inject_downlink(agw, *client->ip(), 1400, 100);
  }
  net.run_for(5 * sim::kSecond);
  agw.sessiond().poll_usage();

  std::printf("\none core, two access types (Table 1 in action):\n");
  std::printf("  sessions: %zu total (%d LTE + %d WiFi), one sessiond\n",
              agw.sessiond().active_sessions(), modems_up, guests_up);
  std::printf("  datapath: %zu flow entries, %llu packets forwarded, "
              "tunneled and untunneled side by side\n",
              agw.pipelined().pipeline().total_flow_entries(),
              static_cast<unsigned long long>(
                  agw.pipelined().pipeline().stats().forwarded_packets));
  std::printf("  auth: %llu vectors from one subscriber database "
              "(AKA for LTE, CHAP for WiFi)\n",
              static_cast<unsigned long long>(
                  agw.subscriberdb().stats().vectors_generated));

  // A guest's tablet has an eSIM: the same subscriber record moves to LTE.
  std::printf("\nroaming the same subscriber from WiFi to LTE...\n");
  clients[0]->disconnect();
  net.run_for(3 * sim::kSecond);
  ran::UeLte& tablet = net.add_ue_lte(guests[0]);
  bool roamed = false;
  tablet.attach(enb, [&](const ran::AttachOutcome& o) { roamed = o.success; });
  net.run_for(20 * sim::kSecond);
  const agw::SessionRecord* session = agw.sessiond().find(guests[0].imsi);
  std::printf("  %s now on LTE: %s; same policy '%s' enforced (dl %llu bps)\n",
              guests[0].imsi.value.c_str(), roamed ? "OK" : "FAILED",
              session != nullptr ? session->policy.name.c_str() : "?",
              session != nullptr
                  ? static_cast<unsigned long long>(session->flows.dl_rate_bps)
                  : 0);

  return (modems_up == 4 && guests_up == 6 && roamed) ? 0 : 1;
}
