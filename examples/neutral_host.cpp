// Neutral host / franchised MNO extension: the FreedomFi deployment of
// §4.3.2, built on the federation machinery of §3.6.
//
// Micro-operators deploy AGWs + radios; subscribers belong to a partner
// MNO. The Federation Gateway (FeG) terminates the MNO-facing protocols:
//  * local breakout: subscriber data fetched from the MNO's HSS, enforced
//    at the AGW, user traffic breaking out locally;
//  * home routing: user traffic tunneled through the GTP Aggregator
//    (GTP-A) to the MNO's P-GW, which also allocates the UE address.
#include <cstdio>

#include "core/network.h"
#include "feg/feg.h"

using namespace magma;

int main() {
  std::printf("=== Neutral host: micro-operator AGWs + partner MNO core ===\n\n");

  core::Network net;
  agw::AccessGateway& agw = net.add_agw(agw::virtual_xeon(4));
  ran::EnodeB& enb = net.add_enodeb(agw);
  net.run_for(2 * sim::kSecond);

  // The partner MNO: HSS with *their* subscribers + P-GW. The FeG and
  // GTP-A sit at the single point of interconnection.
  feg::MnoCore mno(net.kernel(), common::Ipv4::from_octets(10, 250, 0, 1));
  feg::GtpAggregator gtpa(common::Ipv4::from_octets(10, 200, 0, 1));
  sim::Rng feg_rng(1234);
  net::DuplexLink gtpc_link(net.kernel(), feg_rng, sim::fiber_backhaul());
  net::ChannelPair gtpc_channels =
      net::make_datagram_pair(net.kernel(), gtpc_link);
  feg::FederationGateway fed(net.kernel(), mno, gtpa, *gtpc_channels.a);
  mno.serve_gtpc(*gtpc_channels.b);
  fed.bind(net.orc8r_node_for(agw));  // FeG rides the orchestrator node
  gtpa.set_pgw_sink(
      [&mno](datapath::PacketBatch batch) { mno.ingress_from_gtpa(std::move(batch)); });
  mno.set_gtpa_sink(
      [&gtpa](datapath::PacketBatch batch) { gtpa.ingress_from_pgw(std::move(batch)); });

  // MNO subscribers (never provisioned at the Magma orchestrator).
  std::vector<agw::SubscriberData> roamers;
  for (int i = 0; i < 3; ++i) {
    agw::SubscriberData sub;
    sub.imsi = common::Imsi::from_digits(3100260000000ULL +
                                         static_cast<std::uint64_t>(i));
    sub.k[0] = static_cast<std::uint8_t>(40 + i);
    sub.opc[0] = static_cast<std::uint8_t>(80 + i);
    sub.policy_name = "unlimited";
    mno.hss().upsert(sub);
    roamers.push_back(sub);
  }

  // --- Local breakout roaming ------------------------------------------------
  // The AGW pulls the MNO's subscriber profiles through the FeG and
  // enforces policy locally; user traffic exits at the site.
  std::printf("-- local breakout roaming --\n");
  // §3.6: "an AGW can obtain the policy to apply to a UE by querying the
  // subscriber data base in the federated network, then enforce that policy
  // in the AGW." The FeG serves the MNO's subscriber set; the AGW installs
  // it into its local cache (FreedomFi's "customized AGW" integration).
  const common::Bytes hss_image = mno.hss().snapshot();
  const bool hss_synced = agw.subscriberdb().restore(hss_image).ok();
  std::printf("  MNO HSS -> AGW subscriber cache: %s (%zu roamers)\n",
              hss_synced ? "synced" : "FAILED", agw.subscriberdb().size());

  ran::UeLte& breakout_ue = net.add_ue_lte(roamers[0]);
  bool breakout_ok = false;
  breakout_ue.attach(
      enb, [&](const ran::AttachOutcome& o) { breakout_ok = o.success; });
  net.run_for(20 * sim::kSecond);
  net.inject_downlink(agw, *breakout_ue.ip(), 1400, 50);
  net.run_for(2 * sim::kSecond);
  std::printf("  roamer %s: attach %s, IP %s (Magma pool), traffic breaks "
              "out locally (rx %llu bytes)\n\n",
              roamers[0].imsi.value.c_str(), breakout_ok ? "OK" : "FAILED",
              breakout_ue.ip()->to_string().c_str(),
              static_cast<unsigned long long>(
                  breakout_ue.traffic().rx_bytes));

  // --- Home routing ------------------------------------------------------------
  // Control: FeG creates the session at the MNO P-GW (GTP-C); user plane:
  // AGW <-> GTP-A <-> P-GW tunnels; UE address comes from the MNO.
  std::printf("-- home roaming (user plane anchored at the MNO) --\n");
  agw.accessd().set_federation(
      [&](const common::Imsi& imsi, common::Teid local_teid,
          std::function<void(common::Result<agw::Accessd::FederatedSession>)>
              done) {
        fed.create_session(
            imsi, local_teid,
            [&agw](datapath::PacketBatch batch) {
              agw.ingress_from_internet(std::move(batch));
            },
            std::move(done));
      });
  net.set_sgi_gtp_sink([&gtpa](datapath::PacketBatch batch) {
    gtpa.ingress_from_agw(std::move(batch));
  });

  ran::UeLte& home_ue = net.add_ue_lte(roamers[1]);
  bool home_ok = false;
  home_ue.attach(enb, [&](const ran::AttachOutcome& o) { home_ok = o.success; });
  net.run_for(20 * sim::kSecond);
  std::printf("  roamer %s: attach %s, IP %s (MNO 100.64/10 pool!)\n",
              roamers[1].imsi.value.c_str(), home_ok ? "OK" : "FAILED",
              home_ue.ip()->to_string().c_str());

  // Uplink: UE -> AGW -> GTP-A -> P-GW ("Internet" behind the MNO).
  home_ue.send_uplink(common::Ipv4::from_octets(8, 8, 8, 8), 443, 1000, 40);
  net.run_for(2 * sim::kSecond);
  // Downlink: MNO-side Internet -> P-GW -> GTP-A -> AGW -> eNodeB -> UE.
  mno.inject_downlink(*home_ue.ip(), 1400, 60);
  net.run_for(2 * sim::kSecond);

  const feg::MnoSession* mno_session = mno.session_by_ip(*home_ue.ip());
  std::printf("  user plane via GTP-A: ul %llu bytes, dl %llu bytes; P-GW "
              "session sees ul %llu / dl %llu; UE received %llu bytes\n",
              static_cast<unsigned long long>(gtpa.stats().ul_bytes),
              static_cast<unsigned long long>(gtpa.stats().dl_bytes),
              static_cast<unsigned long long>(
                  mno_session != nullptr ? mno_session->ul_bytes : 0),
              static_cast<unsigned long long>(
                  mno_session != nullptr ? mno_session->dl_bytes : 0),
              static_cast<unsigned long long>(home_ue.traffic().rx_bytes));

  std::printf("\n  FeG stats: sessions created %llu, failures %llu; GTP-A "
              "is the single interconnection point the MNO wants (§3.6)\n",
              static_cast<unsigned long long>(fed.stats().sessions_created),
              static_cast<unsigned long long>(fed.stats().session_failures));

  const bool ok = breakout_ok && home_ok && gtpa.stats().ul_bytes > 0 &&
                  home_ue.traffic().rx_bytes > 0;
  std::printf("\nneutral host example: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
