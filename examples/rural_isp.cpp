// Rural ISP: the paper's Figure 2 deployment — a small ISP's first
// cellular site in Peru: one LTE eNodeB, a ruggedized AGW at the tower,
// solar power, and a *satellite* backhaul to the orchestrator.
//
// Demonstrates the properties that make Magma viable there:
//  * config sync over a 300 ms / 2% loss link (gRPC-style transport);
//  * tiered policies for sustainable economics ("X Mbps until Y GB, then
//    Z Mbps" — §2.1);
//  * headless operation through a multi-hour backhaul outage (§3.2);
//  * the UEs never notice any of it (GTP terminates at the tower, §3.1).
#include <cstdio>

#include "core/network.h"
#include "core/workload.h"

using namespace magma;

int main() {
  std::printf("=== Rural ISP on satellite backhaul (the Figure-2 site) ===\n\n");

  core::NetworkConfig config;
  config.backhaul = sim::satellite_backhaul();
  core::Network net(config);
  agw::AccessGateway& agw = net.add_agw(agw::bare_metal_j3160());
  ran::EnodebConfig sector;
  sector.name = "peru-site-1";
  sector.dl_capacity_bps = 126e6;
  ran::EnodeB& enb = net.add_enodeb(agw, sector);
  net.run_for(5 * sim::kSecond);
  std::printf("site up; backhaul: satellite (300 ms one-way, 2%% loss, "
              "20 Mbps)\n");

  // The village plan: 10 Mbps until 2 GB/day, then 1 Mbps.
  core::Policy village = core::tiered_policy(10e6, 2ull << 30, 1e6);
  village.name = "village-fair-use";
  village.interval_ns = 24 * sim::kHour;
  net.add_policy(village);

  std::vector<agw::SubscriberData> homes;
  for (int i = 0; i < 25; ++i) {
    homes.push_back(net.provision_subscriber("village-fair-use"));
  }
  net.sync_all_config();
  net.run_for(20 * sim::kSecond);  // satellite RTTs: sync takes a moment
  std::printf("%zu homes provisioned; AGW cache synced at version %llu\n",
              homes.size(),
              static_cast<unsigned long long>(agw.magmad().synced_version()));

  // Evening: homes come online.
  std::vector<ran::UeLte*> ues;
  for (const auto& home : homes) ues.push_back(&net.add_ue_lte(home));
  core::AttachRamp ramp(net, ues, enb, 1.0);
  net.run_for(sim::from_seconds(25 + 30));
  std::printf("attached %zu/%zu homes (all auth run locally at the tower)\n",
              ramp.succeeded(), homes.size());

  // Streaming hour: every home pulls 3 Mbps.
  std::vector<std::unique_ptr<core::DownlinkFlow>> flows;
  for (ran::UeLte* ue : ues) {
    if (!ue->ip().has_value()) continue;
    flows.push_back(std::make_unique<core::DownlinkFlow>(
        net, agw, *ue->ip(), 3e6, 250 * sim::kMillisecond));
    flows.back()->start();
  }
  net.run_for(60 * sim::kSecond);
  std::uint64_t delivered = 0;
  for (const ran::UeLte* ue : ues) delivered += ue->traffic().rx_bytes;
  std::printf("streaming minute: delivered %.1f MB across the village "
              "(offered 75 Mbps < 126 Mbps sector)\n",
              delivered / 1e6);

  // A storm takes the satellite dish out for an hour. Nobody loses
  // service; new homes can even attach (cached profiles). Only operator
  // config changes stall.
  std::printf("\n-- satellite outage (60 min) --\n");
  net.set_backhaul_up(agw, false);
  const agw::SubscriberData late_home =
      net.provision_subscriber("village-fair-use");  // stuck at orchestrator
  net.run_for(30 * sim::kMinute);

  ran::UeLte& cached_ue = net.add_ue_lte(homes[0]);  // phone rebooted
  bool cached_ok = false;
  cached_ue.attach(enb,
                   [&](const ran::AttachOutcome& o) { cached_ok = o.success; });
  net.run_for(30 * sim::kSecond);
  std::printf("reboot during outage, cached subscriber: attach %s\n",
              cached_ok ? "OK (headless operation)" : "FAILED");

  ran::UeLte& new_ue = net.add_ue_lte(late_home);
  bool new_ok = true;
  new_ue.attach(enb, [&](const ran::AttachOutcome& o) { new_ok = o.success; });
  net.run_for(30 * sim::kSecond);
  std::printf("subscriber added during outage: attach %s (config cannot "
              "reach the site yet)\n",
              new_ok ? "OK (unexpected!)" : "refused, as expected");

  net.run_for(29 * sim::kMinute);
  net.set_backhaul_up(agw, true);
  std::printf("\n-- backhaul restored; magmad resyncs --\n");
  net.run_for(3 * sim::kMinute);
  bool late_ok = false;
  ran::UeLte& late_retry = net.add_ue_lte(late_home);
  late_retry.attach(enb,
                    [&](const ran::AttachOutcome& o) { late_ok = o.success; });
  net.run_for(30 * sim::kSecond);
  std::printf("same subscriber retries after resync: attach %s\n",
              late_ok ? "OK" : "FAILED");

  std::printf("\nsite summary: %zu sessions, config version %llu, "
              "checkpoints shipped %llu, metric reports lost to the "
              "satellite %llu (best-effort, as designed)\n",
              agw.sessiond().active_sessions(),
              static_cast<unsigned long long>(agw.magmad().synced_version()),
              static_cast<unsigned long long>(
                  agw.magmad().stats().checkpoints_shipped),
              static_cast<unsigned long long>(
                  agw.magmad().stats().metric_reports_lost));
  return (cached_ok && !new_ok && late_ok) ? 0 : 1;
}
