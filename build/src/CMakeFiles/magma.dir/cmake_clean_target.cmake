file(REMOVE_RECURSE
  "libmagma.a"
)
