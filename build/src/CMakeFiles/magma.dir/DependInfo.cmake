
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agw/accessd.cpp" "src/CMakeFiles/magma.dir/agw/accessd.cpp.o" "gcc" "src/CMakeFiles/magma.dir/agw/accessd.cpp.o.d"
  "/root/repo/src/agw/agw.cpp" "src/CMakeFiles/magma.dir/agw/agw.cpp.o" "gcc" "src/CMakeFiles/magma.dir/agw/agw.cpp.o.d"
  "/root/repo/src/agw/lte_frontend.cpp" "src/CMakeFiles/magma.dir/agw/lte_frontend.cpp.o" "gcc" "src/CMakeFiles/magma.dir/agw/lte_frontend.cpp.o.d"
  "/root/repo/src/agw/magmad.cpp" "src/CMakeFiles/magma.dir/agw/magmad.cpp.o" "gcc" "src/CMakeFiles/magma.dir/agw/magmad.cpp.o.d"
  "/root/repo/src/agw/mobilityd.cpp" "src/CMakeFiles/magma.dir/agw/mobilityd.cpp.o" "gcc" "src/CMakeFiles/magma.dir/agw/mobilityd.cpp.o.d"
  "/root/repo/src/agw/nr_frontend.cpp" "src/CMakeFiles/magma.dir/agw/nr_frontend.cpp.o" "gcc" "src/CMakeFiles/magma.dir/agw/nr_frontend.cpp.o.d"
  "/root/repo/src/agw/pipelined.cpp" "src/CMakeFiles/magma.dir/agw/pipelined.cpp.o" "gcc" "src/CMakeFiles/magma.dir/agw/pipelined.cpp.o.d"
  "/root/repo/src/agw/sessiond.cpp" "src/CMakeFiles/magma.dir/agw/sessiond.cpp.o" "gcc" "src/CMakeFiles/magma.dir/agw/sessiond.cpp.o.d"
  "/root/repo/src/agw/subscriberdb.cpp" "src/CMakeFiles/magma.dir/agw/subscriberdb.cpp.o" "gcc" "src/CMakeFiles/magma.dir/agw/subscriberdb.cpp.o.d"
  "/root/repo/src/agw/wifi_frontend.cpp" "src/CMakeFiles/magma.dir/agw/wifi_frontend.cpp.o" "gcc" "src/CMakeFiles/magma.dir/agw/wifi_frontend.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/magma.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/magma.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/magma.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/magma.dir/common/log.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/CMakeFiles/magma.dir/core/network.cpp.o" "gcc" "src/CMakeFiles/magma.dir/core/network.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/magma.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/magma.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/CMakeFiles/magma.dir/core/workload.cpp.o" "gcc" "src/CMakeFiles/magma.dir/core/workload.cpp.o.d"
  "/root/repo/src/cost/cost_model.cpp" "src/CMakeFiles/magma.dir/cost/cost_model.cpp.o" "gcc" "src/CMakeFiles/magma.dir/cost/cost_model.cpp.o.d"
  "/root/repo/src/crypto/aes128.cpp" "src/CMakeFiles/magma.dir/crypto/aes128.cpp.o" "gcc" "src/CMakeFiles/magma.dir/crypto/aes128.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/magma.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/magma.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/kdf.cpp" "src/CMakeFiles/magma.dir/crypto/kdf.cpp.o" "gcc" "src/CMakeFiles/magma.dir/crypto/kdf.cpp.o.d"
  "/root/repo/src/crypto/milenage.cpp" "src/CMakeFiles/magma.dir/crypto/milenage.cpp.o" "gcc" "src/CMakeFiles/magma.dir/crypto/milenage.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/magma.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/magma.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/datapath/flow_table.cpp" "src/CMakeFiles/magma.dir/datapath/flow_table.cpp.o" "gcc" "src/CMakeFiles/magma.dir/datapath/flow_table.cpp.o.d"
  "/root/repo/src/datapath/gtpu.cpp" "src/CMakeFiles/magma.dir/datapath/gtpu.cpp.o" "gcc" "src/CMakeFiles/magma.dir/datapath/gtpu.cpp.o.d"
  "/root/repo/src/datapath/meter.cpp" "src/CMakeFiles/magma.dir/datapath/meter.cpp.o" "gcc" "src/CMakeFiles/magma.dir/datapath/meter.cpp.o.d"
  "/root/repo/src/datapath/packet.cpp" "src/CMakeFiles/magma.dir/datapath/packet.cpp.o" "gcc" "src/CMakeFiles/magma.dir/datapath/packet.cpp.o.d"
  "/root/repo/src/datapath/pipeline.cpp" "src/CMakeFiles/magma.dir/datapath/pipeline.cpp.o" "gcc" "src/CMakeFiles/magma.dir/datapath/pipeline.cpp.o.d"
  "/root/repo/src/feg/feg.cpp" "src/CMakeFiles/magma.dir/feg/feg.cpp.o" "gcc" "src/CMakeFiles/magma.dir/feg/feg.cpp.o.d"
  "/root/repo/src/feg/gtp_aggregator.cpp" "src/CMakeFiles/magma.dir/feg/gtp_aggregator.cpp.o" "gcc" "src/CMakeFiles/magma.dir/feg/gtp_aggregator.cpp.o.d"
  "/root/repo/src/net/channel.cpp" "src/CMakeFiles/magma.dir/net/channel.cpp.o" "gcc" "src/CMakeFiles/magma.dir/net/channel.cpp.o.d"
  "/root/repo/src/ocs/ocs.cpp" "src/CMakeFiles/magma.dir/ocs/ocs.cpp.o" "gcc" "src/CMakeFiles/magma.dir/ocs/ocs.cpp.o.d"
  "/root/repo/src/orc8r/metricsd.cpp" "src/CMakeFiles/magma.dir/orc8r/metricsd.cpp.o" "gcc" "src/CMakeFiles/magma.dir/orc8r/metricsd.cpp.o.d"
  "/root/repo/src/orc8r/orchestrator.cpp" "src/CMakeFiles/magma.dir/orc8r/orchestrator.cpp.o" "gcc" "src/CMakeFiles/magma.dir/orc8r/orchestrator.cpp.o.d"
  "/root/repo/src/orc8r/streamer.cpp" "src/CMakeFiles/magma.dir/orc8r/streamer.cpp.o" "gcc" "src/CMakeFiles/magma.dir/orc8r/streamer.cpp.o.d"
  "/root/repo/src/proto/lte/emm_fsm.cpp" "src/CMakeFiles/magma.dir/proto/lte/emm_fsm.cpp.o" "gcc" "src/CMakeFiles/magma.dir/proto/lte/emm_fsm.cpp.o.d"
  "/root/repo/src/proto/lte/gtpc.cpp" "src/CMakeFiles/magma.dir/proto/lte/gtpc.cpp.o" "gcc" "src/CMakeFiles/magma.dir/proto/lte/gtpc.cpp.o.d"
  "/root/repo/src/proto/lte/nas.cpp" "src/CMakeFiles/magma.dir/proto/lte/nas.cpp.o" "gcc" "src/CMakeFiles/magma.dir/proto/lte/nas.cpp.o.d"
  "/root/repo/src/proto/lte/s1ap.cpp" "src/CMakeFiles/magma.dir/proto/lte/s1ap.cpp.o" "gcc" "src/CMakeFiles/magma.dir/proto/lte/s1ap.cpp.o.d"
  "/root/repo/src/proto/nr5g/nas5g.cpp" "src/CMakeFiles/magma.dir/proto/nr5g/nas5g.cpp.o" "gcc" "src/CMakeFiles/magma.dir/proto/nr5g/nas5g.cpp.o.d"
  "/root/repo/src/proto/nr5g/ngap.cpp" "src/CMakeFiles/magma.dir/proto/nr5g/ngap.cpp.o" "gcc" "src/CMakeFiles/magma.dir/proto/nr5g/ngap.cpp.o.d"
  "/root/repo/src/proto/wifi/radius.cpp" "src/CMakeFiles/magma.dir/proto/wifi/radius.cpp.o" "gcc" "src/CMakeFiles/magma.dir/proto/wifi/radius.cpp.o.d"
  "/root/repo/src/ran/enodeb.cpp" "src/CMakeFiles/magma.dir/ran/enodeb.cpp.o" "gcc" "src/CMakeFiles/magma.dir/ran/enodeb.cpp.o.d"
  "/root/repo/src/ran/gnb.cpp" "src/CMakeFiles/magma.dir/ran/gnb.cpp.o" "gcc" "src/CMakeFiles/magma.dir/ran/gnb.cpp.o.d"
  "/root/repo/src/ran/scenario.cpp" "src/CMakeFiles/magma.dir/ran/scenario.cpp.o" "gcc" "src/CMakeFiles/magma.dir/ran/scenario.cpp.o.d"
  "/root/repo/src/ran/ue.cpp" "src/CMakeFiles/magma.dir/ran/ue.cpp.o" "gcc" "src/CMakeFiles/magma.dir/ran/ue.cpp.o.d"
  "/root/repo/src/ran/wifi_ap.cpp" "src/CMakeFiles/magma.dir/ran/wifi_ap.cpp.o" "gcc" "src/CMakeFiles/magma.dir/ran/wifi_ap.cpp.o.d"
  "/root/repo/src/rpc/rpc.cpp" "src/CMakeFiles/magma.dir/rpc/rpc.cpp.o" "gcc" "src/CMakeFiles/magma.dir/rpc/rpc.cpp.o.d"
  "/root/repo/src/rpc/wire.cpp" "src/CMakeFiles/magma.dir/rpc/wire.cpp.o" "gcc" "src/CMakeFiles/magma.dir/rpc/wire.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/CMakeFiles/magma.dir/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/magma.dir/sim/cpu.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/CMakeFiles/magma.dir/sim/kernel.cpp.o" "gcc" "src/CMakeFiles/magma.dir/sim/kernel.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/CMakeFiles/magma.dir/sim/link.cpp.o" "gcc" "src/CMakeFiles/magma.dir/sim/link.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/magma.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/magma.dir/sim/random.cpp.o.d"
  "/root/repo/src/store/state_store.cpp" "src/CMakeFiles/magma.dir/store/state_store.cpp.o" "gcc" "src/CMakeFiles/magma.dir/store/state_store.cpp.o.d"
  "/root/repo/src/store/wal_store.cpp" "src/CMakeFiles/magma.dir/store/wal_store.cpp.o" "gcc" "src/CMakeFiles/magma.dir/store/wal_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
