# Empty dependencies file for magma.
# This may be replaced when dependencies are built.
