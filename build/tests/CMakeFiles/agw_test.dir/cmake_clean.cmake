file(REMOVE_RECURSE
  "CMakeFiles/agw_test.dir/agw_test.cpp.o"
  "CMakeFiles/agw_test.dir/agw_test.cpp.o.d"
  "agw_test"
  "agw_test.pdb"
  "agw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
