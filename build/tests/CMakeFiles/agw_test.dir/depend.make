# Empty dependencies file for agw_test.
# This may be replaced when dependencies are built.
