# Empty dependencies file for integration_attach_test.
# This may be replaced when dependencies are built.
