file(REMOVE_RECURSE
  "CMakeFiles/integration_attach_test.dir/integration_attach_test.cpp.o"
  "CMakeFiles/integration_attach_test.dir/integration_attach_test.cpp.o.d"
  "integration_attach_test"
  "integration_attach_test.pdb"
  "integration_attach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_attach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
