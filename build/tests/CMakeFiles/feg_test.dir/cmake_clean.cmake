file(REMOVE_RECURSE
  "CMakeFiles/feg_test.dir/feg_test.cpp.o"
  "CMakeFiles/feg_test.dir/feg_test.cpp.o.d"
  "feg_test"
  "feg_test.pdb"
  "feg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
