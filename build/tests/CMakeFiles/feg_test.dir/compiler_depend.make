# Empty compiler generated dependencies file for feg_test.
# This may be replaced when dependencies are built.
