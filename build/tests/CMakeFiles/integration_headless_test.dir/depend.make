# Empty dependencies file for integration_headless_test.
# This may be replaced when dependencies are built.
