file(REMOVE_RECURSE
  "CMakeFiles/integration_headless_test.dir/integration_headless_test.cpp.o"
  "CMakeFiles/integration_headless_test.dir/integration_headless_test.cpp.o.d"
  "integration_headless_test"
  "integration_headless_test.pdb"
  "integration_headless_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_headless_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
