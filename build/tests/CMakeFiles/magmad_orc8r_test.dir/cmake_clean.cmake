file(REMOVE_RECURSE
  "CMakeFiles/magmad_orc8r_test.dir/magmad_orc8r_test.cpp.o"
  "CMakeFiles/magmad_orc8r_test.dir/magmad_orc8r_test.cpp.o.d"
  "magmad_orc8r_test"
  "magmad_orc8r_test.pdb"
  "magmad_orc8r_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magmad_orc8r_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
