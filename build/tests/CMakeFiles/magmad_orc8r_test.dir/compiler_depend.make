# Empty compiler generated dependencies file for magmad_orc8r_test.
# This may be replaced when dependencies are built.
