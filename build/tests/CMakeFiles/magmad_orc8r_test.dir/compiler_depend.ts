# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for magmad_orc8r_test.
