# Empty dependencies file for integration_multirat_test.
# This may be replaced when dependencies are built.
