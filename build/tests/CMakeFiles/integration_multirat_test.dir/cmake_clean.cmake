file(REMOVE_RECURSE
  "CMakeFiles/integration_multirat_test.dir/integration_multirat_test.cpp.o"
  "CMakeFiles/integration_multirat_test.dir/integration_multirat_test.cpp.o.d"
  "integration_multirat_test"
  "integration_multirat_test.pdb"
  "integration_multirat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_multirat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
