# Empty dependencies file for integration_mobility_test.
# This may be replaced when dependencies are built.
