file(REMOVE_RECURSE
  "CMakeFiles/integration_mobility_test.dir/integration_mobility_test.cpp.o"
  "CMakeFiles/integration_mobility_test.dir/integration_mobility_test.cpp.o.d"
  "integration_mobility_test"
  "integration_mobility_test.pdb"
  "integration_mobility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_mobility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
