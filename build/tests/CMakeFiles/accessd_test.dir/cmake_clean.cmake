file(REMOVE_RECURSE
  "CMakeFiles/accessd_test.dir/accessd_test.cpp.o"
  "CMakeFiles/accessd_test.dir/accessd_test.cpp.o.d"
  "accessd_test"
  "accessd_test.pdb"
  "accessd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accessd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
