# Empty compiler generated dependencies file for accessd_test.
# This may be replaced when dependencies are built.
