# Empty compiler generated dependencies file for sessiond_test.
# This may be replaced when dependencies are built.
