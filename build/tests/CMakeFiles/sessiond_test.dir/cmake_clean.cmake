file(REMOVE_RECURSE
  "CMakeFiles/sessiond_test.dir/sessiond_test.cpp.o"
  "CMakeFiles/sessiond_test.dir/sessiond_test.cpp.o.d"
  "sessiond_test"
  "sessiond_test.pdb"
  "sessiond_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sessiond_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
