file(REMOVE_RECURSE
  "CMakeFiles/subscriberdb_test.dir/subscriberdb_test.cpp.o"
  "CMakeFiles/subscriberdb_test.dir/subscriberdb_test.cpp.o.d"
  "subscriberdb_test"
  "subscriberdb_test.pdb"
  "subscriberdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscriberdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
