# Empty dependencies file for subscriberdb_test.
# This may be replaced when dependencies are built.
