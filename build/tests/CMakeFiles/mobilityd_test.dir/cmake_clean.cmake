file(REMOVE_RECURSE
  "CMakeFiles/mobilityd_test.dir/mobilityd_test.cpp.o"
  "CMakeFiles/mobilityd_test.dir/mobilityd_test.cpp.o.d"
  "mobilityd_test"
  "mobilityd_test.pdb"
  "mobilityd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobilityd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
