# Empty dependencies file for mobilityd_test.
# This may be replaced when dependencies are built.
