# Empty compiler generated dependencies file for metricsd_test.
# This may be replaced when dependencies are built.
