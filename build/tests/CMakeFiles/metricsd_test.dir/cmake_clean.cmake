file(REMOVE_RECURSE
  "CMakeFiles/metricsd_test.dir/metricsd_test.cpp.o"
  "CMakeFiles/metricsd_test.dir/metricsd_test.cpp.o.d"
  "metricsd_test"
  "metricsd_test.pdb"
  "metricsd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metricsd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
