file(REMOVE_RECURSE
  "CMakeFiles/integration_policy_test.dir/integration_policy_test.cpp.o"
  "CMakeFiles/integration_policy_test.dir/integration_policy_test.cpp.o.d"
  "integration_policy_test"
  "integration_policy_test.pdb"
  "integration_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
