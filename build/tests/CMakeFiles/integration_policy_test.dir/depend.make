# Empty dependencies file for integration_policy_test.
# This may be replaced when dependencies are built.
