# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/sim_cpu_test[1]_include.cmake")
include("/root/repo/build/tests/sim_link_test[1]_include.cmake")
include("/root/repo/build/tests/net_channel_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/datapath_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/subscriberdb_test[1]_include.cmake")
include("/root/repo/build/tests/mobilityd_test[1]_include.cmake")
include("/root/repo/build/tests/pipelined_test[1]_include.cmake")
include("/root/repo/build/tests/sessiond_test[1]_include.cmake")
include("/root/repo/build/tests/accessd_test[1]_include.cmake")
include("/root/repo/build/tests/agw_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/magmad_orc8r_test[1]_include.cmake")
include("/root/repo/build/tests/metricsd_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/feg_test[1]_include.cmake")
include("/root/repo/build/tests/integration_attach_test[1]_include.cmake")
include("/root/repo/build/tests/integration_multirat_test[1]_include.cmake")
include("/root/repo/build/tests/integration_policy_test[1]_include.cmake")
include("/root/repo/build/tests/integration_fault_test[1]_include.cmake")
include("/root/repo/build/tests/integration_headless_test[1]_include.cmake")
include("/root/repo/build/tests/integration_mobility_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_codec_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
