file(REMOVE_RECURSE
  "CMakeFiles/rural_isp.dir/rural_isp.cpp.o"
  "CMakeFiles/rural_isp.dir/rural_isp.cpp.o.d"
  "rural_isp"
  "rural_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rural_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
