# Empty compiler generated dependencies file for rural_isp.
# This may be replaced when dependencies are built.
