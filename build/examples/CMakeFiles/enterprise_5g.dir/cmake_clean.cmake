file(REMOVE_RECURSE
  "CMakeFiles/enterprise_5g.dir/enterprise_5g.cpp.o"
  "CMakeFiles/enterprise_5g.dir/enterprise_5g.cpp.o.d"
  "enterprise_5g"
  "enterprise_5g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_5g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
