# Empty dependencies file for enterprise_5g.
# This may be replaced when dependencies are built.
