# Empty compiler generated dependencies file for carrier_wifi.
# This may be replaced when dependencies are built.
