file(REMOVE_RECURSE
  "CMakeFiles/carrier_wifi.dir/carrier_wifi.cpp.o"
  "CMakeFiles/carrier_wifi.dir/carrier_wifi.cpp.o.d"
  "carrier_wifi"
  "carrier_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carrier_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
