file(REMOVE_RECURSE
  "CMakeFiles/ablation_gtp_backhaul.dir/ablation_gtp_backhaul.cpp.o"
  "CMakeFiles/ablation_gtp_backhaul.dir/ablation_gtp_backhaul.cpp.o.d"
  "ablation_gtp_backhaul"
  "ablation_gtp_backhaul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gtp_backhaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
