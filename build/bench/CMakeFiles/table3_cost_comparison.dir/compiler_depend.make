# Empty compiler generated dependencies file for table3_cost_comparison.
# This may be replaced when dependencies are built.
