# Empty dependencies file for fig1_arch_comparison.
# This may be replaced when dependencies are built.
