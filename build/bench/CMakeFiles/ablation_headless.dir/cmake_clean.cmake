file(REMOVE_RECURSE
  "CMakeFiles/ablation_headless.dir/ablation_headless.cpp.o"
  "CMakeFiles/ablation_headless.dir/ablation_headless.cpp.o.d"
  "ablation_headless"
  "ablation_headless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_headless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
