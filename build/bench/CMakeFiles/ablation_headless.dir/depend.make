# Empty dependencies file for ablation_headless.
# This may be replaced when dependencies are built.
