file(REMOVE_RECURSE
  "CMakeFiles/fig9_accessparks_usage.dir/fig9_accessparks_usage.cpp.o"
  "CMakeFiles/fig9_accessparks_usage.dir/fig9_accessparks_usage.cpp.o.d"
  "fig9_accessparks_usage"
  "fig9_accessparks_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_accessparks_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
