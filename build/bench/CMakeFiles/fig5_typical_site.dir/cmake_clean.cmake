file(REMOVE_RECURSE
  "CMakeFiles/fig5_typical_site.dir/fig5_typical_site.cpp.o"
  "CMakeFiles/fig5_typical_site.dir/fig5_typical_site.cpp.o.d"
  "fig5_typical_site"
  "fig5_typical_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_typical_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
