# Empty compiler generated dependencies file for fig5_typical_site.
# This may be replaced when dependencies are built.
