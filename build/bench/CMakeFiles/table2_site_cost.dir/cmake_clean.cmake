file(REMOVE_RECURSE
  "CMakeFiles/table2_site_cost.dir/table2_site_cost.cpp.o"
  "CMakeFiles/table2_site_cost.dir/table2_site_cost.cpp.o.d"
  "table2_site_cost"
  "table2_site_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_site_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
