file(REMOVE_RECURSE
  "CMakeFiles/ablation_fault_domains.dir/ablation_fault_domains.cpp.o"
  "CMakeFiles/ablation_fault_domains.dir/ablation_fault_domains.cpp.o.d"
  "ablation_fault_domains"
  "ablation_fault_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
