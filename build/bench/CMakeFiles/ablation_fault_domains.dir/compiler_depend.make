# Empty compiler generated dependencies file for ablation_fault_domains.
# This may be replaced when dependencies are built.
