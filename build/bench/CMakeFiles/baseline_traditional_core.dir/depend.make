# Empty dependencies file for baseline_traditional_core.
# This may be replaced when dependencies are built.
