file(REMOVE_RECURSE
  "CMakeFiles/baseline_traditional_core.dir/baseline_traditional_core.cpp.o"
  "CMakeFiles/baseline_traditional_core.dir/baseline_traditional_core.cpp.o.d"
  "baseline_traditional_core"
  "baseline_traditional_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_traditional_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
