file(REMOVE_RECURSE
  "CMakeFiles/ablation_state_sync.dir/ablation_state_sync.cpp.o"
  "CMakeFiles/ablation_state_sync.dir/ablation_state_sync.cpp.o.d"
  "ablation_state_sync"
  "ablation_state_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_state_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
