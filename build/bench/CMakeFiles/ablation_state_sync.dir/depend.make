# Empty dependencies file for ablation_state_sync.
# This may be replaced when dependencies are built.
