# Empty dependencies file for fig7_throughput_vs_cpu.
# This may be replaced when dependencies are built.
