# Empty compiler generated dependencies file for fig6_attach_rate.
# This may be replaced when dependencies are built.
