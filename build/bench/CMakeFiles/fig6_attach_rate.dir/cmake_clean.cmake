file(REMOVE_RECURSE
  "CMakeFiles/fig6_attach_rate.dir/fig6_attach_rate.cpp.o"
  "CMakeFiles/fig6_attach_rate.dir/fig6_attach_rate.cpp.o.d"
  "fig6_attach_rate"
  "fig6_attach_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_attach_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
