# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8_csr_vs_cpu.
