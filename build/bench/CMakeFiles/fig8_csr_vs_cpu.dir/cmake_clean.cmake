file(REMOVE_RECURSE
  "CMakeFiles/fig8_csr_vs_cpu.dir/fig8_csr_vs_cpu.cpp.o"
  "CMakeFiles/fig8_csr_vs_cpu.dir/fig8_csr_vs_cpu.cpp.o.d"
  "fig8_csr_vs_cpu"
  "fig8_csr_vs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_csr_vs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
