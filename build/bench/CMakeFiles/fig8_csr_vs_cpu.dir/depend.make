# Empty dependencies file for fig8_csr_vs_cpu.
# This may be replaced when dependencies are built.
