# Empty compiler generated dependencies file for ablation_double_spend.
# This may be replaced when dependencies are built.
