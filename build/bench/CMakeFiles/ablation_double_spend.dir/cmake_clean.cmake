file(REMOVE_RECURSE
  "CMakeFiles/ablation_double_spend.dir/ablation_double_spend.cpp.o"
  "CMakeFiles/ablation_double_spend.dir/ablation_double_spend.cpp.o.d"
  "ablation_double_spend"
  "ablation_double_spend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_double_spend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
