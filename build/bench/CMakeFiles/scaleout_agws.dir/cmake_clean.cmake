file(REMOVE_RECURSE
  "CMakeFiles/scaleout_agws.dir/scaleout_agws.cpp.o"
  "CMakeFiles/scaleout_agws.dir/scaleout_agws.cpp.o.d"
  "scaleout_agws"
  "scaleout_agws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleout_agws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
