# Empty compiler generated dependencies file for scaleout_agws.
# This may be replaced when dependencies are built.
