# Empty compiler generated dependencies file for table1_abstraction_mapping.
# This may be replaced when dependencies are built.
