file(REMOVE_RECURSE
  "CMakeFiles/table1_abstraction_mapping.dir/table1_abstraction_mapping.cpp.o"
  "CMakeFiles/table1_abstraction_mapping.dir/table1_abstraction_mapping.cpp.o.d"
  "table1_abstraction_mapping"
  "table1_abstraction_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_abstraction_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
