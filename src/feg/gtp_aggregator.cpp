#include "feg/gtp_aggregator.h"

#include "datapath/gtpu.h"

namespace magma::feg {

GtpaBinding& GtpAggregator::allocate_binding(
    common::Teid agw_teid, std::function<void(datapath::PacketBatch)> to_agw) {
  GtpaBinding binding;
  binding.teid_from_agw = common::Teid{next_teid_++};
  binding.teid_from_pgw = common::Teid{next_teid_++};
  binding.agw_teid = agw_teid;
  binding.to_agw = std::move(to_agw);
  ++stats_.sessions;
  auto [it, _] = by_agw_teid_.emplace(binding.teid_from_agw, std::move(binding));
  agw_teid_by_pgw_teid_[it->second.teid_from_pgw] = it->second.teid_from_agw;
  return it->second;
}

void GtpAggregator::complete_binding(common::Teid teid_from_agw,
                                     common::Teid pgw_teid,
                                     common::Ipv4 pgw_address) {
  auto it = by_agw_teid_.find(teid_from_agw);
  if (it == by_agw_teid_.end()) return;
  it->second.pgw_teid = pgw_teid;
  it->second.pgw_address = pgw_address;
}

void GtpAggregator::remove_binding(common::Teid teid_from_agw) {
  auto it = by_agw_teid_.find(teid_from_agw);
  if (it == by_agw_teid_.end()) return;
  agw_teid_by_pgw_teid_.erase(it->second.teid_from_pgw);
  by_agw_teid_.erase(it);
}

void GtpAggregator::ingress_from_agw(datapath::PacketBatch batch) {
  if (!batch.packet.gtpu.has_value()) {
    ++stats_.unknown_teid_drops;
    return;
  }
  auto it = by_agw_teid_.find(batch.packet.gtpu->teid);
  if (it == by_agw_teid_.end() || it->second.pgw_teid.value == 0 || !to_pgw_) {
    ++stats_.unknown_teid_drops;
    return;
  }
  stats_.ul_bytes += batch.bytes();
  batch.packet = datapath::gtpu_encap(
      datapath::gtpu_decap(std::move(batch.packet)), it->second.pgw_teid,
      address_, it->second.pgw_address);
  to_pgw_(std::move(batch));
}

void GtpAggregator::ingress_from_pgw(datapath::PacketBatch batch) {
  if (!batch.packet.gtpu.has_value()) {
    ++stats_.unknown_teid_drops;
    return;
  }
  auto teid_it = agw_teid_by_pgw_teid_.find(batch.packet.gtpu->teid);
  if (teid_it == agw_teid_by_pgw_teid_.end()) {
    ++stats_.unknown_teid_drops;
    return;
  }
  auto it = by_agw_teid_.find(teid_it->second);
  if (it == by_agw_teid_.end() || !it->second.to_agw) {
    ++stats_.unknown_teid_drops;
    return;
  }
  stats_.dl_bytes += batch.bytes();
  batch.packet = datapath::gtpu_encap(
      datapath::gtpu_decap(std::move(batch.packet)), it->second.agw_teid,
      address_, common::Ipv4{0});
  it->second.to_agw(std::move(batch));
}

}  // namespace magma::feg
