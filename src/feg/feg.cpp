#include "feg/feg.h"

#include "datapath/gtpu.h"
#include "rpc/wire.h"

namespace magma::feg {

namespace lte = magma::proto::lte;

// ---------------------------------------------------------------------------
// GtpcEndpoint
// ---------------------------------------------------------------------------

GtpcEndpoint::GtpcEndpoint(sim::Kernel& kernel, net::Channel& channel)
    : kernel_(kernel), channel_(channel) {
  channel_.set_receiver(
      [this](common::Bytes raw) { on_message(std::move(raw)); });
}

void GtpcEndpoint::send_request(
    lte::GtpcMessage request,
    std::function<void(common::Result<lte::GtpcMessage>)> done) {
  const std::uint32_t sequence = next_sequence_++;
  std::visit([sequence](auto& m) { m.sequence = sequence; }, request);
  Pending pending;
  pending.request = std::move(request);
  pending.done = std::move(done);
  pending_.emplace(sequence, std::move(pending));
  ++stats_.requests_sent;
  transmit(sequence);
}

void GtpcEndpoint::transmit(std::uint32_t sequence) {
  auto it = pending_.find(sequence);
  if (it == pending_.end()) return;
  channel_.send(lte::encode_gtpc(it->second.request));
  it->second.timer = kernel_.schedule(
      lte::GtpcTimers::kT3Response_ms * sim::kMillisecond,
      [this, sequence]() {
        auto it = pending_.find(sequence);
        if (it == pending_.end()) return;
        if (++it->second.retries >= lte::GtpcTimers::kN3Requests) {
          ++stats_.failures;
          auto done = std::move(it->second.done);
          pending_.erase(it);
          done(common::Error{common::ErrorCode::kUnavailable,
                             "GTP-C: no response after N3 retries"});
          return;
        }
        ++stats_.retransmissions;
        transmit(sequence);
      });
}

void GtpcEndpoint::set_request_handler(
    std::function<lte::GtpcMessage(const lte::GtpcMessage&)> handler) {
  handler_ = std::move(handler);
}

void GtpcEndpoint::on_message(common::Bytes raw) {
  auto decoded = lte::decode_gtpc(raw);
  if (!decoded.ok()) return;
  lte::GtpcMessage msg = std::move(decoded).take();

  const bool is_response =
      std::holds_alternative<lte::CreateSessionResponse>(msg) ||
      std::holds_alternative<lte::ModifyBearerResponse>(msg) ||
      std::holds_alternative<lte::DeleteSessionResponse>(msg);

  if (is_response) {
    const std::uint32_t sequence = lte::gtpc_sequence(msg);
    auto it = pending_.find(sequence);
    if (it == pending_.end()) return;  // duplicate response
    kernel_.cancel(it->second.timer);
    auto done = std::move(it->second.done);
    pending_.erase(it);
    ++stats_.responses_received;
    done(std::move(msg));
    return;
  }

  if (handler_) {
    lte::GtpcMessage response = handler_(msg);
    std::visit([&](auto& m) { m.sequence = lte::gtpc_sequence(msg); },
               response);
    channel_.send(lte::encode_gtpc(response));
  }
}

// ---------------------------------------------------------------------------
// MnoCore
// ---------------------------------------------------------------------------

MnoCore::MnoCore(sim::Kernel& kernel, common::Ipv4 pgw_address)
    : kernel_(kernel),
      pgw_address_(pgw_address),
      hss_([this]() {
        // Deterministic HSS-side RAND source derived from the kernel time
        // and a counter (the MNO is a stub; vector quality is irrelevant).
        static std::uint64_t counter = 0x9E3779B97F4A7C15ULL;
        counter = counter * 6364136223846793005ULL + 1442695040888963407ULL;
        return counter ^ static_cast<std::uint64_t>(kernel_.now());
      }) {}

void MnoCore::serve_gtpc(net::Channel& channel) {
  gtpc_ = std::make_unique<GtpcEndpoint>(kernel_, channel);
  gtpc_->set_request_handler(
      [this](const lte::GtpcMessage& request) { return handle_gtpc(request); });
}

lte::GtpcMessage MnoCore::handle_gtpc(const lte::GtpcMessage& request) {
  if (const auto* create = std::get_if<lte::CreateSessionRequest>(&request)) {
    // Idempotency: a retransmitted CreateSession for an IMSI with a live
    // session returns the same session (GTP-C sequence dedup would handle
    // this in a full implementation).
    for (const auto& [teid, session] : sessions_) {
      if (session.imsi == create->imsi) {
        lte::CreateSessionResponse response;
        response.pgw_teid_c = teid;
        response.pgw_teid_u = session.our_teid_u;
        response.pgw_address = pgw_address_;
        response.pdn_address = session.ue_ip;
        return lte::GtpcMessage{response};
      }
    }
    MnoSession session;
    session.imsi = create->imsi;
    session.our_teid_u = common::Teid{next_teid_++};
    session.peer_teid_u = create->sender_teid_c;
    session.peer_address = create->sender_address;
    session.ue_ip = common::Ipv4{
        common::Ipv4::from_octets(100, 64, 0, 0).addr + next_ip_host_++};
    teid_by_ip_[session.ue_ip] = session.our_teid_u;
    lte::CreateSessionResponse response;
    response.pgw_teid_c = session.our_teid_u;
    response.pgw_teid_u = session.our_teid_u;
    response.pgw_address = pgw_address_;
    response.pdn_address = session.ue_ip;
    sessions_.emplace(session.our_teid_u, std::move(session));
    return lte::GtpcMessage{response};
  }

  if (const auto* del = std::get_if<lte::DeleteSessionRequest>(&request)) {
    auto it = sessions_.find(del->teid);
    if (it != sessions_.end()) {
      teid_by_ip_.erase(it->second.ue_ip);
      sessions_.erase(it);
    }
    return lte::GtpcMessage{lte::DeleteSessionResponse{}};
  }

  if (const auto* modify = std::get_if<lte::ModifyBearerRequest>(&request)) {
    auto it = sessions_.find(modify->teid);
    if (it != sessions_.end()) {
      it->second.peer_teid_u = modify->enb_teid_u;
      it->second.peer_address = modify->enb_address;
    }
    return lte::GtpcMessage{lte::ModifyBearerResponse{}};
  }

  lte::CreateSessionResponse error;
  error.cause = 0;
  return lte::GtpcMessage{error};
}

void MnoCore::ingress_from_gtpa(datapath::PacketBatch batch) {
  if (!batch.packet.gtpu.has_value()) return;
  auto it = sessions_.find(batch.packet.gtpu->teid);
  if (it == sessions_.end()) return;
  it->second.ul_bytes += batch.bytes();
  // Traffic breaks out to the Internet here; nothing further to model.
}

bool MnoCore::inject_downlink(common::Ipv4 ue_ip, std::uint32_t packet_bytes,
                              std::uint64_t packet_count) {
  auto teid_it = teid_by_ip_.find(ue_ip);
  if (teid_it == teid_by_ip_.end() || !to_gtpa_) return false;
  auto it = sessions_.find(teid_it->second);
  if (it == sessions_.end()) return false;

  datapath::PacketBatch batch;
  batch.packet = datapath::make_udp(common::Ipv4::from_octets(8, 8, 8, 8),
                                    ue_ip, 443, 40000, packet_bytes);
  batch.count = packet_count;
  batch.packet = datapath::gtpu_encap(std::move(batch.packet),
                                      it->second.peer_teid_u, pgw_address_,
                                      it->second.peer_address);
  it->second.dl_bytes += batch.bytes();
  to_gtpa_(std::move(batch));
  return true;
}

const MnoSession* MnoCore::session_by_ip(common::Ipv4 ue_ip) const {
  auto teid_it = teid_by_ip_.find(ue_ip);
  if (teid_it == teid_by_ip_.end()) return nullptr;
  auto it = sessions_.find(teid_it->second);
  return it == sessions_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// FederationGateway
// ---------------------------------------------------------------------------

FederationGateway::FederationGateway(sim::Kernel& kernel, MnoCore& mno,
                                     GtpAggregator& gtpa,
                                     net::Channel& gtpc_to_pgw)
    : kernel_(kernel), mno_(mno), gtpa_(gtpa), gtpc_(kernel, gtpc_to_pgw) {}

void FederationGateway::create_session(
    const common::Imsi& imsi, common::Teid agw_local_teid,
    std::function<void(datapath::PacketBatch)> to_agw,
    std::function<void(common::Result<agw::Accessd::FederatedSession>)> done) {
  // Allocate the GTP-A binding, then create the session at the MNO P-GW,
  // advertising the GTP-A's downlink tunnel endpoint as ours.
  GtpaBinding& binding =
      gtpa_.allocate_binding(agw_local_teid, std::move(to_agw));
  const common::Teid teid_from_agw = binding.teid_from_agw;
  const common::Teid teid_from_pgw = binding.teid_from_pgw;

  lte::CreateSessionRequest request;
  request.imsi = imsi;
  request.sender_teid_c = teid_from_pgw;  // P-GW sends downlink here
  request.sender_address = gtpa_.address();
  gtpc_.send_request(
      lte::GtpcMessage{request},
      [this, teid_from_agw, done](common::Result<lte::GtpcMessage> result) {
        if (!result.ok()) {
          ++stats_.session_failures;
          gtpa_.remove_binding(teid_from_agw);
          done(result.error());
          return;
        }
        const auto* response =
            std::get_if<lte::CreateSessionResponse>(&result.value());
        if (response == nullptr || response->cause != 16) {
          ++stats_.session_failures;
          gtpa_.remove_binding(teid_from_agw);
          done(common::Error{common::ErrorCode::kUnavailable,
                             "P-GW rejected session"});
          return;
        }
        gtpa_.complete_binding(teid_from_agw, response->pgw_teid_u,
                               response->pgw_address);
        ++stats_.sessions_created;
        agw::Accessd::FederatedSession session;
        session.ue_ip = response->pdn_address;
        session.home_teid_remote = teid_from_agw;
        session.home_agg_address = gtpa_.address();
        done(session);
      });
}

void FederationGateway::bind(rpc::RpcNode& node) {
  node.register_method(
      kService, kFetchSubscribers,
      [this](const rpc::Bytes& request, rpc::Respond respond) {
        (void)request;
        ++stats_.subscriber_fetches;
        respond(mno_.hss().snapshot());
      });
}

}  // namespace magma::feg
