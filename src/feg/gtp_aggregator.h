// GTP Aggregator (GTP-A) — the centralized user-plane concentrator for
// federation (§3.6): "User data-plane traffic is tunneled to an analogous
// component, the GTP Aggregator (GTP-A), which in turn connects to the
// MNO's existing P-GW." Traditional MNOs want a single interconnection
// point between their core and the extension network — that is exactly why
// this box exists and why it is the scaling choke-point §4.3.2 discusses.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/ids.h"
#include "datapath/pipeline.h"
#include "sim/kernel.h"

namespace magma::feg {

struct GtpaBinding {
  common::Teid teid_from_agw;   // our tunnel id for uplink from the AGW
  common::Teid teid_from_pgw;   // our tunnel id for downlink from the P-GW
  common::Teid agw_teid;        // AGW's tunnel id for downlink toward it
  common::Teid pgw_teid;        // P-GW's tunnel id for uplink toward it
  common::Ipv4 pgw_address;
  std::function<void(datapath::PacketBatch)> to_agw;
};

struct GtpaStats {
  std::uint64_t ul_bytes = 0;
  std::uint64_t dl_bytes = 0;
  std::uint64_t unknown_teid_drops = 0;
  std::uint64_t sessions = 0;
};

class GtpAggregator {
 public:
  explicit GtpAggregator(common::Ipv4 address) : address_(address) {}

  common::Ipv4 address() const { return address_; }

  // Phase 1 (before the P-GW answers): allocate our two tunnel ids.
  GtpaBinding& allocate_binding(common::Teid agw_teid,
                                std::function<void(datapath::PacketBatch)> to_agw);
  // Phase 2: fill in the P-GW side once CreateSessionResponse arrives.
  void complete_binding(common::Teid teid_from_agw, common::Teid pgw_teid,
                        common::Ipv4 pgw_address);
  void remove_binding(common::Teid teid_from_agw);

  void set_pgw_sink(std::function<void(datapath::PacketBatch)> sink) {
    to_pgw_ = std::move(sink);
  }

  // GTP-U in from an AGW (uplink): re-tunnel toward the P-GW.
  void ingress_from_agw(datapath::PacketBatch batch);
  // GTP-U in from the P-GW (downlink): re-tunnel toward the owning AGW.
  void ingress_from_pgw(datapath::PacketBatch batch);

  const GtpaStats& stats() const { return stats_; }

 private:
  common::Ipv4 address_;
  std::function<void(datapath::PacketBatch)> to_pgw_;
  std::unordered_map<common::Teid, GtpaBinding> by_agw_teid_;
  std::unordered_map<common::Teid, common::Teid> agw_teid_by_pgw_teid_;
  std::uint32_t next_teid_ = 0x40000;
  GtpaStats stats_;
};

}  // namespace magma::feg
