// Federation Gateway (FeG) and the partner-MNO core it talks to (§3.6).
//
// "Much as the AGW terminates access-specific protocols from the radio
// network, Magma introduces additional elements to terminate access-
// specific protocols with an external core network" — the FeG speaks
// 3GPP-defined interfaces (here: GTP-C toward the MNO's P-GW, an S6a-like
// subscriber fetch toward its HSS) so that AGWs never have to.
//
// Components:
//  * GtpcEndpoint  — GTP-C request/response over a datagram channel with the
//                    protocol's own naive reliability (T3-RESPONSE timer, N3
//                    retries). Reused by bench/ablation_gtp_backhaul to show
//                    why this transport fails on bad backhaul while Magma's
//                    gRPC-side survives.
//  * MnoCore       — stub partner MNO: HSS (subscriber store) + P-GW
//                    (GTP-C session management + GTP-U anchor + "Internet").
//  * FederationGateway — orchestrator-side service: FetchSubscribers (local
//                    breakout: subscriber data from the MNO, enforcement in
//                    the AGW) and CreateSession (home routing: user plane
//                    anchored at the MNO P-GW via the GTP-A).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include <memory>

#include "agw/accessd.h"
#include "agw/subscriberdb.h"
#include "common/ids.h"
#include "common/result.h"
#include "datapath/pipeline.h"
#include "feg/gtp_aggregator.h"
#include "net/channel.h"
#include "proto/lte/gtpc.h"
#include "rpc/rpc.h"
#include "sim/kernel.h"

namespace magma::feg {

// ---------------------------------------------------------------------------
// GTP-C endpoint
// ---------------------------------------------------------------------------

struct GtpcStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t failures = 0;  // gave up after N3 retries
};

class GtpcEndpoint {
 public:
  GtpcEndpoint(sim::Kernel& kernel, net::Channel& channel);

  // Send a request; `done` receives the peer's response or an UNAVAILABLE
  // error after N3 retransmissions.
  void send_request(
      proto::lte::GtpcMessage request,
      std::function<void(common::Result<proto::lte::GtpcMessage>)> done);

  // Serve the peer's requests (responses are sent back automatically).
  void set_request_handler(
      std::function<proto::lte::GtpcMessage(const proto::lte::GtpcMessage&)>
          handler);

  const GtpcStats& stats() const { return stats_; }

 private:
  struct Pending {
    proto::lte::GtpcMessage request;
    std::function<void(common::Result<proto::lte::GtpcMessage>)> done;
    int retries = 0;
    sim::EventId timer;
  };

  void transmit(std::uint32_t sequence);
  void on_message(common::Bytes raw);

  sim::Kernel& kernel_;
  net::Channel& channel_;
  std::function<proto::lte::GtpcMessage(const proto::lte::GtpcMessage&)>
      handler_;
  std::unordered_map<std::uint32_t, Pending> pending_;
  std::uint32_t next_sequence_ = 1;
  GtpcStats stats_;
};

// ---------------------------------------------------------------------------
// Partner MNO core (stub)
// ---------------------------------------------------------------------------

struct MnoSession {
  common::Imsi imsi;
  common::Teid our_teid_u;   // P-GW tunnel id for uplink
  common::Teid peer_teid_u;  // GTP-A tunnel id for downlink
  common::Ipv4 peer_address;
  common::Ipv4 ue_ip;
  std::uint64_t ul_bytes = 0;
  std::uint64_t dl_bytes = 0;
};

class MnoCore {
 public:
  MnoCore(sim::Kernel& kernel, common::Ipv4 pgw_address);

  // HSS: the MNO owns the subscriber base.
  agw::SubscriberDb& hss() { return hss_; }

  // Attach the GTP-C interface (the FeG's side connects the other end).
  void serve_gtpc(net::Channel& channel);

  // User plane: GTP-U from the GTP-A.
  void ingress_from_gtpa(datapath::PacketBatch batch);
  // Downlink injection ("the Internet behind the MNO"): routed to the UE's
  // session and tunneled back toward the GTP-A.
  bool inject_downlink(common::Ipv4 ue_ip, std::uint32_t packet_bytes,
                       std::uint64_t packet_count);
  void set_gtpa_sink(std::function<void(datapath::PacketBatch)> sink) {
    to_gtpa_ = std::move(sink);
  }

  common::Ipv4 pgw_address() const { return pgw_address_; }
  const MnoSession* session_by_ip(common::Ipv4 ue_ip) const;
  std::size_t session_count() const { return sessions_.size(); }

 private:
  proto::lte::GtpcMessage handle_gtpc(const proto::lte::GtpcMessage& request);

  sim::Kernel& kernel_;
  common::Ipv4 pgw_address_;
  agw::SubscriberDb hss_;
  std::unique_ptr<GtpcEndpoint> gtpc_;
  std::function<void(datapath::PacketBatch)> to_gtpa_;
  std::unordered_map<common::Teid, MnoSession> sessions_;  // by our_teid_u
  std::unordered_map<common::Ipv4, common::Teid> teid_by_ip_;
  std::uint32_t next_teid_ = 0x90000;
  std::uint32_t next_ip_host_ = 1;
};

// ---------------------------------------------------------------------------
// Federation Gateway
// ---------------------------------------------------------------------------

struct FegStats {
  std::uint64_t subscriber_fetches = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t session_failures = 0;
};

class FederationGateway {
 public:
  // `gtpc_to_pgw` is the FeG's GTP-C leg toward the MNO (the MnoCore must
  // serve the other end of the channel).
  FederationGateway(sim::Kernel& kernel, MnoCore& mno, GtpAggregator& gtpa,
                    net::Channel& gtpc_to_pgw);

  // RPC surface for AGWs: "feg/FetchSubscribers" and "feg/CreateSession".
  void bind(rpc::RpcNode& node);

  // Direct (in-process) entry used by Accessd's federation hook when the
  // FeG is reachable without an RPC hop in tests.
  void create_session(
      const common::Imsi& imsi, common::Teid agw_local_teid,
      std::function<void(datapath::PacketBatch)> to_agw,
      std::function<void(common::Result<agw::Accessd::FederatedSession>)> done);

  const FegStats& stats() const { return stats_; }

  static constexpr const char* kService = "feg";
  static constexpr const char* kFetchSubscribers = "FetchSubscribers";

 private:
  sim::Kernel& kernel_;
  MnoCore& mno_;
  GtpAggregator& gtpa_;
  GtpcEndpoint gtpc_;
  FegStats stats_;
};

}  // namespace magma::feg
