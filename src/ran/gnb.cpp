#include "ran/gnb.h"

#include "datapath/gtpu.h"

namespace magma::ran {

namespace nr = magma::proto::nr5g;

Gnb::Gnb(sim::Kernel& kernel, GnbConfig config, net::Channel& ng_channel)
    : kernel_(kernel),
      config_(config),
      ng_(ng_channel),
      dl_radio_(datapath::MeterConfig{config.dl_capacity_bps,
                                      static_cast<std::uint64_t>(
                                          config.dl_capacity_bps / 8 / 10)},
                kernel.now()),
      ul_radio_(datapath::MeterConfig{config.ul_capacity_bps,
                                      static_cast<std::uint64_t>(
                                          config.ul_capacity_bps / 8 / 10)},
                kernel.now()) {
  ng_.set_receiver([this](common::Bytes raw) { on_ng_message(std::move(raw)); });
}

void Gnb::start() {
  nr::NgSetupRequest setup;
  setup.gnb_id = config_.id;
  setup.gnb_name = config_.name;
  setup.plmn = config_.plmn;
  send_ng(nr::NgapMessage{std::move(setup)});
}

void Gnb::send_ng(const nr::NgapMessage& msg) {
  ng_.send(nr::encode_ngap(msg));
}

std::uint32_t Gnb::rrc_connect(NrUeLink* ue) {
  if (active_ues() >= config_.max_active_ues) {
    ++stats_.rrc_rejects_capacity;
    return 0;
  }
  const std::uint32_t ran_ue_id = next_ran_ue_id_++;
  ues_[ran_ue_id].ue = ue;
  return ran_ue_id;
}

void Gnb::rrc_disconnect(std::uint32_t ran_ue_id) {
  auto it = ues_.find(ran_ue_id);
  if (it == ues_.end()) return;
  if (it->second.my_teid_dl.value != 0) {
    ue_by_dl_teid_.erase(it->second.my_teid_dl);
  }
  ues_.erase(it);
}

void Gnb::send_initial_nas(std::uint32_t ran_ue_id, common::Bytes nas_pdu) {
  if (!ues_.contains(ran_ue_id)) return;
  nr::InitialUeMessage5g msg;
  msg.ran_ue_ngap_id = ran_ue_id;
  msg.nas_pdu = std::move(nas_pdu);
  send_ng(nr::NgapMessage{std::move(msg)});
}

void Gnb::send_uplink_nas(std::uint32_t ran_ue_id, common::Bytes nas_pdu) {
  auto it = ues_.find(ran_ue_id);
  if (it == ues_.end()) return;
  nr::UplinkNasTransport5g msg;
  msg.ran_ue_ngap_id = ran_ue_id;
  msg.amf_ue_ngap_id = it->second.amf_ue_id;
  msg.nas_pdu = std::move(nas_pdu);
  send_ng(nr::NgapMessage{std::move(msg)});
}

void Gnb::uplink_data(std::uint32_t ran_ue_id, datapath::PacketBatch batch) {
  auto it = ues_.find(ran_ue_id);
  if (it == ues_.end() || !it->second.has_session || !uplink_sink_) return;
  if (!ul_radio_.allow(batch.bytes(), kernel_.now())) {
    stats_.ul_dropped_radio_bytes += batch.bytes();
    return;
  }
  stats_.ul_forwarded_bytes += batch.bytes();
  batch.packet = datapath::gtpu_encap(std::move(batch.packet),
                                      it->second.agw_teid_ul, config_.address,
                                      it->second.agw_address);
  uplink_sink_(std::move(batch));
}

void Gnb::deliver_downlink(datapath::PacketBatch batch) {
  if (!batch.packet.gtpu.has_value()) {
    ++stats_.unknown_teid_drops;
    return;
  }
  auto it = ue_by_dl_teid_.find(batch.packet.gtpu->teid);
  if (it == ue_by_dl_teid_.end()) {
    ++stats_.unknown_teid_drops;
    return;
  }
  auto ue_it = ues_.find(it->second);
  if (ue_it == ues_.end() || ue_it->second.ue == nullptr) {
    ++stats_.unknown_teid_drops;
    return;
  }
  if (!dl_radio_.allow(batch.bytes(), kernel_.now())) {
    stats_.dl_dropped_radio_bytes += batch.bytes();
    return;
  }
  batch.packet = datapath::gtpu_decap(std::move(batch.packet));
  stats_.dl_delivered_bytes += batch.bytes();
  ue_it->second.ue->on_downlink_data(batch);
}

void Gnb::on_ng_message(common::Bytes raw) {
  auto decoded = nr::decode_ngap(raw);
  if (!decoded.ok()) return;
  nr::NgapMessage msg = std::move(decoded).take();

  if (std::get_if<nr::NgSetupResponse>(&msg) != nullptr) {
    ng_ready_ = true;
    return;
  }

  if (auto* dl = std::get_if<nr::DownlinkNasTransport5g>(&msg)) {
    auto it = ues_.find(dl->ran_ue_ngap_id);
    if (it == ues_.end() || it->second.ue == nullptr) return;
    it->second.amf_ue_id = dl->amf_ue_ngap_id;
    it->second.ue->on_downlink_nas(std::move(dl->nas_pdu));
    return;
  }

  if (auto* setup = std::get_if<nr::PduSessionResourceSetupRequest>(&msg)) {
    auto it = ues_.find(setup->ran_ue_ngap_id);
    if (it == ues_.end() || it->second.ue == nullptr) return;
    UeEntry& entry = it->second;
    entry.amf_ue_id = setup->amf_ue_ngap_id;
    entry.has_session = true;
    entry.agw_teid_ul = setup->agw_teid_ul;
    entry.agw_address = setup->agw_address;
    entry.my_teid_dl = common::Teid{next_dl_teid_++};
    ue_by_dl_teid_[entry.my_teid_dl] = setup->ran_ue_ngap_id;

    nr::PduSessionResourceSetupResponse response;
    response.ran_ue_ngap_id = setup->ran_ue_ngap_id;
    response.amf_ue_ngap_id = setup->amf_ue_ngap_id;
    response.pdu_session_id = setup->pdu_session_id;
    response.gnb_teid_dl = entry.my_teid_dl;
    response.gnb_address = config_.address;
    send_ng(nr::NgapMessage{std::move(response)});

    entry.ue->on_downlink_nas(setup->nas_pdu);
    return;
  }

  if (auto* release = std::get_if<nr::UeContextReleaseCommand5g>(&msg)) {
    auto it = ues_.find(release->ran_ue_ngap_id);
    nr::UeContextReleaseComplete5g complete;
    complete.ran_ue_ngap_id = release->ran_ue_ngap_id;
    complete.amf_ue_ngap_id = release->amf_ue_ngap_id;
    send_ng(nr::NgapMessage{std::move(complete)});
    if (it != ues_.end()) {
      NrUeLink* ue = it->second.ue;
      rrc_disconnect(release->ran_ue_ngap_id);
      if (ue != nullptr) ue->on_rrc_release();
    }
    return;
  }
}

}  // namespace magma::ran
