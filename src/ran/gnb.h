// gNB model — the 5G base station of the emulated RAN (NGAP toward the
// AGW's NR front-end). Radio limits modeled as in EnodeB; the control
// difference is 5G's split between registration and PDU-session resource
// setup (Figure 1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "datapath/meter.h"
#include "datapath/pipeline.h"
#include "net/channel.h"
#include "proto/nr5g/ngap.h"
#include "sim/kernel.h"

namespace magma::ran {

class NrUeLink {
 public:
  virtual ~NrUeLink() = default;
  virtual void on_downlink_nas(common::Bytes nas_pdu) = 0;
  virtual void on_downlink_data(const datapath::PacketBatch& batch) = 0;
  virtual void on_rrc_release() = 0;
};

struct GnbConfig {
  common::RanNodeId id{1};
  std::string name = "gnb";
  common::Ipv4 address = common::Ipv4::from_octets(10, 0, 2, 1);
  std::string plmn = "00101";
  int max_active_ues = 96;
  double dl_capacity_bps = 250e6;  // n78 100 MHz-class cell, conservative
  double ul_capacity_bps = 125e6;
};

struct GnbStats {
  std::uint64_t rrc_rejects_capacity = 0;
  std::uint64_t dl_delivered_bytes = 0;
  std::uint64_t dl_dropped_radio_bytes = 0;
  std::uint64_t ul_forwarded_bytes = 0;
  std::uint64_t ul_dropped_radio_bytes = 0;
  std::uint64_t unknown_teid_drops = 0;
};

class Gnb {
 public:
  Gnb(sim::Kernel& kernel, GnbConfig config, net::Channel& ng_channel);

  void start();
  bool ng_ready() const { return ng_ready_; }

  void set_uplink_sink(std::function<void(datapath::PacketBatch)> sink) {
    uplink_sink_ = std::move(sink);
  }

  std::uint32_t rrc_connect(NrUeLink* ue);
  void rrc_disconnect(std::uint32_t ran_ue_id);
  void send_initial_nas(std::uint32_t ran_ue_id, common::Bytes nas_pdu);
  void send_uplink_nas(std::uint32_t ran_ue_id, common::Bytes nas_pdu);
  void uplink_data(std::uint32_t ran_ue_id, datapath::PacketBatch batch);
  void deliver_downlink(datapath::PacketBatch batch);

  int active_ues() const { return static_cast<int>(ues_.size()); }
  const GnbConfig& config() const { return config_; }
  const GnbStats& stats() const { return stats_; }

 private:
  struct UeEntry {
    NrUeLink* ue = nullptr;
    std::uint32_t amf_ue_id = 0;
    bool has_session = false;
    common::Teid agw_teid_ul;
    common::Ipv4 agw_address;
    common::Teid my_teid_dl;
  };

  void on_ng_message(common::Bytes raw);
  void send_ng(const proto::nr5g::NgapMessage& msg);

  sim::Kernel& kernel_;
  GnbConfig config_;
  net::Channel& ng_;
  bool ng_ready_ = false;
  std::function<void(datapath::PacketBatch)> uplink_sink_;

  std::unordered_map<std::uint32_t, UeEntry> ues_;  // by ran_ue_id
  std::unordered_map<common::Teid, std::uint32_t> ue_by_dl_teid_;
  std::uint32_t next_ran_ue_id_ = 1;
  std::uint32_t next_dl_teid_ = 0x8000;

  datapath::TokenBucket dl_radio_;
  datapath::TokenBucket ul_radio_;
  GnbStats stats_;
};

}  // namespace magma::ran
