// Measurement instrumentation for experiments (the "test equipment" side
// of the Landslide substitution): periodic samplers that turn simulation
// state into the timelines the paper's figures plot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/cpu.h"
#include "sim/kernel.h"

namespace magma::ran {

struct TimelinePoint {
  double t_seconds = 0;
  double value = 0;
};

// Samples a user-supplied cumulative counter and reports per-interval rates
// (e.g. forwarded bytes -> Mbps).
class RateSampler {
 public:
  RateSampler(sim::Kernel& kernel, std::function<std::uint64_t()> counter,
              sim::Duration interval = sim::kSecond);
  void start();
  // Rate in units/second for each interval.
  const std::vector<TimelinePoint>& series() const { return series_; }
  double average(double from_s, double to_s) const;
  double peak() const;

 private:
  void tick();

  sim::Kernel& kernel_;
  std::function<std::uint64_t()> counter_;
  sim::Duration interval_;
  std::uint64_t last_ = 0;
  bool primed_ = false;
  std::vector<TimelinePoint> series_;
};

// Samples a CpuModel's cumulative busy time and reports utilization (0..1,
// normalized to total cores) per class and overall.
class CpuSampler {
 public:
  CpuSampler(sim::Kernel& kernel, sim::CpuModel& cpu,
             sim::Duration interval = sim::kSecond);
  void start();
  const std::vector<TimelinePoint>& control_util() const { return control_; }
  const std::vector<TimelinePoint>& user_util() const { return user_; }
  const std::vector<TimelinePoint>& total_util() const { return total_; }
  double average_total(double from_s, double to_s) const;

 private:
  void tick();

  sim::Kernel& kernel_;
  sim::CpuModel& cpu_;
  sim::Duration interval_;
  sim::Duration last_busy_[2] = {0, 0};
  std::vector<TimelinePoint> control_;
  std::vector<TimelinePoint> user_;
  std::vector<TimelinePoint> total_;
};

// Generic gauge sampler (active sessions, queue depths, ...).
class GaugeSampler {
 public:
  GaugeSampler(sim::Kernel& kernel, std::function<double()> gauge,
               sim::Duration interval = sim::kSecond);
  void start();
  const std::vector<TimelinePoint>& series() const { return series_; }

 private:
  void tick();

  sim::Kernel& kernel_;
  std::function<double()> gauge_;
  sim::Duration interval_;
  std::vector<TimelinePoint> series_;
};

// Helpers for printing figure data as aligned columns.
std::string format_timeline(const std::string& t_label,
                            const std::string& v_label,
                            const std::vector<TimelinePoint>& series,
                            double value_scale = 1.0, int max_rows = 0);
double timeline_average(const std::vector<TimelinePoint>& series,
                        double from_s, double to_s);

}  // namespace magma::ran
