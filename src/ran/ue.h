// UE (user equipment) models.
//
// Each UE carries a real USIM implementation: it runs the same Milenage
// computation as the network side, verifies AUTN (including SQN freshness,
// answering with an AUTS resynchronisation token when the network is
// behind), derives the key hierarchy, and checks NAS integrity MACs. The
// attach dialogue is therefore a genuine mutual-authentication exchange,
// not scripted responses — an auth vector computed with the wrong key or a
// stale SQN really fails, which is what the security tests exercise.
//
// Attach outcomes are reported through a callback together with the attach
// latency, and a T3410-style guard marks attaches that the network never
// completed as failures — the raw material of the Figure 6/8 connection
// success rate (CSR) metric.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>

#include "common/ids.h"
#include "crypto/kdf.h"
#include "crypto/milenage.h"
#include "datapath/pipeline.h"
#include "proto/lte/emm_fsm.h"
#include "proto/lte/nas.h"
#include "proto/nr5g/nas5g.h"
#include "ran/enodeb.h"
#include "ran/gnb.h"
#include "ran/wifi_ap.h"
#include "sim/kernel.h"

namespace magma::ran {

// ---------------------------------------------------------------------------
// USIM
// ---------------------------------------------------------------------------

struct UsimAuthSuccess {
  std::array<std::uint8_t, 8> res{};
  crypto::Key256 kasme{};
};
struct UsimSyncFailure {
  std::array<std::uint8_t, 14> auts{};
};
struct UsimMacFailure {};

using UsimOutcome =
    std::variant<UsimAuthSuccess, UsimSyncFailure, UsimMacFailure>;

class Usim {
 public:
  Usim(common::Imsi imsi, crypto::Key128 k, crypto::Key128 opc,
       std::string plmn = "00101");

  // TS 33.102 §6.3.3: verify AUTN's MAC-A, check SQN freshness, produce RES
  // and the key hierarchy — or AUTS on desynchronisation.
  UsimOutcome authenticate(const std::array<std::uint8_t, 16>& rand,
                           const std::array<std::uint8_t, 16>& autn);

  const common::Imsi& imsi() const { return imsi_; }
  std::uint64_t sqn_ms() const { return sqn_ms_; }
  // Test hook: force the USIM ahead of the network to trigger resync.
  void force_sqn(std::uint64_t sqn) { sqn_ms_ = sqn; }

 private:
  common::Imsi imsi_;
  crypto::Milenage milenage_;
  crypto::ServingNetwork sn_;
  std::uint64_t sqn_ms_ = 0;
};

// ---------------------------------------------------------------------------
// Attach reporting (shared by all RATs)
// ---------------------------------------------------------------------------

struct AttachOutcome {
  bool success = false;
  sim::Duration latency = 0;
  std::string failure_reason;
};
using AttachCallback = std::function<void(const AttachOutcome&)>;

struct UeTrafficStats {
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t rx_packets = 0;
};

// ---------------------------------------------------------------------------
// LTE UE
// ---------------------------------------------------------------------------

class UeLte final : public LteUeLink {
 public:
  UeLte(sim::Kernel& kernel, Usim usim,
        sim::Duration attach_guard = proto::lte::EmmTimers::kT3410_ms *
                                     sim::kMillisecond);

  // Begin the attach dialogue through `enb`. `done` fires exactly once.
  void attach(EnodeB& enb, AttachCallback done);
  void detach(bool switch_off = false);

  bool registered() const {
    return fsm_.state() == proto::lte::EmmState::kRegistered;
  }
  std::optional<common::Ipv4> ip() const { return ip_; }
  const Usim& usim() const { return usim_; }
  Usim& usim() { return usim_; }
  const UeTrafficStats& traffic() const { return traffic_; }

  // Send uplink application traffic (UDP toward `dst`).
  void send_uplink(common::Ipv4 dst, std::uint16_t dport,
                   std::uint32_t packet_bytes, std::uint64_t packet_count);

  // --- ECM-IDLE (§3.4 runtime state: the session outlives the radio) -----
  // Drop the radio connection after inactivity; the UE camps on the cell
  // and wakes on paging (or explicitly via service_request()).
  void enter_idle();
  bool idle() const { return idle_; }
  // Idle→active: NAS ServiceRequest with the stored security context.
  void service_request();
  std::uint64_t pages_received() const { return pages_received_; }

  // --- intra-AGW mobility (§3.2) -------------------------------------------
  // X2-style handover to `target` (must be served by the same AGW).
  // Returns false if the target rejected (capacity): the UE stays put.
  bool handover_to(EnodeB& target);

  // LteUeLink:
  void on_downlink_nas(common::Bytes nas_pdu) override;
  void on_downlink_data(const datapath::PacketBatch& batch) override;
  void on_rrc_release() override;
  void on_paging() override;
  void on_handover_complete(EnodeB& target,
                            std::uint32_t new_enb_ue_id) override;

 private:
  void fail(const std::string& reason);
  void succeed();
  void send_nas(const proto::lte::NasMessage& msg);
  std::uint32_t compute_mac(std::uint32_t count,
                            proto::lte::NasMessage msg) const;

  sim::Kernel& kernel_;
  Usim usim_;
  sim::Duration attach_guard_;

  EnodeB* enb_ = nullptr;
  std::uint32_t enb_ue_id_ = 0;
  proto::lte::EmmFsm fsm_;
  AttachCallback attach_cb_;
  sim::TimePoint attach_started_ = 0;
  sim::EventId guard_timer_;

  crypto::Key256 kasme_{};
  crypto::Key256 k_nas_int_{};
  crypto::Key256 k_nas_enc_{};
  bool security_active_ = false;  // NAS ciphering engaged (post-SMC)
  std::uint32_t dl_count_ = 0;
  std::uint32_t ul_count_ = 0;
  std::uint32_t dl_cipher_count_ = 0;
  std::uint32_t ul_cipher_count_ = 0;
  std::uint32_t m_tmsi_ = 0;
  std::optional<common::Ipv4> ip_;
  bool idle_ = false;
  bool expecting_idle_release_ = false;
  std::uint64_t pages_received_ = 0;
  UeTrafficStats traffic_;
};

// ---------------------------------------------------------------------------
// 5G UE
// ---------------------------------------------------------------------------

class UeNr final : public NrUeLink {
 public:
  UeNr(sim::Kernel& kernel, Usim usim,
       sim::Duration attach_guard = 15 * sim::kSecond);

  // Full 5G bring-up: registration then PDU session. `done` fires once,
  // after the PDU session is established (or on failure/timeout).
  void attach(Gnb& gnb, AttachCallback done);
  void detach(bool switch_off = false);

  bool registered() const { return registered_; }
  bool session_up() const { return ip_.has_value(); }
  std::optional<common::Ipv4> ip() const { return ip_; }
  const UeTrafficStats& traffic() const { return traffic_; }

  void send_uplink(common::Ipv4 dst, std::uint16_t dport,
                   std::uint32_t packet_bytes, std::uint64_t packet_count);

  // NrUeLink:
  void on_downlink_nas(common::Bytes nas_pdu) override;
  void on_downlink_data(const datapath::PacketBatch& batch) override;
  void on_rrc_release() override;

 private:
  void fail(const std::string& reason);
  void succeed();
  void send_nas(const proto::nr5g::Nas5gMessage& msg);
  std::uint32_t compute_mac(std::uint32_t count,
                            proto::nr5g::Nas5gMessage msg) const;

  sim::Kernel& kernel_;
  Usim usim_;
  sim::Duration attach_guard_;

  Gnb* gnb_ = nullptr;
  std::uint32_t ran_ue_id_ = 0;
  bool registered_ = false;
  AttachCallback attach_cb_;
  sim::TimePoint attach_started_ = 0;
  sim::EventId guard_timer_;

  crypto::Key256 kasme_{};
  crypto::Key256 k_nas_int_{};
  std::uint32_t dl_count_ = 0;
  std::uint32_t ul_count_ = 0;
  std::optional<common::Ipv4> ip_;
  UeTrafficStats traffic_;
};

// ---------------------------------------------------------------------------
// WiFi client
// ---------------------------------------------------------------------------

class WifiClient final : public WifiClientLink {
 public:
  WifiClient(sim::Kernel& kernel, common::Imsi user, std::string password);

  void connect(WifiAp& ap, AttachCallback done);
  void disconnect();

  bool connected() const { return ip_.has_value(); }
  std::optional<common::Ipv4> ip() const { return ip_; }
  const common::Imsi& user() const { return user_; }
  const UeTrafficStats& traffic() const { return traffic_; }

  void send_uplink(common::Ipv4 dst, std::uint16_t dport,
                   std::uint32_t packet_bytes, std::uint64_t packet_count);

  // WifiClientLink:
  void on_association_result(common::Result<common::Ipv4> ip) override;
  void on_downlink_data(const datapath::PacketBatch& batch) override;

 private:
  sim::Kernel& kernel_;
  common::Imsi user_;
  std::string password_;
  WifiAp* ap_ = nullptr;
  AttachCallback attach_cb_;
  sim::TimePoint attach_started_ = 0;
  std::optional<common::Ipv4> ip_;
  UeTrafficStats traffic_;
};

}  // namespace magma::ran
