// WiFi access point model.
//
// Plays the role of the APs in Figure 10 (AccessParks) and the "carrier
// WiFi" deployments: associates clients, runs CHAP against the AGW's WiFi
// front-end over RADIUS, reports accounting, and bridges plain-IP client
// traffic to and from the AGW. The shared medium is a token bucket like the
// cellular sectors, but best-effort and lower capacity (§2.1).
//
// Modeling note: the CHAP digest is computed here from the password given
// at associate() — in reality the client computes it; collapsing that hop
// changes no message on the AGW side.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "crypto/hmac.h"
#include "datapath/meter.h"
#include "datapath/pipeline.h"
#include "net/channel.h"
#include "proto/wifi/radius.h"
#include "sim/kernel.h"

namespace magma::ran {

class WifiClientLink {
 public:
  virtual ~WifiClientLink() = default;
  virtual void on_association_result(common::Result<common::Ipv4> ip) = 0;
  virtual void on_downlink_data(const datapath::PacketBatch& batch) = 0;
};

struct WifiApConfig {
  std::string name = "ap";
  int max_clients = 64;
  double dl_capacity_bps = 120e6;  // 802.11ac-class shared medium
  double ul_capacity_bps = 120e6;
  sim::Duration accounting_interim = 60 * sim::kSecond;
};

struct WifiApStats {
  std::uint64_t associations = 0;
  std::uint64_t association_failures = 0;
  std::uint64_t dl_delivered_bytes = 0;
  std::uint64_t dl_dropped_radio_bytes = 0;
  std::uint64_t ul_forwarded_bytes = 0;
  std::uint64_t ul_dropped_radio_bytes = 0;
};

class WifiAp {
 public:
  WifiAp(sim::Kernel& kernel, WifiApConfig config,
         net::Channel& radius_channel);

  void set_uplink_sink(std::function<void(datapath::PacketBatch)> sink) {
    uplink_sink_ = std::move(sink);
  }

  // CHAP association; the result (Framed-IP or failure) arrives on `client`.
  void associate(WifiClientLink* client, const common::Imsi& user,
                 const std::string& password);
  void disassociate(const common::Imsi& user);

  void uplink_data(const common::Imsi& user, datapath::PacketBatch batch);
  void deliver_downlink(datapath::PacketBatch batch);

  int associated_clients() const;
  const WifiApStats& stats() const { return stats_; }

 private:
  struct ClientEntry {
    WifiClientLink* client = nullptr;
    std::string password;
    bool associated = false;
    common::Ipv4 ip;
    std::uint64_t tx_octets = 0;
    std::uint64_t rx_octets = 0;
  };

  void on_radius(common::Bytes raw);
  void send_radius(const proto::wifi::RadiusPacket& packet);
  void send_accounting(const common::Imsi& user, proto::wifi::AcctStatus status);

  sim::Kernel& kernel_;
  WifiApConfig config_;
  net::Channel& radius_;
  std::function<void(datapath::PacketBatch)> uplink_sink_;

  std::unordered_map<common::Imsi, ClientEntry> clients_;  // by user
  std::unordered_map<common::Ipv4, common::Imsi> client_by_ip_;
  std::uint8_t next_identifier_ = 1;

  datapath::TokenBucket dl_radio_;
  datapath::TokenBucket ul_radio_;
  WifiApStats stats_;
};

}  // namespace magma::ran
