#include "ran/enodeb.h"

#include "common/log.h"
#include "datapath/gtpu.h"

namespace magma::ran {

namespace lte = magma::proto::lte;

EnodeB::EnodeB(sim::Kernel& kernel, EnodebConfig config,
               net::Channel& s1_channel)
    : kernel_(kernel),
      config_(config),
      s1_(s1_channel),
      dl_radio_(datapath::MeterConfig{config.dl_capacity_bps,
                                      static_cast<std::uint64_t>(
                                          config.dl_capacity_bps / 8 / 10)},
                kernel.now()),
      ul_radio_(datapath::MeterConfig{config.ul_capacity_bps,
                                      static_cast<std::uint64_t>(
                                          config.ul_capacity_bps / 8 / 10)},
                kernel.now()) {
  s1_.set_receiver([this](common::Bytes raw) { on_s1_message(std::move(raw)); });
}

void EnodeB::start() {
  lte::S1SetupRequest setup;
  setup.enb_id = config_.id;
  setup.enb_name = config_.name;
  setup.plmn = config_.plmn;
  setup.tac = config_.tac;
  send_s1(lte::S1apMessage{std::move(setup)});
}

void EnodeB::send_s1(const lte::S1apMessage& msg) {
  s1_.send(lte::encode_s1ap(msg));
}

std::uint32_t EnodeB::rrc_connect(LteUeLink* ue) {
  if (active_ues() >= config_.max_active_ues) {
    ++stats_.rrc_rejects_capacity;
    return 0;
  }
  const std::uint32_t enb_ue_id = next_enb_ue_id_++;
  ues_[enb_ue_id].ue = ue;
  return enb_ue_id;
}

void EnodeB::rrc_disconnect(std::uint32_t enb_ue_id) {
  auto it = ues_.find(enb_ue_id);
  if (it == ues_.end()) return;
  if (it->second.my_teid_dl.value != 0) {
    ue_by_dl_teid_.erase(it->second.my_teid_dl);
  }
  ues_.erase(it);
}

void EnodeB::send_initial_nas(std::uint32_t enb_ue_id,
                              common::Bytes nas_pdu) {
  if (!ues_.contains(enb_ue_id)) return;
  lte::InitialUeMessage msg;
  msg.enb_ue_s1ap_id = enb_ue_id;
  msg.tac = config_.tac;
  msg.nas_pdu = std::move(nas_pdu);
  send_s1(lte::S1apMessage{std::move(msg)});
}

void EnodeB::send_uplink_nas(std::uint32_t enb_ue_id, common::Bytes nas_pdu) {
  auto it = ues_.find(enb_ue_id);
  if (it == ues_.end()) return;
  lte::UplinkNasTransport msg;
  msg.enb_ue_s1ap_id = enb_ue_id;
  msg.mme_ue_s1ap_id = it->second.mme_ue_id;
  msg.nas_pdu = std::move(nas_pdu);
  send_s1(lte::S1apMessage{std::move(msg)});
}

void EnodeB::uplink_data(std::uint32_t enb_ue_id,
                         datapath::PacketBatch batch) {
  auto it = ues_.find(enb_ue_id);
  if (it == ues_.end() || !it->second.has_bearer || !uplink_sink_) return;
  if (!ul_radio_.allow(batch.bytes(), kernel_.now())) {
    stats_.ul_dropped_radio_bytes += batch.bytes();
    return;
  }
  stats_.ul_forwarded_bytes += batch.bytes();
  batch.packet = datapath::gtpu_encap(std::move(batch.packet),
                                      it->second.agw_teid_ul, config_.address,
                                      it->second.agw_address);
  uplink_sink_(std::move(batch));
}

void EnodeB::request_idle_release(std::uint32_t enb_ue_id) {
  auto it = ues_.find(enb_ue_id);
  if (it == ues_.end()) return;
  ++stats_.idle_releases;
  lte::UeContextReleaseRequest request;
  request.enb_ue_s1ap_id = enb_ue_id;
  request.mme_ue_s1ap_id = it->second.mme_ue_id;
  request.cause = "user-inactivity";
  send_s1(lte::S1apMessage{std::move(request)});
}

void EnodeB::camp(const common::Imsi& imsi, LteUeLink* ue) {
  camped_[imsi] = ue;
}

void EnodeB::uncamp(const common::Imsi& imsi) {
  camped_.erase(imsi);
}

bool EnodeB::start_handover(std::uint32_t enb_ue_id, EnodeB& target) {
  auto it = ues_.find(enb_ue_id);
  if (it == ues_.end() || !it->second.has_bearer) return false;
  const UeEntry entry = it->second;
  const std::uint32_t new_id = target.admit_handover(
      entry.ue, entry.mme_ue_id, entry.agw_teid_ul, entry.agw_address);
  if (new_id == 0) return false;
  // X2 context transfer done: the source releases its side locally (the
  // path switch at the core is the target's job).
  ++stats_.handovers_out;
  rrc_disconnect(enb_ue_id);
  return true;
}

std::uint32_t EnodeB::admit_handover(LteUeLink* ue, std::uint32_t mme_ue_id,
                                     common::Teid agw_teid_ul,
                                     common::Ipv4 agw_address) {
  if (active_ues() >= config_.max_active_ues) {
    ++stats_.rrc_rejects_capacity;
    return 0;
  }
  const std::uint32_t enb_ue_id = next_enb_ue_id_++;
  UeEntry& entry = ues_[enb_ue_id];
  entry.ue = ue;
  entry.mme_ue_id = mme_ue_id;
  entry.has_bearer = true;
  entry.agw_teid_ul = agw_teid_ul;
  entry.agw_address = agw_address;
  entry.my_teid_dl = common::Teid{next_dl_teid_++};
  ue_by_dl_teid_[entry.my_teid_dl] = enb_ue_id;
  ++stats_.handovers_in;

  lte::PathSwitchRequest request;
  request.enb_ue_s1ap_id = enb_ue_id;
  request.mme_ue_s1ap_id = mme_ue_id;
  request.enb_teid_dl = entry.my_teid_dl;
  request.enb_address = config_.address;
  send_s1(lte::S1apMessage{std::move(request)});

  ue->on_handover_complete(*this, enb_ue_id);
  return enb_ue_id;
}

void EnodeB::deliver_downlink(datapath::PacketBatch batch) {
  if (!batch.packet.gtpu.has_value()) {
    ++stats_.unknown_teid_drops;
    return;
  }
  auto it = ue_by_dl_teid_.find(batch.packet.gtpu->teid);
  if (it == ue_by_dl_teid_.end()) {
    ++stats_.unknown_teid_drops;
    return;
  }
  auto ue_it = ues_.find(it->second);
  if (ue_it == ues_.end() || ue_it->second.ue == nullptr) {
    ++stats_.unknown_teid_drops;
    return;
  }
  // Radio scheduling: the sector's shared downlink capacity.
  if (!dl_radio_.allow(batch.bytes(), kernel_.now())) {
    stats_.dl_dropped_radio_bytes += batch.bytes();
    return;
  }
  batch.packet = datapath::gtpu_decap(std::move(batch.packet));
  stats_.dl_delivered_bytes += batch.bytes();
  ue_it->second.ue->on_downlink_data(batch);
}

void EnodeB::on_s1_message(common::Bytes raw) {
  auto decoded = lte::decode_s1ap(raw);
  if (!decoded.ok()) return;
  lte::S1apMessage msg = std::move(decoded).take();

  if (std::get_if<lte::S1SetupResponse>(&msg) != nullptr) {
    s1_ready_ = true;
    return;
  }

  if (auto* dl = std::get_if<lte::DownlinkNasTransport>(&msg)) {
    auto it = ues_.find(dl->enb_ue_s1ap_id);
    if (it == ues_.end() || it->second.ue == nullptr) return;
    it->second.mme_ue_id = dl->mme_ue_s1ap_id;
    it->second.ue->on_downlink_nas(std::move(dl->nas_pdu));
    return;
  }

  if (auto* ics = std::get_if<lte::InitialContextSetupRequest>(&msg)) {
    auto it = ues_.find(ics->enb_ue_s1ap_id);
    if (it == ues_.end() || it->second.ue == nullptr) return;
    UeEntry& entry = it->second;
    entry.mme_ue_id = ics->mme_ue_s1ap_id;
    entry.has_bearer = true;
    entry.agw_teid_ul = ics->agw_teid_ul;
    entry.agw_address = ics->agw_address;
    entry.my_teid_dl = common::Teid{next_dl_teid_++};
    ue_by_dl_teid_[entry.my_teid_dl] = ics->enb_ue_s1ap_id;

    lte::InitialContextSetupResponse response;
    response.enb_ue_s1ap_id = ics->enb_ue_s1ap_id;
    response.mme_ue_s1ap_id = ics->mme_ue_s1ap_id;
    response.enb_teid_dl = entry.my_teid_dl;
    response.enb_address = config_.address;
    send_s1(lte::S1apMessage{std::move(response)});

    // Relay the piggybacked AttachAccept to the UE.
    entry.ue->on_downlink_nas(ics->nas_pdu);
    return;
  }

  if (auto* paging = std::get_if<lte::PagingMessage>(&msg)) {
    auto it = camped_.find(paging->imsi);
    if (it != camped_.end() && it->second != nullptr) {
      ++stats_.pages_delivered;
      it->second->on_paging();
    }
    return;
  }

  if (std::get_if<lte::PathSwitchRequestAcknowledge>(&msg) != nullptr) {
    return;  // path switch confirmed; nothing more to do radio-side
  }

  if (auto* release = std::get_if<lte::UeContextReleaseCommand>(&msg)) {
    auto it = ues_.find(release->enb_ue_s1ap_id);
    lte::UeContextReleaseComplete complete;
    complete.enb_ue_s1ap_id = release->enb_ue_s1ap_id;
    complete.mme_ue_s1ap_id = release->mme_ue_s1ap_id;
    send_s1(lte::S1apMessage{std::move(complete)});
    if (it != ues_.end()) {
      LteUeLink* ue = it->second.ue;
      rrc_disconnect(release->enb_ue_s1ap_id);
      if (ue != nullptr) ue->on_rrc_release();
    }
    return;
  }
}

}  // namespace magma::ran
