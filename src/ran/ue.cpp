#include "ran/ue.h"

#include <cstring>

#include "agw/subscriberdb.h"  // sqn_to_bytes / sqn_from_bytes helpers

namespace magma::ran {

namespace lte = magma::proto::lte;
namespace nr = magma::proto::nr5g;

// ---------------------------------------------------------------------------
// USIM
// ---------------------------------------------------------------------------

Usim::Usim(common::Imsi imsi, crypto::Key128 k, crypto::Key128 opc,
           std::string plmn)
    : imsi_(std::move(imsi)), milenage_(crypto::Milenage::from_opc(k, opc)) {
  sn_.plmn = std::move(plmn);
}

UsimOutcome Usim::authenticate(const std::array<std::uint8_t, 16>& rand,
                               const std::array<std::uint8_t, 16>& autn) {
  // AUTN = (SQN xor AK) || AMF || MAC-A.
  std::array<std::uint8_t, 6> sqn_xor_ak;
  std::memcpy(sqn_xor_ak.data(), autn.data(), 6);
  std::array<std::uint8_t, 2> amf;
  std::memcpy(amf.data(), autn.data() + 6, 2);

  // Recover SQN: AK depends only on RAND.
  const crypto::MilenageOutput probe =
      milenage_.compute(rand, agw::sqn_to_bytes(0), amf);
  std::array<std::uint8_t, 6> sqn_bytes;
  for (int i = 0; i < 6; ++i) {
    sqn_bytes[static_cast<std::size_t>(i)] =
        sqn_xor_ak[static_cast<std::size_t>(i)] ^
        probe.ak[static_cast<std::size_t>(i)];
  }
  const std::uint64_t sqn = agw::sqn_from_bytes(sqn_bytes);

  // Verify MAC-A with the recovered SQN.
  const crypto::MilenageOutput out = milenage_.compute(rand, sqn_bytes, amf);
  if (!common::constant_time_equal(
          common::BytesView(autn.data() + 8, 8),
          common::BytesView(out.mac_a.data(), 8))) {
    return UsimMacFailure{};
  }

  // SQN freshness (simplified window: strictly increasing).
  if (sqn <= sqn_ms_) {
    // Build AUTS = (SQNms xor AK*) || MAC-S with AMF* = 0.
    const auto sqn_ms_bytes = agw::sqn_to_bytes(sqn_ms_);
    const crypto::MilenageOutput resync =
        milenage_.compute(rand, sqn_ms_bytes, {0x00, 0x00});
    UsimSyncFailure failure;
    for (int i = 0; i < 6; ++i) {
      failure.auts[static_cast<std::size_t>(i)] =
          sqn_ms_bytes[static_cast<std::size_t>(i)] ^
          resync.ak_s[static_cast<std::size_t>(i)];
    }
    std::memcpy(failure.auts.data() + 6, resync.mac_s.data(), 8);
    return failure;
  }
  sqn_ms_ = sqn;

  UsimAuthSuccess success;
  std::memcpy(success.res.data(), out.res.data(), 8);
  success.kasme = crypto::derive_kasme(out.ck, out.ik, sn_, sqn_xor_ak);
  return success;
}

// ---------------------------------------------------------------------------
// NAS MAC helpers (must mirror the front-ends exactly)
// ---------------------------------------------------------------------------

namespace {

lte::NasMessage lte_zero_mac(lte::NasMessage msg) {
  if (auto* smc = std::get_if<lte::SecurityModeCommand>(&msg)) smc->mac = 0;
  if (auto* smk = std::get_if<lte::SecurityModeComplete>(&msg)) smk->mac = 0;
  if (auto* acc = std::get_if<lte::AttachAccept>(&msg)) acc->mac = 0;
  if (auto* cpl = std::get_if<lte::AttachComplete>(&msg)) cpl->mac = 0;
  if (auto* srq = std::get_if<lte::ServiceRequest>(&msg)) srq->mac = 0;
  if (auto* sra = std::get_if<lte::ServiceAccept>(&msg)) sra->mac = 0;
  return msg;
}

nr::Nas5gMessage nr_zero_mac(nr::Nas5gMessage msg) {
  if (auto* smc = std::get_if<nr::SecurityModeCommand5g>(&msg)) smc->mac = 0;
  if (auto* smk = std::get_if<nr::SecurityModeComplete5g>(&msg)) smk->mac = 0;
  if (auto* acc = std::get_if<nr::RegistrationAccept>(&msg)) acc->mac = 0;
  if (auto* cpl = std::get_if<nr::RegistrationComplete>(&msg)) cpl->mac = 0;
  return msg;
}

}  // namespace

// ---------------------------------------------------------------------------
// LTE UE
// ---------------------------------------------------------------------------

UeLte::UeLte(sim::Kernel& kernel, Usim usim, sim::Duration attach_guard)
    : kernel_(kernel), usim_(std::move(usim)), attach_guard_(attach_guard) {}

std::uint32_t UeLte::compute_mac(std::uint32_t count,
                                 lte::NasMessage msg) const {
  return crypto::nas_mac(k_nas_int_, count,
                         lte::encode_nas(lte_zero_mac(std::move(msg))));
}

void UeLte::send_nas(const lte::NasMessage& msg) {
  if (enb_ == nullptr || enb_ue_id_ == 0) return;
  common::Bytes pdu = lte::encode_nas(msg);
  if (security_active_) {
    pdu = crypto::nas_cipher(k_nas_enc_, ul_cipher_count_++, false, pdu);
  }
  enb_->send_uplink_nas(enb_ue_id_, std::move(pdu));
}

void UeLte::fail(const std::string& reason) {
  kernel_.cancel(guard_timer_);
  fsm_.handle(lte::EmmEvent::kImplicitDetach);
  if (enb_ != nullptr && enb_ue_id_ != 0) enb_->rrc_disconnect(enb_ue_id_);
  enb_ue_id_ = 0;
  if (attach_cb_) {
    AttachOutcome outcome;
    outcome.success = false;
    outcome.latency = kernel_.now() - attach_started_;
    outcome.failure_reason = reason;
    auto cb = std::move(attach_cb_);
    attach_cb_ = nullptr;
    cb(outcome);
  }
}

void UeLte::succeed() {
  kernel_.cancel(guard_timer_);
  if (attach_cb_) {
    AttachOutcome outcome;
    outcome.success = true;
    outcome.latency = kernel_.now() - attach_started_;
    auto cb = std::move(attach_cb_);
    attach_cb_ = nullptr;
    cb(outcome);
  }
}

void UeLte::attach(EnodeB& enb, AttachCallback done) {
  // attach() models a power-cycled UE: any previous radio connection and
  // security context are discarded and the procedure starts fresh.
  if (enb_ != nullptr && enb_ue_id_ != 0) enb_->rrc_disconnect(enb_ue_id_);
  fsm_ = proto::lte::EmmFsm{};
  enb_ = &enb;
  attach_cb_ = std::move(done);
  attach_started_ = kernel_.now();
  dl_count_ = 0;
  ul_count_ = 0;
  dl_cipher_count_ = 0;
  ul_cipher_count_ = 0;
  security_active_ = false;
  idle_ = false;
  expecting_idle_release_ = false;
  ip_.reset();

  enb_ue_id_ = enb.rrc_connect(this);
  if (enb_ue_id_ == 0) {
    fail("rrc-capacity");
    return;
  }
  if (!fsm_.handle(lte::EmmEvent::kAttachRequested)) {
    fail("bad-state");
    return;
  }
  guard_timer_ =
      kernel_.schedule(attach_guard_, [this]() { fail("t3410-expired"); });

  lte::AttachRequest request;
  request.imsi = usim_.imsi();
  enb_->send_initial_nas(enb_ue_id_, lte::encode_nas(lte::NasMessage{request}));
}

void UeLte::on_downlink_nas(common::Bytes nas_pdu) {
  if (security_active_) {
    nas_pdu =
        crypto::nas_cipher(k_nas_enc_, dl_cipher_count_++, true, nas_pdu);
  }
  auto decoded = lte::decode_nas(nas_pdu);
  if (!decoded.ok()) return;
  const lte::NasMessage& msg = decoded.value();

  if (const auto* auth = std::get_if<lte::AuthenticationRequest>(&msg)) {
    const UsimOutcome outcome = usim_.authenticate(auth->rand, auth->autn);
    if (const auto* success = std::get_if<UsimAuthSuccess>(&outcome)) {
      kasme_ = success->kasme;
      lte::AuthenticationResponse response;
      response.res = success->res;
      send_nas(lte::NasMessage{response});
      return;
    }
    if (const auto* resync = std::get_if<UsimSyncFailure>(&outcome)) {
      lte::AuthenticationFailure failure;
      failure.cause = lte::EmmCause::kSynchFailure;
      failure.auts = resync->auts;
      send_nas(lte::NasMessage{failure});
      return;
    }
    // MAC failure: the network is not who it claims to be. Abort.
    fail("autn-mac-failure");
    return;
  }

  if (const auto* smc = std::get_if<lte::SecurityModeCommand>(&msg)) {
    fsm_.handle(lte::EmmEvent::kAuthSucceeded);
    k_nas_int_ = crypto::derive_k_nas_int(kasme_, crypto::NasAlgorithm::kEia2);
    const std::uint32_t expected =
        compute_mac(dl_count_, lte::NasMessage{*smc});
    if (expected != smc->mac) {
      fail("smc-mac-failure");
      return;
    }
    ++dl_count_;
    fsm_.handle(lte::EmmEvent::kSecurityEstablished);

    lte::SecurityModeComplete complete;
    complete.mac = compute_mac(ul_count_, lte::NasMessage{complete});
    ++ul_count_;
    send_nas(lte::NasMessage{complete});
    // Ciphering engages for everything after the SecurityModeComplete.
    k_nas_enc_ = crypto::derive_k_nas_enc(kasme_, crypto::NasAlgorithm::kEea2);
    security_active_ = true;
    return;
  }

  if (const auto* accept = std::get_if<lte::AttachAccept>(&msg)) {
    const std::uint32_t expected =
        compute_mac(dl_count_, lte::NasMessage{*accept});
    if (expected != accept->mac) {
      fail("accept-mac-failure");
      return;
    }
    ++dl_count_;
    m_tmsi_ = accept->m_tmsi;
    ip_ = accept->bearer.pdn_address;
    fsm_.handle(lte::EmmEvent::kContextEstablished);

    lte::AttachComplete complete;
    complete.mac = compute_mac(ul_count_, lte::NasMessage{complete});
    ++ul_count_;
    send_nas(lte::NasMessage{complete});
    succeed();
    return;
  }

  if (const auto* reject = std::get_if<lte::AttachReject>(&msg)) {
    fail("attach-reject-cause-" +
         std::to_string(static_cast<int>(reject->cause)));
    return;
  }

  if (std::get_if<lte::DetachAccept>(&msg) != nullptr) {
    fsm_.handle(lte::EmmEvent::kDetachComplete);
    return;
  }

  if (const auto* accept = std::get_if<lte::ServiceAccept>(&msg)) {
    const std::uint32_t expected =
        compute_mac(dl_count_, lte::NasMessage{*accept});
    if (expected != accept->mac) return;  // forged; stay idle
    ++dl_count_;
    idle_ = false;
    if (enb_ != nullptr) enb_->uncamp(usim_.imsi());
    return;
  }

  if (std::get_if<lte::ServiceReject>(&msg) != nullptr) {
    // Context lost at the network: fall back to a full re-attach next time.
    idle_ = false;
    ip_.reset();
    fsm_ = lte::EmmFsm{};
    if (enb_ != nullptr) {
      enb_->uncamp(usim_.imsi());
      if (enb_ue_id_ != 0) enb_->rrc_disconnect(enb_ue_id_);
      enb_ue_id_ = 0;
    }
    return;
  }
}

void UeLte::detach(bool switch_off) {
  if (!registered()) return;
  fsm_.handle(lte::EmmEvent::kDetachRequested);
  lte::DetachRequest request;
  request.switch_off = switch_off;
  send_nas(lte::NasMessage{request});
  if (switch_off) {
    fsm_.handle(lte::EmmEvent::kImplicitDetach);
  }
}

void UeLte::send_uplink(common::Ipv4 dst, std::uint16_t dport,
                        std::uint32_t packet_bytes,
                        std::uint64_t packet_count) {
  if (!ip_.has_value() || enb_ == nullptr || enb_ue_id_ == 0) return;
  datapath::PacketBatch batch;
  batch.packet = datapath::make_udp(*ip_, dst, 40000, dport, packet_bytes);
  batch.count = packet_count;
  traffic_.tx_bytes += batch.bytes();
  enb_->uplink_data(enb_ue_id_, std::move(batch));
}

void UeLte::on_downlink_data(const datapath::PacketBatch& batch) {
  traffic_.rx_bytes += batch.bytes();
  traffic_.rx_packets += batch.count;
}

void UeLte::on_rrc_release() {
  enb_ue_id_ = 0;
  if (expecting_idle_release_) {
    // Voluntary ECM-IDLE: EMM registration and the session view survive.
    expecting_idle_release_ = false;
    idle_ = true;
    return;
  }
  if (fsm_.state() != lte::EmmState::kDeregistered) {
    fsm_.handle(lte::EmmEvent::kImplicitDetach);
  }
  ip_.reset();
}

void UeLte::enter_idle() {
  if (!registered() || idle_ || enb_ == nullptr || enb_ue_id_ == 0) return;
  expecting_idle_release_ = true;
  enb_->camp(usim_.imsi(), this);
  enb_->request_idle_release(enb_ue_id_);
}

void UeLte::service_request() {
  if (!idle_ || enb_ == nullptr) return;
  enb_ue_id_ = enb_->rrc_connect(this);
  if (enb_ue_id_ == 0) return;  // cell full; stay idle, retry on next page
  lte::ServiceRequest request;
  request.m_tmsi = m_tmsi_;
  request.mac = compute_mac(ul_count_, lte::NasMessage{request});
  ++ul_count_;
  enb_->send_initial_nas(enb_ue_id_, lte::encode_nas(lte::NasMessage{request}));
}

void UeLte::on_paging() {
  if (!idle_) return;
  ++pages_received_;
  service_request();
}

bool UeLte::handover_to(EnodeB& target) {
  if (!registered() || idle_ || enb_ == nullptr || enb_ue_id_ == 0) {
    return false;
  }
  if (&target == enb_) return true;
  return enb_->start_handover(enb_ue_id_, target);
}

void UeLte::on_handover_complete(EnodeB& target,
                                 std::uint32_t new_enb_ue_id) {
  enb_ = &target;
  enb_ue_id_ = new_enb_ue_id;
}

// ---------------------------------------------------------------------------
// 5G UE
// ---------------------------------------------------------------------------

UeNr::UeNr(sim::Kernel& kernel, Usim usim, sim::Duration attach_guard)
    : kernel_(kernel), usim_(std::move(usim)), attach_guard_(attach_guard) {}

std::uint32_t UeNr::compute_mac(std::uint32_t count,
                                nr::Nas5gMessage msg) const {
  return crypto::nas_mac(k_nas_int_, count,
                         nr::encode_nas5g(nr_zero_mac(std::move(msg))));
}

void UeNr::send_nas(const nr::Nas5gMessage& msg) {
  if (gnb_ == nullptr || ran_ue_id_ == 0) return;
  gnb_->send_uplink_nas(ran_ue_id_, nr::encode_nas5g(msg));
}

void UeNr::fail(const std::string& reason) {
  kernel_.cancel(guard_timer_);
  if (gnb_ != nullptr && ran_ue_id_ != 0) gnb_->rrc_disconnect(ran_ue_id_);
  ran_ue_id_ = 0;
  registered_ = false;
  if (attach_cb_) {
    AttachOutcome outcome;
    outcome.success = false;
    outcome.latency = kernel_.now() - attach_started_;
    outcome.failure_reason = reason;
    auto cb = std::move(attach_cb_);
    attach_cb_ = nullptr;
    cb(outcome);
  }
}

void UeNr::succeed() {
  kernel_.cancel(guard_timer_);
  if (attach_cb_) {
    AttachOutcome outcome;
    outcome.success = true;
    outcome.latency = kernel_.now() - attach_started_;
    auto cb = std::move(attach_cb_);
    attach_cb_ = nullptr;
    cb(outcome);
  }
}

void UeNr::attach(Gnb& gnb, AttachCallback done) {
  if (gnb_ != nullptr && ran_ue_id_ != 0) gnb_->rrc_disconnect(ran_ue_id_);
  registered_ = false;
  gnb_ = &gnb;
  attach_cb_ = std::move(done);
  attach_started_ = kernel_.now();
  dl_count_ = 0;
  ul_count_ = 0;
  ip_.reset();

  ran_ue_id_ = gnb.rrc_connect(this);
  if (ran_ue_id_ == 0) {
    fail("rrc-capacity");
    return;
  }
  guard_timer_ =
      kernel_.schedule(attach_guard_, [this]() { fail("t3510-expired"); });

  nr::RegistrationRequest request;
  request.supi = usim_.imsi();
  gnb_->send_initial_nas(ran_ue_id_,
                         nr::encode_nas5g(nr::Nas5gMessage{request}));
}

void UeNr::on_downlink_nas(common::Bytes nas_pdu) {
  auto decoded = nr::decode_nas5g(nas_pdu);
  if (!decoded.ok()) return;
  const nr::Nas5gMessage& msg = decoded.value();

  if (const auto* auth = std::get_if<nr::AuthenticationRequest5g>(&msg)) {
    const UsimOutcome outcome = usim_.authenticate(auth->rand, auth->autn);
    if (const auto* success = std::get_if<UsimAuthSuccess>(&outcome)) {
      kasme_ = success->kasme;
      nr::AuthenticationResponse5g response;
      // RES* carries RES in its first half in our simplified hierarchy.
      std::memcpy(response.res_star.data(), success->res.data(), 8);
      send_nas(nr::Nas5gMessage{response});
      return;
    }
    fail("5g-auth-failure");
    return;
  }

  if (const auto* smc = std::get_if<nr::SecurityModeCommand5g>(&msg)) {
    k_nas_int_ = crypto::derive_k_nas_int(kasme_, crypto::NasAlgorithm::kEia2);
    const std::uint32_t expected =
        compute_mac(dl_count_, nr::Nas5gMessage{*smc});
    if (expected != smc->mac) {
      fail("smc-mac-failure");
      return;
    }
    ++dl_count_;
    nr::SecurityModeComplete5g complete;
    complete.mac = compute_mac(ul_count_, nr::Nas5gMessage{complete});
    ++ul_count_;
    send_nas(nr::Nas5gMessage{complete});
    return;
  }

  if (const auto* accept = std::get_if<nr::RegistrationAccept>(&msg)) {
    const std::uint32_t expected =
        compute_mac(dl_count_, nr::Nas5gMessage{*accept});
    if (expected != accept->mac) {
      fail("accept-mac-failure");
      return;
    }
    ++dl_count_;
    registered_ = true;

    nr::RegistrationComplete complete;
    complete.mac = compute_mac(ul_count_, nr::Nas5gMessage{complete});
    ++ul_count_;
    send_nas(nr::Nas5gMessage{complete});

    // Registration done; now request the user-plane PDU session (the 5G
    // two-step of Figure 1).
    nr::PduSessionEstablishmentRequest pdu;
    send_nas(nr::Nas5gMessage{pdu});
    return;
  }

  if (const auto* reject = std::get_if<nr::RegistrationReject>(&msg)) {
    fail("registration-reject-cause-" +
         std::to_string(static_cast<int>(reject->cause)));
    return;
  }

  if (const auto* accept =
          std::get_if<nr::PduSessionEstablishmentAccept>(&msg)) {
    ip_ = accept->ue_address;
    succeed();
    return;
  }

  if (std::get_if<nr::PduSessionEstablishmentReject>(&msg) != nullptr) {
    fail("pdu-session-reject");
    return;
  }

  if (std::get_if<nr::DeregistrationAccept5g>(&msg) != nullptr) {
    registered_ = false;
    ip_.reset();
    return;
  }
}

void UeNr::detach(bool switch_off) {
  if (!registered_) return;
  nr::DeregistrationRequest5g request;
  request.switch_off = switch_off;
  send_nas(nr::Nas5gMessage{request});
  if (switch_off) {
    registered_ = false;
    ip_.reset();
  }
}

void UeNr::send_uplink(common::Ipv4 dst, std::uint16_t dport,
                       std::uint32_t packet_bytes,
                       std::uint64_t packet_count) {
  if (!ip_.has_value() || gnb_ == nullptr || ran_ue_id_ == 0) return;
  datapath::PacketBatch batch;
  batch.packet = datapath::make_udp(*ip_, dst, 40000, dport, packet_bytes);
  batch.count = packet_count;
  traffic_.tx_bytes += batch.bytes();
  gnb_->uplink_data(ran_ue_id_, std::move(batch));
}

void UeNr::on_downlink_data(const datapath::PacketBatch& batch) {
  traffic_.rx_bytes += batch.bytes();
  traffic_.rx_packets += batch.count;
}

void UeNr::on_rrc_release() {
  ran_ue_id_ = 0;
  registered_ = false;
  ip_.reset();
}

// ---------------------------------------------------------------------------
// WiFi client
// ---------------------------------------------------------------------------

WifiClient::WifiClient(sim::Kernel& kernel, common::Imsi user,
                       std::string password)
    : kernel_(kernel), user_(std::move(user)), password_(std::move(password)) {}

void WifiClient::connect(WifiAp& ap, AttachCallback done) {
  ap_ = &ap;
  attach_cb_ = std::move(done);
  attach_started_ = kernel_.now();
  ap.associate(this, user_, password_);
}

void WifiClient::disconnect() {
  if (ap_ != nullptr) ap_->disassociate(user_);
  ip_.reset();
}

void WifiClient::on_association_result(common::Result<common::Ipv4> ip) {
  AttachOutcome outcome;
  outcome.latency = kernel_.now() - attach_started_;
  if (ip.ok()) {
    ip_ = ip.value();
    outcome.success = true;
  } else {
    outcome.success = false;
    outcome.failure_reason = ip.error().to_string();
  }
  if (attach_cb_) {
    auto cb = std::move(attach_cb_);
    attach_cb_ = nullptr;
    cb(outcome);
  }
}

void WifiClient::send_uplink(common::Ipv4 dst, std::uint16_t dport,
                             std::uint32_t packet_bytes,
                             std::uint64_t packet_count) {
  if (!ip_.has_value() || ap_ == nullptr) return;
  datapath::PacketBatch batch;
  batch.packet = datapath::make_udp(*ip_, dst, 40000, dport, packet_bytes);
  batch.count = packet_count;
  traffic_.tx_bytes += batch.bytes();
  ap_->uplink_data(user_, std::move(batch));
}

void WifiClient::on_downlink_data(const datapath::PacketBatch& batch) {
  traffic_.rx_bytes += batch.bytes();
  traffic_.rx_packets += batch.count;
}

}  // namespace magma::ran
