#include "ran/wifi_ap.h"

#include <cstring>

namespace magma::ran {

namespace wifi = magma::proto::wifi;

WifiAp::WifiAp(sim::Kernel& kernel, WifiApConfig config,
               net::Channel& radius_channel)
    : kernel_(kernel),
      config_(config),
      radius_(radius_channel),
      dl_radio_(datapath::MeterConfig{config.dl_capacity_bps,
                                      static_cast<std::uint64_t>(
                                          config.dl_capacity_bps / 8 / 10)},
                kernel.now()),
      ul_radio_(datapath::MeterConfig{config.ul_capacity_bps,
                                      static_cast<std::uint64_t>(
                                          config.ul_capacity_bps / 8 / 10)},
                kernel.now()) {
  radius_.set_receiver([this](common::Bytes raw) { on_radius(std::move(raw)); });
}

void WifiAp::send_radius(const wifi::RadiusPacket& packet) {
  radius_.send(wifi::encode_radius(packet));
}

int WifiAp::associated_clients() const {
  int count = 0;
  for (const auto& [_, entry] : clients_) count += entry.associated ? 1 : 0;
  return count;
}

void WifiAp::associate(WifiClientLink* client, const common::Imsi& user,
                       const std::string& password) {
  if (static_cast<int>(clients_.size()) >= config_.max_clients) {
    ++stats_.association_failures;
    client->on_association_result(common::Error{
        common::ErrorCode::kResourceExhausted, "AP at client capacity"});
    return;
  }
  ClientEntry& entry = clients_[user];
  entry.client = client;
  entry.password = password;
  entry.associated = false;

  wifi::RadiusPacket request;
  request.code = wifi::RadiusCode::kAccessRequest;
  request.identifier = next_identifier_++;
  request.attributes.user_name = user.value;
  request.attributes.calling_station_id = "02:00:00:00:00:01";
  send_radius(request);
}

void WifiAp::disassociate(const common::Imsi& user) {
  auto it = clients_.find(user);
  if (it == clients_.end()) return;
  if (it->second.associated) {
    send_accounting(user, wifi::AcctStatus::kStop);
    client_by_ip_.erase(it->second.ip);
  }
  clients_.erase(it);
}

void WifiAp::send_accounting(const common::Imsi& user,
                             wifi::AcctStatus status) {
  auto it = clients_.find(user);
  if (it == clients_.end()) return;
  wifi::RadiusPacket acct;
  acct.code = wifi::RadiusCode::kAccountingRequest;
  acct.identifier = next_identifier_++;
  acct.attributes.user_name = user.value;
  acct.attributes.acct_status = status;
  acct.attributes.acct_session_id = config_.name + "/" + user.value;
  acct.attributes.acct_input_octets =
      static_cast<std::uint32_t>(it->second.tx_octets);
  acct.attributes.acct_output_octets =
      static_cast<std::uint32_t>(it->second.rx_octets);
  send_radius(acct);
}

void WifiAp::uplink_data(const common::Imsi& user,
                         datapath::PacketBatch batch) {
  auto it = clients_.find(user);
  if (it == clients_.end() || !it->second.associated || !uplink_sink_) return;
  if (!ul_radio_.allow(batch.bytes(), kernel_.now())) {
    stats_.ul_dropped_radio_bytes += batch.bytes();
    return;
  }
  it->second.tx_octets += batch.bytes();
  stats_.ul_forwarded_bytes += batch.bytes();
  uplink_sink_(std::move(batch));
}

void WifiAp::deliver_downlink(datapath::PacketBatch batch) {
  auto ip_it = client_by_ip_.find(batch.packet.ip.dst);
  if (ip_it == client_by_ip_.end()) return;
  auto it = clients_.find(ip_it->second);
  if (it == clients_.end() || it->second.client == nullptr) return;
  if (!dl_radio_.allow(batch.bytes(), kernel_.now())) {
    stats_.dl_dropped_radio_bytes += batch.bytes();
    return;
  }
  it->second.rx_octets += batch.bytes();
  stats_.dl_delivered_bytes += batch.bytes();
  it->second.client->on_downlink_data(batch);
}

void WifiAp::on_radius(common::Bytes raw) {
  auto decoded = wifi::decode_radius(raw);
  if (!decoded.ok()) return;
  const wifi::RadiusPacket& packet = decoded.value();
  if (!packet.attributes.user_name.has_value()) return;
  const common::Imsi user{*packet.attributes.user_name};
  auto it = clients_.find(user);
  if (it == clients_.end()) return;
  ClientEntry& entry = it->second;

  switch (packet.code) {
    case wifi::RadiusCode::kAccessChallenge: {
      if (!packet.attributes.chap_challenge.has_value()) return;
      // Compute the CHAP digest from the client's credential and answer.
      const crypto::Digest256 digest = crypto::hmac_sha256(
          common::to_bytes(entry.password), *packet.attributes.chap_challenge);
      wifi::RadiusPacket response;
      response.code = wifi::RadiusCode::kAccessRequest;
      response.identifier = next_identifier_++;
      response.attributes.user_name = user.value;
      response.attributes.chap_password =
          common::Bytes(digest.begin(), digest.begin() + 8);
      send_radius(response);
      return;
    }
    case wifi::RadiusCode::kAccessAccept: {
      if (!packet.attributes.framed_ip.has_value()) return;
      entry.associated = true;
      entry.ip = *packet.attributes.framed_ip;
      client_by_ip_[entry.ip] = user;
      ++stats_.associations;
      send_accounting(user, wifi::AcctStatus::kStart);
      if (entry.client != nullptr) {
        entry.client->on_association_result(entry.ip);
      }
      return;
    }
    case wifi::RadiusCode::kAccessReject: {
      ++stats_.association_failures;
      WifiClientLink* client = entry.client;
      clients_.erase(it);
      if (client != nullptr) {
        client->on_association_result(common::Error{
            common::ErrorCode::kUnauthenticated, "Access-Reject"});
      }
      return;
    }
    case wifi::RadiusCode::kAccountingResponse:
      return;
    default:
      return;
  }
}

}  // namespace magma::ran
