// eNodeB model — the LTE base station of the emulated RAN.
//
// Plays the Spirent-Landslide role on the radio side: terminates the
// (abstracted) RRC air interface toward UE models, speaks real S1AP toward
// the AGW's LTE front-end, handles GTP-U encap/decap on the user plane, and
// enforces the radio limits the paper quotes for a typical site: at most 96
// simultaneously active users and a sector capacity of ~126 Mbps over a
// 20 MHz channel (§4.1). The radio is modeled as a shared token bucket per
// direction — when offered load exceeds sector capacity, the radio is the
// bottleneck, which is exactly the regime Figure 5 demonstrates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "datapath/meter.h"
#include "datapath/pipeline.h"
#include "net/channel.h"
#include "proto/lte/s1ap.h"
#include "sim/kernel.h"

namespace magma::ran {

// Interface the eNodeB uses to talk back to an attached UE model.
class EnodeB;
class LteUeLink {
 public:
  virtual ~LteUeLink() = default;
  virtual void on_downlink_nas(common::Bytes nas_pdu) = 0;
  virtual void on_downlink_data(const datapath::PacketBatch& batch) = 0;
  virtual void on_rrc_release() = 0;
  // ECM-IDLE support: delivered to camped UEs when the network pages them.
  virtual void on_paging() {}
  // X2-style handover completed; the UE is now served by `target`.
  virtual void on_handover_complete(EnodeB& target,
                                    std::uint32_t new_enb_ue_id) {
    (void)target;
    (void)new_enb_ue_id;
  }
};

struct EnodebConfig {
  common::RanNodeId id{1};
  std::string name = "enb";
  common::Ipv4 address = common::Ipv4::from_octets(10, 0, 1, 1);
  std::string plmn = "00101";
  std::uint16_t tac = 1;
  // Radio limits (§4.1): 96 active users, ~126 Mbps/20 MHz sector.
  int max_active_ues = 96;
  double dl_capacity_bps = 126e6;
  double ul_capacity_bps = 63e6;
};

struct EnodebStats {
  std::uint64_t rrc_rejects_capacity = 0;
  std::uint64_t dl_delivered_bytes = 0;
  std::uint64_t dl_dropped_radio_bytes = 0;
  std::uint64_t ul_forwarded_bytes = 0;
  std::uint64_t ul_dropped_radio_bytes = 0;
  std::uint64_t unknown_teid_drops = 0;
  std::uint64_t handovers_in = 0;
  std::uint64_t handovers_out = 0;
  std::uint64_t pages_delivered = 0;
  std::uint64_t idle_releases = 0;
};

class EnodeB {
 public:
  EnodeB(sim::Kernel& kernel, EnodebConfig config, net::Channel& s1_channel);

  // S1 Setup toward the AGW. Safe to call once at scenario start.
  void start();
  bool s1_ready() const { return s1_ready_; }

  // Uplink user-plane hand-off to the AGW (set by the topology glue; the
  // eNodeB GTP-encapsulates before calling this).
  void set_uplink_sink(std::function<void(datapath::PacketBatch)> sink) {
    uplink_sink_ = std::move(sink);
  }

  // --- UE-facing (abstracted RRC) ----------------------------------------
  // Returns 0 on capacity rejection, else the assigned enb_ue_s1ap_id.
  std::uint32_t rrc_connect(LteUeLink* ue);
  void rrc_disconnect(std::uint32_t enb_ue_id);
  void send_initial_nas(std::uint32_t enb_ue_id, common::Bytes nas_pdu);
  void send_uplink_nas(std::uint32_t enb_ue_id, common::Bytes nas_pdu);
  // Plain-IP uplink traffic from a UE; encapsulated and forwarded if the
  // UE's bearer is up.
  void uplink_data(std::uint32_t enb_ue_id, datapath::PacketBatch batch);

  // --- idle mode -----------------------------------------------------------
  // UE-inactivity release: asks the core to move the UE to ECM-IDLE (the
  // session survives; the radio context goes away).
  void request_idle_release(std::uint32_t enb_ue_id);
  // Idle UEs camp on a cell to hear paging.
  void camp(const common::Imsi& imsi, LteUeLink* ue);
  void uncamp(const common::Imsi& imsi);

  // --- mobility ---------------------------------------------------------------
  // X2-style handover of an active UE to `target` (same AGW). Returns false
  // if the target rejects (capacity) — the UE stays on this cell.
  bool start_handover(std::uint32_t enb_ue_id, EnodeB& target);
  // Target side: adopt the UE context, allocate a fresh downlink tunnel,
  // and send PathSwitchRequest. Returns the new enb_ue_id (0 = rejected).
  std::uint32_t admit_handover(LteUeLink* ue, std::uint32_t mme_ue_id,
                               common::Teid agw_teid_ul,
                               common::Ipv4 agw_address);

  // --- network-facing ------------------------------------------------------
  // Downlink GTP-U traffic from the AGW, addressed to this eNodeB.
  void deliver_downlink(datapath::PacketBatch batch);

  int active_ues() const { return static_cast<int>(ues_.size()); }
  const EnodebConfig& config() const { return config_; }
  const EnodebStats& stats() const { return stats_; }

 private:
  struct UeEntry {
    LteUeLink* ue = nullptr;
    std::uint32_t mme_ue_id = 0;
    bool has_bearer = false;
    common::Teid agw_teid_ul;   // AGW-side tunnel for uplink
    common::Ipv4 agw_address;
    common::Teid my_teid_dl;    // our tunnel id for downlink
  };

  void on_s1_message(common::Bytes raw);
  void send_s1(const proto::lte::S1apMessage& msg);

  sim::Kernel& kernel_;
  EnodebConfig config_;
  net::Channel& s1_;
  bool s1_ready_ = false;
  std::function<void(datapath::PacketBatch)> uplink_sink_;

  std::unordered_map<std::uint32_t, UeEntry> ues_;  // by enb_ue_id
  std::unordered_map<std::uint32_t, common::Teid> dl_teid_by_mme_id_;
  std::unordered_map<common::Teid, std::uint32_t> ue_by_dl_teid_;
  std::unordered_map<common::Imsi, LteUeLink*> camped_;
  std::uint32_t next_enb_ue_id_ = 1;
  std::uint32_t next_dl_teid_ = 0x1000;

  datapath::TokenBucket dl_radio_;
  datapath::TokenBucket ul_radio_;
  EnodebStats stats_;
};

}  // namespace magma::ran
