#include "ran/scenario.h"

#include <algorithm>
#include <cstdio>

namespace magma::ran {

// ---------------------------------------------------------------------------
// RateSampler
// ---------------------------------------------------------------------------

RateSampler::RateSampler(sim::Kernel& kernel,
                         std::function<std::uint64_t()> counter,
                         sim::Duration interval)
    : kernel_(kernel), counter_(std::move(counter)), interval_(interval) {}

void RateSampler::start() {
  last_ = counter_();
  primed_ = true;
  kernel_.schedule(interval_, [this]() { tick(); });
}

void RateSampler::tick() {
  const std::uint64_t current = counter_();
  const double rate = static_cast<double>(current - last_) /
                      sim::to_seconds(interval_);
  last_ = current;
  series_.push_back(TimelinePoint{kernel_.now_seconds(), rate});
  kernel_.schedule(interval_, [this]() { tick(); });
}

double RateSampler::average(double from_s, double to_s) const {
  return timeline_average(series_, from_s, to_s);
}

double RateSampler::peak() const {
  double best = 0;
  for (const TimelinePoint& p : series_) best = std::max(best, p.value);
  return best;
}

// ---------------------------------------------------------------------------
// CpuSampler
// ---------------------------------------------------------------------------

CpuSampler::CpuSampler(sim::Kernel& kernel, sim::CpuModel& cpu,
                       sim::Duration interval)
    : kernel_(kernel), cpu_(cpu), interval_(interval) {}

void CpuSampler::start() {
  for (int i = 0; i < 2; ++i) last_busy_[i] = cpu_.stats().busy_ns[i];
  kernel_.schedule(interval_, [this]() { tick(); });
}

void CpuSampler::tick() {
  const double window = sim::to_seconds(interval_) * cpu_.config().cores;
  double util[2];
  for (int i = 0; i < 2; ++i) {
    const sim::Duration busy = cpu_.stats().busy_ns[i];
    util[i] = sim::to_seconds(busy - last_busy_[i]) / window;
    last_busy_[i] = busy;
  }
  const double t = kernel_.now_seconds();
  control_.push_back(TimelinePoint{t, util[0]});
  user_.push_back(TimelinePoint{t, util[1]});
  total_.push_back(TimelinePoint{t, util[0] + util[1]});
  kernel_.schedule(interval_, [this]() { tick(); });
}

double CpuSampler::average_total(double from_s, double to_s) const {
  return timeline_average(total_, from_s, to_s);
}

// ---------------------------------------------------------------------------
// GaugeSampler
// ---------------------------------------------------------------------------

GaugeSampler::GaugeSampler(sim::Kernel& kernel, std::function<double()> gauge,
                           sim::Duration interval)
    : kernel_(kernel), gauge_(std::move(gauge)), interval_(interval) {}

void GaugeSampler::start() {
  kernel_.schedule(interval_, [this]() { tick(); });
}

void GaugeSampler::tick() {
  series_.push_back(TimelinePoint{kernel_.now_seconds(), gauge_()});
  kernel_.schedule(interval_, [this]() { tick(); });
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

double timeline_average(const std::vector<TimelinePoint>& series,
                        double from_s, double to_s) {
  double sum = 0;
  int n = 0;
  for (const TimelinePoint& p : series) {
    if (p.t_seconds >= from_s && p.t_seconds < to_s) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0 : sum / n;
}

std::string format_timeline(const std::string& t_label,
                            const std::string& v_label,
                            const std::vector<TimelinePoint>& series,
                            double value_scale, int max_rows) {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "  %12s %14s\n", t_label.c_str(),
                v_label.c_str());
  out += line;
  // Thin the series to at most max_rows evenly spaced rows.
  std::size_t step = 1;
  if (max_rows > 0 && series.size() > static_cast<std::size_t>(max_rows)) {
    step = series.size() / static_cast<std::size_t>(max_rows);
  }
  for (std::size_t i = 0; i < series.size(); i += step) {
    std::snprintf(line, sizeof(line), "  %12.1f %14.2f\n",
                  series[i].t_seconds, series[i].value * value_scale);
    out += line;
  }
  return out;
}

}  // namespace magma::ran
