// Critical-path analysis over a finished span tree.
//
// Given all spans of one trace, decompose the root's wall time into the
// wait states of WaitVector — on-CPU, run-queue, rpc-wait, link-transit,
// timer, other — such that the components sum exactly to the root span's
// duration, and return the dominant-cost edge chain (the child path that
// explains the most time at every level). This is the Dapper/Canopy-style
// answer to "where inside a 900 ms attach did the time go": not which spans
// exist, but which resource each interval of the root was actually spent on.
//
// Attribution rules, applied recursively:
//  * an interval covered by a child span is explained by that child's own
//    decomposition (union coverage, clipped to the parent; overlapping
//    siblings never double-count);
//  * a client span's self-time (the gap around its server child) is
//    link-transit — that is precisely the two one-way network latencies;
//    a client span with no server child (timeout, send failure) is rpc-wait;
//  * any other span's self-time is classified against the wait charges the
//    instrumented layers recorded on it (runq, cpu, timer, rpc, link, in
//    that order), capped by the self-time remaining; what no layer claimed
//    stays `other`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace magma::obs {

// One hop of the dominant-cost chain, root first.
struct CriticalPathEdge {
  std::uint64_t span_id = 0;
  std::string name;
  std::string service;
  std::string node;
  // This span's contribution clipped to its parent (for the root: its full
  // duration).
  sim::Duration duration = 0;
};

struct CriticalPathResult {
  bool valid = false;  // false: no spans / no root found
  std::uint64_t trace_id = 0;
  std::string root_name;
  std::string root_service;
  sim::TimePoint root_start = 0;
  sim::Duration total = 0;  // root span duration
  // Decomposition of `total` by wait state; components (including kOther)
  // sum to `total`.
  WaitVector breakdown{};
  // Sub-classification of the kOther component: the share charged on spans
  // whose boundary samples of the kernel event queue were both non-empty —
  // unattributed time spent behind a backlog of other scheduled work rather
  // than genuinely untracked. Always <= component(kOther).
  sim::Duration other_backlogged = 0;
  // Largest event-queue depth sampled at any span boundary of this trace.
  std::size_t max_queue_depth = 0;
  // Dominant-cost edge chain from the root to a leaf.
  std::vector<CriticalPathEdge> path;

  sim::Duration component(WaitState state) const {
    return breakdown[static_cast<std::size_t>(state)];
  }
};

// Analyze one trace's spans (as returned by Tracer::trace_spans — start
// order, parents before same-instant children). The root is the span with
// parent_span_id == 0; if eviction removed it, the earliest span whose
// parent is absent stands in.
CriticalPathResult critical_path(const std::vector<SpanRecord>& spans);

// Convenience: fetch + analyze.
CriticalPathResult critical_path(const Tracer& tracer, std::uint64_t trace_id);

// "cpu 312.5ms, runq 88.1ms, link 120ms" — for bench output and logs.
std::string describe_breakdown(const WaitVector& breakdown);

}  // namespace magma::obs
