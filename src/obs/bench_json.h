// Flat-number JSON reading + bench regression comparison.
//
// The bench trajectory (BENCH_host.json, BENCH_fleet.json, ...) is a series
// of small JSON files with stable keys; the release-over-release gate the
// ROADMAP asks for is "did any priced metric regress by more than X%". This
// is the shared logic behind `bench/bench_compare` and the schema check the
// microbench runs on its own output — library code so tests can drive it
// with synthetic documents instead of spawning binaries.
//
// The parser understands exactly what the emitters write: objects, strings,
// numbers, booleans and null, arbitrarily nested. Every numeric field is
// flattened to a dotted path ("host.boot_alloc_bytes_per_agw"); everything
// else is skipped. Malformed input is an error, not a crash — the files
// cross release boundaries and a truncated artifact must fail loudly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace magma::obs {

// Flatten every numeric field of `text` (a JSON object) into
// dotted-path -> value. Arrays are not supported (no emitter writes them);
// a document containing one is rejected.
common::Result<std::map<std::string, double>> flatten_json_numbers(
    const std::string& text);

// One metric compared across two bench runs.
struct BenchDelta {
  std::string key;
  double before = 0;
  double after = 0;
  // after/before - 1: positive means the metric grew.
  double change = 0;
};

struct BenchCompareResult {
  bool ok = true;                       // no cost metric regressed
  std::vector<BenchDelta> regressions;  // cost metrics worse by > threshold
  std::vector<BenchDelta> improvements; // cost metrics better by > threshold
  std::vector<std::string> notes;       // keys present on one side only
  std::size_t compared = 0;             // cost metrics present on both sides
};

// True when `key` names a priced cost metric where larger is worse: the
// suffixes the BENCH emitters use for wall time and allocation cost
// (..._ns, ..._ms, ..._allocs, ..._alloc_bytes, ..._bytes_per_op).
// Counters like `delta_pushes` deliberately do not match — growth there is
// workload, not regression.
bool is_cost_metric_key(const std::string& key);

// Gate tuning. The defaults reproduce the original two-sided percentage
// diff; the allocation-regression wall tightens them:
//  * `suffix` restricts the gate to cost keys with that ending ("_allocs"
//    gates heap traffic only, ignoring wall-clock noise);
//  * `slack` is an absolute allowance added to the bound — a metric
//    regresses when after > before * (1 + threshold) + slack;
//  * `strict_from_zero` turns a metric appearing from zero (before == 0,
//    after > slack) into a regression instead of a note. This is the whole
//    point of the alloc wall: a pooled path quietly re-growing from 0 to 1
//    allocation per op is exactly the bug percentages can never catch.
struct BenchCompareOptions {
  double threshold = 0.15;
  double slack = 0.0;
  std::string suffix;
  bool strict_from_zero = false;
};

// Compare two flattened bench documents. A cost metric regresses when
// after > before * (1 + threshold) (with before == 0 treated as regression
// only if after > 0 and threshold < infinity is irrelevant — a metric
// appearing from zero is reported as a note, not a failure). Keys present
// on only one side are notes: schemas may grow between releases.
BenchCompareResult bench_compare(const std::map<std::string, double>& before,
                                 const std::map<std::string, double>& after,
                                 double threshold);
// Options form: suffix filtering, absolute slack, strict from-zero gating.
BenchCompareResult bench_compare(const std::map<std::string, double>& before,
                                 const std::map<std::string, double>& after,
                                 const BenchCompareOptions& options);

// Human-readable report (one line per regression/improvement/note).
std::string format_bench_compare(const BenchCompareResult& result,
                                 double threshold);

}  // namespace magma::obs
