// Chrome trace_event JSON export for Tracer spans.
//
// export_chrome_trace() serializes finished spans into the Trace Event
// Format ("X" complete events plus "M" process/thread metadata) so any
// simulated run can be loaded into chrome://tracing or Perfetto: nodes
// (gateways, orc8r) map to processes, services to threads, and the span
// tree of one attach reads as a flame chart with the backhaul gap visible
// between RPC client and server slices.
#pragma once

#include <string>

#include "obs/trace.h"

namespace magma::obs {

// JSON document {"traceEvents": [...], "displayTimeUnit": "ms"}.
// `trace_id` filters to one trace; 0 exports every finished span.
std::string export_chrome_trace(const Tracer& tracer,
                                std::uint64_t trace_id = 0);

}  // namespace magma::obs
