#include "obs/chrome_trace.h"

#include <cstdio>
#include <map>
#include <sstream>

namespace magma::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Microseconds with nanosecond remainder kept as decimals — the trace
// viewer's native unit, without rounding away sub-µs sim precision.
std::string micros(sim::TimePoint t) {
  const std::int64_t whole = t / 1000;
  const std::int64_t frac = t % 1000;
  std::ostringstream out;
  out << whole;
  if (frac != 0) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), ".%03lld",
                  static_cast<long long>(frac));
    out << buf;
  }
  return out.str();
}

}  // namespace

std::string export_chrome_trace(const Tracer& tracer, std::uint64_t trace_id) {
  // Stable pid/tid assignment: nodes and (node, service) pairs in sorted
  // order, so identical runs export identical JSON.
  std::map<std::string, int> pids;
  std::map<std::pair<std::string, std::string>, int> tids;
  for (const SpanRecord& span : tracer.finished()) {
    if (trace_id != 0 && span.trace_id != trace_id) continue;
    pids.emplace(span.node, 0);
    tids.emplace(std::make_pair(span.node, span.service), 0);
  }
  int next_pid = 1;
  for (auto& [node, pid] : pids) pid = next_pid++;
  int next_tid = 1;
  for (auto& [key, tid] : tids) tid = next_tid++;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&]() {
    if (!first) out += ',';
    first = false;
  };

  for (const auto& [node, pid] : pids) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(pid) + ",\"args\":{\"name\":";
    append_json_string(out, node);
    out += "}}";
  }
  for (const auto& [key, tid] : tids) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(pids[key.first]) +
           ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":";
    append_json_string(out, key.second);
    out += "}}";
  }

  for (const SpanRecord& span : tracer.finished()) {
    if (trace_id != 0 && span.trace_id != trace_id) continue;
    comma();
    out += "{\"ph\":\"X\",\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":";
    append_json_string(out, span_kind_name(span.kind));
    out += ",\"pid\":" + std::to_string(pids[span.node]);
    out += ",\"tid\":" + std::to_string(tids[{span.node, span.service}]);
    out += ",\"ts\":" + micros(span.start);
    out += ",\"dur\":" + micros(span.duration());
    out += ",\"args\":{\"trace_id\":" + std::to_string(span.trace_id);
    out += ",\"span_id\":" + std::to_string(span.span_id);
    out += ",\"parent_span_id\":" + std::to_string(span.parent_span_id);
    if (span.error) out += ",\"error\":true";
    // Wait-state vector: where this span's time went while it was open
    // (ms, matching displayTimeUnit). Zero entries are elided.
    for (std::size_t i = 0; i < kWaitStateCount; ++i) {
      if (span.wait_ns[i] <= 0) continue;
      char buf[48];
      std::snprintf(buf, sizeof(buf), ",\"wait_%s_ms\":%.6f",
                    wait_state_name(static_cast<WaitState>(i)),
                    1e3 * sim::to_seconds(span.wait_ns[i]));
      out += buf;
    }
    if (!span.links.empty()) {
      // Span links as "trace:span" pairs — enough to jump to the linked
      // trace in the viewer's args panel.
      std::string links;
      for (const TraceContext& l : span.links) {
        if (!links.empty()) links += ' ';
        links += std::to_string(l.trace_id) + ':' + std::to_string(l.span_id);
      }
      out += ",\"links\":";
      append_json_string(out, links);
    }
    for (const auto& [key, value] : span.tags) {
      out += ',';
      append_json_string(out, key);
      out += ':';
      append_json_string(out, value);
    }
    out += "}}";
  }

  out += "]}";
  return out;
}

}  // namespace magma::obs
