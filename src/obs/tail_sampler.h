// Tail-based trace sampling (PAPERS.md: Kaldor et al., Canopy).
//
// Error-pinning keeps failed traces, but the slow-yet-successful attach — the
// one an operator actually wants to open — ages out of the finished ring
// behind a flood of fast traces. A TailSampler watches root spans finish and
// keeps the K *slowest* completed traces per root operation per time window,
// pinning them in the tracer's ring (Tracer::pin) so eviction passes over
// them, and unpinning whichever trace a slower arrival displaces.
//
// When a window closes (lazily: on the first root of a later window, or on
// drain), each kept trace is reduced to a TraceSummary — root op, duration,
// critical-path breakdown — and queued for magmad to ship on the metrics
// tick. metricsd aggregates the summaries into the fleet-wide "where does
// attach latency go" table. Traces already pinned for error are never
// counted against K: they are retained regardless, and spending tail budget
// on them would shadow the slow-but-successful traces this exists to keep.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/trace.h"
#include "sim/kernel.h"
#include "sim/time.h"

namespace magma::obs {

// What survives of a sampled trace once its spans leave the ring: enough to
// aggregate fleet-wide latency attribution, nothing more.
struct TraceSummary {
  std::string root_op;       // root span name, e.g. "attach"
  std::string root_service;  // root span service, e.g. "lte_frontend"
  std::string gateway_id;    // node the root ran on
  std::uint64_t trace_id = 0;
  sim::TimePoint start = 0;
  sim::Duration duration = 0;
  // Critical-path decomposition of `duration` (see obs/critical_path.h).
  WaitVector breakdown{};
};

// Wire codec (shipped magmad -> metricsd, best-effort). Same contract as
// the gateway-status codec: reject truncation, trailing garbage, and
// hostile lengths; never trust a wire count for an allocation.
common::Bytes encode_trace_summaries(const std::vector<TraceSummary>& summaries);
common::Result<std::vector<TraceSummary>> decode_trace_summaries(
    common::BytesView data);

struct TailSamplerConfig {
  std::size_t keep_per_op = 4;                 // K slowest per root op
  sim::Duration window = 30 * sim::kSecond;    // 0: one unbounded window
  std::size_t max_ops_per_window = 64;         // distinct root ops tracked
  std::size_t max_ready = 256;                 // summaries awaiting shipping
};

struct TailSamplerStats {
  std::uint64_t roots_seen = 0;
  std::uint64_t kept = 0;       // accepted into the top-K (incl. displacers)
  std::uint64_t displaced = 0;  // keeps later pushed out by slower traces
  std::uint64_t skipped_error_pinned = 0;
  std::uint64_t skipped_op_cap = 0;
  std::uint64_t windows_closed = 0;
  std::uint64_t ready_dropped = 0;  // summaries lost to the ready cap
  std::uint64_t budget_trims = 0;   // keeps dropped by a shrinking budget
};

class TailSampler {
 public:
  TailSampler(sim::Kernel& kernel, Tracer& tracer,
              TailSamplerConfig config = {});
  ~TailSampler();
  TailSampler(const TailSampler&) = delete;
  TailSampler& operator=(const TailSampler&) = delete;

  // Only sample root spans emitted by this node (a gateway samples its own
  // traces, not its neighbors' on the shared tracer). Empty: sample all.
  void set_node_filter(std::string node) { node_filter_ = std::move(node); }

  // Fleet-wide keep budget: the orchestrator assigns each gateway a
  // keep-per-op K on checkin (budget / fleet size), so total trace ingest
  // stays bounded as the fleet grows. Shrinking K trims the current
  // window's fastest keeps immediately (unpinned, counted in budget_trims);
  // growing K takes effect as new roots finish. Clamped to >= 1.
  void set_keep_per_op(std::size_t k);
  std::size_t keep_per_op() const { return config_.keep_per_op; }

  // Summaries of all closed windows, destructively. Closes the current
  // window first if its time has fully passed (so an idle gateway still
  // ships what it kept).
  std::vector<TraceSummary> drain_ready();

  std::size_t held() const;  // traces pinned in the current window
  std::size_t ready() const { return ready_.size(); }
  const TailSamplerStats& stats() const { return stats_; }

 private:
  struct Kept {
    std::uint64_t trace_id = 0;
    sim::TimePoint start = 0;
    sim::Duration duration = 0;
    std::string service;
    std::string node;
  };

  void on_finish(const SpanRecord& span);
  // Summarize + unpin everything kept in the current window.
  void close_current_window();

  sim::Kernel& kernel_;
  Tracer& tracer_;
  TailSamplerConfig config_;
  std::string node_filter_;
  std::int64_t window_index_ = -1;  // -1: nothing sampled yet
  std::map<std::string, std::vector<Kept>> kept_;  // root op -> top-K
  std::deque<TraceSummary> ready_;
  TailSamplerStats stats_;
  std::uint64_t hook_id_ = 0;
};

}  // namespace magma::obs
