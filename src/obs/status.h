// Service303-style status registry — the per-service introspection plane.
//
// Real Magma exposes a common "Service303" gRPC interface on every service
// (magmad polls it to supervise the gateway, and the orchestrator's statusd
// aggregates it per device). This is the simulator's equivalent: every AGW
// and orc8r service registers with its host's StatusRegistry and keeps a
// small ServiceStatus current — uptime, state-machine phase, per-RPC
// request/error/deadline counters, and the last error seen. magmad snapshots
// the registry into each periodic checkin; orc8r::Statusd consumes the
// snapshots and drives the gateway health state machine.
//
// The handle model mirrors the Tracer* convention: services hold a
// `Service303*` that is null in unit tests, and call through the null-safe
// free helpers so instrumentation costs nothing when unwired.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "sim/kernel.h"
#include "sim/time.h"

namespace magma::obs {

struct ServiceStatus {
  std::string service;
  std::string phase = "running";  // service-defined state-machine phase
  sim::Duration uptime = 0;       // filled at snapshot time
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t deadlines = 0;  // RPCs abandoned on deadline
  std::string last_error;
  sim::TimePoint last_error_time = -1;  // -1: never errored
};

// Checkin payload codec: the vector of service statuses magmad ships inside
// each heartbeat. Fail-soft like every other wire codec (fuzzed in
// tests/fuzz_codec_test.cpp).
common::Bytes encode_gateway_status(const std::vector<ServiceStatus>& services);
common::Result<std::vector<ServiceStatus>> decode_gateway_status(
    common::BytesView data);

// The per-service handle. Obtained from (and owned by) a StatusRegistry;
// addresses are stable for the registry's lifetime.
class Service303 {
 public:
  void set_phase(std::string phase) { status_.phase = std::move(phase); }
  void count_request(std::uint64_t n = 1) { status_.requests += n; }
  void count_error(std::string_view message) {
    ++status_.errors;
    status_.last_error.assign(message);
    status_.last_error_time = kernel_.now();
  }
  void count_deadline() { ++status_.deadlines; }
  const ServiceStatus& status() const { return status_; }

 private:
  friend class StatusRegistry;
  Service303(sim::Kernel& kernel, std::string service)
      : kernel_(kernel), registered_at_(kernel.now()) {
    status_.service = std::move(service);
  }

  sim::Kernel& kernel_;
  sim::TimePoint registered_at_;
  ServiceStatus status_;
};

class StatusRegistry {
 public:
  explicit StatusRegistry(sim::Kernel& kernel) : kernel_(kernel) {}
  StatusRegistry(const StatusRegistry&) = delete;
  StatusRegistry& operator=(const StatusRegistry&) = delete;

  // Idempotent: registering the same name twice returns the same handle
  // (a restored service keeps its counters — uptime measures the registry
  // entry, the paper's "process supervised since").
  Service303& register_service(const std::string& service);

  // Statuses in name order, with uptimes computed as of now.
  std::vector<ServiceStatus> snapshot() const;
  const Service303* find(const std::string& service) const;
  std::size_t size() const { return services_.size(); }

 private:
  sim::Kernel& kernel_;
  // unique_ptr: handle addresses must survive rehash/insert.
  std::map<std::string, std::unique_ptr<Service303>> services_;
};

// Null-safe helpers (the instrumentation sites' API).
inline void svc_phase(Service303* s, std::string phase) {
  if (s != nullptr) s->set_phase(std::move(phase));
}
inline void svc_request(Service303* s, std::uint64_t n = 1) {
  if (s != nullptr) s->count_request(n);
}
inline void svc_error(Service303* s, std::string_view message) {
  if (s != nullptr) s->count_error(message);
}
inline void svc_deadline(Service303* s) {
  if (s != nullptr) s->count_deadline();
}

}  // namespace magma::obs
