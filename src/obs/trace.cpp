#include "obs/trace.h"

#include <algorithm>
#include <tuple>

namespace magma::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kInternal: return "internal";
    case SpanKind::kClient: return "client";
    case SpanKind::kServer: return "server";
  }
  return "?";
}

const char* wait_state_name(WaitState state) {
  switch (state) {
    case WaitState::kCpu: return "cpu";
    case WaitState::kRunq: return "runq";
    case WaitState::kRpcWait: return "rpc_wait";
    case WaitState::kLinkTransit: return "link_transit";
    case WaitState::kTimer: return "timer";
    case WaitState::kOther: return "other";
  }
  return "?";
}

TraceContext Tracer::begin(std::string name, std::string service,
                           std::string node, SpanKind kind,
                           TraceContext parent) {
  if (!parent.valid()) parent = current_;

  SpanRecord span;
  span.trace_id = parent.valid() ? parent.trace_id : next_trace_id_++;
  span.span_id = next_span_id_++;
  span.parent_span_id = parent.valid() ? parent.span_id : 0;
  span.kind = kind;
  span.name = std::move(name);
  span.service = std::move(service);
  span.node = std::move(node);
  span.start = kernel_.now();
  span.queue_depth_open = kernel_.pending_events();
  ++spans_started_;

  const TraceContext ctx{span.trace_id, span.span_id};
  open_.emplace(span.span_id, std::move(span));
  return ctx;
}

void Tracer::tag(TraceContext span, std::string key, std::string value) {
  auto it = open_.find(span.span_id);
  if (it == open_.end() || it->second.trace_id != span.trace_id) return;
  if (key == "error") it->second.error = true;
  it->second.tags.emplace_back(std::move(key), std::move(value));
}

void Tracer::add_wait(TraceContext span, WaitState state,
                      sim::Duration amount) {
  if (amount <= 0) return;
  auto it = open_.find(span.span_id);
  if (it == open_.end() || it->second.trace_id != span.trace_id) return;
  it->second.wait_ns[static_cast<std::size_t>(state)] += amount;
}

void Tracer::link(TraceContext span, TraceContext target) {
  if (!target.valid()) return;
  auto it = open_.find(span.span_id);
  if (it == open_.end() || it->second.trace_id != span.trace_id) return;
  it->second.links.push_back(target);
}

void Tracer::end(TraceContext span) {
  auto it = open_.find(span.span_id);
  if (it == open_.end() || it->second.trace_id != span.trace_id) return;
  SpanRecord record = std::move(it->second);
  open_.erase(it);
  record.end = kernel_.now();
  record.queue_depth_close = kernel_.pending_events();
  ++spans_finished_;

  if (record.error) pin_trace(record.trace_id);
  finished_.push_back(record);
  evict_over_retention();
  // Iterate by index: a hook may add/remove hooks while running.
  for (std::size_t i = 0; i < hooks_.size(); ++i) {
    if (hooks_[i].second) hooks_[i].second(record);
  }
}

std::uint64_t Tracer::add_finish_hook(FinishHook hook) {
  const std::uint64_t id = next_hook_id_++;
  hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Tracer::remove_finish_hook(std::uint64_t id) {
  std::erase_if(hooks_, [id](const auto& kv) { return kv.first == id; });
}

void Tracer::set_retention(std::size_t max_finished) {
  max_finished_ = max_finished;
  evict_over_retention();
}

void Tracer::set_max_pinned_traces(std::size_t max_pinned) {
  max_pinned_traces_ = max_pinned;
  while (pinned_.size() > max_pinned_traces_ && !pin_order_.empty()) {
    pinned_.erase(pin_order_.front());
    pin_order_.pop_front();
  }
}

void Tracer::pin_trace(std::uint64_t trace_id) {
  if (max_pinned_traces_ == 0 || pinned_.count(trace_id) != 0) return;
  pinned_.insert(trace_id);
  pin_order_.push_back(trace_id);
  // Error storm: release the oldest pin rather than growing without bound
  // (its spans become ordinary eviction candidates again).
  while (pinned_.size() > max_pinned_traces_) {
    pinned_.erase(pin_order_.front());
    pin_order_.pop_front();
  }
}

void Tracer::evict_over_retention() {
  while (finished_.size() > max_finished_) {
    if (!pinned_.empty() || !tail_pinned_.empty()) {
      // Oldest span of an *unpinned* trace goes first. Pinned spans at the
      // front rotate to the back instead of being scanned past every call:
      // long-lived pins (exemplars hold theirs for a whole metrics window)
      // would otherwise make each eviction a linear walk plus a mid-deque
      // erase. Rotation is O(1) amortized — each pinned span moves once
      // per eviction round, and consumers order by start time, not deque
      // position. The rotation budget covers the everything-pinned case:
      // after a full lap the size bound still wins and the front drops.
      std::size_t rotations = finished_.size();
      while (rotations-- > 0 && trace_pinned(finished_.front().trace_id)) {
        finished_.push_back(std::move(finished_.front()));
        finished_.pop_front();
      }
    }
    finished_.pop_front();
    ++spans_dropped_;
  }
}

std::vector<SpanRecord> Tracer::trace_spans(std::uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (const SpanRecord& span : finished_) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  // span_id tie-break: ids are allocated sequentially, so spans begun at the
  // same instant still come out in begin order (parents before children).
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return std::tie(a.start, a.span_id) <
                            std::tie(b.start, b.span_id);
                   });
  return out;
}

}  // namespace magma::obs
