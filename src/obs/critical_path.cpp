#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace magma::obs {

namespace {

using ChildIndex =
    std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>>;

void add_into(WaitVector& into, const WaitVector& from) {
  for (std::size_t i = 0; i < kWaitStateCount; ++i) into[i] += from[i];
}

void charge(WaitVector& v, WaitState state, sim::Duration amount) {
  if (amount > 0) v[static_cast<std::size_t>(state)] += amount;
}

// True when both boundary samples of the kernel event queue were non-empty:
// the span opened and closed behind a backlog, so its unattributed self-time
// was most plausibly spent waiting out other scheduled work.
bool span_backlogged(const SpanRecord& span) {
  return std::min(span.queue_depth_open, span.queue_depth_close) > 0;
}

// Decompose `span.duration()` into a WaitVector that sums to it exactly.
// `other_backlogged` accumulates the kOther charges made on backlogged spans
// (sub-classification; the caller caps it at the final kOther component).
WaitVector walk(const SpanRecord& span, const ChildIndex& children,
                ChildIndex::mapped_type const* root_orphans,
                sim::Duration& other_backlogged) {
  WaitVector out{};
  const sim::Duration total = span.duration();
  if (total <= 0) return out;

  // Union coverage by children, clipped to the span and swept in start
  // order so overlapping siblings are not double-counted. Children are
  // scaled when the clip truncates them (rare: a child out-living its
  // parent) so the invariant survives.
  sim::Duration covered = 0;
  sim::TimePoint cursor = span.start;
  auto it = children.find(span.span_id);
  const std::vector<const SpanRecord*>* kids =
      it != children.end() ? &it->second : nullptr;
  const SpanRecord* server_child = nullptr;
  if (kids != nullptr) {
    for (const SpanRecord* child : *kids) {
      if (child->kind == SpanKind::kServer) server_child = child;
      const sim::TimePoint s = std::max(child->start, cursor);
      const sim::TimePoint e = std::min(child->end, span.end);
      const sim::Duration clipped = e - s;
      if (clipped <= 0) continue;
      WaitVector sub = walk(*child, children, nullptr, other_backlogged);
      const sim::Duration child_total = child->duration();
      if (child_total > clipped) {
        // Clip truncated this child: scale its decomposition down so the
        // parent still sums exactly (remainder goes to the largest term).
        WaitVector scaled{};
        sim::Duration assigned = 0;
        std::size_t largest = 0;
        for (std::size_t i = 0; i < kWaitStateCount; ++i) {
          scaled[i] = sub[i] * clipped / child_total;
          assigned += scaled[i];
          if (scaled[i] > scaled[largest]) largest = i;
        }
        scaled[largest] += clipped - assigned;
        sub = scaled;
      }
      add_into(out, sub);
      covered += clipped;
      cursor = std::max(cursor, e);
    }
  }
  // The root also absorbs orphans: spans whose parent was evicted from the
  // ring still belong to this trace's timeline (best-effort; only
  // non-overlapping tail coverage is counted).
  if (root_orphans != nullptr) {
    for (const SpanRecord* orphan : *root_orphans) {
      if (orphan->span_id == span.span_id) continue;
      const sim::TimePoint s = std::max(orphan->start, cursor);
      const sim::TimePoint e = std::min(orphan->end, span.end);
      if (e <= s) continue;
      WaitVector sub = walk(*orphan, children, nullptr, other_backlogged);
      add_into(out, sub);
      covered += e - s;
      cursor = std::max(cursor, e);
    }
  }

  sim::Duration self = total - covered;
  if (self <= 0) return out;

  if (span.kind == SpanKind::kClient) {
    // The gap around a server child is the round trip on the wire; with no
    // server child the whole call was spent waiting on an RPC that never
    // produced a server span (timeout, send failure, lost response).
    charge(out,
           server_child != nullptr ? WaitState::kLinkTransit
                                   : WaitState::kRpcWait,
           self);
    return out;
  }

  // Classify self-time against the span's recorded wait charges. Charges
  // may overlap child coverage (e.g. a traced CPU task emits a child span
  // covering the same interval the scheduler charged as kCpu), so each
  // state is capped by the self-time still unexplained.
  static constexpr WaitState kOrder[] = {
      WaitState::kRunq, WaitState::kCpu, WaitState::kTimer,
      WaitState::kRpcWait, WaitState::kLinkTransit};
  for (const WaitState state : kOrder) {
    if (self <= 0) break;
    const sim::Duration claimed = std::min(self, span.wait(state));
    charge(out, state, claimed);
    self -= claimed;
  }
  charge(out, WaitState::kOther, self);
  if (self > 0 && span_backlogged(span)) other_backlogged += self;
  return out;
}

}  // namespace

CriticalPathResult critical_path(const std::vector<SpanRecord>& spans) {
  CriticalPathResult result;
  if (spans.empty()) return result;

  std::unordered_set<std::uint64_t> ids;
  ids.reserve(spans.size());
  for (const SpanRecord& s : spans) ids.insert(s.span_id);

  ChildIndex children;
  const SpanRecord* root = nullptr;
  std::vector<const SpanRecord*> orphans;  // parent evicted, not the root
  for (const SpanRecord& s : spans) {
    if (s.parent_span_id == 0) {
      if (root == nullptr) root = &s;
    } else if (ids.count(s.parent_span_id) != 0) {
      children[s.parent_span_id].push_back(&s);
    } else {
      orphans.push_back(&s);
    }
  }
  if (root == nullptr) {
    // Ring eviction took the root; the earliest orphan stands in.
    if (orphans.empty()) return result;
    root = orphans.front();
  }

  result.valid = true;
  result.trace_id = root->trace_id;
  result.root_name = root->name;
  result.root_service = root->service;
  result.root_start = root->start;
  result.total = root->duration();
  result.breakdown = walk(*root, children, &orphans, result.other_backlogged);
  // Scaled clips can leave the accumulator slightly above the final kOther
  // component; clamp so the sub-classification stays a true subset.
  result.other_backlogged =
      std::min(result.other_backlogged, result.component(WaitState::kOther));
  for (const SpanRecord& s : spans) {
    result.max_queue_depth = std::max(
        result.max_queue_depth, std::max(s.queue_depth_open,
                                         s.queue_depth_close));
  }

  // Dominant-cost chain: at every level follow the child with the largest
  // clipped contribution.
  const SpanRecord* at = root;
  sim::Duration contribution = root->duration();
  while (at != nullptr) {
    result.path.push_back(CriticalPathEdge{at->span_id, at->name, at->service,
                                           at->node, contribution});
    auto it = children.find(at->span_id);
    if (it == children.end()) break;
    const SpanRecord* best = nullptr;
    sim::Duration best_clipped = 0;
    for (const SpanRecord* child : it->second) {
      const sim::Duration clipped = std::min(child->end, at->end) -
                                    std::max(child->start, at->start);
      if (best == nullptr || clipped > best_clipped) {
        best = child;
        best_clipped = clipped;
      }
    }
    at = best;
    contribution = best_clipped;
  }
  return result;
}

CriticalPathResult critical_path(const Tracer& tracer,
                                 std::uint64_t trace_id) {
  return critical_path(tracer.trace_spans(trace_id));
}

std::string describe_breakdown(const WaitVector& breakdown) {
  std::string out;
  for (std::size_t i = 0; i < kWaitStateCount; ++i) {
    if (breakdown[i] <= 0) continue;
    if (!out.empty()) out += ", ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %.3fms",
                  wait_state_name(static_cast<WaitState>(i)),
                  sim::to_seconds(breakdown[i]) * 1e3);
    out += buf;
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace magma::obs
