// Cardinality-bounded per-subscriber telemetry (§3.1 / §4.3.1: operators
// debug *subscribers* — "why do attaches fail for these IMSIs?" — but
// per-IMSI time series at fleet scale would explode metricsd cardinality).
//
// Two classic streaming summaries make the subscriber axis affordable:
//
//  * SpaceSaving (Metwally et al., "Efficient computation of frequent and
//    top-k elements in data streams") keeps exactly K counters no matter
//    how many distinct IMSIs flow through. Every estimate is an upper
//    bound; each counter carries its maximum overestimate explicitly, so a
//    report can say "IMSI X: ≥ 412 attach failures (±3)" instead of a
//    number of unknown quality.
//
//  * HyperLogLog (Flajolet et al.) answers "how many distinct IMSIs were
//    active?" in 2^p bytes with ~1.04/sqrt(2^p) relative error — no
//    million-entry set on the gateway or in metricsd.
//
// Both are *mergeable* (Agarwal et al., "Mergeable summaries"): gateways
// ship their local summaries on the magmad metrics tick and metricsd folds
// them into a fleet-wide answer whose error bounds are the sum of the
// parts' — the same shape as histogram shipping, O(K + 2^p) per gateway
// regardless of subscriber count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace magma::obs::sketch {

// One SpaceSaving counter. `count` is an upper bound on the key's true
// weight; `count - error` is a guaranteed lower bound (error is the counter
// value the key inherited when it evicted the previous minimum, plus
// whatever merges added). `exemplar_trace_id` is the trace of one recent
// contributing event (0: none) — the metrics→trace pivot for "show me one
// failed attach from this IMSI".
struct HeavyHitter {
  std::string key;
  std::uint64_t count = 0;
  std::uint64_t error = 0;
  std::uint64_t exemplar_trace_id = 0;
};

class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity = 64);

  // Add `weight` to `key`'s counter. When the table is full, the minimum
  // counter is evicted and `key` inherits its count as error (the classic
  // SpaceSaving step — the evicted key's weight can never be lost, only
  // re-attributed with an explicit bound).
  void offer(const std::string& key, std::uint64_t weight = 1,
             std::uint64_t exemplar_trace_id = 0);

  // Counters sorted by count descending (ties: key ascending, so reports
  // are deterministic). k == 0 returns all.
  std::vector<HeavyHitter> top(std::size_t k = 0) const;

  // Fold `other` into this sketch. A key absent from one side could still
  // have been seen up to that side's min-count times (it may have been
  // evicted), so absent keys contribute the other sketch's min_count() to
  // both the estimate and the error — the bound stays sound, and the
  // merged sketch keeps the top `capacity` counters.
  void merge(const SpaceSaving& other);

  // The smallest counter value when full (0 while under capacity): the
  // maximum weight any *unseen* key could have accumulated.
  std::uint64_t min_count() const;

  std::uint64_t total_weight() const { return total_weight_; }
  std::size_t size() const { return heap_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool contains(const std::string& key) const {
    return index_.count(key) != 0;
  }

  // Approximate heap footprint — what the scaleout bench asserts is
  // O(capacity), independent of how many distinct keys were offered.
  std::size_t memory_bytes() const;

  void assign(std::size_t capacity, std::vector<HeavyHitter> entries,
              std::uint64_t total_weight);

 private:
  void bubble_up(std::size_t i);
  void bubble_down(std::size_t i);

  std::size_t capacity_;
  // Min-heap on count: heap_[0] is the eviction candidate. K is small
  // (tens), so O(log K) heap fixups beat a balanced tree's pointer churn.
  std::vector<HeavyHitter> heap_;
  std::unordered_map<std::string, std::size_t> index_;  // key -> heap slot
  std::uint64_t total_weight_ = 0;
};

// HyperLogLog distinct counter over string keys (IMSIs). Precision p gives
// 2^p one-byte registers and ~1.04/sqrt(2^p) standard error: p=12 is 4 KiB
// for ~1.6% — a million active subscribers counted in a page of memory.
class HyperLogLog {
 public:
  explicit HyperLogLog(unsigned precision = 12);

  void add(std::string_view key);
  // Harmonic-mean estimate with the standard small-range (linear counting)
  // correction.
  double estimate() const;
  // Register-wise max: the merged estimate covers the union of both
  // streams (lossless — HLL merge introduces no additional error).
  void merge(const HyperLogLog& other);

  unsigned precision() const { return precision_; }
  const std::vector<std::uint8_t>& registers() const { return registers_; }
  void assign(unsigned precision, std::vector<std::uint8_t> registers);
  std::size_t memory_bytes() const { return registers_.size(); }

 private:
  unsigned precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace magma::obs::sketch
