#include "obs/sketch/sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bytes.h"

namespace magma::obs::sketch {

namespace {

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  return a > std::numeric_limits<std::uint64_t>::max() - b
             ? std::numeric_limits<std::uint64_t>::max()
             : a + b;
}

}  // namespace

SpaceSaving::SpaceSaving(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  heap_.reserve(capacity_);
}

void SpaceSaving::bubble_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (heap_[parent].count <= heap_[i].count) break;
    std::swap(heap_[parent], heap_[i]);
    index_[heap_[parent].key] = parent;
    index_[heap_[i].key] = i;
    i = parent;
  }
}

void SpaceSaving::bubble_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && heap_[l].count < heap_[smallest].count) smallest = l;
    if (r < n && heap_[r].count < heap_[smallest].count) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[smallest], heap_[i]);
    index_[heap_[smallest].key] = smallest;
    index_[heap_[i].key] = i;
    i = smallest;
  }
}

void SpaceSaving::offer(const std::string& key, std::uint64_t weight,
                        std::uint64_t exemplar_trace_id) {
  if (weight == 0) return;
  total_weight_ = saturating_add(total_weight_, weight);
  auto it = index_.find(key);
  if (it != index_.end()) {
    HeavyHitter& h = heap_[it->second];
    h.count = saturating_add(h.count, weight);
    if (exemplar_trace_id != 0) h.exemplar_trace_id = exemplar_trace_id;
    bubble_down(it->second);
    return;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back({key, weight, 0, exemplar_trace_id});
    index_[key] = heap_.size() - 1;
    bubble_up(heap_.size() - 1);
    return;
  }
  // Full: the minimum counter is re-labelled as `key`, which inherits its
  // count as explicit error. The table never grows past capacity.
  HeavyHitter& min = heap_[0];
  index_.erase(min.key);
  const std::uint64_t inherited = min.count;
  min.key = key;
  min.error = inherited;
  min.count = saturating_add(inherited, weight);
  min.exemplar_trace_id = exemplar_trace_id;
  index_[key] = 0;
  bubble_down(0);
}

std::vector<HeavyHitter> SpaceSaving::top(std::size_t k) const {
  std::vector<HeavyHitter> out = heap_;
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

std::uint64_t SpaceSaving::min_count() const {
  if (heap_.size() < capacity_) return 0;
  return heap_.empty() ? 0 : heap_[0].count;
}

void SpaceSaving::merge(const SpaceSaving& other) {
  const std::uint64_t my_min = min_count();
  const std::uint64_t other_min = other.min_count();
  // Union of counters. A key present on only one side may have been seen —
  // and evicted — on the other, up to that side's min_count; fold that in
  // as both count and error so estimates stay upper bounds and `count -
  // error` stays a valid lower bound.
  std::unordered_map<std::string, HeavyHitter> merged;
  merged.reserve(heap_.size() + other.heap_.size());
  for (const HeavyHitter& h : heap_) merged.emplace(h.key, h);
  for (const HeavyHitter& h : other.heap_) {
    auto it = merged.find(h.key);
    if (it != merged.end()) {
      HeavyHitter& m = it->second;
      m.count = saturating_add(m.count, h.count);
      m.error = saturating_add(m.error, h.error);
      if (m.exemplar_trace_id == 0) m.exemplar_trace_id = h.exemplar_trace_id;
    } else {
      HeavyHitter m = h;
      m.count = saturating_add(m.count, my_min);
      m.error = saturating_add(m.error, my_min);
      merged.emplace(m.key, std::move(m));
    }
  }
  for (auto& [key, m] : merged) {
    if (other.index_.count(key) == 0) {
      m.count = saturating_add(m.count, other_min);
      m.error = saturating_add(m.error, other_min);
    }
  }
  std::vector<HeavyHitter> all;
  all.reserve(merged.size());
  for (auto& [key, h] : merged) all.push_back(std::move(h));
  std::sort(all.begin(), all.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (all.size() > capacity_) all.resize(capacity_);

  heap_.clear();
  index_.clear();
  for (HeavyHitter& h : all) {
    heap_.push_back(std::move(h));
    index_[heap_.back().key] = heap_.size() - 1;
    bubble_up(heap_.size() - 1);
  }
  total_weight_ = saturating_add(total_weight_, other.total_weight_);
}

std::size_t SpaceSaving::memory_bytes() const {
  std::size_t bytes = heap_.capacity() * sizeof(HeavyHitter) +
                      index_.bucket_count() * sizeof(void*);
  for (const HeavyHitter& h : heap_) bytes += h.key.capacity();
  return bytes;
}

void SpaceSaving::assign(std::size_t capacity,
                         std::vector<HeavyHitter> entries,
                         std::uint64_t total_weight) {
  capacity_ = capacity == 0 ? 1 : capacity;
  heap_.clear();
  index_.clear();
  if (entries.size() > capacity_) entries.resize(capacity_);
  for (HeavyHitter& h : entries) {
    if (index_.count(h.key) != 0) continue;  // duplicate key on the wire
    heap_.push_back(std::move(h));
    index_[heap_.back().key] = heap_.size() - 1;
    bubble_up(heap_.size() - 1);
  }
  total_weight_ = total_weight;
}

HyperLogLog::HyperLogLog(unsigned precision)
    : precision_(std::min(16u, std::max(4u, precision))),
      registers_(std::size_t{1} << precision_, 0) {}

void HyperLogLog::add(std::string_view key) {
  std::uint64_t h = common::fnv1a(common::BytesView(
      reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
  // FNV-1a's low bits disperse poorly for short sequential keys (IMSIs);
  // run the splitmix64 finalizer so register selection and rank are
  // effectively uniform.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const std::size_t idx = h >> (64 - precision_);
  const std::uint64_t rest = h << precision_;
  // Rank of the first set bit in the remaining 64-p bits, 1-based; all-zero
  // rest counts the full width.
  const std::uint8_t rank =
      rest == 0 ? static_cast<std::uint8_t>(64 - precision_ + 1)
                : static_cast<std::uint8_t>(__builtin_clzll(rest) + 1);
  if (rank > registers_[idx]) registers_[idx] = rank;
}

double HyperLogLog::estimate() const {
  const double m = static_cast<double>(registers_.size());
  const double alpha =
      registers_.size() <= 16 ? 0.673
      : registers_.size() <= 32 ? 0.697
      : registers_.size() <= 64 ? 0.709
                                : 0.7213 / (1.0 + 1.079 / m);
  double sum = 0;
  std::size_t zeros = 0;
  for (const std::uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double raw = alpha * m * m / sum;
  if (raw <= 2.5 * m && zeros != 0) {
    // Linear counting regime: the raw estimator biases high when most
    // registers are still zero.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) return;  // incompatible layouts
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

void HyperLogLog::assign(unsigned precision,
                         std::vector<std::uint8_t> registers) {
  precision_ = std::min(16u, std::max(4u, precision));
  registers_ = std::move(registers);
  registers_.resize(std::size_t{1} << precision_, 0);
  // Clamp impossible ranks from hostile input: rank can never exceed the
  // hash width remaining after register selection, plus one.
  const std::uint8_t max_rank =
      static_cast<std::uint8_t>(64 - precision_ + 1);
  for (std::uint8_t& r : registers_) r = std::min(r, max_rank);
}

}  // namespace magma::obs::sketch
