// Per-subscriber sketch aggregation on the gateway, and the wire format
// that ships it to the orchestrator on the magmad metrics tick.
//
// accessd/sessiond/pipelined feed per-IMSI outcomes here instead of into
// metricsd series: the footprint is O(K + 2^p) however many subscribers
// the gateway serves, which is what makes the subscriber axis affordable
// at the paper's fleet scale (§4.3.1). Sketches ship as cumulative
// snapshots — like histogram shipping, a lost report is self-correcting on
// the next tick.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/sketch/sketch.h"
#include "sim/time.h"

namespace magma::obs::sketch {

// The per-subscriber outcomes worth a top-K answer, per the paper's
// operator questions: who fails to attach, who loses bearers, who runs
// into quota, who moves the bytes.
enum class SubscriberMetric : std::uint8_t {
  kAttachFailures = 0,
  kBearerDrops = 1,
  kQuotaRejections = 2,
  kBytes = 3,
};
inline constexpr std::size_t kSubscriberMetricCount = 4;
const char* subscriber_metric_name(SubscriberMetric metric);

struct SketchConfig {
  std::size_t topk_capacity = 64;
  unsigned hll_precision = 12;
  // Active-IMSI window: `active_window()` answers over the last *closed*
  // window of this length, so the number is a rate ("distinct IMSIs per
  // window"), not an ever-growing total.
  sim::Duration window = 5 * sim::kMinute;
};

// One gateway's cumulative sketch state at a point in time. Also the wire
// message — the codec below ships it verbatim.
struct SketchReport {
  std::string gateway_id;
  sim::TimePoint time = 0;
  std::size_t topk_capacity = 0;
  std::array<SpaceSaving, kSubscriberMetricCount> topk;
  HyperLogLog active_total;   // distinct IMSIs since boot
  HyperLogLog active_window;  // distinct IMSIs in the last closed window
};

common::Bytes encode_sketch_report(const SketchReport& report);
common::Result<SketchReport> decode_sketch_report(common::BytesView data);

// The gateway-side aggregation unit (owned by AccessGateway, read by
// magmad's metrics tick).
class SubscriberSketches {
 public:
  explicit SubscriberSketches(SketchConfig config = {});

  // Record a per-IMSI outcome. `exemplar_trace_id` pivots the heavy-hitter
  // entry back to one pinned trace of the contributing event (0: none).
  void record(SubscriberMetric metric, const std::string& imsi,
              std::uint64_t weight = 1, std::uint64_t exemplar_trace_id = 0);
  // Any sign of life from an IMSI (attach attempt, traffic poll) — feeds
  // the distinct-active counters.
  void record_active(const std::string& imsi, sim::TimePoint now);

  SketchReport snapshot(const std::string& gateway_id,
                        sim::TimePoint now) const;
  const SpaceSaving& topk(SubscriberMetric metric) const {
    return topk_[static_cast<std::size_t>(metric)];
  }
  double distinct_active_total() const { return active_total_.estimate(); }
  // Estimate over the last *closed* window (0 until one closes).
  double distinct_active_window() const { return closed_window_.estimate(); }

  std::uint64_t records() const { return records_; }
  // Total sketch footprint — the bench's O(K + 2^p) assertion reads this.
  std::size_t memory_bytes() const;

 private:
  void roll_window(sim::TimePoint now);

  SketchConfig config_;
  std::array<SpaceSaving, kSubscriberMetricCount> topk_;
  HyperLogLog active_total_;
  HyperLogLog current_window_;
  HyperLogLog closed_window_;
  std::int64_t window_index_ = -1;
  std::uint64_t records_ = 0;
};

// Render the fleet-merged top-K with explicit bounds and exemplars:
//
//   top subscribers by attach_failures (fleet, 3 gateways)
//     IMSI001010000000042  >= 497 (+-12)  trace 0x9a3f...
//
// `entries` come from SpaceSaving::top(); rows whose guaranteed lower
// bound (count - error) is zero are noise and are skipped.
std::string format_top_subscribers(SubscriberMetric metric,
                                   const std::vector<HeavyHitter>& entries,
                                   std::size_t k, std::size_t gateways);

}  // namespace magma::obs::sketch
