#include "obs/sketch/subscriber_sketches.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "rpc/wire.h"

namespace magma::obs::sketch {

const char* subscriber_metric_name(SubscriberMetric metric) {
  switch (metric) {
    case SubscriberMetric::kAttachFailures: return "attach_failures";
    case SubscriberMetric::kBearerDrops: return "bearer_drops";
    case SubscriberMetric::kQuotaRejections: return "quota_rejections";
    case SubscriberMetric::kBytes: return "bytes";
  }
  return "unknown";
}

namespace {

void encode_topk(rpc::Writer& w, const SpaceSaving& s) {
  w.u64(s.total_weight());
  const std::vector<HeavyHitter> entries = s.top();
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const HeavyHitter& h : entries) {
    w.str(h.key);
    w.u64(h.count);
    w.u64(h.error);
    w.u64(h.exemplar_trace_id);
  }
}

bool decode_topk(rpc::Reader& r, std::size_t capacity, SpaceSaving& out) {
  const std::uint64_t total = r.u64();
  const std::uint32_t count = r.u32();
  // Each entry needs >= 28 wire bytes; the count is wire data — bound the
  // reserve by what the buffer could actually hold.
  if (static_cast<std::uint64_t>(count) * 28 > r.remaining()) return false;
  std::vector<HeavyHitter> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    HeavyHitter h;
    h.key = r.str();
    h.count = r.u64();
    h.error = r.u64();
    h.exemplar_trace_id = r.u64();
    if (h.error > h.count) return false;  // bound can never exceed estimate
    entries.push_back(std::move(h));
  }
  if (!r.ok()) return false;
  out.assign(capacity, std::move(entries), total);
  return true;
}

void encode_hll(rpc::Writer& w, const HyperLogLog& h) {
  w.u8(static_cast<std::uint8_t>(h.precision()));
  w.bytes(common::BytesView(h.registers().data(), h.registers().size()));
}

bool decode_hll(rpc::Reader& r, HyperLogLog& out) {
  const std::uint8_t precision = r.u8();
  if (precision < 4 || precision > 16) return false;
  const common::Bytes regs = r.bytes();
  if (!r.ok()) return false;
  if (regs.size() != (std::size_t{1} << precision)) return false;
  out.assign(precision, std::vector<std::uint8_t>(regs.begin(), regs.end()));
  return true;
}

}  // namespace

common::Bytes encode_sketch_report(const SketchReport& report) {
  rpc::Writer w;
  w.str(report.gateway_id);
  w.i64(report.time);
  w.u32(static_cast<std::uint32_t>(report.topk_capacity));
  w.u8(static_cast<std::uint8_t>(kSubscriberMetricCount));
  for (const SpaceSaving& s : report.topk) encode_topk(w, s);
  encode_hll(w, report.active_total);
  encode_hll(w, report.active_window);
  return std::move(w).take();
}

common::Result<SketchReport> decode_sketch_report(common::BytesView data) {
  const common::Error malformed{common::ErrorCode::kInvalidArgument,
                                "corrupt sketch report"};
  rpc::Reader r(data);
  SketchReport report;
  report.gateway_id = r.str();
  report.time = r.i64();
  report.topk_capacity = r.u32();
  // Hostile capacity would make every decoded SpaceSaving pre-reserve it;
  // the fleet ships tens, not millions.
  if (report.topk_capacity == 0 || report.topk_capacity > 4096) {
    return malformed;
  }
  const std::uint8_t metrics = r.u8();
  // Sketch count on the wire so a reader with a different metric-set width
  // still decodes; anything past what the buffer could hold is hostile.
  if (metrics > 16) return malformed;
  for (std::uint8_t i = 0; i < metrics && r.ok(); ++i) {
    SpaceSaving decoded(report.topk_capacity);
    if (!decode_topk(r, report.topk_capacity, decoded)) return malformed;
    if (i < kSubscriberMetricCount) {
      report.topk[i] = std::move(decoded);
    }
  }
  if (!decode_hll(r, report.active_total)) return malformed;
  if (!decode_hll(r, report.active_window)) return malformed;
  if (!r.ok() || !r.at_end()) return malformed;
  return report;
}

SubscriberSketches::SubscriberSketches(SketchConfig config)
    : config_(config),
      topk_{SpaceSaving(config.topk_capacity),
            SpaceSaving(config.topk_capacity),
            SpaceSaving(config.topk_capacity),
            SpaceSaving(config.topk_capacity)},
      active_total_(config.hll_precision),
      current_window_(config.hll_precision),
      closed_window_(config.hll_precision) {}

void SubscriberSketches::record(SubscriberMetric metric,
                                const std::string& imsi, std::uint64_t weight,
                                std::uint64_t exemplar_trace_id) {
  topk_[static_cast<std::size_t>(metric)].offer(imsi, weight,
                                                exemplar_trace_id);
  ++records_;
}

void SubscriberSketches::roll_window(sim::TimePoint now) {
  if (config_.window <= 0) return;
  const std::int64_t idx = now / config_.window;
  if (idx == window_index_) return;
  // The current window just closed (windows with no activity in between
  // leave closed empty, which is the honest answer).
  closed_window_ = window_index_ >= 0 && idx == window_index_ + 1
                       ? current_window_
                       : HyperLogLog(config_.hll_precision);
  current_window_ = HyperLogLog(config_.hll_precision);
  window_index_ = idx;
}

void SubscriberSketches::record_active(const std::string& imsi,
                                       sim::TimePoint now) {
  roll_window(now);
  active_total_.add(imsi);
  current_window_.add(imsi);
}

SketchReport SubscriberSketches::snapshot(const std::string& gateway_id,
                                          sim::TimePoint now) const {
  SketchReport report;
  report.gateway_id = gateway_id;
  report.time = now;
  report.topk_capacity = config_.topk_capacity;
  report.topk = topk_;
  report.active_total = active_total_;
  report.active_window = closed_window_;
  return report;
}

std::size_t SubscriberSketches::memory_bytes() const {
  std::size_t bytes = 0;
  for (const SpaceSaving& s : topk_) bytes += s.memory_bytes();
  bytes += active_total_.memory_bytes();
  bytes += current_window_.memory_bytes();
  bytes += closed_window_.memory_bytes();
  return bytes;
}

std::string format_top_subscribers(SubscriberMetric metric,
                                   const std::vector<HeavyHitter>& entries,
                                   std::size_t k, std::size_t gateways) {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "top subscribers by %s (fleet, %zu gateway%s)\n",
                subscriber_metric_name(metric), gateways,
                gateways == 1 ? "" : "s");
  out += line;
  std::size_t emitted = 0;
  for (const HeavyHitter& h : entries) {
    if (k != 0 && emitted >= k) break;
    if (h.count <= h.error) continue;  // guaranteed lower bound is zero
    if (h.exemplar_trace_id != 0) {
      std::snprintf(line, sizeof(line),
                    "  %-18s >= %" PRIu64 " (+-%" PRIu64
                    ")  trace 0x%016" PRIx64 "\n",
                    h.key.c_str(), h.count - h.error, h.error,
                    h.exemplar_trace_id);
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-18s >= %" PRIu64 " (+-%" PRIu64 ")\n", h.key.c_str(),
                    h.count - h.error, h.error);
    }
    out += line;
    ++emitted;
  }
  if (emitted == 0) out += "  (no heavy hitters above the noise floor)\n";
  return out;
}

}  // namespace magma::obs::sketch
