#include "obs/bench_json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace magma::obs {

namespace {

using common::ErrorCode;

// Minimal recursive-descent JSON reader over the subset the bench emitters
// write. Collects numeric leaves into `out` under dotted paths.
class Reader {
 public:
  Reader(const std::string& text, std::map<std::string, double>& out)
      : text_(text), out_(out) {}

  bool parse() {
    skip_ws();
    if (!parse_object("")) return false;
    skip_ws();
    return pos_ == text_.size();  // trailing garbage is a malformed file
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool parse_string(std::string& s) {
    if (!consume('"')) return false;
    s.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'r': s += '\r'; break;
          default: return false;  // \u etc. — no emitter writes them
        }
        continue;
      }
      s += c;
    }
    return false;  // unterminated
  }

  bool parse_number(double& value) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&]() {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!digits) return false;
    value = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool parse_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parse_value(const std::string& path) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(path);
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == 't') return parse_literal("true");
    if (c == 'f') return parse_literal("false");
    if (c == 'n') return parse_literal("null");
    double value = 0;
    if (!parse_number(value)) return false;
    out_[path] = value;
    return true;
  }

  bool parse_object(const std::string& prefix) {
    skip_ws();
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      if (!parse_value(path)) return false;
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  const std::string& text_;
  std::map<std::string, double>& out_;
  std::size_t pos_ = 0;
};

bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

common::Result<std::map<std::string, double>> flatten_json_numbers(
    const std::string& text) {
  std::map<std::string, double> out;
  Reader reader(text, out);
  if (!reader.parse()) {
    return common::Error{ErrorCode::kInvalidArgument, "malformed bench JSON"};
  }
  return out;
}

bool is_cost_metric_key(const std::string& key) {
  return ends_with(key, "_ns") || ends_with(key, "_ms") ||
         ends_with(key, "_allocs") || ends_with(key, "_alloc_bytes") ||
         ends_with(key, "_bytes_per_op");
}

BenchCompareResult bench_compare(const std::map<std::string, double>& before,
                                 const std::map<std::string, double>& after,
                                 double threshold) {
  BenchCompareOptions options;
  options.threshold = threshold;
  return bench_compare(before, after, options);
}

BenchCompareResult bench_compare(const std::map<std::string, double>& before,
                                 const std::map<std::string, double>& after,
                                 const BenchCompareOptions& options) {
  const double threshold = options.threshold;
  BenchCompareResult result;
  for (const auto& [key, old_value] : before) {
    auto it = after.find(key);
    if (it == after.end()) {
      result.notes.push_back("dropped: " + key);
      continue;
    }
    if (!is_cost_metric_key(key)) continue;
    if (!options.suffix.empty() && !ends_with(key, options.suffix.c_str())) {
      continue;
    }
    const double new_value = it->second;
    ++result.compared;
    if (old_value <= 0) {
      if (new_value <= 0) continue;
      if (options.strict_from_zero && new_value > options.slack) {
        // A zero-cost path grew a cost: percentages cannot express this, so
        // the relative `change` is left at 0 and `after` tells the story.
        result.regressions.push_back(BenchDelta{key, old_value, new_value, 0});
        result.ok = false;
      } else {
        result.notes.push_back("appeared-from-zero: " + key);
      }
      continue;
    }
    const double change = new_value / old_value - 1.0;
    BenchDelta delta{key, old_value, new_value, change};
    if (new_value > old_value * (1.0 + threshold) + options.slack) {
      result.regressions.push_back(delta);
      result.ok = false;
    } else if (change < -threshold) {
      result.improvements.push_back(delta);
    }
  }
  for (const auto& [key, value] : after) {
    (void)value;
    if (before.find(key) == before.end()) {
      result.notes.push_back("new: " + key);
    }
  }
  return result;
}

std::string format_bench_compare(const BenchCompareResult& result,
                                 double threshold) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "compared %zu cost metrics (threshold %.0f%%)\n",
                result.compared, threshold * 100);
  out += line;
  for (const BenchDelta& d : result.regressions) {
    std::snprintf(line, sizeof(line),
                  "  REGRESSION %-44s %12.1f -> %12.1f  (%+.1f%%)\n",
                  d.key.c_str(), d.before, d.after, d.change * 100);
    out += line;
  }
  for (const BenchDelta& d : result.improvements) {
    std::snprintf(line, sizeof(line),
                  "  improved   %-44s %12.1f -> %12.1f  (%+.1f%%)\n",
                  d.key.c_str(), d.before, d.after, d.change * 100);
    out += line;
  }
  for (const std::string& note : result.notes) {
    out += "  note: " + note + "\n";
  }
  out += result.ok ? "OK: no cost metric regressed\n"
                   : "FAIL: cost metric regression\n";
  return out;
}

}  // namespace magma::obs
