#include "obs/status.h"

#include <algorithm>

#include "rpc/wire.h"

namespace magma::obs {

Service303& StatusRegistry::register_service(const std::string& service) {
  auto it = services_.find(service);
  if (it == services_.end()) {
    it = services_
             .emplace(service, std::unique_ptr<Service303>(
                                   new Service303(kernel_, service)))
             .first;
  }
  return *it->second;
}

std::vector<ServiceStatus> StatusRegistry::snapshot() const {
  std::vector<ServiceStatus> out;
  out.reserve(services_.size());
  for (const auto& [_, svc] : services_) {
    ServiceStatus s = svc->status_;
    s.uptime = kernel_.now() - svc->registered_at_;
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration: already name-ordered
}

const Service303* StatusRegistry::find(const std::string& service) const {
  auto it = services_.find(service);
  return it == services_.end() ? nullptr : it->second.get();
}

common::Bytes encode_gateway_status(
    const std::vector<ServiceStatus>& services) {
  rpc::Writer w;
  w.u64(services.size());
  for (const ServiceStatus& s : services) {
    w.str(s.service);
    w.str(s.phase);
    w.i64(s.uptime);
    w.u64(s.requests);
    w.u64(s.errors);
    w.u64(s.deadlines);
    w.str(s.last_error);
    w.i64(s.last_error_time);
  }
  return std::move(w).take();
}

common::Result<std::vector<ServiceStatus>> decode_gateway_status(
    common::BytesView data) {
  rpc::Reader r(data);
  const std::uint64_t count = r.u64();
  std::vector<ServiceStatus> services;
  // Attacker-controlled count: each entry needs ≥ 52 wire bytes (three
  // length-prefixed strings + five fixed 8-byte fields), so cap the reserve
  // by what the payload could actually hold.
  services.reserve(std::min<std::uint64_t>(count, r.remaining() / 52 + 1));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    ServiceStatus s;
    s.service = r.str();
    s.phase = r.str();
    s.uptime = r.i64();
    s.requests = r.u64();
    s.errors = r.u64();
    s.deadlines = r.u64();
    s.last_error = r.str();
    s.last_error_time = r.i64();
    services.push_back(std::move(s));
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt gateway status"};
  }
  return services;
}

}  // namespace magma::obs
