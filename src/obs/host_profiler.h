// Host-performance profiler: where does the *host* second go?
//
// Everything else under src/obs measures simulated time — attach latency,
// span trees, wait vectors — and is blind to what the simulation costs the
// machine running it. This layer is the other half: wall-clock
// (steady_clock) scoped timers attributed to interned (subsystem, op)
// labels, with self vs. child time separated, plus allocation accounting
// hooked into global operator new/delete so per-subsystem bytes-allocated
// land next to wall nanoseconds. It is the measurement substrate for the
// ROADMAP's "raw simulator speed" work: BENCH_host.json prices the core
// primitives release-over-release, and the per-label alloc counts say where
// arenas/pools will pay off before anyone writes one.
//
// Why a separate layer from the sim-clock profiler (sim::CpuModel): the two
// clocks answer different questions. CpuModel attributes *simulated* CPU
// seconds to simulated services — a model property, identical on every
// machine. HostProfiler attributes *real* nanoseconds to simulator
// subsystems — a property of this build on this host. Mixing them would
// poison determinism: host timings differ run to run, so nothing host-side
// may ever feed back into simulation behavior. The profiler therefore only
// observes (timestamps, counters); it never schedules, allocates into sim
// state, or gates sim logic — asserted by the profiler-on-vs-off diff test.
//
// Cost model, measured by HostProfilerOverhead.DisabledUnder2Percent:
//  * compiled in always; no build flag;
//  * disabled (no profiler installed): one predictable branch per scope
//    entry/exit and one per allocation — <2% on an event-loop hot path;
//  * enabled: two steady_clock reads per scope plus O(1) bookkeeping.
//
// Threading: the simulator is single-threaded by design ("RAII Scope as the
// single-threaded stand-in for TLS"); the frame stack follows the same
// convention. The process-wide allocation totals are relaxed atomics so the
// hooks stay safe if a test runner spawns a stray thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace magma::obs {

// Process-wide interned (subsystem, op) label. Interning is global and
// append-only so call sites can cache ids in function-local statics; stats
// live per HostProfiler instance, indexed by label id.
using HostLabelId = std::uint32_t;
inline constexpr HostLabelId kHostUnlabeled = 0;

// Register (idempotent) and return the id of a (subsystem, op) label.
// Label 0 is pre-interned ("unattributed", "").
HostLabelId host_label(const std::string& subsystem, const std::string& op);
// Number of labels interned so far (label ids are < this).
std::size_t host_label_count();

struct HostLabelStats {
  std::string subsystem;  // e.g. "kernel", "rpc", "datapath"
  std::string op;         // e.g. "dispatch", "encode", "process_batch"
  std::uint64_t calls = 0;          // scope entries
  std::uint64_t total_ns = 0;       // wall time inside the scope (w/ children)
  std::uint64_t self_ns = 0;        // total minus enclosed profiled scopes
  std::uint64_t max_ns = 0;         // slowest single scope
  std::uint64_t alloc_count = 0;    // operator new calls while innermost
  std::uint64_t alloc_bytes = 0;    // bytes requested by those calls
  std::uint64_t free_count = 0;     // operator delete calls while innermost
  // Sim-kernel event accounting: events whose schedule() ran while this
  // label's scope was innermost, and dispatches of those events (the
  // kernel re-enters the originating scope around the callback, so the
  // dispatch wall cost also lands in total_ns/self_ns above).
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_dispatched = 0;

  std::uint64_t child_ns() const { return total_ns - self_ns; }
};

class HostProfiler;

namespace detail {
// Fast-path global: nullptr means disabled. Scopes and hooks branch on this
// once; everything heavier lives behind the branch.
extern HostProfiler* g_host_profiler;
}  // namespace detail

class HostProfiler {
 public:
  HostProfiler();
  ~HostProfiler();  // uninstalls itself if it is the installed profiler
  HostProfiler(const HostProfiler&) = delete;
  HostProfiler& operator=(const HostProfiler&) = delete;

  // Make this the process profiler (replaces any other). Scopes entered
  // while a different profiler was installed keep writing to the profiler
  // that opened them.
  void install();
  static void uninstall();
  static HostProfiler* current() { return detail::g_host_profiler; }
  static bool enabled() { return detail::g_host_profiler != nullptr; }

  // Innermost active label (kHostUnlabeled when disabled or no scope). The
  // sim kernel stamps this onto events at schedule() so dispatch cost is
  // attributed to the subsystem that scheduled the event.
  static HostLabelId current_label();

  // Cumulative stats for every interned label, indexed by HostLabelId
  // (deterministic: intern order). Labels never touched by this profiler
  // have zero counts.
  std::vector<HostLabelStats> snapshot() const;
  // Lookup by name; zeroed stats when the label exists but was never hit.
  HostLabelStats stats_for(const std::string& subsystem,
                           const std::string& op) const;
  // Sum of self_ns over all labels == total_ns of the outermost scopes:
  // self/child separation is exact by construction; tests assert it.
  std::uint64_t total_self_ns() const;

  void reset();  // zero all per-label stats (labels stay interned)

  // --- process-wide allocation totals (always counted, even with no
  // profiler installed; relaxed atomics) ----------------------------------
  static std::uint64_t process_alloc_count();
  static std::uint64_t process_alloc_bytes();
  static std::uint64_t process_free_count();

  // --- internal: called from HostScope / kernel / operator new -----------
  void push_frame(HostLabelId label, std::uint64_t now_ns);
  void pop_frame(std::uint64_t now_ns);
  void note_event_scheduled(HostLabelId label);
  void note_event_dispatched(HostLabelId label);
  void note_alloc(std::size_t bytes);
  void note_free();
  std::size_t frame_depth() const { return frames_.size(); }

  static std::uint64_t now_ns();  // steady_clock, ns since an arbitrary epoch

 private:
  struct Frame {
    HostLabelId label = kHostUnlabeled;
    std::uint64_t start_ns = 0;
    std::uint64_t child_ns = 0;  // time spent in enclosed profiled scopes
  };

  HostLabelStats& slot(HostLabelId label);

  std::vector<HostLabelStats> stats_;  // indexed by HostLabelId, lazily grown
  std::vector<Frame> frames_;
};

// RAII scoped timer. Binds to the profiler installed at entry; a profiler
// swap mid-scope is tolerated (the exit pops the frame it pushed).
class HostScope {
 public:
  explicit HostScope(HostLabelId label) {
    HostProfiler* prof = detail::g_host_profiler;
    if (prof == nullptr) return;  // the one disabled-path branch
    prof_ = prof;
    prof->push_frame(label, HostProfiler::now_ns());
  }
  ~HostScope() {
    if (prof_ != nullptr) prof_->pop_frame(HostProfiler::now_ns());
  }
  HostScope(const HostScope&) = delete;
  HostScope& operator=(const HostScope&) = delete;

 private:
  HostProfiler* prof_ = nullptr;
};

// Scope with a function-local interned label: the intern happens once, the
// per-call cost is the HostScope branch.
#define MAGMA_HOST_CONCAT_INNER(a, b) a##b
#define MAGMA_HOST_CONCAT(a, b) MAGMA_HOST_CONCAT_INNER(a, b)
#define MAGMA_HOST_SCOPE(subsystem, op)                                     \
  static const ::magma::obs::HostLabelId MAGMA_HOST_CONCAT(                 \
      magma_host_label_, __LINE__) = ::magma::obs::host_label(subsystem,    \
                                                              op);          \
  ::magma::obs::HostScope MAGMA_HOST_CONCAT(magma_host_scope_, __LINE__)(   \
      MAGMA_HOST_CONCAT(magma_host_label_, __LINE__))

}  // namespace magma::obs
