#include "obs/events.h"

#include <algorithm>

#include "rpc/wire.h"

namespace magma::obs {

common::Bytes encode_event_report(const std::vector<Event>& events) {
  rpc::Writer w;
  w.u64(events.size());
  for (const Event& e : events) {
    w.i64(e.time);
    w.str(e.gateway_id);
    w.str(e.type);
    w.str(e.source);
    w.str(e.message);
    w.u8(static_cast<std::uint8_t>(e.severity));
    w.u64(e.trace.trace_id);
    w.u64(e.trace.span_id);
  }
  return std::move(w).take();
}

common::Result<std::vector<Event>> decode_event_report(
    common::BytesView data) {
  rpc::Reader r(data);
  const std::uint64_t count = r.u64();
  std::vector<Event> events;
  // Attacker-controlled count: each event needs ≥ 41 bytes on the wire.
  events.reserve(std::min<std::uint64_t>(count, r.remaining() / 41 + 1));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    Event e;
    e.time = r.i64();
    e.gateway_id = r.str();
    e.type = r.str();
    e.source = r.str();
    e.message = r.str();
    const std::uint8_t severity = r.u8();
    if (severity > static_cast<std::uint8_t>(EventSeverity::kError)) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "bad event severity"};
    }
    e.severity = static_cast<EventSeverity>(severity);
    e.trace.trace_id = r.u64();
    e.trace.span_id = r.u64();
    events.push_back(std::move(e));
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt event report"};
  }
  return events;
}

void EventBuffer::push(Event event) {
  ++pushed_;
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (buffer_.size() >= capacity_) {
    buffer_.pop_front();
    ++dropped_;
  }
  buffer_.push_back(std::move(event));
}

std::vector<Event> EventBuffer::take(std::size_t max_count) {
  const std::size_t n = std::min(max_count, buffer_.size());
  std::vector<Event> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(buffer_.front()));
    buffer_.pop_front();
  }
  return out;
}

}  // namespace magma::obs
