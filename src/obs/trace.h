// Deterministic distributed tracing over the simulation clock.
//
// The paper's operational-cost argument (§4.3.1) leans on first-class
// observability; this is the repository's answer to "where inside a 900 ms
// attach did the time go". A Tracer records spans — named intervals with a
// service, a node (gateway or orchestrator), and a parent — keyed by a
// TraceContext that the RPC layer carries across the wire, so one attach
// yields a single connected tree spanning the AGW and the orchestrator.
//
// Determinism: span ids are sequential per Tracer and timestamps come from
// sim::Kernel, so identical runs produce identical traces. One Tracer is
// shared by every node of a core::Network — the ids double as global
// ordering, and cross-node traces need no id reconciliation.
//
// Propagation model (single-threaded simulator, so no TLS needed):
//  * `current()` holds the context of the innermost active Scope;
//  * synchronous children pick it up implicitly (begin() with no parent);
//  * async continuations capture the TraceContext by value into their
//    lambdas and re-enter it with a Scope.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/kernel.h"
#include "sim/time.h"

namespace magma::obs {

// Wire-propagatable identity of a span. Zero trace_id means "not traced";
// everything downstream treats that as "do nothing", so untraced unit tests
// pay no cost and need no wiring.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

enum class SpanKind : std::uint8_t { kInternal = 0, kClient = 1, kServer = 2 };
const char* span_kind_name(SpanKind kind);

// Where a span's time went while it was open. The instrumented layers charge
// these as they learn them: sim::CpuModel charges kCpu/kRunq when a task
// starts, rpc::RpcNode charges kRpcWait when a call completes and kTimer for
// retry backoff, and the access stack charges kLinkTransit for round trips
// it spends waiting on the UE. kOther is never charged directly — the
// critical-path walk uses it for self-time it cannot classify.
enum class WaitState : std::uint8_t {
  kCpu = 0,          // on a core, executing
  kRunq = 1,         // runnable, waiting for a core (or a worker slot)
  kRpcWait = 2,      // blocked on an outstanding RPC
  kLinkTransit = 3,  // in flight on a network link
  kTimer = 4,        // blocked on a timer (retry backoff, pacing)
  kOther = 5,        // unattributed self-time
};
inline constexpr std::size_t kWaitStateCount = 6;
const char* wait_state_name(WaitState state);

// Per-state accumulated durations; indexed by WaitState.
using WaitVector = std::array<sim::Duration, kWaitStateCount>;

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  // 0: root
  SpanKind kind = SpanKind::kInternal;
  std::string name;     // operation, e.g. "attach", "streamer/GetUpdates"
  std::string service;  // emitting service, e.g. "accessd" (Chrome: thread)
  std::string node;     // gateway id or "orc8r" (Chrome: process)
  sim::TimePoint start = 0;
  sim::TimePoint end = 0;
  std::vector<std::pair<std::string, std::string>> tags;
  // Causally related spans in *other* traces (OpenTelemetry span links):
  // e.g. the one RPC that ships an event batch links every batched trace.
  std::vector<TraceContext> links;
  // Set when the span was tagged "error"; an erroring span pins its whole
  // trace against drop-oldest eviction (see Tracer::set_retention).
  bool error = false;
  // Accumulated off-/on-CPU attribution charged via Tracer::add_wait. The
  // states need not cover the whole duration — the critical-path walk
  // classifies the span's *self*-time against this vector and labels any
  // remainder kOther.
  WaitVector wait_ns{};
  // Kernel event-queue depth sampled when the span opened/closed. A span
  // whose boundaries both saw a non-empty queue spent its unattributed time
  // behind other work, not idle — the critical-path walk uses this to
  // sub-classify kOther into "backlogged" vs "untracked".
  std::size_t queue_depth_open = 0;
  std::size_t queue_depth_close = 0;

  sim::Duration duration() const { return end - start; }
  sim::Duration wait(WaitState state) const {
    return wait_ns[static_cast<std::size_t>(state)];
  }
};

class Tracer {
 public:
  explicit Tracer(sim::Kernel& kernel) : kernel_(kernel) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Open a span. An invalid `parent` falls back to current(); no current
  // context starts a fresh trace. Returns the new span's context.
  TraceContext begin(std::string name, std::string service, std::string node,
                     SpanKind kind = SpanKind::kInternal,
                     TraceContext parent = {});
  // Attach a key/value tag to an open span (no-op if unknown/closed).
  // A tag with key "error" additionally marks the span as errored, which
  // pins its trace in the finished ring (retain-on-error).
  void tag(TraceContext span, std::string key, std::string value);
  // Link `span` to a causally related span of another trace (no-op when
  // either context is invalid or `span` is unknown/closed).
  void link(TraceContext span, TraceContext target);
  // Charge `amount` of `span`'s open time to a wait state (no-op if the
  // span is unknown/closed or the amount is not positive). Charges
  // accumulate; nothing requires them to cover the span's duration.
  void add_wait(TraceContext span, WaitState state, sim::Duration amount);
  // Close a span: stamps the end time, moves it to the finished ring and
  // fires the finish hooks. Closing an unknown or already-closed span is a
  // no-op (failure paths may race an explicit end with a cleanup end).
  void end(TraceContext span);

  // Context of the innermost active Scope (invalid when none).
  TraceContext current() const { return current_; }

  // RAII propagation guard: makes `ctx` the current context for its
  // lifetime. Null-tracer and invalid-context safe.
  class Scope {
   public:
    Scope(Tracer* tracer, TraceContext ctx) : tracer_(tracer) {
      if (tracer_ != nullptr) {
        prev_ = tracer_->current_;
        tracer_->current_ = ctx;
      }
    }
    ~Scope() {
      if (tracer_ != nullptr) tracer_->current_ = prev_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* tracer_;
    TraceContext prev_{};
  };

  // Finish hooks observe every completed span (AGWs aggregate latency
  // histograms this way). Remove with the returned id — components
  // outliving the hook's captures must deregister in their destructor.
  using FinishHook = std::function<void(const SpanRecord&)>;
  std::uint64_t add_finish_hook(FinishHook hook);
  void remove_finish_hook(std::uint64_t id);

  // Finished spans are kept in a bounded ring (oldest dropped first) so
  // soak runs don't grow without limit; hooks still see every span.
  // Eviction skips spans of pinned (errored) traces while any unpinned span
  // remains — failure traces survive a flood of healthy ones. The ring size
  // bound always wins: with nothing unpinned left, the oldest pinned span
  // goes too.
  void set_retention(std::size_t max_finished);
  // Cap on distinct pinned traces (oldest pin released first). Keeps the
  // retain-on-error set bounded during error storms.
  void set_max_pinned_traces(std::size_t max_pinned);
  std::size_t pinned_traces() const { return pinned_.size(); }
  bool trace_pinned(std::uint64_t trace_id) const {
    return pinned_.count(trace_id) != 0 || tail_pinned_.count(trace_id) != 0;
  }
  // Error pins only (the retain-on-error set) — the TailSampler uses this
  // to leave errored traces out of its K budget: they are already retained.
  bool error_pinned(std::uint64_t trace_id) const {
    return pinned_.count(trace_id) != 0;
  }

  // Explicit pins (tail-based sampling, histogram exemplars): a TailSampler
  // pins the traces it keeps and unpins the ones it displaces; histogram
  // buckets pin their exemplar traces the same way. Kept separate from the
  // error pins — releasing an explicit pin never releases an error pin, and
  // the error-pin FIFO cap does not count explicit pins. Pins are
  // refcounted so two owners (a sampler and an exemplar bucket) holding the
  // same trace release independently.
  void pin(std::uint64_t trace_id) {
    if (trace_id != 0) ++tail_pinned_[trace_id];
  }
  void unpin(std::uint64_t trace_id) {
    auto it = tail_pinned_.find(trace_id);
    if (it == tail_pinned_.end()) return;
    if (--it->second == 0) tail_pinned_.erase(it);
  }
  std::size_t tail_pinned_traces() const { return tail_pinned_.size(); }
  const std::deque<SpanRecord>& finished() const { return finished_; }
  // All finished spans of one trace, in start order.
  std::vector<SpanRecord> trace_spans(std::uint64_t trace_id) const;

  std::size_t open_spans() const { return open_.size(); }
  std::uint64_t spans_started() const { return spans_started_; }
  std::uint64_t spans_finished() const { return spans_finished_; }
  std::uint64_t spans_dropped() const { return spans_dropped_; }

 private:
  void pin_trace(std::uint64_t trace_id);
  void evict_over_retention();

  sim::Kernel& kernel_;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
  TraceContext current_{};
  std::unordered_map<std::uint64_t, SpanRecord> open_;  // by span_id
  std::deque<SpanRecord> finished_;
  std::size_t max_finished_ = 65536;
  std::unordered_set<std::uint64_t> pinned_;  // trace ids with an error span
  std::deque<std::uint64_t> pin_order_;       // FIFO for the pin cap
  // Explicitly pinned traces -> pin refcount (sampler + exemplar holders).
  std::unordered_map<std::uint64_t, std::uint32_t> tail_pinned_;
  std::size_t max_pinned_traces_ = 128;
  std::uint64_t spans_started_ = 0;
  std::uint64_t spans_finished_ = 0;
  std::uint64_t spans_dropped_ = 0;
  std::vector<std::pair<std::uint64_t, FinishHook>> hooks_;
  std::uint64_t next_hook_id_ = 1;
};

// Null-safe helpers: instrumented services hold a `Tracer*` that is null in
// unit tests, and call through these without branching at every site.
inline TraceContext begin_span(Tracer* tracer, std::string name,
                               std::string service, std::string node,
                               SpanKind kind = SpanKind::kInternal,
                               TraceContext parent = {}) {
  if (tracer == nullptr) return {};
  return tracer->begin(std::move(name), std::move(service), std::move(node),
                       kind, parent);
}
inline void end_span(Tracer* tracer, TraceContext span) {
  if (tracer != nullptr) tracer->end(span);
}
inline void tag_span(Tracer* tracer, TraceContext span, std::string key,
                     std::string value) {
  if (tracer != nullptr) tracer->tag(span, std::move(key), std::move(value));
}
inline TraceContext current_context(const Tracer* tracer) {
  return tracer == nullptr ? TraceContext{} : tracer->current();
}
inline void link_span(Tracer* tracer, TraceContext span, TraceContext target) {
  if (tracer != nullptr) tracer->link(span, target);
}
inline void add_span_wait(Tracer* tracer, TraceContext span, WaitState state,
                          sim::Duration amount) {
  if (tracer != nullptr) tracer->add_wait(span, state, amount);
}

}  // namespace magma::obs
