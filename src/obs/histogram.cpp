#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace magma::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::log_bounds(double lo, double hi,
                                          int per_decade) {
  std::vector<double> bounds;
  if (lo <= 0 || hi < lo || per_decade <= 0) return bounds;
  const double step = std::pow(10.0, 1.0 / per_decade);
  // Round the bound count up so `hi` is always covered despite float drift.
  const int n =
      static_cast<int>(std::ceil(std::log10(hi / lo) * per_decade - 1e-9));
  bounds.reserve(static_cast<std::size_t>(n) + 1);
  double b = lo;
  for (int i = 0; i <= n; ++i) {
    bounds.push_back(b);
    b *= step;
  }
  return bounds;
}

const std::vector<double>& Histogram::default_bounds() {
  static const std::vector<double> kBounds = log_bounds(1e-4, 100.0, 5);
  return kBounds;
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), then walk the cumulative counts.
  const double rank = q * static_cast<double>(count_);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= rank) {
      // Geometric interpolation inside the log-spaced bucket [lo, hi).
      const double hi = i < bounds_.size()
                            ? bounds_[i]
                            : bounds_.empty() ? 1.0 : bounds_.back() * 10.0;
      const double lo = i > 0 ? bounds_[i - 1] : hi / 10.0;
      const double frac =
          (rank - cumulative) / static_cast<double>(counts_[i]);
      if (lo <= 0) return hi * std::clamp(frac, 0.0, 1.0);
      return lo * std::pow(hi / lo, std::clamp(frac, 0.0, 1.0));
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

bool Histogram::merge(const Histogram& other) {
  if (other.bounds_ != bounds_) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

bool Histogram::assign(std::vector<double> bounds,
                       std::vector<std::uint64_t> counts, double sum) {
  if (counts.size() != bounds.size() + 1) return false;
  if (!std::is_sorted(bounds.begin(), bounds.end())) return false;
  bounds_ = std::move(bounds);
  counts_ = std::move(counts);
  count_ = std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
  sum_ = sum;
  return true;
}

}  // namespace magma::obs
