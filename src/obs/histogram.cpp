#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace magma::obs {

namespace {

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  return a > std::numeric_limits<std::uint64_t>::max() - b
             ? std::numeric_limits<std::uint64_t>::max()
             : a + b;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
  exemplars_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::log_bounds(double lo, double hi,
                                          int per_decade) {
  std::vector<double> bounds;
  if (lo <= 0 || hi < lo || per_decade <= 0) return bounds;
  const double step = std::pow(10.0, 1.0 / per_decade);
  // Round the bound count up so `hi` is always covered despite float drift.
  const int n =
      static_cast<int>(std::ceil(std::log10(hi / lo) * per_decade - 1e-9));
  bounds.reserve(static_cast<std::size_t>(n) + 1);
  double b = lo;
  for (int i = 0; i <= n; ++i) {
    bounds.push_back(b);
    b *= step;
  }
  return bounds;
}

const std::vector<double>& Histogram::default_bounds() {
  static const std::vector<double> kBounds = log_bounds(1e-4, 100.0, 5);
  return kBounds;
}

std::size_t Histogram::bucket_index(double value) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

std::uint64_t Histogram::observe(double value,
                                 std::uint64_t exemplar_trace_id) {
  const std::size_t bucket = bucket_index(value);
  counts_[bucket] = saturating_add(counts_[bucket], 1);
  count_ = saturating_add(count_, 1);
  sum_ += value;
  if (exemplar_trace_id == 0) return 0;
  const std::uint64_t displaced = exemplars_[bucket];
  exemplars_[bucket] = exemplar_trace_id;
  // Returned even when equal to the new exemplar: with refcounted pins, the
  // caller's pin(new) + unpin(displaced) then nets to no change.
  return displaced;
}

void Histogram::set_exemplar(std::size_t bucket, std::uint64_t trace_id) {
  if (bucket < exemplars_.size()) exemplars_[bucket] = trace_id;
}

std::uint64_t Histogram::exemplar_near_quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  double cumulative = 0;
  std::size_t bucket = counts_.size() - 1;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += static_cast<double>(counts_[i]);
    if (counts_[i] != 0 && cumulative >= rank) {
      bucket = i;
      break;
    }
  }
  // The quantile bucket may have counts without a fresh exemplar (e.g. a
  // merged snapshot); fall back to the nearest lower bucket that has one.
  for (std::size_t i = bucket + 1; i-- > 0;) {
    if (exemplars_[i] != 0) return exemplars_[i];
  }
  return 0;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), then walk the cumulative counts.
  const double rank = q * static_cast<double>(count_);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= rank) {
      // Geometric interpolation inside the log-spaced bucket [lo, hi).
      const double hi = i < bounds_.size()
                            ? bounds_[i]
                            : bounds_.empty() ? 1.0 : bounds_.back() * 10.0;
      const double lo = i > 0 ? bounds_[i - 1] : hi / 10.0;
      const double frac =
          (rank - cumulative) / static_cast<double>(counts_[i]);
      if (lo <= 0) return hi * std::clamp(frac, 0.0, 1.0);
      return lo * std::pow(hi / lo, std::clamp(frac, 0.0, 1.0));
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

bool Histogram::merge(const Histogram& other) {
  if (other.bounds_ != bounds_) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] = saturating_add(counts_[i], other.counts_[i]);
    if (exemplars_[i] == 0) exemplars_[i] = other.exemplars_[i];
  }
  count_ = saturating_add(count_, other.count_);
  sum_ += other.sum_;
  return true;
}

bool Histogram::assign(std::vector<double> bounds,
                       std::vector<std::uint64_t> counts, double sum) {
  if (counts.size() != bounds.size() + 1) return false;
  if (!std::is_sorted(bounds.begin(), bounds.end())) return false;
  bounds_ = std::move(bounds);
  counts_ = std::move(counts);
  exemplars_.assign(counts_.size(), 0);
  count_ = 0;
  for (const std::uint64_t c : counts_) count_ = saturating_add(count_, c);
  sum_ = sum;
  return true;
}

}  // namespace magma::obs
