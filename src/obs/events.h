// Structured events shipped AGW → orchestrator (best-effort).
//
// The log.h header has always noted that "Magma's real AGW ships logs to
// the orchestrator"; this makes it true for the reproduction. WARN/ERROR
// log lines and notable control-plane milestones (attach success/reject)
// become Events, buffered in a bounded ring on the gateway, and drained in
// batches by magmad over the control channel. Loss-tolerant by design: a
// backhaul outage drops events (counted) and never blocks the gateway —
// the same posture as metrics (§3.4 "metrics state").
//
// Events carry the TraceContext active when they were emitted, so the
// orchestrator can anchor its ingest span into the originating attach trace.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace magma::obs {

enum class EventSeverity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

struct Event {
  sim::TimePoint time = 0;
  std::string gateway_id;
  std::string type;    // "log", "attach_success", "attach_reject", ...
  std::string source;  // emitting component/service
  std::string message;
  EventSeverity severity = EventSeverity::kInfo;
  TraceContext trace{};  // context active at emission ({} if none)
};

common::Bytes encode_event_report(const std::vector<Event>& events);
common::Result<std::vector<Event>> decode_event_report(common::BytesView data);

// Bounded FIFO of pending events. Overflow drops the *oldest* event (the
// newest is the one an operator debugging an outage needs) and counts it.
class EventBuffer {
 public:
  explicit EventBuffer(std::size_t capacity = 1024) : capacity_(capacity) {}

  void push(Event event);
  // Remove and return up to `max_count` events, oldest first.
  std::vector<Event> take(std::size_t max_count);

  std::size_t size() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t pushed() const { return pushed_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::deque<Event> buffer_;
  std::uint64_t pushed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace magma::obs
