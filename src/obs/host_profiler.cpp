#include "obs/host_profiler.h"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <map>
#include <new>
#include <utility>

namespace magma::obs {

namespace detail {
HostProfiler* g_host_profiler = nullptr;
}  // namespace detail

namespace {

// Process-wide allocation totals. Relaxed: they are monotone counters read
// only for reporting; no ordering is implied or needed.
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_free_count{0};

// Re-entrancy guard for the attribution path: growing the profiler's own
// stats vector allocates, which would recurse into note_alloc forever.
thread_local bool t_in_alloc_hook = false;

// The global label registry. Append-only; ids are indices. A function-local
// static (not a namespace-scope global) so interning from other static
// initializers is safe.
struct LabelRegistry {
  std::vector<std::pair<std::string, std::string>> names;
  std::map<std::pair<std::string, std::string>, HostLabelId> ids;
  LabelRegistry() {
    names.emplace_back("unattributed", "");
    ids.emplace(names.back(), kHostUnlabeled);
  }
};

LabelRegistry& registry() {
  static LabelRegistry reg;
  return reg;
}

}  // namespace

HostLabelId host_label(const std::string& subsystem, const std::string& op) {
  LabelRegistry& reg = registry();
  const auto key = std::make_pair(subsystem, op);
  auto it = reg.ids.find(key);
  if (it != reg.ids.end()) return it->second;
  const HostLabelId id = static_cast<HostLabelId>(reg.names.size());
  reg.names.push_back(key);
  reg.ids.emplace(std::move(key), id);
  return id;
}

std::size_t host_label_count() { return registry().names.size(); }

HostProfiler::HostProfiler() { frames_.reserve(64); }

HostProfiler::~HostProfiler() {
  if (detail::g_host_profiler == this) detail::g_host_profiler = nullptr;
}

void HostProfiler::install() { detail::g_host_profiler = this; }

void HostProfiler::uninstall() { detail::g_host_profiler = nullptr; }

HostLabelId HostProfiler::current_label() {
  const HostProfiler* prof = detail::g_host_profiler;
  if (prof == nullptr || prof->frames_.empty()) return kHostUnlabeled;
  return prof->frames_.back().label;
}

std::uint64_t HostProfiler::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

HostLabelStats& HostProfiler::slot(HostLabelId label) {
  if (label >= stats_.size()) {
    // Grow only as far as this label (names filled lazily at snapshot
    // time). Must NOT consult the label registry here: slot() runs inside
    // the operator-new hook, and the registry's own function-local static
    // may still be under construction when its first allocation lands
    // here — touching it would re-enter the static's init guard and
    // self-deadlock.
    stats_.resize(static_cast<std::size_t>(label) + 1);
  }
  return stats_[label];
}

void HostProfiler::push_frame(HostLabelId label, std::uint64_t now_ns) {
  frames_.push_back(Frame{label, now_ns, 0});
}

void HostProfiler::pop_frame(std::uint64_t now_ns) {
  assert(!frames_.empty());
  const Frame frame = frames_.back();
  frames_.pop_back();
  const std::uint64_t total =
      now_ns > frame.start_ns ? now_ns - frame.start_ns : 0;
  const std::uint64_t self =
      total > frame.child_ns ? total - frame.child_ns : 0;
  HostLabelStats& s = slot(frame.label);
  ++s.calls;
  s.total_ns += total;
  s.self_ns += self;
  if (total > s.max_ns) s.max_ns = total;
  if (!frames_.empty()) frames_.back().child_ns += total;
}

void HostProfiler::note_event_scheduled(HostLabelId label) {
  ++slot(label).events_scheduled;
}

void HostProfiler::note_event_dispatched(HostLabelId label) {
  ++slot(label).events_dispatched;
}

void HostProfiler::note_alloc(std::size_t bytes) {
  if (t_in_alloc_hook) return;
  t_in_alloc_hook = true;
  HostLabelStats& s =
      slot(frames_.empty() ? kHostUnlabeled : frames_.back().label);
  ++s.alloc_count;
  s.alloc_bytes += bytes;
  t_in_alloc_hook = false;
}

void HostProfiler::note_free() {
  if (t_in_alloc_hook) return;
  t_in_alloc_hook = true;
  ++slot(frames_.empty() ? kHostUnlabeled : frames_.back().label).free_count;
  t_in_alloc_hook = false;
}

std::vector<HostLabelStats> HostProfiler::snapshot() const {
  const LabelRegistry& reg = registry();
  std::vector<HostLabelStats> out(reg.names.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i < stats_.size()) out[i] = stats_[i];
    out[i].subsystem = reg.names[i].first;
    out[i].op = reg.names[i].second;
  }
  return out;
}

HostLabelStats HostProfiler::stats_for(const std::string& subsystem,
                                       const std::string& op) const {
  const LabelRegistry& reg = registry();
  HostLabelStats out;
  out.subsystem = subsystem;
  out.op = op;
  auto it = reg.ids.find(std::make_pair(subsystem, op));
  if (it == reg.ids.end()) return out;
  if (it->second < stats_.size()) {
    out = stats_[it->second];
    out.subsystem = subsystem;
    out.op = op;
  }
  return out;
}

std::uint64_t HostProfiler::total_self_ns() const {
  std::uint64_t sum = 0;
  for (const HostLabelStats& s : stats_) sum += s.self_ns;
  return sum;
}

void HostProfiler::reset() {
  stats_.assign(stats_.size(), HostLabelStats{});
  // Open frames stay: a reset mid-scope keeps attributing from here on.
}

std::uint64_t HostProfiler::process_alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
std::uint64_t HostProfiler::process_alloc_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}
std::uint64_t HostProfiler::process_free_count() {
  return g_free_count.load(std::memory_order_relaxed);
}

namespace {

inline void count_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  HostProfiler* prof = detail::g_host_profiler;
  if (prof != nullptr) prof->note_alloc(size);
}

inline void count_free() {
  g_free_count.fetch_add(1, std::memory_order_relaxed);
  HostProfiler* prof = detail::g_host_profiler;
  if (prof != nullptr) prof->note_free();
}

void* checked_alloc(std::size_t size) {
  // operator new must honor the new-handler protocol before bad_alloc.
  for (;;) {
    void* p = std::malloc(size != 0 ? size : 1);
    if (p != nullptr) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* checked_aligned_alloc(std::size_t size, std::size_t alignment) {
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*)
                                                     : alignment,
                       size != 0 ? size : 1) == 0) {
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace
}  // namespace magma::obs

// ---------------------------------------------------------------------------
// Global allocation hooks. Defined here (not behind a flag): linking libmagma
// routes every new/delete in the process through these, which is what makes
// "allocations per attach" measurable without a special build. Cost when no
// profiler is installed: one relaxed atomic add and one branch per call.
// ---------------------------------------------------------------------------

namespace obsprof = magma::obs;

void* operator new(std::size_t size) {
  obsprof::count_alloc(size);
  return obsprof::checked_alloc(size);
}

void* operator new[](std::size_t size) {
  obsprof::count_alloc(size);
  return obsprof::checked_alloc(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  obsprof::count_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  obsprof::count_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new(std::size_t size, std::align_val_t al) {
  obsprof::count_alloc(size);
  return obsprof::checked_aligned_alloc(size, static_cast<std::size_t>(al));
}

void* operator new[](std::size_t size, std::align_val_t al) {
  obsprof::count_alloc(size);
  return obsprof::checked_aligned_alloc(size, static_cast<std::size_t>(al));
}

void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  obsprof::count_alloc(size);
  void* p = nullptr;
  const std::size_t alignment = static_cast<std::size_t>(al);
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size != 0 ? size : 1) != 0) {
    return nullptr;
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t& tag) noexcept {
  return operator new(size, al, tag);
}

void operator delete(void* p) noexcept {
  if (p != nullptr) obsprof::count_free();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  if (p != nullptr) obsprof::count_free();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete[](p); }

void operator delete(void* p, std::align_val_t) noexcept {
  if (p != nullptr) obsprof::count_free();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  if (p != nullptr) obsprof::count_free();
  std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t al) noexcept {
  operator delete(p, al);
}

void operator delete[](void* p, std::size_t, std::align_val_t al) noexcept {
  operator delete[](p, al);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  operator delete[](p);
}

void operator delete(void* p, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  operator delete(p, al);
}

void operator delete[](void* p, std::align_val_t al,
                       const std::nothrow_t&) noexcept {
  operator delete[](p, al);
}
