// Log-spaced latency histogram — the AGW-side aggregation unit behind
// metricsd's histogram metric type.
//
// Gateways observe raw span durations locally and ship only bucket counts
// (Prometheus-style cumulative snapshots); the orchestrator merges buckets
// across gateways and answers p50/p95/p99 queries. Shipping buckets instead
// of samples is what keeps the metrics pipeline O(buckets) regardless of
// attach rate — the same reason the paper's deployments run Prometheus.
//
// Buckets are defined by their upper bounds; counts has bounds.size()+1
// entries, the last being the overflow bucket. The default bounds are
// log-spaced (5 per decade) from 100 µs to 100 s — wide enough for a LAN
// RPC and a satellite-backhaul attach alike, at ≤ 59% bucket-width error.
#pragma once

#include <cstdint>
#include <vector>

namespace magma::obs {

class Histogram {
 public:
  Histogram() : Histogram(default_bounds()) {}
  explicit Histogram(std::vector<double> bounds);

  // `per_decade` bounds per factor of 10, from `lo` to `hi` inclusive.
  static std::vector<double> log_bounds(double lo, double hi, int per_decade);
  static const std::vector<double>& default_bounds();

  void observe(double value);
  // Quantile estimate (q in [0,1]) with geometric interpolation inside the
  // bucket. Returns 0 for an empty histogram.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / count_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  // Merge another histogram's buckets into this one. Returns false (and
  // leaves this histogram untouched) when the bucket layouts differ —
  // cross-layout merging would silently misattribute counts.
  bool merge(const Histogram& other);
  // Replace this histogram's contents with a decoded snapshot. Rejects
  // layout mismatches between bounds and counts.
  bool assign(std::vector<double> bounds, std::vector<std::uint64_t> counts,
              double sum);

 private:
  std::vector<double> bounds_;           // ascending upper bounds
  std::vector<std::uint64_t> counts_;    // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

}  // namespace magma::obs
