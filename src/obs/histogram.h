// Log-spaced latency histogram — the AGW-side aggregation unit behind
// metricsd's histogram metric type.
//
// Gateways observe raw span durations locally and ship only bucket counts
// (Prometheus-style cumulative snapshots); the orchestrator merges buckets
// across gateways and answers p50/p95/p99 queries. Shipping buckets instead
// of samples is what keeps the metrics pipeline O(buckets) regardless of
// attach rate — the same reason the paper's deployments run Prometheus.
//
// Buckets are defined by their upper bounds; counts has bounds.size()+1
// entries, the last being the overflow bucket. The default bounds are
// log-spaced (5 per decade) from 100 µs to 100 s — wide enough for a LAN
// RPC and a satellite-backhaul attach alike, at ≤ 59% bucket-width error.
#pragma once

#include <cstdint>
#include <vector>

namespace magma::obs {

class Histogram {
 public:
  Histogram() : Histogram(default_bounds()) {}
  explicit Histogram(std::vector<double> bounds);

  // `per_decade` bounds per factor of 10, from `lo` to `hi` inclusive.
  static std::vector<double> log_bounds(double lo, double hi, int per_decade);
  static const std::vector<double>& default_bounds();

  // Observe `value`, optionally tagging the bucket it lands in with an
  // exemplar trace id (0: keep the bucket's current exemplar). Returns the
  // exemplar the new one displaced (0: none) so the caller can release any
  // pin it holds on the old trace.
  std::uint64_t observe(double value, std::uint64_t exemplar_trace_id = 0);
  // Quantile estimate (q in [0,1]) with geometric interpolation inside the
  // bucket. Returns 0 for an empty histogram.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / count_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  // Per-bucket exemplar trace ids (0: none) — the metrics→trace pivot: a
  // p99 query can name one pinned trace that actually landed in the p99
  // bucket, instead of only error traces being reachable.
  const std::vector<std::uint64_t>& exemplars() const { return exemplars_; }
  void set_exemplar(std::size_t bucket, std::uint64_t trace_id);
  // Exemplar of the bucket the quantile-q sample falls in, walking down to
  // lower buckets when that one has none. 0 when the histogram is empty or
  // no bucket at or below q carries an exemplar.
  std::uint64_t exemplar_near_quantile(double q) const;

  // Merge another histogram's buckets into this one. Returns false (and
  // leaves this histogram untouched) when the bucket layouts differ —
  // cross-layout merging would silently misattribute counts. Counts
  // saturate at uint64 max instead of wrapping (a wrapped counter would
  // report a near-empty bucket); the other side's exemplars fill buckets
  // that have none here.
  bool merge(const Histogram& other);
  // Replace this histogram's contents with a decoded snapshot. Rejects
  // layout mismatches between bounds and counts. Exemplars reset (the
  // snapshot codec re-applies them via set_exemplar).
  bool assign(std::vector<double> bounds, std::vector<std::uint64_t> counts,
              double sum);

 private:
  std::size_t bucket_index(double value) const;

  std::vector<double> bounds_;           // ascending upper bounds
  std::vector<std::uint64_t> counts_;    // bounds_.size() + 1 (overflow last)
  std::vector<std::uint64_t> exemplars_;  // parallel to counts_, 0 = none
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

}  // namespace magma::obs
