#include "obs/tail_sampler.h"

#include <algorithm>

#include "obs/critical_path.h"
#include "rpc/wire.h"

namespace magma::obs {

common::Bytes encode_trace_summaries(
    const std::vector<TraceSummary>& summaries) {
  rpc::Writer w;
  w.u64(summaries.size());
  for (const TraceSummary& s : summaries) {
    w.str(s.root_op);
    w.str(s.root_service);
    w.str(s.gateway_id);
    w.u64(s.trace_id);
    w.i64(s.start);
    w.i64(s.duration);
    // State count on the wire so a reader with a different WaitVector width
    // still decodes (unknown states are dropped, missing ones stay zero).
    w.u8(static_cast<std::uint8_t>(kWaitStateCount));
    for (const sim::Duration d : s.breakdown) w.i64(d);
  }
  return std::move(w).take();
}

common::Result<std::vector<TraceSummary>> decode_trace_summaries(
    common::BytesView data) {
  rpc::Reader r(data);
  const std::uint64_t count = r.u64();
  std::vector<TraceSummary> out;
  // Each summary needs ≥ 37 wire bytes (three length-prefixed strings plus
  // the fixed fields); the count is wire data — never reserve it blindly.
  out.reserve(std::min<std::uint64_t>(count, r.remaining() / 37 + 1));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    TraceSummary s;
    s.root_op = r.str();
    s.root_service = r.str();
    s.gateway_id = r.str();
    s.trace_id = r.u64();
    s.start = r.i64();
    s.duration = r.i64();
    const std::uint8_t states = r.u8();
    if (static_cast<std::uint64_t>(states) * 8 > r.remaining()) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "oversized trace summary"};
    }
    for (std::uint8_t st = 0; st < states && r.ok(); ++st) {
      const sim::Duration d = r.i64();
      if (st < kWaitStateCount) s.breakdown[st] = d;
    }
    out.push_back(std::move(s));
  }
  if (!r.ok() || !r.at_end()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "corrupt trace summary report"};
  }
  return out;
}

TailSampler::TailSampler(sim::Kernel& kernel, Tracer& tracer,
                         TailSamplerConfig config)
    : kernel_(kernel), tracer_(tracer), config_(config) {
  hook_id_ = tracer_.add_finish_hook(
      [this](const SpanRecord& span) { on_finish(span); });
}

TailSampler::~TailSampler() {
  tracer_.remove_finish_hook(hook_id_);
  for (const auto& [op, keeps] : kept_) {
    for (const Kept& k : keeps) tracer_.unpin(k.trace_id);
  }
}

void TailSampler::set_keep_per_op(std::size_t k) {
  k = std::max<std::size_t>(1, k);
  if (k == config_.keep_per_op) return;
  config_.keep_per_op = k;
  // Shrinking: give back the over-budget pins now, fastest first — the
  // slowest keeps are the ones this sampler exists to retain.
  for (auto& [op, keeps] : kept_) {
    while (keeps.size() > k) {
      auto fastest = std::min_element(
          keeps.begin(), keeps.end(),
          [](const Kept& a, const Kept& b) { return a.duration < b.duration; });
      tracer_.unpin(fastest->trace_id);
      keeps.erase(fastest);
      ++stats_.budget_trims;
    }
  }
}

std::size_t TailSampler::held() const {
  std::size_t n = 0;
  for (const auto& [op, keeps] : kept_) n += keeps.size();
  return n;
}

void TailSampler::on_finish(const SpanRecord& span) {
  if (span.parent_span_id != 0) return;  // only roots are sampled
  if (!node_filter_.empty() && span.node != node_filter_) return;
  ++stats_.roots_seen;

  // Lazy window rollover, driven by root completion times (deterministic:
  // independent of when drain_ready is called).
  const std::int64_t idx =
      config_.window > 0 ? span.end / config_.window : 0;
  if (window_index_ < 0) {
    window_index_ = idx;
  } else if (idx > window_index_) {
    close_current_window();
    window_index_ = idx;
  }

  // Errored traces are already retained by the error pin; spending tail
  // budget on them would shadow the slow-but-successful ones.
  if (span.error || tracer_.error_pinned(span.trace_id)) {
    ++stats_.skipped_error_pinned;
    return;
  }

  auto it = kept_.find(span.name);
  if (it == kept_.end()) {
    if (kept_.size() >= config_.max_ops_per_window) {
      ++stats_.skipped_op_cap;
      return;
    }
    it = kept_.emplace(span.name, std::vector<Kept>{}).first;
    it->second.reserve(config_.keep_per_op);
  }
  std::vector<Kept>& keeps = it->second;
  const Kept candidate{span.trace_id, span.start, span.duration(),
                       span.service, span.node};
  if (keeps.size() < config_.keep_per_op) {
    keeps.push_back(candidate);
    tracer_.pin(span.trace_id);
    ++stats_.kept;
    return;
  }
  // Full: displace the fastest keep, but only for a strictly slower trace
  // (ties keep the incumbent — first-seen wins).
  auto fastest = std::min_element(
      keeps.begin(), keeps.end(),
      [](const Kept& a, const Kept& b) { return a.duration < b.duration; });
  if (keeps.empty() || candidate.duration <= fastest->duration) return;
  tracer_.unpin(fastest->trace_id);
  ++stats_.displaced;
  *fastest = candidate;
  tracer_.pin(span.trace_id);
  ++stats_.kept;
}

void TailSampler::close_current_window() {
  for (auto& [op, keeps] : kept_) {
    for (const Kept& k : keeps) {
      TraceSummary s;
      const CriticalPathResult cp = critical_path(tracer_, k.trace_id);
      if (cp.valid) {
        s.root_op = cp.root_name;
        s.root_service = cp.root_service;
        s.start = cp.root_start;
        s.duration = cp.total;
        s.breakdown = cp.breakdown;
      } else {
        // Spans already gone (tiny ring): ship what the keep recorded, all
        // of it unattributed.
        s.root_op = op;
        s.root_service = k.service;
        s.start = k.start;
        s.duration = k.duration;
        s.breakdown[static_cast<std::size_t>(WaitState::kOther)] = k.duration;
      }
      s.gateway_id = k.node;
      s.trace_id = k.trace_id;
      tracer_.unpin(k.trace_id);
      ready_.push_back(std::move(s));
      if (ready_.size() > config_.max_ready) {
        ready_.pop_front();
        ++stats_.ready_dropped;
      }
    }
  }
  kept_.clear();
  ++stats_.windows_closed;
}

std::vector<TraceSummary> TailSampler::drain_ready() {
  // An idle gateway still ships: close the window if its time fully passed
  // without a newer root arriving to roll it.
  if (window_index_ >= 0 && config_.window > 0 &&
      kernel_.now() / config_.window > window_index_) {
    close_current_window();
    window_index_ = kernel_.now() / config_.window;
  }
  std::vector<TraceSummary> out(ready_.begin(), ready_.end());
  ready_.clear();
  return out;
}

}  // namespace magma::obs
