// SLO declarations and error-budget math.
//
// An SLI here is a metric series whose samples are "good fractions" in
// [0, 1] (1 = the objective was met at that instant): sli_gateway_up,
// sli_attach_success_rate, sli_config_sync_fresh, sli_attach_p95_ok. An SLO
// binds such a series to an objective (the target good fraction) over a
// budget window; the error budget is the (1 - objective) slice of that
// window the service is allowed to burn.
//
// Burn rate is the SRE-book normalization: a burn of 1 consumes exactly the
// budget over the window, a burn of 14.4 consumes a 30-day budget's 2% in
// one hour. Alerting on it is metricsd's AlertKind::kBurnRate (fast AND
// slow window must both burn — see metricsd.h); this header only holds the
// pure math and report formatting so it stays usable from benches and tests
// without dragging in orc8r.
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace magma::obs::slo {

struct SloSpec {
  std::string name;        // "availability", "attach_success", ...
  std::string sli_metric;  // metric series carrying the 0..1 good fraction
  double objective = 0.999;  // target good fraction over the window
  sim::Duration window = 7 * 24 * sim::kHour;  // error-budget window
  // Derived SLI (optional): when source_histogram is set, the owner's SLO
  // tick computes quantile(source_histogram, quantile), compares it to
  // `target`, and pushes the 0/1 outcome as sli_metric — how "attach p95
  // under 500 ms" becomes an SLI from histograms that already ship.
  std::string source_histogram;
  double quantile = 0.95;
  double target = 0;  // threshold for the derived quantile, seconds
};

// (1 - good_fraction) / (1 - objective): the rate the error budget burns
// relative to the steady rate that would exhaust it exactly at window end.
// 0 when the objective is degenerate (>= 1 treated as no budget at all
// would divide by zero; callers install objectives < 1).
double burn_rate(double good_fraction, double objective);

// Fraction of the window's error budget consumed by running at `mean_good`
// for `elapsed` of the `window`: burn_rate * elapsed / window. 1.0 = budget
// gone.
double budget_consumed(double mean_good, double objective,
                       sim::Duration elapsed, sim::Duration window);

// One row of the fleet SLO report (what Orchestrator::slo_report returns).
struct SloStatus {
  std::string name;
  double objective = 0;
  double sli = 1.0;  // mean good fraction over the report window
  double burn = 0;
  double budget_consumed = 0;
  bool alerting = false;  // a burn-rate alert on this SLI is firing now
};

// Human-readable rendering, one line per SLO.
std::string format_slo_report(const std::vector<SloStatus>& rows);

}  // namespace magma::obs::slo
