// Per-gateway availability accounting — the one number the paper's
// operators judge a deployment by (§5: AccessParks ran "with an average
// network availability of 99.7%").
//
// The ledger is an up/down interval log on the sim clock, driven by orc8r
// statusd's health FSM: a gateway entering Unreachable opens a downtime
// interval, its next successful checkin closes it. Because unreachability
// is *detected* several missed checkins after the gateway actually went
// dark, statusd backdates the down edge to the first missed heartbeat
// (last_checkin + checkin_interval) — that bounds the per-edge error to one
// checkin interval instead of the detection latency, which is what lets the
// availability bench hold a 0.1% accuracy budget against injected outages.
//
// Each closed interval carries a downtime cause label (backhaul, service
// crash, overload, unknown), filled in after the fact by the orchestrator's
// attribution join (see attribution.h) — the ledger itself only stores it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace magma::obs::slo {

enum class DowntimeCause : std::uint8_t {
  kUnknown = 0,
  kBackhaul = 1,      // transport resets / RTO pinned at cap / link drops
  kServiceCrash = 2,  // ERROR events or service error-counter growth
  kOverload = 3,      // admission rejections or runq-dominated critical path
};
inline constexpr std::size_t kDowntimeCauseCount = 4;
const char* downtime_cause_name(DowntimeCause cause);

struct DowntimeInterval {
  sim::TimePoint start = 0;
  sim::TimePoint end = -1;  // -1: still open (gateway is down right now)
  DowntimeCause cause = DowntimeCause::kUnknown;
  std::string detail;  // human-readable evidence ("transport_resets +3")
};

struct AvailabilityStats {
  std::uint64_t downs = 0;   // intervals opened
  std::uint64_t ups = 0;     // intervals closed
  std::uint64_t labels = 0;  // intervals labeled with a cause
};

class AvailabilityLedger {
 public:
  // First contact with a gateway: availability windows are clamped to this
  // point, so a fleet member added mid-window is not charged for the time
  // before it existed. Idempotent; keeps the earliest time seen.
  void observe(const std::string& gateway_id, sim::TimePoint at);

  // Open a downtime interval at `at` (may be backdated; clamped so
  // intervals never overlap the previous one). No-op while already down.
  void record_down(const std::string& gateway_id, sim::TimePoint at);
  // Close the open interval at `at`. No-op while up.
  void record_up(const std::string& gateway_id, sim::TimePoint at);
  bool is_down(const std::string& gateway_id) const;

  // Attach a cause to the interval that started at `start` (the attribution
  // join runs after a settle delay, so it labels by start time). False if
  // no such interval exists.
  bool label(const std::string& gateway_id, sim::TimePoint start,
             DowntimeCause cause, std::string detail);

  // nullptr for a gateway never observed.
  const std::vector<DowntimeInterval>* intervals(
      const std::string& gateway_id) const;
  // -1 for a gateway never observed.
  sim::TimePoint first_seen(const std::string& gateway_id) const;

  // Downtime overlapping [from, to), in seconds. Open intervals are charged
  // up to `to`.
  double downtime_seconds(const std::string& gateway_id, sim::TimePoint from,
                          sim::TimePoint to) const;
  // Uptime ratio over [max(from, first_seen), to). 1.0 for a window the
  // gateway never existed in (a gateway never seen reads fully available —
  // the same convention as statusd's "unknown gateway reads healthy").
  double uptime_ratio(const std::string& gateway_id, sim::TimePoint from,
                      sim::TimePoint to) const;

  std::vector<std::string> tracked() const;
  const AvailabilityStats& stats() const { return stats_; }

 private:
  struct Gateway {
    sim::TimePoint first_seen = -1;
    bool down = false;
    std::vector<DowntimeInterval> intervals;
  };

  std::map<std::string, Gateway> gateways_;
  AvailabilityStats stats_;
};

}  // namespace magma::obs::slo
