#include "obs/slo/attribution.h"

#include <cstdio>

namespace magma::obs::slo {

namespace {

std::string backhaul_detail(const DowntimeSignals& s) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "transport_resets +%.0f rto_at_cap +%.0f link_drops +%.0f",
                s.transport_resets_growth, s.rto_at_cap_growth,
                s.link_drops_growth);
  return buf;
}

std::string crash_detail(const DowntimeSignals& s) {
  if (s.error_event) return "ERROR event from " + s.error_source;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "service_errors_%s +%.0f",
                s.error_service.c_str(), s.max_service_error_growth);
  return buf;
}

std::string overload_detail(const DowntimeSignals& s) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "overload_rejections +%.0f runq_fraction %.2f",
                s.overload_rejections_growth, s.runq_wait_fraction);
  return buf;
}

}  // namespace

DowntimeCause attribute_downtime(const DowntimeSignals& signals,
                                 std::string* detail) {
  if (signals.transport_resets_growth > 0 || signals.rto_at_cap_growth > 0 ||
      signals.link_drops_growth > 0) {
    if (detail != nullptr) *detail = backhaul_detail(signals);
    return DowntimeCause::kBackhaul;
  }
  if (signals.error_event || signals.max_service_error_growth > 0) {
    if (detail != nullptr) *detail = crash_detail(signals);
    return DowntimeCause::kServiceCrash;
  }
  if (signals.overload_rejections_growth > 0 ||
      signals.runq_wait_fraction > kRunqOverloadFraction) {
    if (detail != nullptr) *detail = overload_detail(signals);
    return DowntimeCause::kOverload;
  }
  if (detail != nullptr) detail->clear();
  return DowntimeCause::kUnknown;
}

}  // namespace magma::obs::slo
