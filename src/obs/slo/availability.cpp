#include "obs/slo/availability.h"

#include <algorithm>

namespace magma::obs::slo {

const char* downtime_cause_name(DowntimeCause cause) {
  switch (cause) {
    case DowntimeCause::kUnknown: return "unknown";
    case DowntimeCause::kBackhaul: return "backhaul";
    case DowntimeCause::kServiceCrash: return "service_crash";
    case DowntimeCause::kOverload: return "overload";
  }
  return "?";
}

void AvailabilityLedger::observe(const std::string& gateway_id,
                                 sim::TimePoint at) {
  Gateway& gw = gateways_[gateway_id];
  if (gw.first_seen < 0 || at < gw.first_seen) gw.first_seen = at;
}

void AvailabilityLedger::record_down(const std::string& gateway_id,
                                     sim::TimePoint at) {
  Gateway& gw = gateways_[gateway_id];
  if (gw.down) return;
  if (gw.first_seen < 0) gw.first_seen = at;
  // Backdated edges must not reach into the previous interval (or before
  // first contact): clamp forward.
  sim::TimePoint start = std::max(at, gw.first_seen);
  if (!gw.intervals.empty() && gw.intervals.back().end > start) {
    start = gw.intervals.back().end;
  }
  DowntimeInterval interval;
  interval.start = start;
  gw.intervals.push_back(std::move(interval));
  gw.down = true;
  ++stats_.downs;
}

void AvailabilityLedger::record_up(const std::string& gateway_id,
                                   sim::TimePoint at) {
  auto it = gateways_.find(gateway_id);
  if (it == gateways_.end() || !it->second.down) return;
  DowntimeInterval& interval = it->second.intervals.back();
  interval.end = std::max(at, interval.start);
  it->second.down = false;
  ++stats_.ups;
}

bool AvailabilityLedger::is_down(const std::string& gateway_id) const {
  auto it = gateways_.find(gateway_id);
  return it != gateways_.end() && it->second.down;
}

bool AvailabilityLedger::label(const std::string& gateway_id,
                               sim::TimePoint start, DowntimeCause cause,
                               std::string detail) {
  auto it = gateways_.find(gateway_id);
  if (it == gateways_.end()) return false;
  // Newest first: the attribution join labels intervals shortly after they
  // close.
  for (auto rit = it->second.intervals.rbegin();
       rit != it->second.intervals.rend(); ++rit) {
    if (rit->start == start) {
      rit->cause = cause;
      rit->detail = std::move(detail);
      ++stats_.labels;
      return true;
    }
  }
  return false;
}

const std::vector<DowntimeInterval>* AvailabilityLedger::intervals(
    const std::string& gateway_id) const {
  auto it = gateways_.find(gateway_id);
  return it == gateways_.end() ? nullptr : &it->second.intervals;
}

sim::TimePoint AvailabilityLedger::first_seen(
    const std::string& gateway_id) const {
  auto it = gateways_.find(gateway_id);
  return it == gateways_.end() ? -1 : it->second.first_seen;
}

double AvailabilityLedger::downtime_seconds(const std::string& gateway_id,
                                            sim::TimePoint from,
                                            sim::TimePoint to) const {
  auto it = gateways_.find(gateway_id);
  if (it == gateways_.end() || to <= from) return 0;
  double down = 0;
  for (const DowntimeInterval& interval : it->second.intervals) {
    const sim::TimePoint end = interval.end < 0 ? to : interval.end;
    const sim::TimePoint lo = std::max(interval.start, from);
    const sim::TimePoint hi = std::min(end, to);
    if (hi > lo) down += sim::to_seconds(hi - lo);
  }
  return down;
}

double AvailabilityLedger::uptime_ratio(const std::string& gateway_id,
                                        sim::TimePoint from,
                                        sim::TimePoint to) const {
  auto it = gateways_.find(gateway_id);
  if (it == gateways_.end() || it->second.first_seen < 0) return 1.0;
  const sim::TimePoint start = std::max(from, it->second.first_seen);
  if (to <= start) return 1.0;
  const double span = sim::to_seconds(to - start);
  const double down = downtime_seconds(gateway_id, start, to);
  return span <= 0 ? 1.0 : std::max(0.0, 1.0 - down / span);
}

std::vector<std::string> AvailabilityLedger::tracked() const {
  std::vector<std::string> out;
  out.reserve(gateways_.size());
  for (const auto& [id, _] : gateways_) out.push_back(id);
  return out;
}

}  // namespace magma::obs::slo
