// Downtime attribution: label a closed downtime interval with its cause.
//
// The orchestrator gathers evidence around the interval — counter growth
// across it (cumulative gauges sampled just before the down edge vs after
// recovery plus a settle delay, so the post-recovery metrics tick has
// landed), ERROR events from the gateway, per-service error-counter growth
// from the Service303 snapshots, and the critical-path runq share — and
// this pure function turns the evidence into a cause.
//
// Precedence matters and is deliberate:
//   1. backhaul — transport resets, RTO pinned at max, or link drops grew.
//      Checked FIRST: a backhaul outage buffers the gateway's events and
//      ships them after recovery with in-window timestamps, so an ERROR
//      event alone must not outrank transport evidence (a crashed service
//      with a healthy backhaul, conversely, grows none of these counters).
//   2. service crash — an ERROR event or a service error counter grew while
//      the transport stayed clean.
//   3. overload — admission-control rejections grew, or the critical path
//      went runq-dominated.
//   4. unknown — nothing conclusive; counted, never guessed.
#pragma once

#include <string>

#include "obs/slo/availability.h"

namespace magma::obs::slo {

// Evidence gathered for one downtime interval. Growth fields are counter
// deltas across [just before the down edge, recovery + settle]; 0 when the
// counter did not move (or was never sampled on both sides).
struct DowntimeSignals {
  // Backhaul lens (transport + link counters from the gateway's own
  // telemetry — cumulative, so the post-recovery report carries the growth
  // that happened mid-outage).
  double transport_resets_growth = 0;
  double rto_at_cap_growth = 0;
  double link_drops_growth = 0;
  // Service lens.
  bool error_event = false;        // ERROR-severity event in the window
  std::string error_source;        // its emitting service
  double max_service_error_growth = 0;  // largest service_errors_* delta
  std::string error_service;            // the service it belongs to
  // Overload lens.
  double overload_rejections_growth = 0;
  double runq_wait_fraction = 0;  // critical-path runq share in [0, 1]
};

// Threshold above which the critical-path runq share alone indicates
// overload.
inline constexpr double kRunqOverloadFraction = 0.5;

// `detail` (optional) receives a one-line evidence summary.
DowntimeCause attribute_downtime(const DowntimeSignals& signals,
                                 std::string* detail);

}  // namespace magma::obs::slo
