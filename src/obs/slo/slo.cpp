#include "obs/slo/slo.h"

#include <algorithm>
#include <cstdio>

namespace magma::obs::slo {

double burn_rate(double good_fraction, double objective) {
  const double budget = 1.0 - objective;
  if (budget <= 0) return 0;
  return std::max(0.0, 1.0 - good_fraction) / budget;
}

double budget_consumed(double mean_good, double objective,
                       sim::Duration elapsed, sim::Duration window) {
  if (window <= 0 || elapsed <= 0) return 0;
  return burn_rate(mean_good, objective) * sim::to_seconds(elapsed) /
         sim::to_seconds(window);
}

std::string format_slo_report(const std::vector<SloStatus>& rows) {
  std::string out;
  for (const SloStatus& row : rows) {
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%-24s objective=%.3f%% sli=%.4f%% burn=%.2f "
                  "budget_consumed=%.1f%%%s\n",
                  row.name.c_str(), 100.0 * row.objective, 100.0 * row.sli,
                  row.burn, 100.0 * row.budget_consumed,
                  row.alerting ? "  [ALERTING]" : "");
    out += line;
  }
  return out;
}

}  // namespace magma::obs::slo
