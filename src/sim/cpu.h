// CPU model for simulated hosts.
//
// The paper's evaluation turns on where CPU time goes inside an AGW: attach
// storms are control-plane (crypto + session setup) heavy, steady state is
// user-plane (forwarding) heavy, and Figures 7/8 statically partition cores
// between the two. This model reproduces exactly that mechanism: a host has
// N cores; services submit work items tagged control/user; cores drain
// per-class FIFO queues. Cores can be shared (the kernel scheduler case in
// the paper) or statically pinned per class.
//
// Work costs are expressed in seconds on a 1 GHz reference core; a host's
// `speed_ghz` scales them, letting the same service code run on the paper's
// Intel J3160 (1.6 GHz) and Xeon 6126 (2.6 GHz) AGWs.
//
// Continuous profiler: every task may carry a (service, operation) label —
// interned once via intern_label(), then O(1) per submission — and the model
// attributes on-CPU time, completions, and run-queue wait per label, per
// core, and per class (run-queue wait as log-bucketed histograms). Benches
// turn a single "CPU at 97%" into "pipelined 71%, accessd 22%, ...", the
// per-service breakdown Figures 6/7 are really about. An optional tracer
// emits one span per executed task (service "cpu<core>") so Chrome's trace
// viewer shows the per-core schedule.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/string_pair_map.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "sim/kernel.h"
#include "sim/time.h"

namespace magma::sim {

enum class WorkClass : std::uint8_t { kControl = 0, kUser = 1 };

struct CpuConfig {
  int cores = 4;
  double speed_ghz = 1.6;  // relative to the 1 GHz reference core
  // Static partition: number of cores reserved for user-plane work. The
  // remaining cores serve control-plane work. -1 means no partition: all
  // cores serve both classes (work-conserving, the "flexible" case).
  int user_plane_cores = -1;
  // Bound on queued-but-not-running work per class; further submissions are
  // rejected (models overload drops, e.g. attach requests beyond the MME's
  // socket backlog). 0 means unbounded.
  std::size_t max_queue_depth = 0;
};

// Cumulative counters; utilization over a window is computed from deltas.
struct CpuStats {
  Duration busy_ns[2] = {0, 0};  // indexed by WorkClass
  std::uint64_t completed[2] = {0, 0};
  std::uint64_t rejected[2] = {0, 0};
  std::size_t queue_depth[2] = {0, 0};  // instantaneous
};

// Per-(service, operation) attribution. busy_ns is charged when the task
// *starts* (same convention as CpuStats::busy_ns, so per-label sums match
// per-class and per-core totals exactly); queue_wait_ns is the time the task
// sat runnable before a core picked it up. rpc_wait_ns and timer_wait_ns are
// off-CPU charges reported by other layers via charge_wait() — the RPC stack
// charges blocked-on-RPC time and retry-backoff time against the label that
// issued the call — so wall time per label decomposes into
// busy + queue_wait + rpc_wait + timer_wait.
struct TaskLabelStats {
  std::string service;  // e.g. "accessd", "pipelined"
  std::string op;       // e.g. "establish", "forward_ul"
  Duration busy_ns = 0;
  Duration queue_wait_ns = 0;
  Duration rpc_wait_ns = 0;
  Duration timer_wait_ns = 0;
  std::uint64_t completed = 0;

  Duration wall_ns() const {
    return busy_ns + queue_wait_ns + rpc_wait_ns + timer_wait_ns;
  }
};

class CpuModel {
 public:
  // Label 0 is the pre-interned ("unattributed", "") catch-all used by the
  // label-less submit() overload.
  using LabelId = std::uint32_t;

  CpuModel(Kernel& kernel, CpuConfig config);

  // Register a (service, operation) attribution label. Idempotent (same
  // pair returns the same id); call once at wiring time, not per task.
  LabelId intern_label(const std::string& service, const std::string& op);

  // Off-CPU attribution: charge `amount` of wait time against `label`.
  // kRunq adds to queue_wait_ns (the scheduler also charges this itself for
  // run-queue time; callers use it for upstream admission queues, e.g. the
  // accessd shard queue), kRpcWait/kTimer to their own counters. Other
  // states are ignored — on-CPU time is only ever charged by start().
  void charge_wait(LabelId label, obs::WaitState state, Duration amount);

  // Submit `reference_seconds` of work. `done` runs when the work completes;
  // it is not called if the submission is rejected (returns false).
  bool submit(WorkClass cls, double reference_seconds,
              std::function<void()> done) {
    return submit(cls, kUnattributed, reference_seconds, std::move(done));
  }
  bool submit(WorkClass cls, LabelId label, double reference_seconds,
              std::function<void()> done);
  static constexpr LabelId kUnattributed = 0;

  // Instantaneous view: fraction of cores currently busy, [0,1].
  double instantaneous_utilization() const;

  const CpuStats& stats() const { return stats_; }
  const CpuConfig& config() const { return config_; }
  Kernel& kernel() { return kernel_; }

  // Number of cores eligible to run `cls` under the current partition.
  int cores_for(WorkClass cls) const;

  // --- profiler -----------------------------------------------------------
  // All interned labels with their cumulative attribution, indexed by
  // LabelId (deterministic: intern order).
  const std::vector<TaskLabelStats>& labels() const { return labels_; }
  // On-CPU seconds per service (labels summed over operations), name-ordered.
  std::map<std::string, double> service_busy_seconds() const;
  // Cumulative on-CPU time per core (charged at task start).
  std::vector<Duration> core_busy_ns() const;
  // Run-queue wait distribution (seconds) per work class.
  const obs::Histogram& queue_wait(WorkClass cls) const {
    return queue_wait_[static_cast<std::size_t>(cls)];
  }

  // Windowed per-core utilization: busy fraction of each core since
  // `window` was last stamped (first call stamps and returns zeros). A task
  // is charged entirely to the window in which it starts, so short windows
  // relative to task length read lumpy; benches use multi-second windows.
  struct UtilizationWindow {
    std::vector<Duration> busy;
    TimePoint at = -1;
  };
  std::vector<double> utilization_window(UtilizationWindow& window) const;

  // Optional per-task tracing: each executed task becomes a span named
  // "<service>/<op>" under thread "cpu<core>" on node `node`, parented on
  // the context current at submission — Chrome's viewer then renders the
  // per-core schedule. Expensive per task; opt in for short captures only.
  void set_tracer(obs::Tracer* tracer, std::string node);

  // Always-on span wait attribution (cheap: no spans emitted). When set,
  // the context current at submit() is captured and charged kRunq for its
  // run-queue wait and kCpu for its execution time when the task starts —
  // the span-side mirror of the per-label profiler counters.
  void set_wait_tracer(obs::Tracer* tracer) { wait_tracer_ = tracer; }

 private:
  struct Work {
    WorkClass cls;
    Duration cost;
    LabelId label = kUnattributed;
    TimePoint submitted = 0;
    obs::TraceContext origin;  // tracing parent, captured at submit
    std::function<void()> done;
  };
  struct Core {
    bool busy = false;
    Duration busy_ns = 0;
  };

  bool core_eligible(int core, WorkClass cls) const;
  // Start `work` on `core` now.
  void start(int core, Work work);
  // Called when a core finishes; pulls the next eligible queued item.
  void on_core_idle(int core);

  Kernel& kernel_;
  CpuConfig config_;
  std::vector<Core> cores_;
  std::deque<Work> queue_[2];
  CpuStats stats_;

  std::vector<TaskLabelStats> labels_;
  // Transparent comparator: intern_label's find compares through
  // string_views instead of building a pair<string,string> temporary (two
  // heap allocations per call on the pre-interned fast path).
  std::map<std::pair<std::string, std::string>, LabelId,
           common::StringPairLess>
      label_ids_;
  obs::Histogram queue_wait_[2];
  obs::Tracer* tracer_ = nullptr;         // per-task span emission (opt-in)
  obs::Tracer* wait_tracer_ = nullptr;    // span wait charging (always-on)
  std::string node_;

  obs::Tracer* context_tracer() const {
    return tracer_ != nullptr ? tracer_ : wait_tracer_;
  }
};

// Namespace-level shorthand for call sites that store labels as members.
using LabelId = CpuModel::LabelId;
inline constexpr LabelId kUnattributed = CpuModel::kUnattributed;

}  // namespace magma::sim
