// CPU model for simulated hosts.
//
// The paper's evaluation turns on where CPU time goes inside an AGW: attach
// storms are control-plane (crypto + session setup) heavy, steady state is
// user-plane (forwarding) heavy, and Figures 7/8 statically partition cores
// between the two. This model reproduces exactly that mechanism: a host has
// N cores; services submit work items tagged control/user; cores drain
// per-class FIFO queues. Cores can be shared (the kernel scheduler case in
// the paper) or statically pinned per class.
//
// Work costs are expressed in seconds on a 1 GHz reference core; a host's
// `speed_ghz` scales them, letting the same service code run on the paper's
// Intel J3160 (1.6 GHz) and Xeon 6126 (2.6 GHz) AGWs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/kernel.h"
#include "sim/time.h"

namespace magma::sim {

enum class WorkClass : std::uint8_t { kControl = 0, kUser = 1 };

struct CpuConfig {
  int cores = 4;
  double speed_ghz = 1.6;  // relative to the 1 GHz reference core
  // Static partition: number of cores reserved for user-plane work. The
  // remaining cores serve control-plane work. -1 means no partition: all
  // cores serve both classes (work-conserving, the "flexible" case).
  int user_plane_cores = -1;
  // Bound on queued-but-not-running work per class; further submissions are
  // rejected (models overload drops, e.g. attach requests beyond the MME's
  // socket backlog). 0 means unbounded.
  std::size_t max_queue_depth = 0;
};

// Cumulative counters; utilization over a window is computed from deltas.
struct CpuStats {
  Duration busy_ns[2] = {0, 0};  // indexed by WorkClass
  std::uint64_t completed[2] = {0, 0};
  std::uint64_t rejected[2] = {0, 0};
  std::size_t queue_depth[2] = {0, 0};  // instantaneous
};

class CpuModel {
 public:
  CpuModel(Kernel& kernel, CpuConfig config);

  // Submit `reference_seconds` of work. `done` runs when the work completes;
  // it is not called if the submission is rejected (returns false).
  bool submit(WorkClass cls, double reference_seconds,
              std::function<void()> done);

  // Instantaneous view: fraction of cores currently busy, [0,1].
  double instantaneous_utilization() const;

  const CpuStats& stats() const { return stats_; }
  const CpuConfig& config() const { return config_; }
  Kernel& kernel() { return kernel_; }

  // Number of cores eligible to run `cls` under the current partition.
  int cores_for(WorkClass cls) const;

 private:
  struct Work {
    WorkClass cls;
    Duration cost;
    std::function<void()> done;
  };
  struct Core {
    bool busy = false;
  };

  bool core_eligible(int core, WorkClass cls) const;
  // Start `work` on `core` now.
  void start(int core, Work work);
  // Called when a core finishes; pulls the next eligible queued item.
  void on_core_idle(int core);

  Kernel& kernel_;
  CpuConfig config_;
  std::vector<Core> cores_;
  std::deque<Work> queue_[2];
  CpuStats stats_;
};

}  // namespace magma::sim
