// Point-to-point link model: bandwidth, propagation delay, jitter, loss.
//
// The paper repeatedly leans on backhaul quality — satellite and shared
// microwave links with loss and high latency are why Magma terminates GTP at
// the AGW and syncs state with desired-state semantics. This model gives the
// experiments a dial for exactly those properties.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/kernel.h"
#include "sim/random.h"
#include "sim/time.h"

namespace magma::sim {

struct LinkConfig {
  double bandwidth_bps = 1e9;       // 1 Gbps default
  Duration latency = 1 * kMillisecond;  // one-way propagation delay
  Duration jitter = 0;              // uniform [0, jitter) added per packet
  double loss_probability = 0.0;    // i.i.d. per-packet loss
  std::string name = "link";
};

// Canned profiles used across benches and examples.
LinkConfig lan_link();          // 1 Gbps, 0.2 ms, lossless
LinkConfig fiber_backhaul();    // 1 Gbps, 5 ms, ~0 loss
LinkConfig microwave_backhaul();// 100 Mbps, 15 ms, 0.5% loss, 3 ms jitter
LinkConfig satellite_backhaul();// 20 Mbps, 300 ms, 2% loss, 20 ms jitter

struct LinkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t bytes_delivered = 0;
};

// Unidirectional link with FIFO serialization. Use two for a duplex path.
class Link {
 public:
  Link(Kernel& kernel, Rng rng, LinkConfig config);

  // Queue `size_bytes` for transmission; `deliver` runs at arrival time
  // unless the packet is lost. `on_drop` (optional) runs at the would-be
  // departure time when the packet is lost. Both are EventFn: captures up to
  // kEventInlineBytes schedule without touching the heap.
  void transmit(std::uint64_t size_bytes, EventFn deliver,
                EventFn on_drop = nullptr);

  const LinkConfig& config() const { return config_; }
  const LinkStats& stats() const { return stats_; }

  // Packets queued for (or currently in) serialization right now — the
  // transmit-queue depth a router would report. Exposed to metricsd as the
  // `link_queue_depth` gauge: a congested backhaul shows up here long before
  // drops do.
  std::size_t queue_depth() const;

  void set_loss_probability(double p) { config_.loss_probability = p; }
  // Administratively disable the link (models backhaul outage): everything
  // transmitted while down is dropped.
  void set_up(bool up) { up_ = up; }
  bool is_up() const { return up_; }

 private:
  Kernel& kernel_;
  Rng rng_;
  LinkConfig config_;
  LinkStats stats_;
  TimePoint next_free_ = 0;  // when the transmitter finishes current packet
  // Departure times of packets not yet fully serialized; expired entries
  // are lazily popped when the depth is read.
  mutable std::deque<TimePoint> departures_;
  bool up_ = true;
};

}  // namespace magma::sim
