// Discrete-event simulation kernel.
//
// Replaces the paper's physical testbed clock. Components schedule callbacks
// at virtual times; the kernel executes them in (time, sequence) order, so a
// run is fully deterministic given its seed. Everything in the repository —
// links, CPUs, protocol timers, traffic generators — is driven off this one
// event loop.
//
// The schedule→dispatch path is allocation-free in steady state:
//  * closures live inline in the event (EventFn, a small-buffer-optimized
//    InplaceFunction) — oversized captures fall back to the heap and are
//    counted in KernelStats::closure_heap_fallbacks;
//  * cancellation bookkeeping is a generation-tagged slot table recycled
//    through a free list, not a node-based set;
//  * the priority heap is a plain vector, which only reallocates at the
//    high-water mark.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inplace_function.h"
#include "obs/host_profiler.h"
#include "sim/time.h"

namespace magma::sim {

// Inline closure capacity for scheduled events. Sized to cover the repo's
// common captures — a link delivery ({peer, guard, header bytes, payload}
// ≈ 72 B) and a CPU-completion ({this, core, idx, label, span, done}
// ≈ 72 B) — with headroom. Bigger captures still work; they heap-allocate
// and increment KernelStats::closure_heap_fallbacks.
inline constexpr std::size_t kEventInlineBytes = 112;
using EventFn = common::InplaceFunction<void(), kEventInlineBytes>;

// Host-cost accounting for the event loop itself: how much heap traffic the
// queue sees and how deep it gets. Counters, not behavior — a run with and
// without a HostProfiler installed executes identically.
struct KernelStats {
  std::uint64_t scheduled = 0;  // heap pushes
  std::uint64_t cancelled = 0;  // lazy deletions requested
  std::uint64_t skimmed = 0;    // cancelled entries popped off the heap top
  // Closures too big for EventFn's inline buffer (or scheduled with pooling
  // disabled): each one is a heap round trip the bench wall will price.
  std::uint64_t closure_heap_fallbacks = 0;
  std::size_t queue_hwm = 0;    // pending-event high-water mark
};

// Handle used to cancel a scheduled event (e.g. a protocol retransmission
// timer that fires only if no answer arrived). Encodes (generation << 32) |
// slot; a default-constructed id never matches (generations start at 1).
struct EventId {
  std::uint64_t value = 0;
  bool operator==(const EventId&) const = default;
};

class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  TimePoint now() const { return now_; }
  double now_seconds() const { return to_seconds(now_); }

  // Schedule `fn` to run `delay` from now (delay < 0 is clamped to 0).
  EventId schedule(Duration delay, EventFn fn);
  // Schedule `fn` at absolute time `when` (in the past is clamped to now).
  EventId schedule_at(TimePoint when, EventFn fn);

  // Cancel a pending event. Returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  // Run until the event queue empties. Returns the final time.
  TimePoint run();
  // Run until `deadline` (inclusive); later events stay queued. Advances the
  // clock to `deadline` even if the queue empties first.
  TimePoint run_until(TimePoint deadline);
  // Execute at most one event. Returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return live_; }
  std::uint64_t executed_events() const { return executed_; }
  const KernelStats& stats() const { return stats_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;   // tiebreak: FIFO among same-time events
    std::uint32_t slot;  // index into slots_
    // Host-profiler label innermost when schedule() ran: dispatch wall cost
    // is attributed to the subsystem that scheduled the event. Zero when no
    // profiler was installed at schedule time.
    obs::HostLabelId origin = obs::kHostUnlabeled;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  // Cancellation record for one in-heap event. A slot stays reserved until
  // its heap entry is popped (dispatch or skim); only then does it return to
  // the free list with a bumped generation, so stale EventIds can't alias a
  // reused slot.
  struct Slot {
    std::uint32_t gen = 1;
    bool live = false;
  };

  std::uint32_t reserve_slot();
  void retire_slot(std::uint32_t slot);

  // Drop cancelled events sitting at the top of the heap.
  void skim();
  // Pop the earliest event off heap_ (callers ensured it is non-empty).
  Event pop_top();

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet run or cancelled
  KernelStats stats_;
  std::vector<Event> heap_;  // binary heap via std::push_heap/std::pop_heap
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace magma::sim
