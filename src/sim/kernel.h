// Discrete-event simulation kernel.
//
// Replaces the paper's physical testbed clock. Components schedule callbacks
// at virtual times; the kernel executes them in (time, sequence) order, so a
// run is fully deterministic given its seed. Everything in the repository —
// links, CPUs, protocol timers, traffic generators — is driven off this one
// event loop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "obs/host_profiler.h"
#include "sim/time.h"

namespace magma::sim {

// Host-cost accounting for the event loop itself: how much heap traffic the
// queue sees and how deep it gets. Counters, not behavior — a run with and
// without a HostProfiler installed executes identically.
struct KernelStats {
  std::uint64_t scheduled = 0;  // heap pushes
  std::uint64_t cancelled = 0;  // lazy deletions requested
  std::uint64_t skimmed = 0;    // cancelled entries popped off the heap top
  std::size_t queue_hwm = 0;    // pending-event high-water mark
};

// Handle used to cancel a scheduled event (e.g. a protocol retransmission
// timer that fires only if no answer arrived).
struct EventId {
  std::uint64_t value = 0;
  bool operator==(const EventId&) const = default;
};

class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  TimePoint now() const { return now_; }
  double now_seconds() const { return to_seconds(now_); }

  // Schedule `fn` to run `delay` from now (delay < 0 is clamped to 0).
  EventId schedule(Duration delay, std::function<void()> fn);
  // Schedule `fn` at absolute time `when` (in the past is clamped to now).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  // Cancel a pending event. Returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  // Run until the event queue empties. Returns the final time.
  TimePoint run();
  // Run until `deadline` (inclusive); later events stay queued. Advances the
  // clock to `deadline` even if the queue empties first.
  TimePoint run_until(TimePoint deadline);
  // Execute at most one event. Returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return pending_.size(); }
  std::uint64_t executed_events() const { return executed_; }
  const KernelStats& stats() const { return stats_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // tiebreak: FIFO among same-time events
    std::uint64_t id;
    // Host-profiler label innermost when schedule() ran: dispatch wall cost
    // is attributed to the subsystem that scheduled the event. Zero when no
    // profiler was installed at schedule time.
    obs::HostLabelId origin = obs::kHostUnlabeled;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Drop cancelled events sitting at the top of the heap.
  void skim();

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  KernelStats stats_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;  // ids not yet run or cancelled
};

}  // namespace magma::sim
