#include "sim/link.h"

#include <algorithm>

namespace magma::sim {

LinkConfig lan_link() {
  return LinkConfig{1e9, 200 * kMicrosecond, 0, 0.0, "lan"};
}
LinkConfig fiber_backhaul() {
  return LinkConfig{1e9, 5 * kMillisecond, 0, 0.0, "fiber"};
}
LinkConfig microwave_backhaul() {
  return LinkConfig{100e6, 15 * kMillisecond, 3 * kMillisecond, 0.005,
                    "microwave"};
}
LinkConfig satellite_backhaul() {
  return LinkConfig{20e6, 300 * kMillisecond, 20 * kMillisecond, 0.02,
                    "satellite"};
}

Link::Link(Kernel& kernel, Rng rng, LinkConfig config)
    : kernel_(kernel), rng_(rng), config_(config) {}

std::size_t Link::queue_depth() const {
  const TimePoint now = kernel_.now();
  while (!departures_.empty() && departures_.front() <= now) {
    departures_.pop_front();
  }
  return departures_.size();
}

void Link::transmit(std::uint64_t size_bytes, EventFn deliver,
                    EventFn on_drop) {
  // Host cost of the link model itself is tiny; what this scope buys is the
  // schedule-time label: delivery events are attributed to sim.link, so the
  // profiler can separate "time spent delivering packets" from the kernel's
  // other work.
  MAGMA_HOST_SCOPE("sim.link", "transmit");
  ++stats_.packets_sent;
  const TimePoint start = std::max(kernel_.now(), next_free_);
  const Duration ser = transmission_time(size_bytes, config_.bandwidth_bps);
  const TimePoint departure = start + ser;
  next_free_ = departure;
  departures_.push_back(departure);

  const bool lost = !up_ || rng_.bernoulli(config_.loss_probability);
  if (lost) {
    ++stats_.packets_dropped;
    if (on_drop) {
      kernel_.schedule_at(departure, std::move(on_drop));
    }
    return;
  }

  Duration jitter = 0;
  if (config_.jitter > 0) {
    jitter = static_cast<Duration>(
        rng_.uniform_int(static_cast<std::uint64_t>(config_.jitter)));
  }
  const TimePoint arrival = departure + config_.latency + jitter;
  ++stats_.packets_delivered;
  stats_.bytes_delivered += size_bytes;
  kernel_.schedule_at(arrival, std::move(deliver));
}

}  // namespace magma::sim
