#include "sim/kernel.h"

#include <algorithm>
#include <cassert>

namespace magma::sim {

EventId Kernel::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max<Duration>(delay, 0), std::move(fn));
}

EventId Kernel::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(fn);
  const std::uint64_t id = next_id_++;
  heap_.push(Event{std::max(when, now_), next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return EventId{id};
}

bool Kernel::cancel(EventId id) {
  // Lazy deletion: remove from the pending set; the heap entry is skipped
  // when it reaches the top.
  return pending_.erase(id.value) > 0;
}

void Kernel::skim() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

bool Kernel::step() {
  skim();
  if (heap_.empty()) return false;
  Event ev = heap_.top();
  heap_.pop();
  pending_.erase(ev.id);
  assert(ev.when >= now_);
  now_ = ev.when;
  ++executed_;
  ev.fn();
  return true;
}

TimePoint Kernel::run() {
  while (step()) {
  }
  return now_;
}

TimePoint Kernel::run_until(TimePoint deadline) {
  for (;;) {
    skim();
    if (heap_.empty() || heap_.top().when > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
  return now_;
}

}  // namespace magma::sim
