#include "sim/kernel.h"

#include <algorithm>
#include <cassert>

namespace magma::sim {

namespace {

// Fallback dispatch label for events scheduled while no profiler scope was
// active: the cost is still the kernel's to explain.
obs::HostLabelId dispatch_label() {
  static const obs::HostLabelId label = obs::host_label("kernel", "dispatch");
  return label;
}

constexpr std::uint64_t event_id_value(std::uint32_t gen, std::uint32_t slot) {
  return (static_cast<std::uint64_t>(gen) << 32) | slot;
}

}  // namespace

EventId Kernel::schedule(Duration delay, EventFn fn) {
  return schedule_at(now_ + std::max<Duration>(delay, 0), std::move(fn));
}

EventId Kernel::schedule_at(TimePoint when, EventFn fn) {
  assert(fn);
  if (fn.on_heap()) ++stats_.closure_heap_fallbacks;
  const std::uint32_t slot = reserve_slot();
  const obs::HostLabelId origin = obs::HostProfiler::current_label();
  heap_.push_back(
      Event{std::max(when, now_), next_seq_++, slot, origin, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  ++stats_.scheduled;
  if (live_ > stats_.queue_hwm) stats_.queue_hwm = live_;
  if (obs::HostProfiler* prof = obs::HostProfiler::current()) {
    prof->note_event_scheduled(origin);
  }
  return EventId{event_id_value(slots_[slot].gen, slot)};
}

std::uint32_t Kernel::reserve_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].live = true;
  return slot;
}

void Kernel::retire_slot(std::uint32_t slot) {
  // Called only when the slot's heap entry has been popped; bumping the
  // generation invalidates any EventId still referring to this slot.
  slots_[slot].live = false;
  ++slots_[slot].gen;
  free_slots_.push_back(slot);
}

bool Kernel::cancel(EventId id) {
  // Lazy deletion: mark the slot dead; the heap entry is skipped when it
  // reaches the top.
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen ||
      !slots_[slot].live) {
    return false;
  }
  slots_[slot].live = false;
  --live_;
  ++stats_.cancelled;
  return true;
}

Kernel::Event Kernel::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

void Kernel::skim() {
  while (!heap_.empty() && !slots_[heap_.front().slot].live) {
    retire_slot(pop_top().slot);
    ++stats_.skimmed;
  }
}

bool Kernel::step() {
  skim();
  if (heap_.empty()) return false;
  Event ev = pop_top();
  retire_slot(ev.slot);
  --live_;
  assert(ev.when >= now_);
  now_ = ev.when;
  ++executed_;
  if (obs::HostProfiler* prof = obs::HostProfiler::current()) {
    // Attribute the dispatch (and everything the callback does that is not
    // itself inside a narrower scope) to the label that scheduled it.
    const obs::HostLabelId label =
        ev.origin != obs::kHostUnlabeled ? ev.origin : dispatch_label();
    prof->note_event_dispatched(label);
    obs::HostScope scope(label);
    ev.fn();
  } else {
    ev.fn();
  }
  return true;
}

TimePoint Kernel::run() {
  while (step()) {
  }
  return now_;
}

TimePoint Kernel::run_until(TimePoint deadline) {
  for (;;) {
    skim();
    if (heap_.empty() || heap_.front().when > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
  return now_;
}

}  // namespace magma::sim
