#include "sim/kernel.h"

#include <algorithm>
#include <cassert>

namespace magma::sim {

namespace {

// Fallback dispatch label for events scheduled while no profiler scope was
// active: the cost is still the kernel's to explain.
obs::HostLabelId dispatch_label() {
  static const obs::HostLabelId label = obs::host_label("kernel", "dispatch");
  return label;
}

}  // namespace

EventId Kernel::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max<Duration>(delay, 0), std::move(fn));
}

EventId Kernel::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(fn);
  const std::uint64_t id = next_id_++;
  const obs::HostLabelId origin = obs::HostProfiler::current_label();
  heap_.push(
      Event{std::max(when, now_), next_seq_++, id, origin, std::move(fn)});
  pending_.insert(id);
  ++stats_.scheduled;
  if (pending_.size() > stats_.queue_hwm) stats_.queue_hwm = pending_.size();
  if (obs::HostProfiler* prof = obs::HostProfiler::current()) {
    prof->note_event_scheduled(origin);
  }
  return EventId{id};
}

bool Kernel::cancel(EventId id) {
  // Lazy deletion: remove from the pending set; the heap entry is skipped
  // when it reaches the top.
  const bool live = pending_.erase(id.value) > 0;
  if (live) ++stats_.cancelled;
  return live;
}

void Kernel::skim() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
    ++stats_.skimmed;
  }
}

bool Kernel::step() {
  skim();
  if (heap_.empty()) return false;
  Event ev = heap_.top();
  heap_.pop();
  pending_.erase(ev.id);
  assert(ev.when >= now_);
  now_ = ev.when;
  ++executed_;
  if (obs::HostProfiler* prof = obs::HostProfiler::current()) {
    // Attribute the dispatch (and everything the callback does that is not
    // itself inside a narrower scope) to the label that scheduled it.
    const obs::HostLabelId label =
        ev.origin != obs::kHostUnlabeled ? ev.origin : dispatch_label();
    prof->note_event_dispatched(label);
    obs::HostScope scope(label);
    ev.fn();
  } else {
    ev.fn();
  }
  return true;
}

TimePoint Kernel::run() {
  while (step()) {
  }
  return now_;
}

TimePoint Kernel::run_until(TimePoint deadline) {
  for (;;) {
    skim();
    if (heap_.empty() || heap_.top().when > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
  return now_;
}

}  // namespace magma::sim
