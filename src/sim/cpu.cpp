#include "sim/cpu.h"

#include <algorithm>
#include <cassert>

namespace magma::sim {

CpuModel::CpuModel(Kernel& kernel, CpuConfig config)
    : kernel_(kernel), config_(config) {
  assert(config_.cores > 0);
  assert(config_.speed_ghz > 0);
  assert(config_.user_plane_cores <= config_.cores);
  cores_.resize(static_cast<std::size_t>(config_.cores));
}

bool CpuModel::core_eligible(int core, WorkClass cls) const {
  if (config_.user_plane_cores < 0) return true;  // shared / flexible
  // Cores [0, user_plane_cores) are user-plane; the rest are control-plane.
  const bool is_user_core = core < config_.user_plane_cores;
  return (cls == WorkClass::kUser) == is_user_core;
}

int CpuModel::cores_for(WorkClass cls) const {
  if (config_.user_plane_cores < 0) return config_.cores;
  return cls == WorkClass::kUser ? config_.user_plane_cores
                                 : config_.cores - config_.user_plane_cores;
}

bool CpuModel::submit(WorkClass cls, double reference_seconds,
                      std::function<void()> done) {
  const auto idx = static_cast<std::size_t>(cls);
  if (cores_for(cls) == 0) {
    ++stats_.rejected[idx];
    return false;
  }
  Work work{cls, from_seconds(reference_seconds / config_.speed_ghz),
            std::move(done)};
  // Try to find an idle eligible core.
  for (int c = 0; c < config_.cores; ++c) {
    if (!cores_[static_cast<std::size_t>(c)].busy && core_eligible(c, cls)) {
      start(c, std::move(work));
      return true;
    }
  }
  if (config_.max_queue_depth != 0 &&
      queue_[idx].size() >= config_.max_queue_depth) {
    ++stats_.rejected[idx];
    return false;
  }
  queue_[idx].push_back(std::move(work));
  stats_.queue_depth[idx] = queue_[idx].size();
  return true;
}

void CpuModel::start(int core, Work work) {
  auto& c = cores_[static_cast<std::size_t>(core)];
  assert(!c.busy);
  c.busy = true;
  const auto idx = static_cast<std::size_t>(work.cls);
  stats_.busy_ns[idx] += work.cost;
  auto done = std::move(work.done);
  kernel_.schedule(work.cost, [this, core, idx, done = std::move(done)]() {
    cores_[static_cast<std::size_t>(core)].busy = false;
    ++stats_.completed[idx];
    if (done) done();
    on_core_idle(core);
  });
}

void CpuModel::on_core_idle(int core) {
  if (cores_[static_cast<std::size_t>(core)].busy) return;
  // Serve control first only if its queue is older? Simpler and fair enough:
  // alternate by picking the class whose head has waited longest is overkill;
  // drain user-plane first when shared would starve control, so pick the
  // class with the larger backlog-normalized queue. In the partitioned case
  // only one class is eligible anyway.
  WorkClass order[2];
  if (queue_[0].size() >= queue_[1].size()) {
    order[0] = WorkClass::kControl;
    order[1] = WorkClass::kUser;
  } else {
    order[0] = WorkClass::kUser;
    order[1] = WorkClass::kControl;
  }
  for (WorkClass cls : order) {
    const auto idx = static_cast<std::size_t>(cls);
    if (queue_[idx].empty() || !core_eligible(core, cls)) continue;
    Work next = std::move(queue_[idx].front());
    queue_[idx].pop_front();
    stats_.queue_depth[idx] = queue_[idx].size();
    start(core, std::move(next));
    return;
  }
}

double CpuModel::instantaneous_utilization() const {
  int busy = 0;
  for (const auto& c : cores_) busy += c.busy ? 1 : 0;
  return static_cast<double>(busy) / static_cast<double>(config_.cores);
}

}  // namespace magma::sim
