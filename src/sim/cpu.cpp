#include "sim/cpu.h"

#include <algorithm>
#include <cassert>

namespace magma::sim {

CpuModel::CpuModel(Kernel& kernel, CpuConfig config)
    : kernel_(kernel), config_(config) {
  assert(config_.cores > 0);
  assert(config_.speed_ghz > 0);
  assert(config_.user_plane_cores <= config_.cores);
  cores_.resize(static_cast<std::size_t>(config_.cores));
  // Label 0: the catch-all for unlabeled submissions.
  labels_.push_back(TaskLabelStats{"unattributed", ""});
  label_ids_[{"unattributed", ""}] = kUnattributed;
}

CpuModel::LabelId CpuModel::intern_label(const std::string& service,
                                         const std::string& op) {
  // Heterogeneous find: zero allocations when the label is already interned
  // (the steady-state case — callers intern once and cache the id, but
  // defensive per-call interning must stay cheap too).
  auto it = label_ids_.find(common::StringPairView{service, op});
  if (it != label_ids_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(labels_.size());
  labels_.push_back(TaskLabelStats{service, op});
  label_ids_.emplace(std::make_pair(service, op), id);
  return id;
}

void CpuModel::charge_wait(LabelId label, obs::WaitState state,
                           Duration amount) {
  if (amount <= 0 || label >= labels_.size()) return;
  TaskLabelStats& ls = labels_[label];
  switch (state) {
    case obs::WaitState::kRunq: ls.queue_wait_ns += amount; break;
    case obs::WaitState::kRpcWait: ls.rpc_wait_ns += amount; break;
    case obs::WaitState::kTimer: ls.timer_wait_ns += amount; break;
    default: break;  // on-CPU and link time are charged elsewhere
  }
}

bool CpuModel::core_eligible(int core, WorkClass cls) const {
  if (config_.user_plane_cores < 0) return true;  // shared / flexible
  // Cores [0, user_plane_cores) are user-plane; the rest are control-plane.
  const bool is_user_core = core < config_.user_plane_cores;
  return (cls == WorkClass::kUser) == is_user_core;
}

int CpuModel::cores_for(WorkClass cls) const {
  if (config_.user_plane_cores < 0) return config_.cores;
  return cls == WorkClass::kUser ? config_.user_plane_cores
                                 : config_.cores - config_.user_plane_cores;
}

bool CpuModel::submit(WorkClass cls, LabelId label, double reference_seconds,
                      std::function<void()> done) {
  const auto idx = static_cast<std::size_t>(cls);
  if (label >= labels_.size()) label = kUnattributed;
  if (cores_for(cls) == 0) {
    ++stats_.rejected[idx];
    return false;
  }
  Work work{cls,
            from_seconds(reference_seconds / config_.speed_ghz),
            label,
            kernel_.now(),
            obs::current_context(context_tracer()),
            std::move(done)};
  // Try to find an idle eligible core.
  for (int c = 0; c < config_.cores; ++c) {
    if (!cores_[static_cast<std::size_t>(c)].busy && core_eligible(c, cls)) {
      start(c, std::move(work));
      return true;
    }
  }
  if (config_.max_queue_depth != 0 &&
      queue_[idx].size() >= config_.max_queue_depth) {
    ++stats_.rejected[idx];
    return false;
  }
  queue_[idx].push_back(std::move(work));
  stats_.queue_depth[idx] = queue_[idx].size();
  return true;
}

void CpuModel::start(int core, Work work) {
  auto& c = cores_[static_cast<std::size_t>(core)];
  assert(!c.busy);
  c.busy = true;
  const auto idx = static_cast<std::size_t>(work.cls);
  stats_.busy_ns[idx] += work.cost;
  c.busy_ns += work.cost;
  const LabelId label = work.label;
  TaskLabelStats& ls = labels_[label];
  ls.busy_ns += work.cost;
  const Duration wait = kernel_.now() - work.submitted;
  ls.queue_wait_ns += wait;
  queue_wait_[idx].observe(to_seconds(wait));
  // The submitting span (if any) just spent `wait` runnable and is about to
  // spend `cost` on-CPU; charge both so its wait vector sums to wall time.
  obs::Tracer* wt = context_tracer();
  obs::add_span_wait(wt, work.origin, obs::WaitState::kRunq, wait);
  obs::add_span_wait(wt, work.origin, obs::WaitState::kCpu, work.cost);
  obs::TraceContext span{};
  if (tracer_ != nullptr) {
    span = tracer_->begin(ls.service + "/" + ls.op,
                          "cpu" + std::to_string(core), node_,
                          obs::SpanKind::kInternal, work.origin);
  }
  auto done = std::move(work.done);
  kernel_.schedule(
      work.cost, [this, core, idx, label, span, done = std::move(done)]() {
        cores_[static_cast<std::size_t>(core)].busy = false;
        ++stats_.completed[idx];
        ++labels_[label].completed;
        obs::end_span(tracer_, span);
        if (done) done();
        on_core_idle(core);
      });
}

void CpuModel::on_core_idle(int core) {
  if (cores_[static_cast<std::size_t>(core)].busy) return;
  // Serve control first only if its queue is older? Simpler and fair enough:
  // alternate by picking the class whose head has waited longest is overkill;
  // drain user-plane first when shared would starve control, so pick the
  // class with the larger backlog-normalized queue. In the partitioned case
  // only one class is eligible anyway.
  WorkClass order[2];
  if (queue_[0].size() >= queue_[1].size()) {
    order[0] = WorkClass::kControl;
    order[1] = WorkClass::kUser;
  } else {
    order[0] = WorkClass::kUser;
    order[1] = WorkClass::kControl;
  }
  for (WorkClass cls : order) {
    const auto idx = static_cast<std::size_t>(cls);
    if (queue_[idx].empty() || !core_eligible(core, cls)) continue;
    Work next = std::move(queue_[idx].front());
    queue_[idx].pop_front();
    stats_.queue_depth[idx] = queue_[idx].size();
    start(core, std::move(next));
    return;
  }
}

double CpuModel::instantaneous_utilization() const {
  int busy = 0;
  for (const auto& c : cores_) busy += c.busy ? 1 : 0;
  return static_cast<double>(busy) / static_cast<double>(config_.cores);
}

std::map<std::string, double> CpuModel::service_busy_seconds() const {
  std::map<std::string, double> out;
  for (const TaskLabelStats& ls : labels_) {
    if (ls.busy_ns == 0) continue;
    out[ls.service] += to_seconds(ls.busy_ns);
  }
  return out;
}

std::vector<Duration> CpuModel::core_busy_ns() const {
  std::vector<Duration> out;
  out.reserve(cores_.size());
  for (const Core& c : cores_) out.push_back(c.busy_ns);
  return out;
}

std::vector<double> CpuModel::utilization_window(
    UtilizationWindow& window) const {
  const TimePoint now = kernel_.now();
  std::vector<double> out(cores_.size(), 0.0);
  const bool fresh =
      window.at < 0 || window.busy.size() != cores_.size() || window.at > now;
  if (!fresh && now > window.at) {
    const double span = to_seconds(now - window.at);
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      const double busy = to_seconds(cores_[i].busy_ns - window.busy[i]);
      out[i] = std::clamp(busy / span, 0.0, 1.0);
    }
  }
  window.busy = core_busy_ns();
  window.at = now;
  return out;
}

void CpuModel::set_tracer(obs::Tracer* tracer, std::string node) {
  tracer_ = tracer;
  node_ = std::move(node);
}

}  // namespace magma::sim
