// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic element of the simulation (link loss, workload arrivals,
// traffic sizes) draws from an Rng seeded explicitly, so experiments are
// replicable — the property the paper gets from Spirent Landslide.
#pragma once

#include <cstdint>

namespace magma::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);

  bool bernoulli(double p);

  // Exponential with the given mean (for Poisson arrivals).
  double exponential(double mean);

  // Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);

  // Derive an independent stream (for per-entity RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace magma::sim
