// Simulated time.
//
// All timing in the repository uses integer nanoseconds on a virtual clock
// owned by sim::Kernel. Integer time keeps runs bit-for-bit deterministic
// across platforms, which the test suite depends on.
#pragma once

#include <cstdint>

namespace magma::sim {

// Nanoseconds since simulation start.
using TimePoint = std::int64_t;
// Nanoseconds.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

// Duration to transmit `bytes` at `bits_per_second`.
constexpr Duration transmission_time(std::uint64_t bytes,
                                     double bits_per_second) {
  if (bits_per_second <= 0) return 0;
  return from_seconds(static_cast<double>(bytes) * 8.0 / bits_per_second);
}

}  // namespace magma::sim
