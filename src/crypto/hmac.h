// HMAC-SHA256 (RFC 2104) — the MAC underlying the 3GPP LTE/5G key
// derivation function (TS 33.401 / TS 33.220 Annex B).
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace magma::crypto {

Digest256 hmac_sha256(common::BytesView key, common::BytesView message);

// 3GPP generic KDF (TS 33.220 B.2): output = HMAC-SHA256(key, S) where
// S = FC || P0 || L0 || P1 || L1 || ... Each Pi is a parameter, Li its
// two-byte big-endian length.
class KdfInput {
 public:
  explicit KdfInput(std::uint8_t fc) { s_.push_back(fc); }
  KdfInput& param(common::BytesView p);
  common::BytesView view() const { return s_; }

 private:
  common::Bytes s_;
};

Digest256 kdf(common::BytesView key, const KdfInput& input);

}  // namespace magma::crypto
