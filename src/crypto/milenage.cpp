#include "crypto/milenage.h"

#include <cstring>

namespace magma::crypto {

namespace {

Block xor_blocks(const Block& a, const Block& b) {
  Block out;
  for (std::size_t i = 0; i < 16; ++i) out[i] = a[i] ^ b[i];
  return out;
}

// Cyclic left rotation by a whole number of bytes (all Milenage rotation
// constants are byte-aligned: r1=64, r2=0, r3=32, r4=64, r5=96 bits).
Block rotate_left_bytes(const Block& in, std::size_t bytes) {
  Block out;
  for (std::size_t i = 0; i < 16; ++i) out[i] = in[(i + bytes) % 16];
  return out;
}

}  // namespace

Milenage::Milenage(const Key128& k, const Key128& opc, bool)
    : cipher_(k), opc_(opc) {}

Milenage::Milenage(const Key128& k, const Key128& op) : cipher_(k) {
  // OPc = OP xor E_K(OP).
  const Block encrypted = cipher_.encrypt(op);
  for (std::size_t i = 0; i < 16; ++i) opc_[i] = op[i] ^ encrypted[i];
}

Milenage Milenage::from_opc(const Key128& k, const Key128& opc) {
  return Milenage(k, opc, true);
}

MilenageOutput Milenage::compute(const std::array<std::uint8_t, 16>& rand,
                                 const std::array<std::uint8_t, 6>& sqn,
                                 const std::array<std::uint8_t, 2>& amf) const {
  MilenageOutput out;

  const Block temp = cipher_.encrypt(xor_blocks(rand, opc_));

  // IN1 = SQN || AMF || SQN || AMF.
  Block in1;
  std::memcpy(in1.data(), sqn.data(), 6);
  std::memcpy(in1.data() + 6, amf.data(), 2);
  std::memcpy(in1.data() + 8, sqn.data(), 6);
  std::memcpy(in1.data() + 14, amf.data(), 2);

  // f1 / f1*: OUT1 = E_K(TEMP xor rot(IN1 xor OPc, r1) xor c1) xor OPc,
  // r1 = 64 bits = 8 bytes, c1 = 0.
  {
    Block x = rotate_left_bytes(xor_blocks(in1, opc_), 8);
    x = xor_blocks(x, temp);
    const Block out1 = xor_blocks(cipher_.encrypt(x), opc_);
    std::memcpy(out.mac_a.data(), out1.data(), 8);
    std::memcpy(out.mac_s.data(), out1.data() + 8, 8);
  }

  // f2 / f5: OUT2 = E_K(rot(TEMP xor OPc, r2) xor c2) xor OPc,
  // r2 = 0, c2 = ...0001.
  {
    Block x = xor_blocks(temp, opc_);
    x[15] ^= 0x01;
    const Block out2 = xor_blocks(cipher_.encrypt(x), opc_);
    std::memcpy(out.res.data(), out2.data() + 8, 8);
    std::memcpy(out.ak.data(), out2.data(), 6);
  }

  // f3: r3 = 32 bits = 4 bytes, c3 = ...0010.
  {
    Block x = rotate_left_bytes(xor_blocks(temp, opc_), 4);
    x[15] ^= 0x02;
    const Block out3 = xor_blocks(cipher_.encrypt(x), opc_);
    std::memcpy(out.ck.data(), out3.data(), 16);
  }

  // f4: r4 = 64 bits = 8 bytes, c4 = ...0100.
  {
    Block x = rotate_left_bytes(xor_blocks(temp, opc_), 8);
    x[15] ^= 0x04;
    const Block out4 = xor_blocks(cipher_.encrypt(x), opc_);
    std::memcpy(out.ik.data(), out4.data(), 16);
  }

  // f5*: r5 = 96 bits = 12 bytes, c5 = ...1000.
  {
    Block x = rotate_left_bytes(xor_blocks(temp, opc_), 12);
    x[15] ^= 0x08;
    const Block out5 = xor_blocks(cipher_.encrypt(x), opc_);
    std::memcpy(out.ak_s.data(), out5.data(), 6);
  }

  return out;
}

}  // namespace magma::crypto
