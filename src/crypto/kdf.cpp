#include "crypto/kdf.h"

#include <algorithm>
#include <cstring>

#include "crypto/aes128.h"

namespace magma::crypto {

namespace {
Key256 to_key(const Digest256& d) {
  Key256 k;
  std::memcpy(k.data(), d.data(), d.size());
  return k;
}
}  // namespace

Key256 derive_kasme(const std::array<std::uint8_t, 16>& ck,
                    const std::array<std::uint8_t, 16>& ik,
                    const ServingNetwork& sn,
                    const std::array<std::uint8_t, 6>& sqn_xor_ak) {
  std::array<std::uint8_t, 32> key;
  std::memcpy(key.data(), ck.data(), 16);
  std::memcpy(key.data() + 16, ik.data(), 16);

  KdfInput input(0x10);
  input.param(common::BytesView(
      reinterpret_cast<const std::uint8_t*>(sn.plmn.data()), sn.plmn.size()));
  input.param(sqn_xor_ak);
  return to_key(kdf(key, input));
}

namespace {
Key256 derive_alg_key(const Key256& kasme, std::uint8_t distinguisher,
                      NasAlgorithm alg) {
  const std::uint8_t alg_id = static_cast<std::uint8_t>(alg);
  KdfInput input(0x15);
  input.param(common::BytesView(&distinguisher, 1));
  input.param(common::BytesView(&alg_id, 1));
  return to_key(kdf(kasme, input));
}
}  // namespace

Key256 derive_k_nas_enc(const Key256& kasme, NasAlgorithm alg) {
  return derive_alg_key(kasme, 0x01, alg);
}

Key256 derive_k_nas_int(const Key256& kasme, NasAlgorithm alg) {
  return derive_alg_key(kasme, 0x02, alg);
}

Key256 derive_k_enb(const Key256& kasme, std::uint32_t nas_count) {
  std::uint8_t count_be[4] = {
      static_cast<std::uint8_t>(nas_count >> 24),
      static_cast<std::uint8_t>(nas_count >> 16),
      static_cast<std::uint8_t>(nas_count >> 8),
      static_cast<std::uint8_t>(nas_count),
  };
  KdfInput input(0x11);
  input.param(common::BytesView(count_be, 4));
  return to_key(kdf(kasme, input));
}

common::Bytes nas_cipher(const Key256& k_nas_enc, std::uint32_t count,
                         bool downlink, common::BytesView data) {
  Key128 key;
  std::memcpy(key.data(), k_nas_enc.data(), key.size());
  const Aes128 aes(key);

  // IV block: COUNT (4B) || BEARER/DIRECTION byte || zero, per-block
  // counter in the trailing 4 bytes (CTR mode).
  Block iv{};
  iv[0] = static_cast<std::uint8_t>(count >> 24);
  iv[1] = static_cast<std::uint8_t>(count >> 16);
  iv[2] = static_cast<std::uint8_t>(count >> 8);
  iv[3] = static_cast<std::uint8_t>(count);
  iv[4] = downlink ? 0x04 : 0x00;

  common::Bytes out(data.begin(), data.end());
  std::uint32_t block_index = 0;
  for (std::size_t offset = 0; offset < out.size(); offset += 16) {
    Block ctr = iv;
    ctr[12] = static_cast<std::uint8_t>(block_index >> 24);
    ctr[13] = static_cast<std::uint8_t>(block_index >> 16);
    ctr[14] = static_cast<std::uint8_t>(block_index >> 8);
    ctr[15] = static_cast<std::uint8_t>(block_index);
    ++block_index;
    const Block keystream = aes.encrypt(ctr);
    const std::size_t n = std::min<std::size_t>(16, out.size() - offset);
    for (std::size_t i = 0; i < n; ++i) {
      out[offset + i] ^= keystream[i];
    }
  }
  return out;
}

std::uint32_t nas_mac(const Key256& k_nas_int, std::uint32_t count,
                      common::BytesView message) {
  common::Bytes data;
  data.reserve(4 + message.size());
  data.push_back(static_cast<std::uint8_t>(count >> 24));
  data.push_back(static_cast<std::uint8_t>(count >> 16));
  data.push_back(static_cast<std::uint8_t>(count >> 8));
  data.push_back(static_cast<std::uint8_t>(count));
  data.insert(data.end(), message.begin(), message.end());
  const Digest256 d = hmac_sha256(k_nas_int, data);
  return (std::uint32_t(d[0]) << 24) | (std::uint32_t(d[1]) << 16) |
         (std::uint32_t(d[2]) << 8) | std::uint32_t(d[3]);
}

}  // namespace magma::crypto
