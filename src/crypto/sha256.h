// SHA-256 (FIPS 180-4). Used by HMAC-SHA256, which in turn backs the 3GPP
// key derivation function (TS 33.401 Annex A uses HMAC-SHA-256 for KASME and
// the NAS/AS key hierarchy).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace magma::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

Digest256 sha256(common::BytesView data);

// Incremental interface (needed by HMAC for the two-pass construction
// without concatenating buffers).
class Sha256 {
 public:
  Sha256();
  void update(common::BytesView data);
  Digest256 finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace magma::crypto
