#include "crypto/hmac.h"

#include <cstring>

namespace magma::crypto {

Digest256 hmac_sha256(common::BytesView key, common::BytesView message) {
  std::array<std::uint8_t, 64> k_block{};
  if (key.size() > 64) {
    const Digest256 kh = sha256(key);
    std::memcpy(k_block.data(), kh.data(), kh.size());
  } else {
    std::memcpy(k_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[static_cast<std::size_t>(i)] = k_block[static_cast<std::size_t>(i)] ^ 0x36;
    opad[static_cast<std::size_t>(i)] = k_block[static_cast<std::size_t>(i)] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Digest256 inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

KdfInput& KdfInput::param(common::BytesView p) {
  s_.insert(s_.end(), p.begin(), p.end());
  s_.push_back(static_cast<std::uint8_t>(p.size() >> 8));
  s_.push_back(static_cast<std::uint8_t>(p.size() & 0xFF));
  return *this;
}

Digest256 kdf(common::BytesView key, const KdfInput& input) {
  return hmac_sha256(key, input.view());
}

}  // namespace magma::crypto
