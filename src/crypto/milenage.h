// Milenage (3GPP TS 35.205/35.206): the authentication and key generation
// algorithm set executed by USIMs and by the network's authentication
// centre. Magma's subscriber management must run the same algorithms as the
// SIM to mutually authenticate UEs, whatever the radio technology (§3.1:
// "UE authentication and session establishment are done in a common way").
//
// Implemented functions: f1 (network MAC), f1* (resync MAC), f2 (RES),
// f3 (CK), f4 (IK), f5 (AK), f5* (resync AK). Verified against the
// TS 35.207 conformance vectors in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/aes128.h"

namespace magma::crypto {

struct MilenageOutput {
  std::array<std::uint8_t, 8> mac_a;   // f1
  std::array<std::uint8_t, 8> mac_s;   // f1*
  std::array<std::uint8_t, 8> res;     // f2
  std::array<std::uint8_t, 16> ck;     // f3
  std::array<std::uint8_t, 16> ik;     // f4
  std::array<std::uint8_t, 6> ak;      // f5
  std::array<std::uint8_t, 6> ak_s;    // f5*
};

class Milenage {
 public:
  // K: subscriber key; OP: operator variant algorithm configuration field.
  Milenage(const Key128& k, const Key128& op);

  // Construct from a pre-computed OPc (as provisioned on real SIMs).
  static Milenage from_opc(const Key128& k, const Key128& opc);

  const Key128& opc() const { return opc_; }

  MilenageOutput compute(const std::array<std::uint8_t, 16>& rand,
                         const std::array<std::uint8_t, 6>& sqn,
                         const std::array<std::uint8_t, 2>& amf) const;

 private:
  Milenage(const Key128& k, const Key128& opc, bool opc_is_precomputed);

  Aes128 cipher_;
  Key128 opc_;
};

}  // namespace magma::crypto
