// AES-128 block cipher (FIPS-197), encryption direction only.
//
// Milenage (the 3GPP authentication algorithm set burned into every USIM)
// is built exclusively from AES-128 encryptions, so decryption is not
// needed. This is a straightforward table-free implementation: it favors
// clarity and constant code size over throughput, which is ample for
// control-plane use (a handful of blocks per attach).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace magma::crypto {

using Block = std::array<std::uint8_t, 16>;
using Key128 = std::array<std::uint8_t, 16>;

class Aes128 {
 public:
  explicit Aes128(const Key128& key);

  Block encrypt(const Block& plaintext) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_;
};

}  // namespace magma::crypto
