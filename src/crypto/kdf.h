// EPS-AKA key hierarchy (TS 33.401 Annex A).
//
// Given the Milenage outputs (CK, IK) plus the serving network identity and
// SQN^AK, derives KASME, and from it the NAS encryption/integrity keys used
// to protect signalling between the UE and the AGW's access management
// service. The 5G path derives KAUSF/KSEAF/KAMF analogously (TS 33.501);
// since the paper's point is that one generic implementation serves both, we
// expose a single hierarchy with generation-tagged entry points.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "crypto/hmac.h"

namespace magma::crypto {

using Key256 = std::array<std::uint8_t, 32>;

// Serving network identity: MCC+MNC packed per TS 24.301 (we use the ASCII
// PLMN string, e.g. "00101"; faithful packing is not load-bearing here).
struct ServingNetwork {
  std::string plmn = "00101";
};

// KASME = KDF(CK || IK, FC=0x10, P0 = SN id, P1 = SQN xor AK).
Key256 derive_kasme(const std::array<std::uint8_t, 16>& ck,
                    const std::array<std::uint8_t, 16>& ik,
                    const ServingNetwork& sn,
                    const std::array<std::uint8_t, 6>& sqn_xor_ak);

enum class NasAlgorithm : std::uint8_t {
  kEea0 = 0,  // null ciphering
  kEea2 = 2,  // AES-based ciphering
  kEia2 = 2,  // AES-based integrity (same id, different distinguisher)
};

// K_NASenc = KDF(KASME, FC=0x15, P0=0x01 (NAS-enc-alg), P1=alg id).
Key256 derive_k_nas_enc(const Key256& kasme, NasAlgorithm alg);
// K_NASint = KDF(KASME, FC=0x15, P0=0x02 (NAS-int-alg), P1=alg id).
Key256 derive_k_nas_int(const Key256& kasme, NasAlgorithm alg);
// K_eNB = KDF(KASME, FC=0x11, P0 = uplink NAS count).
Key256 derive_k_enb(const Key256& kasme, std::uint32_t nas_count);

// NAS message MAC: 4-byte truncation of HMAC-SHA256(K_NASint, count||msg),
// standing in for 128-EIA2's CMAC (same shape: keyed 32-bit MAC).
std::uint32_t nas_mac(const Key256& k_nas_int, std::uint32_t count,
                      common::BytesView message);

// NAS ciphering, 128-EEA2 shape: AES-128 in counter mode keyed by the first
// half of K_NASenc, with the keystream IV built from the NAS COUNT and the
// direction bit (TS 33.401 B.1.2). XOR-symmetric: the same call encrypts
// and decrypts.
common::Bytes nas_cipher(const Key256& k_nas_enc, std::uint32_t count,
                         bool downlink, common::BytesView data);

}  // namespace magma::crypto
