// Compact binary wire format used by every protocol in the repository.
//
// The real Magma serializes with protobuf; we use a hand-rolled
// length-prefixed little-endian format with the same purpose: explicit,
// versionable message encodings that round-trip exactly. Reader is
// fail-soft: reads past the end return zero values and latch an error flag
// the caller must check — malformed input must never crash a gateway.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace magma::rpc {

class Writer {
 public:
  // Pre-size the buffer when the encoded length is known (hot encoders like
  // the segment-header codec avoid the vector's doubling reallocations).
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  // Length-prefixed byte string (u32 length).
  void bytes(common::BytesView data);
  void str(std::string_view s);

  const common::Bytes& data() const& { return buf_; }
  common::Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  common::Bytes buf_;
};

class Reader {
 public:
  explicit Reader(common::BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  common::Bytes bytes();
  std::string str();

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  common::BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Trace propagation header carried in every RPC request frame (the wire
// image of obs::TraceContext, kept as a plain struct so the wire layer does
// not depend on the tracer). All-zero means "untraced" and costs 16 bytes —
// the flat price of making every call traceable, as gRPC metadata would.
struct WireTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

void write_trace(Writer& w, const WireTrace& trace);
WireTrace read_trace(Reader& r);

}  // namespace magma::rpc
